(* Tests for word-level cut enumeration (paper Algorithm 1, Fig. 2). *)

let enumerate ?params g = Cuts.enumerate ?params ~k:4 g

let test_trivial_first () =
  let b = Ir.Builder.create () in
  let x = Ir.Builder.input b ~width:4 "x" in
  let y = Ir.Builder.input b ~width:4 "y" in
  let o = Ir.Builder.xor_ b x y in
  Ir.Builder.output b o;
  let g = Ir.Builder.finish b in
  let cuts = enumerate g in
  Array.iteri
    (fun v cs ->
      Alcotest.(check bool)
        (Printf.sprintf "node %d has cuts" v)
        true
        (Array.length cs >= 1);
      Alcotest.(check bool)
        (Printf.sprintf "node %d first cut trivial" v)
        true
        (Cuts.is_trivial cs.(0)))
    cuts

let xor_chain n =
  let b = Ir.Builder.create () in
  let x0 = Ir.Builder.input b ~width:2 "x0" in
  let rec go i acc =
    if i > n then acc
    else
      let xi = Ir.Builder.input b ~width:2 (Printf.sprintf "x%d" i) in
      go (i + 1) (Ir.Builder.xor_ b acc xi)
  in
  let o = go 1 x0 in
  Ir.Builder.output b o;
  Ir.Builder.finish b

let test_chain_merging () =
  (* chain of 3 xors, K=4: the last node can absorb both earlier xors
     (support = 4 input bits per output bit). *)
  let g = xor_chain 3 in
  let cuts = enumerate g in
  let last = Ir.Cdfg.num_nodes g - 1 in
  let deepest =
    Array.fold_left
      (fun acc (c : Cuts.cut) -> max acc (Bitdep.Int_set.cardinal c.cone))
      0 cuts.(last)
  in
  Alcotest.(check int) "cone of 3 xors" 3 deepest

let test_k_feasibility_respected () =
  let g = xor_chain 5 in
  let cuts = enumerate g in
  Array.iter
    (fun cs ->
      Array.iter
        (fun (c : Cuts.cut) ->
          if not (Cuts.is_trivial c) then
            Alcotest.(check bool) "support <= K" true (c.support <= 4))
        cs)
    cuts

let test_inputs_never_absorbed () =
  let g = xor_chain 4 in
  let cuts = enumerate g in
  Array.iter
    (fun cs ->
      Array.iter
        (fun (c : Cuts.cut) ->
          Bitdep.Int_set.iter
            (fun w ->
              if w <> c.root then
                match Ir.Cdfg.op g w with
                | Ir.Op.Input _ -> Alcotest.fail "input inside a cone"
                | _ -> ())
            c.cone)
        cs)
    cuts

let test_black_box_trivial_only () =
  let b = Ir.Builder.create () in
  let x = Ir.Builder.input b ~width:4 "x" in
  let r = Ir.Builder.black_box b ~kind:"rom" ~resource:"bram_port" ~width:4 [ x ] in
  let o = Ir.Builder.xor_ b r x in
  Ir.Builder.output b o;
  let g = Ir.Builder.finish b in
  let cuts = enumerate g in
  Alcotest.(check int) "bb has only the trivial cut" 1 (Array.length cuts.(1));
  (* the consumer cannot absorb the black box *)
  Array.iter
    (fun (c : Cuts.cut) ->
      Alcotest.(check bool) "bb not in cone" false
        (c.root <> 1 && Bitdep.Int_set.mem 1 c.cone))
    cuts.(2)

let test_registered_edges_are_boundaries () =
  let b = Ir.Builder.create () in
  let x = Ir.Builder.input b ~width:4 "x" in
  let cell = Ir.Builder.feedback b ~width:4 ~init:0L ~dist:1 in
  let nxt = Ir.Builder.xor_ b x cell in
  Ir.Builder.drive b ~cell nxt;
  let o = Ir.Builder.not_ b nxt in
  Ir.Builder.output b o;
  let g = Ir.Builder.finish b in
  let cuts = enumerate g in
  (* No cone may contain the xor's recurrence "source" side: every cut of
     the not-node that absorbs the xor must list the xor as a leaf (the
     registered operand). *)
  Array.iter
    (fun (c : Cuts.cut) ->
      if Bitdep.Int_set.mem 1 c.cone (* xor absorbed *) then
        Alcotest.(check bool) "xor also a leaf (registered)" true
          (List.mem 1 c.leaves))
    cuts.(2)

let test_figure2_msb_cut () =
  (* Figure 2's key cut: the comparison "B >= 0" only reads B's MSB, so a
     cone over {C, B} has per-bit support {t[msb], A-side msb} and stays
     4-feasible even though B is 2 bits of xor. *)
  let g = Benchmarks.Rs.kernel ~width:2 () in
  let cuts = enumerate g in
  (* find node C (the cmp) *)
  let c_id = ref (-1) in
  Ir.Cdfg.iter
    (fun nd ->
      match nd.op with Ir.Op.Cmp _ -> c_id := nd.id | _ -> ())
    g;
  Alcotest.(check bool) "cmp found" true (!c_id >= 0);
  let has_deep_cut =
    Array.exists
      (fun (c : Cuts.cut) -> Bitdep.Int_set.cardinal c.cone >= 2)
      cuts.(!c_id)
  in
  Alcotest.(check bool) "C absorbs the xor through MSB narrowing" true
    has_deep_cut

let test_area_wire_zero () =
  let b = Ir.Builder.create () in
  let x = Ir.Builder.input b ~width:8 "x" in
  let s = Ir.Builder.shr b x 2 in
  Ir.Builder.output b s;
  let g = Ir.Builder.finish b in
  let cuts = enumerate g in
  Alcotest.(check int) "shift costs nothing" 0 cuts.(1).(0).Cuts.area

let test_area_arith_carry_chain () =
  let b = Ir.Builder.create () in
  let x = Ir.Builder.input b ~width:8 "x" in
  let y = Ir.Builder.input b ~width:8 "y" in
  let s = Ir.Builder.add b x y in
  Ir.Builder.output b s;
  let g = Ir.Builder.finish b in
  let cuts = enumerate g in
  Alcotest.(check int) "adder is one LUT per bit" 8 cuts.(2).(0).Cuts.area

let test_delay_classes () =
  let device = Fpga.Device.make ~t_clk:10.0 () in
  let delays = Fpga.Delays.default in
  let b = Ir.Builder.create () in
  let x = Ir.Builder.input b ~width:8 "x" in
  let y = Ir.Builder.input b ~width:8 "y" in
  let l = Ir.Builder.xor_ b x y in
  let a = Ir.Builder.add b x y in
  let w = Ir.Builder.shr b x 1 in
  Ir.Builder.output b l;
  Ir.Builder.output b a;
  Ir.Builder.output b w;
  let g = Ir.Builder.finish b in
  let cuts = enumerate g in
  let d v = Cuts.delay ~device ~delays g cuts.(v).(0) in
  Alcotest.(check (float 1e-9)) "logic = one LUT" 0.9 (d 2);
  Alcotest.(check bool) "arith keeps carry-chain delay" true (d 3 > 1.0);
  Alcotest.(check (float 1e-9)) "wire free" 0.0 (d 4)

let test_pruning_cap () =
  let g = Benchmarks.Xorr.build ~elements:8 ~width:8 ~mix_depth:3 () in
  let params = { (Cuts.default_params ~k:4) with max_cuts = 3 } in
  let cuts = enumerate ~params g in
  Array.iter
    (fun cs ->
      Alcotest.(check bool) "per-node cap" true (Array.length cs <= 4))
    cuts

let test_trivial_only () =
  let g = xor_chain 3 in
  let cuts = Cuts.trivial_only g in
  Array.iter
    (fun cs ->
      Alcotest.(check int) "single cut" 1 (Array.length cs);
      Alcotest.(check bool) "trivial" true (Cuts.is_trivial cs.(0)))
    cuts

(* Structural invariants on random-ish benchmark graphs. *)
let cut_invariants =
  QCheck.Test.make ~name:"cut invariants on benchmark graphs" ~count:9
    QCheck.(make Gen.(int_range 0 8))
    (fun i ->
      let e = List.nth Benchmarks.Registry.all i in
      let g = e.Benchmarks.Registry.build () in
      let cuts = enumerate g in
      Array.for_all
        (fun cs ->
          Array.length cs >= 1
          && Cuts.is_trivial cs.(0)
          && Array.for_all
               (fun (c : Cuts.cut) ->
                 (* root in cone, leaves disjoint from cone *)
                 Bitdep.Int_set.mem c.root c.cone
                 && List.for_all
                      (fun l -> not (Bitdep.Int_set.mem l c.cone))
                      c.leaves
                 && List.sort_uniq Int.compare c.leaves = c.leaves
                 && c.area >= 0
                 && (Cuts.is_trivial c || c.support <= 4))
               cs)
        cuts)

let qsuite tests = List.map (fun t -> QCheck_alcotest.to_alcotest t) tests

let () =
  Alcotest.run "cuts"
    [
      ( "enumeration",
        [
          Alcotest.test_case "trivial first" `Quick test_trivial_first;
          Alcotest.test_case "chain merging" `Quick test_chain_merging;
          Alcotest.test_case "K-feasibility" `Quick test_k_feasibility_respected;
          Alcotest.test_case "inputs stay leaves" `Quick test_inputs_never_absorbed;
          Alcotest.test_case "black box trivial" `Quick test_black_box_trivial_only;
          Alcotest.test_case "registered boundaries" `Quick
            test_registered_edges_are_boundaries;
          Alcotest.test_case "figure 2 msb cut" `Quick test_figure2_msb_cut;
          Alcotest.test_case "pruning cap" `Quick test_pruning_cap;
          Alcotest.test_case "trivial only" `Quick test_trivial_only;
        ] );
      ( "cost model",
        [
          Alcotest.test_case "wire area" `Quick test_area_wire_zero;
          Alcotest.test_case "carry chain area" `Quick test_area_arith_carry_chain;
          Alcotest.test_case "delay classes" `Quick test_delay_classes;
        ] );
      ("invariants", qsuite [ cut_invariants ]);
    ]
