(* Fuzzing: random word-level CDFGs pushed through the complete synthesis
   flows. Every generated graph must (a) validate, (b) simulate, (c) be
   schedulable by the heuristic, SDC and map-first flows with verified
   results, and (d) produce an RTL netlist whose cycle-accurate simulation
   matches the dataflow semantics. *)

type gen_state = {
  b : Ir.Builder.t;
  mutable pool : (int * Ir.Builder.value) list;  (* width, node value *)
  mutable consumed : Ir.Builder.value list;
  mutable rng : int;
}

let rand st bound =
  (* xorshift-ish deterministic PRNG so failures replay *)
  let x = st.rng in
  let x = x lxor (x lsl 13) in
  let x = x lxor (x lsr 7) in
  let x = x lxor (x lsl 17) in
  st.rng <- x land max_int;
  st.rng mod max 1 bound

let widths = [| 1; 2; 4; 8 |]

let pick_of_width st w =
  let candidates = List.filter (fun (w', _) -> w' = w) st.pool in
  match candidates with
  | [] ->
      let v = Ir.Builder.const st.b ~width:w (Int64.of_int (rand st (1 lsl min w 12))) in
      st.pool <- (w, v) :: st.pool;
      v
  | l ->
      let _, v = List.nth l (rand st (List.length l)) in
      st.consumed <- v :: st.consumed;
      v

let push st w v = st.pool <- (w, v) :: st.pool

let add_random_op st =
  let w = widths.(rand st (Array.length widths)) in
  match rand st 12 with
  | 0 | 1 | 2 ->
      let x = pick_of_width st w and y = pick_of_width st w in
      let v =
        match rand st 3 with
        | 0 -> Ir.Builder.xor_ st.b x y
        | 1 -> Ir.Builder.and_ st.b x y
        | _ -> Ir.Builder.or_ st.b x y
      in
      push st w v
  | 3 ->
      let x = pick_of_width st w in
      push st w (Ir.Builder.not_ st.b x)
  | 4 | 5 ->
      let x = pick_of_width st w and y = pick_of_width st w in
      let v = if rand st 2 = 0 then Ir.Builder.add st.b x y else Ir.Builder.sub st.b x y in
      push st w v
  | 6 ->
      let x = pick_of_width st w in
      let s = 1 + rand st (max 1 (w - 1)) in
      let v = if rand st 2 = 0 then Ir.Builder.shl st.b x s else Ir.Builder.shr st.b x s in
      push st w v
  | 7 ->
      let x = pick_of_width st w and y = pick_of_width st w in
      let cmps = [| Ir.Op.Eq; Ir.Op.Ne; Ir.Op.Lt; Ir.Op.Le; Ir.Op.Gt; Ir.Op.Ge |] in
      push st 1 (Ir.Builder.cmp st.b cmps.(rand st 6) x y)
  | 8 ->
      let c = pick_of_width st 1 in
      let x = pick_of_width st w and y = pick_of_width st w in
      push st w (Ir.Builder.mux st.b ~cond:c x y)
  | 9 ->
      if w > 1 then begin
        let x = pick_of_width st w in
        let lo = rand st (w - 1) in
        let hi = lo + rand st (w - lo) in
        push st (hi - lo + 1) (Ir.Builder.slice st.b x ~lo ~hi)
      end
  | 10 ->
      let wh = widths.(rand st 2) (* 1 or 2 *) in
      let h = pick_of_width st wh and l = pick_of_width st w in
      push st (wh + w) (Ir.Builder.concat st.b h l)
  | _ ->
      let x = pick_of_width st w in
      push st w
        (Ir.Builder.black_box st.b ~kind:"f" ~resource:"bram_port" ~width:w
           [ x ])

let bb_handler ~kind args =
  match kind with
  | "f" -> Int64.add args.(0) 1L
  | _ -> invalid_arg "unexpected black box"

let build_random seed =
  let st =
    { b = Ir.Builder.create (); pool = []; consumed = []; rng = (seed * 2 + 1) land max_int }
  in
  let n_inputs = 2 + rand st 3 in
  for i = 0 to n_inputs - 1 do
    let w = widths.(rand st (Array.length widths)) in
    push st w (Ir.Builder.input st.b ~width:w (Printf.sprintf "in%d" i))
  done;
  (* optional recurrence *)
  let cell =
    if rand st 2 = 0 then begin
      let w = widths.(1 + rand st (Array.length widths - 1)) in
      let c =
        Ir.Builder.feedback st.b ~width:w ~init:(Int64.of_int (rand st 200))
          ~dist:(1 + rand st 2)
      in
      push st w c;
      Some (w, c)
    end
    else None
  in
  let ops = 8 + rand st 16 in
  for _ = 1 to ops do
    add_random_op st
  done;
  (* drive the recurrence with a same-width node (never the cell itself) *)
  (match cell with
  | None -> ()
  | Some (w, c) ->
      let x = pick_of_width st w and y = pick_of_width st w in
      let driver = Ir.Builder.xor_ st.b x y in
      ignore c;
      Ir.Builder.drive st.b ~cell:c driver);
  (* outputs: everything not consumed (feedback cells excluded), so all
     nodes stay live *)
  let is_cell v = match cell with Some (_, c) -> v == c | None -> false in
  let unconsumed =
    List.filter
      (fun (_, v) -> (not (List.memq v st.consumed)) && not (is_cell v))
      st.pool
  in
  (match unconsumed with
  | [] ->
      (* everything consumed: emit a fresh sink so the graph has an output *)
      let x = pick_of_width st 4 and y = pick_of_width st 4 in
      Ir.Builder.output st.b (Ir.Builder.xor_ st.b x y)
  | l -> List.iter (fun (_, v) -> Ir.Builder.output st.b v) l);
  Ir.Builder.finish st.b

let device = Fpga.Device.make ~t_clk:10.0 ()

let check_flow g method_ =
  let setup =
    { (Mams.Flow.default_setup ~device) with time_limit = 5.0 }
  in
  match Mams.Flow.run setup method_ g with
  | Error e ->
      QCheck.Test.fail_reportf "%s failed: %s" (Mams.Flow.method_name method_) e
  | Ok r ->
      (* pipeline vs dataflow equivalence *)
      let iterations = 8 in
      let stim ~iter ~name =
        Int64.of_int ((Hashtbl.hash (name, iter) land 0xffff) + iter)
      in
      let trace =
        Ir.Eval.run ~black_box:bb_handler g ~iterations ~inputs:stim
      in
      let nl = Rtl.Netlist.of_design g r.cover r.schedule in
      let cycles = iterations + Sched.Schedule.latency r.schedule in
      let sim =
        Rtl.Netlist.simulate ~black_box:bb_handler nl ~cycles
          ~inputs:(fun ~cycle ~name -> stim ~iter:cycle ~name)
      in
      List.iteri
        (fun i po ->
          let _, arr = List.nth sim.Rtl.Netlist.outputs i in
          let s_po = r.schedule.Sched.Schedule.cycle.(po) in
          for k = 0 to iterations - 1 do
            let cyc = k + s_po in
            if cyc < cycles && not (Int64.equal arr.(cyc) trace.(k).(po)) then
              QCheck.Test.fail_reportf
                "%s: output %d mismatch at iteration %d: rtl 0x%Lx <> 0x%Lx"
                (Mams.Flow.method_name method_)
                po k arr.(cyc) trace.(k).(po)
          done)
        (Ir.Cdfg.outputs g);
      true

let graph_is_sane =
  QCheck.Test.make ~name:"random graphs validate and simulate" ~count:150
    QCheck.(make Gen.(int_bound 100_000))
    (fun seed ->
      let g = build_random seed in
      (match Ir.Cdfg.validate g with
      | Ok () -> ()
      | Error e -> QCheck.Test.fail_reportf "invalid graph: %s" e);
      let trace =
        Ir.Eval.run ~black_box:bb_handler g ~iterations:3
          ~inputs:(fun ~iter ~name -> Int64.of_int (iter + Hashtbl.hash name land 0xff))
      in
      Array.length trace = 3)

let cuts_are_sound =
  QCheck.Test.make ~name:"random graphs: cut invariants" ~count:60
    QCheck.(make Gen.(int_bound 100_000))
    (fun seed ->
      let g = build_random seed in
      let cuts = Cuts.enumerate ~k:4 g in
      Array.for_all
        (fun cs ->
          Array.length cs >= 1
          && Cuts.is_trivial cs.(0)
          && Array.for_all
               (fun (c : Cuts.cut) ->
                 Bitdep.Int_set.mem c.Cuts.root c.Cuts.cone
                 (* a self-recurrent node may be its own (registered)
                    leaf; all other leaves stay outside the cone *)
                 && List.for_all
                      (fun l ->
                        l = c.Cuts.root
                        || not (Bitdep.Int_set.mem l c.Cuts.cone))
                      c.Cuts.leaves
                 && (Cuts.is_trivial c || c.Cuts.support <= 4))
               cs)
        cuts)

let simplify_preserves_semantics =
  QCheck.Test.make ~name:"random graphs: simplify preserves semantics"
    ~count:120
    QCheck.(make Gen.(int_bound 100_000))
    (fun seed ->
      let g = build_random seed in
      let g', _ = Opt.simplify g in
      (match Ir.Cdfg.validate g' with
      | Ok () -> ()
      | Error e -> QCheck.Test.fail_reportf "invalid after simplify: %s" e);
      if Ir.Cdfg.num_nodes g' > Ir.Cdfg.num_nodes g then
        QCheck.Test.fail_reportf "simplify grew the graph";
      let run gg =
        let trace =
          Ir.Eval.run ~black_box:bb_handler gg ~iterations:5
            ~inputs:(fun ~iter ~name ->
              Int64.of_int ((Hashtbl.hash (name, iter) land 0xffff) + iter))
        in
        List.init 5 (fun i ->
            List.map snd (Ir.Eval.outputs_of gg trace ~iter:i))
      in
      run g = run g')

let flows_verify_and_match =
  QCheck.Test.make ~name:"random graphs: flows verify, rtl = dataflow"
    ~count:60
    QCheck.(make Gen.(int_bound 100_000))
    (fun seed ->
      let g = build_random seed in
      List.for_all
        (fun m -> check_flow g m)
        [ Mams.Flow.Hls_tool; Mams.Flow.Sdc_tool; Mams.Flow.Map_heuristic ])

(* --- cut-validity oracle over random MILPs --------------------------- *)

(* Seeded random 0/1 knapsack-style MILPs, small enough to brute-force.
   Returns the model builder (fresh model per call: a solve consumes it)
   plus the raw coefficient data for enumeration. *)
let random_milp seed =
  let rng = ref ((seed * 2 + 1) land max_int) in
  let rand bound =
    let x = !rng in
    let x = x lxor (x lsl 13) in
    let x = x lxor (x lsr 7) in
    let x = x lxor (x lsl 17) in
    rng := x land max_int;
    !rng mod max 1 bound
  in
  let n = 4 + rand 5 in
  let n_rows = 2 + rand 3 in
  let rows =
    Array.init n_rows (fun _ ->
        let coeffs = Array.init n (fun _ -> float_of_int (1 + rand 5)) in
        let total = Array.fold_left ( +. ) 0.0 coeffs in
        (* roughly half the total: tight enough to branch, loose enough
           to stay feasible *)
        let rhs = Float.of_int (1 + rand (int_of_float total)) in
        (coeffs, rhs))
  in
  let obj = Array.init n (fun _ -> -.float_of_int (1 + rand 9)) in
  let build () =
    let m = Lp.Model.create () in
    let xs =
      Array.init n (fun i -> Lp.Model.bool_var m (Printf.sprintf "x%d" i))
    in
    Array.iter
      (fun (coeffs, rhs) ->
        Lp.Model.add_le m
          (Array.to_list (Array.mapi (fun i x -> (coeffs.(i), x)) xs))
          rhs)
      rows;
    Lp.Model.set_objective m
      (Array.to_list (Array.mapi (fun i x -> (obj.(i), x)) xs));
    m
  in
  (build, n, rows, obj)

(* Enumerate all feasible 0/1 points; [None] when none exists. *)
let brute_force n rows obj =
  let best = ref None in
  let feasible = ref [] in
  for mask = 0 to (1 lsl n) - 1 do
    let x = Array.init n (fun j -> float_of_int ((mask lsr j) land 1)) in
    let ok =
      Array.for_all
        (fun (coeffs, rhs) ->
          let a = ref 0.0 in
          Array.iteri (fun j c -> a := !a +. (c *. x.(j))) coeffs;
          !a <= rhs +. 1e-9)
        rows
    in
    if ok then begin
      feasible := x :: !feasible;
      let v = ref 0.0 in
      Array.iteri (fun j c -> v := !v +. (c *. x.(j))) obj;
      match !best with
      | Some (bv, _) when bv <= !v -> ()
      | _ -> best := Some (!v, x)
    end
  done;
  (!best, !feasible)

(* The oracle: root cutting planes must be invisible to results — same
   status and objective as the cuts-off solve at 1 and 4 domains — and
   every applied cut must be valid, i.e. exclude no feasible integer
   point (checked against the full brute-force enumeration, which is
   stronger than only checking the optimum). *)
let milp_cuts_are_valid =
  QCheck.Test.make ~name:"random MILPs: cuts invisible to results, exclude no feasible point"
    ~count:40
    QCheck.(make Gen.(int_bound 100_000))
    (fun seed ->
      let build, n, rows, obj = random_milp seed in
      let best, feasible = brute_force n rows obj in
      let base = Lp.Milp.solve ~time_limit:30.0 ~cuts:false (build ()) in
      (match (best, base.Lp.Milp.status) with
      | Some (bv, _), Lp.Milp.Optimal ->
          if Float.abs (bv -. base.Lp.Milp.objective) > 1e-6 then
            QCheck.Test.fail_reportf
              "cuts-off solve found %g, brute force %g"
              base.Lp.Milp.objective bv
      | Some _, s ->
          QCheck.Test.fail_reportf "cuts-off solve: %a" Lp.Milp.pp_status s
      | None, Lp.Milp.Infeasible -> ()
      | None, s ->
          QCheck.Test.fail_reportf
            "infeasible instance solved to %a" Lp.Milp.pp_status s);
      List.for_all
        (fun domains ->
          let r =
            Lp.Milp.solve ~time_limit:30.0 ~cuts:true ~certificates:true
              ~domains (build ())
          in
          if
            Lp.Milp.(
              match (base.status, r.status) with
              | Optimal, Optimal | Infeasible, Infeasible -> false
              | a, b -> a <> b)
          then
            QCheck.Test.fail_reportf "status differs with cuts @ %d domains"
              domains;
          (match (base.Lp.Milp.status, r.Lp.Milp.status) with
          | Lp.Milp.Optimal, Lp.Milp.Optimal ->
              if
                Float.abs (base.Lp.Milp.objective -. r.Lp.Milp.objective)
                > 1e-6
              then
                QCheck.Test.fail_reportf
                  "objective %g with cuts vs %g without @ %d domains"
                  r.Lp.Milp.objective base.Lp.Milp.objective domains
          | _ -> ());
          (match r.Lp.Milp.cert with
          | None -> QCheck.Test.fail_reportf "no certificate @ %d domains" domains
          | Some cert ->
              List.iteri
                (fun k (c : Lp.Cert.cut) ->
                  List.iter
                    (fun x ->
                      let lhs = ref 0.0 in
                      Array.iter
                        (fun (j, cf) -> lhs := !lhs +. (cf *. x.(j)))
                        c.Lp.Cert.cut_terms;
                      if !lhs > c.Lp.Cert.cut_rhs +. 1e-9 then
                        QCheck.Test.fail_reportf
                          "cut %d excludes a feasible integer point                            (lhs %g > rhs %g) @ %d domains"
                          k !lhs c.Lp.Cert.cut_rhs domains)
                    feasible)
                cert.Lp.Cert.cuts);
          true)
        [ 1; 4 ])

let qsuite tests = List.map (fun t -> QCheck_alcotest.to_alcotest t) tests

let () =
  Alcotest.run "fuzz"
    [
      ("graphs", qsuite [ graph_is_sane; cuts_are_sound ]);
      ("opt", qsuite [ simplify_preserves_semantics ]);
      ("milp-cuts", qsuite [ milp_cuts_are_valid ]);
      ("flows", qsuite [ flows_verify_and_match ]);
    ]
