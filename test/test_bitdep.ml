(* Tests for bit-level dependence tracking (paper Sec. 3.1): the DEP
   classes, the constant-aware refinements, and cone support closure. *)

module Bp = Bitdep.Bitpos

let bp ?(dist = 0) node bit = Bp.{ node; bit; dist }

let reads g ~node ~bit =
  let step = Bitdep.dep g ~node ~bit in
  List.sort Bp.compare step.Bitdep.reads

let check_reads msg expected actual =
  let expected = List.sort Bp.compare expected in
  if expected <> actual then
    Alcotest.failf "%s: got [%s], expected [%s]" msg
      (String.concat "; " (List.map (Fmt.str "%a" Bp.pp) actual))
      (String.concat "; " (List.map (Fmt.str "%a" Bp.pp) expected))

(* builder helpers *)
let two_inputs width =
  let b = Ir.Builder.create () in
  let x = Ir.Builder.input b ~width "x" in
  let y = Ir.Builder.input b ~width "y" in
  (b, x, y)

let finish1 b v =
  Ir.Builder.output b v;
  Ir.Builder.finish b

let test_bitwise_dep () =
  let b, x, y = two_inputs 4 in
  let g = finish1 b (Ir.Builder.xor_ b x y) in
  (* node ids: x=0 y=1 xor=2 *)
  check_reads "xor bit 2" [ bp 0 2; bp 1 2 ] (reads g ~node:2 ~bit:2)

let test_shift_dep () =
  let b = Ir.Builder.create () in
  let x = Ir.Builder.input b ~width:8 "x" in
  let s = Ir.Builder.shr b x 3 in
  let g = finish1 b s in
  check_reads "shr bit 0 reads bit 3" [ bp 0 3 ] (reads g ~node:1 ~bit:0);
  (* bits shifted in from beyond the msb are constant zero *)
  check_reads "shr bit 6 reads nothing" [] (reads g ~node:1 ~bit:6)

let test_shl_dep () =
  let b = Ir.Builder.create () in
  let x = Ir.Builder.input b ~width:8 "x" in
  let s = Ir.Builder.shl b x 2 in
  let g = finish1 b s in
  check_reads "shl bit 5 reads bit 3" [ bp 0 3 ] (reads g ~node:1 ~bit:5);
  check_reads "shl bit 1 is zero" [] (reads g ~node:1 ~bit:1)

let test_arith_dep () =
  let b, x, y = two_inputs 4 in
  let g = finish1 b (Ir.Builder.add b x y) in
  (* paper: out[j] depends on bits 0..j of both operands *)
  check_reads "add bit 2"
    [ bp 0 0; bp 0 1; bp 0 2; bp 1 0; bp 1 1; bp 1 2 ]
    (reads g ~node:2 ~bit:2)

let test_add_const_refinement () =
  (* x + 0b0100: bits below bit 2 pass through; bit 3 reads bits 2..3 *)
  let b = Ir.Builder.create () in
  let x = Ir.Builder.input b ~width:4 "x" in
  let c = Ir.Builder.const b ~width:4 4L in
  let g = finish1 b (Ir.Builder.add b x c) in
  check_reads "low bit passes through" [ bp 0 1 ] (reads g ~node:2 ~bit:1);
  let step = Bitdep.dep g ~node:2 ~bit:1 in
  Alcotest.(check bool) "passthrough flag" true step.Bitdep.passthrough;
  check_reads "bit 3 reads from tz up" [ bp 0 2; bp 0 3 ] (reads g ~node:2 ~bit:3)

let test_cmp_msb_refinement () =
  (* The paper's Fig. 2 observation: B >= 2^(w-1) probes only the MSB. *)
  let b = Ir.Builder.create () in
  let x = Ir.Builder.input b ~width:8 "x" in
  let c = Ir.Builder.const b ~width:8 0x80L in
  let g = finish1 b (Ir.Builder.cmp b Ir.Op.Ge x c) in
  check_reads "ge-msb reads only bit 7" [ bp 0 7 ] (reads g ~node:2 ~bit:0)

let test_cmp_trailing_zero_refinement () =
  (* x >= 0b0110_0000 depends on bits 5..7 only. *)
  let b = Ir.Builder.create () in
  let x = Ir.Builder.input b ~width:8 "x" in
  let c = Ir.Builder.const b ~width:8 0x60L in
  let g = finish1 b (Ir.Builder.cmp b Ir.Op.Ge x c) in
  check_reads "ge reads bits >= tz" [ bp 0 5; bp 0 6; bp 0 7 ]
    (reads g ~node:2 ~bit:0)

let test_cmp_const_true () =
  (* x >= 0 is constant: no dependence at all. *)
  let b = Ir.Builder.create () in
  let x = Ir.Builder.input b ~width:8 "x" in
  let c = Ir.Builder.const b ~width:8 0L in
  let g = finish1 b (Ir.Builder.cmp b Ir.Op.Ge x c) in
  check_reads "x >= 0 constant" [] (reads g ~node:2 ~bit:0)

let test_cmp_flipped_operands () =
  (* 0x80 <= x flips to x >= 0x80: MSB probe again. *)
  let b = Ir.Builder.create () in
  let x = Ir.Builder.input b ~width:8 "x" in
  let c = Ir.Builder.const b ~width:8 0x80L in
  let g = finish1 b (Ir.Builder.cmp b Ir.Op.Le c x) in
  check_reads "flipped le" [ bp 0 7 ] (reads g ~node:2 ~bit:0)

let test_and_mask_refinement () =
  let b = Ir.Builder.create () in
  let x = Ir.Builder.input b ~width:8 "x" in
  let m = Ir.Builder.const b ~width:8 0x0fL in
  let g = finish1 b (Ir.Builder.and_ b x m) in
  (* masked-off bit: constant zero *)
  check_reads "bit 6 masked off" [] (reads g ~node:2 ~bit:6);
  (* kept bit: passthrough *)
  let step = Bitdep.dep g ~node:2 ~bit:2 in
  check_reads "bit 2 kept" [ bp 0 2 ] (List.sort Bp.compare step.Bitdep.reads);
  Alcotest.(check bool) "kept bit is a wire" true step.Bitdep.passthrough

let test_mux_dep () =
  let b = Ir.Builder.create () in
  let x = Ir.Builder.input b ~width:4 "x" in
  let y = Ir.Builder.input b ~width:4 "y" in
  let c = Ir.Builder.input b ~width:1 "c" in
  let g = finish1 b (Ir.Builder.mux b ~cond:c x y) in
  check_reads "mux bit 2" [ bp 2 0; bp 0 2; bp 1 2 ] (reads g ~node:3 ~bit:2)

let test_concat_dep () =
  let b = Ir.Builder.create () in
  let hi = Ir.Builder.input b ~width:3 "hi" in
  let lo = Ir.Builder.input b ~width:5 "lo" in
  let g = finish1 b (Ir.Builder.concat b hi lo) in
  check_reads "low region" [ bp 1 4 ] (reads g ~node:2 ~bit:4);
  check_reads "high region" [ bp 0 0 ] (reads g ~node:2 ~bit:5)

let test_registered_read () =
  (* A loop-carried operand reads through a register: dist recorded. *)
  let b = Ir.Builder.create () in
  let x = Ir.Builder.input b ~width:4 "x" in
  let cell = Ir.Builder.feedback b ~width:4 ~init:0L ~dist:2 in
  let nxt = Ir.Builder.xor_ b x cell in
  Ir.Builder.drive b ~cell nxt;
  let g = finish1 b nxt in
  check_reads "feedback read" [ bp 0 1; bp ~dist:2 1 1 ] (reads g ~node:1 ~bit:1)

(* --- support closure -------------------------------------------------- *)

let mk_cone l = Bitdep.Int_set.of_list l

let test_support_through_cone () =
  (* cone {xor2; and3}: and(x ^ y, z) bit j supports {x[j], y[j], z[j]} *)
  let b = Ir.Builder.create () in
  let x = Ir.Builder.input b ~width:4 "x" in
  let y = Ir.Builder.input b ~width:4 "y" in
  let z = Ir.Builder.input b ~width:4 "z" in
  let t = Ir.Builder.xor_ b x y in
  let o = Ir.Builder.and_ b t z in
  let g = finish1 b o in
  let s = Bitdep.support g ~root:4 ~cone:(mk_cone [ 3; 4 ]) ~bit:1 in
  Alcotest.(check int) "support width" 3 (Bp.Set.cardinal s.Bitdep.bits);
  Alcotest.(check bool) "not a wire" false s.Bitdep.pure_wire

let test_support_stops_at_boundary () =
  let b = Ir.Builder.create () in
  let x = Ir.Builder.input b ~width:4 "x" in
  let y = Ir.Builder.input b ~width:4 "y" in
  let t = Ir.Builder.xor_ b x y in
  let o = Ir.Builder.not_ b t in
  let g = finish1 b o in
  (* cone {not} only: support is the xor node's bit, not the inputs *)
  let s = Bitdep.support g ~root:3 ~cone:(mk_cone [ 3 ]) ~bit:2 in
  check_reads "boundary bit" [ bp 2 2 ] (Bp.Set.elements s.Bitdep.bits)

let test_max_support_and_lut_bits () =
  (* u = t ^ (t >> 1): bit j needs t[j], t[j+1]; top bit passes through. *)
  let b = Ir.Builder.create () in
  let t = Ir.Builder.input b ~width:4 "t" in
  let sh = Ir.Builder.shr b t 1 in
  let u = Ir.Builder.xor_ b t sh in
  let g = finish1 b u in
  let cone = mk_cone [ 1; 2 ] in
  Alcotest.(check int) "max support" 2 (Bitdep.max_support_width g ~root:2 ~cone);
  (* bits 0..2 need LUTs; bit 3 = t[3] xor 0 passes through *)
  Alcotest.(check int) "lut bits" 3 (Bitdep.lut_bits g ~root:2 ~cone)

let test_wire_cone_is_free () =
  let b = Ir.Builder.create () in
  let t = Ir.Builder.input b ~width:8 "t" in
  let s = Ir.Builder.slice b t ~lo:2 ~hi:5 in
  let sh = Ir.Builder.shl b s 1 in
  let g = finish1 b sh in
  let cone = mk_cone [ 1; 2 ] in
  Alcotest.(check int) "pure wiring costs nothing" 0
    (Bitdep.lut_bits g ~root:2 ~cone)

(* Random graphs: support of the trivial cone equals the one-step reads
   (modulo constants), and support is monotone in the cone. *)
let support_monotone_in_cone =
  QCheck.Test.make ~name:"support grows no wider than cone union" ~count:100
    QCheck.(make Gen.(int_range 0 1000))
    (fun seed ->
      (* a small fixed-shape graph parameterized by the seed *)
      let b = Ir.Builder.create () in
      let x = Ir.Builder.input b ~width:6 "x" in
      let y = Ir.Builder.input b ~width:6 "y" in
      let t1 =
        if seed mod 2 = 0 then Ir.Builder.xor_ b x y else Ir.Builder.and_ b x y
      in
      let t2 = Ir.Builder.shr b t1 (seed mod 3) in
      let t3 = Ir.Builder.or_ b t2 y in
      Ir.Builder.output b t3;
      let g = Ir.Builder.finish b in
      let small = mk_cone [ 4 ] in
      let big = mk_cone [ 2; 3; 4 ] in
      let bit = seed mod 6 in
      let s_small = Bitdep.support g ~root:4 ~cone:small ~bit in
      let s_big = Bitdep.support g ~root:4 ~cone:big ~bit in
      (* the big cone's support never mentions interior nodes *)
      Bp.Set.for_all
        (fun r -> r.Bp.node = 0 || r.Bp.node = 1)
        s_big.Bitdep.bits
      && Bp.Set.cardinal s_small.Bitdep.bits <= 2)

let qsuite tests = List.map (fun t -> QCheck_alcotest.to_alcotest t) tests

let () =
  Alcotest.run "bitdep"
    [
      ( "dep",
        [
          Alcotest.test_case "bitwise" `Quick test_bitwise_dep;
          Alcotest.test_case "shr" `Quick test_shift_dep;
          Alcotest.test_case "shl" `Quick test_shl_dep;
          Alcotest.test_case "arith" `Quick test_arith_dep;
          Alcotest.test_case "add const" `Quick test_add_const_refinement;
          Alcotest.test_case "cmp msb" `Quick test_cmp_msb_refinement;
          Alcotest.test_case "cmp trailing zeros" `Quick
            test_cmp_trailing_zero_refinement;
          Alcotest.test_case "cmp const-true" `Quick test_cmp_const_true;
          Alcotest.test_case "cmp flipped" `Quick test_cmp_flipped_operands;
          Alcotest.test_case "and mask" `Quick test_and_mask_refinement;
          Alcotest.test_case "mux" `Quick test_mux_dep;
          Alcotest.test_case "concat" `Quick test_concat_dep;
          Alcotest.test_case "registered" `Quick test_registered_read;
        ] );
      ( "support",
        [
          Alcotest.test_case "through cone" `Quick test_support_through_cone;
          Alcotest.test_case "stops at boundary" `Quick
            test_support_stops_at_boundary;
          Alcotest.test_case "max support / lut bits" `Quick
            test_max_support_and_lut_bits;
          Alcotest.test_case "wire cone free" `Quick test_wire_cone_is_free;
        ] );
      ("random", qsuite [ support_monotone_in_cone ]);
    ]
