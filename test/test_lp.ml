(* Tests for the LP/MILP solver substrate: hand-checked LPs, statuses,
   bound handling, and randomized cross-checks against brute force. *)

let feq ?(eps = 1e-6) a b = Float.abs (a -. b) <= eps

let check_lp_obj name expected r =
  Alcotest.(check bool) (name ^ ": optimal") true (r.Lp.Simplex.status = Lp.Simplex.Optimal);
  if not (feq expected r.Lp.Simplex.objective) then
    Alcotest.failf "%s: objective %g, expected %g" name r.Lp.Simplex.objective
      expected

let solve_model m = Lp.Simplex.solve (Lp.Model.to_raw m)

let test_min_single () =
  let m = Lp.Model.create () in
  let x = Lp.Model.add_var m "x" in
  Lp.Model.add_ge m [ (1.0, x) ] 3.0;
  Lp.Model.set_objective m [ (1.0, x) ];
  check_lp_obj "min x, x>=3" 3.0 (solve_model m)

let test_max_2d () =
  let m = Lp.Model.create () in
  let x = Lp.Model.add_var m "x" in
  let y = Lp.Model.add_var m "y" in
  Lp.Model.add_le m [ (1.0, x); (1.0, y) ] 4.0;
  Lp.Model.add_le m [ (1.0, x) ] 2.0;
  Lp.Model.set_objective m [ (-1.0, x); (-1.0, y) ];
  check_lp_obj "max x+y" (-4.0) (solve_model m)

let test_equality () =
  let m = Lp.Model.create () in
  let x = Lp.Model.add_var m ~ub:3.0 "x" in
  let y = Lp.Model.add_var m ~ub:3.0 "y" in
  Lp.Model.add_eq m [ (1.0, x); (1.0, y) ] 5.0;
  Lp.Model.set_objective m [ (1.0, x) ];
  let r = solve_model m in
  check_lp_obj "x+y=5 min x" 2.0 r;
  Alcotest.(check bool) "y at ub" true (feq 3.0 r.Lp.Simplex.x.(1))

let test_ge_rows () =
  let m = Lp.Model.create () in
  let x = Lp.Model.add_var m "x" in
  let y = Lp.Model.add_var m "y" in
  Lp.Model.add_ge m [ (1.0, x); (2.0, y) ] 4.0;
  Lp.Model.add_ge m [ (3.0, x); (1.0, y) ] 6.0;
  Lp.Model.set_objective m [ (1.0, x); (1.0, y) ];
  check_lp_obj "two >= rows" 2.8 (solve_model m)

let test_bound_flip () =
  let m = Lp.Model.create () in
  let x = Lp.Model.add_var m ~ub:1.0 "x" in
  let y = Lp.Model.add_var m ~ub:1.0 "y" in
  Lp.Model.add_le m [ (1.0, x); (1.0, y) ] 1.5;
  Lp.Model.set_objective m [ (-1.0, x); (-2.0, y) ];
  check_lp_obj "bound flip" (-2.5) (solve_model m)

let test_infeasible () =
  let m = Lp.Model.create () in
  let x = Lp.Model.add_var m "x" in
  Lp.Model.add_ge m [ (1.0, x) ] 5.0;
  Lp.Model.add_le m [ (1.0, x) ] 2.0;
  Lp.Model.set_objective m [ (1.0, x) ];
  let r = solve_model m in
  Alcotest.(check bool) "infeasible" true (r.Lp.Simplex.status = Lp.Simplex.Infeasible)

let test_unbounded () =
  let m = Lp.Model.create () in
  let x = Lp.Model.add_var m "x" in
  Lp.Model.set_objective m [ (-1.0, x) ];
  let r = solve_model m in
  Alcotest.(check bool) "unbounded" true (r.Lp.Simplex.status = Lp.Simplex.Unbounded)

let test_negative_lb () =
  let m = Lp.Model.create () in
  let x = Lp.Model.add_var m ~lb:(-5.0) ~ub:5.0 "x" in
  Lp.Model.add_ge m [ (1.0, x) ] (-2.0);
  Lp.Model.set_objective m [ (1.0, x) ];
  check_lp_obj "negative lower bound" (-2.0) (solve_model m)

let test_free_via_shift () =
  (* min x + y with x in [-10,10], x + y = 1, y >= 0 -> x = -10? No:
     obj = x + y = 1 whenever the equality holds and y >= 0 needs x <= 1. *)
  let m = Lp.Model.create () in
  let x = Lp.Model.add_var m ~lb:(-10.0) ~ub:10.0 "x" in
  let y = Lp.Model.add_var m "y" in
  Lp.Model.add_eq m [ (1.0, x); (1.0, y) ] 1.0;
  Lp.Model.set_objective m [ (1.0, x); (1.0, y) ];
  check_lp_obj "objective along equality" 1.0 (solve_model m)

let test_degenerate () =
  (* Multiple constraints meeting at the optimum. *)
  let m = Lp.Model.create () in
  let x = Lp.Model.add_var m "x" in
  let y = Lp.Model.add_var m "y" in
  Lp.Model.add_le m [ (1.0, x); (1.0, y) ] 2.0;
  Lp.Model.add_le m [ (1.0, x) ] 1.0;
  Lp.Model.add_le m [ (1.0, y) ] 1.0;
  Lp.Model.add_le m [ (1.0, x); (-1.0, y) ] 0.0;
  Lp.Model.set_objective m [ (-1.0, x); (-1.0, y) ];
  check_lp_obj "degenerate vertex" (-2.0) (solve_model m)

let test_bound_overrides () =
  (* branch-and-bound tightens bounds without rebuilding the model *)
  let m = Lp.Model.create () in
  let x = Lp.Model.add_var m ~ub:10.0 "x" in
  let y = Lp.Model.add_var m ~ub:10.0 "y" in
  Lp.Model.add_le m [ (1.0, x); (1.0, y) ] 12.0;
  Lp.Model.set_objective m [ (-1.0, x); (-1.0, y) ];
  let raw = Lp.Model.to_raw m in
  let r = Lp.Simplex.solve raw in
  check_lp_obj "unrestricted" (-12.0) r;
  let lb = Array.copy raw.Lp.Model.lb and ub = Array.copy raw.Lp.Model.ub in
  ub.(0) <- 3.0;
  lb.(1) <- 5.0;
  let r = Lp.Simplex.solve ~lb ~ub raw in
  check_lp_obj "with overrides" (-12.0) r;
  Alcotest.(check bool) "x at its tightened ub" true (r.Lp.Simplex.x.(0) <= 3.0 +. 1e-9);
  Alcotest.(check bool) "y above its tightened lb" true (r.Lp.Simplex.x.(1) >= 5.0 -. 1e-9);
  (* crossing overrides make it infeasible *)
  lb.(0) <- 4.0;
  let r = Lp.Simplex.solve ~lb ~ub raw in
  Alcotest.(check bool) "crossed bounds infeasible" true
    (r.Lp.Simplex.status = Lp.Simplex.Infeasible)

let test_fixed_variables () =
  let m = Lp.Model.create () in
  let x = Lp.Model.add_var m ~ub:10.0 "x" in
  let y = Lp.Model.add_var m ~ub:10.0 "y" in
  Lp.Model.fix m x 4.0;
  Lp.Model.add_ge m [ (1.0, x); (1.0, y) ] 6.0;
  Lp.Model.set_objective m [ (1.0, y) ];
  let r = solve_model m in
  check_lp_obj "fixed var honored" 2.0 r;
  Alcotest.(check (float 1e-6)) "x stays fixed" 4.0 r.Lp.Simplex.x.(0)

let test_highly_degenerate () =
  (* many redundant constraints through the same vertex: exercises the
     anti-cycling path *)
  let m = Lp.Model.create () in
  let xs = List.init 6 (fun i -> Lp.Model.add_var m ~ub:1.0 (Printf.sprintf "x%d" i)) in
  List.iteri
    (fun i x ->
      List.iteri
        (fun j y -> if i < j then Lp.Model.add_le m [ (1.0, x); (1.0, y) ] 1.0)
        xs)
    xs;
  Lp.Model.add_le m (List.map (fun x -> (1.0, x)) xs) 1.0;
  Lp.Model.set_objective m (List.map (fun x -> (-1.0, x)) xs);
  check_lp_obj "degenerate polytope" (-1.0) (solve_model m)

let test_milp_time_limit_returns_feasible () =
  (* a painful MILP with a tiny budget still returns its warm start *)
  let m = Lp.Model.create () in
  let n = 18 in
  let xs = List.init n (fun i -> Lp.Model.bool_var m (Printf.sprintf "b%d" i)) in
  List.iteri
    (fun i x ->
      List.iteri
        (fun j y ->
          if i < j && (i + j) mod 3 = 0 then
            Lp.Model.add_le m [ (1.0, x); (1.0, y) ] 1.0)
        xs)
    xs;
  Lp.Model.set_objective m
    (List.mapi (fun i x -> (-1.0 -. (0.01 *. float_of_int i), x)) xs);
  let incumbent = Array.make n 0.0 in
  let r = Lp.Milp.solve ~time_limit:0.05 ~incumbent m in
  Alcotest.(check bool) "feasible or optimal" true
    (match r.Lp.Milp.status with
    | Lp.Milp.Optimal | Lp.Milp.Feasible -> true
    | _ -> false);
  Alcotest.(check bool) "no worse than warm start" true
    (r.Lp.Milp.objective <= 1e-9)

(* --- randomized LP checks ------------------------------------------- *)

let random_lp_gen =
  QCheck.Gen.(
    let coef = map (fun i -> float_of_int (i - 5)) (int_bound 10) in
    let* n = int_range 1 4 in
    let* m = int_range 1 4 in
    let* obj = list_repeat n coef in
    let* rows = list_repeat m (list_repeat n coef) in
    let* rhs = list_repeat m (map (fun i -> float_of_int i) (int_bound 12)) in
    return (n, obj, rows, rhs))

let build_random_lp (n, obj, rows, rhs) =
  let m = Lp.Model.create () in
  let xs = List.init n (fun i -> Lp.Model.add_var m ~ub:5.0 (Printf.sprintf "x%d" i)) in
  List.iter2
    (fun row b ->
      let terms = List.map2 (fun c x -> (c, x)) row xs in
      Lp.Model.add_le m terms b)
    rows rhs;
  Lp.Model.set_objective m (List.map2 (fun c x -> (c, x)) obj xs);
  (m, xs)

(* Optimal LP value must not beat any feasible grid point, and the returned
   point must itself be feasible. *)
let lp_never_beaten_by_grid =
  QCheck.Test.make ~name:"lp optimum <= every feasible grid point" ~count:200
    (QCheck.make random_lp_gen) (fun ((n, obj, rows, rhs) as spec) ->
      let model, _ = build_random_lp spec in
      let r = solve_model model in
      match r.Lp.Simplex.status with
      | Lp.Simplex.Infeasible | Lp.Simplex.Unbounded
      | Lp.Simplex.Iteration_limit | Lp.Simplex.Time_limit ->
          true (* box-bounded with x=0 feasible or not; nothing to check *)
      | Lp.Simplex.Optimal ->
          let feasible pt =
            List.for_all2
              (fun row b ->
                List.fold_left2 (fun acc c v -> acc +. (c *. v)) 0.0 row pt
                <= b +. 1e-9)
              rows rhs
          in
          let objective pt =
            List.fold_left2 (fun acc c v -> acc +. (c *. v)) 0.0 obj pt
          in
          (* check returned point is feasible *)
          let x = Array.to_list r.Lp.Simplex.x in
          let ret_ok =
            feasible x
            && List.for_all (fun v -> v >= -1e-6 && v <= 5.0 +. 1e-6) x
          in
          (* enumerate grid points {0, 2.5, 5}^n *)
          let levels = [ 0.0; 2.5; 5.0 ] in
          let rec grid k acc =
            if k = 0 then [ acc ]
            else
              List.concat_map (fun v -> grid (k - 1) (v :: acc)) levels
          in
          let pts = grid n [] in
          ret_ok
          && List.for_all
               (fun pt ->
                 (not (feasible pt))
                 || r.Lp.Simplex.objective <= objective pt +. 1e-5)
               pts)

(* --- MILP ------------------------------------------------------------ *)

let test_knapsack () =
  let values = [| 10.0; 13.0; 7.0; 8.0 |] in
  let weights = [| 5.0; 6.0; 3.0; 4.0 |] in
  let cap = 10.0 in
  let m = Lp.Model.create () in
  let xs = Array.mapi (fun i _ -> Lp.Model.bool_var m (Printf.sprintf "x%d" i)) values in
  Lp.Model.add_le m (Array.to_list (Array.mapi (fun i x -> (weights.(i), x)) xs)) cap;
  Lp.Model.set_objective m
    (Array.to_list (Array.mapi (fun i x -> (-.values.(i), x)) xs));
  let r = Lp.Milp.solve ~time_limit:10.0 m in
  Alcotest.(check bool) "optimal" true (r.Lp.Milp.status = Lp.Milp.Optimal);
  (* best: items 1 and 3 (13 + 8, weight 10) = 21 *)
  if not (feq (-21.0) r.Lp.Milp.objective) then
    Alcotest.failf "knapsack objective %g" r.Lp.Milp.objective

let test_milp_integer_general () =
  (* min 3x + 4y, 2x + y >= 5, x + 3y >= 7, x y integer >= 0.
     Optimal integer: try x=2,y=2: 2*2+2=6>=5, 2+6=8>=7 obj 14.
     x=1,y=3: 2+3=5, 1+9=10, obj 15. x=3,y=2: obj 17. x=2,y=2 -> 14.
     x=4,y=1: 9>=5, 7>=7 obj 16. So 14. *)
  let m = Lp.Model.create () in
  let x = Lp.Model.add_var m ~integer:true ~ub:10.0 "x" in
  let y = Lp.Model.add_var m ~integer:true ~ub:10.0 "y" in
  Lp.Model.add_ge m [ (2.0, x); (1.0, y) ] 5.0;
  Lp.Model.add_ge m [ (1.0, x); (3.0, y) ] 7.0;
  Lp.Model.set_objective m [ (3.0, x); (4.0, y) ];
  let r = Lp.Milp.solve ~time_limit:10.0 m in
  Alcotest.(check bool) "optimal" true (r.Lp.Milp.status = Lp.Milp.Optimal);
  if not (feq 14.0 r.Lp.Milp.objective) then
    Alcotest.failf "objective %g expected 14" r.Lp.Milp.objective

let test_milp_infeasible () =
  let m = Lp.Model.create () in
  let x = Lp.Model.bool_var m "x" in
  let y = Lp.Model.bool_var m "y" in
  Lp.Model.add_ge m [ (1.0, x); (1.0, y) ] 3.0;
  Lp.Model.set_objective m [ (1.0, x) ];
  let r = Lp.Milp.solve ~time_limit:10.0 m in
  Alcotest.(check bool) "infeasible" true (r.Lp.Milp.status = Lp.Milp.Infeasible)

let test_milp_incumbent () =
  (* Warm start with the known optimum; solver must not return worse. *)
  let m = Lp.Model.create () in
  let x = Lp.Model.bool_var m "x" in
  let y = Lp.Model.bool_var m "y" in
  Lp.Model.add_le m [ (1.0, x); (1.0, y) ] 1.0;
  Lp.Model.set_objective m [ (-2.0, x); (-1.0, y) ];
  let r = Lp.Milp.solve ~incumbent:[| 1.0; 0.0 |] ~time_limit:10.0 m in
  if not (feq (-2.0) r.Lp.Milp.objective) then
    Alcotest.failf "objective %g expected -2" r.Lp.Milp.objective

let test_milp_bad_incumbent () =
  let m = Lp.Model.create () in
  let x = Lp.Model.bool_var m "x" in
  Lp.Model.add_le m [ (1.0, x) ] 0.0;
  Lp.Model.set_objective m [ (1.0, x) ];
  Alcotest.check_raises "rejects infeasible incumbent"
    (Invalid_argument "Milp.solve: infeasible incumbent: row0: 1 > 0")
    (fun () -> ignore (Lp.Milp.solve ~incumbent:[| 1.0 |] m))

let test_objective_constant () =
  let m = Lp.Model.create () in
  let x = Lp.Model.bool_var m "x" in
  Lp.Model.set_objective m ~constant:10.0 [ (1.0, x) ];
  let r = Lp.Milp.solve ~time_limit:5.0 m in
  if not (feq 10.0 r.Lp.Milp.objective) then
    Alcotest.failf "objective %g expected 10" r.Lp.Milp.objective

(* Brute-force cross-check of random binary MILPs. *)
let milp_matches_brute_force =
  let gen =
    QCheck.Gen.(
      let coef = map (fun i -> float_of_int (i - 4)) (int_bound 8) in
      let* n = int_range 1 6 in
      let* m = int_range 1 3 in
      let* obj = list_repeat n coef in
      let* rows = list_repeat m (list_repeat n coef) in
      let* rhs = list_repeat m (map float_of_int (int_bound 6)) in
      return (n, obj, rows, rhs))
  in
  QCheck.Test.make ~name:"binary MILP matches brute force" ~count:120
    (QCheck.make gen) (fun (n, obj, rows, rhs) ->
      let m = Lp.Model.create () in
      let xs = List.init n (fun i -> Lp.Model.bool_var m (Printf.sprintf "b%d" i)) in
      List.iter2
        (fun row b -> Lp.Model.add_le m (List.map2 (fun c x -> (c, x)) row xs) b)
        rows rhs;
      Lp.Model.set_objective m (List.map2 (fun c x -> (c, x)) obj xs);
      let r = Lp.Milp.solve ~time_limit:20.0 m in
      (* brute force *)
      let best = ref infinity in
      for mask = 0 to (1 lsl n) - 1 do
        let pt = List.init n (fun i -> if mask land (1 lsl i) <> 0 then 1.0 else 0.0) in
        let feasible =
          List.for_all2
            (fun row b ->
              List.fold_left2 (fun acc c v -> acc +. (c *. v)) 0.0 row pt
              <= b +. 1e-9)
            rows rhs
        in
        if feasible then
          best :=
            Float.min !best
              (List.fold_left2 (fun acc c v -> acc +. (c *. v)) 0.0 obj pt)
      done;
      match r.Lp.Milp.status with
      | Lp.Milp.Optimal -> feq ~eps:1e-5 !best r.Lp.Milp.objective
      | Lp.Milp.Infeasible -> Float.is_integer !best = false || !best = infinity
      | Lp.Milp.Feasible | Lp.Milp.Unbounded | Lp.Milp.Unknown -> false)

(* --- warm restarts (Simplex.resolve) --------------------------------- *)

let status_name = function
  | Lp.Simplex.Optimal -> "optimal"
  | Lp.Simplex.Infeasible -> "infeasible"
  | Lp.Simplex.Unbounded -> "unbounded"
  | Lp.Simplex.Iteration_limit -> "iteration-limit"
  | Lp.Simplex.Time_limit -> "time-limit"

(* min -x - y  s.t.  x + y <= 4, x <= 2; root optimum -4 at (2, 2). *)
let resolve_fixture () =
  let m = Lp.Model.create () in
  let x = Lp.Model.add_var m "x" in
  let y = Lp.Model.add_var m "y" in
  Lp.Model.add_le m [ (1.0, x); (1.0, y) ] 4.0;
  Lp.Model.add_le m [ (1.0, x) ] 2.0;
  Lp.Model.set_objective m [ (-1.0, x); (-1.0, y) ];
  let raw = Lp.Model.to_raw m in
  let r, st = Lp.Simplex.solve_state raw in
  check_lp_obj "fixture root" (-4.0) r;
  (raw, st)

let test_resolve_warm_tighten () =
  let raw, st = resolve_fixture () in
  let lb = Array.copy raw.Lp.Model.lb and ub = Array.copy raw.Lp.Model.ub in
  ub.(1) <- 1.0;
  let r = Lp.Simplex.resolve ~lb ~ub st in
  check_lp_obj "resolve y<=1" (-3.0) r;
  Alcotest.(check bool) "warm path" true (Lp.Simplex.last_resolve_warm st);
  (* back to the original bounds: must return to the root optimum *)
  let r = Lp.Simplex.resolve ~lb ~ub:raw.Lp.Model.ub st in
  check_lp_obj "resolve relaxed back" (-4.0) r

let test_resolve_infeasible () =
  let raw, st = resolve_fixture () in
  let lb = Array.copy raw.Lp.Model.lb and ub = Array.copy raw.Lp.Model.ub in
  (* constraint-infeasible: x >= 3 crosses the row x <= 2 *)
  lb.(0) <- 3.0;
  let r = Lp.Simplex.resolve ~lb ~ub st in
  Alcotest.(check string) "dual repair proves infeasible" "infeasible"
    (status_name r.Lp.Simplex.status);
  (* crossed box: lb > ub is rejected without touching the basis *)
  let lb = Array.copy raw.Lp.Model.lb and ub = Array.copy raw.Lp.Model.ub in
  lb.(1) <- 2.0;
  ub.(1) <- 1.0;
  let r = Lp.Simplex.resolve ~lb ~ub st in
  Alcotest.(check string) "crossed box" "infeasible"
    (status_name r.Lp.Simplex.status);
  (* the state is still warm: the original bounds solve again *)
  let r = Lp.Simplex.resolve ~lb:raw.Lp.Model.lb ~ub:raw.Lp.Model.ub st in
  check_lp_obj "recovers after infeasible" (-4.0) r

let test_resolve_deadline () =
  let raw, st = resolve_fixture () in
  let lb = Array.copy raw.Lp.Model.lb and ub = Array.copy raw.Lp.Model.ub in
  ub.(1) <- 1.0;
  let deadline = Resilience.Deadline.of_budget 0.0 in
  let r = Lp.Simplex.resolve ~deadline ~lb ~ub st in
  Alcotest.(check string) "expired deadline" "time-limit"
    (status_name r.Lp.Simplex.status);
  (* a later resolve without the deadline completes normally *)
  let r = Lp.Simplex.resolve ~lb ~ub st in
  check_lp_obj "recovers after expiry" (-3.0) r

let test_resolve_fault () =
  let raw, st = resolve_fixture () in
  let lb = Array.copy raw.Lp.Model.lb and ub = Array.copy raw.Lp.Model.ub in
  ub.(1) <- 1.0;
  (match Resilience.Fault.arm "simplex.cycle" with
  | Ok () -> ()
  | Error e -> Alcotest.failf "arm: %s" e);
  Fun.protect ~finally:Resilience.Fault.clear (fun () ->
      let r = Lp.Simplex.resolve ~lb ~ub st in
      Alcotest.(check string) "injected cycle" "iteration-limit"
        (status_name r.Lp.Simplex.status));
  let r = Lp.Simplex.resolve ~lb ~ub st in
  check_lp_obj "recovers after fault" (-3.0) r

let test_resolve_refactor_parity () =
  (* Cross the periodic-refactorization boundary: 300 resolves over the
     same pair of bounds must keep agreeing with the cold answers. *)
  let raw, st = resolve_fixture () in
  let lb = raw.Lp.Model.lb and ub = raw.Lp.Model.ub in
  let tub = Array.copy ub in
  tub.(1) <- 1.0;
  for i = 1 to 300 do
    let u = if i mod 2 = 1 then tub else ub in
    let r = Lp.Simplex.resolve ~lb ~ub:u st in
    let expect = if i mod 2 = 1 then -3.0 else -4.0 in
    if not (feq expect r.Lp.Simplex.objective) then
      Alcotest.failf "resolve %d: objective %g expected %g" i
        r.Lp.Simplex.objective expect
  done

(* Property: a warm resolve is indistinguishable from a cold solve — same
   status, objective within 1e-6 — across chains of random monotone bound
   tightenings (the only kind branch-and-bound produces), including
   tightenings that cross the box (lb > ub) or cut off the feasible
   region entirely. *)
let resolve_equals_cold_solve =
  let gen =
    QCheck.Gen.(
      let* spec = random_lp_gen in
      let n, _, _, _ = spec in
      let step =
        let* j = int_bound (n - 1) in
        let* side = bool in
        let* v = map (fun i -> 0.5 *. float_of_int i) (int_bound 11) in
        return (j, side, v)
      in
      let* steps = list_size (int_range 1 4) step in
      return (spec, steps))
  in
  QCheck.Test.make ~name:"resolve = cold solve under bound tightenings"
    ~count:120 (QCheck.make gen) (fun (spec, steps) ->
      let model, _ = build_random_lp spec in
      let raw = Lp.Model.to_raw model in
      let _, st = Lp.Simplex.solve_state raw in
      let lb = Array.copy raw.Lp.Model.lb
      and ub = Array.copy raw.Lp.Model.ub in
      List.for_all
        (fun (j, side, v) ->
          (* monotone tightening, as in branch-and-bound *)
          if side then lb.(j) <- Float.max lb.(j) v
          else ub.(j) <- Float.min ub.(j) v;
          let rw = Lp.Simplex.resolve ~lb ~ub st in
          let rc = Lp.Simplex.solve ~lb ~ub raw in
          rw.Lp.Simplex.status = rc.Lp.Simplex.status
          && (rw.Lp.Simplex.status <> Lp.Simplex.Optimal
             || feq rw.Lp.Simplex.objective rc.Lp.Simplex.objective))
        steps)

(* --- PIPESYN_COLD_START escape hatch --------------------------------- *)

let test_milp_cold_start_parity () =
  let knapsack () =
    let values = [| 10.0; 13.0; 7.0; 8.0 |] in
    let weights = [| 5.0; 6.0; 3.0; 4.0 |] in
    let m = Lp.Model.create () in
    let xs =
      Array.mapi (fun i _ -> Lp.Model.bool_var m (Printf.sprintf "x%d" i)) values
    in
    Lp.Model.add_le m
      (Array.to_list (Array.mapi (fun i x -> (weights.(i), x)) xs))
      10.0;
    Lp.Model.set_objective m
      (Array.to_list (Array.mapi (fun i x -> (-.values.(i), x)) xs));
    Lp.Milp.solve ~time_limit:10.0 m
  in
  Unix.putenv "PIPESYN_COLD_START" "1";
  let cold =
    Fun.protect
      ~finally:(fun () -> Unix.putenv "PIPESYN_COLD_START" "")
      knapsack
  in
  let warm = knapsack () in
  Alcotest.(check bool) "cold optimal" true (cold.Lp.Milp.status = Lp.Milp.Optimal);
  Alcotest.(check bool) "warm optimal" true (warm.Lp.Milp.status = Lp.Milp.Optimal);
  if not (feq cold.Lp.Milp.objective warm.Lp.Milp.objective) then
    Alcotest.failf "cold %g vs warm %g" cold.Lp.Milp.objective
      warm.Lp.Milp.objective;
  Alcotest.(check int) "cold path never warm-starts" 0
    cold.Lp.Milp.stats.Lp.Milp.warm_hits;
  Alcotest.(check bool) "warm path reuses the basis" true
    (warm.Lp.Milp.stats.Lp.Milp.warm_hits > 0)

(* --- root presolve, cut separation, warm row appends ------------------ *)

let test_presolve_tighten () =
  (* 2x + 2y <= 1 forces both binaries to 0; z >= 1 forces z to 1; the
     one-hot a + b + c = 1 with a pinned then fixes b and c to 0 in the
     same fixpoint (clique-style fixing through activity propagation). *)
  let m = Lp.Model.create () in
  let x = Lp.Model.bool_var m "x" in
  let y = Lp.Model.bool_var m "y" in
  let z = Lp.Model.bool_var m "z" in
  let a = Lp.Model.bool_var m "a" in
  let b = Lp.Model.bool_var m "b" in
  let c = Lp.Model.bool_var m "c" in
  Lp.Model.add_le m [ (2.0, x); (2.0, y) ] 1.0;
  Lp.Model.add_ge m [ (1.0, z) ] 1.0;
  Lp.Model.add_eq m [ (1.0, a); (1.0, b); (1.0, c) ] 1.0;
  Lp.Model.add_ge m [ (1.0, a) ] 1.0;
  Lp.Model.set_objective m
    [ (1.0, x); (1.0, y); (1.0, z); (1.0, a); (1.0, b); (1.0, c) ];
  let raw = Lp.Model.to_raw m in
  let lb, ub, evs = Lp.Presolve.tighten raw in
  Alcotest.(check bool) "events emitted" true (evs <> []);
  Alcotest.(check (float 0.0)) "x fixed to 0" 0.0 ub.(0);
  Alcotest.(check (float 0.0)) "y fixed to 0" 0.0 ub.(1);
  Alcotest.(check (float 0.0)) "z fixed to 1" 1.0 lb.(2);
  Alcotest.(check (float 0.0)) "a fixed to 1" 1.0 lb.(3);
  Alcotest.(check (float 0.0)) "b fixed to 0" 0.0 ub.(4);
  Alcotest.(check (float 0.0)) "c fixed to 0" 0.0 ub.(5);
  (* the emitted log replays clean under the audit's CERT111 check: a
     certified solve of the same model must come back clean *)
  let m2 = Lp.Model.create () in
  let xs = Array.init 6 (fun i -> Lp.Model.bool_var m2 (Printf.sprintf "v%d" i)) in
  Lp.Model.add_le m2 [ (2.0, xs.(0)); (2.0, xs.(1)) ] 1.0;
  Lp.Model.add_ge m2 [ (1.0, xs.(2)) ] 1.0;
  Lp.Model.add_eq m2 [ (1.0, xs.(3)); (1.0, xs.(4)); (1.0, xs.(5)) ] 1.0;
  Lp.Model.add_ge m2 [ (1.0, xs.(3)) ] 1.0;
  Lp.Model.set_objective m2 (Array.to_list (Array.map (fun x -> (1.0, x)) xs));
  let raw2 = Lp.Model.to_raw m2 in
  let r = Lp.Milp.solve ~time_limit:10.0 ~certificates:true m2 in
  Alcotest.(check bool) "solve optimal" true (r.Lp.Milp.status = Lp.Milp.Optimal);
  match r.Lp.Milp.cert with
  | None -> Alcotest.fail "no certificate"
  | Some cert ->
      Alcotest.(check bool) "presolve events in certificate" true
        (cert.Lp.Cert.presolve <> []);
      let diags = Analyze.Audit.check raw2 cert in
      if Analyze.Diag.has_errors diags then
        Alcotest.failf "tighten log failed CERT111 replay:@.%a"
          Analyze.Diag.pp_report
          (Analyze.Diag.errors diags)

(* Every feasible integer point of [raw] (binaries enumerated over the
   box) must satisfy every cut: separation may only remove fractional
   volume. *)
let check_cuts_exclude_no_integer_point raw (cuts : Lp.Cert.cut list) =
  let n = raw.Lp.Model.n in
  for mask = 0 to (1 lsl n) - 1 do
    let x = Array.init n (fun j -> float_of_int ((mask lsr j) land 1)) in
    let feasible =
      Array.for_all
        (fun i ->
          let a = ref 0.0 in
          Array.iter (fun (j, cf) -> a := !a +. (cf *. x.(j))) raw.Lp.Model.rows.(i);
          match raw.Lp.Model.senses.(i) with
          | Lp.Model.Le -> !a <= raw.Lp.Model.rhs.(i) +. 1e-9
          | Lp.Model.Ge -> !a >= raw.Lp.Model.rhs.(i) -. 1e-9
          | Lp.Model.Eq -> Float.abs (!a -. raw.Lp.Model.rhs.(i)) <= 1e-9)
        (Array.init (Array.length raw.Lp.Model.rows) Fun.id)
      && Array.for_all
           (fun j -> x.(j) >= raw.Lp.Model.lb.(j) -. 1e-9 && x.(j) <= raw.Lp.Model.ub.(j) +. 1e-9)
           (Array.init n Fun.id)
    in
    if feasible then
      List.iteri
        (fun k (c : Lp.Cert.cut) ->
          let lhs = ref 0.0 in
          Array.iter (fun (j, cf) -> lhs := !lhs +. (cf *. x.(j))) c.Lp.Cert.cut_terms;
          if !lhs > c.Lp.Cert.cut_rhs +. 1e-9 then
            Alcotest.failf "cut %d excludes feasible point (lhs %g > rhs %g)"
              k !lhs c.Lp.Cert.cut_rhs)
        cuts
  done

let test_cutgen_cg () =
  (* max x + y over 2x + 2y <= 3, x y binary: the LP vertex is
     fractional and the CG round over the tableau row yields the cut
     x + y <= 1, which closes the integrality gap at the root. *)
  let m = Lp.Model.create () in
  let x = Lp.Model.bool_var m "x" in
  let y = Lp.Model.bool_var m "y" in
  Lp.Model.add_le m [ (2.0, x); (2.0, y) ] 3.0;
  Lp.Model.set_objective m [ (-1.0, x); (-1.0, y) ];
  let raw = Lp.Model.to_raw m in
  let r, st = Lp.Simplex.solve_state raw in
  Alcotest.(check bool) "LP optimal" true (r.Lp.Simplex.status = Lp.Simplex.Optimal);
  let frac =
    Array.exists (fun v -> Float.abs (v -. Float.round v) > 1e-6) r.Lp.Simplex.x
  in
  Alcotest.(check bool) "LP vertex fractional" true frac;
  let cuts =
    Lp.Cutgen.cg_cuts raw ~lb:raw.Lp.Model.lb ~ub:raw.Lp.Model.ub
      ~x:r.Lp.Simplex.x ~int_tol:1e-6
      ~multipliers:(Lp.Simplex.tableau_multipliers st)
  in
  Alcotest.(check bool) "a CG cut separates" true (cuts <> []);
  List.iter
    (fun (c : Lp.Cert.cut) ->
      (match c.Lp.Cert.cut_deriv with
      | Lp.Cert.Cg _ -> ()
      | _ -> Alcotest.fail "expected a Cg derivation");
      (* the returned cut is violated at the LP point *)
      let lhs = ref 0.0 in
      Array.iter
        (fun (j, cf) -> lhs := !lhs +. (cf *. r.Lp.Simplex.x.(j)))
        c.Lp.Cert.cut_terms;
      Alcotest.(check bool) "violated at the LP vertex" true
        (!lhs > c.Lp.Cert.cut_rhs +. 1e-6))
    cuts;
  check_cuts_exclude_no_integer_point raw cuts

let test_cutgen_cover () =
  (* 3x + 3y + 3z <= 5: any two binaries over-cover, so the fractional
     point (0.9, 0.8, 0.1) separates the cover cut x + y <= 1. *)
  let m = Lp.Model.create () in
  let x = Lp.Model.bool_var m "x" in
  let y = Lp.Model.bool_var m "y" in
  let z = Lp.Model.bool_var m "z" in
  Lp.Model.add_le m [ (3.0, x); (3.0, y); (3.0, z) ] 5.0;
  Lp.Model.set_objective m [ (-1.0, x); (-1.0, y); (-1.0, z) ];
  let raw = Lp.Model.to_raw m in
  let cuts =
    Lp.Cutgen.cover_cuts raw ~n_rows:(Array.length raw.Lp.Model.rows)
      ~lb:raw.Lp.Model.lb ~ub:raw.Lp.Model.ub ~x:[| 0.9; 0.8; 0.1 |]
  in
  Alcotest.(check bool) "a cover cut separates" true (cuts <> []);
  List.iter
    (fun (c : Lp.Cert.cut) ->
      match c.Lp.Cert.cut_deriv with
      | Lp.Cert.Cover _ -> ()
      | _ -> Alcotest.fail "expected a Cover derivation")
    cuts;
  check_cuts_exclude_no_integer_point raw cuts

let test_cut_pool () =
  let pool = Lp.Cutgen.create ~capacity:8 ~max_age:2 () in
  let cut rhs : Lp.Cert.cut =
    {
      Lp.Cert.cut_terms = [| (0, 1.0); (1, 1.0) |];
      cut_rhs = rhs;
      cut_deriv = Lp.Cert.Cg [| (0, 0.5) |];
    }
  in
  Lp.Cutgen.offer pool (cut 1.0);
  Lp.Cutgen.offer pool (cut 1.0);
  (* duplicate by normalized hash *)
  Alcotest.(check int) "duplicate offers collapse" 1 (Lp.Cutgen.pending pool);
  Lp.Cutgen.offer pool (cut 2.0);
  Alcotest.(check int) "distinct rhs kept" 2 (Lp.Cutgen.pending pool);
  (* x = (1.5, 0.5): the rhs-1 cut is violated (2 > 1), the rhs-2 cut
     is satisfied and must not be activated *)
  let chosen = Lp.Cutgen.select pool ~x:[| 1.5; 0.5 |] ~max_cuts:4 in
  Alcotest.(check int) "only the violated cut activates" 1 (List.length chosen);
  Alcotest.(check (float 0.0)) "most violated first" 1.0
    (List.hd chosen).Lp.Cert.cut_rhs;
  Alcotest.(check int) "applied counted" 1 (Lp.Cutgen.applied pool);
  (* an activated cut is never handed out twice *)
  let again = Lp.Cutgen.select pool ~x:[| 1.5; 0.5 |] ~max_cuts:4 in
  Alcotest.(check int) "no re-activation" 0 (List.length again);
  (* the satisfied candidate ages out after max_age idle rounds *)
  ignore (Lp.Cutgen.select pool ~x:[| 0.0; 0.0 |] ~max_cuts:4);
  ignore (Lp.Cutgen.select pool ~x:[| 0.0; 0.0 |] ~max_cuts:4);
  Alcotest.(check int) "aged out" 0 (Lp.Cutgen.pending pool)

let test_add_rows_warm () =
  (* append a violated cut row to a solved state: the next resolve must
     repair it on the warm path, and the duals must cover the new row *)
  let m = Lp.Model.create () in
  let x = Lp.Model.add_var m ~ub:2.0 "x" in
  let y = Lp.Model.add_var m ~ub:2.0 "y" in
  Lp.Model.add_le m [ (1.0, x); (1.0, y) ] 3.0;
  Lp.Model.set_objective m [ (-1.0, x); (-1.0, y) ];
  let raw = Lp.Model.to_raw m in
  let r, st = Lp.Simplex.solve_state raw in
  check_lp_obj "before the cut" (-3.0) r;
  Lp.Simplex.add_rows st [| ([| (0, 1.0); (1, 1.0) |], 1.0) |];
  let r = Lp.Simplex.resolve ~lb:raw.Lp.Model.lb ~ub:raw.Lp.Model.ub st in
  check_lp_obj "cut binds" (-1.0) r;
  Alcotest.(check bool) "warm dual repair" true (Lp.Simplex.last_resolve_warm st);
  (match Lp.Simplex.duals st with
  | Some d -> Alcotest.(check int) "duals cover the added row" 2 (Array.length d)
  | None -> Alcotest.fail "no duals after resolve")

let test_milp_cuts_ab_parity () =
  (* cuts on vs off: identical status and objective (results-invisible),
     on the general-integer model that actually branches *)
  let build () =
    let m = Lp.Model.create () in
    let x = Lp.Model.add_var m ~integer:true ~ub:10.0 "x" in
    let y = Lp.Model.add_var m ~integer:true ~ub:10.0 "y" in
    let z = Lp.Model.add_var m ~integer:true ~ub:10.0 "z" in
    Lp.Model.add_le m [ (2.0, x); (3.0, y); (1.0, z) ] 12.0;
    Lp.Model.add_ge m [ (1.0, x); (1.0, y) ] 2.0;
    Lp.Model.set_objective m [ (-3.0, x); (-5.0, y); (-1.0, z) ];
    m
  in
  let off = Lp.Milp.solve ~time_limit:10.0 ~cuts:false (build ()) in
  let on = Lp.Milp.solve ~time_limit:10.0 ~cuts:true (build ()) in
  Alcotest.(check bool) "off optimal" true (off.Lp.Milp.status = Lp.Milp.Optimal);
  Alcotest.(check bool) "on optimal" true (on.Lp.Milp.status = Lp.Milp.Optimal);
  if not (feq off.Lp.Milp.objective on.Lp.Milp.objective) then
    Alcotest.failf "cuts changed the objective: %g vs %g"
      on.Lp.Milp.objective off.Lp.Milp.objective

let qsuite name tests = (name, List.map (fun t -> QCheck_alcotest.to_alcotest t) tests)

let () =
  Alcotest.run "lp"
    [
      ( "simplex",
        [
          Alcotest.test_case "min single" `Quick test_min_single;
          Alcotest.test_case "max 2d" `Quick test_max_2d;
          Alcotest.test_case "equality" `Quick test_equality;
          Alcotest.test_case "ge rows" `Quick test_ge_rows;
          Alcotest.test_case "bound flip" `Quick test_bound_flip;
          Alcotest.test_case "infeasible" `Quick test_infeasible;
          Alcotest.test_case "unbounded" `Quick test_unbounded;
          Alcotest.test_case "negative lb" `Quick test_negative_lb;
          Alcotest.test_case "equality objective" `Quick test_free_via_shift;
          Alcotest.test_case "degenerate" `Quick test_degenerate;
          Alcotest.test_case "bound overrides" `Quick test_bound_overrides;
          Alcotest.test_case "fixed variables" `Quick test_fixed_variables;
          Alcotest.test_case "highly degenerate" `Quick test_highly_degenerate;
        ] );
      ( "milp",
        [
          Alcotest.test_case "knapsack" `Quick test_knapsack;
          Alcotest.test_case "integer general" `Quick test_milp_integer_general;
          Alcotest.test_case "infeasible" `Quick test_milp_infeasible;
          Alcotest.test_case "incumbent" `Quick test_milp_incumbent;
          Alcotest.test_case "bad incumbent" `Quick test_milp_bad_incumbent;
          Alcotest.test_case "objective constant" `Quick test_objective_constant;
          Alcotest.test_case "time limit keeps incumbent" `Quick
            test_milp_time_limit_returns_feasible;
        ] );
      ( "resolve",
        [
          Alcotest.test_case "warm tighten" `Quick test_resolve_warm_tighten;
          Alcotest.test_case "infeasible paths" `Quick test_resolve_infeasible;
          Alcotest.test_case "deadline expiry" `Quick test_resolve_deadline;
          Alcotest.test_case "fault injection" `Quick test_resolve_fault;
          Alcotest.test_case "refactor parity" `Quick
            test_resolve_refactor_parity;
          Alcotest.test_case "cold-start parity" `Quick
            test_milp_cold_start_parity;
        ] );
      ( "presolve-cuts",
        [
          Alcotest.test_case "presolve tighten" `Quick test_presolve_tighten;
          Alcotest.test_case "cg separation" `Quick test_cutgen_cg;
          Alcotest.test_case "cover separation" `Quick test_cutgen_cover;
          Alcotest.test_case "cut pool" `Quick test_cut_pool;
          Alcotest.test_case "add_rows warm" `Quick test_add_rows_warm;
          Alcotest.test_case "cuts A/B parity" `Quick test_milp_cuts_ab_parity;
        ] );
      qsuite "lp-random" [ lp_never_beaten_by_grid ];
      qsuite "milp-random" [ milp_matches_brute_force ];
      qsuite "resolve-random" [ resolve_equals_cold_solve ];
    ]
