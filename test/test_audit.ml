(* Exact-rational certificate audit (DESIGN.md Sec. 3h).

   Three layers: unit tests for the dyadic-rational core [Analyze.Qd];
   positive end-to-end checks that proof-carrying solves of hand-built
   MILPs, kernel formulations and all nine registry benchmarks pass
   [Analyze.Audit] at 1, 2 and 4 worker domains; and negative checks
   that hand-corrupted certificates (wrong duals, truncated pruning
   log, stale incumbent, broken Farkas ray, broken branch arithmetic,
   fractional incumbent) each trip their designated CERT code. *)

let qd = Alcotest.testable Analyze.Qd.pp Analyze.Qd.equal

(* --- Qd: exact dyadic rationals ------------------------------------- *)

let test_qd_roundtrip () =
  List.iter
    (fun f ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "of_float/to_float roundtrip %h" f)
        f
        (Analyze.Qd.to_float (Analyze.Qd.of_float f)))
    [ 0.0; 1.0; -1.0; 0.1; -0.3; 1e-300; 1e300; Float.ldexp 1.0 1000;
      Float.ldexp 1.0 (-1000); 4503599627370497.0 (* 2^52 + 1 *) ]

let test_qd_nonfinite () =
  List.iter
    (fun f ->
      let raised =
        try
          ignore (Analyze.Qd.of_float f);
          false
        with Invalid_argument _ -> true
      in
      Alcotest.(check bool)
        (Printf.sprintf "of_float %h raises" f)
        true raised)
    [ Float.nan; Float.infinity; Float.neg_infinity ]

let test_qd_ring () =
  let q = Analyze.Qd.of_float in
  let i = Analyze.Qd.of_int in
  Alcotest.check qd "0.5 + 0.25 = 0.75" (q 0.75) (Analyze.Qd.add (q 0.5) (q 0.25));
  Alcotest.check qd "0.5 * 2 = 1" (i 1) (Analyze.Qd.mul (q 0.5) (i 2));
  Alcotest.check qd "a - a = 0" Analyze.Qd.zero (Analyze.Qd.sub (q 0.1) (q 0.1));
  Alcotest.check qd "neg (neg a) = a" (q 0.3) (Analyze.Qd.neg (Analyze.Qd.neg (q 0.3)));
  (* mixed-exponent sums that a float accumulator would round away *)
  let big = q (Float.ldexp 1.0 80) and tiny = q (Float.ldexp 1.0 (-80)) in
  let s = Analyze.Qd.add (Analyze.Qd.sub big big) tiny in
  Alcotest.check qd "(big - big) + tiny = tiny exactly" tiny s;
  (* the arithmetic is exact, so the float-lore identity 0.1 + 0.2 = 0.3
     must *fail*: the dyadic values really differ *)
  Alcotest.(check bool)
    "0.1 + 0.2 <> 0.3 in exact arithmetic" false
    (Analyze.Qd.equal (Analyze.Qd.add (q 0.1) (q 0.2)) (q 0.3));
  Alcotest.check qd "sum 0..3 = 6" (i 6) (Analyze.Qd.sum 4 i)

let test_qd_order () =
  let q = Analyze.Qd.of_float in
  Alcotest.(check bool) "0.1 < 0.2" true (Analyze.Qd.lt (q 0.1) (q 0.2));
  Alcotest.(check bool) "-3 <= -3" true (Analyze.Qd.leq (q (-3.0)) (q (-3.0)));
  Alcotest.(check bool) "2^60 >= 2^59" true
    (Analyze.Qd.geq (q (Float.ldexp 1.0 60)) (q (Float.ldexp 1.0 59)));
  Alcotest.(check int) "sign -0.5" (-1) (Analyze.Qd.sign (q (-0.5)));
  Alcotest.(check bool) "is_zero (0.1 - 0.1)" true
    (Analyze.Qd.is_zero (Analyze.Qd.sub (q 0.1) (q 0.1)));
  Alcotest.check qd "min picks smaller" (q 0.25) (Analyze.Qd.min (q 0.5) (q 0.25))

let test_qd_integer () =
  let q = Analyze.Qd.of_float in
  Alcotest.(check bool) "3.0 integral" true (Analyze.Qd.is_integer (q 3.0));
  Alcotest.(check bool) "2.5 not integral" false (Analyze.Qd.is_integer (q 2.5));
  Alcotest.(check bool) "2^60 integral" true
    (Analyze.Qd.is_integer (q (Float.ldexp 1.0 60)));
  Alcotest.(check bool) "2^-3 not integral" false
    (Analyze.Qd.is_integer (q 0.125));
  Alcotest.(check bool) "0 integral" true (Analyze.Qd.is_integer Analyze.Qd.zero)

(* --- positive audits: hand-built MILPs ------------------------------ *)

let knapsack () =
  let values = [| 10.0; 13.0; 7.0; 8.0; 5.0; 9.0 |] in
  let weights = [| 5.0; 6.0; 3.0; 4.0; 2.0; 5.0 |] in
  let m = Lp.Model.create () in
  let xs =
    Array.mapi (fun i _ -> Lp.Model.bool_var m (Printf.sprintf "x%d" i)) values
  in
  Lp.Model.add_le m
    (Array.to_list (Array.mapi (fun i x -> (weights.(i), x)) xs))
    12.0;
  Lp.Model.set_objective m
    (Array.to_list (Array.mapi (fun i x -> (-.values.(i), x)) xs));
  m

let symmetric_cover () =
  let m = Lp.Model.create () in
  let xs = Array.init 6 (fun i -> Lp.Model.bool_var m (Printf.sprintf "s%d" i)) in
  Lp.Model.add_eq m (Array.to_list (Array.map (fun x -> (1.0, x)) xs)) 3.0;
  Lp.Model.set_objective m (Array.to_list (Array.map (fun x -> (1.0, x)) xs));
  m

let general_integer () =
  let m = Lp.Model.create () in
  let x = Lp.Model.add_var m ~integer:true ~ub:10.0 "x" in
  let y = Lp.Model.add_var m ~integer:true ~ub:10.0 "y" in
  let z = Lp.Model.add_var m ~integer:true ~ub:10.0 "z" in
  Lp.Model.add_le m [ (2.0, x); (3.0, y); (1.0, z) ] 12.0;
  Lp.Model.add_ge m [ (1.0, x); (1.0, y) ] 2.0;
  Lp.Model.set_objective m [ (-3.0, x); (-5.0, y); (-1.0, z) ];
  m

let infeasible () =
  let m = Lp.Model.create () in
  let x = Lp.Model.bool_var m "x" in
  let y = Lp.Model.bool_var m "y" in
  Lp.Model.add_ge m [ (1.0, x); (1.0, y) ] 3.0;
  Lp.Model.set_objective m [ (1.0, x); (1.0, y) ];
  m

(* mixed-sense pure LP (no integers): the solve is a single integral
   root node, so a clean audit pins down the Le/Ge/Eq dual sign
   conventions of the extraction in [Simplex.duals] *)
let mixed_sense_lp () =
  let m = Lp.Model.create () in
  let x = Lp.Model.add_var m ~ub:5.0 "x" in
  let y = Lp.Model.add_var m ~ub:5.0 "y" in
  Lp.Model.add_ge m [ (1.0, x); (1.0, y) ] 2.0;
  Lp.Model.add_eq m [ (1.0, x); (-1.0, y) ] 0.0;
  Lp.Model.add_le m [ (3.0, x); (1.0, y) ] 12.0;
  Lp.Model.set_objective m [ (1.0, x); (2.0, y) ];
  m

let infeasible_lp () =
  let m = Lp.Model.create () in
  let x = Lp.Model.add_var m ~ub:10.0 "x" in
  Lp.Model.add_ge m [ (1.0, x) ] 3.0;
  Lp.Model.add_le m [ (1.0, x) ] 1.0;
  Lp.Model.set_objective m [ (1.0, x) ];
  m

let dom_counts = [ 1; 2; 4 ]

(* Solve [build ()] proof-carrying at every domain count and demand a
   clean exact-rational audit. [build] must return a fresh model each
   call ([Lp.Model.t] is consumed by the solve). *)
let check_audit_clean ?(time_limit = 30.0) name build =
  List.iter
    (fun d ->
      let m = build () in
      let raw = Lp.Model.to_raw m in
      let r = Lp.Milp.solve ~time_limit ~domains:d ~certificates:true m in
      match r.Lp.Milp.cert with
      | None -> Alcotest.failf "%s @ %d domains: solve carried no certificate" name d
      | Some cert ->
          let diags = Analyze.Audit.check raw cert in
          if Analyze.Diag.has_errors diags then
            Alcotest.failf "%s @ %d domains: audit found errors:@.%a" name d
              Analyze.Diag.pp_report
              (Analyze.Diag.errors diags))
    dom_counts

let test_audit_knapsack () = check_audit_clean "knapsack" knapsack
let test_audit_symmetric () = check_audit_clean "symmetric cover" symmetric_cover
let test_audit_general () = check_audit_clean "general integer" general_integer
let test_audit_infeasible () = check_audit_clean "infeasible" infeasible
let test_audit_lp_duals () = check_audit_clean "mixed-sense LP" mixed_sense_lp
let test_audit_lp_farkas () = check_audit_clean "infeasible LP" infeasible_lp

(* --- positive audits: kernel formulations --------------------------- *)

let device = Fpga.Device.make ~t_clk:10.0 ()
let delays = Fpga.Delays.default

let kernel_model ?(mapped = false) build () =
  let g = build () in
  let cfg : Mams.Formulation.config =
    {
      device;
      delays;
      resources = Fpga.Resource.unlimited;
      ii = 1;
      max_latency = 6;
      alpha = 0.5;
      beta = 0.5;
      cut_delay =
        (if mapped then Mams.Formulation.mapped_delay ~device ~delays
         else Mams.Formulation.additive_delay ~delays);
    }
  in
  let cuts = if mapped then Cuts.enumerate ~k:4 g else Cuts.trivial_only g in
  let f = Mams.Formulation.build cfg g cuts in
  Mams.Formulation.model f

let small_recurrence () =
  let b = Ir.Builder.create () in
  let x = Ir.Builder.input b ~width:4 "x" in
  let cell = Ir.Builder.feedback b ~width:4 ~init:0L ~dist:1 in
  let t1 = Ir.Builder.xor_ b x cell in
  let t2 = Ir.Builder.not_ b t1 in
  Ir.Builder.drive b ~cell t1;
  Ir.Builder.output b t2;
  Ir.Builder.finish b

let test_audit_kernel_recurrence () =
  check_audit_clean "recurrence formulation"
    (kernel_model ~mapped:true small_recurrence)

let test_audit_kernel_clz () =
  check_audit_clean "CLZ formulation"
    (kernel_model ~mapped:true (fun () -> Benchmarks.Clz.build ~width:4 ()))

let test_audit_kernel_rs () =
  check_audit_clean "RS kernel formulation"
    (kernel_model (fun () -> Benchmarks.Rs.kernel ~width:2 ()))

(* --- positive audits: the full registry through the flow ------------ *)

(* Every Table 1 benchmark, MILP-map flow with [audit = true], at 1 and
   4 worker domains (the CI gate's matrix): the flow must succeed, the
   solve must carry a certificate, and the audit must come back clean.
   The budget is short — a budget-truncated [Feasible] certificate is
   still a complete per-node proof and must audit clean too. *)
let test_registry_audit () =
  List.iter
    (fun (e : Benchmarks.Registry.entry) ->
      let g = e.build () in
      List.iter
        (fun d ->
          let setup =
            {
              (Mams.Flow.default_setup
                 ~device:(Fpga.Device.make ~t_clk:e.t_clk ()))
              with
              Mams.Flow.resources = e.resources;
              time_limit = 2.0;
              domains = Some d;
              audit = true;
            }
          in
          match Mams.Flow.run setup Mams.Flow.Milp_map g with
          | Error msg ->
              Alcotest.failf "%s @ %d domains: flow failed: %s" e.name d msg
          | Ok r -> (
              match r.Mams.Flow.solve.Mams.Flow.audit_diags with
              | None ->
                  Alcotest.failf "%s @ %d domains: no certificate was audited"
                    e.name d
              | Some diags ->
                  if Analyze.Diag.has_errors diags then
                    Alcotest.failf "%s @ %d domains: audit found errors:@.%a"
                      e.name d Analyze.Diag.pp_report
                      (Analyze.Diag.errors diags);
                  Alcotest.(check (option int))
                    (Printf.sprintf "%s @ %d domains: metrics.audit_errors"
                       e.name d)
                    (Some 0) r.Mams.Flow.metrics.Obs.Metrics.audit_errors))
        [ 1; 4 ])
    Benchmarks.Registry.all

(* --- negative audits: hand-corrupted certificates ------------------- *)

(* One reference proof-carrying solve whose certificate the corruption
   tests mutate. The solve is deterministic, so computing it once keeps
   the negative cases cheap. *)
let solved_knapsack =
  lazy
    (let m = knapsack () in
     let raw = Lp.Model.to_raw m in
     let r = Lp.Milp.solve ~time_limit:30.0 ~certificates:true m in
     match (r.Lp.Milp.status, r.Lp.Milp.cert) with
     | Lp.Milp.Optimal, Some cert -> (raw, cert)
     | _ -> Alcotest.fail "knapsack reference solve did not produce a certificate")

let codes diags =
  List.sort_uniq String.compare
    (List.map (fun (d : Analyze.Diag.t) -> d.Analyze.Diag.code)
       (Analyze.Diag.errors diags))

let expect_code name code diags =
  if not (List.mem code (codes diags)) then
    Alcotest.failf "%s: expected %s, audit reported [%s]" name code
      (String.concat "; " (codes diags))

let expect_clean_reference () =
  let raw, cert = Lazy.force solved_knapsack in
  let diags = Analyze.Audit.check raw cert in
  if Analyze.Diag.has_errors diags then
    Alcotest.failf "reference certificate must audit clean:@.%a"
      Analyze.Diag.pp_report
      (Analyze.Diag.errors diags)

let map_nodes f (cert : Lp.Cert.t) = { cert with Lp.Cert.nodes = List.map f cert.Lp.Cert.nodes }

let test_corrupt_duals () =
  expect_clean_reference ();
  let raw, cert = Lazy.force solved_knapsack in
  (* zero out the root node's dual vector: the Neumaier–Shcherbina bound
     collapses to the box minimum of the objective, far below the
     claimed LP optimum *)
  let corrupted =
    map_nodes
      (fun (n : Lp.Cert.node) ->
        match (n.Lp.Cert.id, n.Lp.Cert.claim) with
        | 0, Lp.Cert.Lp_optimal { obj; duals } ->
            {
              n with
              Lp.Cert.claim =
                Lp.Cert.Lp_optimal
                  { obj; duals = Array.map (fun _ -> 0.0) duals };
            }
        | _ -> n)
      cert
  in
  expect_code "corrupted dual" "CERT103" (Analyze.Audit.check raw corrupted)

let test_truncated_log () =
  let raw, cert = Lazy.force solved_knapsack in
  (* drop a branched interior node: its recorded children now reference
     a parent that is missing from the log *)
  let victim =
    match
      List.find_opt
        (fun (n : Lp.Cert.node) ->
          match n.Lp.Cert.fathom with Lp.Cert.F_branched _ -> true | _ -> false)
        cert.Lp.Cert.nodes
    with
    | Some n -> n.Lp.Cert.id
    | None -> Alcotest.fail "reference solve never branched"
  in
  let corrupted =
    {
      cert with
      Lp.Cert.nodes =
        List.filter
          (fun (n : Lp.Cert.node) -> n.Lp.Cert.id <> victim)
          cert.Lp.Cert.nodes;
    }
  in
  expect_code "truncated pruning log" "CERT101" (Analyze.Audit.check raw corrupted)

let test_stale_incumbent () =
  let raw, cert = Lazy.force solved_knapsack in
  (* claim a better final objective than any incumbent the log ever
     accepted — the race oracle must notice the phantom improvement *)
  let corrupted = { cert with Lp.Cert.objective = cert.Lp.Cert.objective -. 1.0 } in
  expect_code "stale incumbent" "CERT107" (Analyze.Audit.check raw corrupted)

let test_fractional_incumbent () =
  let raw, cert = Lazy.force solved_knapsack in
  let corrupted =
    match cert.Lp.Cert.incumbent with
    | None -> Alcotest.fail "reference solve carried no incumbent"
    | Some x ->
        let x = Array.copy x in
        x.(0) <- 0.5;
        { cert with Lp.Cert.incumbent = Some x }
  in
  expect_code "fractional incumbent" "CERT102" (Analyze.Audit.check raw corrupted)

let test_broken_branch_arith () =
  let raw, cert = Lazy.force solved_knapsack in
  (* shift one branch's up-child lower bound: the down/up edits no
     longer partition the parent box ([up_lb = down_ub + 1]) *)
  let corrupted =
    map_nodes
      (fun (n : Lp.Cert.node) ->
        match n.Lp.Cert.fathom with
        | Lp.Cert.F_branched { bvar; down_id; down_ub; up_id; up_lb } ->
            {
              n with
              Lp.Cert.fathom =
                Lp.Cert.F_branched
                  { bvar; down_id; down_ub; up_id; up_lb = up_lb +. 1.0 };
            }
        | _ -> n)
      cert
  in
  expect_code "broken branch arithmetic" "CERT106"
    (Analyze.Audit.check raw corrupted)

let test_corrupt_farkas () =
  let m = infeasible () in
  let raw = Lp.Model.to_raw m in
  let r = Lp.Milp.solve ~time_limit:30.0 ~certificates:true m in
  match (r.Lp.Milp.status, r.Lp.Milp.cert) with
  | Lp.Milp.Infeasible, Some cert ->
      let clean = Analyze.Audit.check raw cert in
      if Analyze.Diag.has_errors clean then
        Alcotest.failf "infeasibility certificate must audit clean:@.%a"
          Analyze.Diag.pp_report (Analyze.Diag.errors clean);
      let corrupted =
        map_nodes
          (fun (n : Lp.Cert.node) ->
            match n.Lp.Cert.claim with
            | Lp.Cert.Lp_infeasible (Some (Lp.Cert.Ray ray)) ->
                {
                  n with
                  Lp.Cert.claim =
                    Lp.Cert.Lp_infeasible
                      (Some (Lp.Cert.Ray (Array.map (fun _ -> 0.0) ray)));
                }
            | _ -> n)
          cert
      in
      expect_code "corrupted Farkas ray" "CERT104"
        (Analyze.Audit.check raw corrupted)
  | s, _ ->
      Alcotest.failf "infeasible model solved to %a" Lp.Milp.pp_status s

(* --- negative audits: corrupted cut and tightening evidence ---------- *)

(* The reference knapsack row is weights = (5, 6, 3, 4, 2, 5) <= 12 over
   binaries. Hand-derive evidence against it so the corruptions are
   exactly one step away from valid. *)

(* CG from lambda = 0.5 on row 0: exact aggregation (2.5, 3, 1.5, 2, 1,
   2.5) <= 6; flooring each coefficient charges the change to the lower
   bound 0, so (2, 3, 1, 2, 1, 2) <= 6 passes the CERT109 replay. *)
let hand_cg_cut rhs : Lp.Cert.cut =
  {
    Lp.Cert.cut_terms =
      [| (0, 2.0); (1, 3.0); (2, 1.0); (3, 2.0); (4, 1.0); (5, 2.0) |];
    cut_rhs = rhs;
    cut_deriv = Lp.Cert.Cg [| (0, 0.5) |];
  }

(* Members {0, 1, 2} weigh 5 + 6 + 3 = 14 > 12: a genuine cover, so
   x0 + x1 + x2 <= 2 passes the CERT110 replay. *)
let hand_cover_cut ?(members = [| 0; 1; 2 |]) rhs : Lp.Cert.cut =
  {
    Lp.Cert.cut_terms = Array.map (fun j -> (j, 1.0)) members;
    cut_rhs = rhs;
    cut_deriv = Lp.Cert.Cover { c_row = 0; members };
  }

(* Swap in a hand-built cut list and collect only the cut/tighten codes:
   the solver's node duals were recorded over the unextended row system,
   so folding extra cut rows in legitimately perturbs the node checks —
   those codes are not under test here. *)
let cut_codes cuts =
  let raw, cert = Lazy.force solved_knapsack in
  let diags = Analyze.Audit.check raw { cert with Lp.Cert.cuts } in
  List.filter (fun c -> c = "CERT109" || c = "CERT110") (codes diags)

let test_cut_cg_validity () =
  Alcotest.(check (list string)) "valid CG derivation accepted" []
    (cut_codes [ hand_cg_cut 6.0 ]);
  (* rounding the rhs below the exact aggregation claims a tighter
     inequality than Chvatal-Gomory yields *)
  Alcotest.(check (list string)) "over-rounded rhs rejected" [ "CERT109" ]
    (cut_codes [ hand_cg_cut 5.0 ]);
  (* inflating a coefficient makes the deviation charge positive:
     2 -> 4 on x0 shifts t' to 6 + 1.5 = 7.5 > rhs 6 *)
  let inflated = hand_cg_cut 6.0 in
  let terms = Array.copy inflated.Lp.Cert.cut_terms in
  terms.(0) <- (0, 4.0);
  Alcotest.(check (list string)) "inflated coefficient rejected" [ "CERT109" ]
    (cut_codes [ { inflated with Lp.Cert.cut_terms = terms } ])

let test_cut_cover_validity () =
  Alcotest.(check (list string)) "valid cover accepted" []
    (cut_codes [ hand_cover_cut 2.0 ]);
  (* rhs must be exactly |members| - 1 *)
  Alcotest.(check (list string)) "tightened cover rhs rejected" [ "CERT110" ]
    (cut_codes [ hand_cover_cut 1.0 ]);
  (* members {2, 4} weigh 3 + 2 = 5 <= 12: not a cover at all *)
  Alcotest.(check (list string)) "non-cover members rejected" [ "CERT110" ]
    (cut_codes [ hand_cover_cut ~members:[| 2; 4 |] 1.0 ])

let test_corrupt_tighten () =
  expect_clean_reference ();
  let raw, cert = Lazy.force solved_knapsack in
  (* fabricate a tightening the knapsack row cannot imply: x0 <= 0
     claims item 0 never fits, but weight 5 <= rhs 12 *)
  let bogus =
    { Lp.Cert.t_var = 0; t_hi = true; t_new = 0.0; t_row = 0 }
  in
  expect_code "fabricated tightening" "CERT111"
    (Analyze.Audit.check raw { cert with Lp.Cert.presolve = [ bogus ] })

let test_missing_certificate () =
  let m = knapsack () in
  let r = Lp.Milp.solve ~time_limit:30.0 m in
  let diags = Analyze.Audit.check_result m r in
  expect_code "certificate absent" "CERT101" diags

let () =
  Alcotest.run "audit"
    [
      ( "qd",
        [
          Alcotest.test_case "roundtrip" `Quick test_qd_roundtrip;
          Alcotest.test_case "non-finite rejected" `Quick test_qd_nonfinite;
          Alcotest.test_case "ring ops exact" `Quick test_qd_ring;
          Alcotest.test_case "ordering" `Quick test_qd_order;
          Alcotest.test_case "integrality" `Quick test_qd_integer;
        ] );
      ( "positive",
        [
          Alcotest.test_case "knapsack" `Quick test_audit_knapsack;
          Alcotest.test_case "symmetric cover" `Quick test_audit_symmetric;
          Alcotest.test_case "general integer" `Quick test_audit_general;
          Alcotest.test_case "infeasible MILP" `Quick test_audit_infeasible;
          Alcotest.test_case "mixed-sense LP duals" `Quick test_audit_lp_duals;
          Alcotest.test_case "infeasible LP Farkas" `Quick test_audit_lp_farkas;
          Alcotest.test_case "recurrence kernel" `Quick test_audit_kernel_recurrence;
          Alcotest.test_case "CLZ kernel" `Quick test_audit_kernel_clz;
          Alcotest.test_case "RS kernel" `Quick test_audit_kernel_rs;
        ] );
      ( "registry",
        [ Alcotest.test_case "all benchmarks, 1 and 4 domains" `Slow test_registry_audit ] );
      ( "negative",
        [
          Alcotest.test_case "corrupted dual -> CERT103" `Quick test_corrupt_duals;
          Alcotest.test_case "truncated log -> CERT101" `Quick test_truncated_log;
          Alcotest.test_case "stale incumbent -> CERT107" `Quick test_stale_incumbent;
          Alcotest.test_case "fractional incumbent -> CERT102" `Quick
            test_fractional_incumbent;
          Alcotest.test_case "broken branch arithmetic -> CERT106" `Quick
            test_broken_branch_arith;
          Alcotest.test_case "corrupted Farkas -> CERT104" `Quick test_corrupt_farkas;
          Alcotest.test_case "missing certificate -> CERT101" `Quick
            test_missing_certificate;
          Alcotest.test_case "cut CG validity -> CERT109" `Quick
            test_cut_cg_validity;
          Alcotest.test_case "cut cover validity -> CERT110" `Quick
            test_cut_cover_validity;
          Alcotest.test_case "fabricated tightening -> CERT111" `Quick
            test_corrupt_tighten;
        ] );
    ]
