(* Tests for the live-telemetry layer (Obs.Log + Obs.Probe): NDJSON
   stream semantics (levels, cap drops, well-formed output), probe
   sampling, shortest-round-trip float printing — and the load-bearing
   invariant that running the probe and the log stream together never
   changes flow results, across the fault matrix and domain counts. *)

let reset_log () =
  Obs.Log.set_sink None;
  Obs.Log.disable ();
  Obs.Log.clear ()

(* ------------------------------------------------------------------ *)
(* log stream                                                          *)
(* ------------------------------------------------------------------ *)

let test_log_disabled_is_inert () =
  reset_log ();
  Obs.Log.event "x" [];
  Obs.Log.event ~level:Obs.Log.Error "y" [ ("k", Obs.Json.Int 1) ];
  Alcotest.(check int) "no events recorded" 0 (Obs.Log.num_events ());
  Alcotest.(check bool) "reports disabled" false (Obs.Log.enabled ())

let test_log_level_filter () =
  reset_log ();
  Obs.Log.enable ~level:Obs.Log.Warn ();
  Obs.Log.event ~level:Obs.Log.Debug "d" [];
  Obs.Log.event ~level:Obs.Log.Info "i" [];
  Obs.Log.event ~level:Obs.Log.Warn "w" [];
  Obs.Log.event ~level:Obs.Log.Error "e" [];
  Alcotest.(check int) "only warn and error recorded" 2
    (Obs.Log.num_events ());
  Alcotest.(check int) "sub-level events are filtered, not dropped" 0
    (Obs.Log.dropped ());
  reset_log ()

let test_log_sink_sees_events () =
  reset_log ();
  Obs.Log.enable ();
  let seen = ref [] in
  Obs.Log.set_sink (Some (fun e -> seen := e.Obs.Log.l_name :: !seen));
  Obs.Log.event "a" [];
  Obs.Log.event "b" [ ("x", Obs.Json.Float 1.5) ];
  Obs.Log.set_sink (Some (fun _ -> failwith "sink exceptions are swallowed"));
  Obs.Log.event "c" [];
  Alcotest.(check (list string)) "sink saw a then b" [ "a"; "b" ]
    (List.rev !seen);
  Alcotest.(check int) "c was still recorded" 3 (Obs.Log.num_events ());
  reset_log ()

(* Every line of the NDJSON document — header, events, footer — must
   re-parse individually, even when the cap dropped events. *)
let test_log_ndjson_well_formed_under_drops () =
  reset_log ();
  Obs.Log.enable ~cap:16 ();
  for i = 0 to 99 do
    Obs.Log.event "tick" [ ("i", Obs.Json.Int i) ]
  done;
  Alcotest.(check int) "buffer at cap" 16 (Obs.Log.num_events ());
  Alcotest.(check int) "drops counted" 84 (Obs.Log.dropped ());
  let lines = Obs.Log.to_lines () in
  Alcotest.(check int) "header + events + footer" 18 (List.length lines);
  List.iter
    (fun l ->
      let s = Obs.Json.to_string l in
      match Obs.Json.of_string s with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "NDJSON line did not re-parse: %s: %s" s e)
    lines;
  (match lines with
  | header :: _ ->
      Alcotest.(check bool) "schema tag" true
        (Obs.Json.member "schema" header
        = Some (Obs.Json.String Obs.Log.schema))
  | [] -> Alcotest.fail "no header");
  (match List.rev lines with
  | footer :: _ ->
      Alcotest.(check bool) "footer is log.end" true
        (Obs.Json.member "ev" footer = Some (Obs.Json.String "log.end"));
      Alcotest.(check bool) "footer counts drops" true
        (Obs.Json.member "dropped" footer = Some (Obs.Json.Int 84))
  | [] -> Alcotest.fail "no footer");
  reset_log ()

let test_log_write_file () =
  reset_log ();
  Obs.Log.enable ();
  Obs.Log.event "one" [];
  Obs.Log.event "two" [ ("t", Obs.Json.Float 0.25) ];
  let path = Filename.temp_file "pipesyn-log" ".ndjson" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Obs.Log.write ~path;
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      let lines = List.rev !lines in
      Alcotest.(check int) "one line per record" 4 (List.length lines);
      List.iter
        (fun s ->
          match Obs.Json.of_string s with
          | Ok _ -> ()
          | Error e -> Alcotest.failf "file line did not parse: %s: %s" s e)
        lines);
  reset_log ()

(* ------------------------------------------------------------------ *)
(* shortest round-trip float printing                                  *)
(* ------------------------------------------------------------------ *)

(* Timestamps, objectives and GC word counts all travel through
   Json.to_string; parsing the printed form must recover the exact
   float, and simple values must not grow 17-digit tails. *)
let test_float_round_trip_exact () =
  let cases =
    [
      0.0; 1.0; -1.0; 0.1; 0.25; 1e-9; 1.5e300; 4223459.0; 0.36365699768066406;
      Float.pi; 1.0 /. 3.0; Float.max_float; Float.min_float; 1e22; -0.0;
    ]
  in
  List.iter
    (fun f ->
      let s = Obs.Json.to_string (Obs.Json.Float f) in
      match Obs.Json.of_string s with
      | Ok (Obs.Json.Float g) ->
          Alcotest.(check bool)
            (Printf.sprintf "%h survives to_string/of_string (%s)" f s)
            true
            (Int64.equal (Int64.bits_of_float f) (Int64.bits_of_float g))
      | Ok (Obs.Json.Int i) ->
          (* integral floats may print without a fraction; value must match *)
          Alcotest.(check bool)
            (Printf.sprintf "%h parses back equal as int (%s)" f s)
            true
            (float_of_int i = f)
      | Ok _ -> Alcotest.failf "%s parsed to a non-number" s
      | Error e -> Alcotest.failf "%s did not parse: %s" s e)
    cases;
  Alcotest.(check string) "0.1 prints shortest" "0.1"
    (Obs.Json.to_string (Obs.Json.Float 0.1));
  Alcotest.(check string) "1.5 prints shortest" "1.5"
    (Obs.Json.to_string (Obs.Json.Float 1.5))

(* ------------------------------------------------------------------ *)
(* probe                                                               *)
(* ------------------------------------------------------------------ *)

let test_probe_off_without_period () =
  Obs.Probe.stop ();
  (* no PIPESYN_PROBE_MS in the test environment and no explicit period *)
  if Sys.getenv_opt "PIPESYN_PROBE_MS" = None then begin
    Alcotest.(check bool) "start without period is a no-op" false
      (Obs.Probe.start ());
    Alcotest.(check bool) "not running" false (Obs.Probe.running ())
  end

let test_probe_samples_and_series () =
  Obs.reset ();
  Alcotest.(check bool) "probe started" true (Obs.Probe.start ~period_ms:2 ());
  Alcotest.(check bool) "running" true (Obs.Probe.running ());
  (* burn a little work so the sampler gets scheduled a few times *)
  let t0 = Unix.gettimeofday () in
  let acc = ref 0.0 in
  while Unix.gettimeofday () -. t0 < 0.1 do
    for i = 1 to 10_000 do
      acc := !acc +. float_of_int i
    done
  done;
  Obs.Probe.stop ();
  Alcotest.(check bool) "stopped" false (Obs.Probe.running ());
  Alcotest.(check bool) "took samples" true (Obs.Probe.samples () > 0);
  Alcotest.(check bool) "heap series populated" true
    (Obs.Series.points (Obs.Series.get "probe.heap_words") <> []);
  (match Obs.Probe.peak_rss_kb () with
  | Some kb -> Alcotest.(check bool) "peak RSS positive" true (kb > 0)
  | None -> ());
  (* resources section reflects the probe *)
  let j = Obs.Metrics.resources () in
  Alcotest.(check bool) "resources counts probe samples" true
    (match Obs.Json.member "probe_samples" j with
    | Some (Obs.Json.Int n) -> n > 0
    | _ -> false);
  Obs.reset ()

(* ------------------------------------------------------------------ *)
(* neutrality: telemetry must never change flow results                *)
(* ------------------------------------------------------------------ *)

let flow_setup ?(time_limit = 30.0) ~domains () =
  {
    (Mams.Flow.default_setup ~device:Fpga.Device.figure1) with
    delays = Fpga.Delays.make ~logic:2.0 ~arith_base:1.6 ~arith_per_bit:0.2 ();
    time_limit;
    domains = Some domains;
  }

let run_flow setup g =
  match Mams.Flow.run setup Mams.Flow.Milp_map g with
  | Ok r -> r
  | Error e -> Alcotest.failf "flow failed: %s" e

(* Everything result-shaped, minus wall-clock timings. With several
   solver domains the B&B may break an objective tie either way run to
   run (exploration order races the bound broadcast), landing on a
   different optimal vertex with a last-ulp objective difference — so
   the multi-domain fingerprint keeps only what parallel solve
   guarantees deterministic (status and trail; the objective is
   compared separately with a tolerance), while the single-domain one
   pins the whole result. *)
let fingerprint ~domains (r : Mams.Flow.result) =
  let stable =
    ( r.Mams.Flow.solve.Mams.Flow.milp_status,
      r.Mams.Flow.metrics.Obs.Metrics.status,
      List.map
        (fun (a : Resilience.Cascade.attempt) ->
          (a.Resilience.Cascade.label, a.Resilience.Cascade.reason))
        r.Mams.Flow.trail )
  in
  let full =
    if domains > 1 then None
    else
      Some
        ( r.Mams.Flow.qor,
          Array.to_list r.Mams.Flow.schedule.Sched.Schedule.cycle,
          Sched.Cover.roots r.Mams.Flow.cover,
          ( r.Mams.Flow.metrics.Obs.Metrics.lut,
            r.Mams.Flow.metrics.Obs.Metrics.ff,
            r.Mams.Flow.metrics.Obs.Metrics.bnb_nodes ) )
  in
  (stable, full, r.Mams.Flow.metrics.Obs.Metrics.objective)

let same_objective a b =
  (Float.is_nan a && Float.is_nan b)
  || Float.abs (a -. b) <= 1e-9 *. (1.0 +. Float.max (Float.abs a) (Float.abs b))

let run_neutrality_case ~fault ~domains () =
  let g = Benchmarks.Rs.kernel ~width:2 () in
  (* A stalled worker busy-waits out its entire solve budget before the
     flow degrades, so that one case gets a small budget (the outcome —
     a deterministic heuristic fallback — is budget-independent). *)
  let time_limit = if fault = Some "milp.stall" then 2.0 else 30.0 in
  let setup = flow_setup ~time_limit ~domains () in
  let run_once ~telemetry =
    Resilience.Fault.clear ();
    (match fault with
    | None -> ()
    | Some f -> (
        match Resilience.Fault.arm f with
        | Ok () -> ()
        | Error e -> Alcotest.failf "cannot arm %s: %s" f e));
    Obs.reset ();
    reset_log ();
    if telemetry then begin
      Obs.Log.enable ();
      ignore (Obs.Probe.start ~period_ms:5 ())
    end;
    let r = run_flow setup g in
    Obs.Probe.stop ();
    Resilience.Fault.clear ();
    reset_log ();
    r
  in
  let off_s, off_f, off_obj = fingerprint ~domains (run_once ~telemetry:false) in
  let on_s, on_f, on_obj = fingerprint ~domains (run_once ~telemetry:true) in
  let tag =
    Printf.sprintf "(fault=%s, domains=%d)"
      (Option.value ~default:"none" fault)
      domains
  in
  (* structural [compare], not [(=)]: degraded reasons may embed NaN,
     and NaN = NaN is false while compare orders it equal *)
  Alcotest.(check bool)
    ("telemetry run identical " ^ tag)
    true
    (compare (off_s, off_f) (on_s, on_f) = 0);
  Alcotest.(check bool)
    ("objective identical " ^ tag)
    true
    (same_objective off_obj on_obj)

let test_neutrality_no_fault_1d () = run_neutrality_case ~fault:None ~domains:1 ()
let test_neutrality_no_fault_4d () = run_neutrality_case ~fault:None ~domains:4 ()

let test_neutrality_fault_matrix () =
  List.iter
    (fun (name, _doc) ->
      run_neutrality_case ~fault:(Some name) ~domains:1 ();
      run_neutrality_case ~fault:(Some name) ~domains:4 ())
    Resilience.Fault.points

(* The instrumented flow fills the log with well-formed events. *)
let test_flow_log_end_to_end () =
  let g = Benchmarks.Rs.kernel ~width:2 () in
  let setup = flow_setup ~domains:1 () in
  Obs.reset ();
  reset_log ();
  Obs.Log.enable ();
  let (_ : Mams.Flow.result) = run_flow setup g in
  Alcotest.(check bool) "events recorded" true (Obs.Log.num_events () > 0);
  let names =
    List.filter_map
      (fun l ->
        match Obs.Json.member "ev" l with
        | Some (Obs.Json.String s) -> Some s
        | _ -> None)
      (Obs.Log.to_lines ())
  in
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " event present") true (List.mem n names))
    [ "flow.phase"; "milp.incumbent"; "milp.done" ];
  List.iter
    (fun l ->
      let s = Obs.Json.to_string l in
      match Obs.Json.of_string s with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "flow log line did not parse: %s: %s" s e)
    (Obs.Log.to_lines ());
  reset_log ()

let () =
  Alcotest.run "telemetry"
    [
      ( "log",
        [
          Alcotest.test_case "disabled is inert" `Quick
            test_log_disabled_is_inert;
          Alcotest.test_case "level filter" `Quick test_log_level_filter;
          Alcotest.test_case "sink sees events" `Quick
            test_log_sink_sees_events;
          Alcotest.test_case "NDJSON well-formed under drops" `Quick
            test_log_ndjson_well_formed_under_drops;
          Alcotest.test_case "write file" `Quick test_log_write_file;
        ] );
      ( "json",
        [
          Alcotest.test_case "float round-trip exact" `Quick
            test_float_round_trip_exact;
        ] );
      ( "probe",
        [
          Alcotest.test_case "off without period" `Quick
            test_probe_off_without_period;
          Alcotest.test_case "samples and series" `Quick
            test_probe_samples_and_series;
        ] );
      ( "flow",
        [
          Alcotest.test_case "instrumented flow log" `Quick
            test_flow_log_end_to_end;
        ] );
      ( "neutrality",
        [
          Alcotest.test_case "no fault, 1 domain" `Quick
            test_neutrality_no_fault_1d;
          Alcotest.test_case "no fault, 4 domains" `Quick
            test_neutrality_no_fault_4d;
          Alcotest.test_case "fault matrix, domains {1,4}" `Slow
            test_neutrality_fault_matrix;
        ] );
    ]
