(* Tests for the downstream technology mapper: required-root analysis,
   stage-local area-flow covering, global covering, and the exact ILP
   mapper (DESIGN.md ablation A5). *)

let device = Fpga.Device.make ~t_clk:10.0 ()
let delays = Fpga.Delays.default
let resources = Fpga.Resource.unlimited

let heuristic g =
  match Sched.Heuristic.schedule ~device ~delays ~resources ~ii:1 g with
  | Ok s -> s
  | Error e -> Alcotest.failf "heuristic: %a" Sched.Heuristic.pp_error e

let test_required_roots () =
  (* y = not (a xor b), pipelined by hand into two cycles: the xor crosses
     the boundary, so it must be physical; the not is the output. *)
  let b = Ir.Builder.create () in
  let a = Ir.Builder.input b ~width:4 "a" in
  let c = Ir.Builder.input b ~width:4 "c" in
  let x = Ir.Builder.xor_ b a c in
  let o = Ir.Builder.not_ b x in
  Ir.Builder.output b o;
  let g = Ir.Builder.finish b in
  let sched =
    Sched.Schedule.make ~ii:1 ~cycle:[| 0; 0; 0; 1 |]
      ~start:(Array.make 4 0.0)
  in
  let req = Techmap.required_roots g sched in
  Alcotest.(check bool) "inputs required" true (req.(0) && req.(1));
  Alcotest.(check bool) "boundary crosser required" true req.(2);
  Alcotest.(check bool) "output required" true req.(3)

let test_map_respects_boundaries () =
  (* In a two-cycle schedule no selected cone may span both cycles. *)
  let g = Benchmarks.Registry.(find "XORR").build () in
  let device = Fpga.Device.make ~t_clk:5.0 () in
  let sched =
    match Sched.Heuristic.schedule ~device ~delays ~resources ~ii:1 g with
    | Ok s -> s
    | Error e -> Alcotest.failf "heuristic: %a" Sched.Heuristic.pp_error e
  in
  Alcotest.(check bool) "pipelined" true (Sched.Schedule.latency sched >= 1);
  let cuts = Cuts.enumerate ~k:4 g in
  let cover = Techmap.map_schedule ~device ~delays ~cuts g sched in
  Array.iteri
    (fun v c ->
      match c with
      | None -> ()
      | Some (c : Cuts.cut) ->
          Bitdep.Int_set.iter
            (fun w ->
              Alcotest.(check int)
                (Printf.sprintf "cone of %d stays in its cycle" v)
                sched.Sched.Schedule.cycle.(v)
                sched.Sched.Schedule.cycle.(w))
            c.Cuts.cone)
    cover.Sched.Cover.chosen

let test_map_global_single_cover () =
  let g = Benchmarks.Registry.(find "GFMUL").build () in
  let cuts = Cuts.enumerate ~k:4 g in
  let cover = Techmap.map_global ~device ~delays ~cuts g in
  (match Sched.Cover.validate g cover with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invalid: %s" e);
  (* global mapping uses no more area than all-trivial *)
  let trivial = Sched.Cover.all_trivial g (Cuts.trivial_only g) in
  Alcotest.(check bool) "area <= trivial" true
    (Sched.Cover.lut_area cover <= Sched.Cover.lut_area trivial)

let test_exact_no_worse_than_heuristic () =
  List.iter
    (fun name ->
      let entry = Benchmarks.Registry.find name in
      let g = entry.build () in
      let device = Fpga.Device.make ~t_clk:entry.t_clk () in
      let sched =
        match
          Sched.Heuristic.schedule ~device ~delays ~resources:entry.resources
            ~ii:1 g
        with
        | Ok s -> s
        | Error e -> Alcotest.failf "%s: %a" name Sched.Heuristic.pp_error e
      in
      let cuts = Cuts.enumerate ~k:4 g in
      let flow_cover = Techmap.map_schedule ~device ~delays ~cuts g sched in
      match Techmap.map_exact ~time_limit:20.0 ~device ~delays ~cuts g sched with
      | Error f ->
          Alcotest.failf "%s: exact mapper failed: %a" name
            Techmap.pp_exact_failure f
      | Ok exact ->
          (match Sched.Cover.validate g exact with
          | Ok () -> ()
          | Error e -> Alcotest.failf "%s: invalid exact cover: %s" name e);
          Alcotest.(check bool)
            (name ^ ": exact area <= area-flow area")
            true
            (Sched.Cover.lut_area exact <= Sched.Cover.lut_area flow_cover))
    [ "GFMUL"; "MT"; "DR" ]

let test_exact_improves_or_matches_known_case () =
  (* 8-input xor tree in one cycle: optimum is 3 cones x 4 bits = 12. *)
  let b = Ir.Builder.create () in
  let xs =
    List.init 8 (fun i -> Ir.Builder.input b ~width:4 (Printf.sprintf "x%d" i))
  in
  let out = Ir.Builder.reduce b (fun b x y -> Ir.Builder.xor_ b x y) xs in
  Ir.Builder.output b out;
  let g = Ir.Builder.finish b in
  let sched = heuristic g in
  let cuts = Cuts.enumerate ~k:4 g in
  match Techmap.map_exact ~time_limit:20.0 ~device ~delays ~cuts g sched with
  | Error f -> Alcotest.failf "exact mapper failed: %a" Techmap.pp_exact_failure f
  | Ok cover -> Alcotest.(check int) "optimal area" 12 (Sched.Cover.lut_area cover)

let () =
  Alcotest.run "techmap"
    [
      ( "heuristic",
        [
          Alcotest.test_case "required roots" `Quick test_required_roots;
          Alcotest.test_case "respects boundaries" `Quick
            test_map_respects_boundaries;
          Alcotest.test_case "global cover" `Quick test_map_global_single_cover;
        ] );
      ( "exact",
        [
          Alcotest.test_case "no worse than area flow" `Slow
            test_exact_no_worse_than_heuristic;
          Alcotest.test_case "xor tree optimum" `Quick
            test_exact_improves_or_matches_known_case;
        ] );
    ]
