(* Golden tests for the bench-diff regression comparator: identical
   files are clean, injected regressions flag (and only regressions
   exit-worthy), improvements are counted but green, noise sources
   (budget-hit counters, sub-floor times, nulls) are skipped, and a
   schema-version mismatch is a hard error rather than a guess. *)

let row ?(name = "GFMUL") ?(method_ = "MILP-map") ?(status = "optimal")
    ?(solve_s = Some 5.0) ?(bnb_nodes = Some 100) ?(lp_pivots = Some 2000)
    ?(gap_closed_root = 0.5) () =
  {
    Obs.Metrics.name;
    method_;
    lut = 24;
    ff = 0;
    slack = 1.4;
    solve_s;
    bnb_nodes;
    lp_pivots;
    cuts_total = 195;
    first_incumbent_s = 0.8;
    final_gap = 0.0;
    status;
    objective = 12.5;
    domains = 1;
    nodes_per_s = 10.9;
    cert_nodes = 100;
    audit_errors = Some 0;
    milp_cuts = 7;
    gap_closed_root;
    checkpoints = 0;
    recoveries = 0;
    stalls = 0;
    gc_minor_words = 0.0;
    gc_major_words = 0.0;
    diagnostics = [];
    degradation = [];
  }

let file ?(schema = Obs.Metrics.schema_version) rows =
  Obs.Json.Obj
    [
      ("schema_version", Obs.Json.Int schema);
      ("results", Obs.Json.List (List.map Obs.Metrics.to_json rows));
    ]

let diff_ok ?thresholds old_ new_ =
  match Benchdiff.diff ?thresholds old_ new_ with
  | Ok r -> r
  | Error e -> Alcotest.failf "diff failed: %s" e

let test_identical_is_clean () =
  let f = file [ row (); row ~name:"RS" ~method_:"MILP-base" () ] in
  let r = diff_ok f f in
  Alcotest.(check int) "rows compared" 2 r.Benchdiff.r_rows;
  Alcotest.(check int) "no regressions" 0 r.Benchdiff.r_regressions;
  Alcotest.(check int) "no improvements" 0 r.Benchdiff.r_improvements;
  Alcotest.(check bool) "not regressed" false (Benchdiff.regressed r)

let test_status_worsening_regresses () =
  let old_ = file [ row () ] in
  let new_ = file [ row ~status:"feasible" () ] in
  let r = diff_ok old_ new_ in
  Alcotest.(check bool) "regressed" true (Benchdiff.regressed r);
  Alcotest.(check bool) "status delta present" true
    (List.exists
       (fun d -> d.Benchdiff.d_metric = "status")
       r.Benchdiff.r_deltas)

let test_pivot_blowup_regresses () =
  let old_ = file [ row () ] in
  let new_ = file [ row ~lp_pivots:(Some 4000) () ] in
  let r = diff_ok old_ new_ in
  Alcotest.(check bool) "regressed" true (Benchdiff.regressed r);
  Alcotest.(check bool) "lp_pivots delta present" true
    (List.exists
       (fun d ->
         d.Benchdiff.d_metric = "lp_pivots"
         && d.Benchdiff.d_verdict = Benchdiff.Regression)
       r.Benchdiff.r_deltas)

let test_improvement_is_green () =
  let old_ = file [ row () ] in
  let new_ = file [ row ~bnb_nodes:(Some 50) ~lp_pivots:(Some 1000) () ] in
  let r = diff_ok old_ new_ in
  Alcotest.(check bool) "not regressed" false (Benchdiff.regressed r);
  Alcotest.(check bool) "improvements counted" true
    (r.Benchdiff.r_improvements >= 2)

(* Counters between non-optimal solves are wall-budget artifacts; a 10x
   node count on a budget-hit pair must not flag. *)
let test_counters_skipped_unless_both_optimal () =
  let old_ = file [ row ~status:"feasible" () ] in
  let new_ =
    file
      [ row ~status:"feasible" ~bnb_nodes:(Some 1000) ~lp_pivots:(Some 20000) () ]
  in
  let r = diff_ok old_ new_ in
  Alcotest.(check bool) "budget-hit counters do not flag" false
    (Benchdiff.regressed r)

let test_sub_floor_times_skipped () =
  let old_ = file [ row ~solve_s:(Some 0.01) () ] in
  let new_ = file [ row ~solve_s:(Some 0.04) () ] in
  (* 4x slower but both under the 0.25 s floor: machine noise *)
  let r = diff_ok old_ new_ in
  Alcotest.(check bool) "sub-floor times do not flag" false
    (Benchdiff.regressed r)

let test_slow_solve_regresses () =
  let old_ = file [ row ~solve_s:(Some 2.0) () ] in
  let new_ = file [ row ~solve_s:(Some 4.0) () ] in
  let r = diff_ok old_ new_ in
  Alcotest.(check bool) "2x solve time flags" true (Benchdiff.regressed r)

(* Heuristic rows carry None for solve_s/bnb_nodes/lp_pivots: nothing
   numeric to compare, and None vs Some must not flag either. *)
let test_nulls_are_skipped () =
  let heuristic =
    row ~method_:"HLS Tool" ~status:"heuristic" ~solve_s:None ~bnb_nodes:None
      ~lp_pivots:None ~gap_closed_root:Float.nan ()
  in
  let r = diff_ok (file [ heuristic ]) (file [ heuristic ]) in
  Alcotest.(check bool) "null metrics are clean" false (Benchdiff.regressed r);
  let r2 =
    diff_ok
      (file [ row ~solve_s:None () ])
      (file [ row ~solve_s:(Some 100.0) () ])
  in
  Alcotest.(check bool) "None vs Some is skipped, not compared" false
    (List.exists
       (fun d -> d.Benchdiff.d_metric = "solve_s")
       r2.Benchdiff.r_deltas)

let test_missing_row_regresses () =
  let old_ = file [ row (); row ~name:"RS" () ] in
  let new_ = file [ row () ] in
  let r = diff_ok old_ new_ in
  Alcotest.(check bool) "vanished row regresses" true (Benchdiff.regressed r);
  Alcotest.(check (list (pair string string))) "missing key recorded"
    [ ("RS", "MILP-map") ] r.Benchdiff.r_missing

let test_added_row_is_informational () =
  let old_ = file [ row () ] in
  let new_ = file [ row (); row ~name:"RS" () ] in
  let r = diff_ok old_ new_ in
  Alcotest.(check bool) "new row is not a regression" false
    (Benchdiff.regressed r);
  Alcotest.(check (list (pair string string))) "added key recorded"
    [ ("RS", "MILP-map") ] r.Benchdiff.r_added

let test_gap_closure_loss_regresses () =
  let old_ = file [ row ~gap_closed_root:0.6 () ] in
  let new_ = file [ row ~gap_closed_root:0.2 () ] in
  let r = diff_ok old_ new_ in
  Alcotest.(check bool) "weaker root cuts flag" true (Benchdiff.regressed r)

let test_schema_mismatch_is_error () =
  let old_ = file ~schema:(Obs.Metrics.schema_version - 1) [ row () ] in
  let new_ = file [ row () ] in
  match Benchdiff.diff old_ new_ with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "schema mismatch must be a hard error"

let test_thresholds_are_respected () =
  let old_ = file [ row ~lp_pivots:(Some 1000) () ] in
  let new_ = file [ row ~lp_pivots:(Some 1150) () ] in
  (* +15%: flags at the default 10%, clean at a 20% threshold *)
  let r = diff_ok old_ new_ in
  Alcotest.(check bool) "default threshold flags" true (Benchdiff.regressed r);
  let loose =
    { Benchdiff.default_thresholds with Benchdiff.count_rel = 0.20 }
  in
  let r2 = diff_ok ~thresholds:loose old_ new_ in
  Alcotest.(check bool) "loose threshold is clean" false
    (Benchdiff.regressed r2)

let test_report_json_round_trips () =
  let old_ = file [ row () ] in
  let new_ = file [ row ~status:"feasible" ~lp_pivots:(Some 9999) () ] in
  let r = diff_ok old_ new_ in
  let s = Obs.Json.to_string (Benchdiff.report_to_json r) in
  match Obs.Json.of_string s with
  | Error e -> Alcotest.failf "report did not re-parse: %s" e
  | Ok j ->
      Alcotest.(check bool) "schema tag" true
        (Obs.Json.member "schema" j
        = Some (Obs.Json.String "pipesyn-bench-diff-v1"));
      Alcotest.(check bool) "regression count serialized" true
        (Obs.Json.member "regressions" j
        = Some (Obs.Json.Int r.Benchdiff.r_regressions))

let () =
  Alcotest.run "benchdiff"
    [
      ( "golden",
        [
          Alcotest.test_case "identical is clean" `Quick
            test_identical_is_clean;
          Alcotest.test_case "status worsening regresses" `Quick
            test_status_worsening_regresses;
          Alcotest.test_case "pivot blowup regresses" `Quick
            test_pivot_blowup_regresses;
          Alcotest.test_case "improvement is green" `Quick
            test_improvement_is_green;
          Alcotest.test_case "gap-closure loss regresses" `Quick
            test_gap_closure_loss_regresses;
        ] );
      ( "noise",
        [
          Alcotest.test_case "counters need both optimal" `Quick
            test_counters_skipped_unless_both_optimal;
          Alcotest.test_case "sub-floor times skipped" `Quick
            test_sub_floor_times_skipped;
          Alcotest.test_case "slow solve regresses" `Quick
            test_slow_solve_regresses;
          Alcotest.test_case "nulls skipped" `Quick test_nulls_are_skipped;
          Alcotest.test_case "thresholds respected" `Quick
            test_thresholds_are_respected;
        ] );
      ( "rows",
        [
          Alcotest.test_case "missing row regresses" `Quick
            test_missing_row_regresses;
          Alcotest.test_case "added row informational" `Quick
            test_added_row_is_informational;
        ] );
      ( "io",
        [
          Alcotest.test_case "schema mismatch is error" `Quick
            test_schema_mismatch_is_error;
          Alcotest.test_case "report JSON round-trips" `Quick
            test_report_json_round_trips;
        ] );
    ]
