(* Tests for the instrumentation layer: counter/timer semantics, JSON
   round-trips, and — the critical invariant — that instrumentation is
   purely additive: a fully instrumented flow yields the same QoR as a
   re-run with all counters reset. *)

let test_counter_accumulate_reset () =
  Obs.reset ();
  let c = Obs.Counter.get "test.counter" in
  Alcotest.(check int) "starts at zero" 0 (Obs.Counter.value c);
  Obs.Counter.incr c;
  Obs.Counter.incr ~by:41 c;
  Alcotest.(check int) "accumulates" 42 (Obs.Counter.value c);
  Alcotest.(check bool) "same name, same counter" true
    (Obs.Counter.value (Obs.Counter.get "test.counter") = 42);
  Alcotest.(check bool) "snapshot contains it" true
    (List.mem_assoc "test.counter" (Obs.counters ()));
  Obs.reset ();
  Alcotest.(check int) "reset zeroes" 0 (Obs.Counter.value c);
  Alcotest.(check bool) "zero counters dropped from snapshot" false
    (List.mem_assoc "test.counter" (Obs.counters ()))

(* Busy-wait so elapsed wall time (the clock Timer uses since
   resilience-v2) tracks the burn duration closely in a single thread. *)
let burn secs =
  let t0 = Sys.time () in
  while Sys.time () -. t0 < secs do
    ignore (Sys.opaque_identity 1)
  done

(* Regression: a span entered while another span of the same timer is
   open used to add the inner interval twice (outer span already covers
   it). With 20ms outer + 20ms inner the buggy total is ~60ms, the
   correct total ~40ms. *)
let test_timer_nested_no_double_count () =
  Obs.reset ();
  let t = Obs.Timer.get "test.nested" in
  Obs.Timer.span t (fun () ->
      burn 0.02;
      Obs.Timer.span t (fun () -> burn 0.02));
  Alcotest.(check int) "both spans counted" 2 (Obs.Timer.count t);
  let e = Obs.Timer.elapsed t in
  Alcotest.(check bool)
    (Printf.sprintf "outermost-exit accumulation only (%.4fs)" e)
    true
    (e >= 0.035 && e < 0.055);
  (* exception in the inner span still unwinds the depth *)
  (try
     Obs.Timer.span t (fun () ->
         Obs.Timer.span t (fun () -> failwith "boom"))
   with Failure _ -> ());
  Obs.Timer.span t (fun () -> burn 0.01);
  Alcotest.(check bool) "depth recovered after raise" true
    (Obs.Timer.elapsed t < 0.08)

let test_timer_spans () =
  Obs.reset ();
  let t = Obs.Timer.get "test.timer" in
  let v = Obs.Timer.span t (fun () -> List.init 1000 Fun.id |> List.length) in
  Alcotest.(check int) "span returns the result" 1000 v;
  Alcotest.(check int) "one span" 1 (Obs.Timer.count t);
  Alcotest.(check bool) "non-negative elapsed" true (Obs.Timer.elapsed t >= 0.0);
  (* exceptions still record the span *)
  (try Obs.Timer.span t (fun () -> failwith "boom") with Failure _ -> ());
  Alcotest.(check int) "span recorded on raise" 2 (Obs.Timer.count t);
  Obs.reset ();
  Alcotest.(check int) "reset zeroes spans" 0 (Obs.Timer.count t)

let test_series () =
  Obs.reset ();
  let s = Obs.Series.get "test.series" in
  Obs.Series.add s ~x:0.5 ~y:10.0;
  Obs.Series.add s ~x:1.5 ~y:7.0;
  Alcotest.(check (list (pair (float 1e-9) (float 1e-9))))
    "insertion order"
    [ (0.5, 10.0); (1.5, 7.0) ]
    (Obs.Series.points s);
  Obs.reset ();
  Alcotest.(check int) "reset clears" 0 (List.length (Obs.Series.points s))

(* Satellite: Series memory is bounded. With PIPESYN_SERIES_CAP=8 a
   100-point stream keeps at most 8 uniformly strided points, always
   including the first, and the thinning is deterministic. *)
let test_series_cap_downsampling () =
  Obs.reset ();
  Unix.putenv "PIPESYN_SERIES_CAP" "8";
  let s = Obs.Series.get "test.capped" in
  let s2 = Obs.Series.get "test.capped2" in
  Unix.putenv "PIPESYN_SERIES_CAP" "";
  for i = 0 to 99 do
    Obs.Series.add s ~x:(float_of_int i) ~y:(float_of_int (2 * i));
    Obs.Series.add s2 ~x:(float_of_int i) ~y:(float_of_int (2 * i))
  done;
  Alcotest.(check int) "capacity from env" 8 (Obs.Series.capacity s);
  Alcotest.(check int) "all adds seen" 100 (Obs.Series.seen s);
  let pts = Obs.Series.points s in
  Alcotest.(check bool) "bounded by cap" true (List.length pts <= 8);
  Alcotest.(check bool) "kept more than one point" true (List.length pts >= 2);
  (match pts with
  | (x0, y0) :: _ ->
      Alcotest.(check (float 1e-9)) "first point kept" 0.0 x0;
      Alcotest.(check (float 1e-9)) "y preserved" 0.0 y0
  | [] -> Alcotest.fail "series empty");
  (* stored points are uniformly strided *)
  let xs = List.map fst pts in
  let rec diffs = function
    | a :: (b :: _ as r) -> (b -. a) :: diffs r
    | _ -> []
  in
  (match diffs xs with
  | [] -> Alcotest.fail "too few points for stride check"
  | d :: ds ->
      List.iter (fun d' -> Alcotest.(check (float 1e-9)) "uniform stride" d d') ds);
  (* identical streams thin identically *)
  Alcotest.(check bool) "deterministic thinning" true
    (Obs.Series.points s = Obs.Series.points s2);
  (* a fresh series with no override uses the default cap *)
  let s3 = Obs.Series.get "test.default_cap" in
  Alcotest.(check int) "default cap" Obs.Series.default_cap
    (Obs.Series.capacity s3);
  Obs.reset ()

let test_json_roundtrip_values () =
  let j =
    Obs.Json.(
      Obj
        [
          ("s", String "quote \" backslash \\ newline \n tab \t");
          ("i", Int (-42));
          ("f", Float 3.25);
          ("b", Bool true);
          ("n", Null);
          ("l", List [ Int 1; Float 0.5; String "x" ]);
          ("o", Obj [ ("nested", Bool false) ]);
        ])
  in
  match Obs.Json.of_string (Obs.Json.to_string j) with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok j' ->
      Alcotest.(check string) "round-trips" (Obs.Json.to_string j)
        (Obs.Json.to_string j')

let test_json_nonfinite_floats () =
  Alcotest.(check string) "nan is null" "null"
    (Obs.Json.to_string (Obs.Json.Float Float.nan));
  Alcotest.(check string) "inf is null" "null"
    (Obs.Json.to_string (Obs.Json.Float Float.infinity))

let test_json_rejects_garbage () =
  let bad s =
    match Obs.Json.of_string s with Ok _ -> false | Error _ -> true
  in
  Alcotest.(check bool) "truncated object" true (bad "{\"a\": 1");
  Alcotest.(check bool) "trailing garbage" true (bad "{} x");
  Alcotest.(check bool) "bare word" true (bad "flase")

let sample_metrics =
  {
    Obs.Metrics.name = "GFMUL";
    method_ = "MILP-map";
    lut = 24;
    ff = 0;
    slack = 1.4;
    solve_s = Some 5.04;
    bnb_nodes = Some 55;
    lp_pivots = Some 1234;
    cuts_total = 195;
    first_incumbent_s = 0.8;
    final_gap = 0.02;
    status = "feasible";
    objective = 12.5;
    domains = 4;
    nodes_per_s = 10.9;
    cert_nodes = 55;
    audit_errors = Some 0;
    milp_cuts = 7;
    gap_closed_root = 0.25;
    checkpoints = 2;
    recoveries = 1;
    stalls = 0;
    gc_minor_words = 123456.0;
    gc_major_words = 7890.0;
    diagnostics = [];
    degradation = [];
  }

let test_metrics_roundtrip () =
  let s = Obs.Json.to_string (Obs.Metrics.to_json sample_metrics) in
  match Obs.Json.of_string s with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok j -> (
      match Obs.Metrics.of_json j with
      | Error e -> Alcotest.failf "of_json failed: %s" e
      | Ok m ->
          Alcotest.(check bool) "round-trips" true (m = sample_metrics))

(* A v3-era record (no convergence fields) must still parse; the new
   fields default to nan rather than failing the load, and the legacy
   "solve_s": 0.0 / "bnb_nodes": 0 heuristic encoding normalizes to
   None (a real solve always explores at least the root node). *)
let test_metrics_v3_compat () =
  let s =
    {|{"name":"X","method":"HLS Tool","lut":1,"ff":2,"slack":0.5,
       "solve_s":0.0,"bnb_nodes":0,"cuts_total":3,"status":"heuristic"}|}
  in
  match Obs.Json.of_string s with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok j -> (
      match Obs.Metrics.of_json j with
      | Error e -> Alcotest.failf "of_json failed: %s" e
      | Ok m ->
          Alcotest.(check (option (float 0.0)))
            "legacy 0.0 solve_s normalizes to None" None
            m.Obs.Metrics.solve_s;
          Alcotest.(check (option int))
            "legacy 0 bnb_nodes normalizes to None" None
            m.Obs.Metrics.bnb_nodes;
          Alcotest.(check (option int)) "lp_pivots defaults to None" None
            m.Obs.Metrics.lp_pivots;
          Alcotest.(check (float 0.0)) "gc_minor_words defaults to 0" 0.0
            m.Obs.Metrics.gc_minor_words;
          Alcotest.(check bool) "first_incumbent_s defaults to nan" true
            (Float.is_nan m.Obs.Metrics.first_incumbent_s);
          Alcotest.(check bool) "final_gap defaults to nan" true
            (Float.is_nan m.Obs.Metrics.final_gap);
          Alcotest.(check int) "cert_nodes defaults to 0" 0
            m.Obs.Metrics.cert_nodes;
          Alcotest.(check (option int)) "audit_errors defaults to None"
            None m.Obs.Metrics.audit_errors;
          Alcotest.(check int) "milp_cuts defaults to 0" 0
            m.Obs.Metrics.milp_cuts;
          Alcotest.(check bool) "gap_closed_root defaults to nan" true
            (Float.is_nan m.Obs.Metrics.gap_closed_root);
          Alcotest.(check int) "checkpoints defaults to 0" 0
            m.Obs.Metrics.checkpoints;
          Alcotest.(check int) "recoveries defaults to 0" 0
            m.Obs.Metrics.recoveries;
          Alcotest.(check int) "stalls defaults to 0" 0
            m.Obs.Metrics.stalls)

let test_metrics_file_shape () =
  Obs.reset ();
  Obs.Counter.incr ~by:7 (Obs.Counter.get "test.file_counter");
  let s = Obs.Json.to_string (Obs.Metrics.file ~results:[ sample_metrics ]) in
  match Obs.Json.of_string s with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok j ->
      Alcotest.(check bool) "schema_version present" true
        (Obs.Json.member "schema_version" j
        = Some (Obs.Json.Int Obs.Metrics.schema_version));
      (match Obs.Json.member "obs" j with
      | Some (Obs.Json.Obj kvs) ->
          Alcotest.(check bool) "obs snapshot embedded" true
            (List.mem_assoc "test.file_counter" kvs)
      | _ -> Alcotest.fail "missing obs object");
      (match Obs.Json.member "results" j with
      | Some (Obs.Json.List [ r ]) ->
          Alcotest.(check bool) "result name" true
            (Obs.Json.member "name" r = Some (Obs.Json.String "GFMUL"))
      | _ -> Alcotest.fail "missing results list");
      Obs.reset ()

(* A full instrumented flow: metrics are populated (bnb_nodes > 0 for the
   MILP), and a reset + re-run yields byte-identical QoR — instrumentation
   never perturbs scheduling or covering. *)
let test_flow_metrics_end_to_end () =
  let g = Benchmarks.Rs.kernel ~width:2 () in
  let setup =
    { (Mams.Flow.default_setup ~device:Fpga.Device.figure1) with
      delays = Fpga.Delays.make ~logic:2.0 ~arith_base:1.6 ~arith_per_bit:0.2 ();
      time_limit = 30.0 }
  in
  let run () =
    match Mams.Flow.run setup Mams.Flow.Milp_map g with
    | Ok r -> r
    | Error e -> Alcotest.failf "flow failed: %s" e
  in
  Obs.reset ();
  let r1 = run () in
  let m = Mams.Flow.metrics ~name:"RS-kernel" r1 in
  Alcotest.(check string) "name stamped" "RS-kernel" m.Obs.Metrics.name;
  Alcotest.(check string) "method" "MILP-map" m.Obs.Metrics.method_;
  Alcotest.(check bool) "bnb_nodes > 0" true
    (match m.Obs.Metrics.bnb_nodes with Some n -> n > 0 | None -> false);
  Alcotest.(check bool) "cuts_total > 0" true (m.Obs.Metrics.cuts_total > 0);
  Alcotest.(check bool) "solve_s >= 0" true
    (match m.Obs.Metrics.solve_s with Some s -> s >= 0.0 | None -> false);
  Alcotest.(check bool) "lp_pivots > 0" true
    (match m.Obs.Metrics.lp_pivots with Some p -> p > 0 | None -> false);
  Alcotest.(check int) "lut mirrors qor" r1.Mams.Flow.qor.Sched.Qor.luts
    m.Obs.Metrics.lut;
  Alcotest.(check int) "ff mirrors qor" r1.Mams.Flow.qor.Sched.Qor.ffs
    m.Obs.Metrics.ff;
  (* global counters were fed by the run *)
  Alcotest.(check bool) "milp nodes counted" true
    (Obs.Counter.value (Obs.Counter.get "milp.bnb_nodes") > 0);
  Alcotest.(check bool) "cuts enumerated counted" true
    (Obs.Counter.value (Obs.Counter.get "cuts.enumerated") > 0);
  Alcotest.(check bool) "milp timer ran" true
    (Obs.Timer.elapsed (Obs.Timer.get "milp.solve") > 0.0);
  Alcotest.(check bool) "incumbent series non-empty" true
    (Obs.Series.points (Obs.Series.get "milp.incumbents") <> []);
  (* reset + re-run: identical QoR and schedule *)
  Obs.reset ();
  let r2 = run () in
  Alcotest.(check bool) "identical qor" true
    (r1.Mams.Flow.qor = r2.Mams.Flow.qor);
  Alcotest.(check bool) "identical schedule cycles" true
    (r1.Mams.Flow.schedule.Sched.Schedule.cycle
    = r2.Mams.Flow.schedule.Sched.Schedule.cycle);
  Alcotest.(check bool) "identical cover roots" true
    (Sched.Cover.roots r1.Mams.Flow.cover = Sched.Cover.roots r2.Mams.Flow.cover)

let () =
  Alcotest.run "obs"
    [
      ( "registry",
        [
          Alcotest.test_case "counter accumulate/reset" `Quick
            test_counter_accumulate_reset;
          Alcotest.test_case "timer spans" `Quick test_timer_spans;
          Alcotest.test_case "timer nested spans don't double-count" `Quick
            test_timer_nested_no_double_count;
          Alcotest.test_case "series" `Quick test_series;
          Alcotest.test_case "series cap + downsampling" `Quick
            test_series_cap_downsampling;
        ] );
      ( "json",
        [
          Alcotest.test_case "round-trip" `Quick test_json_roundtrip_values;
          Alcotest.test_case "non-finite floats" `Quick
            test_json_nonfinite_floats;
          Alcotest.test_case "rejects garbage" `Quick test_json_rejects_garbage;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "record round-trip" `Quick test_metrics_roundtrip;
          Alcotest.test_case "v3 record compat" `Quick test_metrics_v3_compat;
          Alcotest.test_case "file shape" `Quick test_metrics_file_shape;
          Alcotest.test_case "flow end-to-end" `Quick
            test_flow_metrics_end_to_end;
        ] );
    ]
