(* Determinism of the parallel branch-and-bound (DESIGN.md Sec. 3g): an
   exhaustive (non-budget-truncated) solve must return identical status,
   objective and incumbent vector for domains = 1, 2 and 4 — the shared
   incumbent's tie-breaking makes the result independent of exploration
   order. Also covered here: the [PIPESYN_DOMAINS] environment knob, and
   the end-to-end fault-injection matrix re-run with four worker
   domains. *)

let feq ?(eps = 1e-6) a b = Float.abs (a -. b) <= eps
let status_str s = Fmt.str "%a" Lp.Milp.pp_status s
let dom_counts = [ 1; 2; 4 ]

(* Solve [build ()] at every domain count and assert status / objective /
   incumbent parity against the sequential run. [build] must return a
   fresh model each call ([Lp.Model.t] is consumed by the solve). *)
let check_deterministic ?(time_limit = 60.0) name build =
  let solve d = Lp.Milp.solve ~time_limit ~domains:d (build ()) in
  let base = solve 1 in
  Alcotest.(check int)
    (Printf.sprintf "%s: sequential run reports 1 domain" name)
    1 base.Lp.Milp.stats.Lp.Milp.domains;
  List.iter
    (fun d ->
      let r = solve d in
      Alcotest.(check string)
        (Printf.sprintf "%s: status @ %d domains" name d)
        (status_str base.Lp.Milp.status)
        (status_str r.Lp.Milp.status);
      Alcotest.(check int)
        (Printf.sprintf "%s: stats.domains @ %d domains" name d)
        d r.Lp.Milp.stats.Lp.Milp.domains;
      (match base.Lp.Milp.status with
      | Lp.Milp.Optimal | Lp.Milp.Feasible ->
          if not (feq base.Lp.Milp.objective r.Lp.Milp.objective) then
            Alcotest.failf "%s: objective %.9g @ 1 domain vs %.9g @ %d" name
              base.Lp.Milp.objective r.Lp.Milp.objective d
      | _ -> ());
      if base.Lp.Milp.status = Lp.Milp.Optimal then
        Array.iteri
          (fun j v ->
            if not (feq v r.Lp.Milp.x.(j)) then
              Alcotest.failf "%s: incumbent x.(%d) = %.9g @ 1 domain vs %.9g @ %d"
                name j v r.Lp.Milp.x.(j) d)
          base.Lp.Milp.x)
    (List.tl dom_counts)

(* --- hand-built integer programs ------------------------------------ *)

let knapsack () =
  let values = [| 10.0; 13.0; 7.0; 8.0; 5.0; 9.0 |] in
  let weights = [| 5.0; 6.0; 3.0; 4.0; 2.0; 5.0 |] in
  let m = Lp.Model.create () in
  let xs =
    Array.mapi (fun i _ -> Lp.Model.bool_var m (Printf.sprintf "x%d" i)) values
  in
  Lp.Model.add_le m
    (Array.to_list (Array.mapi (fun i x -> (weights.(i), x)) xs))
    12.0;
  Lp.Model.set_objective m
    (Array.to_list (Array.mapi (fun i x -> (-.values.(i), x)) xs));
  m

(* Symmetric assignment with many optima — exercises the lexicographic
   incumbent tie-break, not just the objective comparison. *)
let symmetric_cover () =
  let m = Lp.Model.create () in
  let xs = Array.init 6 (fun i -> Lp.Model.bool_var m (Printf.sprintf "s%d" i)) in
  (* pick exactly 3 of 6 identical items *)
  Lp.Model.add_eq m (Array.to_list (Array.map (fun x -> (1.0, x)) xs)) 3.0;
  Lp.Model.set_objective m
    (Array.to_list (Array.map (fun x -> (1.0, x)) xs));
  m

let infeasible () =
  let m = Lp.Model.create () in
  let x = Lp.Model.bool_var m "x" in
  let y = Lp.Model.bool_var m "y" in
  Lp.Model.add_ge m [ (1.0, x); (1.0, y) ] 3.0;
  Lp.Model.set_objective m [ (1.0, x); (1.0, y) ];
  m

let general_integer () =
  let m = Lp.Model.create () in
  let x = Lp.Model.add_var m ~integer:true ~ub:10.0 "x" in
  let y = Lp.Model.add_var m ~integer:true ~ub:10.0 "y" in
  let z = Lp.Model.add_var m ~integer:true ~ub:10.0 "z" in
  Lp.Model.add_le m [ (2.0, x); (3.0, y); (1.0, z) ] 12.0;
  Lp.Model.add_ge m [ (1.0, x); (1.0, y) ] 2.0;
  Lp.Model.set_objective m [ (-3.0, x); (-5.0, y); (-1.0, z) ];
  m

let test_knapsack () = check_deterministic "knapsack" knapsack
let test_symmetric () = check_deterministic "symmetric cover" symmetric_cover
let test_infeasible () = check_deterministic "infeasible" infeasible
let test_general_integer () = check_deterministic "general integer" general_integer

(* --- benchmark-kernel formulations ---------------------------------- *)

let device = Fpga.Device.make ~t_clk:10.0 ()
let delays = Fpga.Delays.default

let kernel_model ?(mapped = false) build () =
  let g = build () in
  let cfg : Mams.Formulation.config =
    {
      device;
      delays;
      resources = Fpga.Resource.unlimited;
      ii = 1;
      max_latency = 6;
      alpha = 0.5;
      beta = 0.5;
      cut_delay =
        (if mapped then Mams.Formulation.mapped_delay ~device ~delays
         else Mams.Formulation.additive_delay ~delays);
    }
  in
  let cuts = if mapped then Cuts.enumerate ~k:4 g else Cuts.trivial_only g in
  let f = Mams.Formulation.build cfg g cuts in
  Mams.Formulation.model f

let small_recurrence () =
  let b = Ir.Builder.create () in
  let x = Ir.Builder.input b ~width:4 "x" in
  let cell = Ir.Builder.feedback b ~width:4 ~init:0L ~dist:1 in
  let t1 = Ir.Builder.xor_ b x cell in
  let t2 = Ir.Builder.not_ b t1 in
  Ir.Builder.drive b ~cell t1;
  Ir.Builder.output b t2;
  Ir.Builder.finish b

let test_kernel_recurrence () =
  check_deterministic "recurrence formulation"
    (kernel_model ~mapped:true small_recurrence)

let test_kernel_rs () =
  check_deterministic "RS kernel formulation"
    (kernel_model (fun () -> Benchmarks.Rs.kernel ~width:2 ()))

let test_kernel_clz () =
  check_deterministic "CLZ formulation"
    (kernel_model (fun () -> Benchmarks.Clz.build ~width:4 ()))

(* --- random MILPs (qcheck) ------------------------------------------ *)

let parallel_matches_sequential =
  let gen =
    QCheck.Gen.(
      let coef = map (fun i -> float_of_int (i - 4)) (int_bound 8) in
      let* n = int_range 1 6 in
      let* m = int_range 1 3 in
      let* obj = list_repeat n coef in
      let* rows = list_repeat m (list_repeat n coef) in
      let* rhs = list_repeat m (map float_of_int (int_bound 6)) in
      return (n, obj, rows, rhs))
  in
  QCheck.Test.make ~name:"random binary MILP agrees across domain counts"
    ~count:40 (QCheck.make gen) (fun (n, obj, rows, rhs) ->
      let build () =
        let m = Lp.Model.create () in
        let xs =
          List.init n (fun i -> Lp.Model.bool_var m (Printf.sprintf "b%d" i))
        in
        List.iter2
          (fun row b ->
            Lp.Model.add_le m (List.map2 (fun c x -> (c, x)) row xs) b)
          rows rhs;
        Lp.Model.set_objective m (List.map2 (fun c x -> (c, x)) obj xs);
        m
      in
      let base = Lp.Milp.solve ~time_limit:20.0 ~domains:1 (build ()) in
      List.for_all
        (fun d ->
          let r = Lp.Milp.solve ~time_limit:20.0 ~domains:d (build ()) in
          r.Lp.Milp.status = base.Lp.Milp.status
          && (base.Lp.Milp.status <> Lp.Milp.Optimal
             || feq base.Lp.Milp.objective r.Lp.Milp.objective))
        (List.tl dom_counts))

(* --- PIPESYN_DOMAINS ------------------------------------------------- *)

let with_env value f =
  Unix.putenv "PIPESYN_DOMAINS" value;
  Fun.protect ~finally:(fun () -> Unix.putenv "PIPESYN_DOMAINS" "") f

let test_env_knob () =
  let solve () = Lp.Milp.solve ~time_limit:30.0 (knapsack ()) in
  let base = solve () in
  Alcotest.(check int) "unset defaults to 1" 1
    base.Lp.Milp.stats.Lp.Milp.domains;
  let par = with_env "3" solve in
  Alcotest.(check int) "PIPESYN_DOMAINS=3 honoured" 3
    par.Lp.Milp.stats.Lp.Milp.domains;
  Alcotest.(check string) "status parity" (status_str base.Lp.Milp.status)
    (status_str par.Lp.Milp.status);
  if not (feq base.Lp.Milp.objective par.Lp.Milp.objective) then
    Alcotest.failf "env objective %.9g vs %.9g" base.Lp.Milp.objective
      par.Lp.Milp.objective;
  let bogus = with_env "zero" solve in
  Alcotest.(check int) "unparsable value falls back to 1" 1
    bogus.Lp.Milp.stats.Lp.Milp.domains;
  let neg = with_env "-2" solve in
  Alcotest.(check int) "non-positive value falls back to 1" 1
    neg.Lp.Milp.stats.Lp.Milp.domains;
  (* the explicit argument wins over the environment *)
  let forced =
    with_env "4" (fun () ->
        Lp.Milp.solve ~time_limit:30.0 ~domains:2 (knapsack ()))
  in
  Alcotest.(check int) "?domains overrides the environment" 2
    forced.Lp.Milp.stats.Lp.Milp.domains

(* --- fault matrix under four domains --------------------------------- *)

(* Re-run of test_resilience's end-to-end matrix with PIPESYN_DOMAINS=4:
   every registered fault point, armed always-on, against each benchmark
   kernel's Milp-map cascade — the run must still end in a verified
   (schedule, cover). Faults now fire from worker domains too
   (simplex.cycle in particular), so this exercises the fault-hit lock
   and cross-domain exception containment. *)
let run_with_fault ~fault (e : Benchmarks.Registry.entry) =
  Resilience.Fault.clear ();
  (match Resilience.Fault.arm fault with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "arm %s: %s" fault msg);
  let g = e.build () in
  let device = Fpga.Device.make ~t_clk:e.t_clk () in
  let setup =
    {
      (Mams.Flow.default_setup ~device) with
      resources = e.resources;
      time_limit = 1.0;
    }
  in
  let r = Mams.Flow.run setup Mams.Flow.Milp_map g in
  Resilience.Fault.clear ();
  match r with
  | Error msg -> Alcotest.failf "%s + %s: no result: %s" e.name fault msg
  | Ok r ->
      let ctx =
        {
          Sched.Verify.device;
          delays = setup.Mams.Flow.delays;
          resources = setup.Mams.Flow.resources;
        }
      in
      (match
         Sched.Verify.check ctx g r.Mams.Flow.cover r.Mams.Flow.schedule
       with
      | Ok () -> ()
      | Error errs ->
          Alcotest.failf "%s + %s: verify failed: %s" e.name fault
            (String.concat "; " errs))

let test_fault_matrix_4_domains () =
  with_env "4" @@ fun () ->
  List.iter
    (fun (fault, _) ->
      List.iter (run_with_fault ~fault) Benchmarks.Registry.all)
    Resilience.Fault.points

let qsuite name tests =
  (name, List.map (fun t -> QCheck_alcotest.to_alcotest t) tests)

let () =
  Alcotest.run "parallel"
    [
      ( "determinism",
        [
          Alcotest.test_case "knapsack" `Quick test_knapsack;
          Alcotest.test_case "symmetric cover" `Quick test_symmetric;
          Alcotest.test_case "infeasible" `Quick test_infeasible;
          Alcotest.test_case "general integer" `Quick test_general_integer;
          Alcotest.test_case "recurrence kernel" `Quick test_kernel_recurrence;
          Alcotest.test_case "RS kernel" `Quick test_kernel_rs;
          Alcotest.test_case "CLZ kernel" `Quick test_kernel_clz;
        ] );
      qsuite "determinism-random" [ parallel_matches_sequential ];
      ( "env",
        [ Alcotest.test_case "PIPESYN_DOMAINS" `Quick test_env_knob ] );
      ( "faults",
        [
          Alcotest.test_case "matrix @ 4 domains" `Slow
            test_fault_matrix_4_domains;
        ] );
    ]
