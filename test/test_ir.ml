(* Tests for the CDFG IR: builder, validation, topological order,
   simulation (including loop-carried recurrences), and the RS benchmark
   reference models. *)

let build_simple () =
  (* out = (a xor b) and (a shifted) *)
  let b = Ir.Builder.create () in
  let a = Ir.Builder.input b ~width:8 "a" in
  let bb = Ir.Builder.input b ~width:8 "b" in
  let x = Ir.Builder.xor_ b a bb in
  let s = Ir.Builder.shr b a 2 in
  let o = Ir.Builder.and_ b x s in
  Ir.Builder.output b o;
  Ir.Builder.finish b

let test_build_and_validate () =
  let g = build_simple () in
  Alcotest.(check int) "node count" 5 (Ir.Cdfg.num_nodes g);
  (match Ir.Cdfg.validate g with
  | Ok () -> ()
  | Error e -> Alcotest.failf "validate: %s" e);
  Alcotest.(check int) "outputs" 1 (List.length (Ir.Cdfg.outputs g))

let test_topo_order () =
  let g = build_simple () in
  let order = Ir.Cdfg.topo_order g in
  Alcotest.(check int) "covers all nodes" (Ir.Cdfg.num_nodes g)
    (List.length order);
  let pos = Array.make (Ir.Cdfg.num_nodes g) 0 in
  List.iteri (fun i v -> pos.(v) <- i) order;
  Ir.Cdfg.iter
    (fun nd ->
      Array.iter
        (fun (e : Ir.Cdfg.edge) ->
          if e.dist = 0 then
            Alcotest.(check bool)
              "pred before succ" true
              (pos.(e.src) < pos.(nd.id)))
        nd.preds)
    g

let test_width_inference () =
  let b = Ir.Builder.create () in
  let a = Ir.Builder.input b ~width:8 "a" in
  let s = Ir.Builder.slice b a ~lo:2 ~hi:5 in
  Alcotest.(check int) "slice width" 4 (Ir.Builder.width_of b s);
  let c = Ir.Builder.cmp b Ir.Op.Lt a a in
  Alcotest.(check int) "cmp width" 1 (Ir.Builder.width_of b c);
  let k = Ir.Builder.concat b s c in
  Alcotest.(check int) "concat width" 5 (Ir.Builder.width_of b k)

let test_width_mismatch_rejected () =
  let b = Ir.Builder.create () in
  let a = Ir.Builder.input b ~width:8 "a" in
  let c = Ir.Builder.input b ~width:4 "c" in
  Alcotest.(check bool) "xor of mixed widths raises" true
    (try
       ignore (Ir.Builder.xor_ b a c);
       false
     with Invalid_argument _ -> true)

let test_undriven_feedback_rejected () =
  let b = Ir.Builder.create () in
  let a = Ir.Builder.input b ~width:4 "a" in
  let cell = Ir.Builder.feedback b ~width:4 ~init:0L ~dist:1 in
  let x = Ir.Builder.xor_ b a cell in
  Ir.Builder.output b x;
  Alcotest.(check bool) "finish raises" true
    (try
       ignore (Ir.Builder.finish b);
       false
     with Invalid_argument _ -> true)

let test_no_output_rejected () =
  let b = Ir.Builder.create () in
  ignore (Ir.Builder.input b ~width:4 "a");
  Alcotest.(check bool) "finish raises" true
    (try
       ignore (Ir.Builder.finish b);
       false
     with Invalid_argument _ -> true)

let test_eval_combinational () =
  let g = build_simple () in
  let inputs ~iter:_ ~name =
    match name with "a" -> 0xAAL | "b" -> 0x0FL | _ -> 0L
  in
  let trace = Ir.Eval.run g ~iterations:1 ~inputs in
  let out = List.hd (Ir.Cdfg.outputs g) in
  (* (0xAA xor 0x0F) and (0xAA >> 2) = 0xA5 and 0x2A = 0x20 *)
  Alcotest.(check int64) "value" 0x20L trace.(0).(out)

let test_eval_ops () =
  let b = Ir.Builder.create () in
  let a = Ir.Builder.input b ~width:4 "a" in
  let c7 = Ir.Builder.const b ~width:4 7L in
  let sum = Ir.Builder.add b a c7 in
  let diff = Ir.Builder.sub b a c7 in
  let lt = Ir.Builder.cmp b Ir.Op.Lt a c7 in
  let m = Ir.Builder.mux b ~cond:lt sum diff in
  let n = Ir.Builder.not_ b a in
  Ir.Builder.output b m;
  Ir.Builder.output b n;
  let g = Ir.Builder.finish b in
  let run v =
    let trace =
      Ir.Eval.run g ~iterations:1 ~inputs:(fun ~iter:_ ~name:_ -> v)
    in
    Ir.Eval.outputs_of g trace ~iter:0
  in
  (match run 3L with
  | [ (_, m); (_, n) ] ->
      Alcotest.(check int64) "mux takes sum (3<7)" 10L m;
      Alcotest.(check int64) "not 3 (4 bits)" 12L n
  | _ -> Alcotest.fail "expected two outputs");
  match run 9L with
  | [ (_, m); _ ] ->
      (* 9 >= 7 -> diff = 9-7 = 2 *)
      Alcotest.(check int64) "mux takes diff (9>=7)" 2L m
  | _ -> Alcotest.fail "expected two outputs"

let test_eval_recurrence () =
  (* acc <- acc + in, dist 1: a running sum. *)
  let b = Ir.Builder.create () in
  let x = Ir.Builder.input b ~width:16 "x" in
  let acc = Ir.Builder.feedback b ~width:16 ~init:0L ~dist:1 in
  let next = Ir.Builder.add b x acc in
  Ir.Builder.drive b ~cell:acc next;
  Ir.Builder.output b next;
  let g = Ir.Builder.finish b in
  let trace =
    Ir.Eval.run g ~iterations:5 ~inputs:(fun ~iter ~name:_ ->
        Int64.of_int (iter + 1))
  in
  let out = List.hd (Ir.Cdfg.outputs g) in
  (* partial sums 1, 3, 6, 10, 15 *)
  Alcotest.(check int64) "iter 0" 1L trace.(0).(out);
  Alcotest.(check int64) "iter 2" 6L trace.(2).(out);
  Alcotest.(check int64) "iter 4" 15L trace.(4).(out)

let test_eval_init_value () =
  let b = Ir.Builder.create () in
  let x = Ir.Builder.input b ~width:8 "x" in
  let cell = Ir.Builder.feedback b ~width:8 ~init:0x55L ~dist:2 in
  let next = Ir.Builder.xor_ b x cell in
  Ir.Builder.drive b ~cell next;
  Ir.Builder.output b next;
  let g = Ir.Builder.finish b in
  let trace =
    Ir.Eval.run g ~iterations:3 ~inputs:(fun ~iter:_ ~name:_ -> 0xFFL)
  in
  let out = List.hd (Ir.Cdfg.outputs g) in
  (* iters 0 and 1 see the init value 0x55 *)
  Alcotest.(check int64) "iter 0 uses init" 0xAAL trace.(0).(out);
  Alcotest.(check int64) "iter 1 uses init" 0xAAL trace.(1).(out);
  (* iter 2 sees iter 0's result *)
  Alcotest.(check int64) "iter 2 uses iter 0" 0x55L trace.(2).(out)

let test_black_box_eval () =
  let b = Ir.Builder.create () in
  let a = Ir.Builder.input b ~width:8 "a" in
  let s =
    Ir.Builder.black_box b ~kind:"sbox" ~resource:"bram_port" ~width:8 [ a ]
  in
  Ir.Builder.output b s;
  let g = Ir.Builder.finish b in
  let black_box ~kind args =
    Alcotest.(check string) "kind" "sbox" kind;
    Int64.add args.(0) 1L
  in
  let trace =
    Ir.Eval.run ~black_box g ~iterations:1
      ~inputs:(fun ~iter:_ ~name:_ -> 41L)
  in
  Alcotest.(check int64) "bb result" 42L trace.(0).(List.hd (Ir.Cdfg.outputs g))

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_dot_export () =
  let g = build_simple () in
  let dot = Ir.Dot.to_string g in
  Alcotest.(check bool) "mentions digraph" true
    (String.length dot > 0 && String.sub dot 0 7 = "digraph");
  let dot2 = Ir.Dot.to_string ~cycle_of:(fun v -> v mod 2) g in
  Alcotest.(check bool) "has clusters" true (contains dot2 "cluster")

(* A hostile node or black-box name must not break out of the DOT label
   attribute (quote/backslash/newline injection). *)
let test_dot_label_escaping () =
  Alcotest.(check string)
    "escape_label" "a\\\"b\\\\c\\nd"
    (Ir.Dot.escape_label "a\"b\\c\nd");
  let b = Ir.Builder.create () in
  let a = Ir.Builder.input b ~width:8 "x\", shape=doublecircle] //" in
  let s =
    Ir.Builder.black_box b ~kind:"evil\"kind" ~resource:"bram_port" ~width:8
      [ a ]
  in
  Ir.Builder.output b s;
  let g = Ir.Builder.finish b in
  let dot = Ir.Dot.to_string g in
  Alcotest.(check bool)
    "raw quote never precedes a comma unescaped" false
    (contains dot "x\", shape");
  Alcotest.(check bool)
    "escaped name present" true
    (contains dot "x\\\", shape");
  Alcotest.(check bool) "escaped kind present" true (contains dot "evil\\\"kind")

(* The RS kernel CDFG agrees with its reference model over many steps. *)
let rs_kernel_matches_reference =
  QCheck.Test.make ~name:"rs kernel matches software model" ~count:100
    QCheck.(make Gen.(list_size (int_range 1 20) (map Int64.of_int (int_bound 255))))
    (fun data ->
      let width = 8 in
      let g = Benchmarks.Rs.kernel ~width () in
      let arr = Array.of_list data in
      let trace =
        Ir.Eval.run g ~iterations:(Array.length arr)
          ~inputs:(fun ~iter ~name:_ -> arr.(iter))
      in
      let out = List.hd (Ir.Cdfg.outputs g) in
      let rec model state i =
        if i >= Array.length arr then true
        else
          let next, expect =
            Benchmarks.Rs.kernel_reference ~width ~t:arr.(i) ~state
          in
          Int64.equal expect trace.(i).(out) && model next (i + 1)
      in
      model 0L 0)

let rs_full_matches_reference =
  QCheck.Test.make ~name:"rs full encoder matches software model" ~count:60
    QCheck.(make Gen.(list_size (int_range 1 12) (map Int64.of_int (int_bound 15))))
    (fun data ->
      let width = 4 and taps = 4 in
      let g = Benchmarks.Rs.full ~width ~taps () in
      let arr = Array.of_list data in
      let trace =
        Ir.Eval.run g ~iterations:(Array.length arr)
          ~inputs:(fun ~iter ~name:_ -> arr.(iter))
      in
      let expect = Benchmarks.Rs.full_reference ~width ~taps ~data in
      let out = List.hd (Ir.Cdfg.outputs g) in
      let last = Array.length arr - 1 in
      Int64.equal (List.nth expect (taps - 1)) trace.(last).(out))

let qsuite tests = List.map (fun t -> QCheck_alcotest.to_alcotest t) tests

let () =
  Alcotest.run "ir"
    [
      ( "builder",
        [
          Alcotest.test_case "build and validate" `Quick test_build_and_validate;
          Alcotest.test_case "topo order" `Quick test_topo_order;
          Alcotest.test_case "width inference" `Quick test_width_inference;
          Alcotest.test_case "width mismatch" `Quick test_width_mismatch_rejected;
          Alcotest.test_case "undriven feedback" `Quick
            test_undriven_feedback_rejected;
          Alcotest.test_case "no output" `Quick test_no_output_rejected;
        ] );
      ( "eval",
        [
          Alcotest.test_case "combinational" `Quick test_eval_combinational;
          Alcotest.test_case "arith/mux/not" `Quick test_eval_ops;
          Alcotest.test_case "recurrence" `Quick test_eval_recurrence;
          Alcotest.test_case "init value" `Quick test_eval_init_value;
          Alcotest.test_case "black box" `Quick test_black_box_eval;
          Alcotest.test_case "dot export" `Quick test_dot_export;
          Alcotest.test_case "dot label escaping" `Quick
            test_dot_label_escaping;
        ] );
      ("rs-model", qsuite [ rs_kernel_matches_reference; rs_full_matches_reference ]);
    ]
