(* Tests for the structured trace layer (Obs.Trace): buffer semantics,
   Chrome/native export round-trips, well-formedness of everything the
   instrumented flow emits, and — the load-bearing invariant — that
   tracing never changes flow results, with or without injected faults. *)

let reset_trace () =
  Obs.Trace.disable ();
  Obs.Trace.clear ()

(* Export the live buffer, print it, re-parse it, analyze it. Any trace
   the repo emits must survive this loop with zero errors. *)
let analyze_current ?top () =
  let s = Obs.Json.to_string (Obs.Trace.export_chrome ()) in
  match Obs.Json.of_string s with
  | Error e -> Alcotest.failf "exported trace did not re-parse: %s" e
  | Ok j -> (
      match Obs.Trace.Analysis.analyze ?top j with
      | Error e -> Alcotest.failf "analyze rejected exported trace: %s" e
      | Ok r -> r)

let test_disabled_is_inert () =
  reset_trace ();
  Obs.Trace.begin_span "x";
  Obs.Trace.instant "tick";
  Obs.Trace.end_span ();
  let v = Obs.Trace.span "s" (fun () -> 42) in
  Alcotest.(check int) "span returns the thunk's value" 42 v;
  Alcotest.(check int) "no events recorded" 0 (Obs.Trace.num_events ());
  Alcotest.(check bool) "reports disabled" false (Obs.Trace.enabled ())

let test_nesting_and_roundtrip () =
  reset_trace ();
  Obs.Trace.enable ();
  Obs.Trace.span ~cat:"t" "outer" (fun () ->
      Obs.Trace.instant ~cat:"t" "tick" ~args:[ ("k", Obs.Json.Int 1) ];
      Obs.Trace.span ~cat:"t" "inner" (fun () -> ()));
  Obs.Trace.span ~cat:"t" "second" (fun () -> ());
  Alcotest.(check int) "3 B + 3 E + 1 i" 7 (Obs.Trace.num_events ());
  let r = analyze_current () in
  Alcotest.(check (list string)) "well-formed" [] r.Obs.Trace.Analysis.r_errors;
  Alcotest.(check int) "spans" 3 r.Obs.Trace.Analysis.r_spans;
  Alcotest.(check int) "instants" 1 r.Obs.Trace.Analysis.r_instants;
  let names =
    List.map (fun s -> s.Obs.Trace.Analysis.sp_name) r.Obs.Trace.Analysis.r_phases
  in
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " in phase breakdown") true (List.mem n names))
    [ "outer"; "inner"; "second" ];
  reset_trace ()

let test_exception_closes_span () =
  reset_trace ();
  Obs.Trace.enable ();
  (try Obs.Trace.span "boom" (fun () -> failwith "x") with Failure _ -> ());
  let r = analyze_current () in
  Alcotest.(check (list string)) "well-formed after raise" []
    r.Obs.Trace.Analysis.r_errors;
  Alcotest.(check int) "span recorded" 1 r.Obs.Trace.Analysis.r_spans;
  reset_trace ()

let test_disable_closes_open_spans () =
  reset_trace ();
  Obs.Trace.enable ();
  Obs.Trace.begin_span "left-open";
  Obs.Trace.begin_span "also-open";
  Obs.Trace.disable ();
  let r = analyze_current () in
  Alcotest.(check (list string)) "disable closed them" []
    r.Obs.Trace.Analysis.r_errors;
  Alcotest.(check int) "both spans present" 2 r.Obs.Trace.Analysis.r_spans;
  Obs.Trace.clear ()

(* The cap drops whole new spans/instants, deterministically, and never
   the E of a B that made it into the buffer — so a truncated trace is
   still well-formed. *)
let test_cap_drops_deterministically () =
  reset_trace ();
  Obs.Trace.enable ~cap:16 ();
  Obs.Trace.begin_span "survivor";
  for i = 0 to 29 do
    Obs.Trace.instant "tick" ~args:[ ("i", Obs.Json.Int i) ]
  done;
  Obs.Trace.end_span ();
  (* 1 B + 15 recorded instants fill the cap; the survivor's E is still
     written (buffer may exceed the cap by the open depth). *)
  Alcotest.(check int) "buffer at cap plus closing E" 17
    (Obs.Trace.num_events ());
  Alcotest.(check int) "drops counted" 15 (Obs.Trace.dropped ());
  (* a span opened after the cap is dropped wholesale *)
  Obs.Trace.span "late" (fun () -> Obs.Trace.instant "late-tick");
  Alcotest.(check int) "late span dropped" 17 (Obs.Trace.num_events ());
  let r = analyze_current () in
  Alcotest.(check (list string)) "truncated trace is well-formed" []
    r.Obs.Trace.Analysis.r_errors;
  Alcotest.(check int) "one recorded span" 1 r.Obs.Trace.Analysis.r_spans;
  reset_trace ()

let test_native_export_shape () =
  reset_trace ();
  Obs.Trace.enable ();
  Obs.Trace.span "s" (fun () -> Obs.Trace.instant "i");
  let s = Obs.Json.to_string (Obs.Trace.export_native ()) in
  (match Obs.Json.of_string s with
  | Error e -> Alcotest.failf "native export did not re-parse: %s" e
  | Ok j ->
      Alcotest.(check bool) "schema tag" true
        (Obs.Json.member "schema" j
        = Some (Obs.Json.String "pipesyn-trace-v1"));
      Alcotest.(check bool) "clock tag" true
        (Obs.Json.member "clock" j = Some (Obs.Json.String "wall-s"));
      (match Obs.Json.member "events" j with
      | Some (Obs.Json.List evs) ->
          Alcotest.(check int) "B + E + i" 3 (List.length evs)
      | _ -> Alcotest.fail "missing events list"));
  reset_trace ()

let test_summary_shape () =
  reset_trace ();
  Obs.Trace.enable ();
  Obs.Trace.span "s" (fun () ->
      Obs.Trace.instant "milp.incumbent"
        ~args:
          [ ("objective", Obs.Json.Float 12.0); ("gap", Obs.Json.Float 0.25) ]);
  let j = Obs.Trace.summary () in
  Alcotest.(check bool) "enabled flag" true
    (Obs.Json.member "enabled" j = Some (Obs.Json.Bool true));
  Alcotest.(check bool) "spans counted" true
    (Obs.Json.member "spans" j = Some (Obs.Json.Int 1));
  Alcotest.(check bool) "instants counted" true
    (Obs.Json.member "instants" j = Some (Obs.Json.Int 1));
  Alcotest.(check bool) "first incumbent extracted" true
    (match Obs.Json.member "first_incumbent_s" j with
    | Some (Obs.Json.Float _) -> true
    | _ -> false);
  reset_trace ()

(* --- end-to-end: the instrumented flow emits a well-formed trace --- *)

let flow_setup () =
  {
    (Mams.Flow.default_setup ~device:Fpga.Device.figure1) with
    delays = Fpga.Delays.make ~logic:2.0 ~arith_base:1.6 ~arith_per_bit:0.2 ();
    time_limit = 30.0;
  }

let run_flow setup g =
  match Mams.Flow.run setup Mams.Flow.Milp_map g with
  | Ok r -> r
  | Error e -> Alcotest.failf "flow failed: %s" e

let test_flow_trace_end_to_end () =
  let g = Benchmarks.Rs.kernel ~width:2 () in
  let setup = flow_setup () in
  Obs.reset ();
  reset_trace ();
  Obs.Trace.enable ();
  let r = run_flow setup g in
  let rep = analyze_current () in
  Obs.Trace.disable ();
  Alcotest.(check (list string)) "flow trace is well-formed" []
    rep.Obs.Trace.Analysis.r_errors;
  let names =
    List.map
      (fun s -> s.Obs.Trace.Analysis.sp_name)
      rep.Obs.Trace.Analysis.r_phases
  in
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " span present") true (List.mem n names))
    [ "flow.run"; "flow.solve"; "milp.solve"; "cuts.enumerate"; "techmap.map" ];
  (* one milp.node instant per explored B&B node *)
  let m = Mams.Flow.metrics ~name:"RS" r in
  (match rep.Obs.Trace.Analysis.r_tree with
  | None -> Alcotest.fail "no B&B tree stats in trace"
  | Some t ->
      Alcotest.(check int) "tree nodes match bnb_nodes"
        (Option.value ~default:0 m.Obs.Metrics.bnb_nodes)
        t.Obs.Trace.Analysis.tr_nodes;
      Alcotest.(check bool) "statuses histogram non-empty" true
        (t.Obs.Trace.Analysis.tr_statuses <> []));
  (* the warm-start seed guarantees at least one incumbent event *)
  Alcotest.(check bool) "convergence timeline non-empty" true
    (rep.Obs.Trace.Analysis.r_timeline <> []);
  (* the metrics convergence fields are populated for a MILP flow *)
  Alcotest.(check bool) "first_incumbent_s finite" true
    (Float.is_finite m.Obs.Metrics.first_incumbent_s);
  reset_trace ()

(* --- neutrality: tracing must never change flow results ------------- *)

(* Everything result-shaped, minus wall-clock timings. *)
let fingerprint (r : Mams.Flow.result) =
  ( r.Mams.Flow.qor,
    Array.to_list r.Mams.Flow.schedule.Sched.Schedule.cycle,
    Sched.Cover.roots r.Mams.Flow.cover,
    r.Mams.Flow.solve.Mams.Flow.milp_status,
    List.map
      (fun (a : Resilience.Cascade.attempt) ->
        (a.Resilience.Cascade.label, a.Resilience.Cascade.reason))
      r.Mams.Flow.trail,
    ( r.Mams.Flow.metrics.Obs.Metrics.lut,
      r.Mams.Flow.metrics.Obs.Metrics.ff,
      r.Mams.Flow.metrics.Obs.Metrics.status ) )

let run_neutrality_case ~fault () =
  let g = Benchmarks.Rs.kernel ~width:2 () in
  let setup = flow_setup () in
  let run_once ~traced =
    Resilience.Fault.clear ();
    (match fault with
    | None -> ()
    | Some f -> (
        match Resilience.Fault.arm f with
        | Ok () -> ()
        | Error e -> Alcotest.failf "cannot arm %s: %s" f e));
    Obs.reset ();
    reset_trace ();
    if traced then Obs.Trace.enable ();
    let r = run_flow setup g in
    Resilience.Fault.clear ();
    reset_trace ();
    r
  in
  let off = fingerprint (run_once ~traced:false) in
  let on = fingerprint (run_once ~traced:true) in
  Alcotest.(check bool)
    (Printf.sprintf "traced run identical (fault=%s)"
       (Option.value ~default:"none" fault))
    true (off = on)

let test_neutrality_no_fault () = run_neutrality_case ~fault:None ()

let test_neutrality_fault_matrix () =
  List.iter
    (fun (name, _doc) -> run_neutrality_case ~fault:(Some name) ())
    Resilience.Fault.points

let () =
  Alcotest.run "trace"
    [
      ( "buffer",
        [
          Alcotest.test_case "disabled is inert" `Quick test_disabled_is_inert;
          Alcotest.test_case "nesting + export round-trip" `Quick
            test_nesting_and_roundtrip;
          Alcotest.test_case "exception closes span" `Quick
            test_exception_closes_span;
          Alcotest.test_case "disable closes open spans" `Quick
            test_disable_closes_open_spans;
          Alcotest.test_case "cap drops deterministically" `Quick
            test_cap_drops_deterministically;
          Alcotest.test_case "native export shape" `Quick
            test_native_export_shape;
          Alcotest.test_case "summary shape" `Quick test_summary_shape;
        ] );
      ( "flow",
        [
          Alcotest.test_case "instrumented flow trace" `Quick
            test_flow_trace_end_to_end;
        ] );
      ( "neutrality",
        [
          Alcotest.test_case "no fault" `Quick test_neutrality_no_fault;
          Alcotest.test_case "fault matrix" `Slow test_neutrality_fault_matrix;
        ] );
    ]
