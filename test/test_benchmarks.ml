(* Cross-checks of every Table 1 benchmark CDFG against its software
   reference model, via the bit-accurate simulator. *)

let i64 = Alcotest.testable (Fmt.fmt "%Ld") Int64.equal

let eval1 ?black_box g inputs =
  let trace =
    Ir.Eval.run ?black_box g ~iterations:1 ~inputs:(fun ~iter:_ ~name ->
        inputs name)
  in
  Ir.Eval.outputs_of g trace ~iter:0

(* --- CLZ --------------------------------------------------------------- *)

let clz_matches =
  QCheck.Test.make ~name:"clz matches reference" ~count:300
    QCheck.(make Gen.(map Int64.of_int (int_bound 0xffff)))
    (fun v ->
      let g = Benchmarks.Clz.build ~width:16 () in
      match eval1 g (fun _ -> v) with
      | [ (_, got) ] -> Int64.equal got (Benchmarks.Clz.reference ~width:16 v)
      | _ -> false)

let test_clz_corners () =
  let g = Benchmarks.Clz.build ~width:16 () in
  let run v =
    match eval1 g (fun _ -> v) with
    | [ (_, got) ] -> got
    | _ -> Alcotest.fail "one output expected"
  in
  Alcotest.check i64 "clz 0" 16L (run 0L);
  Alcotest.check i64 "clz 1" 15L (run 1L);
  Alcotest.check i64 "clz msb" 0L (run 0x8000L);
  Alcotest.check i64 "clz 0x0100" 7L (run 0x0100L)

let test_clz_width8 () =
  let g = Benchmarks.Clz.build ~width:8 () in
  for v = 0 to 255 do
    match eval1 g (fun _ -> Int64.of_int v) with
    | [ (_, got) ] ->
        Alcotest.check i64
          (Printf.sprintf "clz8 %d" v)
          (Benchmarks.Clz.reference ~width:8 (Int64.of_int v))
          got
    | _ -> Alcotest.fail "one output expected"
  done

(* --- XORR -------------------------------------------------------------- *)

let xorr_matches =
  QCheck.Test.make ~name:"xorr matches reference" ~count:200
    QCheck.(make Gen.(list_repeat 8 (map Int64.of_int (int_bound 255))))
    (fun data ->
      let g = Benchmarks.Xorr.build ~elements:8 ~width:8 ~mix_depth:3 () in
      let arr = Array.of_list data in
      let inputs name =
        Scanf.sscanf name "a%d" (fun i -> arr.(i))
      in
      match eval1 g inputs with
      | [ (_, got) ] ->
          Int64.equal got
            (Benchmarks.Xorr.reference ~elements:8 ~width:8 ~mix_depth:3 data)
      | _ -> false)

(* --- GFMUL ------------------------------------------------------------- *)

let gfmul_matches =
  QCheck.Test.make ~name:"gfmul matches reference" ~count:256
    QCheck.(make Gen.(pair (int_bound 15) (int_bound 15)))
    (fun (a, b) ->
      let g = Benchmarks.Gfmul.build ~width:4 () in
      let inputs = function
        | "a" -> Int64.of_int a
        | "b" -> Int64.of_int b
        | _ -> 0L
      in
      match eval1 g inputs with
      | [ (_, got) ] ->
          Int64.equal got
            (Benchmarks.Gfmul.reference ~width:4 ~a:(Int64.of_int a)
               ~b:(Int64.of_int b))
      | _ -> false)

let test_gfmul_identities () =
  let g = Benchmarks.Gfmul.build ~width:4 () in
  let mul a b =
    let inputs = function "a" -> a | "b" -> b | _ -> 0L in
    match eval1 g inputs with
    | [ (_, got) ] -> got
    | _ -> Alcotest.fail "one output"
  in
  Alcotest.check i64 "x * 0 = 0" 0L (mul 7L 0L);
  Alcotest.check i64 "x * 1 = x" 7L (mul 7L 1L);
  Alcotest.check i64 "commutative" (mul 5L 9L) (mul 9L 5L)

(* --- CORDIC ------------------------------------------------------------ *)

let cordic_matches =
  QCheck.Test.make ~name:"cordic matches reference" ~count:200
    QCheck.(make Gen.(triple (int_bound 255) (int_bound 255) (int_bound 255)))
    (fun (x, y, z) ->
      let g = Benchmarks.Cordic.build ~width:8 ~iterations:4 () in
      let inputs = function
        | "x0" -> Int64.of_int x
        | "y0" -> Int64.of_int y
        | "z0" -> Int64.of_int z
        | _ -> 0L
      in
      let ex, ey, ez =
        Benchmarks.Cordic.reference ~width:8 ~iterations:4
          ~x0:(Int64.of_int x) ~y0:(Int64.of_int y) ~z0:(Int64.of_int z)
      in
      match eval1 g inputs with
      | [ (_, gx); (_, gy); (_, gz) ] ->
          Int64.equal gx ex && Int64.equal gy ey && Int64.equal gz ez
      | _ -> false)

(* --- MT ---------------------------------------------------------------- *)

let mt_matches =
  QCheck.Test.make ~name:"mt matches reference over iterations" ~count:100
    QCheck.(make Gen.(list_size (int_range 1 12) (map Int64.of_int (int_bound 0xffff))))
    (fun entropy ->
      let g = Benchmarks.Mt.build ~width:16 () in
      let arr = Array.of_list entropy in
      let trace =
        Ir.Eval.run g ~iterations:(Array.length arr)
          ~inputs:(fun ~iter ~name:_ -> arr.(iter))
      in
      let out = List.hd (Ir.Cdfg.outputs g) in
      let rec model state i =
        if i >= Array.length arr then true
        else
          let next, y =
            Benchmarks.Mt.reference ~width:16 ~state ~x:arr.(i)
          in
          Int64.equal y trace.(i).(out) && model next (i + 1)
      in
      model 0x1234L 0)

(* --- AES --------------------------------------------------------------- *)

let aes_matches =
  QCheck.Test.make ~name:"aes round matches reference" ~count:200
    QCheck.(make Gen.(pair (list_repeat 4 (int_bound 255)) (list_repeat 4 (int_bound 255))))
    (fun (a, k) ->
      let g = Benchmarks.Aes.build () in
      let aa = Array.of_list a and ka = Array.of_list k in
      let inputs name =
        Scanf.sscanf name "%c%d" (fun c i ->
            match c with
            | 'a' -> Int64.of_int aa.(i)
            | 'k' -> Int64.of_int ka.(i)
            | _ -> 0L)
      in
      let expect = Benchmarks.Aes.reference ~a:aa ~k:ka in
      match eval1 ~black_box:Benchmarks.Aes.black_box_handler g inputs with
      | [ (_, o0); (_, o1); (_, o2); (_, o3) ] ->
          [ o0; o1; o2; o3 ]
          = List.map Int64.of_int (Array.to_list expect)
      | _ -> false)

let test_aes_sbox_involution_free () =
  (* spot-check a few S-box values against the published table *)
  Alcotest.(check int) "sbox 0" 0x63 (Benchmarks.Aes.sbox 0);
  Alcotest.(check int) "sbox 0x53" 0xed (Benchmarks.Aes.sbox 0x53);
  Alcotest.(check int) "sbox 0xff" 0x16 (Benchmarks.Aes.sbox 0xff)

(* --- DR ---------------------------------------------------------------- *)

let dr_matches =
  QCheck.Test.make ~name:"dr matches reference" ~count:256
    QCheck.(make Gen.(int_bound 255))
    (fun p ->
      let g = Benchmarks.Dr.build ~width:8 ~count:2 () in
      match eval1 g (fun _ -> Int64.of_int p) with
      | [ (_, got) ] ->
          Int64.equal got
            (Benchmarks.Dr.reference ~width:8 ~count:2 ~p:(Int64.of_int p))
      | _ -> false)

let test_dr_exact_template_hit () =
  let templates = Benchmarks.Dr.templates ~width:8 ~count:2 in
  let g = Benchmarks.Dr.build ~width:8 ~count:2 () in
  List.iteri
    (fun i t ->
      match eval1 g (fun _ -> t) with
      | [ (_, got) ] ->
          Alcotest.check i64
            (Printf.sprintf "template %d matches itself" i)
            (Int64.of_int i) got
      | _ -> Alcotest.fail "one output")
    templates

(* --- GSM --------------------------------------------------------------- *)

let gsm_matches =
  QCheck.Test.make ~name:"gsm matches reference" ~count:256
    QCheck.(make Gen.(pair (int_bound 4095) (int_bound 15)))
    (fun (s, c) ->
      let g = Benchmarks.Gsm.build ~width:12 ~stages:3 () in
      let inputs = function
        | "s" -> Int64.of_int s
        | "c" -> Int64.of_int c
        | _ -> 0L
      in
      match
        eval1 ~black_box:(Benchmarks.Gsm.black_box_handler ~width:12) g inputs
      with
      | [ (_, got) ] ->
          Int64.equal got
            (Benchmarks.Gsm.reference ~width:12 ~stages:3 ~s:(Int64.of_int s)
               ~c:(Int64.of_int c))
      | _ -> false)

let test_gsm_saturates () =
  let g = Benchmarks.Gsm.build ~width:12 ~stages:3 () in
  let run s c =
    let inputs = function
      | "s" -> Int64.of_int s
      | "c" -> Int64.of_int c
      | _ -> 0L
    in
    match
      eval1 ~black_box:(Benchmarks.Gsm.black_box_handler ~width:12) g inputs
    with
    | [ (_, got) ] -> got
    | _ -> Alcotest.fail "one output"
  in
  (* extremes never exceed the rails *)
  let hi = 3072L and lo = 1024L in
  List.iter
    (fun (s, c) ->
      let v = run s c in
      Alcotest.(check bool)
        (Printf.sprintf "clamped (%d,%d)" s c)
        true
        (Int64.unsigned_compare v hi <= 0 && Int64.unsigned_compare v lo >= 0))
    [ (4095, 15); (0, 0); (2048, 7) ]

(* --- registry ---------------------------------------------------------- *)

let test_registry_complete () =
  let names = List.map (fun (e : Benchmarks.Registry.entry) -> e.name)
      Benchmarks.Registry.all in
  Alcotest.(check (list string)) "paper order"
    [ "CLZ"; "XORR"; "GFMUL"; "CORDIC"; "MT"; "AES"; "RS"; "DR"; "GSM" ]
    names;
  List.iter
    (fun n -> ignore (Benchmarks.Registry.find (String.lowercase_ascii n)))
    names

let test_registry_graphs_validate () =
  List.iter
    (fun (e : Benchmarks.Registry.entry) ->
      let g = e.build () in
      match Ir.Cdfg.validate g with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "%s: %s" e.name msg)
    Benchmarks.Registry.all

let qsuite tests = List.map (fun t -> QCheck_alcotest.to_alcotest t) tests

let () =
  Alcotest.run "benchmarks"
    [
      ( "corner cases",
        [
          Alcotest.test_case "clz corners" `Quick test_clz_corners;
          Alcotest.test_case "clz exhaustive w8" `Quick test_clz_width8;
          Alcotest.test_case "gfmul identities" `Quick test_gfmul_identities;
          Alcotest.test_case "aes sbox" `Quick test_aes_sbox_involution_free;
          Alcotest.test_case "dr template hit" `Quick test_dr_exact_template_hit;
          Alcotest.test_case "gsm saturates" `Quick test_gsm_saturates;
          Alcotest.test_case "registry complete" `Quick test_registry_complete;
          Alcotest.test_case "graphs validate" `Quick test_registry_graphs_validate;
        ] );
      ( "reference models",
        qsuite
          [
            clz_matches; xorr_matches; gfmul_matches; cordic_matches;
            mt_matches; aes_matches; dr_matches; gsm_matches;
          ] );
    ]
