(* Tests for the static-analysis layer: one malformed input per diagnostic
   code (asserting the exact code and its witness), JSON round-trips, and a
   clean-run check over every registry benchmark. *)

let has_code code diags =
  List.exists (fun (d : Analyze.Diag.t) -> d.code = code) diags

let find_code code diags =
  match List.find_opt (fun (d : Analyze.Diag.t) -> d.code = code) diags with
  | Some d -> d
  | None ->
      Alcotest.failf "expected a %s diagnostic, got: %a" code
        Analyze.Diag.pp_report diags

let check_severity what expect (d : Analyze.Diag.t) =
  Alcotest.(check string)
    what
    (Analyze.Diag.severity_name expect)
    (Analyze.Diag.severity_name d.severity)

(* ------------------------------------------------------------------ *)
(* CDFG lints                                                          *)
(* ------------------------------------------------------------------ *)

let input_node id name width =
  {
    Ir.Cdfg.id;
    op = Ir.Op.Input name;
    width;
    preds = [||];
    name = Some name;
  }

let dist0 src = { Ir.Cdfg.src; dist = 0; init = 0L }

(* Two adds feeding each other with dist-0 edges: a combinational cycle
   that Ir.Cdfg.create would refuse to build. *)
let test_cdfg001_comb_cycle () =
  let nodes =
    [
      input_node 0 "a" 8;
      {
        Ir.Cdfg.id = 1;
        op = Ir.Op.Add;
        width = 8;
        preds = [| dist0 2; dist0 0 |];
        name = Some "u";
      };
      {
        Ir.Cdfg.id = 2;
        op = Ir.Op.Add;
        width = 8;
        preds = [| dist0 1; dist0 0 |];
        name = Some "v";
      };
    ]
  in
  let diags = Analyze.Cdfg_lint.check_raw ~nodes ~outputs:[ 2 ] in
  let d = find_code "CDFG001" diags in
  check_severity "CDFG001 severity" Analyze.Diag.Error d;
  (* Witness: the cycle in dataflow order, head repeated to close it. The
     starting node is a DFS artifact, so accept either rotation. *)
  Alcotest.(check bool) "cycle witness is closed" true
    (List.hd d.witness = List.nth d.witness (List.length d.witness - 1));
  Alcotest.(check (list string))
    "cycle members"
    [ "u"; "v" ]
    (List.sort_uniq compare d.witness)

let test_cdfg002_black_box_feedback () =
  let nodes =
    [
      input_node 0 "a" 8;
      {
        Ir.Cdfg.id = 1;
        op = Ir.Op.Black_box { kind = "mac"; resource = "dsp" };
        width = 8;
        preds = [| dist0 2 |];
        name = Some "m";
      };
      {
        Ir.Cdfg.id = 2;
        op = Ir.Op.Add;
        width = 8;
        preds = [| dist0 1; dist0 0 |];
        name = Some "s";
      };
    ]
  in
  let diags = Analyze.Cdfg_lint.check_raw ~nodes ~outputs:[ 2 ] in
  Alcotest.(check bool) "also reports the cycle" true (has_code "CDFG001" diags);
  let d = find_code "CDFG002" diags in
  check_severity "CDFG002 severity" Analyze.Diag.Error d;
  Alcotest.(check string) "locates the black box" "node:1"
    (Analyze.Diag.loc_to_string d.loc)

let test_cdfg003_width_violation () =
  let nodes =
    [
      input_node 0 "a" 8;
      input_node 1 "b" 4;
      {
        Ir.Cdfg.id = 2;
        op = Ir.Op.Add;
        width = 8;
        preds = [| dist0 0; dist0 1 |];
        name = Some "sum";
      };
    ]
  in
  let diags = Analyze.Cdfg_lint.check_raw ~nodes ~outputs:[ 2 ] in
  let d = find_code "CDFG003" diags in
  check_severity "CDFG003 severity" Analyze.Diag.Error d;
  Alcotest.(check string) "locates the add" "node:2"
    (Analyze.Diag.loc_to_string d.loc)

let test_cdfg004_dead_node () =
  let b = Ir.Builder.create () in
  let a = Ir.Builder.input b ~width:8 "a" in
  let dead = Ir.Builder.add b a a in
  ignore dead;
  let out = Ir.Builder.not_ b a in
  Ir.Builder.output b out;
  let g = Ir.Builder.finish b in
  let d = find_code "CDFG004" (Analyze.Cdfg_lint.check g) in
  check_severity "CDFG004 severity" Analyze.Diag.Warning d

let test_cdfg005_const_cone () =
  let b = Ir.Builder.create () in
  let a = Ir.Builder.input b ~width:8 "a" in
  let c1 = Ir.Builder.const b ~width:8 3L in
  let c2 = Ir.Builder.const b ~width:8 4L in
  let s = Ir.Builder.add b c1 c2 in
  let s2 = Ir.Builder.not_ b s in
  let out = Ir.Builder.add b a s2 in
  Ir.Builder.output b out;
  let g = Ir.Builder.finish b in
  let diags = Analyze.Cdfg_lint.check g in
  let d = find_code "CDFG005" diags in
  check_severity "CDFG005 severity" Analyze.Diag.Info d;
  (* One finding for the maximal cone (root s2), not one per folded node. *)
  Alcotest.(check int) "one cone"
    1
    (List.length
       (List.filter (fun (x : Analyze.Diag.t) -> x.code = "CDFG005") diags))

let test_cdfg006_malformed () =
  let nodes =
    [
      input_node 0 "a" 8;
      {
        Ir.Cdfg.id = 1;
        op = Ir.Op.Not;
        width = 8;
        preds = [| dist0 99 |];
        name = None;
      };
    ]
  in
  let diags = Analyze.Cdfg_lint.check_raw ~nodes ~outputs:[] in
  let d = find_code "CDFG006" diags in
  check_severity "CDFG006 severity" Analyze.Diag.Error d;
  (* Structural failures must suppress the downstream passes. *)
  Alcotest.(check bool) "only CDFG006" true
    (List.for_all (fun (x : Analyze.Diag.t) -> x.code = "CDFG006") diags);
  Alcotest.(check bool) "missing outputs reported" true
    (List.exists
       (fun (x : Analyze.Diag.t) -> x.message = "no primary outputs")
       diags)

(* ------------------------------------------------------------------ *)
(* pre-flight                                                          *)
(* ------------------------------------------------------------------ *)

(* acc <- acc + x three times per iteration, dist 1: the chained delay of
   three adds cannot close in one short cycle. *)
let recurrence_graph () =
  let b = Ir.Builder.create () in
  let x = Ir.Builder.input b ~width:16 "x" in
  let acc = Ir.Builder.feedback b ~width:16 ~init:0L ~dist:1 in
  let s1 = Ir.Builder.add b x acc in
  let s2 = Ir.Builder.add b x s1 in
  let s3 = Ir.Builder.add b x s2 in
  Ir.Builder.drive b ~cell:acc s3;
  Ir.Builder.output b s3;
  Ir.Builder.finish b

let tight_cfg ~ii =
  {
    Analyze.Preflight.device = Fpga.Device.make ~t_clk:2.0 ();
    delays = Fpga.Delays.default;
    resources = Fpga.Resource.unlimited;
    ii;
  }

let test_pre001_rec_mii () =
  let g = recurrence_graph () in
  let cfg = tight_cfg ~ii:1 in
  let rec_mii =
    Sched.Heuristic.rec_mii ~device:cfg.Analyze.Preflight.device
      ~delays:cfg.delays g
  in
  Alcotest.(check bool) "setup: RecMII binds" true (rec_mii > 1);
  let d = find_code "PRE001" (Analyze.Preflight.check cfg g) in
  check_severity "PRE001 severity" Analyze.Diag.Error d;
  (* The witness is a closed dependence cycle through the feedback adds. *)
  Alcotest.(check bool) "witness is a closed cycle" true
    (List.length d.witness >= 2
    && List.hd d.witness = List.nth d.witness (List.length d.witness - 1));
  (* The lint verdict agrees with the scheduler itself. *)
  Alcotest.(check bool) "heuristic agrees" true
    (Result.is_error
       (Sched.Heuristic.schedule ~device:cfg.device ~delays:cfg.delays
          ~resources:cfg.resources ~ii:1 g));
  Alcotest.(check bool) "feasible at RecMII" false
    (has_code "PRE001" (Analyze.Preflight.check { cfg with ii = rec_mii } g))

let dsp_pair_graph () =
  let b = Ir.Builder.create () in
  let x = Ir.Builder.input b ~width:8 "x" in
  let m1 = Ir.Builder.black_box b ~kind:"mul" ~resource:"dsp" ~width:8 [ x ] in
  let m2 = Ir.Builder.black_box b ~kind:"mul" ~resource:"dsp" ~width:8 [ m1 ] in
  Ir.Builder.output b m2;
  Ir.Builder.finish b

let test_pre002_res_mii () =
  let g = dsp_pair_graph () in
  let cfg =
    {
      Analyze.Preflight.device = Fpga.Device.make ~t_clk:10.0 ();
      delays = Fpga.Delays.default;
      resources = Fpga.Resource.of_list [ ("dsp", 1) ];
      ii = 1;
    }
  in
  let d = find_code "PRE002" (Analyze.Preflight.check cfg g) in
  check_severity "PRE002 severity" Analyze.Diag.Error d;
  Alcotest.(check (list string))
    "binding class witness"
    [ "dsp: 2 uses / 1 units -> ResMII 2" ]
    d.witness;
  Alcotest.(check bool) "feasible at ResMII" false
    (has_code "PRE002" (Analyze.Preflight.check { cfg with ii = 2 } g))

let test_pre003_period () =
  let g = recurrence_graph () in
  (* High II so the recurrence is feasible and only the period finding
     remains. *)
  let cfg = tight_cfg ~ii:8 in
  let diags = Analyze.Preflight.check cfg g in
  let d = find_code "PRE003" diags in
  check_severity "default: warning" Analyze.Diag.Warning d;
  let strict = Analyze.Preflight.check ~strict_period:true cfg g in
  let d = find_code "PRE003" strict in
  check_severity "strict: error" Analyze.Diag.Error d;
  Alcotest.(check int) "witness names the op" 1 (List.length d.witness)

let test_pre004_zero_budget () =
  let g = dsp_pair_graph () in
  let cfg =
    {
      Analyze.Preflight.device = Fpga.Device.make ~t_clk:10.0 ();
      delays = Fpga.Delays.default;
      resources = Fpga.Resource.of_list [ ("dsp", 0) ];
      ii = 4;
    }
  in
  let d = find_code "PRE004" (Analyze.Preflight.check cfg g) in
  check_severity "PRE004 severity" Analyze.Diag.Error d;
  Alcotest.(check (list string))
    "witness" [ "dsp: 2 uses, 0 units" ] d.witness

(* ------------------------------------------------------------------ *)
(* LP model lints                                                      *)
(* ------------------------------------------------------------------ *)

let test_lp001_infeasible_empty_row () =
  let m = Lp.Model.create () in
  let x = Lp.Model.add_var m "x" in
  (* Terms cancel to nothing; 0 >= 1 is false. *)
  Lp.Model.add_ge m ~name:"cancelled" [ (1.0, x); (-1.0, x) ] 1.0;
  Lp.Model.set_objective m [ (1.0, x) ];
  let d = find_code "LP001" (Analyze.Lp_lint.check m) in
  check_severity "LP001 severity" Analyze.Diag.Error d;
  Alcotest.(check string) "row location" "row:0"
    (Analyze.Diag.loc_to_string d.loc)

let test_lp002_vacuous_empty_row () =
  let m = Lp.Model.create () in
  let x = Lp.Model.add_var m "x" in
  Lp.Model.add_le m [ (1.0, x); (-1.0, x) ] 1.0;
  Lp.Model.set_objective m [ (1.0, x) ];
  let d = find_code "LP002" (Analyze.Lp_lint.check m) in
  check_severity "LP002 severity" Analyze.Diag.Warning d

let test_lp003_duplicate_rows () =
  let m = Lp.Model.create () in
  let x = Lp.Model.add_var m "x" in
  let y = Lp.Model.add_var m "y" in
  Lp.Model.add_le m ~name:"first" [ (1.0, x); (2.0, y) ] 3.0;
  (* Same normalized terms in a different order: still a duplicate. *)
  Lp.Model.add_le m ~name:"second" [ (2.0, y); (1.0, x) ] 3.0;
  Lp.Model.set_objective m [ (1.0, x); (1.0, y) ];
  let d = find_code "LP003" (Analyze.Lp_lint.check m) in
  check_severity "LP003 severity" Analyze.Diag.Warning d;
  Alcotest.(check (list string)) "witness pairs rows" [ "first"; "second" ]
    d.witness

let test_lp004_free_column () =
  let m = Lp.Model.create () in
  let x = Lp.Model.add_var m "x" in
  let free = Lp.Model.add_var m ~lb:0.0 ~ub:10.0 "loose" in
  ignore free;
  Lp.Model.add_le m [ (1.0, x) ] 1.0;
  Lp.Model.set_objective m [ (1.0, x) ];
  let d = find_code "LP004" (Analyze.Lp_lint.check m) in
  check_severity "LP004 severity" Analyze.Diag.Warning d;
  Alcotest.(check string) "column location" "col:1"
    (Analyze.Diag.loc_to_string d.loc)

let test_lp005_integer_infeasible_bounds () =
  let m = Lp.Model.create () in
  let x = Lp.Model.add_var m ~integer:true ~lb:0.4 ~ub:0.6 "frac" in
  Lp.Model.add_ge m [ (1.0, x) ] 0.0;
  let d = find_code "LP005" (Analyze.Lp_lint.check m) in
  check_severity "LP005 severity" Analyze.Diag.Error d

let test_lp_report_cap () =
  let m = Lp.Model.create () in
  let x = Lp.Model.add_var m "x" in
  for _ = 1 to 40 do
    Lp.Model.add_ge m [ (1.0, x); (-1.0, x) ] 1.0
  done;
  Lp.Model.set_objective m [ (1.0, x) ];
  let lp001 =
    List.filter
      (fun (d : Analyze.Diag.t) -> d.code = "LP001")
      (Analyze.Lp_lint.check m)
  in
  (* 25 kept + 1 summarizing overflow diagnostic. *)
  Alcotest.(check int) "capped" 26 (List.length lp001)

(* ------------------------------------------------------------------ *)
(* netlist lints                                                       *)
(* ------------------------------------------------------------------ *)

let sig_ name width = { Rtl.Netlist.name; width }

let netlist ?(inputs = []) ?(wires = []) ?(regs = []) ~outputs () =
  { Rtl.Netlist.module_name = "t"; inputs; wires; regs; outputs }

let test_net001_undriven () =
  let ghost = sig_ "ghost" 4 in
  let w = sig_ "w" 4 in
  let nl =
    netlist
      ~wires:[ (w, `Expr (Rtl.Netlist.Ref ghost)) ]
      ~outputs:[ (sig_ "o" 4, Rtl.Netlist.Ref w) ]
      ()
  in
  let d = find_code "NET001" (Analyze.Net_lint.check nl) in
  check_severity "NET001 severity" Analyze.Diag.Error d;
  Alcotest.(check string) "names the signal" "wire:ghost"
    (Analyze.Diag.loc_to_string d.loc)

let test_net002_multiple_drivers () =
  let a = sig_ "a" 4 in
  let w = sig_ "w" 4 in
  let nl =
    netlist ~inputs:[ a ]
      ~wires:
        [
          (w, `Expr (Rtl.Netlist.Ref a)); (w, `Expr (Rtl.Netlist.Ref a));
        ]
      ~outputs:[ (sig_ "o" 4, Rtl.Netlist.Ref w) ]
      ()
  in
  let d = find_code "NET002" (Analyze.Net_lint.check nl) in
  check_severity "NET002 severity" Analyze.Diag.Error d

let test_net003_unconnected_pin () =
  let a = sig_ "a" 4 in
  let w = sig_ "w" 4 in
  let nl =
    netlist ~inputs:[ a ]
      ~wires:
        [ (w, `Expr (Rtl.Netlist.App (Ir.Op.Add, [ Rtl.Netlist.Ref a ], 4))) ]
      ~outputs:[ (sig_ "o" 4, Rtl.Netlist.Ref w) ]
      ()
  in
  let d = find_code "NET003" (Analyze.Net_lint.check nl) in
  check_severity "NET003 severity" Analyze.Diag.Error d

let test_net004_order_violation () =
  let a = sig_ "a" 4 in
  let w1 = sig_ "w1" 4 in
  let w2 = sig_ "w2" 4 in
  let nl =
    netlist ~inputs:[ a ]
      ~wires:
        [
          (* w1 reads w2, which is defined after it: simulate would read
             a stale value. *)
          (w1, `Expr (Rtl.Netlist.Ref w2));
          (w2, `Expr (Rtl.Netlist.Ref a));
        ]
      ~outputs:[ (sig_ "o" 4, Rtl.Netlist.Ref w1) ]
      ()
  in
  let d = find_code "NET004" (Analyze.Net_lint.check nl) in
  check_severity "NET004 severity" Analyze.Diag.Error d;
  Alcotest.(check (list string))
    "witness has both positions"
    [ "w1 at position 0"; "w2 at position 1" ]
    d.witness

let test_net005_dangling_wire () =
  let a = sig_ "a" 4 in
  let w = sig_ "w" 4 in
  let nl =
    netlist ~inputs:[ a ]
      ~wires:[ (w, `Expr (Rtl.Netlist.Ref a)) ]
      ~outputs:[ (sig_ "o" 4, Rtl.Netlist.Ref a) ]
      ()
  in
  let d = find_code "NET005" (Analyze.Net_lint.check nl) in
  check_severity "NET005 severity" Analyze.Diag.Warning d

let test_net006_width_mismatch () =
  let a = sig_ "a" 8 in
  let b = sig_ "b" 4 in
  let w = sig_ "w" 8 in
  let nl =
    netlist ~inputs:[ a; b ]
      ~wires:
        [
          ( w,
            `Expr
              (Rtl.Netlist.App
                 (Ir.Op.Add, [ Rtl.Netlist.Ref a; Rtl.Netlist.Ref b ], 8)) );
        ]
      ~outputs:[ (sig_ "o" 8, Rtl.Netlist.Ref w) ]
      ()
  in
  let d = find_code "NET006" (Analyze.Net_lint.check nl) in
  check_severity "NET006 severity" Analyze.Diag.Error d

(* A real emitted netlist is clean. *)
let test_net_clean_on_emitted () =
  let e = Benchmarks.Registry.find "GFMUL" in
  let g = e.build () in
  let device = Fpga.Device.make ~t_clk:e.t_clk () in
  let setup =
    { (Mams.Flow.default_setup ~device) with resources = e.resources }
  in
  match Mams.Flow.run setup Mams.Flow.Hls_tool g with
  | Error err -> Alcotest.failf "flow failed: %s" err
  | Ok r ->
      let nl = Rtl.Netlist.of_design g r.Mams.Flow.cover r.Mams.Flow.schedule in
      let diags = Analyze.Net_lint.check nl in
      Alcotest.(check (list string)) "no errors" []
        (List.map
           (fun (d : Analyze.Diag.t) -> d.message)
           (Analyze.Diag.errors diags))

(* ------------------------------------------------------------------ *)
(* certificate checker                                                 *)
(* ------------------------------------------------------------------ *)

let test_cert_classification () =
  let diags =
    Analyze.Cert.of_messages
      [
        "[Eq. 2-4] cover: bad";
        "[Eq. 7] n1->n2: produced after use";
        "[Eq. 8] n1: finish exceeds period";
        "[Eq. 9] n1->n2: chained arrival late";
        "[Eq. 14] resource dsp: over limit";
        "schedule size mismatch";
      ]
  in
  Alcotest.(check (list string))
    "codes"
    [ "CERT001"; "CERT002"; "CERT003"; "CERT004"; "CERT005"; "CERT000" ]
    (List.map (fun (d : Analyze.Diag.t) -> d.code) diags);
  List.iter (check_severity "all errors" Analyze.Diag.Error) diags

let test_cert_catches_corruption () =
  let e = Benchmarks.Registry.find "GFMUL" in
  let g = e.build () in
  let device = Fpga.Device.make ~t_clk:e.t_clk () in
  let setup =
    { (Mams.Flow.default_setup ~device) with resources = e.resources }
  in
  match Mams.Flow.run setup Mams.Flow.Hls_tool g with
  | Error err -> Alcotest.failf "flow failed: %s" err
  | Ok r ->
      let ctx =
        {
          Sched.Verify.device;
          delays = setup.Mams.Flow.delays;
          resources = setup.Mams.Flow.resources;
        }
      in
      let sched = r.Mams.Flow.schedule in
      Alcotest.(check (list string))
        "pristine result is clean" []
        (List.map
           (fun (d : Analyze.Diag.t) -> d.code)
           (Analyze.Cert.check ctx g r.Mams.Flow.cover sched));
      (* Push one root past the clock period: an Eq. 8 violation. *)
      let victim = List.hd (Ir.Cdfg.outputs g) in
      sched.Sched.Schedule.start.(victim) <- e.t_clk +. 5.0;
      let diags = Analyze.Cert.check ctx g r.Mams.Flow.cover sched in
      Alcotest.(check bool) "CERT003 raised" true (has_code "CERT003" diags)

(* ------------------------------------------------------------------ *)
(* engine: gate, registry, JSON                                        *)
(* ------------------------------------------------------------------ *)

let test_gate_blocks_errors () =
  let g = recurrence_graph () in
  let cfg = tight_cfg ~ii:1 in
  (match Analyze.Engine.static_gate cfg g with
  | Ok _ -> Alcotest.fail "gate let an infeasible II through"
  | Error diags ->
      Alcotest.(check bool) "has PRE001" true (has_code "PRE001" diags));
  match Analyze.Engine.static_gate { cfg with ii = 8 } g with
  | Error diags ->
      Alcotest.failf "gate blocked a feasible setup: %a" Analyze.Diag.pp_report
        diags
  | Ok diags ->
      (* The multi-cycle period warning is recorded, not gating. *)
      Alcotest.(check bool) "PRE003 recorded" true (has_code "PRE003" diags)

let test_flow_gate_integration () =
  let g = recurrence_graph () in
  let device = Fpga.Device.make ~t_clk:2.0 () in
  let setup = { (Mams.Flow.default_setup ~device) with ii = 1 } in
  match Mams.Flow.run setup Mams.Flow.Hls_tool g with
  | Ok _ -> Alcotest.fail "flow ran despite an infeasible II"
  | Error msg ->
      let contains sub =
        let n = String.length msg and m = String.length sub in
        let rec go i = i + m <= n && (String.sub msg i m = sub || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "message names the gate" true
        (contains "lint gate" && contains "PRE001")

let test_registry_covers_codes () =
  let codes =
    List.concat_map
      (fun (p : Analyze.Engine.pass) -> List.map fst p.codes)
      Analyze.Engine.passes
  in
  Alcotest.(check bool) "at least 10 documented codes" true
    (List.length codes >= 10);
  let uniq = List.sort_uniq String.compare codes in
  Alcotest.(check int) "codes unique across passes" (List.length codes)
    (List.length uniq);
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (Printf.sprintf "audit pass documents %s" c)
        true (List.mem c codes))
    [ "CERT101"; "CERT102"; "CERT103"; "CERT104"; "CERT105"; "CERT106";
      "CERT107"; "CERT108" ];
  List.iter
    (fun (p : Analyze.Engine.pass) ->
      List.iter
        (fun (_, d) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s descriptions non-empty" p.name)
            true
            (String.length d > 0))
        p.codes)
    Analyze.Engine.passes

let test_diag_json_roundtrip () =
  let d =
    Analyze.Diag.errorf ~code:"CDFG001" ~pass:"cdfg-lint"
      ~loc:(Analyze.Diag.Edge (3, 7))
      ~witness:[ "a"; "b"; "a" ] "cycle of %d nodes" 2
  in
  match Analyze.Diag.of_json (Analyze.Diag.to_json d) with
  | Error e -> Alcotest.failf "round-trip failed: %s" e
  | Ok d' ->
      Alcotest.(check bool) "round-trips" true (Analyze.Diag.compare d d' = 0);
      Alcotest.(check (list string)) "witness kept" d.witness d'.Analyze.Diag.witness

let test_report_file_shape () =
  let path = Filename.temp_file "lint" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let g = recurrence_graph () in
      let diags = Analyze.Cdfg_lint.check g in
      Analyze.Engine.write_file ~path ~entries:[ ("toy", diags) ];
      let ic = open_in path in
      let text =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      match Obs.Json.of_string text with
      | Error e -> Alcotest.failf "unparseable report: %s" e
      | Ok json ->
          Alcotest.(check bool) "schema_version present" true
            (Obs.Json.member "schema_version" json
            = Some (Obs.Json.Int Obs.Metrics.schema_version));
          Alcotest.(check bool) "benchmarks present" true
            (match Obs.Json.member "benchmarks" json with
            | Some (Obs.Json.List (_ :: _)) -> true
            | _ -> false))

(* Every registry benchmark must be free of error-severity diagnostics
   under the default lint configuration — the CI gate's invariant. *)
let test_registry_benchmarks_clean () =
  List.iter
    (fun (e : Benchmarks.Registry.entry) ->
      let g = e.build () in
      let device = Fpga.Device.make ~t_clk:e.t_clk () in
      let cfg =
        {
          Analyze.Preflight.device;
          delays = Fpga.Delays.default;
          resources = e.resources;
          ii = 1;
        }
      in
      let diags =
        Analyze.Engine.check_cdfg g @ Analyze.Engine.preflight cfg g
      in
      Alcotest.(check (list string))
        (e.name ^ " has no error diagnostics")
        []
        (List.map
           (fun (d : Analyze.Diag.t) -> d.code ^ " " ^ d.message)
           (Analyze.Diag.errors diags)))
    Benchmarks.Registry.all

let () =
  Alcotest.run "analyze"
    [
      ( "cdfg-lint",
        [
          Alcotest.test_case "CDFG001 comb cycle" `Quick test_cdfg001_comb_cycle;
          Alcotest.test_case "CDFG002 black-box feedback" `Quick
            test_cdfg002_black_box_feedback;
          Alcotest.test_case "CDFG003 width violation" `Quick
            test_cdfg003_width_violation;
          Alcotest.test_case "CDFG004 dead node" `Quick test_cdfg004_dead_node;
          Alcotest.test_case "CDFG005 const cone" `Quick test_cdfg005_const_cone;
          Alcotest.test_case "CDFG006 malformed" `Quick test_cdfg006_malformed;
        ] );
      ( "preflight",
        [
          Alcotest.test_case "PRE001 RecMII" `Quick test_pre001_rec_mii;
          Alcotest.test_case "PRE002 ResMII" `Quick test_pre002_res_mii;
          Alcotest.test_case "PRE003 period" `Quick test_pre003_period;
          Alcotest.test_case "PRE004 zero budget" `Quick test_pre004_zero_budget;
        ] );
      ( "lp-lint",
        [
          Alcotest.test_case "LP001 infeasible empty row" `Quick
            test_lp001_infeasible_empty_row;
          Alcotest.test_case "LP002 vacuous empty row" `Quick
            test_lp002_vacuous_empty_row;
          Alcotest.test_case "LP003 duplicate rows" `Quick
            test_lp003_duplicate_rows;
          Alcotest.test_case "LP004 free column" `Quick test_lp004_free_column;
          Alcotest.test_case "LP005 integer bounds" `Quick
            test_lp005_integer_infeasible_bounds;
          Alcotest.test_case "report capping" `Quick test_lp_report_cap;
        ] );
      ( "net-lint",
        [
          Alcotest.test_case "NET001 undriven" `Quick test_net001_undriven;
          Alcotest.test_case "NET002 multiple drivers" `Quick
            test_net002_multiple_drivers;
          Alcotest.test_case "NET003 unconnected pin" `Quick
            test_net003_unconnected_pin;
          Alcotest.test_case "NET004 order violation" `Quick
            test_net004_order_violation;
          Alcotest.test_case "NET005 dangling wire" `Quick
            test_net005_dangling_wire;
          Alcotest.test_case "NET006 width mismatch" `Quick
            test_net006_width_mismatch;
          Alcotest.test_case "emitted netlist clean" `Quick
            test_net_clean_on_emitted;
        ] );
      ( "cert",
        [
          Alcotest.test_case "equation classification" `Quick
            test_cert_classification;
          Alcotest.test_case "catches corruption" `Quick
            test_cert_catches_corruption;
        ] );
      ( "engine",
        [
          Alcotest.test_case "gate blocks errors" `Quick test_gate_blocks_errors;
          Alcotest.test_case "flow gate integration" `Quick
            test_flow_gate_integration;
          Alcotest.test_case "registry covers codes" `Quick
            test_registry_covers_codes;
          Alcotest.test_case "diag JSON round-trip" `Quick
            test_diag_json_roundtrip;
          Alcotest.test_case "report file shape" `Quick test_report_file_shape;
          Alcotest.test_case "registry benchmarks clean" `Quick
            test_registry_benchmarks_clean;
        ] );
    ]
