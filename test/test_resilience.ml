(* Unit tests of lib/resilience (Deadline / Fault / Cascade) plus the
   end-to-end fault-injection matrix: every registered fault point, armed
   against every registry benchmark, must still yield a Verify-clean
   result with a non-empty degradation trail. *)

let delays = Fpga.Delays.default

(* ------------------------------------------------------------------ *)
(* Deadline                                                            *)
(* ------------------------------------------------------------------ *)

let test_deadline_none () =
  let d = Resilience.Deadline.none in
  Alcotest.(check bool) "never expires" false (Resilience.Deadline.expired d);
  Alcotest.(check bool) "is_none" true (Resilience.Deadline.is_none d);
  Alcotest.(check bool) "infinite remaining" true
    (Resilience.Deadline.remaining d = infinity)

let test_deadline_budget () =
  let d = Resilience.Deadline.of_budget 0.0 in
  Alcotest.(check bool) "zero budget expires" true
    (Resilience.Deadline.expired d);
  let d = Resilience.Deadline.of_budget 1000.0 in
  Alcotest.(check bool) "large budget alive" false
    (Resilience.Deadline.expired d);
  Alcotest.(check bool) "remaining bounded by budget" true
    (Resilience.Deadline.remaining d <= 1000.0)

let test_deadline_clip () =
  let d = Resilience.Deadline.clip Resilience.Deadline.none ~budget:0.0 in
  Alcotest.(check bool) "clip none by zero expires" true
    (Resilience.Deadline.expired d);
  let far = Resilience.Deadline.of_budget 1000.0 in
  let near = Resilience.Deadline.clip far ~budget:0.0 in
  Alcotest.(check bool) "clip far by zero expires" true
    (Resilience.Deadline.expired near);
  (* clipping by a larger budget keeps the tighter original *)
  let still = Resilience.Deadline.clip (Resilience.Deadline.of_budget 1.0) ~budget:1000.0 in
  Alcotest.(check bool) "clip keeps tighter deadline" true
    (Resilience.Deadline.remaining still <= 1.0)

let test_deadline_check_raises () =
  let d = Resilience.Deadline.of_budget 0.0 in
  match Resilience.Deadline.check d ~phase:"unit" with
  | () -> Alcotest.fail "expected Expired"
  | exception Resilience.Deadline.Expired p ->
      Alcotest.(check string) "phase name" "unit" p

let test_deadline_split () =
  (* With no deadline every phase gets none. *)
  let phases =
    Resilience.Deadline.split Resilience.Deadline.none
      [ ("a", 1.0); ("b", 1.0) ]
  in
  List.iter
    (fun (_, d) ->
      Alcotest.(check bool) "split of none is none" true
        (Resilience.Deadline.is_none d))
    phases;
  (* Cumulative checkpoints: a at ~1/4 of the budget, b at the end. *)
  let d = Resilience.Deadline.of_budget 100.0 in
  let phases = Resilience.Deadline.split d [ ("a", 1.0); ("b", 3.0) ] in
  let rem name = Resilience.Deadline.remaining (List.assoc name phases) in
  Alcotest.(check bool) "a ends around 25%" true
    (rem "a" > 20.0 && rem "a" <= 25.0);
  Alcotest.(check bool) "b ends at the deadline" true
    (rem "b" > 95.0 && rem "b" <= 100.0);
  Alcotest.(check bool) "checkpoints ordered" true (rem "a" < rem "b")

(* ------------------------------------------------------------------ *)
(* Fault                                                               *)
(* ------------------------------------------------------------------ *)

let test_fault_arm_always () =
  Resilience.Fault.clear ();
  (match Resilience.Fault.arm "milp.timeout" with
  | Ok () -> ()
  | Error e -> Alcotest.failf "arm failed: %s" e);
  Alcotest.(check (list string)) "armed" [ "milp.timeout" ]
    (Resilience.Fault.armed ());
  Alcotest.(check bool) "fires" true (Resilience.Fault.fires "milp.timeout");
  Alcotest.(check bool) "fires again" true
    (Resilience.Fault.fires "milp.timeout");
  Alcotest.(check bool) "other point silent" false
    (Resilience.Fault.fires "cuts.raise");
  Resilience.Fault.clear ();
  Alcotest.(check bool) "cleared" false
    (Resilience.Fault.fires "milp.timeout")

let test_fault_unknown_point () =
  Resilience.Fault.clear ();
  (match Resilience.Fault.arm "milp.timeout,bogus.point" with
  | Ok () -> Alcotest.fail "expected rejection"
  | Error e ->
      Alcotest.(check bool) "names the point" true
        (String.length e > 0));
  (* nothing armed on error — not even the valid clause *)
  Alcotest.(check (list string)) "nothing armed" []
    (Resilience.Fault.armed ());
  Resilience.Fault.clear ()

let test_fault_nth () =
  Resilience.Fault.clear ();
  (match Resilience.Fault.arm "cuts.raise@2" with
  | Ok () -> ()
  | Error e -> Alcotest.failf "arm failed: %s" e);
  Alcotest.(check (list bool)) "fires on 2nd hit only"
    [ false; true; false; false ]
    (List.init 4 (fun _ -> Resilience.Fault.fires "cuts.raise"));
  Resilience.Fault.clear ()

let test_fault_prob_deterministic () =
  let sample () =
    Resilience.Fault.clear ();
    (match Resilience.Fault.arm "milp.raise%50:42" with
    | Ok () -> ()
    | Error e -> Alcotest.failf "arm failed: %s" e);
    List.init 32 (fun _ -> Resilience.Fault.fires "milp.raise")
  in
  let a = sample () and b = sample () in
  Alcotest.(check (list bool)) "same seed, same firing pattern" a b;
  Alcotest.(check bool) "50% over 32 hits is mixed" true
    (List.mem true a && List.mem false a);
  let c =
    Resilience.Fault.clear ();
    (match Resilience.Fault.arm "milp.raise%50:43" with
    | Ok () -> ()
    | Error e -> Alcotest.failf "arm failed: %s" e);
    List.init 32 (fun _ -> Resilience.Fault.fires "milp.raise")
  in
  Alcotest.(check bool) "different seed, different pattern" true (a <> c);
  Resilience.Fault.clear ()

let test_fault_points_registered () =
  List.iter
    (fun (name, _) ->
      Alcotest.(check bool) (name ^ " registered") true
        (Resilience.Fault.mem name))
    Resilience.Fault.points;
  Alcotest.(check int) "ten points" 10 (List.length Resilience.Fault.points)

(* ------------------------------------------------------------------ *)
(* Cascade                                                             *)
(* ------------------------------------------------------------------ *)

let step label run : int Resilience.Cascade.step =
  { Resilience.Cascade.slabel = label; budget = None; retries = 0;
    retry_on = []; run }

let test_cascade_first_ok () =
  match
    Resilience.Cascade.run ~deadline:Resilience.Deadline.none
      [ step "a" (fun _ -> Ok 1); step "b" (fun _ -> Alcotest.fail "ran b") ]
  with
  | Ok o ->
      Alcotest.(check int) "value" 1 o.Resilience.Cascade.value;
      Alcotest.(check bool) "empty trail" true (o.Resilience.Cascade.trail = []);
      Alcotest.(check bool) "not degraded" false (Resilience.Cascade.degraded o)
  | Error _ -> Alcotest.fail "cascade failed"

let test_cascade_containment () =
  match
    Resilience.Cascade.run ~deadline:Resilience.Deadline.none
      [
        step "boom" (fun _ -> failwith "kaboom");
        step "fallback" (fun _ -> Ok 7);
      ]
  with
  | Ok o ->
      Alcotest.(check int) "fallback value" 7 o.Resilience.Cascade.value;
      (match o.Resilience.Cascade.trail with
      | [ a ] ->
          Alcotest.(check string) "label" "boom" a.Resilience.Cascade.label;
          Alcotest.(check string) "reason" "exception" a.Resilience.Cascade.reason
      | t -> Alcotest.failf "expected 1 trail entry, got %d" (List.length t));
      Alcotest.(check bool) "degraded" true (Resilience.Cascade.degraded o)
  | Error _ -> Alcotest.fail "cascade failed"

let test_cascade_exhaustion () =
  match
    Resilience.Cascade.run ~deadline:Resilience.Deadline.none
      [
        step "a" (fun _ -> Error ("unknown", "no incumbent"));
        step "b" (fun _ -> failwith "down too");
      ]
  with
  | Ok _ -> Alcotest.fail "expected exhaustion"
  | Error trail ->
      Alcotest.(check int) "both attempts recorded" 2 (List.length trail);
      Alcotest.(check (list string)) "reasons in order"
        [ "unknown"; "exception" ]
        (List.map (fun a -> a.Resilience.Cascade.reason) trail)

let test_cascade_expired_runs_last () =
  (* An already-expired cascade deadline skips intermediate steps but the
     terminal fallback still runs (with the expired sub-deadline). *)
  let ran_mid = ref false in
  match
    Resilience.Cascade.run ~deadline:(Resilience.Deadline.of_budget 0.0)
      [
        step "mid" (fun _ -> ran_mid := true; Ok 1);
        step "last" (fun dl ->
            Alcotest.(check bool) "sub-deadline expired" true
              (Resilience.Deadline.expired dl);
            Ok 2);
      ]
  with
  | Ok o ->
      Alcotest.(check bool) "mid skipped" false !ran_mid;
      Alcotest.(check int) "last ran" 2 o.Resilience.Cascade.value;
      (match o.Resilience.Cascade.trail with
      | [ a ] ->
          Alcotest.(check string) "skip reason" "timeout"
            a.Resilience.Cascade.reason
      | t -> Alcotest.failf "expected 1 trail entry, got %d" (List.length t))
  | Error _ -> Alcotest.fail "cascade failed"

let test_cascade_backoff () =
  Alcotest.(check (float 1e-9)) "k=0" 1.0 (Resilience.Cascade.backoff 0);
  Alcotest.(check (float 1e-9)) "k=1" 0.5 (Resilience.Cascade.backoff 1);
  Alcotest.(check (float 1e-9)) "k=2" 0.25 (Resilience.Cascade.backoff 2);
  Alcotest.(check (float 1e-9)) "custom" 4.0
    (Resilience.Cascade.backoff ~base:16.0 ~factor:0.5 2)

let test_attempt_json_roundtrip () =
  let a =
    {
      Resilience.Cascade.label = "milp-map.full";
      reason = "unknown";
      detail = "MILP failed: unknown after 1.0s";
      elapsed = 1.25;
      retry = 1;
    }
  in
  match
    Resilience.Cascade.attempt_of_json (Resilience.Cascade.attempt_to_json a)
  with
  | Ok b -> Alcotest.(check bool) "round-trips" true (a = b)
  | Error e -> Alcotest.failf "of_json failed: %s" e

(* ------------------------------------------------------------------ *)
(* end-to-end fault matrix                                             *)
(* ------------------------------------------------------------------ *)

(* Some supervision points cannot fire in this configuration — steals
   never happen at 1 domain, no checkpoint sink is configured, and a
   supervised recovery is by design invisible — so only the faults that
   are guaranteed to bite may demand a non-empty trail. Every armed run
   must still come back with an independently verified result. *)
let trail_guaranteed = function
  | "milp.steal_drop" | "milp.checkpoint_torn" | "milp.stall" -> false
  | _ -> true

let run_with_fault ~fault (e : Benchmarks.Registry.entry) =
  Resilience.Fault.clear ();
  (match Resilience.Fault.arm fault with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "arm %s: %s" fault msg);
  let g = e.build () in
  let device = Fpga.Device.make ~t_clk:e.t_clk () in
  let setup =
    {
      (Mams.Flow.default_setup ~device) with
      resources = e.resources;
      time_limit = 1.0;
    }
  in
  let r = Mams.Flow.run setup Mams.Flow.Milp_map g in
  Resilience.Fault.clear ();
  match r with
  | Error msg -> Alcotest.failf "%s + %s: no result: %s" e.name fault msg
  | Ok r ->
      if trail_guaranteed fault then begin
        Alcotest.(check bool)
          (Printf.sprintf "%s + %s: non-empty trail" e.name fault)
          true
          (r.Mams.Flow.trail <> []);
        Alcotest.(check bool)
          (Printf.sprintf "%s + %s: degradation serialized" e.name fault)
          true
          (r.Mams.Flow.metrics.Obs.Metrics.degradation <> [])
      end;
      (* The flow verified already; re-check independently. *)
      let ctx =
        { Sched.Verify.device; delays = setup.Mams.Flow.delays;
          resources = setup.Mams.Flow.resources }
      in
      (match
         Sched.Verify.check ctx g r.Mams.Flow.cover r.Mams.Flow.schedule
       with
      | Ok () -> ()
      | Error errs ->
          Alcotest.failf "%s + %s: verify failed: %s" e.name fault
            (String.concat "; " errs))

let test_fault_matrix () =
  List.iter
    (fun (fault, _) ->
      List.iter (run_with_fault ~fault) Benchmarks.Registry.all)
    Resilience.Fault.points

(* The expected cascade shape for the hardest input: milp.timeout makes
   both MILP attempts report Unknown, so map-first must win. *)
let test_milp_timeout_trail_shape () =
  Resilience.Fault.clear ();
  (match Resilience.Fault.arm "milp.timeout" with
  | Ok () -> ()
  | Error e -> Alcotest.failf "arm: %s" e);
  let e = Benchmarks.Registry.find "GFMUL" in
  let g = e.build () in
  let device = Fpga.Device.make ~t_clk:e.t_clk () in
  let setup =
    { (Mams.Flow.default_setup ~device) with
      resources = e.resources; time_limit = 1.0 }
  in
  let r = Mams.Flow.run setup Mams.Flow.Milp_map g in
  Resilience.Fault.clear ();
  match r with
  | Error msg -> Alcotest.failf "no result: %s" msg
  | Ok r ->
      let labels =
        List.map (fun a -> a.Resilience.Cascade.label) r.Mams.Flow.trail
      in
      Alcotest.(check (list string)) "both MILP attempts failed unknown"
        [ "milp-map.full"; "milp-map.coarse" ] labels;
      List.iter
        (fun a ->
          Alcotest.(check string) "reason" "unknown"
            a.Resilience.Cascade.reason)
        r.Mams.Flow.trail;
      Alcotest.(check string) "requested method kept" "MILP-map"
        r.Mams.Flow.metrics.Obs.Metrics.method_

let test_no_fault_clean_and_stable () =
  Resilience.Fault.clear ();
  let device = Fpga.Device.figure1 in
  let delays =
    Fpga.Delays.make ~logic:2.0 ~arith_base:1.6 ~arith_per_bit:0.2 ()
  in
  let setup =
    { (Mams.Flow.default_setup ~device) with delays; time_limit = 30.0 }
  in
  let go () =
    let g = Benchmarks.Rs.kernel ~width:2 () in
    match Mams.Flow.run setup Mams.Flow.Milp_map g with
    | Ok r -> r
    | Error e -> Alcotest.failf "flow failed: %s" e
  in
  let a = go () and b = go () in
  Alcotest.(check bool) "empty trail" true (a.Mams.Flow.trail = []);
  Alcotest.(check bool) "empty degradation array" true
    (a.Mams.Flow.metrics.Obs.Metrics.degradation = []);
  (* QoR parity with the pre-resilience flow (fig1 optimum) and across
     repeated runs. *)
  Alcotest.(check int) "single stage" 0 (Sched.Schedule.latency a.schedule);
  Alcotest.(check int) "recurrence register only" 2 a.Mams.Flow.qor.Sched.Qor.ffs;
  Alcotest.(check bool) "deterministic QoR" true
    (a.Mams.Flow.qor = b.Mams.Flow.qor)

(* Satellite: map_exact reports why it failed instead of silently falling
   back. *)
let test_map_exact_reports_timeout () =
  Resilience.Fault.clear ();
  (match Resilience.Fault.arm "milp.timeout" with
  | Ok () -> ()
  | Error e -> Alcotest.failf "arm: %s" e);
  let b = Ir.Builder.create () in
  let xs =
    List.init 8 (fun i -> Ir.Builder.input b ~width:4 (Printf.sprintf "x%d" i))
  in
  let out = Ir.Builder.reduce b (fun b x y -> Ir.Builder.xor_ b x y) xs in
  Ir.Builder.output b out;
  let g = Ir.Builder.finish b in
  let device = Fpga.Device.make ~k:4 ~t_clk:20.0 () in
  let sched =
    match
      Sched.Heuristic.schedule ~device ~delays
        ~resources:Fpga.Resource.unlimited ~ii:1 g
    with
    | Ok s -> s
    | Error e -> Alcotest.failf "schedule failed: %a" Sched.Heuristic.pp_error e
  in
  let cuts = Cuts.enumerate ~k:4 g in
  let r = Techmap.map_exact ~time_limit:5.0 ~device ~delays ~cuts g sched in
  Resilience.Fault.clear ();
  match r with
  | Ok _ -> Alcotest.fail "expected a timeout failure"
  | Error f -> (
      match f.Techmap.reason with
      | `Timeout -> ()
      | (`Infeasible | `Unbounded) as r ->
          Alcotest.failf "expected timeout, got %s"
            (Techmap.exact_reason_to_string r))

let () =
  Alcotest.run "resilience"
    [
      ( "deadline",
        [
          Alcotest.test_case "none" `Quick test_deadline_none;
          Alcotest.test_case "of_budget" `Quick test_deadline_budget;
          Alcotest.test_case "clip" `Quick test_deadline_clip;
          Alcotest.test_case "check raises" `Quick test_deadline_check_raises;
          Alcotest.test_case "split" `Quick test_deadline_split;
        ] );
      ( "fault",
        [
          Alcotest.test_case "arm always" `Quick test_fault_arm_always;
          Alcotest.test_case "unknown rejected" `Quick test_fault_unknown_point;
          Alcotest.test_case "nth hit" `Quick test_fault_nth;
          Alcotest.test_case "prob deterministic" `Quick
            test_fault_prob_deterministic;
          Alcotest.test_case "points registered" `Quick
            test_fault_points_registered;
        ] );
      ( "cascade",
        [
          Alcotest.test_case "first ok" `Quick test_cascade_first_ok;
          Alcotest.test_case "containment" `Quick test_cascade_containment;
          Alcotest.test_case "exhaustion" `Quick test_cascade_exhaustion;
          Alcotest.test_case "expired runs last" `Quick
            test_cascade_expired_runs_last;
          Alcotest.test_case "backoff" `Quick test_cascade_backoff;
          Alcotest.test_case "attempt json" `Quick test_attempt_json_roundtrip;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "fault matrix x registry" `Slow test_fault_matrix;
          Alcotest.test_case "milp.timeout trail shape" `Quick
            test_milp_timeout_trail_shape;
          Alcotest.test_case "no fault: clean and stable" `Quick
            test_no_fault_clean_and_stable;
          Alcotest.test_case "map_exact timeout reason" `Quick
            test_map_exact_reports_timeout;
        ] );
    ]
