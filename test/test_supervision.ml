(* Solve supervision (DESIGN.md §3i): checkpoint/resume, worker-crash
   recovery, and the stall watchdog — plus the resilience-v2 satellites
   (wall-clock budgets at every domain count, bounded cascade retries).

   The load-bearing property throughout: recovery, watchdog requeues and
   resume only permute exploration order, so for solves that terminate by
   exhausting the tree the status, objective and incumbent are identical
   to an uninterrupted run's. *)

let feq ?(eps = 1e-6) a b = Float.abs (a -. b) <= eps
let status_str s = Fmt.str "%a" Lp.Milp.pp_status s

let with_fault spec f =
  Resilience.Fault.clear ();
  (match Resilience.Fault.arm spec with
  | Ok () -> ()
  | Error e -> Alcotest.failf "arm %s: %s" spec e);
  Fun.protect ~finally:Resilience.Fault.clear f

let tmp name = Filename.concat (Filename.get_temp_dir_name ()) name

(* Identical result triple — the "invisible to results" contract. *)
let check_same_result name (base : Lp.Milp.result) (r : Lp.Milp.result) =
  Alcotest.(check string)
    (name ^ ": status") (status_str base.status) (status_str r.status);
  (match base.status with
  | Lp.Milp.Optimal | Lp.Milp.Feasible ->
      if not (feq base.objective r.objective) then
        Alcotest.failf "%s: objective %.9g vs %.9g" name base.objective
          r.objective
  | _ -> ());
  if base.status = Lp.Milp.Optimal then
    Array.iteri
      (fun j v ->
        if not (feq v r.x.(j)) then
          Alcotest.failf "%s: x.(%d) = %.9g vs %.9g" name j v r.x.(j))
      base.x

(* --- models ---------------------------------------------------------- *)

(* The byte-identical-incumbent checks need a UNIQUE optimum: the solver
   fathoms at [bound >= best - 1e-9], so a subtree holding a tied
   alternative optimum can be pruned or explored depending on order, and
   kills/requeues/resume legitimately permute that order. The 2^i * 1e-6
   value perturbation gives every subset a distinct objective (subset
   sums of distinct powers of two are unique), well above the solver's
   1e-9 acceptance tolerance. *)
let knapsack ?(n = 12) () =
  let values =
    Array.init n (fun i ->
        float_of_int (5 + ((i * 7) mod 11)) +. Float.ldexp 1e-6 i)
  in
  let weights =
    Array.init n (fun i -> float_of_int (2 + ((i * 5) mod 7)))
  in
  let cap = Array.fold_left ( +. ) 0.0 weights /. 2.0 in
  let m = Lp.Model.create () in
  let xs =
    Array.mapi (fun i _ -> Lp.Model.bool_var m (Printf.sprintf "x%d" i)) values
  in
  Lp.Model.add_le m
    (Array.to_list (Array.mapi (fun i x -> (weights.(i), x)) xs))
    cap;
  Lp.Model.set_objective m
    (Array.to_list (Array.mapi (fun i x -> (-.values.(i), x)) xs));
  m

(* LP-feasible but integer-infeasible parity instance: sum 2 x_i = odd.
   Every node's LP stays feasible until deep in the tree, so the search
   is enormous — the instance exists to keep all domains busy for the
   whole budget of the wall-clock test. *)
let parity_wall ?(n = 34) () =
  let m = Lp.Model.create () in
  let xs =
    Array.init n (fun i -> Lp.Model.bool_var m (Printf.sprintf "p%d" i))
  in
  Lp.Model.add_eq m
    (Array.to_list (Array.map (fun x -> (2.0, x)) xs))
    (float_of_int n +. 1.0);
  Lp.Model.set_objective m (Array.to_list (Array.map (fun x -> (1.0, x)) xs));
  m

(* --- satellite: wall-clock budget at every domain count --------------- *)

(* Regression for the resilience-v2 clock fix: the budget used to run on
   [Sys.time] CPU seconds, which accumulate across domains — at
   --domains 4 a 1 s budget expired after ~0.25 s of wall time. The
   budget must now mean wall seconds at any domain count (±10%). *)
let check_wall_budget domains =
  let budget = 1.0 in
  let r =
    Lp.Milp.solve ~time_limit:budget ~node_limit:max_int ~domains
      (parity_wall ())
  in
  (* the instance is unsolvable in 1 s: the stop must be the budget *)
  (match r.Lp.Milp.status with
  | Lp.Milp.Unknown | Lp.Milp.Feasible -> ()
  | s ->
      Alcotest.failf "parity wall solved (%s) — budget never engaged"
        (status_str s));
  let e = r.Lp.Milp.stats.Lp.Milp.elapsed in
  if e < 0.9 *. budget || e > 1.1 *. budget then
    Alcotest.failf "budget %.1fs at %d domains ran %.3fs (outside ±10%%)"
      budget domains e

let test_wall_budget_1_domain () = check_wall_budget 1
let test_wall_budget_4_domains () = check_wall_budget 4

let test_cpu_vs_wall_metric () =
  let r =
    Lp.Milp.solve ~time_limit:1.0 ~node_limit:max_int ~domains:4
      (parity_wall ())
  in
  let s = r.Lp.Milp.stats in
  Alcotest.(check bool) "cpu_s recorded" true (s.Lp.Milp.cpu_s > 0.0);
  (* 4 busy domains burn CPU faster than the wall clock ticks — the two
     metrics must be decoupled (this is exactly the old bug's
     signature). Only observable with real parallelism: on a single-core
     host the domains time-slice and CPU tracks the wall. *)
  if Domain.recommended_domain_count () >= 2 then
    Alcotest.(check bool)
      (Printf.sprintf "cpu %.2fs exceeds wall %.2fs under 4 domains"
         s.Lp.Milp.cpu_s s.Lp.Milp.elapsed)
      true
      (s.Lp.Milp.cpu_s > s.Lp.Milp.elapsed)

(* --- checkpoint format ------------------------------------------------ *)

(* Root cover cuts close the knapsack at (or one dive past) the root,
   so every test whose premise is a multi-node tree — node-limit
   interrupts, faults armed at node 2 — pins [~cuts:false]. The tests
   exercise supervision mechanics, which are downstream of (and
   orthogonal to) root cut preparation. *)

(* Run a solve that stops mid-tree and leaves a checkpoint file behind. *)
let checkpointed_solve ?(certificates = false) ?(node_limit = 8) ~path () =
  let sink =
    {
      Lp.Milp.ck_path = path;
      ck_every_s = 3600.0;  (* node trigger + forced final write only *)
      ck_every_nodes = Some 2;
      ck_meta = Obs.Json.Obj [ ("origin", Obs.Json.String "test") ];
    }
  in
  Lp.Milp.solve ~time_limit:60.0 ~node_limit ~certificates ~cuts:false
    ~checkpoint:sink (knapsack ())

let read_ck path =
  match Lp.Checkpoint.read ~path with
  | Ok ck -> ck
  | Error e -> Alcotest.failf "read %s: %s" path e

let test_checkpoint_roundtrip () =
  let p1 = tmp "pipesyn_ck_rt.json" in
  let p2 = tmp "pipesyn_ck_rt2.json" in
  let r = checkpointed_solve ~certificates:true ~path:p1 () in
  Alcotest.(check bool) "snapshots were written" true
    (r.Lp.Milp.stats.Lp.Milp.checkpoints > 0);
  let ck = read_ck p1 in
  (* in-memory JSON round-trip *)
  (match Lp.Checkpoint.of_json (Lp.Checkpoint.to_json ck) with
  | Error e -> Alcotest.failf "of_json (to_json ck): %s" e
  | Ok ck' ->
      Alcotest.(check bool) "to_json/of_json identity" true
        (compare ck ck' = 0));
  (* on-disk round-trip: floats travel as hex strings, so this is
     bit-exact including infinities and NaN *)
  Lp.Checkpoint.write ~path:p2 ck;
  let ck2 = read_ck p2 in
  Alcotest.(check bool) "write/read identity" true (compare ck ck2 = 0);
  (* spot-check the payload is a real mid-solve frontier *)
  Alcotest.(check bool) "open frontier" true (ck.Lp.Checkpoint.frontier <> []);
  Alcotest.(check bool) "nodes done recorded" true
    (ck.Lp.Checkpoint.nodes_done > 0);
  (* the cut solve only has an incumbent if a dive completed before the
     node limit; when it does, the snapshot must carry it *)
  if r.Lp.Milp.status = Lp.Milp.Feasible then
    Alcotest.(check bool) "incumbent captured" true
      (ck.Lp.Checkpoint.incumbent <> None);
  Alcotest.(check bool) "pseudocost tables present" true
    (Array.length ck.Lp.Checkpoint.pc > 0);
  Alcotest.(check bool) "certificate prefix present" true
    (ck.Lp.Checkpoint.certs_on && ck.Lp.Checkpoint.cert_nodes <> []);
  Sys.remove p1;
  Sys.remove p2

let test_checkpoint_rejects_torn () =
  let p = tmp "pipesyn_ck_torn.json" in
  ignore (checkpointed_solve ~path:p ());
  let ck = read_ck p in
  (* the registered fault tears the write mid-file, in place *)
  with_fault "milp.checkpoint_torn" (fun () -> Lp.Checkpoint.write ~path:p ck);
  (match Lp.Checkpoint.read ~path:p with
  | Ok _ -> Alcotest.fail "torn checkpoint accepted"
  | Error _ -> ());
  (* manual corruption of a valid file must also be rejected *)
  Lp.Checkpoint.write ~path:p ck;
  let ic = open_in_bin p in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let oc = open_out_bin p in
  output_string oc (String.sub contents 0 (String.length contents / 2));
  close_out oc;
  (match Lp.Checkpoint.read ~path:p with
  | Ok _ -> Alcotest.fail "truncated checkpoint accepted"
  | Error _ -> ());
  Sys.remove p

let test_checkpoint_fingerprint_mismatch () =
  let p = tmp "pipesyn_ck_fp.json" in
  ignore (checkpointed_solve ~path:p ());
  let ck = read_ck p in
  Alcotest.check_raises "resume against a different model"
    (Invalid_argument
       "Milp.solve: checkpoint fingerprint does not match the model")
    (fun () -> ignore (Lp.Milp.solve ~resume:ck (parity_wall ~n:6 ())));
  Sys.remove p

(* --- checkpoint/resume equivalence ------------------------------------ *)

let test_resume_equivalence () =
  let clean =
    Lp.Milp.solve ~time_limit:60.0 ~certificates:true ~cuts:false (knapsack ())
  in
  Alcotest.(check string) "clean solve is exhaustive" "optimal"
    (status_str clean.Lp.Milp.status);
  let p = tmp "pipesyn_ck_resume.json" in
  List.iter
    (fun domains ->
      (* interrupt mid-solve, then rehydrate and run to completion *)
      let cut = checkpointed_solve ~certificates:true ~node_limit:6 ~path:p () in
      Alcotest.(check bool) "interrupted before optimality" true
        (cut.Lp.Milp.status <> Lp.Milp.Optimal);
      let ck = read_ck p in
      let resumed =
        Lp.Milp.solve ~time_limit:60.0 ~certificates:true ~cuts:false ~domains
          ~resume:ck (knapsack ())
      in
      check_same_result
        (Printf.sprintf "resume @ %d domains" domains)
        clean resumed;
      Alcotest.(check bool) "cumulative node count" true
        (resumed.Lp.Milp.stats.Lp.Milp.nodes > ck.Lp.Checkpoint.nodes_done);
      (* the resumed certificate (checkpoint prefix + new nodes) must
         audit clean in exact rational arithmetic *)
      let diags = Analyze.Engine.check_audit (knapsack ()) resumed in
      (match Analyze.Diag.errors diags with
      | [] -> ()
      | errs ->
          Alcotest.failf "resume @ %d domains: %d audit errors: %s" domains
            (List.length errs)
            (String.concat "; "
               (List.map (fun d -> Fmt.str "%a" Analyze.Diag.pp d) errs))))
    [ 1; 2; 4 ];
  Sys.remove p

let test_resume_completed_checkpoint () =
  (* A checkpoint of an exhausted solve has an empty frontier; resuming
     it returns the finished result without exploring anything. *)
  let p = tmp "pipesyn_ck_done.json" in
  let full = checkpointed_solve ~node_limit:200_000 ~path:p () in
  Alcotest.(check string) "solve ran to optimality" "optimal"
    (status_str full.Lp.Milp.status);
  let ck = read_ck p in
  Alcotest.(check bool) "empty frontier" true (ck.Lp.Checkpoint.frontier = []);
  let resumed = Lp.Milp.solve ~time_limit:60.0 ~resume:ck (knapsack ()) in
  check_same_result "resume of a finished solve" full resumed;
  Alcotest.(check int) "no new nodes" full.Lp.Milp.stats.Lp.Milp.nodes
    resumed.Lp.Milp.stats.Lp.Milp.nodes;
  Sys.remove p

(* --- worker-crash recovery -------------------------------------------- *)

(* A worker killed at node N: the supervisor replays its leased subtree;
   the final result is identical to the fault-free solve at every domain
   count (byte-identical incumbent, not merely equal objective). *)
let check_kill_recovery ~fault domains =
  let clean =
    Lp.Milp.solve ~time_limit:60.0 ~cuts:false ~domains (knapsack ())
  in
  let faulted =
    with_fault fault (fun () ->
        Lp.Milp.solve ~time_limit:60.0 ~cuts:false ~domains (knapsack ()))
  in
  check_same_result
    (Printf.sprintf "%s @ %d domains" fault domains)
    clean faulted

let test_worker_kill_all_domains () =
  List.iter (fun d -> check_kill_recovery ~fault:"milp.worker_kill@2" d) [ 1; 2; 4 ]

let test_steal_drop_parallel () =
  List.iter (fun d -> check_kill_recovery ~fault:"milp.steal_drop@1" d) [ 2; 4 ]

let test_recovery_counted () =
  let r =
    with_fault "milp.worker_kill@2" (fun () ->
        Lp.Milp.solve ~time_limit:60.0 ~cuts:false ~domains:2 (knapsack ()))
  in
  Alcotest.(check bool) "recovery recorded in stats" true
    (r.Lp.Milp.stats.Lp.Milp.recoveries >= 1)

let test_death_budget_exhausted () =
  (* Always-on kills exceed the per-slot death budget (3); the failure
     must then propagate as an exception rather than loop forever. *)
  match
    with_fault "milp.worker_kill" (fun () ->
        Lp.Milp.solve ~time_limit:60.0 ~cuts:false ~domains:1 (knapsack ()))
  with
  | _ -> Alcotest.fail "expected Worker_killed to propagate"
  | exception Lp.Milp.Worker_killed -> ()

(* --- stall watchdog --------------------------------------------------- *)

let check_stall_recovery domains =
  let clean =
    Lp.Milp.solve ~time_limit:60.0 ~cuts:false ~domains (knapsack ())
  in
  let r =
    with_fault "milp.stall@2" (fun () ->
        Lp.Milp.solve ~time_limit:60.0 ~cuts:false ~domains
          ~stall_window:0.05 (knapsack ()))
  in
  check_same_result
    (Printf.sprintf "stall recovery @ %d domains" domains)
    clean r;
  Alcotest.(check bool) "watchdog escalations recorded" true
    (r.Lp.Milp.stats.Lp.Milp.stalls >= 1);
  Alcotest.(check bool) "cancelled node requeued and replayed" true
    (r.Lp.Milp.stats.Lp.Milp.recoveries >= 1)

let test_stall_watchdog_sequential () = check_stall_recovery 1
let test_stall_watchdog_parallel () = check_stall_recovery 2

let test_stall_without_watchdog_hits_budget () =
  (* With the watchdog off, a wedged worker is only unwedged by the
     global budget — the stop must still be clean and on time. *)
  let r =
    with_fault "milp.stall@1" (fun () ->
        Lp.Milp.solve ~time_limit:0.5 ~cuts:false ~domains:1 (knapsack ()))
  in
  (match r.Lp.Milp.status with
  | Lp.Milp.Feasible | Lp.Milp.Unknown -> ()
  | s -> Alcotest.failf "expected a budget stop, got %s" (status_str s));
  let e = r.Lp.Milp.stats.Lp.Milp.elapsed in
  Alcotest.(check bool)
    (Printf.sprintf "budget respected while wedged (%.2fs)" e)
    true (e <= 0.7)

(* --- cascade bounded retry -------------------------------------------- *)

let test_cascade_retry_then_success () =
  let calls = ref 0 in
  let step =
    {
      Resilience.Cascade.slabel = "flaky";
      budget = None;
      retries = 2;
      retry_on = [ "exception" ];
      run =
        (fun _ ->
          incr calls;
          if !calls < 3 then failwith "transient" else Ok !calls);
    }
  in
  match Resilience.Cascade.run ~deadline:Resilience.Deadline.none [ step ] with
  | Error _ -> Alcotest.fail "cascade failed"
  | Ok o ->
      Alcotest.(check int) "third try succeeded" 3 o.Resilience.Cascade.value;
      Alcotest.(check int) "both failures in the trail" 2
        (List.length o.Resilience.Cascade.trail);
      Alcotest.(check (list int)) "retry indices recorded" [ 0; 1 ]
        (List.map
           (fun a -> a.Resilience.Cascade.retry)
           o.Resilience.Cascade.trail)

let test_cascade_retry_class_gated () =
  (* A failure reason outside [retry_on] must degrade immediately. *)
  let calls = ref 0 in
  let steps =
    [
      {
        Resilience.Cascade.slabel = "wrong-class";
        budget = None;
        retries = 5;
        retry_on = [ "exception" ];
        run =
          (fun _ ->
            incr calls;
            Error ("unknown", "not retryable"));
      };
      {
        Resilience.Cascade.slabel = "fallback";
        budget = None;
        retries = 0;
        retry_on = [];
        run = (fun _ -> Ok 99);
      };
    ]
  in
  match Resilience.Cascade.run ~deadline:Resilience.Deadline.none steps with
  | Error _ -> Alcotest.fail "cascade failed"
  | Ok o ->
      Alcotest.(check int) "fell through to the fallback" 99
        o.Resilience.Cascade.value;
      Alcotest.(check int) "first rung ran exactly once" 1 !calls

let test_cascade_retry_bounded () =
  (* Retries are bounded by [retries]: a permanently failing rung runs
     1 + retries times, then the cascade degrades. *)
  let calls = ref 0 in
  let steps =
    [
      {
        Resilience.Cascade.slabel = "always-down";
        budget = None;
        retries = 2;
        retry_on = [ "exception" ];
        run =
          (fun _ ->
            incr calls;
            failwith "permanent");
      };
      {
        Resilience.Cascade.slabel = "fallback";
        budget = None;
        retries = 0;
        retry_on = [];
        run = (fun _ -> Ok 1);
      };
    ]
  in
  match Resilience.Cascade.run ~deadline:Resilience.Deadline.none steps with
  | Error _ -> Alcotest.fail "cascade failed"
  | Ok o ->
      Alcotest.(check int) "1 + retries tries" 3 !calls;
      Alcotest.(check int) "all tries in the trail" 3
        (List.length o.Resilience.Cascade.trail)

let () =
  Alcotest.run "supervision"
    [
      ( "wall-budget",
        [
          Alcotest.test_case "1 domain" `Slow test_wall_budget_1_domain;
          Alcotest.test_case "4 domains" `Slow test_wall_budget_4_domains;
          Alcotest.test_case "cpu vs wall metric" `Slow test_cpu_vs_wall_metric;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "round-trip identity" `Quick
            test_checkpoint_roundtrip;
          Alcotest.test_case "rejects torn files" `Quick
            test_checkpoint_rejects_torn;
          Alcotest.test_case "fingerprint mismatch" `Quick
            test_checkpoint_fingerprint_mismatch;
        ] );
      ( "resume",
        [
          Alcotest.test_case "equivalence + audit @ 1/2/4 domains" `Slow
            test_resume_equivalence;
          Alcotest.test_case "resume of a finished solve" `Quick
            test_resume_completed_checkpoint;
        ] );
      ( "crash-recovery",
        [
          Alcotest.test_case "worker_kill @ 1/2/4 domains" `Slow
            test_worker_kill_all_domains;
          Alcotest.test_case "steal_drop @ 2/4 domains" `Slow
            test_steal_drop_parallel;
          Alcotest.test_case "recoveries counted" `Quick test_recovery_counted;
          Alcotest.test_case "death budget bounds replay" `Quick
            test_death_budget_exhausted;
        ] );
      ( "stall-watchdog",
        [
          Alcotest.test_case "sequential" `Quick test_stall_watchdog_sequential;
          Alcotest.test_case "parallel" `Quick test_stall_watchdog_parallel;
          Alcotest.test_case "budget stop while wedged" `Quick
            test_stall_without_watchdog_hits_budget;
        ] );
      ( "cascade-retry",
        [
          Alcotest.test_case "retry then success" `Quick
            test_cascade_retry_then_success;
          Alcotest.test_case "failure class gated" `Quick
            test_cascade_retry_class_gated;
          Alcotest.test_case "bounded" `Quick test_cascade_retry_bounded;
        ] );
    ]
