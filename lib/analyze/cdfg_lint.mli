(** Static lints over word-level CDFGs.

    Two entry points: {!check_raw} accepts an {e unconstructed} node list —
    the form in which a malformed graph actually reaches us, since
    {!Ir.Cdfg.create} refuses to build an illegal graph — and {!check}
    lints a constructed (hence structurally valid) graph for the
    higher-level findings.

    Codes:
    - [CDFG001] (error): distance-0 combinational cycle; the witness is the
      cycle path, node by node.
    - [CDFG002] (error): a black-box operation sits on a dependence cycle
      with zero aggregate distance (combinational feedback through a
      resource that cannot be duplicated or retimed).
    - [CDFG003] (error): width-discipline violation (operand/result widths
      inconsistent with the opcode's rules).
    - [CDFG004] (warning): dead node — not backward-reachable from any
      primary output, even through loop-carried edges.
    - [CDFG005] (info): constant-foldable cone — a non-trivial operation
      whose transitive distance-0 operands are all constants; the frontend
      simplifier ({!Opt.fold_constants}) would remove it.
    - [CDFG006] (error): malformed structure — ids not dense, edge
      endpoints out of range, negative distance, empty graph, no primary
      outputs, or duplicate input names. *)

val pass_name : string

val check_raw :
  nodes:Ir.Cdfg.node list -> outputs:int list -> Diag.t list
(** Structural lints on a raw node list (ids are the [id] fields). *)

val check : Ir.Cdfg.t -> Diag.t list
(** {!check_raw} plus dead-node and constant-cone analysis. A graph built
    by {!Ir.Cdfg.create} can only produce [CDFG004]/[CDFG005] findings. *)
