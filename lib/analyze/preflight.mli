(** Pipelining pre-flight: the feasibility screen run {e before} MILP
    construction (and before the heuristic schedulers), mirroring the
    recurrence/resource MII reports commercial HLS tools print before
    attempting to pipeline a loop.

    Reuses {!Sched.Heuristic.res_mii} / {!Sched.Heuristic.rec_mii} for the
    bounds and adds witnesses: the binding recurrence cycle (extracted from
    the non-convergent longest-path relaxation) and the binding resource
    class.

    Codes:
    - [PRE001] (error): requested [II] is below RecMII; the witness is a
      dependence cycle that cannot close at that II.
    - [PRE002] (error): requested [II] is below ResMII; the witness names
      the binding black-box resource class with its demand and limit.
    - [PRE003] (warning, or error under [~strict_period:true]): the target
      clock period is below the slowest single-operation delay. This
      reproduction schedules such operations over multiple cycles, so by
      default the finding only warns; under the paper's single-cycle
      reading of Eq. 8 it is fatal, which [strict_period] selects.
    - [PRE004] (error): a black-box resource class is used but has a zero
      budget — no initiation interval is feasible. *)

type config = {
  device : Fpga.Device.t;
  delays : Fpga.Delays.t;
  resources : Fpga.Resource.budget;
  ii : int;  (** requested initiation interval *)
}

val pass_name : string

val check : ?strict_period:bool -> config -> Ir.Cdfg.t -> Diag.t list
(** All pre-flight findings; [strict_period] defaults to [false]. *)

val recurrence_witness :
  device:Fpga.Device.t -> delays:Fpga.Delays.t -> ii:int -> Ir.Cdfg.t ->
  int list option
(** A dependence cycle (node ids, dataflow order) whose chained delay
    cannot close at [ii]; [None] when the relaxation converges (the II is
    recurrence-feasible). *)
