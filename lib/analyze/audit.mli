(** Exact-rational re-verification of proof-carrying MILP solves
    (DESIGN.md §3h).

    Input: the frozen model ({!Lp.Model.raw}) and the certificate a
    [Milp.solve ~certificates:true] run emitted ({!Lp.Cert.t}). Every
    numeric claim is re-derived in exact dyadic-rational arithmetic
    ({!Qd}) — no float comparison anywhere in the checker — and judged
    against the solver's {e published} contract: feasibility within
    [1e-6], LP objectives within a relative [1e-6], the relative
    optimality gap in the certificate, incumbent acceptance within
    [1e-9], and {e zero} tolerance on incumbent integrality (the solver
    snaps accepted incumbents to exact integers).

    The soundness lever is Neumaier–Shcherbina: for {e any} float dual
    vector [u], [-û·b + Σ_j min over the box of (c + Aᵀû)_j·x_j] (with
    [û] the sense-clamped [u]) evaluated exactly is a valid lower bound
    on the node LP — float drift or corruption can only weaken a bound,
    never falsely certify one. Farkas rays are checked the same way with
    [c = 0] and a strictly positive verdict required.

    Findings come back as {!Diag.t} values under pass ["audit"]:

    - [CERT101] missing, malformed or truncated evidence (no
      certificate, broken parent chains, wrong-length vectors, missing
      children of an infeasible verdict, …)
    - [CERT102] the incumbent violates bounds, integrality (exact) or a
      constraint row
    - [CERT103] a node's dual vector fails to certify its claimed LP
      objective
    - [CERT104] Farkas evidence fails to prove node infeasibility
    - [CERT105] a fathomed or abandoned subtree is not excluded by its
      exact dual bound (replayed for [Optimal] verdicts; unprocessed
      children of branched nodes are covered by the parent's duals over
      the reconstructed child box)
    - [CERT106] malformed tree: branch arithmetic, parent/child edit
      agreement, or root-box bookkeeping inconsistent
    - [CERT107] status or incumbent bookkeeping inconsistent — stale or
      lost incumbents (the determinism/race oracle for the parallel
      solver), objective mismatch, optimal status with unsolved leaves
    - [CERT108] a root reduced-cost fix whose excluded region is not
      provably dominated under the pre-fixing root duals

    Integral leaves are covered by the CERT103 + CERT107 pair (their LP
    optimum {e is} the integer point, which the incumbent log must
    reflect), so they need no separate subtree bound. Per-code reporting
    is capped at {!max_reports} findings plus one summary line. *)

val pass_name : string
val max_reports : int

val check : Lp.Model.raw -> Lp.Cert.t -> Diag.t list
(** Re-verify [cert] against the model it claims to solve. Pure; cost is
    O(nnz) exact ring operations per recorded node. *)

val check_result : Lp.Model.t -> Lp.Milp.result -> Diag.t list
(** Convenience wrapper: audits [r.cert], or reports a single [CERT101]
    when the solve carried no certificate. *)
