(** The pass registry and orchestration layer of the analyzer.

    Individual passes live in their own modules ({!Cdfg_lint},
    {!Preflight}, {!Lp_lint}, {!Net_lint}, {!Cert}); this module names
    them, runs them in the right places, and owns the JSON report format
    shared by [pipesyn lint --json] and the CI lint gate.

    Severity policy (documented in DESIGN.md): {e errors} mean the flow
    would fail or produce an illegal result and abort it before any solver
    cost is paid; {e warnings} are recorded (logged, embedded in metrics)
    but never gate; {e infos} are optimization hints. *)

type pass = {
  name : string;
  artifact : string;  (** what the pass inspects: ["cdfg"], ["lp"], … *)
  codes : (string * string) list;
      (** diagnostic codes the pass can emit, each with a one-line
          description — the source of truth for [pipesyn diags] and the
          generated docs/DIAGNOSTICS.md *)
  description : string;
}

val passes : pass list
(** The registry, stable order; one entry per pass module. *)

val check_cdfg : Ir.Cdfg.t -> Diag.t list
val preflight : ?strict_period:bool -> Preflight.config -> Ir.Cdfg.t -> Diag.t list
val check_model : Lp.Model.t -> Diag.t list
val check_netlist : Rtl.Netlist.t -> Diag.t list

val check_certificate :
  Sched.Verify.context -> Ir.Cdfg.t -> Sched.Cover.t -> Sched.Schedule.t ->
  Diag.t list

val check_audit : Lp.Model.t -> Lp.Milp.result -> Diag.t list
(** {!Audit.check_result} with counter bumps: exact-rational audit of a
    proof-carrying MILP solve. *)

val static_gate :
  Preflight.config -> Ir.Cdfg.t -> (Diag.t list, Diag.t list) result
(** The fail-fast pre-solve gate used by {!Core.Flow}: CDFG lints plus
    pre-flight. [Ok diags] carries the warnings/infos to record;
    [Error diags] carries everything including at least one error. Also
    bumps the [analyze.*] observability counters. *)

val diags_to_json : Diag.t list -> Obs.Json.t
(** A JSON array of {!Diag.to_json} objects, sorted by {!Diag.compare}. *)

val file : entries:(string * Diag.t list) list -> Obs.Json.t
(** The lint-report file shape:
    [{"schema_version": …, "benchmarks": [{"name": …, "errors": n,
    "warnings": n, "diagnostics": […]}]}] — [schema_version] tracks
    {!Obs.Metrics.schema_version}. *)

val write_file : path:string -> entries:(string * Diag.t list) list -> unit
