(** Structural lints over RTL netlists ({!Rtl.Netlist.t}) — the checks a
    downstream synthesis tool would raise as elaboration errors, caught
    before Verilog ever leaves the flow.

    Codes:
    - [NET001] (error): undriven signal — referenced by an expression but
      defined by no input port, wire or register.
    - [NET002] (error): multiply-driven signal — the same name defined more
      than once across inputs, wires and registers.
    - [NET003] (error): operator arity mismatch — an applied op has the
      wrong operand count (an unconnected LUT pin, in fabric terms).
    - [NET004] (error): combinational-order violation — a wire's expression
      reads a wire defined later in the list, breaking the
      dependency-order contract {!Rtl.Netlist.simulate} relies on
      (register outputs may be read anywhere: they cross the cycle
      boundary).
    - [NET005] (warning): dangling wire — defined but read by no wire,
      register or output.
    - [NET006] (error): width mismatch — an applied op's operand widths
      violate the opcode's width discipline. *)

val pass_name : string

val check : Rtl.Netlist.t -> Diag.t list
