(** The diagnostic currency of the static-analysis layer.

    Every lint and checker in {!module:Analyze} reports findings as values
    of {!t}: a severity, a stable machine-readable code, a location in the
    offending artifact, a human-readable message and a {e witness} — the
    concrete evidence (a cycle path, a duplicated row pair, an undriven
    wire) that lets a reader confirm the finding without re-running the
    pass. Codes are namespaced per artifact ([CDFGnnn], [PREnnn], [LPnnn],
    [NETnnn], [CERTnnn]) and documented in README.md ("Diagnostics"); they
    are stable across releases so downstream tooling can match on them. *)

type severity =
  | Error  (** the flow would fail or produce an illegal result *)
  | Warning  (** suspicious, very likely unintended *)
  | Info  (** an optimization opportunity; never gates *)

type location =
  | Node of int  (** CDFG node id *)
  | Edge of int * int  (** CDFG dependence [src -> dst] *)
  | Row of int  (** LP constraint index (insertion order) *)
  | Column of int  (** LP variable index *)
  | Wire of string  (** netlist signal name *)
  | Global  (** whole-artifact finding *)

type t = {
  severity : severity;
  code : string;  (** stable code, e.g. ["CDFG001"] *)
  pass : string;  (** registry name of the producing pass *)
  loc : location;
  message : string;
  witness : string list;
      (** evidence trail, outermost first (e.g. the nodes of a cycle) *)
}

val make :
  ?witness:string list -> severity -> code:string -> pass:string ->
  loc:location -> string -> t

val errorf :
  ?witness:string list -> code:string -> pass:string -> loc:location ->
  ('a, Format.formatter, unit, t) format4 -> 'a

val warnf :
  ?witness:string list -> code:string -> pass:string -> loc:location ->
  ('a, Format.formatter, unit, t) format4 -> 'a

val infof :
  ?witness:string list -> code:string -> pass:string -> loc:location ->
  ('a, Format.formatter, unit, t) format4 -> 'a

val severity_name : severity -> string
(** ["error"], ["warning"], ["info"] — the strings used in JSON. *)

val compare : t -> t -> int
(** Severity first (errors before warnings before infos), then code, then
    location (structurally: [Node 2] before [Node 10]), then message and
    witness — a {e total} order, so every sorted report is byte-identical
    across runs regardless of pass-internal ordering. *)

val errors : t list -> t list
val warnings : t list -> t list
val has_errors : t list -> bool

val summary : t list -> string
(** One line, e.g. ["2 errors, 1 warning"]; ["clean"] when empty. *)

val loc_to_string : location -> string

val to_json : t -> Obs.Json.t
(** [{"severity": …, "code": …, "pass": …, "loc": …, "message": …,
    "witness": […]}]. *)

val of_json : Obs.Json.t -> (t, string) result
(** Inverse of {!to_json} (round-trip checks in tests). *)

val pp : t Fmt.t
val pp_report : t list Fmt.t
(** Sorted by {!compare}, one diagnostic per line, summary last. *)
