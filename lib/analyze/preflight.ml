let pass_name = "preflight"

type config = {
  device : Fpga.Device.t;
  delays : Fpga.Delays.t;
  resources : Fpga.Resource.budget;
  ii : int;
}

(* Longest-path relaxation with parent pointers (the same recurrence test
   as Sched.Heuristic.recurrence_feasible); when it fails to converge, the
   parent chain from a node updated in the last round contains the binding
   cycle. *)
let recurrence_witness ~device ~delays ~ii g =
  let n = Ir.Cdfg.num_nodes g in
  let period = Fpga.Device.usable_period device in
  let dist = Array.make n 0.0 in
  let parent = Array.make n (-1) in
  let delay v = Sched.Heuristic.op_delay ~delays g v in
  let last = ref (-1) in
  for _round = 0 to n do
    last := -1;
    Ir.Cdfg.iter
      (fun nd ->
        Array.iter
          (fun (e : Ir.Cdfg.edge) ->
            let w = (delay e.src /. period) -. float_of_int (ii * e.dist) in
            if dist.(e.src) +. w > dist.(nd.id) +. 1e-9 then begin
              dist.(nd.id) <- dist.(e.src) +. w;
              parent.(nd.id) <- e.src;
              last := nd.id
            end)
          nd.preds)
      g
  done;
  if !last < 0 then None
  else begin
    (* Walk n parent steps to land inside a cycle of the parent graph. *)
    let v = ref !last in
    for _ = 1 to n do
      if parent.(!v) >= 0 then v := parent.(!v)
    done;
    (* Find the cycle entry, then collect it. *)
    let seen = Array.make n false in
    let entry = ref (-1) in
    let u = ref !v in
    while !entry < 0 && parent.(!u) >= 0 do
      if seen.(!u) then entry := !u
      else begin
        seen.(!u) <- true;
        u := parent.(!u)
      end
    done;
    if !entry < 0 then None
    else begin
      let start = !entry in
      let rec collect acc u =
        let p = parent.(u) in
        if p = start then u :: acc else collect (u :: acc) p
      in
      Some (collect [] start)
    end
  end

let check ?(strict_period = false) cfg g =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  if cfg.ii < 1 then
    add
      (Diag.errorf ~code:"PRE001" ~pass:pass_name ~loc:Diag.Global
         "requested II %d is below 1" cfg.ii)
  else begin
    (* Black-box resource demand vs budget (ResMII, Eq. 14). *)
    let counts = Hashtbl.create 8 in
    Ir.Cdfg.iter
      (fun nd ->
        match nd.op with
        | Ir.Op.Black_box { resource; _ } ->
            Hashtbl.replace counts resource
              (1 + Option.value ~default:0 (Hashtbl.find_opt counts resource))
        | _ -> ())
      g;
    let binding = ref None in
    Hashtbl.iter
      (fun r used ->
        match Fpga.Resource.limit cfg.resources r with
        | None -> ()
        | Some 0 ->
            add
              (Diag.errorf ~code:"PRE004" ~pass:pass_name ~loc:Diag.Global
                 ~witness:[ Printf.sprintf "%s: %d uses, 0 units" r used ]
                 "resource class %s has a zero budget but %d operations need \
                  it: no II is feasible"
                 r used)
        | Some lim ->
            let need = (used + lim - 1) / lim in
            (match !binding with
            | Some (_, _, _, best) when best >= need -> ()
            | _ -> binding := Some (r, used, lim, need)))
      counts;
    (match !binding with
    | Some (r, used, lim, need) when cfg.ii < need ->
        add
          (Diag.errorf ~code:"PRE002" ~pass:pass_name ~loc:Diag.Global
             ~witness:
               [ Printf.sprintf "%s: %d uses / %d units -> ResMII %d" r used lim need ]
             "requested II %d is below ResMII %d (binding resource class %s)"
             cfg.ii need r)
    | _ -> ());
    (* Recurrence feasibility (RecMII). *)
    if
      not
        (Sched.Heuristic.recurrence_feasible ~device:cfg.device
           ~delays:cfg.delays ~ii:cfg.ii g)
    then begin
      let rec_mii =
        Sched.Heuristic.rec_mii ~device:cfg.device ~delays:cfg.delays g
      in
      let cycle =
        recurrence_witness ~device:cfg.device ~delays:cfg.delays ~ii:cfg.ii g
      in
      let witness =
        match cycle with
        | None -> []
        | Some c -> List.map (Ir.Cdfg.node_name g) (c @ [ List.hd c ])
      in
      let head =
        match cycle with Some (v :: _) -> Diag.Node v | _ -> Diag.Global
      in
      add
        (Diag.errorf ~code:"PRE001" ~pass:pass_name ~loc:head ~witness
           "requested II %d is below RecMII %d: a dependence cycle cannot \
            close"
           cfg.ii rec_mii)
    end
  end;
  (* Clock-period sanity: slowest single-operation delay vs usable period. *)
  let period = Fpga.Device.usable_period cfg.device in
  let slowest = ref (-1, 0.0) in
  Ir.Cdfg.iter
    (fun nd ->
      let d = Sched.Heuristic.op_delay ~delays:cfg.delays g nd.id in
      if d > snd !slowest then slowest := (nd.id, d))
    g;
  let v, d = !slowest in
  if v >= 0 && d > period +. 1e-9 then begin
    let mk = if strict_period then Diag.errorf else Diag.warnf in
    add
      (mk ~code:"PRE003" ~pass:pass_name ~loc:(Diag.Node v)
         ~witness:
           [ Printf.sprintf "%s: %.3f ns > %.3f ns usable period"
               (Ir.Cdfg.node_name g v) d period ]
         "slowest single-op delay %.3f ns exceeds the usable clock period \
          %.3f ns%s"
         d period
         (if strict_period then "" else " (operation will be multi-cycled)"))
  end;
  List.rev !diags
