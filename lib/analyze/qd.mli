(** Exact dyadic-rational arithmetic — re-export of {!Lp.Qd}.

    The implementation lives in [lib/lp] so that cut generation
    ({!Lp.Cutgen}) and this library's certificate audit ({!Audit}) run
    the same exact arithmetic: a Chvátal–Gomory floor decided at
    generation time must be the floor the audit re-derives. See
    [lib/lp/qd.mli] for the full interface documentation. *)

include module type of struct
  include Lp.Qd
end
