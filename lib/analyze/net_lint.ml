open Rtl.Netlist

let pass_name = "net-lint"

let expr_width = function
  | Ref s -> s.width
  | Lit { width; _ } -> width
  | App (_, _, w) -> w

let rec iter_refs f = function
  | Ref s -> f s
  | Lit _ -> ()
  | App (_, args, _) -> List.iter (iter_refs f) args

let rec iter_apps f = function
  | Ref _ | Lit _ -> ()
  | App (op, args, w) as e ->
      f op args w e;
      List.iter (iter_apps f) args

let check (nl : t) =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  (* Driver map: name -> how many times defined. *)
  let drivers = Hashtbl.create 64 in
  let define (s : signal) =
    Hashtbl.replace drivers s.name
      (1 + Option.value ~default:0 (Hashtbl.find_opt drivers s.name))
  in
  List.iter define nl.inputs;
  List.iter (fun (s, _) -> define s) nl.wires;
  List.iter (fun (r : reg) -> define r.q) nl.regs;
  Hashtbl.iter
    (fun name count ->
      if count > 1 then
        add
          (Diag.errorf ~code:"NET002" ~pass:pass_name ~loc:(Diag.Wire name)
             "signal %s is driven %d times" name count))
    drivers;
  (* Wire positions for the combinational-order check. *)
  let wire_pos = Hashtbl.create 64 in
  List.iteri
    (fun i ((s : signal), _) ->
      if not (Hashtbl.mem wire_pos s.name) then Hashtbl.add wire_pos s.name i)
    nl.wires;
  (* Reference checks, applied to every expression in the design. [pos] is
     the defining wire's position for order checking, or none for register
     inputs and output expressions (those read settled values). *)
  let check_expr ~where ?pos e =
    iter_refs
      (fun (s : signal) ->
        if not (Hashtbl.mem drivers s.name) then
          add
            (Diag.errorf ~code:"NET001" ~pass:pass_name ~loc:(Diag.Wire s.name)
               "%s reads undriven signal %s" where s.name);
        match (pos, Hashtbl.find_opt wire_pos s.name) with
        | Some i, Some j when j >= i ->
            add
              (Diag.errorf ~code:"NET004" ~pass:pass_name
                 ~loc:(Diag.Wire s.name)
                 ~witness:
                   [ Printf.sprintf "%s at position %d" where i;
                     Printf.sprintf "%s at position %d" s.name j ]
                 "%s reads wire %s defined at or after it (combinational \
                  order violation)"
                 where s.name)
        | _ -> ())
      e;
    iter_apps
      (fun op args w _ ->
        match Ir.Op.arity op with
        | Some k when List.length args <> k ->
            add
              (Diag.errorf ~code:"NET003" ~pass:pass_name ~loc:(Diag.Wire where)
                 "%s: %s applied to %d operands, expected %d (unconnected \
                  pin)"
                 where (Ir.Op.to_string op) (List.length args) k)
        | _ -> (
            let operand_widths = List.map expr_width args in
            match Ir.Op.validate_widths op ~operand_widths with
            | Error msg ->
                add
                  (Diag.errorf ~code:"NET006" ~pass:pass_name
                     ~loc:(Diag.Wire where) "%s: %s (result width %d): %s"
                     where (Ir.Op.to_string op) w msg)
            | Ok () -> ()))
      e
  in
  List.iteri
    (fun i ((s : signal), def) ->
      match def with
      | `Expr e -> check_expr ~where:s.name ~pos:i e
      | `Instance inst ->
          List.iter (fun a -> check_expr ~where:s.name ~pos:i a) inst.args)
    nl.wires;
  List.iter
    (fun (r : reg) -> check_expr ~where:(r.q.name ^ ".d") r.d)
    nl.regs;
  List.iter
    (fun ((s : signal), e) -> check_expr ~where:("output " ^ s.name) e)
    nl.outputs;
  (* Dangling wires: defined, read by nothing downstream. *)
  let read = Hashtbl.create 64 in
  let mark e = iter_refs (fun (s : signal) -> Hashtbl.replace read s.name ()) e in
  List.iter
    (fun (_, def) ->
      match def with
      | `Expr e -> mark e
      | `Instance inst -> List.iter mark inst.args)
    nl.wires;
  List.iter (fun (r : reg) -> mark r.d) nl.regs;
  List.iter (fun (_, e) -> mark e) nl.outputs;
  List.iter
    (fun ((s : signal), _) ->
      if not (Hashtbl.mem read s.name) then
        add
          (Diag.warnf ~code:"NET005" ~pass:pass_name ~loc:(Diag.Wire s.name)
             "wire %s is driven but never read" s.name))
    nl.wires;
  List.rev !diags
