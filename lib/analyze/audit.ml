let pass_name = "audit"
let max_reports = 25

(* Contract tolerances (see DESIGN.md §3h). The arithmetic below is exact;
   what is checked is the solver's *published* accuracy contract, so every
   threshold is an explicit constant here rather than an epsilon hidden in
   a float comparison.
   - [feas_eps]: Model.check's default feasibility tolerance (1e-6).
   - [lp_rel]: Simplex.resolve's relative objective accuracy (1e-6).
   - [inc_slack]: Milp's incumbent acceptance slack (1e-9). *)
let feas_eps = 1e-6
let lp_rel = 1e-6
let inc_slack = 1e-9

type ctx = {
  raw : Lp.Model.raw;
  cert : Lp.Cert.t;
  m : int;  (** row count *)
  qcache : (float, Qd.t) Hashtbl.t;
      (* model coefficients repeat massively (0, ±1, shared bounds); caching
         the float→Qd conversion keeps the audit linear in nnz, not in
         nnz × limb work *)
  by_id : (int, Lp.Cert.node) Hashtbl.t;
  node_bounds : (int, Qd.t option) Hashtbl.t;
      (* exact dual bound per Lp_optimal node, filled by the claim checks
         and reused by the pruning replay; [None] = -infinity *)
  mutable diags : Diag.t list;  (* newest first *)
  counts : (string, int) Hashtbl.t;
}

let report ctx sev ~code ~loc ?witness msg =
  let seen = Option.value ~default:0 (Hashtbl.find_opt ctx.counts code) in
  Hashtbl.replace ctx.counts code (seen + 1);
  if seen < max_reports then
    ctx.diags <- Diag.make ?witness sev ~code ~pass:pass_name ~loc msg :: ctx.diags
  else if seen = max_reports then
    ctx.diags <-
      Diag.make sev ~code ~pass:pass_name ~loc:Diag.Global
        (Printf.sprintf "further %s findings suppressed (capped at %d)" code
           max_reports)
      :: ctx.diags

let errorf ctx ~code ~loc ?witness fmt =
  Printf.ksprintf (report ctx Diag.Error ~code ~loc ?witness) fmt

(* Cached exact conversion. Finite floats only — callers deal with the
   infinities structurally. *)
let q ctx f =
  match Hashtbl.find_opt ctx.qcache f with
  | Some v -> v
  | None ->
      let v = Qd.of_float f in
      Hashtbl.add ctx.qcache f v;
      v

let qstr x = Printf.sprintf "%.9g" (Qd.to_float x)

(* ------------------------------------------------------------------ *)
(* Exact dual bounds (Neumaier–Shcherbina)                             *)
(* ------------------------------------------------------------------ *)

(* Clamp a float multiplier into the sign cone its row sense requires.
   Any clamped vector still yields a valid bound — clamping (like any
   float drift) can only weaken it, never falsely strengthen it. Non-
   finite entries are weakened to 0 for the same reason. *)
let clamp sense ui =
  if not (Float.is_finite ui) then 0.0
  else
    match sense with
    | Lp.Model.Le -> if ui < 0.0 then 0.0 else ui
    | Lp.Model.Ge -> if ui > 0.0 then 0.0 else ui
    | Lp.Model.Eq -> ui

(* [reduced_costs ctx ~use_obj u] = (r, t) with r = c + Aᵀû and
   t = -û·b, where û is the sense-clamped u and c is the objective (or 0
   for Farkas checks). Everything exact. *)
let reduced_costs ctx ~use_obj u =
  let raw = ctx.raw in
  let r =
    Array.init raw.Lp.Model.n (fun j ->
        if use_obj then q ctx raw.Lp.Model.obj.(j) else Qd.zero)
  in
  let t = ref Qd.zero in
  Array.iteri
    (fun i row ->
      let ui = clamp raw.Lp.Model.senses.(i) u.(i) in
      if ui <> 0.0 then begin
        let uq = q ctx ui in
        t := Qd.sub !t (Qd.mul uq (q ctx raw.Lp.Model.rhs.(i)));
        Array.iter
          (fun (j, a) -> r.(j) <- Qd.add r.(j) (Qd.mul uq (q ctx a)))
          row
      end)
    raw.Lp.Model.rows;
  (r, !t)

(* min over the box [lb, ub] of Σ r_j x_j; [None] = -infinity (a negative
   reduced cost against an infinite upper bound, or positive against an
   infinite lower bound). *)
let box_min ctx r lb ub =
  let acc = ref Qd.zero and finite = ref true in
  for j = 0 to ctx.raw.Lp.Model.n - 1 do
    let s = Qd.sign r.(j) in
    if s > 0 then
      if Float.is_finite lb.(j) then
        acc := Qd.add !acc (Qd.mul r.(j) (q ctx lb.(j)))
      else finite := false
    else if s < 0 then
      if Float.is_finite ub.(j) then
        acc := Qd.add !acc (Qd.mul r.(j) (q ctx ub.(j)))
      else finite := false
  done;
  if !finite then Some !acc else None

(* Safe exact bound certified by the float vector [u] on
   min {c·x : Ax sense b, lb <= x <= ub} — valid for *any* u. *)
let dual_bound ctx ~use_obj u lb ub =
  let r, t = reduced_costs ctx ~use_obj u in
  match box_min ctx r lb ub with
  | None -> None
  | Some bm -> Some (Qd.add t bm)

(* ------------------------------------------------------------------ *)
(* Tree bookkeeping                                                    *)
(* ------------------------------------------------------------------ *)

(* Walk [node]'s parent chain collecting branch edits, then replay them
   onto a copy of the post-fixing root box. [None] when the chain is
   broken or cyclic (reported as CERT101/CERT106 elsewhere). *)
let node_box ctx (node : Lp.Cert.node) =
  let cert = ctx.cert in
  let rec edits acc n guard =
    if guard > 1_000_000 then None
    else
      match n.Lp.Cert.branch with
      | None -> Some acc
      | Some e -> (
          match Hashtbl.find_opt ctx.by_id n.Lp.Cert.parent with
          | Some p -> edits (e :: acc) p (guard + 1)
          | None -> None)
  in
  match edits [] node 0 with
  | None -> None
  | Some es ->
      let lb = Array.copy cert.Lp.Cert.root_lb
      and ub = Array.copy cert.Lp.Cert.root_ub in
      let ok =
        List.for_all
          (fun (j, side, v) ->
            if j < 0 || j >= ctx.raw.Lp.Model.n then false
            else begin
              (match side with
              | Lp.Cert.Lower -> lb.(j) <- v
              | Lp.Cert.Upper -> ub.(j) <- v);
              true
            end)
          es
      in
      if ok then Some (lb, ub) else None

let claim_str = function
  | Lp.Cert.Lp_optimal _ -> "optimal"
  | Lp.Cert.Lp_infeasible _ -> "infeasible"
  | Lp.Cert.Lp_unsolved -> "unsolved"

(* ------------------------------------------------------------------ *)
(* Incumbent checks (CERT102 / CERT107)                                *)
(* ------------------------------------------------------------------ *)

let check_incumbent ctx =
  let cert = ctx.cert and raw = ctx.raw in
  let has_inc =
    match cert.Lp.Cert.status with
    | Lp.Cert.Optimal | Lp.Cert.Feasible -> true
    | Lp.Cert.Infeasible | Lp.Cert.Unbounded | Lp.Cert.Unknown -> false
  in
  match (cert.Lp.Cert.incumbent, has_inc) with
  | None, false -> ()
  | None, true ->
      errorf ctx ~code:"CERT107" ~loc:Diag.Global
        "status %s claims an incumbent but the certificate records none"
        (Lp.Cert.status_label cert.Lp.Cert.status)
  | Some _, false ->
      errorf ctx ~code:"CERT107" ~loc:Diag.Global
        "status %s forbids an incumbent but the certificate records one"
        (Lp.Cert.status_label cert.Lp.Cert.status)
  | Some x, true ->
      if Array.length x <> raw.Lp.Model.n then
        errorf ctx ~code:"CERT101" ~loc:Diag.Global
          "incumbent has %d entries, model has %d variables" (Array.length x)
          raw.Lp.Model.n
      else begin
        let epsq = q ctx feas_eps in
        for j = 0 to raw.Lp.Model.n - 1 do
          if not (Float.is_finite x.(j)) then
            errorf ctx ~code:"CERT102" ~loc:(Diag.Column j)
              "incumbent entry is not finite"
          else begin
            let xq = q ctx x.(j) in
            if
              Float.is_finite raw.Lp.Model.lb.(j)
              && Qd.lt xq (Qd.sub (q ctx raw.Lp.Model.lb.(j)) epsq)
            then
              errorf ctx ~code:"CERT102" ~loc:(Diag.Column j)
                "incumbent %.9g below lower bound %.9g" x.(j)
                raw.Lp.Model.lb.(j);
            if
              Float.is_finite raw.Lp.Model.ub.(j)
              && Qd.lt (Qd.add (q ctx raw.Lp.Model.ub.(j)) epsq) xq
            then
              errorf ctx ~code:"CERT102" ~loc:(Diag.Column j)
                "incumbent %.9g above upper bound %.9g" x.(j)
                raw.Lp.Model.ub.(j);
            (* integrality is exact — the solver snaps accepted incumbents,
               so zero tolerance is the honest check *)
            if raw.Lp.Model.integer.(j) && not (Qd.is_integer xq) then
              errorf ctx ~code:"CERT102" ~loc:(Diag.Column j)
                "integer variable holds non-integral value %.17g" x.(j)
          end
        done;
        Array.iteri
          (fun i row ->
            let lhs =
              Qd.sum (Array.length row) (fun k ->
                  let jj, a = row.(k) in
                  Qd.mul (q ctx a) (q ctx x.(jj)))
            in
            let rhs = q ctx raw.Lp.Model.rhs.(i) in
            let bad =
              match raw.Lp.Model.senses.(i) with
              | Lp.Model.Le -> Qd.lt (Qd.add rhs epsq) lhs
              | Lp.Model.Ge -> Qd.lt lhs (Qd.sub rhs epsq)
              | Lp.Model.Eq ->
                  Qd.lt (Qd.add rhs epsq) lhs || Qd.lt lhs (Qd.sub rhs epsq)
            in
            if bad then
              errorf ctx ~code:"CERT102" ~loc:(Diag.Row i)
                ~witness:[ qstr lhs; Printf.sprintf "%.9g" raw.Lp.Model.rhs.(i) ]
                "incumbent violates constraint row (exact lhs %s)" (qstr lhs))
          raw.Lp.Model.rows;
        (* recorded objective must be the incumbent's exact objective *)
        if Float.is_finite cert.Lp.Cert.objective then begin
          let exact =
            Qd.sum raw.Lp.Model.n (fun j ->
                Qd.mul (q ctx raw.Lp.Model.obj.(j)) (q ctx x.(j)))
          in
          let claimed = q ctx cert.Lp.Cert.objective in
          let tol =
            q ctx (lp_rel *. Float.max 1.0 (Float.abs cert.Lp.Cert.objective))
          in
          if
            Qd.lt (Qd.add claimed tol) exact
            || Qd.lt exact (Qd.sub claimed tol)
          then
            errorf ctx ~code:"CERT107" ~loc:Diag.Global
              ~witness:[ qstr exact ]
              "recorded objective %.9g disagrees with the incumbent's exact \
               objective %s"
              cert.Lp.Cert.objective (qstr exact)
        end
        else
          errorf ctx ~code:"CERT107" ~loc:Diag.Global
            "incumbent present but recorded objective is not finite"
      end

let check_incumbent_log ctx =
  let cert = ctx.cert in
  match cert.Lp.Cert.incumbent with
  | None ->
      if cert.Lp.Cert.incumbents <> [] then
        errorf ctx ~code:"CERT107" ~loc:Diag.Global
          "incumbent log has %d entries but no final incumbent"
          (List.length cert.Lp.Cert.incumbents)
  | Some _ when not (Float.is_finite cert.Lp.Cert.objective) -> ()
  | Some _ -> (
      let zq = q ctx cert.Lp.Cert.objective in
      let floor_ = Qd.sub zq (q ctx inc_slack) in
      List.iter
        (fun (id, v) ->
          if (not (Float.is_finite v)) || Qd.lt (q ctx v) floor_ then
            errorf ctx ~code:"CERT107" ~loc:(Diag.Node id)
              "accepted incumbent %.9g is better than the final objective \
               %.9g — stale final incumbent"
              v cert.Lp.Cert.objective)
        cert.Lp.Cert.incumbents;
      match List.rev cert.Lp.Cert.incumbents with
      | [] ->
          errorf ctx ~code:"CERT107" ~loc:Diag.Global
            "final incumbent present but the acceptance log is empty"
      | (_, last) :: _ ->
          if
            Float.is_finite last
            && not
                 (Qd.leq
                    (Qd.sub (q ctx last) zq)
                    (q ctx inc_slack))
          then
            errorf ctx ~code:"CERT107" ~loc:Diag.Global
              "last accepted incumbent %.9g does not match the final \
               objective %.9g"
              last cert.Lp.Cert.objective)

(* ------------------------------------------------------------------ *)
(* Per-node checks (CERT101 / CERT103 / CERT104 / CERT106)             *)
(* ------------------------------------------------------------------ *)

let check_branch_edit ctx (n : Lp.Cert.node) =
  match n.Lp.Cert.branch with
  | None ->
      if n.Lp.Cert.parent <> -1 then
        errorf ctx ~code:"CERT106" ~loc:(Diag.Node n.Lp.Cert.id)
          "non-root node %d carries no branch edit" n.Lp.Cert.id
  | Some (j, side, v) -> (
      if j < 0 || j >= ctx.raw.Lp.Model.n then
        errorf ctx ~code:"CERT106" ~loc:(Diag.Node n.Lp.Cert.id)
          "branch variable %d out of range" j
      else if not ctx.raw.Lp.Model.integer.(j) then
        errorf ctx ~code:"CERT106" ~loc:(Diag.Node n.Lp.Cert.id)
          "branch on continuous variable %d" j
      else if (not (Float.is_finite v)) || not (Qd.is_integer (q ctx v)) then
        errorf ctx ~code:"CERT106" ~loc:(Diag.Node n.Lp.Cert.id)
          "branch bound %.17g on variable %d is not integral" v j;
      match Hashtbl.find_opt ctx.by_id n.Lp.Cert.parent with
      | None ->
          errorf ctx ~code:"CERT101" ~loc:(Diag.Node n.Lp.Cert.id)
            "node %d references missing parent %d" n.Lp.Cert.id
            n.Lp.Cert.parent
      | Some p -> (
          if n.Lp.Cert.depth <> p.Lp.Cert.depth + 1 then
            errorf ctx ~code:"CERT106" ~loc:(Diag.Node n.Lp.Cert.id)
              "depth %d inconsistent with parent depth %d" n.Lp.Cert.depth
              p.Lp.Cert.depth;
          match p.Lp.Cert.fathom with
          | Lp.Cert.F_branched { bvar; down_id; down_ub; up_id; up_lb } ->
              let expect =
                if n.Lp.Cert.id = down_id then Some (Lp.Cert.Upper, down_ub)
                else if n.Lp.Cert.id = up_id then Some (Lp.Cert.Lower, up_lb)
                else None
              in
              (match expect with
              | None ->
                  errorf ctx ~code:"CERT106" ~loc:(Diag.Node n.Lp.Cert.id)
                    "node %d is not among parent %d's recorded children"
                    n.Lp.Cert.id p.Lp.Cert.id
              | Some (eside, ev) ->
                  if side <> eside || v <> ev || j <> bvar then
                    errorf ctx ~code:"CERT106" ~loc:(Diag.Node n.Lp.Cert.id)
                      "branch edit (var %d, %s, %.9g) disagrees with parent \
                       %d's branch record (var %d)"
                      j
                      (match side with
                      | Lp.Cert.Lower -> "lower"
                      | Lp.Cert.Upper -> "upper")
                      v p.Lp.Cert.id bvar)
          | _ ->
              errorf ctx ~code:"CERT106" ~loc:(Diag.Node n.Lp.Cert.id)
                "parent %d of node %d did not branch" p.Lp.Cert.id
                n.Lp.Cert.id))

(* The two children of a branch must partition the integer points of the
   parent interval: up_lb = down_ub + 1, both integral. *)
let check_branch_arith ctx (n : Lp.Cert.node) =
  match n.Lp.Cert.fathom with
  | Lp.Cert.F_branched { bvar; down_ub; up_lb; _ } ->
      let bad =
        (not (Float.is_finite down_ub))
        || (not (Float.is_finite up_lb))
        || (not (Qd.is_integer (q ctx down_ub)))
        || not (Qd.equal (q ctx up_lb) (Qd.add (q ctx down_ub) (Qd.of_int 1)))
      in
      if bad then
        errorf ctx ~code:"CERT106" ~loc:(Diag.Node n.Lp.Cert.id)
          "branch on variable %d does not partition the interval (x <= \
           %.9g | x >= %.9g)"
          bvar down_ub up_lb
  | _ -> ()

let check_claim ctx (n : Lp.Cert.node) box =
  let nid = n.Lp.Cert.id in
  match n.Lp.Cert.claim with
  | Lp.Cert.Lp_unsolved -> ()
  | Lp.Cert.Lp_optimal { obj; duals } -> (
      if not (Float.is_finite obj) then
        errorf ctx ~code:"CERT101" ~loc:(Diag.Node nid)
          "optimal LP claim with non-finite objective"
      else if Array.length duals <> ctx.m then
        errorf ctx ~code:"CERT101" ~loc:(Diag.Node nid)
          "dual vector has %d entries, model has %d rows" (Array.length duals)
          ctx.m
      else
        match box with
        | None -> ()
        | Some (lb, ub) -> (
            let beta = dual_bound ctx ~use_obj:true duals lb ub in
            Hashtbl.replace ctx.node_bounds nid beta;
            let tol = q ctx (lp_rel *. Float.max 1.0 (Float.abs obj)) in
            match beta with
            | None ->
                errorf ctx ~code:"CERT103" ~loc:(Diag.Node nid)
                  "dual vector certifies no finite bound (claimed %.9g)" obj
            | Some b ->
                if Qd.lt b (Qd.sub (q ctx obj) tol) then
                  errorf ctx ~code:"CERT103" ~loc:(Diag.Node nid)
                    ~witness:[ qstr b; Printf.sprintf "%.9g" obj ]
                    "exact dual bound %s is below the claimed LP objective \
                     %.9g"
                    (qstr b) obj))
  | Lp.Cert.Lp_infeasible ev -> (
      match ev with
      | None ->
          errorf ctx ~code:"CERT101" ~loc:(Diag.Node nid)
            "infeasibility claimed without evidence"
      | Some (Lp.Cert.Empty_box j) -> (
          if j < 0 || j >= ctx.raw.Lp.Model.n then
            errorf ctx ~code:"CERT106" ~loc:(Diag.Node nid)
              "empty-box witness variable %d out of range" j
          else
            match box with
            | None -> ()
            | Some (lb, ub) ->
                let crossed =
                  Float.is_finite lb.(j)
                  && (ub.(j) = Float.neg_infinity
                     || (Float.is_finite ub.(j)
                        && Qd.lt (q ctx ub.(j)) (q ctx lb.(j))))
                in
                if not crossed then
                  errorf ctx ~code:"CERT104" ~loc:(Diag.Node nid)
                    "claimed empty box on variable %d, but [%.9g, %.9g] is \
                     not empty"
                    j lb.(j) ub.(j))
      | Some (Lp.Cert.Ray u) -> (
          if Array.length u <> ctx.m then
            errorf ctx ~code:"CERT101" ~loc:(Diag.Node nid)
              "Farkas ray has %d entries, model has %d rows" (Array.length u)
              ctx.m
          else
            match box with
            | None -> ()
            | Some (lb, ub) -> (
                match dual_bound ctx ~use_obj:false u lb ub with
                | Some b when Qd.sign b > 0 -> ()
                | Some b ->
                    errorf ctx ~code:"CERT104" ~loc:(Diag.Node nid)
                      ~witness:[ qstr b ]
                      "Farkas ray proves only %s > 0 is required for \
                       infeasibility"
                      (qstr b)
                | None ->
                    errorf ctx ~code:"CERT104" ~loc:(Diag.Node nid)
                      "Farkas ray certifies no finite bound")))

let check_incumbent_at ctx (n : Lp.Cert.node) =
  let cert = ctx.cert in
  if Float.is_finite n.Lp.Cert.incumbent_at then
    match cert.Lp.Cert.incumbent with
    | None ->
        errorf ctx ~code:"CERT107" ~loc:(Diag.Node n.Lp.Cert.id)
          "node observed incumbent %.9g but the run ended with none"
          n.Lp.Cert.incumbent_at
    | Some _ ->
        if
          Float.is_finite cert.Lp.Cert.objective
          && Qd.lt
               (q ctx n.Lp.Cert.incumbent_at)
               (Qd.sub (q ctx cert.Lp.Cert.objective) (q ctx inc_slack))
        then
          errorf ctx ~code:"CERT107" ~loc:(Diag.Node n.Lp.Cert.id)
            "node observed incumbent %.9g better than the final objective \
             %.9g — lost incumbent update"
            n.Lp.Cert.incumbent_at cert.Lp.Cert.objective

(* ------------------------------------------------------------------ *)
(* Pruning replay (CERT105 / CERT107)                                  *)
(* ------------------------------------------------------------------ *)

(* Exact bound for [node]'s box certified by the nearest ancestor (or
   self) holding an optimal LP claim. Used for F_dominated nodes and for
   branched children that were never processed. *)
let ancestor_bound ctx (node : Lp.Cert.node) box =
  let rec up (n : Lp.Cert.node) guard =
    if guard > 1_000_000 then None
    else
      match n.Lp.Cert.claim with
      | Lp.Cert.Lp_optimal { duals; _ } when Array.length duals = ctx.m ->
          Some duals
      | _ ->
          if n.Lp.Cert.parent < 0 then None
          else
            Option.bind
              (Hashtbl.find_opt ctx.by_id n.Lp.Cert.parent)
              (fun p -> up p (guard + 1))
  in
  match up node 0 with
  | None -> None
  | Some duals ->
      let lb, ub = box in
      Some (dual_bound ctx ~use_obj:true duals lb ub)

(* Fathom threshold: a subtree is soundly excluded if its exact bound is
   >= z_final - gap_tol·max(1,|z|) - lp_rel·max(1,|bound|) — the solver's
   published gap contract plus its LP accuracy contract. *)
let fathom_floor ctx ~ref_obj =
  let z = ctx.cert.Lp.Cert.objective in
  let slack =
    (ctx.cert.Lp.Cert.gap_tol *. Float.max 1.0 (Float.abs z))
    +. (lp_rel *. Float.max 1.0 (Float.abs ref_obj))
  in
  Qd.sub (q ctx z) (q ctx slack)

let check_completeness_optimal ctx =
  let cert = ctx.cert in
  if not (Float.is_finite cert.Lp.Cert.objective) then ()
  else
    List.iter
      (fun (n : Lp.Cert.node) ->
        let nid = n.Lp.Cert.id in
        match n.Lp.Cert.fathom with
        | Lp.Cert.F_infeasible -> (
            match n.Lp.Cert.claim with
            | Lp.Cert.Lp_infeasible _ -> ()
            | c ->
                errorf ctx ~code:"CERT101" ~loc:(Diag.Node nid)
                  "node fathomed as infeasible but its LP claim is %s"
                  (claim_str c))
        | Lp.Cert.F_integral -> (
            match n.Lp.Cert.claim with
            | Lp.Cert.Lp_optimal { obj; _ } ->
                if
                  Float.is_finite obj
                  && Qd.lt (q ctx obj)
                       (Qd.sub
                          (q ctx cert.Lp.Cert.objective)
                          (q ctx inc_slack))
                then
                  errorf ctx ~code:"CERT107" ~loc:(Diag.Node nid)
                    "integral leaf with objective %.9g better than the \
                     final objective %.9g — stale incumbent"
                    obj cert.Lp.Cert.objective
            | c ->
                errorf ctx ~code:"CERT101" ~loc:(Diag.Node nid)
                  "integral fathom without an optimal LP claim (%s)"
                  (claim_str c))
        | Lp.Cert.F_bound -> (
            match n.Lp.Cert.claim with
            | Lp.Cert.Lp_optimal { obj; _ } -> (
                match Hashtbl.find_opt ctx.node_bounds nid with
                | Some (Some b) ->
                    if Qd.lt b (fathom_floor ctx ~ref_obj:obj) then
                      errorf ctx ~code:"CERT105" ~loc:(Diag.Node nid)
                        ~witness:[ qstr b ]
                        "bound-fathomed node's exact dual bound %s is below \
                         the final objective %.9g minus the gap contract"
                        (qstr b) cert.Lp.Cert.objective
                | Some None ->
                    errorf ctx ~code:"CERT105" ~loc:(Diag.Node nid)
                      "bound-fathomed node's dual bound is not finite"
                | None -> ())
            | c ->
                errorf ctx ~code:"CERT105" ~loc:(Diag.Node nid)
                  "bound fathom without an optimal LP claim (%s)"
                  (claim_str c))
        | Lp.Cert.F_dominated -> (
            match node_box ctx n with
            | None -> ()
            | Some box -> (
                match ancestor_bound ctx n box with
                | None ->
                    errorf ctx ~code:"CERT101" ~loc:(Diag.Node nid)
                      "dominated node has no dual evidence on its ancestor \
                       chain"
                | Some None ->
                    errorf ctx ~code:"CERT105" ~loc:(Diag.Node nid)
                      "dominated node's ancestor bound is not finite"
                | Some (Some b) ->
                    if Qd.lt b (fathom_floor ctx ~ref_obj:n.Lp.Cert.bound)
                    then
                      errorf ctx ~code:"CERT105" ~loc:(Diag.Node nid)
                        ~witness:[ qstr b ]
                        "dominated node's exact ancestor bound %s is below \
                         the final objective %.9g minus the gap contract"
                        (qstr b) cert.Lp.Cert.objective))
        | Lp.Cert.F_budget ->
            errorf ctx ~code:"CERT107" ~loc:(Diag.Node nid)
              "optimal status with a budget-abandoned node"
        | Lp.Cert.F_branched { bvar; down_id; down_ub; up_id; up_lb } ->
            List.iter
              (fun (cid, mk) ->
                if not (Hashtbl.mem ctx.by_id cid) then
                  (* the child was never processed (the run closed the gap
                     first); cover its box with this node's own duals *)
                  match n.Lp.Cert.claim with
                  | Lp.Cert.Lp_optimal { obj; duals }
                    when Array.length duals = ctx.m -> (
                      match node_box ctx n with
                      | None -> ()
                      | Some (lb, ub) -> (
                          let lb = Array.copy lb and ub = Array.copy ub in
                          mk lb ub;
                          match dual_bound ctx ~use_obj:true duals lb ub with
                          | None ->
                              errorf ctx ~code:"CERT105" ~loc:(Diag.Node nid)
                                "unprocessed child %d has no finite covering \
                                 bound"
                                cid
                          | Some bb ->
                              if Qd.lt bb (fathom_floor ctx ~ref_obj:obj)
                              then
                                errorf ctx ~code:"CERT105"
                                  ~loc:(Diag.Node nid) ~witness:[ qstr bb ]
                                  "unprocessed child %d's exact covering \
                                   bound %s is below the final objective \
                                   %.9g minus the gap contract"
                                  cid (qstr bb) cert.Lp.Cert.objective))
                  | _ ->
                      errorf ctx ~code:"CERT101" ~loc:(Diag.Node nid)
                        "child %d missing and parent holds no duals to \
                         cover it"
                        cid)
              [
                (down_id, fun _lb ub -> ub.(bvar) <- down_ub);
                (up_id, fun lb _ub -> lb.(bvar) <- up_lb);
              ])
      cert.Lp.Cert.nodes

(* An Infeasible verdict is a completeness claim with no incumbent: every
   recorded node must either branch (with both children present) or carry
   infeasibility evidence. *)
let check_completeness_infeasible ctx =
  List.iter
    (fun (n : Lp.Cert.node) ->
      match n.Lp.Cert.fathom with
      | Lp.Cert.F_infeasible -> ()
      | Lp.Cert.F_branched { down_id; up_id; _ } ->
          List.iter
            (fun cid ->
              if not (Hashtbl.mem ctx.by_id cid) then
                errorf ctx ~code:"CERT101" ~loc:(Diag.Node n.Lp.Cert.id)
                  "infeasible verdict with unprocessed child %d" cid)
            [ down_id; up_id ]
      | _ ->
          errorf ctx ~code:"CERT107" ~loc:(Diag.Node n.Lp.Cert.id)
            "infeasible verdict but node was not fathomed as infeasible")
    ctx.cert.Lp.Cert.nodes

(* ------------------------------------------------------------------ *)
(* Root reduced-cost fixing (CERT106 / CERT108)                        *)
(* ------------------------------------------------------------------ *)

let check_fixes ctx =
  let cert = ctx.cert and raw = ctx.raw in
  if cert.Lp.Cert.fixes = [] then ()
  else begin
    (* the post-fixing root box must differ from the model box exactly at
       the fixed variables, pinned to the recorded side *)
    let side_of = Hashtbl.create 16 in
    List.iter
      (fun (j, s) ->
        if j < 0 || j >= raw.Lp.Model.n || not raw.Lp.Model.integer.(j) then
          errorf ctx ~code:"CERT106" ~loc:(Diag.Column j)
            "reduced-cost fix on an invalid or continuous variable"
        else Hashtbl.replace side_of j s)
      cert.Lp.Cert.fixes;
    if Array.length cert.Lp.Cert.root_lb = raw.Lp.Model.n then
      for j = 0 to raw.Lp.Model.n - 1 do
        let want_lb, want_ub =
          match Hashtbl.find_opt side_of j with
          | None -> (raw.Lp.Model.lb.(j), raw.Lp.Model.ub.(j))
          | Some Lp.Cert.Lower -> (raw.Lp.Model.lb.(j), raw.Lp.Model.lb.(j))
          | Some Lp.Cert.Upper -> (raw.Lp.Model.ub.(j), raw.Lp.Model.ub.(j))
        in
        if
          cert.Lp.Cert.root_lb.(j) <> want_lb
          || cert.Lp.Cert.root_ub.(j) <> want_ub
        then
          errorf ctx ~code:"CERT106" ~loc:(Diag.Column j)
            "post-fixing root box [%.9g, %.9g] inconsistent with the \
             recorded fixes (expected [%.9g, %.9g])"
            cert.Lp.Cert.root_lb.(j) cert.Lp.Cert.root_ub.(j) want_lb want_ub
      done;
    (* exclusion soundness, only meaningful when the final verdict claims
       optimality over the un-fixed box *)
    if cert.Lp.Cert.status = Lp.Cert.Optimal then
      match cert.Lp.Cert.root_duals with
      | None ->
          errorf ctx ~code:"CERT101" ~loc:Diag.Global
            "reduced-cost fixes recorded without the pre-fixing root duals"
      | Some u when Array.length u <> ctx.m ->
          errorf ctx ~code:"CERT101" ~loc:Diag.Global
            "pre-fixing root duals have %d entries, model has %d rows"
            (Array.length u) ctx.m
      | Some u ->
          let r, t = reduced_costs ctx ~use_obj:true u in
          (* per-variable exact min contribution over the *model* box; the
             excluded region is a subset of that box with x_j restricted,
             so bounding over it is sound for every fix *)
          let contrib =
            Array.init raw.Lp.Model.n (fun j ->
                let s = Qd.sign r.(j) in
                if s > 0 then
                  if Float.is_finite raw.Lp.Model.lb.(j) then
                    Some (Qd.mul r.(j) (q ctx raw.Lp.Model.lb.(j)))
                  else None
                else if s < 0 then
                  if Float.is_finite raw.Lp.Model.ub.(j) then
                    Some (Qd.mul r.(j) (q ctx raw.Lp.Model.ub.(j)))
                  else None
                else Some Qd.zero)
          in
          let finite = Array.for_all Option.is_some contrib in
          let total =
            if finite then
              Some
                (Array.fold_left
                   (fun acc c -> Qd.add acc (Option.get c))
                   t contrib)
            else None
          in
          Hashtbl.iter
            (fun j s ->
              (* x_j restricted to the excluded half of its interval *)
              let lo, hi =
                match s with
                | Lp.Cert.Lower ->
                    (raw.Lp.Model.lb.(j) +. 1.0, raw.Lp.Model.ub.(j))
                | Lp.Cert.Upper ->
                    (raw.Lp.Model.lb.(j), raw.Lp.Model.ub.(j) -. 1.0)
              in
              if Float.is_finite lo && Float.is_finite hi && lo > hi then
                () (* excluded region empty — trivially sound *)
              else
                let excl =
                  let sgn = Qd.sign r.(j) in
                  if sgn > 0 then
                    if Float.is_finite lo then Some (Qd.mul r.(j) (q ctx lo))
                    else None
                  else if sgn < 0 then
                    if Float.is_finite hi then Some (Qd.mul r.(j) (q ctx hi))
                    else None
                  else Some Qd.zero
                in
                match (total, contrib.(j), excl) with
                | Some tot, Some cj, Some ej ->
                    let beta = Qd.add (Qd.sub tot cj) ej in
                    if
                      Qd.lt beta
                        (fathom_floor ctx ~ref_obj:cert.Lp.Cert.root_obj)
                    then
                      errorf ctx ~code:"CERT108" ~loc:(Diag.Column j)
                        ~witness:[ qstr beta ]
                        "reduced-cost fix not justified: excluded region's \
                         exact bound %s is below the final objective %.9g \
                         minus the gap contract"
                        (qstr beta) cert.Lp.Cert.objective
                | _ ->
                    errorf ctx ~code:"CERT108" ~loc:(Diag.Column j)
                      "reduced-cost fix not justified: excluded region has \
                       no finite exact bound")
            side_of
  end

(* ------------------------------------------------------------------ *)
(* Structure and status                                                *)
(* ------------------------------------------------------------------ *)

let check_structure ctx =
  let cert = ctx.cert in
  let n_nodes = List.length cert.Lp.Cert.nodes in
  List.iter
    (fun (n : Lp.Cert.node) ->
      if Hashtbl.mem ctx.by_id n.Lp.Cert.id then
        errorf ctx ~code:"CERT101" ~loc:(Diag.Node n.Lp.Cert.id)
          "duplicate node id %d" n.Lp.Cert.id
      else Hashtbl.replace ctx.by_id n.Lp.Cert.id n)
    cert.Lp.Cert.nodes;
  let boxes_ok =
    n_nodes = 0
    || Array.length cert.Lp.Cert.root_lb = ctx.raw.Lp.Model.n
       && Array.length cert.Lp.Cert.root_ub = ctx.raw.Lp.Model.n
  in
  if not boxes_ok then
    errorf ctx ~code:"CERT101" ~loc:Diag.Global
      "root box has %d/%d entries, model has %d variables"
      (Array.length cert.Lp.Cert.root_lb)
      (Array.length cert.Lp.Cert.root_ub)
      ctx.raw.Lp.Model.n;
  if n_nodes > 0 then begin
    match Hashtbl.find_opt ctx.by_id 0 with
    | Some r when r.Lp.Cert.parent = -1 && r.Lp.Cert.branch = None -> ()
    | Some _ ->
        errorf ctx ~code:"CERT101" ~loc:(Diag.Node 0)
          "node 0 is not a well-formed root"
    | None ->
        errorf ctx ~code:"CERT101" ~loc:Diag.Global
          "certificate records %d nodes but no root (id 0)" n_nodes
  end;
  boxes_ok

let check_status ctx =
  let cert = ctx.cert in
  match cert.Lp.Cert.status with
  | Lp.Cert.Optimal ->
      if cert.Lp.Cert.lp_limited > 0 then
        errorf ctx ~code:"CERT107" ~loc:Diag.Global
          "optimal status with %d node LPs abandoned at their pivot cap"
          cert.Lp.Cert.lp_limited;
      if cert.Lp.Cert.nodes = [] then
        errorf ctx ~code:"CERT101" ~loc:Diag.Global
          "optimal status with an empty node log"
  | Lp.Cert.Infeasible ->
      if cert.Lp.Cert.nodes = [] then
        errorf ctx ~code:"CERT101" ~loc:Diag.Global
          "infeasible status with an empty node log"
  | Lp.Cert.Feasible | Lp.Cert.Unbounded | Lp.Cert.Unknown -> ()

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let check raw cert =
  let ctx =
    {
      raw;
      cert;
      m = Array.length raw.Lp.Model.rows;
      qcache = Hashtbl.create 1024;
      by_id = Hashtbl.create 256;
      node_bounds = Hashtbl.create 256;
      diags = [];
      counts = Hashtbl.create 16;
    }
  in
  let boxes_ok = check_structure ctx in
  check_status ctx;
  check_incumbent ctx;
  check_incumbent_log ctx;
  List.iter
    (fun (n : Lp.Cert.node) ->
      check_branch_edit ctx n;
      check_branch_arith ctx n;
      check_incumbent_at ctx n;
      let box = if boxes_ok then node_box ctx n else None in
      if boxes_ok && box = None then
        errorf ctx ~code:"CERT101" ~loc:(Diag.Node n.Lp.Cert.id)
          "node %d's box cannot be reconstructed (broken parent chain)"
          n.Lp.Cert.id;
      check_claim ctx n box)
    cert.Lp.Cert.nodes;
  if boxes_ok then begin
    (match cert.Lp.Cert.status with
    | Lp.Cert.Optimal -> check_completeness_optimal ctx
    | Lp.Cert.Infeasible -> check_completeness_infeasible ctx
    | _ -> ());
    check_fixes ctx
  end;
  List.rev ctx.diags

let check_result model (r : Lp.Milp.result) =
  match r.Lp.Milp.cert with
  | None ->
      [
        Diag.make Diag.Error ~code:"CERT101" ~pass:pass_name ~loc:Diag.Global
          "solve carries no certificate (certificates off, or cold-start \
           mode)";
      ]
  | Some c -> check (Lp.Model.to_raw model) c
