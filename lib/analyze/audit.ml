let pass_name = "audit"
let max_reports = 25

(* Contract tolerances (see DESIGN.md §3h). The arithmetic below is exact;
   what is checked is the solver's *published* accuracy contract, so every
   threshold is an explicit constant here rather than an epsilon hidden in
   a float comparison.
   - [feas_eps]: Model.check's default feasibility tolerance (1e-6).
   - [lp_rel]: Simplex.resolve's relative objective accuracy (1e-6).
   - [inc_slack]: Milp's incumbent acceptance slack (1e-9). *)
let feas_eps = 1e-6
let lp_rel = 1e-6
let inc_slack = 1e-9

type ctx = {
  mutable raw : Lp.Model.raw;
      (* verified cut rows are folded in progressively, so node duals and
         later cut derivations reference the same extended row system the
         solver actually used *)
  cert : Lp.Cert.t;
  mutable m : int;  (** row count, including folded-in cut rows *)
  qcache : (float, Qd.t) Hashtbl.t;
      (* model coefficients repeat massively (0, ±1, shared bounds); caching
         the float→Qd conversion keeps the audit linear in nnz, not in
         nnz × limb work *)
  by_id : (int, Lp.Cert.node) Hashtbl.t;
  node_bounds : (int, Qd.t option) Hashtbl.t;
      (* exact dual bound per Lp_optimal node, filled by the claim checks
         and reused by the pruning replay; [None] = -infinity *)
  mutable diags : Diag.t list;  (* newest first *)
  counts : (string, int) Hashtbl.t;
}

let report ctx sev ~code ~loc ?witness msg =
  let seen = Option.value ~default:0 (Hashtbl.find_opt ctx.counts code) in
  Hashtbl.replace ctx.counts code (seen + 1);
  if seen < max_reports then
    ctx.diags <- Diag.make ?witness sev ~code ~pass:pass_name ~loc msg :: ctx.diags
  else if seen = max_reports then
    ctx.diags <-
      Diag.make sev ~code ~pass:pass_name ~loc:Diag.Global
        (Printf.sprintf "further %s findings suppressed (capped at %d)" code
           max_reports)
      :: ctx.diags

let errorf ctx ~code ~loc ?witness fmt =
  Printf.ksprintf (report ctx Diag.Error ~code ~loc ?witness) fmt

(* Cached exact conversion. Finite floats only — callers deal with the
   infinities structurally. *)
let q ctx f =
  match Hashtbl.find_opt ctx.qcache f with
  | Some v -> v
  | None ->
      let v = Qd.of_float f in
      Hashtbl.add ctx.qcache f v;
      v

let qstr x = Printf.sprintf "%.9g" (Qd.to_float x)

(* ------------------------------------------------------------------ *)
(* Exact dual bounds (Neumaier–Shcherbina)                             *)
(* ------------------------------------------------------------------ *)

(* Clamp a float multiplier into the sign cone its row sense requires.
   Any clamped vector still yields a valid bound — clamping (like any
   float drift) can only weaken it, never falsely strengthen it. Non-
   finite entries are weakened to 0 for the same reason. *)
let clamp sense ui =
  if not (Float.is_finite ui) then 0.0
  else
    match sense with
    | Lp.Model.Le -> if ui < 0.0 then 0.0 else ui
    | Lp.Model.Ge -> if ui > 0.0 then 0.0 else ui
    | Lp.Model.Eq -> ui

(* [reduced_costs ctx ~use_obj u] = (r, t) with r = c + Aᵀû and
   t = -û·b, where û is the sense-clamped u and c is the objective (or 0
   for Farkas checks). Everything exact. *)
let reduced_costs ctx ~use_obj u =
  let raw = ctx.raw in
  let r =
    Array.init raw.Lp.Model.n (fun j ->
        if use_obj then q ctx raw.Lp.Model.obj.(j) else Qd.zero)
  in
  let t = ref Qd.zero in
  Array.iteri
    (fun i row ->
      let ui = clamp raw.Lp.Model.senses.(i) u.(i) in
      if ui <> 0.0 then begin
        let uq = q ctx ui in
        t := Qd.sub !t (Qd.mul uq (q ctx raw.Lp.Model.rhs.(i)));
        Array.iter
          (fun (j, a) -> r.(j) <- Qd.add r.(j) (Qd.mul uq (q ctx a)))
          row
      end)
    raw.Lp.Model.rows;
  (r, !t)

(* min over the box [lb, ub] of Σ r_j x_j; [None] = -infinity (a negative
   reduced cost against an infinite upper bound, or positive against an
   infinite lower bound). *)
let box_min ctx r lb ub =
  let acc = ref Qd.zero and finite = ref true in
  for j = 0 to ctx.raw.Lp.Model.n - 1 do
    let s = Qd.sign r.(j) in
    if s > 0 then
      if Float.is_finite lb.(j) then
        acc := Qd.add !acc (Qd.mul r.(j) (q ctx lb.(j)))
      else finite := false
    else if s < 0 then
      if Float.is_finite ub.(j) then
        acc := Qd.add !acc (Qd.mul r.(j) (q ctx ub.(j)))
      else finite := false
  done;
  if !finite then Some !acc else None

(* Safe exact bound certified by the float vector [u] on
   min {c·x : Ax sense b, lb <= x <= ub} — valid for *any* u. *)
let dual_bound ctx ~use_obj u lb ub =
  let r, t = reduced_costs ctx ~use_obj u in
  match box_min ctx r lb ub with
  | None -> None
  | Some bm -> Some (Qd.add t bm)

(* ------------------------------------------------------------------ *)
(* Tree bookkeeping                                                    *)
(* ------------------------------------------------------------------ *)

(* Walk [node]'s parent chain collecting branch edits, then replay them
   onto a copy of the post-fixing root box. [None] when the chain is
   broken or cyclic (reported as CERT101/CERT106 elsewhere). *)
let node_box ctx (node : Lp.Cert.node) =
  let cert = ctx.cert in
  let rec edits acc n guard =
    if guard > 1_000_000 then None
    else
      match n.Lp.Cert.branch with
      | None -> Some acc
      | Some e -> (
          match Hashtbl.find_opt ctx.by_id n.Lp.Cert.parent with
          | Some p -> edits (e :: acc) p (guard + 1)
          | None -> None)
  in
  match edits [] node 0 with
  | None -> None
  | Some es ->
      let lb = Array.copy cert.Lp.Cert.root_lb
      and ub = Array.copy cert.Lp.Cert.root_ub in
      let ok =
        List.for_all
          (fun (j, side, v) ->
            if j < 0 || j >= ctx.raw.Lp.Model.n then false
            else begin
              (match side with
              | Lp.Cert.Lower -> lb.(j) <- v
              | Lp.Cert.Upper -> ub.(j) <- v);
              true
            end)
          es
      in
      if ok then Some (lb, ub) else None

let claim_str = function
  | Lp.Cert.Lp_optimal _ -> "optimal"
  | Lp.Cert.Lp_infeasible _ -> "infeasible"
  | Lp.Cert.Lp_unsolved -> "unsolved"

(* ------------------------------------------------------------------ *)
(* Incumbent checks (CERT102 / CERT107)                                *)
(* ------------------------------------------------------------------ *)

let check_incumbent ctx =
  let cert = ctx.cert and raw = ctx.raw in
  let has_inc =
    match cert.Lp.Cert.status with
    | Lp.Cert.Optimal | Lp.Cert.Feasible -> true
    | Lp.Cert.Infeasible | Lp.Cert.Unbounded | Lp.Cert.Unknown -> false
  in
  match (cert.Lp.Cert.incumbent, has_inc) with
  | None, false -> ()
  | None, true ->
      errorf ctx ~code:"CERT107" ~loc:Diag.Global
        "status %s claims an incumbent but the certificate records none"
        (Lp.Cert.status_label cert.Lp.Cert.status)
  | Some _, false ->
      errorf ctx ~code:"CERT107" ~loc:Diag.Global
        "status %s forbids an incumbent but the certificate records one"
        (Lp.Cert.status_label cert.Lp.Cert.status)
  | Some x, true ->
      if Array.length x <> raw.Lp.Model.n then
        errorf ctx ~code:"CERT101" ~loc:Diag.Global
          "incumbent has %d entries, model has %d variables" (Array.length x)
          raw.Lp.Model.n
      else begin
        let epsq = q ctx feas_eps in
        for j = 0 to raw.Lp.Model.n - 1 do
          if not (Float.is_finite x.(j)) then
            errorf ctx ~code:"CERT102" ~loc:(Diag.Column j)
              "incumbent entry is not finite"
          else begin
            let xq = q ctx x.(j) in
            if
              Float.is_finite raw.Lp.Model.lb.(j)
              && Qd.lt xq (Qd.sub (q ctx raw.Lp.Model.lb.(j)) epsq)
            then
              errorf ctx ~code:"CERT102" ~loc:(Diag.Column j)
                "incumbent %.9g below lower bound %.9g" x.(j)
                raw.Lp.Model.lb.(j);
            if
              Float.is_finite raw.Lp.Model.ub.(j)
              && Qd.lt (Qd.add (q ctx raw.Lp.Model.ub.(j)) epsq) xq
            then
              errorf ctx ~code:"CERT102" ~loc:(Diag.Column j)
                "incumbent %.9g above upper bound %.9g" x.(j)
                raw.Lp.Model.ub.(j);
            (* integrality is exact — the solver snaps accepted incumbents,
               so zero tolerance is the honest check *)
            if raw.Lp.Model.integer.(j) && not (Qd.is_integer xq) then
              errorf ctx ~code:"CERT102" ~loc:(Diag.Column j)
                "integer variable holds non-integral value %.17g" x.(j)
          end
        done;
        Array.iteri
          (fun i row ->
            let lhs =
              Qd.sum (Array.length row) (fun k ->
                  let jj, a = row.(k) in
                  Qd.mul (q ctx a) (q ctx x.(jj)))
            in
            let rhs = q ctx raw.Lp.Model.rhs.(i) in
            let bad =
              match raw.Lp.Model.senses.(i) with
              | Lp.Model.Le -> Qd.lt (Qd.add rhs epsq) lhs
              | Lp.Model.Ge -> Qd.lt lhs (Qd.sub rhs epsq)
              | Lp.Model.Eq ->
                  Qd.lt (Qd.add rhs epsq) lhs || Qd.lt lhs (Qd.sub rhs epsq)
            in
            if bad then
              errorf ctx ~code:"CERT102" ~loc:(Diag.Row i)
                ~witness:[ qstr lhs; Printf.sprintf "%.9g" raw.Lp.Model.rhs.(i) ]
                "incumbent violates constraint row (exact lhs %s)" (qstr lhs))
          raw.Lp.Model.rows;
        (* recorded objective must be the incumbent's exact objective *)
        if Float.is_finite cert.Lp.Cert.objective then begin
          let exact =
            Qd.sum raw.Lp.Model.n (fun j ->
                Qd.mul (q ctx raw.Lp.Model.obj.(j)) (q ctx x.(j)))
          in
          let claimed = q ctx cert.Lp.Cert.objective in
          let tol =
            q ctx (lp_rel *. Float.max 1.0 (Float.abs cert.Lp.Cert.objective))
          in
          if
            Qd.lt (Qd.add claimed tol) exact
            || Qd.lt exact (Qd.sub claimed tol)
          then
            errorf ctx ~code:"CERT107" ~loc:Diag.Global
              ~witness:[ qstr exact ]
              "recorded objective %.9g disagrees with the incumbent's exact \
               objective %s"
              cert.Lp.Cert.objective (qstr exact)
        end
        else
          errorf ctx ~code:"CERT107" ~loc:Diag.Global
            "incumbent present but recorded objective is not finite"
      end

let check_incumbent_log ctx =
  let cert = ctx.cert in
  match cert.Lp.Cert.incumbent with
  | None ->
      if cert.Lp.Cert.incumbents <> [] then
        errorf ctx ~code:"CERT107" ~loc:Diag.Global
          "incumbent log has %d entries but no final incumbent"
          (List.length cert.Lp.Cert.incumbents)
  | Some _ when not (Float.is_finite cert.Lp.Cert.objective) -> ()
  | Some _ -> (
      let zq = q ctx cert.Lp.Cert.objective in
      let floor_ = Qd.sub zq (q ctx inc_slack) in
      List.iter
        (fun (id, v) ->
          if (not (Float.is_finite v)) || Qd.lt (q ctx v) floor_ then
            errorf ctx ~code:"CERT107" ~loc:(Diag.Node id)
              "accepted incumbent %.9g is better than the final objective \
               %.9g — stale final incumbent"
              v cert.Lp.Cert.objective)
        cert.Lp.Cert.incumbents;
      match List.rev cert.Lp.Cert.incumbents with
      | [] ->
          errorf ctx ~code:"CERT107" ~loc:Diag.Global
            "final incumbent present but the acceptance log is empty"
      | (_, last) :: _ ->
          if
            Float.is_finite last
            && not
                 (Qd.leq
                    (Qd.sub (q ctx last) zq)
                    (q ctx inc_slack))
          then
            errorf ctx ~code:"CERT107" ~loc:Diag.Global
              "last accepted incumbent %.9g does not match the final \
               objective %.9g"
              last cert.Lp.Cert.objective)

(* ------------------------------------------------------------------ *)
(* Per-node checks (CERT101 / CERT103 / CERT104 / CERT106)             *)
(* ------------------------------------------------------------------ *)

let check_branch_edit ctx (n : Lp.Cert.node) =
  match n.Lp.Cert.branch with
  | None ->
      if n.Lp.Cert.parent <> -1 then
        errorf ctx ~code:"CERT106" ~loc:(Diag.Node n.Lp.Cert.id)
          "non-root node %d carries no branch edit" n.Lp.Cert.id
  | Some (j, side, v) -> (
      if j < 0 || j >= ctx.raw.Lp.Model.n then
        errorf ctx ~code:"CERT106" ~loc:(Diag.Node n.Lp.Cert.id)
          "branch variable %d out of range" j
      else if not ctx.raw.Lp.Model.integer.(j) then
        errorf ctx ~code:"CERT106" ~loc:(Diag.Node n.Lp.Cert.id)
          "branch on continuous variable %d" j
      else if (not (Float.is_finite v)) || not (Qd.is_integer (q ctx v)) then
        errorf ctx ~code:"CERT106" ~loc:(Diag.Node n.Lp.Cert.id)
          "branch bound %.17g on variable %d is not integral" v j;
      match Hashtbl.find_opt ctx.by_id n.Lp.Cert.parent with
      | None ->
          errorf ctx ~code:"CERT101" ~loc:(Diag.Node n.Lp.Cert.id)
            "node %d references missing parent %d" n.Lp.Cert.id
            n.Lp.Cert.parent
      | Some p -> (
          if n.Lp.Cert.depth <> p.Lp.Cert.depth + 1 then
            errorf ctx ~code:"CERT106" ~loc:(Diag.Node n.Lp.Cert.id)
              "depth %d inconsistent with parent depth %d" n.Lp.Cert.depth
              p.Lp.Cert.depth;
          match p.Lp.Cert.fathom with
          | Lp.Cert.F_branched { bvar; down_id; down_ub; up_id; up_lb } ->
              let expect =
                if n.Lp.Cert.id = down_id then Some (Lp.Cert.Upper, down_ub)
                else if n.Lp.Cert.id = up_id then Some (Lp.Cert.Lower, up_lb)
                else None
              in
              (match expect with
              | None ->
                  errorf ctx ~code:"CERT106" ~loc:(Diag.Node n.Lp.Cert.id)
                    "node %d is not among parent %d's recorded children"
                    n.Lp.Cert.id p.Lp.Cert.id
              | Some (eside, ev) ->
                  if side <> eside || v <> ev || j <> bvar then
                    errorf ctx ~code:"CERT106" ~loc:(Diag.Node n.Lp.Cert.id)
                      "branch edit (var %d, %s, %.9g) disagrees with parent \
                       %d's branch record (var %d)"
                      j
                      (match side with
                      | Lp.Cert.Lower -> "lower"
                      | Lp.Cert.Upper -> "upper")
                      v p.Lp.Cert.id bvar)
          | _ ->
              errorf ctx ~code:"CERT106" ~loc:(Diag.Node n.Lp.Cert.id)
                "parent %d of node %d did not branch" p.Lp.Cert.id
                n.Lp.Cert.id))

(* The two children of a branch must partition the integer points of the
   parent interval: up_lb = down_ub + 1, both integral. *)
let check_branch_arith ctx (n : Lp.Cert.node) =
  match n.Lp.Cert.fathom with
  | Lp.Cert.F_branched { bvar; down_ub; up_lb; _ } ->
      let bad =
        (not (Float.is_finite down_ub))
        || (not (Float.is_finite up_lb))
        || (not (Qd.is_integer (q ctx down_ub)))
        || not (Qd.equal (q ctx up_lb) (Qd.add (q ctx down_ub) (Qd.of_int 1)))
      in
      if bad then
        errorf ctx ~code:"CERT106" ~loc:(Diag.Node n.Lp.Cert.id)
          "branch on variable %d does not partition the interval (x <= \
           %.9g | x >= %.9g)"
          bvar down_ub up_lb
  | _ -> ()

let check_claim ctx (n : Lp.Cert.node) box =
  let nid = n.Lp.Cert.id in
  match n.Lp.Cert.claim with
  | Lp.Cert.Lp_unsolved -> ()
  | Lp.Cert.Lp_optimal { obj; duals } -> (
      if not (Float.is_finite obj) then
        errorf ctx ~code:"CERT101" ~loc:(Diag.Node nid)
          "optimal LP claim with non-finite objective"
      else if Array.length duals <> ctx.m then
        errorf ctx ~code:"CERT101" ~loc:(Diag.Node nid)
          "dual vector has %d entries, model has %d rows" (Array.length duals)
          ctx.m
      else
        match box with
        | None -> ()
        | Some (lb, ub) -> (
            let beta = dual_bound ctx ~use_obj:true duals lb ub in
            Hashtbl.replace ctx.node_bounds nid beta;
            let tol = q ctx (lp_rel *. Float.max 1.0 (Float.abs obj)) in
            match beta with
            | None ->
                errorf ctx ~code:"CERT103" ~loc:(Diag.Node nid)
                  "dual vector certifies no finite bound (claimed %.9g)" obj
            | Some b ->
                if Qd.lt b (Qd.sub (q ctx obj) tol) then
                  errorf ctx ~code:"CERT103" ~loc:(Diag.Node nid)
                    ~witness:[ qstr b; Printf.sprintf "%.9g" obj ]
                    "exact dual bound %s is below the claimed LP objective \
                     %.9g"
                    (qstr b) obj))
  | Lp.Cert.Lp_infeasible ev -> (
      match ev with
      | None ->
          errorf ctx ~code:"CERT101" ~loc:(Diag.Node nid)
            "infeasibility claimed without evidence"
      | Some (Lp.Cert.Empty_box j) -> (
          if j < 0 || j >= ctx.raw.Lp.Model.n then
            errorf ctx ~code:"CERT106" ~loc:(Diag.Node nid)
              "empty-box witness variable %d out of range" j
          else
            match box with
            | None -> ()
            | Some (lb, ub) ->
                let crossed =
                  Float.is_finite lb.(j)
                  && (ub.(j) = Float.neg_infinity
                     || (Float.is_finite ub.(j)
                        && Qd.lt (q ctx ub.(j)) (q ctx lb.(j))))
                in
                if not crossed then
                  errorf ctx ~code:"CERT104" ~loc:(Diag.Node nid)
                    "claimed empty box on variable %d, but [%.9g, %.9g] is \
                     not empty"
                    j lb.(j) ub.(j))
      | Some (Lp.Cert.Ray u) -> (
          if Array.length u <> ctx.m then
            errorf ctx ~code:"CERT101" ~loc:(Diag.Node nid)
              "Farkas ray has %d entries, model has %d rows" (Array.length u)
              ctx.m
          else
            match box with
            | None -> ()
            | Some (lb, ub) -> (
                match dual_bound ctx ~use_obj:false u lb ub with
                | Some b when Qd.sign b > 0 -> ()
                | Some b ->
                    errorf ctx ~code:"CERT104" ~loc:(Diag.Node nid)
                      ~witness:[ qstr b ]
                      "Farkas ray proves only %s > 0 is required for \
                       infeasibility"
                      (qstr b)
                | None ->
                    errorf ctx ~code:"CERT104" ~loc:(Diag.Node nid)
                      "Farkas ray certifies no finite bound")))

let check_incumbent_at ctx (n : Lp.Cert.node) =
  let cert = ctx.cert in
  if Float.is_finite n.Lp.Cert.incumbent_at then
    match cert.Lp.Cert.incumbent with
    | None ->
        errorf ctx ~code:"CERT107" ~loc:(Diag.Node n.Lp.Cert.id)
          "node observed incumbent %.9g but the run ended with none"
          n.Lp.Cert.incumbent_at
    | Some _ ->
        if
          Float.is_finite cert.Lp.Cert.objective
          && Qd.lt
               (q ctx n.Lp.Cert.incumbent_at)
               (Qd.sub (q ctx cert.Lp.Cert.objective) (q ctx inc_slack))
        then
          errorf ctx ~code:"CERT107" ~loc:(Diag.Node n.Lp.Cert.id)
            "node observed incumbent %.9g better than the final objective \
             %.9g — lost incumbent update"
            n.Lp.Cert.incumbent_at cert.Lp.Cert.objective

(* ------------------------------------------------------------------ *)
(* Pruning replay (CERT105 / CERT107)                                  *)
(* ------------------------------------------------------------------ *)

(* Exact bound for [node]'s box certified by the nearest ancestor (or
   self) holding an optimal LP claim. Used for F_dominated nodes and for
   branched children that were never processed. *)
let ancestor_bound ctx (node : Lp.Cert.node) box =
  let rec up (n : Lp.Cert.node) guard =
    if guard > 1_000_000 then None
    else
      match n.Lp.Cert.claim with
      | Lp.Cert.Lp_optimal { duals; _ } when Array.length duals = ctx.m ->
          Some duals
      | _ ->
          if n.Lp.Cert.parent < 0 then None
          else
            Option.bind
              (Hashtbl.find_opt ctx.by_id n.Lp.Cert.parent)
              (fun p -> up p (guard + 1))
  in
  match up node 0 with
  | None -> None
  | Some duals ->
      let lb, ub = box in
      Some (dual_bound ctx ~use_obj:true duals lb ub)

(* Fathom threshold: a subtree is soundly excluded if its exact bound is
   >= z_final - gap_tol·max(1,|z|) - lp_rel·max(1,|bound|) — the solver's
   published gap contract plus its LP accuracy contract. *)
let fathom_floor ctx ~ref_obj =
  let z = ctx.cert.Lp.Cert.objective in
  let slack =
    (ctx.cert.Lp.Cert.gap_tol *. Float.max 1.0 (Float.abs z))
    +. (lp_rel *. Float.max 1.0 (Float.abs ref_obj))
  in
  Qd.sub (q ctx z) (q ctx slack)

let check_completeness_optimal ctx =
  let cert = ctx.cert in
  if not (Float.is_finite cert.Lp.Cert.objective) then ()
  else
    List.iter
      (fun (n : Lp.Cert.node) ->
        let nid = n.Lp.Cert.id in
        match n.Lp.Cert.fathom with
        | Lp.Cert.F_infeasible -> (
            match n.Lp.Cert.claim with
            | Lp.Cert.Lp_infeasible _ -> ()
            | c ->
                errorf ctx ~code:"CERT101" ~loc:(Diag.Node nid)
                  "node fathomed as infeasible but its LP claim is %s"
                  (claim_str c))
        | Lp.Cert.F_integral -> (
            match n.Lp.Cert.claim with
            | Lp.Cert.Lp_optimal { obj; _ } ->
                if
                  Float.is_finite obj
                  && Qd.lt (q ctx obj)
                       (Qd.sub
                          (q ctx cert.Lp.Cert.objective)
                          (q ctx inc_slack))
                then
                  errorf ctx ~code:"CERT107" ~loc:(Diag.Node nid)
                    "integral leaf with objective %.9g better than the \
                     final objective %.9g — stale incumbent"
                    obj cert.Lp.Cert.objective
            | c ->
                errorf ctx ~code:"CERT101" ~loc:(Diag.Node nid)
                  "integral fathom without an optimal LP claim (%s)"
                  (claim_str c))
        | Lp.Cert.F_bound -> (
            match n.Lp.Cert.claim with
            | Lp.Cert.Lp_optimal { obj; _ } -> (
                match Hashtbl.find_opt ctx.node_bounds nid with
                | Some (Some b) ->
                    if Qd.lt b (fathom_floor ctx ~ref_obj:obj) then
                      errorf ctx ~code:"CERT105" ~loc:(Diag.Node nid)
                        ~witness:[ qstr b ]
                        "bound-fathomed node's exact dual bound %s is below \
                         the final objective %.9g minus the gap contract"
                        (qstr b) cert.Lp.Cert.objective
                | Some None ->
                    errorf ctx ~code:"CERT105" ~loc:(Diag.Node nid)
                      "bound-fathomed node's dual bound is not finite"
                | None -> ())
            | c ->
                errorf ctx ~code:"CERT105" ~loc:(Diag.Node nid)
                  "bound fathom without an optimal LP claim (%s)"
                  (claim_str c))
        | Lp.Cert.F_dominated -> (
            match node_box ctx n with
            | None -> ()
            | Some box -> (
                match ancestor_bound ctx n box with
                | None ->
                    errorf ctx ~code:"CERT101" ~loc:(Diag.Node nid)
                      "dominated node has no dual evidence on its ancestor \
                       chain"
                | Some None ->
                    errorf ctx ~code:"CERT105" ~loc:(Diag.Node nid)
                      "dominated node's ancestor bound is not finite"
                | Some (Some b) ->
                    if Qd.lt b (fathom_floor ctx ~ref_obj:n.Lp.Cert.bound)
                    then
                      errorf ctx ~code:"CERT105" ~loc:(Diag.Node nid)
                        ~witness:[ qstr b ]
                        "dominated node's exact ancestor bound %s is below \
                         the final objective %.9g minus the gap contract"
                        (qstr b) cert.Lp.Cert.objective))
        | Lp.Cert.F_budget ->
            errorf ctx ~code:"CERT107" ~loc:(Diag.Node nid)
              "optimal status with a budget-abandoned node"
        | Lp.Cert.F_branched { bvar; down_id; down_ub; up_id; up_lb } ->
            List.iter
              (fun (cid, mk) ->
                if not (Hashtbl.mem ctx.by_id cid) then
                  (* the child was never processed (the run closed the gap
                     first); cover its box with this node's own duals *)
                  match n.Lp.Cert.claim with
                  | Lp.Cert.Lp_optimal { obj; duals }
                    when Array.length duals = ctx.m -> (
                      match node_box ctx n with
                      | None -> ()
                      | Some (lb, ub) -> (
                          let lb = Array.copy lb and ub = Array.copy ub in
                          mk lb ub;
                          match dual_bound ctx ~use_obj:true duals lb ub with
                          | None ->
                              errorf ctx ~code:"CERT105" ~loc:(Diag.Node nid)
                                "unprocessed child %d has no finite covering \
                                 bound"
                                cid
                          | Some bb ->
                              if Qd.lt bb (fathom_floor ctx ~ref_obj:obj)
                              then
                                errorf ctx ~code:"CERT105"
                                  ~loc:(Diag.Node nid) ~witness:[ qstr bb ]
                                  "unprocessed child %d's exact covering \
                                   bound %s is below the final objective \
                                   %.9g minus the gap contract"
                                  cid (qstr bb) cert.Lp.Cert.objective))
                  | _ ->
                      errorf ctx ~code:"CERT101" ~loc:(Diag.Node nid)
                        "child %d missing and parent holds no duals to \
                         cover it"
                        cid)
              [
                (down_id, fun _lb ub -> ub.(bvar) <- down_ub);
                (up_id, fun lb _ub -> lb.(bvar) <- up_lb);
              ])
      cert.Lp.Cert.nodes

(* An Infeasible verdict is a completeness claim with no incumbent: every
   recorded node must either branch (with both children present) or carry
   infeasibility evidence. *)
let check_completeness_infeasible ctx =
  List.iter
    (fun (n : Lp.Cert.node) ->
      match n.Lp.Cert.fathom with
      | Lp.Cert.F_infeasible -> ()
      | Lp.Cert.F_branched { down_id; up_id; _ } ->
          List.iter
            (fun cid ->
              if not (Hashtbl.mem ctx.by_id cid) then
                errorf ctx ~code:"CERT101" ~loc:(Diag.Node n.Lp.Cert.id)
                  "infeasible verdict with unprocessed child %d" cid)
            [ down_id; up_id ]
      | _ ->
          errorf ctx ~code:"CERT107" ~loc:(Diag.Node n.Lp.Cert.id)
            "infeasible verdict but node was not fathomed as infeasible")
    ctx.cert.Lp.Cert.nodes

(* ------------------------------------------------------------------ *)
(* Presolve replay (CERT111)                                           *)
(* ------------------------------------------------------------------ *)

(* Replay the recorded bound-tightening events, in order, onto a copy of
   the model box, exact-verifying each one: an integrality rounding
   (t_row = -1) must round the then-current bound to the adjacent
   integer, and an activity-based tightening (t_row = i) must be implied
   by row i's exact minimum rest activity over the then-current box.
   Every event is applied even when it fails (with a CERT111 error), so
   downstream checks — cut validity, the root-box consistency in
   {!check_fixes} — run against the box the solver actually used.
   Returns the post-presolve box B_p. *)
let check_presolve ctx =
  let raw = ctx.raw in
  let n = raw.Lp.Model.n in
  let lb = Array.copy raw.Lp.Model.lb and ub = Array.copy raw.Lp.Model.ub in
  let qone = Qd.of_int 1 in
  List.iteri
    (fun idx (e : Lp.Cert.tighten) ->
      let j = e.Lp.Cert.t_var in
      if j < 0 || j >= n then
        errorf ctx ~code:"CERT111" ~loc:Diag.Global
          "tightening %d targets variable %d out of range" idx j
      else begin
        let v = e.Lp.Cert.t_new in
        let hi = e.Lp.Cert.t_hi in
        let ok =
          if not (Float.is_finite v) then false
          else if e.Lp.Cert.t_row = -1 then
            (* integrality rounding of the then-current bound *)
            raw.Lp.Model.integer.(j)
            && Qd.is_integer (q ctx v)
            &&
            if hi then
              Float.is_finite ub.(j)
              && Qd.leq (q ctx v) (q ctx ub.(j))
              && Qd.lt (Qd.sub (q ctx ub.(j)) qone) (q ctx v)
            else
              Float.is_finite lb.(j)
              && Qd.geq (q ctx v) (q ctx lb.(j))
              && Qd.lt (q ctx v) (Qd.add (q ctx lb.(j)) qone)
          else if
            e.Lp.Cert.t_row < 0
            || e.Lp.Cert.t_row >= Array.length raw.Lp.Model.rows
          then false
          else begin
            (* activity-based tightening from row i, replayed through its
               <=-form view: a ub tightening needs view coefficient
               cj > 0, a lb tightening cj < 0 — which pins the view
               direction for Le/Ge rows and selects it for Eq rows *)
            let i = e.Lp.Cert.t_row in
            let row = raw.Lp.Model.rows.(i) in
            match Array.find_opt (fun (k, _) -> k = j) row with
            | None | Some (_, 0.0) -> false
            | Some (_, a) ->
                let dir =
                  match raw.Lp.Model.senses.(i) with
                  | Lp.Model.Le -> 1.0
                  | Lp.Model.Ge -> -1.0
                  | Lp.Model.Eq ->
                      if hi = (a > 0.0) then 1.0 else -1.0
                in
                let cj = dir *. a in
                if (cj > 0.0) <> hi then false
                else begin
                  (* exact minimum rest activity over the current box *)
                  let ma =
                    try
                      Some
                        (Array.fold_left
                           (fun acc (k, ak) ->
                             if k = j then acc
                             else
                               let ck = dir *. ak in
                               if ck > 0.0 then
                                 if Float.is_finite lb.(k) then
                                   Qd.add acc
                                     (Qd.mul (q ctx ck) (q ctx lb.(k)))
                                 else raise Exit
                               else if ck < 0.0 then
                                 if Float.is_finite ub.(k) then
                                   Qd.add acc
                                     (Qd.mul (q ctx ck) (q ctx ub.(k)))
                                 else raise Exit
                               else acc)
                           Qd.zero row)
                    with Exit -> None
                  in
                  match ma with
                  | None -> false
                  | Some ma ->
                      let cjq = q ctx cj in
                      let d = q ctx (dir *. raw.Lp.Model.rhs.(i)) in
                      let vq = q ctx v in
                      if raw.Lp.Model.integer.(j) && Qd.is_integer vq then
                        (* the first integer value past the new bound must
                           already violate the row *)
                        let shifted =
                          if hi then Qd.add vq qone else Qd.sub vq qone
                        in
                        Qd.lt d (Qd.add (Qd.mul cjq shifted) ma)
                      else
                        (* continuous: every point strictly past the new
                           bound violates the row *)
                        Qd.geq (Qd.add (Qd.mul cjq vq) ma) d
                end
          end
        in
        if not ok then
          errorf ctx ~code:"CERT111" ~loc:(Diag.Column j)
            "tightening %d (%s bound of variable %d to %.9g, row %d) fails \
             exact replay"
            idx
            (if hi then "upper" else "lower")
            j v e.Lp.Cert.t_row;
        if hi then ub.(j) <- v else lb.(j) <- v
      end)
    ctx.cert.Lp.Cert.presolve;
  (lb, ub)

(* ------------------------------------------------------------------ *)
(* Cutting-plane derivations (CERT109 / CERT110)                       *)
(* ------------------------------------------------------------------ *)

(* Verify every recorded cut, in derivation order, against the
   post-presolve box B_p (cuts must hold for every integer point of the
   tightened polytope — tightening validity is CERT111's job). Each
   cut's row is folded into [ctx.raw]/[ctx.m] after its check — whether
   it passed or not, so node dual vectors (which the solver produced
   over the extended system) keep their row indexing — and later CG
   derivations may cite earlier cut rows. *)
let check_cuts ctx (bp_lb, bp_ub) =
  let qone = Qd.of_int 1 in
  let m0 = ctx.m in
  List.iteri
    (fun k (c : Lp.Cert.cut) ->
      let raw = ctx.raw in
      let n = raw.Lp.Model.n in
      let loc = Diag.Row ctx.m in
      let terms_ok =
        Float.is_finite c.Lp.Cert.cut_rhs
        && Array.for_all
             (fun (j, cf) -> j >= 0 && j < n && Float.is_finite cf)
             c.Lp.Cert.cut_terms
      in
      (if not terms_ok then
         errorf ctx ~code:"CERT109" ~loc
           "cut %d is malformed (non-finite or out-of-range terms)" k
       else
         match c.Lp.Cert.cut_deriv with
         | Lp.Cert.Cg lam ->
             let ok = ref true in
             let fail fmt =
               Printf.ksprintf
                 (fun s ->
                   if !ok then
                     errorf ctx ~code:"CERT109" ~loc "cut %d: %s" k s;
                   ok := false)
                 fmt
             in
             Array.iter
               (fun (i, l) ->
                 if i < 0 || i >= ctx.m then
                   fail "multiplier cites row %d out of range" i
                 else if not (Float.is_finite l) then
                   fail "non-finite multiplier on row %d" i
                 else
                   match raw.Lp.Model.senses.(i) with
                   | Lp.Model.Le ->
                       if l < 0.0 then
                         fail "negative multiplier on <= row %d" i
                   | Lp.Model.Ge ->
                       if l > 0.0 then
                         fail "positive multiplier on >= row %d" i
                   | Lp.Model.Eq -> ())
               lam;
             if !ok then begin
               (* exact aggregation of the cited rows *)
               let abar = Array.make n Qd.zero in
               let t = ref Qd.zero in
               Array.iter
                 (fun (i, l) ->
                   if l <> 0.0 then begin
                     let lq = q ctx l in
                     t := Qd.add !t (Qd.mul lq (q ctx raw.Lp.Model.rhs.(i)));
                     Array.iter
                       (fun (jj, a) ->
                         abar.(jj) <-
                           Qd.add abar.(jj) (Qd.mul lq (q ctx a)))
                       raw.Lp.Model.rows.(i)
                   end)
                 lam;
               let cvec = Array.make n 0.0 in
               Array.iter
                 (fun (j, cf) -> cvec.(j) <- cf)
                 c.Lp.Cert.cut_terms;
               (* Each column may deviate from the exact aggregation;
                  the deviation (c_j - abar_j)·x_j is bounded over the
                  box B_p by charging it to the finite bound where it
                  maxes out. The shifted rhs t' = t + the sum of those
                  charges then upper-bounds sum_j c_j·x_j everywhere in
                  the box, and the integer-rounding step floors t'. *)
               let delta = ref Qd.zero in
               let support_int = ref true and coeffs_int = ref true in
               for j = 0 to n - 1 do
                 let cj = cvec.(j) in
                 let cjq = q ctx cj in
                 if not (Qd.equal abar.(j) cjq) then begin
                   let diff = Qd.sub cjq abar.(j) in
                   let bound =
                     if Qd.sign diff > 0 then bp_ub.(j) else bp_lb.(j)
                   in
                   if not (Float.is_finite bound) then
                     fail
                       "coefficient change on variable %d (exact %s, cut \
                        %.9g) is charged to an infinite bound"
                       j (qstr abar.(j)) cj
                   else delta := Qd.add !delta (Qd.mul diff (q ctx bound))
                 end;
                 if cj <> 0.0 then begin
                   if not raw.Lp.Model.integer.(j) then support_int := false;
                   if not (Qd.is_integer cjq) then coeffs_int := false
                 end
               done;
               if !ok then begin
                 let d = c.Lp.Cert.cut_rhs in
                 let dq = q ctx d in
                 let t' = Qd.add !t !delta in
                 if Qd.geq dq t' then () (* plain shifted aggregation *)
                 else if not !support_int then
                   fail
                     "rounded rhs %.9g < exact shifted rhs %s with \
                      continuous support"
                     d (qstr t')
                 else if not !coeffs_int then
                   fail
                     "rounded rhs with non-integral cut coefficients"
                 else if not (Qd.is_integer dq) then
                   fail "rounded rhs %.9g is not integral" d
                 else if not (Qd.lt t' (Qd.add dq qone)) then
                   fail
                     "rhs %.9g is below the floor of the exact shifted \
                      rhs %s"
                     d (qstr t')
               end
             end
         | Lp.Cert.Cover { c_row; members } ->
             let ok = ref true in
             let fail fmt =
               Printf.ksprintf
                 (fun s ->
                   if !ok then
                     errorf ctx ~code:"CERT110" ~loc "cut %d: %s" k s;
                   ok := false)
                 fmt
             in
             if c_row < 0 || c_row >= m0 then
               fail "cites row %d outside the model rows" c_row
             else if raw.Lp.Model.senses.(c_row) <> Lp.Model.Le then
               fail "cover derived from a non-<= row %d" c_row
             else begin
               let row = raw.Lp.Model.rows.(c_row) in
               let mem = Hashtbl.create (Array.length members) in
               Array.iter
                 (fun j ->
                   if j < 0 || j >= n then
                     fail "member variable %d out of range" j
                   else begin
                     if Hashtbl.mem mem j then
                       fail "duplicate member variable %d" j;
                     Hashtbl.replace mem j ();
                     if
                       (not raw.Lp.Model.integer.(j))
                       || bp_lb.(j) <> 0.0
                       || bp_ub.(j) <> 1.0
                     then fail "member variable %d is not a 0/1 binary" j
                   end)
                 members;
               if !ok then begin
                 (* members must over-cover the rhs exactly, and every
                    non-member term must be nonnegative over the box *)
                 let sum = ref Qd.zero in
                 let found = ref 0 in
                 Array.iter
                   (fun (jj, a) ->
                     if Hashtbl.mem mem jj then begin
                       incr found;
                       sum := Qd.add !sum (q ctx a)
                     end
                     else if a < 0.0 then
                       fail "non-member term on variable %d is negative" jj
                     else if
                       a > 0.0
                       && not
                            (Float.is_finite bp_lb.(jj) && bp_lb.(jj) >= 0.0)
                     then
                       fail
                         "non-member variable %d has a negative lower bound"
                         jj)
                   row;
                 if !found <> Array.length members then
                   fail "members missing from the cited row";
                 if
                   !ok
                   && not (Qd.lt (q ctx raw.Lp.Model.rhs.(c_row)) !sum)
                 then
                   fail
                     "members do not cover: exact sum %s <= rhs %.9g"
                     (qstr !sum) raw.Lp.Model.rhs.(c_row);
                 (* the cut row itself must be exactly sum(members) <=
                    |members| - 1 *)
                 if !ok then begin
                   let nm = Array.length members in
                   if
                     Array.length c.Lp.Cert.cut_terms <> nm
                     || c.Lp.Cert.cut_rhs <> float_of_int (nm - 1)
                     || not
                          (Array.for_all
                             (fun (jj, cf) ->
                               cf = 1.0 && Hashtbl.mem mem jj)
                             c.Lp.Cert.cut_terms)
                   then
                     fail
                       "cut row is not sum of the %d members <= %d" nm
                       (nm - 1)
                 end
               end
             end);
      (* fold the cut row into the audited system *)
      ctx.raw <-
        {
          raw with
          Lp.Model.rows =
            Array.append raw.Lp.Model.rows [| c.Lp.Cert.cut_terms |];
          senses = Array.append raw.Lp.Model.senses [| Lp.Model.Le |];
          rhs = Array.append raw.Lp.Model.rhs [| c.Lp.Cert.cut_rhs |];
        };
      ctx.m <- ctx.m + 1)
    ctx.cert.Lp.Cert.cuts

(* ------------------------------------------------------------------ *)
(* Root reduced-cost fixing (CERT106 / CERT108)                        *)
(* ------------------------------------------------------------------ *)

let check_fixes ctx (bp_lb, bp_ub) =
  let cert = ctx.cert and raw = ctx.raw in
  if cert.Lp.Cert.fixes = [] && cert.Lp.Cert.presolve = [] then ()
  else begin
    (* the post-fixing root box must differ from the post-presolve box
       B_p (model box + replayed tightenings) exactly at the fixed
       variables, pinned to the recorded side *)
    let side_of = Hashtbl.create 16 in
    List.iter
      (fun (j, s) ->
        if j < 0 || j >= raw.Lp.Model.n || not raw.Lp.Model.integer.(j) then
          errorf ctx ~code:"CERT106" ~loc:(Diag.Column j)
            "reduced-cost fix on an invalid or continuous variable"
        else Hashtbl.replace side_of j s)
      cert.Lp.Cert.fixes;
    if Array.length cert.Lp.Cert.root_lb = raw.Lp.Model.n then
      for j = 0 to raw.Lp.Model.n - 1 do
        let want_lb, want_ub =
          match Hashtbl.find_opt side_of j with
          | None -> (bp_lb.(j), bp_ub.(j))
          | Some Lp.Cert.Lower -> (bp_lb.(j), bp_lb.(j))
          | Some Lp.Cert.Upper -> (bp_ub.(j), bp_ub.(j))
        in
        if
          cert.Lp.Cert.root_lb.(j) <> want_lb
          || cert.Lp.Cert.root_ub.(j) <> want_ub
        then
          errorf ctx ~code:"CERT106" ~loc:(Diag.Column j)
            "post-fixing root box [%.9g, %.9g] inconsistent with the \
             recorded fixes (expected [%.9g, %.9g])"
            cert.Lp.Cert.root_lb.(j) cert.Lp.Cert.root_ub.(j) want_lb want_ub
      done;
    (* exclusion soundness, only meaningful when the final verdict claims
       optimality over the un-fixed box *)
    if cert.Lp.Cert.status = Lp.Cert.Optimal then
      match cert.Lp.Cert.root_duals with
      | None ->
          errorf ctx ~code:"CERT101" ~loc:Diag.Global
            "reduced-cost fixes recorded without the pre-fixing root duals"
      | Some u when Array.length u <> ctx.m ->
          errorf ctx ~code:"CERT101" ~loc:Diag.Global
            "pre-fixing root duals have %d entries, model has %d rows"
            (Array.length u) ctx.m
      | Some u ->
          let r, t = reduced_costs ctx ~use_obj:true u in
          (* per-variable exact min contribution over the post-presolve
             box B_p (which CERT111 proved keeps every integer point);
             the excluded region is a subset of that box with x_j
             restricted, so bounding over it is sound for every fix *)
          let contrib =
            Array.init raw.Lp.Model.n (fun j ->
                let s = Qd.sign r.(j) in
                if s > 0 then
                  if Float.is_finite bp_lb.(j) then
                    Some (Qd.mul r.(j) (q ctx bp_lb.(j)))
                  else None
                else if s < 0 then
                  if Float.is_finite bp_ub.(j) then
                    Some (Qd.mul r.(j) (q ctx bp_ub.(j)))
                  else None
                else Some Qd.zero)
          in
          let finite = Array.for_all Option.is_some contrib in
          let total =
            if finite then
              Some
                (Array.fold_left
                   (fun acc c -> Qd.add acc (Option.get c))
                   t contrib)
            else None
          in
          Hashtbl.iter
            (fun j s ->
              (* x_j restricted to the excluded half of its interval *)
              let lo, hi =
                match s with
                | Lp.Cert.Lower -> (bp_lb.(j) +. 1.0, bp_ub.(j))
                | Lp.Cert.Upper -> (bp_lb.(j), bp_ub.(j) -. 1.0)
              in
              if Float.is_finite lo && Float.is_finite hi && lo > hi then
                () (* excluded region empty — trivially sound *)
              else
                let excl =
                  let sgn = Qd.sign r.(j) in
                  if sgn > 0 then
                    if Float.is_finite lo then Some (Qd.mul r.(j) (q ctx lo))
                    else None
                  else if sgn < 0 then
                    if Float.is_finite hi then Some (Qd.mul r.(j) (q ctx hi))
                    else None
                  else Some Qd.zero
                in
                match (total, contrib.(j), excl) with
                | Some tot, Some cj, Some ej ->
                    let beta = Qd.add (Qd.sub tot cj) ej in
                    if
                      Qd.lt beta
                        (fathom_floor ctx ~ref_obj:cert.Lp.Cert.root_obj)
                    then
                      errorf ctx ~code:"CERT108" ~loc:(Diag.Column j)
                        ~witness:[ qstr beta ]
                        "reduced-cost fix not justified: excluded region's \
                         exact bound %s is below the final objective %.9g \
                         minus the gap contract"
                        (qstr beta) cert.Lp.Cert.objective
                | _ ->
                    errorf ctx ~code:"CERT108" ~loc:(Diag.Column j)
                      "reduced-cost fix not justified: excluded region has \
                       no finite exact bound")
            side_of
  end

(* ------------------------------------------------------------------ *)
(* Structure and status                                                *)
(* ------------------------------------------------------------------ *)

let check_structure ctx =
  let cert = ctx.cert in
  let n_nodes = List.length cert.Lp.Cert.nodes in
  List.iter
    (fun (n : Lp.Cert.node) ->
      if Hashtbl.mem ctx.by_id n.Lp.Cert.id then
        errorf ctx ~code:"CERT101" ~loc:(Diag.Node n.Lp.Cert.id)
          "duplicate node id %d" n.Lp.Cert.id
      else Hashtbl.replace ctx.by_id n.Lp.Cert.id n)
    cert.Lp.Cert.nodes;
  let boxes_ok =
    n_nodes = 0
    || Array.length cert.Lp.Cert.root_lb = ctx.raw.Lp.Model.n
       && Array.length cert.Lp.Cert.root_ub = ctx.raw.Lp.Model.n
  in
  if not boxes_ok then
    errorf ctx ~code:"CERT101" ~loc:Diag.Global
      "root box has %d/%d entries, model has %d variables"
      (Array.length cert.Lp.Cert.root_lb)
      (Array.length cert.Lp.Cert.root_ub)
      ctx.raw.Lp.Model.n;
  if n_nodes > 0 then begin
    match Hashtbl.find_opt ctx.by_id 0 with
    | Some r when r.Lp.Cert.parent = -1 && r.Lp.Cert.branch = None -> ()
    | Some _ ->
        errorf ctx ~code:"CERT101" ~loc:(Diag.Node 0)
          "node 0 is not a well-formed root"
    | None ->
        errorf ctx ~code:"CERT101" ~loc:Diag.Global
          "certificate records %d nodes but no root (id 0)" n_nodes
  end;
  boxes_ok

let check_status ctx =
  let cert = ctx.cert in
  match cert.Lp.Cert.status with
  | Lp.Cert.Optimal ->
      if cert.Lp.Cert.lp_limited > 0 then
        errorf ctx ~code:"CERT107" ~loc:Diag.Global
          "optimal status with %d node LPs abandoned at their pivot cap"
          cert.Lp.Cert.lp_limited;
      if cert.Lp.Cert.nodes = [] then
        errorf ctx ~code:"CERT101" ~loc:Diag.Global
          "optimal status with an empty node log"
  | Lp.Cert.Infeasible ->
      if cert.Lp.Cert.nodes = [] then
        errorf ctx ~code:"CERT101" ~loc:Diag.Global
          "infeasible status with an empty node log"
  | Lp.Cert.Feasible | Lp.Cert.Unbounded | Lp.Cert.Unknown -> ()

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let check raw cert =
  let ctx =
    {
      raw;
      cert;
      m = Array.length raw.Lp.Model.rows;
      qcache = Hashtbl.create 1024;
      by_id = Hashtbl.create 256;
      node_bounds = Hashtbl.create 256;
      diags = [];
      counts = Hashtbl.create 16;
    }
  in
  let boxes_ok = check_structure ctx in
  check_status ctx;
  (* incumbent feasibility is checked against the model rows only, so it
     runs before cut rows are folded into [ctx.raw] *)
  check_incumbent ctx;
  check_incumbent_log ctx;
  (* replay presolve (CERT111), then verify and fold in the cut rows
     (CERT109/110) — node dual vectors and the root-fixing duals are
     over the extended row system *)
  let bp = check_presolve ctx in
  check_cuts ctx bp;
  List.iter
    (fun (n : Lp.Cert.node) ->
      check_branch_edit ctx n;
      check_branch_arith ctx n;
      check_incumbent_at ctx n;
      let box = if boxes_ok then node_box ctx n else None in
      if boxes_ok && box = None then
        errorf ctx ~code:"CERT101" ~loc:(Diag.Node n.Lp.Cert.id)
          "node %d's box cannot be reconstructed (broken parent chain)"
          n.Lp.Cert.id;
      check_claim ctx n box)
    cert.Lp.Cert.nodes;
  if boxes_ok then begin
    (match cert.Lp.Cert.status with
    | Lp.Cert.Optimal -> check_completeness_optimal ctx
    | Lp.Cert.Infeasible -> check_completeness_infeasible ctx
    | _ -> ());
    check_fixes ctx bp
  end;
  List.rev ctx.diags

let check_result model (r : Lp.Milp.result) =
  match r.Lp.Milp.cert with
  | None ->
      [
        Diag.make Diag.Error ~code:"CERT101" ~pass:pass_name ~loc:Diag.Global
          "solve carries no certificate (certificates off, or cold-start \
           mode)";
      ]
  | Some c -> check (Lp.Model.to_raw model) c
