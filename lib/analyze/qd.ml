(* Re-export of the exact dyadic-rational core, which moved into lib/lp
   so cut generation ({!Lp.Cutgen}) and the audit share one arithmetic:
   a Chvátal–Gomory floor decided in generation must be the same floor
   the audit re-derives, and only identical exact arithmetic on both
   sides guarantees that. The [Analyze.Qd] name and interface are
   unchanged for existing users. *)

include Lp.Qd
