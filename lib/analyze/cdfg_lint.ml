let pass_name = "cdfg-lint"

let node_label (nd : Ir.Cdfg.node) =
  match nd.name with
  | Some s -> s
  | None -> (
      match nd.op with
      | Ir.Op.Input s -> s
      | _ -> Printf.sprintf "n%d" nd.id)

(* ------------------------------------------------------------------ *)
(* raw structural lints                                                *)
(* ------------------------------------------------------------------ *)

(* Structure: dense ids, in-range edges, non-negative distances. When
   these fail the graph is not indexable, so the remaining passes are
   skipped (their answers would be meaningless). *)
let check_structure nodes outputs =
  let n = Array.length nodes in
  let diags = ref [] in
  let add d = diags := d :: !diags in
  if n = 0 then
    add
      (Diag.errorf ~code:"CDFG006" ~pass:pass_name ~loc:Diag.Global
         "empty graph");
  Array.iteri
    (fun i (nd : Ir.Cdfg.node) ->
      if nd.id <> i then
        add
          (Diag.errorf ~code:"CDFG006" ~pass:pass_name ~loc:(Diag.Node nd.id)
             "node ids not dense: slot %d holds id %d" i nd.id))
    nodes;
  Array.iter
    (fun (nd : Ir.Cdfg.node) ->
      Array.iter
        (fun (e : Ir.Cdfg.edge) ->
          if e.src < 0 || e.src >= n then
            add
              (Diag.errorf ~code:"CDFG006" ~pass:pass_name
                 ~loc:(Diag.Node nd.id)
                 "%s: predecessor id %d out of range [0, %d)" (node_label nd)
                 e.src n)
          else if e.dist < 0 then
            add
              (Diag.errorf ~code:"CDFG006" ~pass:pass_name
                 ~loc:(Diag.Edge (e.src, nd.id))
                 "%s: negative dependence distance %d" (node_label nd) e.dist))
        nd.preds)
    nodes;
  if outputs = [] then
    add
      (Diag.errorf ~code:"CDFG006" ~pass:pass_name ~loc:Diag.Global
         "no primary outputs");
  List.iter
    (fun o ->
      if o < 0 || o >= n then
        add
          (Diag.errorf ~code:"CDFG006" ~pass:pass_name ~loc:(Diag.Node o)
             "output id %d out of range [0, %d)" o n))
    outputs;
  let names = Hashtbl.create 8 in
  Array.iter
    (fun (nd : Ir.Cdfg.node) ->
      match nd.op with
      | Ir.Op.Input s ->
          if Hashtbl.mem names s then
            add
              (Diag.errorf ~code:"CDFG006" ~pass:pass_name
                 ~loc:(Diag.Node nd.id) "duplicate input name %S" s)
          else Hashtbl.add names s ()
      | _ -> ())
    nodes;
  List.rev !diags

let check_widths nodes =
  let diags = ref [] in
  Array.iter
    (fun (nd : Ir.Cdfg.node) ->
      let operand_widths =
        Array.to_list
          (Array.map (fun (e : Ir.Cdfg.edge) -> nodes.(e.src).Ir.Cdfg.width)
             nd.preds)
      in
      let bad fmt =
        Fmt.kstr
          (fun m ->
            diags :=
              Diag.errorf ~code:"CDFG003" ~pass:pass_name ~loc:(Diag.Node nd.id)
                "%s (%s): %s" (node_label nd) (Ir.Op.to_string nd.op) m
              :: !diags)
          fmt
      in
      (match Ir.Op.validate_widths nd.op ~operand_widths with
      | Error msg -> bad "%s" msg
      | Ok () -> (
          match nd.op with
          | Ir.Op.Not | Ir.Op.Bitwise _ | Ir.Op.Shl _ | Ir.Op.Shr _
          | Ir.Op.Slice _ | Ir.Op.Concat | Ir.Op.Add | Ir.Op.Sub | Ir.Op.Cmp _
          | Ir.Op.Mux ->
              let expect = Ir.Op.result_width nd.op ~operand_widths in
              if expect <> nd.width then
                bad "declared width %d, expected %d" nd.width expect
          | Ir.Op.Input _ | Ir.Op.Const _ | Ir.Op.Black_box _ ->
              if nd.width <= 0 || nd.width > 63 then
                bad "width %d out of [1, 63]" nd.width)))
    nodes;
  List.rev !diags

(* DFS over the dist-0 subgraph with an explicit path stack; the first
   back edge found yields the witness cycle. *)
let find_comb_cycle nodes =
  let n = Array.length nodes in
  let state = Array.make n `White in
  let cycle = ref None in
  let rec dfs path v =
    if !cycle = None then begin
      state.(v) <- `Grey;
      let path = v :: path in
      Array.iter
        (fun (e : Ir.Cdfg.edge) ->
          if !cycle = None && e.dist = 0 then
            match state.(e.src) with
            | `Grey ->
                (* path lists the pred-DFS chain deepest-first; truncating at
                   the revisited node and keeping that order yields the cycle
                   in dataflow (producer -> consumer) direction. *)
                let rec take acc = function
                  | [] -> acc
                  | x :: _ when x = e.src -> x :: acc
                  | x :: rest -> take (x :: acc) rest
                in
                cycle := Some (List.rev (take [] path))
            | `White -> dfs path e.src
            | `Black -> ())
        nodes.(v).Ir.Cdfg.preds;
      state.(v) <- `Black
    end
  in
  for v = 0 to n - 1 do
    if state.(v) = `White then dfs [] v
  done;
  !cycle

let check_cycles nodes =
  match find_comb_cycle nodes with
  | None -> []
  | Some cycle ->
      let witness =
        List.map (fun v -> node_label nodes.(v)) (cycle @ [ List.hd cycle ])
      in
      let head = List.hd cycle in
      let cyc =
        Diag.errorf ~witness ~code:"CDFG001" ~pass:pass_name
          ~loc:(Diag.Node head)
          "combinational (distance-0) cycle of %d nodes" (List.length cycle)
      in
      let bb =
        List.filter_map
          (fun v ->
            match nodes.(v).Ir.Cdfg.op with
            | Ir.Op.Black_box { kind; _ } ->
                Some
                  (Diag.errorf ~witness ~code:"CDFG002" ~pass:pass_name
                     ~loc:(Diag.Node v)
                     "black box %s (%s) on a zero-aggregate-distance feedback \
                      cycle"
                     (node_label nodes.(v)) kind)
            | _ -> None)
          cycle
      in
      cyc :: bb

let check_raw ~nodes ~outputs =
  let nodes = Array.of_list nodes in
  match check_structure nodes outputs with
  | _ :: _ as structural -> structural
  | [] -> check_widths nodes @ check_cycles nodes

(* ------------------------------------------------------------------ *)
(* built-graph lints                                                   *)
(* ------------------------------------------------------------------ *)

let check_dead g =
  let n = Ir.Cdfg.num_nodes g in
  let live = Array.make n false in
  let rec mark v =
    if not live.(v) then begin
      live.(v) <- true;
      Array.iter (fun (e : Ir.Cdfg.edge) -> mark e.src) (Ir.Cdfg.preds g v)
    end
  in
  List.iter mark (Ir.Cdfg.outputs g);
  let diags = ref [] in
  for v = n - 1 downto 0 do
    if not live.(v) then
      diags :=
        Diag.warnf ~code:"CDFG004" ~pass:pass_name ~loc:(Diag.Node v)
          "%s (%s) is dead: no path to any primary output"
          (Ir.Cdfg.node_name g v)
          (Ir.Op.to_string (Ir.Cdfg.op g v))
        :: !diags
  done;
  !diags

(* Forward constant propagation over dist-0 edges; report only the
   maximal roots of foldable cones to keep one finding per cone. *)
let check_const_cones g =
  let n = Ir.Cdfg.num_nodes g in
  let const = Array.make n false in
  List.iter
    (fun v ->
      const.(v) <-
        (match Ir.Cdfg.op g v with
        | Ir.Op.Const _ -> true
        | Ir.Op.Input _ | Ir.Op.Black_box _ -> false
        | _ ->
            let preds = Ir.Cdfg.preds g v in
            Array.length preds > 0
            && Array.for_all
                 (fun (e : Ir.Cdfg.edge) -> e.dist = 0 && const.(e.src))
                 preds))
    (Ir.Cdfg.topo_order g);
  let cone_size v =
    (* distance-0 backward cone restricted to const nodes *)
    let seen = Hashtbl.create 8 in
    let rec go v =
      if not (Hashtbl.mem seen v) then begin
        Hashtbl.add seen v ();
        Array.iter
          (fun (e : Ir.Cdfg.edge) ->
            if e.dist = 0 && const.(e.src) then go e.src)
          (Ir.Cdfg.preds g v)
      end
    in
    go v;
    Hashtbl.length seen
  in
  let diags = ref [] in
  for v = n - 1 downto 0 do
    if const.(v) && (match Ir.Cdfg.op g v with Ir.Op.Const _ -> false | _ -> true)
    then begin
      let maximal =
        Ir.Cdfg.is_output g v
        || not
             (List.exists (fun (w, d) -> d = 0 && const.(w))
                (Ir.Cdfg.succs g v))
      in
      if maximal then
        diags :=
          Diag.infof ~code:"CDFG005" ~pass:pass_name ~loc:(Diag.Node v)
            "%s heads a constant-foldable cone of %d nodes (run the frontend \
             simplifier)"
            (Ir.Cdfg.node_name g v) (cone_size v)
          :: !diags
    end
  done;
  !diags

let check g =
  let nodes = Ir.Cdfg.fold (fun nd acc -> nd :: acc) g [] |> List.rev in
  check_raw ~nodes ~outputs:(Ir.Cdfg.outputs g)
  @ check_dead g @ check_const_cones g
