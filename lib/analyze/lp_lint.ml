let pass_name = "lp-lint"
let max_reports = 25
let eps = 1e-9

let sense_str = function Lp.Model.Le -> "<=" | Lp.Model.Ge -> ">=" | Lp.Model.Eq -> "="

(* Per-code capping: keep the first [max_reports], replace the tail by one
   summarizing diagnostic so a pathological model cannot flood the report. *)
let cap code diags =
  let n = List.length diags in
  if n <= max_reports then diags
  else
    match List.filteri (fun i _ -> i < max_reports) diags with
    | [] -> []
    | d :: _ as kept ->
        kept
        @ [
            Diag.make (d : Diag.t).Diag.severity ~code ~pass:pass_name
              ~loc:Diag.Global
              (Printf.sprintf "...and %d more %s findings (capped at %d)"
                 (n - max_reports) code max_reports);
          ]

let row_label name i =
  match name with Some s -> s | None -> Printf.sprintf "row%d" i

let check m =
  let rows = Lp.Model.rows m in
  let empty_inf = ref [] and empty_vac = ref [] and dups = ref [] in
  let seen : (string, int) Hashtbl.t = Hashtbl.create 256 in
  Array.iteri
    (fun i (name, terms, sense, rhs) ->
      (match terms with
      | [] ->
          let holds =
            match sense with
            | Lp.Model.Le -> 0.0 <= rhs +. eps
            | Lp.Model.Ge -> 0.0 >= rhs -. eps
            | Lp.Model.Eq -> Float.abs rhs <= eps
          in
          if holds then
            empty_vac :=
              Diag.warnf ~code:"LP002" ~pass:pass_name ~loc:(Diag.Row i)
                "%s: empty row (0 %s %g) constrains nothing" (row_label name i)
                (sense_str sense) rhs
              :: !empty_vac
          else
            empty_inf :=
              Diag.errorf ~code:"LP001" ~pass:pass_name ~loc:(Diag.Row i)
                "%s: trivially infeasible empty row (0 %s %g is false)"
                (row_label name i) (sense_str sense) rhs
              :: !empty_inf
      | _ :: _ ->
          let key =
            String.concat ";"
              (Printf.sprintf "%s%g" (sense_str sense) rhs
              :: List.map
                   (fun (c, v) -> Printf.sprintf "%d:%g" (Lp.Model.var_index v) c)
                   terms)
          in
          (match Hashtbl.find_opt seen key with
          | Some j ->
              dups :=
                Diag.warnf ~code:"LP003" ~pass:pass_name ~loc:(Diag.Row i)
                  ~witness:
                    [ row_label (let n, _, _, _ = rows.(j) in n) j;
                      row_label name i ]
                  "%s duplicates %s (same terms, sense and rhs)"
                  (row_label name i)
                  (row_label (let n, _, _, _ = rows.(j) in n) j)
                :: !dups
          | None -> Hashtbl.add seen key i)))
    rows;
  (* Column checks: free columns and integer-infeasible bounds. *)
  let nvars = Lp.Model.num_vars m in
  let referenced = Array.make nvars false in
  Array.iter
    (fun (_, terms, _, _) ->
      List.iter (fun (_, v) -> referenced.(Lp.Model.var_index v) <- true) terms)
    rows;
  List.iter
    (fun (_, v) -> referenced.(Lp.Model.var_index v) <- true)
    (Lp.Model.objective_terms m);
  let free = ref [] and badint = ref [] in
  for i = 0 to nvars - 1 do
    let v = Lp.Model.var_of_index m i in
    let lb, ub = Lp.Model.bounds m v in
    if Lp.Model.is_integer m v && Float.ceil (lb -. eps) > Float.floor (ub +. eps)
    then
      badint :=
        Diag.errorf ~code:"LP005" ~pass:pass_name ~loc:(Diag.Column i)
          "integer variable %s has no integer in [%g, %g]"
          (Lp.Model.var_name m v) lb ub
        :: !badint;
    if (not referenced.(i)) && lb <> ub then
      free :=
        Diag.warnf ~code:"LP004" ~pass:pass_name ~loc:(Diag.Column i)
          "variable %s appears in no constraint or objective"
          (Lp.Model.var_name m v)
        :: !free
  done;
  cap "LP001" (List.rev !empty_inf)
  @ cap "LP002" (List.rev !empty_vac)
  @ cap "LP003" (List.rev !dups)
  @ cap "LP004" (List.rev !free)
  @ cap "LP005" (List.rev !badint)

(* Structural lint over a certificate's applied cut rows (LP006): the
   audit proves each cut's *derivation*; this pass rejects rows that are
   not even well-formed sparse rows — empty, non-finite, out-of-range or
   duplicated columns — before the audit's arithmetic touches them. *)
let check_cuts ~n cuts =
  let bad = ref [] in
  List.iteri
    (fun k (c : Lp.Cert.cut) ->
      let reportf fmt =
        Printf.ksprintf
          (fun s ->
            bad :=
              Diag.errorf ~code:"LP006" ~pass:pass_name ~loc:(Diag.Row k)
                "cut %d: %s" k s
              :: !bad)
          fmt
      in
      if Array.length c.Lp.Cert.cut_terms = 0 then reportf "empty term list";
      if not (Float.is_finite c.Lp.Cert.cut_rhs) then
        reportf "non-finite right-hand side";
      let seen = Hashtbl.create 16 in
      Array.iter
        (fun (j, cf) ->
          if j < 0 || j >= n then reportf "column %d out of range" j
          else if Hashtbl.mem seen j then reportf "duplicate column %d" j
          else Hashtbl.replace seen j ();
          if not (Float.is_finite cf) then
            reportf "non-finite coefficient on column %d" j;
          if cf = 0.0 then reportf "zero coefficient on column %d" j)
        c.Lp.Cert.cut_terms)
    cuts;
  cap "LP006" (List.rev !bad)
