(** Static lints over {!Lp.Model} instances — run on the MILP before the
    branch-and-bound pays for it.

    Codes:
    - [LP001] (error): trivially infeasible row — no terms survive
      normalization and the relation [0 sense rhs] is false.
    - [LP002] (warning): vacuous row — no terms and the relation holds, so
      the row constrains nothing.
    - [LP003] (warning): duplicate row — identical terms, sense and
      right-hand side as an earlier row.
    - [LP004] (warning): free column — a non-fixed variable that appears in
      no constraint and no objective term.
    - [LP005] (error): infeasible bounds — an integer variable whose
      [\[lb, ub\]] interval contains no integer.
    - [LP006] (error): malformed cutting-plane row in a certificate —
      empty term list, non-finite coefficient or rhs, out-of-range or
      duplicated column ({!check_cuts}).

    To bound report size, at most {!max_reports} findings are emitted per
    code; an overflow finding summarizes the remainder. *)

val pass_name : string

val max_reports : int

val check : Lp.Model.t -> Diag.t list

val check_cuts : n:int -> Lp.Cert.cut list -> Diag.t list
(** [check_cuts ~n cuts] lints a certificate's applied cut rows against
    a model with [n] variables (LP006). Structural only — the cut
    {e derivations} are the audit's CERT109/CERT110 business. The
    [Diag.Row] locations index into the cut list, not the model rows. *)
