let pass_name = "cert"

let classify msg =
  let tagged tag = String.length msg >= String.length tag
                   && String.sub msg 0 (String.length tag) = tag in
  if tagged "[Eq. 2-4]" then ("CERT001", "Eq. 2-4")
  else if tagged "[Eq. 7]" then ("CERT002", "Eq. 7")
  else if tagged "[Eq. 8]" then ("CERT003", "Eq. 8")
  else if tagged "[Eq. 9]" then ("CERT004", "Eq. 9")
  else if tagged "[Eq. 14]" then ("CERT005", "Eq. 14")
  else ("CERT000", "untagged")

let of_messages msgs =
  List.map
    (fun msg ->
      let code, eq = classify msg in
      Diag.errorf ~code ~pass:pass_name ~loc:Diag.Global ~witness:[ eq ] "%s"
        msg)
    msgs

let check ctx g cover sched =
  match Sched.Verify.check ctx g cover sched with
  | Ok () -> []
  | Error msgs -> of_messages msgs
