(** Certificate checking: {!Sched.Verify.check} rewrapped into the shared
    diagnostic format, so a MILP result and a heuristic result are audited
    in the same dialect as every other artifact.

    Each violation message carries the paper-equation tag {!Sched.Verify}
    prefixes it with; the tag selects the code:
    - [CERT001] (error): cover structure (Eq. 2–4);
    - [CERT002] (error): dependence ordering (Eq. 7);
    - [CERT003] (error): cycle-time fit (Eq. 8);
    - [CERT004] (error): chaining arrival order (Eq. 9);
    - [CERT005] (error): modulo resource limits (Eq. 14);
    - [CERT000] (error): any untagged violation (e.g. a schedule/graph size
      mismatch). *)

val pass_name : string

val check :
  Sched.Verify.context -> Ir.Cdfg.t -> Sched.Cover.t -> Sched.Schedule.t ->
  Diag.t list
(** Empty exactly when {!Sched.Verify.check} returns [Ok ()]. *)

val of_messages : string list -> Diag.t list
(** Classify raw {!Sched.Verify.check} violation messages (exposed for the
    flow, which already holds the messages). *)
