type severity = Error | Warning | Info

type location =
  | Node of int
  | Edge of int * int
  | Row of int
  | Column of int
  | Wire of string
  | Global

type t = {
  severity : severity;
  code : string;
  pass : string;
  loc : location;
  message : string;
  witness : string list;
}

let make ?(witness = []) severity ~code ~pass ~loc message =
  { severity; code; pass; loc; message; witness }

let errorf ?witness ~code ~pass ~loc fmt =
  Fmt.kstr (make ?witness Error ~code ~pass ~loc) fmt

let warnf ?witness ~code ~pass ~loc fmt =
  Fmt.kstr (make ?witness Warning ~code ~pass ~loc) fmt

let infof ?witness ~code ~pass ~loc fmt =
  Fmt.kstr (make ?witness Info ~code ~pass ~loc) fmt

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let loc_to_string = function
  | Node v -> Printf.sprintf "node:%d" v
  | Edge (u, v) -> Printf.sprintf "edge:%d->%d" u v
  | Row i -> Printf.sprintf "row:%d" i
  | Column i -> Printf.sprintf "col:%d" i
  | Wire w -> Printf.sprintf "wire:%s" w
  | Global -> "global"

let loc_rank = function
  | Node _ -> 0
  | Edge _ -> 1
  | Row _ -> 2
  | Column _ -> 3
  | Wire _ -> 4
  | Global -> 5

(* Structural, not stringly: [Node 2] sorts before [Node 10]. *)
let compare_loc a b =
  match (a, b) with
  | Node x, Node y | Row x, Row y | Column x, Column y -> Int.compare x y
  | Edge (a1, a2), Edge (b1, b2) ->
      let c = Int.compare a1 b1 in
      if c <> 0 then c else Int.compare a2 b2
  | Wire x, Wire y -> String.compare x y
  | _ -> Int.compare (loc_rank a) (loc_rank b)

(* A total order — message and witness break remaining ties — so any
   sorted report is deterministic however the producing pass ordered its
   findings. *)
let compare a b =
  let c = Int.compare (severity_rank a.severity) (severity_rank b.severity) in
  if c <> 0 then c
  else
    let c = String.compare a.code b.code in
    if c <> 0 then c
    else
      let c = compare_loc a.loc b.loc in
      if c <> 0 then c
      else
        let c = String.compare a.message b.message in
        if c <> 0 then c
        else Stdlib.compare a.witness b.witness

let errors ds = List.filter (fun d -> d.severity = Error) ds
let warnings ds = List.filter (fun d -> d.severity = Warning) ds
let has_errors ds = List.exists (fun d -> d.severity = Error) ds

let summary ds =
  if ds = [] then "clean"
  else
    let count sev = List.length (List.filter (fun d -> d.severity = sev) ds) in
    let plural n what =
      if n = 0 then None
      else Some (Printf.sprintf "%d %s%s" n what (if n = 1 then "" else "s"))
    in
    List.filter_map Fun.id
      [
        plural (count Error) "error";
        plural (count Warning) "warning";
        plural (count Info) "info";
      ]
    |> String.concat ", "

let to_json d =
  Obs.Json.Obj
    [
      ("severity", Obs.Json.String (severity_name d.severity));
      ("code", Obs.Json.String d.code);
      ("pass", Obs.Json.String d.pass);
      ("loc", Obs.Json.String (loc_to_string d.loc));
      ("message", Obs.Json.String d.message);
      ("witness", Obs.Json.List (List.map (fun w -> Obs.Json.String w) d.witness));
    ]

let loc_of_string s =
  let prefixed p = String.length s > String.length p && String.sub s 0 (String.length p) = p in
  let rest p = String.sub s (String.length p) (String.length s - String.length p) in
  if s = "global" then Some Global
  else if prefixed "node:" then Option.map (fun v -> Node v) (int_of_string_opt (rest "node:"))
  else if prefixed "edge:" then
    match String.split_on_char '>' (rest "edge:") with
    | [ u; v ] ->
        let u = String.sub u 0 (String.length u - 1) in  (* drop '-' *)
        (match (int_of_string_opt u, int_of_string_opt v) with
        | Some u, Some v -> Some (Edge (u, v))
        | _ -> None)
    | _ -> None
  else if prefixed "row:" then Option.map (fun i -> Row i) (int_of_string_opt (rest "row:"))
  else if prefixed "col:" then Option.map (fun i -> Column i) (int_of_string_opt (rest "col:"))
  else if prefixed "wire:" then Some (Wire (rest "wire:"))
  else None

let of_json j =
  let str k =
    match Obs.Json.member k j with
    | Some (Obs.Json.String s) -> Ok s
    | _ -> Error (Printf.sprintf "missing string field %S" k)
  in
  let ( let* ) = Result.bind in
  let* sev_s = str "severity" in
  let* severity =
    match sev_s with
    | "error" -> Ok Error
    | "warning" -> Ok Warning
    | "info" -> Ok Info
    | s -> Error (Printf.sprintf "bad severity %S" s)
  in
  let* code = str "code" in
  let* pass = str "pass" in
  let* loc_s = str "loc" in
  let* loc =
    match loc_of_string loc_s with
    | Some l -> Ok l
    | None -> Error (Printf.sprintf "bad location %S" loc_s)
  in
  let* message = str "message" in
  let* witness =
    match Obs.Json.member "witness" j with
    | Some (Obs.Json.List ws) ->
        List.fold_left
          (fun acc w ->
            match (acc, w) with
            | Ok l, Obs.Json.String s -> Ok (s :: l)
            | Ok _, _ -> Error "non-string witness entry"
            | (Error _ as e), _ -> e)
          (Ok []) ws
        |> Result.map List.rev
    | _ -> Error "missing witness list"
  in
  Ok { severity; code; pass; loc; message; witness }

let pp ppf d =
  Fmt.pf ppf "%-7s %s %s: %s"
    (severity_name d.severity) d.code (loc_to_string d.loc) d.message;
  match d.witness with
  | [] -> ()
  | ws -> Fmt.pf ppf "  [%s]" (String.concat " -> " ws)

let pp_report ppf ds =
  let ds = List.sort compare ds in
  List.iter (fun d -> Fmt.pf ppf "%a@." pp d) ds;
  Fmt.pf ppf "%s" (summary ds)
