type pass = {
  name : string;
  artifact : string;
  codes : (string * string) list;
  description : string;
}

let passes =
  [
    {
      name = Cdfg_lint.pass_name;
      artifact = "cdfg";
      codes =
        [
          ("CDFG001", "distance-0 combinational cycle (witness: the cycle path)");
          ("CDFG002", "black box on a zero-aggregate-distance feedback cycle");
          ("CDFG003", "operand/result width inconsistent with the opcode");
          ("CDFG004", "dead node: no path to any primary output");
          ("CDFG005", "constant-foldable cone (the frontend simplifier would remove it)");
          ("CDFG006", "malformed structure: ids not dense, dangling edges, no outputs");
        ];
      description =
        "combinational cycles, black-box feedback, width discipline, dead \
         nodes, constant-foldable cones, malformed structure";
    };
    {
      name = Preflight.pass_name;
      artifact = "cdfg+setup";
      codes =
        [
          ("PRE001", "requested II below RecMII (witness: the binding dependence cycle)");
          ("PRE002", "requested II below ResMII (witness: the binding resource class)");
          ("PRE003", "slowest single-op delay exceeds the usable clock period");
          ("PRE004", "black-box resource class used but budgeted at zero units");
        ];
      description =
        "II vs RecMII/ResMII with recurrence-cycle and resource-class \
         witnesses, clock-period sanity";
    };
    {
      name = Lp_lint.pass_name;
      artifact = "lp";
      codes =
        [
          ("LP001", "trivially infeasible empty constraint row (e.g. 0 >= 1)");
          ("LP002", "vacuous empty constraint row (constrains nothing)");
          ("LP003", "duplicate rows (same terms, sense, and right-hand side)");
          ("LP004", "variable referenced by no constraint or objective");
          ("LP005", "integer variable with no integer between its bounds");
          ("LP006", "malformed cutting-plane row in a certificate");
        ];
      description =
        "empty/duplicate rows, free columns, trivially infeasible bounds, \
         malformed certificate cut rows";
    };
    {
      name = Net_lint.pass_name;
      artifact = "netlist";
      codes =
        [
          ("NET001", "expression reads an undriven signal");
          ("NET002", "signal driven more than once");
          ("NET003", "operator applied to the wrong operand count (unconnected pin)");
          ("NET004", "wire reads a wire defined after it (combinational order violation)");
          ("NET005", "wire driven but never read");
          ("NET006", "operand/result widths inconsistent at a netlist operator");
        ];
      description =
        "undriven/multiply-driven signals, unconnected pins, combinational \
         order, dangling wires, width discipline";
    };
    {
      name = Cert.pass_name;
      artifact = "schedule+cover";
      codes =
        [
          ("CERT000", "Sched.Verify violation with no equation tag");
          ("CERT001", "cover violates the cut constraints (paper Eq. 2-4)");
          ("CERT002", "value produced after it is consumed (paper Eq. 7)");
          ("CERT003", "operation finishes past the clock period (paper Eq. 8)");
          ("CERT004", "chained arrival time too late (paper Eq. 9)");
          ("CERT005", "resource class over its budget (paper Eq. 14)");
        ];
      description =
        "Sched.Verify certificate rewrapped with paper-equation codes";
    };
    {
      name = Audit.pass_name;
      artifact = "milp certificate";
      codes =
        [
          ("CERT101", "missing, malformed or truncated certificate evidence");
          ("CERT102", "incumbent violates bounds, integrality or a constraint");
          ("CERT103", "dual vector fails to certify the claimed LP objective");
          ("CERT104", "Farkas evidence fails to prove node infeasibility");
          ("CERT105", "fathomed or abandoned subtree not excluded by its exact dual bound");
          ("CERT106", "malformed tree: branch arithmetic or box bookkeeping inconsistent");
          ("CERT107", "status or incumbent bookkeeping inconsistent (stale incumbent)");
          ("CERT108", "root reduced-cost fix not justified by the pre-fixing duals");
          ("CERT109", "Chvátal-Gomory cut not implied by its recorded derivation");
          ("CERT110", "cover cut not implied by its cited knapsack row");
          ("CERT111", "presolve bound tightening fails exact replay");
        ];
      description =
        "exact-rational replay of a proof-carrying MILP solve \
         (Neumaier-Shcherbina dual bounds, Farkas rays, pruning log, \
         presolve and cutting-plane derivations)";
    };
    {
      (* Emitted by the flow's degradation cascade (Mams.Flow), not a
         standalone checker: each finding mirrors one entry of the
         Metrics degradation array. *)
      name = "resilience.cascade";
      artifact = "flow run";
      codes =
        [
          ("RES001", "attempt raised; exception contained, cascade continued");
          ("RES002", "attempt failed or degraded; next fallback ran");
          ("RES003", "cascade exhausted: every fallback failed (run error)");
          ("RES004", "transient failure retried in place on the same rung (bounded, deterministic)");
          ("RES005", "supervised in-flight recovery: worker death replayed or stalled node requeued; results unaffected");
        ];
      description =
        "degradation-cascade and solve-supervision events recorded \
         against an otherwise accepted run (the Metrics degradation \
         array, mirrored as diagnostics)";
    };
  ]

(* Single choke point every checker wrapper goes through: bump the
   observability counters and return the findings in {!Diag.compare}
   order, so every downstream consumer sees a deterministic report
   whatever order the pass generated them in. *)
let count_diags diags =
  Obs.Counter.incr ~by:(List.length (Diag.errors diags))
    (Obs.Counter.get "analyze.errors");
  Obs.Counter.incr ~by:(List.length (Diag.warnings diags))
    (Obs.Counter.get "analyze.warnings");
  List.sort Diag.compare diags

let timer = Obs.Timer.get "analyze"

let check_cdfg g = Obs.Timer.span timer (fun () -> count_diags (Cdfg_lint.check g))

let preflight ?strict_period cfg g =
  Obs.Timer.span timer (fun () ->
      count_diags (Preflight.check ?strict_period cfg g))

let check_model m = Obs.Timer.span timer (fun () -> count_diags (Lp_lint.check m))

let check_netlist nl =
  Obs.Timer.span timer (fun () -> count_diags (Net_lint.check nl))

let check_certificate ctx g cover sched =
  Obs.Timer.span timer (fun () ->
      count_diags (Cert.check ctx g cover sched))

let check_audit model result =
  Obs.Timer.span timer (fun () ->
      let cut_lint =
        match result.Lp.Milp.cert with
        | Some c when c.Lp.Cert.cuts <> [] ->
            Lp_lint.check_cuts ~n:(Lp.Model.num_vars model) c.Lp.Cert.cuts
        | _ -> []
      in
      count_diags (cut_lint @ Audit.check_result model result))

let static_gate cfg g =
  let diags = check_cdfg g @ preflight cfg g in
  if Diag.has_errors diags then Error diags else Ok diags

let diags_to_json diags =
  Obs.Json.List (List.map Diag.to_json (List.sort Diag.compare diags))

let file ~entries =
  Obs.Json.Obj
    [
      ("schema_version", Obs.Json.Int Obs.Metrics.schema_version);
      ( "benchmarks",
        Obs.Json.List
          (List.map
             (fun (name, diags) ->
               Obs.Json.Obj
                 [
                   ("name", Obs.Json.String name);
                   ("errors", Obs.Json.Int (List.length (Diag.errors diags)));
                   ( "warnings",
                     Obs.Json.Int (List.length (Diag.warnings diags)) );
                   ("diagnostics", diags_to_json diags);
                 ])
             entries) );
    ]

let write_file ~path ~entries =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> Obs.Json.to_channel oc (file ~entries))
