type pass = {
  name : string;
  artifact : string;
  codes : string list;
  description : string;
}

let passes =
  [
    {
      name = Cdfg_lint.pass_name;
      artifact = "cdfg";
      codes = [ "CDFG001"; "CDFG002"; "CDFG003"; "CDFG004"; "CDFG005"; "CDFG006" ];
      description =
        "combinational cycles, black-box feedback, width discipline, dead \
         nodes, constant-foldable cones, malformed structure";
    };
    {
      name = Preflight.pass_name;
      artifact = "cdfg+setup";
      codes = [ "PRE001"; "PRE002"; "PRE003"; "PRE004" ];
      description =
        "II vs RecMII/ResMII with recurrence-cycle and resource-class \
         witnesses, clock-period sanity";
    };
    {
      name = Lp_lint.pass_name;
      artifact = "lp";
      codes = [ "LP001"; "LP002"; "LP003"; "LP004"; "LP005" ];
      description =
        "empty/duplicate rows, free columns, trivially infeasible bounds";
    };
    {
      name = Net_lint.pass_name;
      artifact = "netlist";
      codes = [ "NET001"; "NET002"; "NET003"; "NET004"; "NET005"; "NET006" ];
      description =
        "undriven/multiply-driven signals, unconnected pins, combinational \
         order, dangling wires, width discipline";
    };
    {
      name = Cert.pass_name;
      artifact = "schedule+cover";
      codes = [ "CERT000"; "CERT001"; "CERT002"; "CERT003"; "CERT004"; "CERT005" ];
      description =
        "Sched.Verify certificate rewrapped with paper-equation codes";
    };
  ]

let count_diags diags =
  Obs.Counter.incr ~by:(List.length (Diag.errors diags))
    (Obs.Counter.get "analyze.errors");
  Obs.Counter.incr ~by:(List.length (Diag.warnings diags))
    (Obs.Counter.get "analyze.warnings");
  diags

let timer = Obs.Timer.get "analyze"

let check_cdfg g = Obs.Timer.span timer (fun () -> count_diags (Cdfg_lint.check g))

let preflight ?strict_period cfg g =
  Obs.Timer.span timer (fun () ->
      count_diags (Preflight.check ?strict_period cfg g))

let check_model m = Obs.Timer.span timer (fun () -> count_diags (Lp_lint.check m))

let check_netlist nl =
  Obs.Timer.span timer (fun () -> count_diags (Net_lint.check nl))

let check_certificate ctx g cover sched =
  Obs.Timer.span timer (fun () ->
      count_diags (Cert.check ctx g cover sched))

let static_gate cfg g =
  let diags = check_cdfg g @ preflight cfg g in
  if Diag.has_errors diags then Error diags else Ok diags

let diags_to_json diags =
  Obs.Json.List (List.map Diag.to_json (List.sort Diag.compare diags))

let file ~entries =
  Obs.Json.Obj
    [
      ("schema_version", Obs.Json.Int Obs.Metrics.schema_version);
      ( "benchmarks",
        Obs.Json.List
          (List.map
             (fun (name, diags) ->
               Obs.Json.Obj
                 [
                   ("name", Obs.Json.String name);
                   ("errors", Obs.Json.Int (List.length (Diag.errors diags)));
                   ( "warnings",
                     Obs.Json.Int (List.length (Diag.warnings diags)) );
                   ("diagnostics", diags_to_json diags);
                 ])
             entries) );
    ]

let write_file ~path ~entries =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> Obs.Json.to_channel oc (file ~entries))
