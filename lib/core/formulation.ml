type config = {
  device : Fpga.Device.t;
  delays : Fpga.Delays.t;
  resources : Fpga.Resource.budget;
  ii : int;
  max_latency : int;
  alpha : float;
  beta : float;
  cut_delay : Ir.Cdfg.t -> Cuts.cut -> float;
}

let mapped_delay ~device ~delays g cut = Cuts.delay ~device ~delays g cut

let additive_delay ~delays g (cut : Cuts.cut) =
  let v = cut.Cuts.root in
  let op = Ir.Cdfg.op g v in
  let width =
    match op with
    | Ir.Op.Cmp _ -> Ir.Cdfg.width g (Ir.Cdfg.preds g v).(0).Ir.Cdfg.src
    | _ -> Ir.Cdfg.width g v
  in
  Fpga.Delays.additive delays ~cls:(Ir.Op.classify op) ~width

type t = {
  g : Ir.Cdfg.t;
  cfg : config;
  cuts : Cuts.t;
  model : Lp.Model.t;
  s_cycle : Lp.Model.var array;
  l_start : Lp.Model.var array;
  c_cut : Lp.Model.var array array;
  root : Lp.Model.var array;
  reg : Lp.Model.var option array;
  lat : int array;
  onehot : (int * Lp.Model.var array) list;
      (** black-box one-hot cycle binaries, when resources are limited *)
}

(* Per-leaf dependence summary of one cut: how the leaf's value enters the
   cone. *)
type leaf_info = {
  has_comb : bool;  (** some dist-0 edge into the cone *)
  min_reg_dist : int option;  (** tightest registered entry *)
  max_dist : int;  (** worst-case lifetime distance *)
}

let leaf_infos g (cut : Cuts.cut) =
  let tbl : (int, leaf_info) Hashtbl.t = Hashtbl.create 8 in
  Bitdep.Int_set.iter
    (fun w ->
      Array.iter
        (fun (e : Ir.Cdfg.edge) ->
          if e.dist > 0 || not (Bitdep.Int_set.mem e.src cut.Cuts.cone) then begin
            let prev =
              Option.value
                (Hashtbl.find_opt tbl e.src)
                ~default:{ has_comb = false; min_reg_dist = None; max_dist = 0 }
            in
            let info =
              if e.dist = 0 then { prev with has_comb = true }
              else
                {
                  prev with
                  min_reg_dist =
                    Some
                      (match prev.min_reg_dist with
                      | None -> e.dist
                      | Some d -> min d e.dist);
                }
            in
            Hashtbl.replace tbl e.src
              { info with max_dist = max info.max_dist e.dist }
          end)
        (Ir.Cdfg.preds g w))
    cut.Cuts.cone;
  Hashtbl.fold (fun u info acc -> (u, info) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let is_source g v =
  match Ir.Cdfg.op g v with
  | Ir.Op.Input _ | Ir.Op.Const _ -> true
  | _ -> false

let is_const g v =
  match Ir.Cdfg.op g v with Ir.Op.Const _ -> true | _ -> false

let is_black_box g v =
  match Ir.Cdfg.op g v with Ir.Op.Black_box _ -> true | _ -> false

let forced_root g v =
  is_source g v || is_black_box g v || Ir.Cdfg.is_output g v

let build cfg g cuts =
  let n = Ir.Cdfg.num_nodes g in
  let period = Fpga.Device.usable_period cfg.device in
  let m_lat = cfg.max_latency in
  let lat =
    Array.init n (fun v ->
        if is_black_box g v then
          let d = additive_delay ~delays:cfg.delays g cuts.(v).(0) in
          int_of_float (floor (d /. period))
        else 0)
  in
  let max_lat = Array.fold_left max 0 lat in
  let maxdist =
    Ir.Cdfg.fold
      (fun nd acc ->
        Array.fold_left (fun acc (e : Ir.Cdfg.edge) -> max acc e.dist) acc
          nd.preds)
      g 0
  in
  let mc = float_of_int (m_lat + (cfg.ii * maxdist) + max_lat + 2) in
  let mt = period *. (mc +. 1.0) in
  let mreg = mc in
  let model = Lp.Model.create ~name:"mams" () in
  let name fmt = Printf.sprintf fmt in
  let s_cycle =
    Array.init n (fun v ->
        Lp.Model.add_var model ~integer:true ~lb:0.0
          ~ub:(float_of_int m_lat)
          (name "S_%s" (Ir.Cdfg.node_name g v)))
  in
  let l_start =
    Array.init n (fun v ->
        Lp.Model.add_var model ~lb:0.0 ~ub:period
          (name "L_%s" (Ir.Cdfg.node_name g v)))
  in
  let c_cut =
    Array.init n (fun v ->
        Array.init (Array.length cuts.(v)) (fun i ->
            Lp.Model.bool_var model (name "c_%s_%d" (Ir.Cdfg.node_name g v) i)))
  in
  let root =
    Array.init n (fun v ->
        Lp.Model.bool_var model (name "root_%s" (Ir.Cdfg.node_name g v)))
  in
  let reg =
    Array.init n (fun v ->
        if is_const g v then None
        else
          Some
            (Lp.Model.add_var model ~lb:0.0 ~ub:mreg
               (name "reg_%s" (Ir.Cdfg.node_name g v))))
  in
  let cut_delays =
    Array.init n (fun v -> Array.map (fun c -> cfg.cut_delay g c) cuts.(v))
  in
  (* Sources are available at the very start of the pipeline; multi-cycle
     operations start at the cycle boundary. *)
  for v = 0 to n - 1 do
    if is_source g v then begin
      Lp.Model.fix model s_cycle.(v) 0.0;
      Lp.Model.fix model l_start.(v) 0.0
    end;
    if lat.(v) >= 1 then Lp.Model.fix model l_start.(v) 0.0
  done;
  (* Eq. (2): root_v = Σ_i c_{v,i}; Eq. (3): outputs (and all physical
     sources / black boxes) are roots. *)
  for v = 0 to n - 1 do
    let sum = Array.to_list (Array.map (fun c -> (1.0, c)) c_cut.(v)) in
    Lp.Model.add_eq model ~name:(name "cover_%d" v)
      ((-1.0, root.(v)) :: sum)
      0.0;
    if forced_root g v then Lp.Model.fix model root.(v) 1.0
  done;
  (* Eq. (8): the selected cut's delay fits the cycle. *)
  for v = 0 to n - 1 do
    if lat.(v) = 0 then begin
      let dterms =
        Array.to_list (Array.mapi (fun i c -> (cut_delays.(v).(i), c)) c_cut.(v))
        |> List.filter (fun (d, _) -> d <> 0.0)
      in
      Lp.Model.add_le model ~name:(name "fit_%d" v)
        ((1.0, l_start.(v)) :: dterms)
        period
    end
  done;
  (* Per-cut constraints: Eq. (4), dependence + chaining (Eq. 7 & 9), and
     register lifetimes — clique-merged per (v, leaf). Cut selection at
     [v] is one-hot (Eq. (2) with root_v <= 1), so the per-(v,i,u)
     indicator rows of the paper collapse into one row per (v,u) whose
     indicator is the clique sum over every cut of [v] the leaf enters:
     for integer points at most one summand is 1 and the merged row is
     exactly the selected cut's row, while the LP relaxation gets the
     sum of the fractional selections instead of their maximum. Rows
     whose rhs depends on the entry distance merge per (v,u,dist). *)
  for v = 0 to n - 1 do
    (* group (cut index, leaf_info) by leaf *)
    let by_leaf : (int, (int * leaf_info) list ref) Hashtbl.t =
      Hashtbl.create 16
    in
    let leaf_order = ref [] in
    Array.iteri
      (fun i (cut : Cuts.cut) ->
        List.iter
          (fun (u, info) ->
            match Hashtbl.find_opt by_leaf u with
            | Some l -> l := (i, info) :: !l
            | None ->
                Hashtbl.add by_leaf u (ref [ (i, info) ]);
                leaf_order := u :: !leaf_order)
          (leaf_infos g cut))
      cuts.(v);
    List.iter
      (fun u ->
        let entries = List.rev !(Hashtbl.find by_leaf u) in
        let csum is = List.map (fun i -> c_cut.(v).(i)) is in
        (* Eq. (4): leaves of the selected cut are roots. *)
        if not (forced_root g u) then
          Lp.Model.add_le model
            ~name:(name "leafroot_%d_%d" v u)
            (((-1.0), root.(u))
            :: List.map (fun c -> (1.0, c)) (csum (List.map fst entries)))
            0.0;
        let latu = float_of_int lat.(u) in
        let comb_is =
          List.filter_map
            (fun (i, info) -> if info.has_comb then Some i else None)
            entries
        in
        if comb_is <> [] && not (is_source g u) then begin
          let ind coeff = List.map (fun c -> (coeff, c)) (csum comb_is) in
          (* cycle ordering: S_u + lat_u <= S_v when selected *)
          Lp.Model.add_le model
            ~name:(name "dep_%d_%d" v u)
            ([ (1.0, s_cycle.(u)); (-1.0, s_cycle.(v)) ] @ ind mc)
            (mc -. latu);
          (* chaining: same-cycle arrival respects start times;
             residual covers multi-cycle producers *)
          let residual u =
            if is_black_box g u then
              let d = additive_delay ~delays:cfg.delays g cuts.(u).(0) in
              d -. (float_of_int lat.(u) *. period)
            else 0.0
          in
          let du_terms =
            if is_black_box g u then []
            else
              Array.to_list
                (Array.mapi (fun j c -> (cut_delays.(u).(j), c)) c_cut.(u))
              |> List.filter (fun (d, _) -> d <> 0.0)
          in
          Lp.Model.add_le model
            ~name:(name "chain_%d_%d" v u)
            ([
               (period, s_cycle.(u));
               (-.period, s_cycle.(v));
               (1.0, l_start.(u));
               (-1.0, l_start.(v));
             ]
            @ ind mt @ du_terms)
            (mt -. (latu *. period) -. residual u)
        end;
        (* registered entries: produced strictly before use; the rhs
           depends on the entry distance, so merge per distance *)
        let reg_groups : (int, int list ref) Hashtbl.t = Hashtbl.create 4 in
        List.iter
          (fun (i, info) ->
            match info.min_reg_dist with
            | None -> ()
            | Some d -> (
                match Hashtbl.find_opt reg_groups d with
                | Some l -> l := i :: !l
                | None -> Hashtbl.add reg_groups d (ref [ i ])))
          entries;
        Hashtbl.iter
          (fun d is ->
            Lp.Model.add_le model
              ~name:(name "regdep_%d_%d_%d" v u d)
              ([ (1.0, s_cycle.(u)); (-1.0, s_cycle.(v)) ]
              @ List.map (fun c -> (mc, c)) (csum (List.rev !is)))
              (mc +. float_of_int ((cfg.ii * d) - 1) -. latu))
          reg_groups;
        (* register lifetime of the leaf's value, merged per worst-case
           entry distance *)
        match reg.(u) with
        | None -> ()
        | Some reg_u ->
            let life_groups : (int, int list ref) Hashtbl.t =
              Hashtbl.create 4
            in
            List.iter
              (fun (i, info) ->
                match Hashtbl.find_opt life_groups info.max_dist with
                | Some l -> l := i :: !l
                | None -> Hashtbl.add life_groups info.max_dist (ref [ i ]))
              entries;
            Hashtbl.iter
              (fun dist is ->
                Lp.Model.add_le model
                  ~name:(name "life_%d_%d_%d" v u dist)
                  ([
                     (1.0, s_cycle.(v));
                     (-1.0, s_cycle.(u));
                     (-1.0, reg_u);
                   ]
                  @ List.map (fun c -> (mreg, c)) (csum (List.rev !is)))
                  (mreg -. float_of_int (cfg.ii * dist) +. latu))
              life_groups)
      (List.rev !leaf_order)
  done;
  (* Eq. (14): modulo resource constraints via one-hot cycle binaries for
     black boxes of limited classes. *)
  let all_onehots = ref [] in
  let limited = Fpga.Resource.classes cfg.resources in
  if limited <> [] then begin
    let by_class : (string, (int * Lp.Model.var array) list ref) Hashtbl.t =
      Hashtbl.create 4
    in
    for v = 0 to n - 1 do
      match Ir.Cdfg.op g v with
      | Ir.Op.Black_box { resource; _ } when List.mem resource limited ->
          let onehot =
            Array.init (m_lat + 1) (fun t ->
                Lp.Model.bool_var model
                  (name "s_%s_%d" (Ir.Cdfg.node_name g v) t))
          in
          Lp.Model.add_eq model
            ~name:(name "onehot_%d" v)
            (Array.to_list (Array.map (fun x -> (1.0, x)) onehot))
            1.0;
          Lp.Model.add_eq model
            ~name:(name "slink_%d" v)
            ((-1.0, s_cycle.(v))
            :: Array.to_list
                 (Array.mapi (fun t x -> (float_of_int t, x)) onehot))
            0.0;
          let l =
            match Hashtbl.find_opt by_class resource with
            | Some l -> l
            | None ->
                let l = ref [] in
                Hashtbl.add by_class resource l;
                l
          in
          l := (v, onehot) :: !l;
          all_onehots := (v, onehot) :: !all_onehots
      | _ -> ()
    done;
    List.iter
      (fun r ->
        match (Fpga.Resource.limit cfg.resources r, Hashtbl.find_opt by_class r) with
        | Some lim, Some users ->
            for phase = 0 to cfg.ii - 1 do
              let terms =
                List.concat_map
                  (fun (_, onehot) ->
                    Array.to_list onehot
                    |> List.filteri (fun t _ -> t mod cfg.ii = phase)
                    |> List.map (fun x -> (1.0, x)))
                  !users
              in
              if terms <> [] then
                Lp.Model.add_le model
                  ~name:(name "res_%s_%d" r phase)
                  terms (float_of_int lim)
            done
        | _, _ -> ())
      limited
  end;
  (* Eq. (15): α · LUT area + β · register bits, plus a latency tie-break
     strictly smaller than any area/register increment so co-optimal
     solutions prefer the shorter pipeline. *)
  let obj = ref [] in
  let tie =
    let unit = Float.min cfg.alpha cfg.beta in
    let unit = if unit <= 0.0 then 1.0 else unit in
    0.4 *. unit /. float_of_int ((n * (m_lat + 1)) + 1)
  in
  for v = 0 to n - 1 do
    Array.iteri
      (fun i c ->
        let a = float_of_int cuts.(v).(i).Cuts.area in
        if a > 0.0 then obj := (cfg.alpha *. a, c) :: !obj)
      c_cut.(v);
    obj := (tie, s_cycle.(v)) :: !obj;
    match reg.(v) with
    | Some r ->
        obj := (cfg.beta *. float_of_int (Ir.Cdfg.width g v), r) :: !obj
    | None -> ()
  done;
  Lp.Model.set_objective model !obj;
  {
    g; cfg; cuts; model; s_cycle; l_start; c_cut; root; reg; lat;
    onehot = !all_onehots;
  }

let model t = t.model

let branch_priorities t =
  let p = Array.make (Lp.Model.num_vars t.model) 0 in
  let set var v = p.(Lp.Model.var_index var) <- v in
  Array.iter (fun cs -> Array.iter (fun c -> set c 3) cs) t.c_cut;
  Array.iter (fun r -> set r 2) t.root;
  List.iter (fun (_, onehot) -> Array.iter (fun x -> set x 2) onehot) t.onehot;
  Array.iter (fun s -> set s 1) t.s_cycle;
  p

let incumbent_of_schedule t (sched : Sched.Schedule.t) cover =
  let n = Ir.Cdfg.num_nodes t.g in
  let x = Array.make (Lp.Model.num_vars t.model) 0.0 in
  let set var v = x.(Lp.Model.var_index var) <- v in
  for v = 0 to n - 1 do
    set t.s_cycle.(v) (float_of_int sched.cycle.(v));
    set t.l_start.(v) sched.start.(v)
  done;
  let chosen_index v =
    match Sched.Cover.chosen cover v with
    | None -> None
    | Some (c : Cuts.cut) ->
        let found = ref None in
        Array.iteri
          (fun i (c' : Cuts.cut) ->
            if !found = None && c'.Cuts.leaves = c.Cuts.leaves then found := Some i)
          t.cuts.(v);
        (match !found with
        | None -> invalid_arg "Formulation.incumbent_of_schedule: unknown cut"
        | Some _ -> ());
        !found
  in
  for v = 0 to n - 1 do
    match chosen_index v with
    | None -> ()
    | Some i ->
        set t.c_cut.(v).(i) 1.0;
        set t.root.(v) 1.0
  done;
  (* Register lifetimes implied by the chosen cuts. *)
  let need = Array.make n 0.0 in
  for v = 0 to n - 1 do
    match Sched.Cover.chosen cover v with
    | None -> ()
    | Some cut ->
        List.iter
          (fun (u, info) ->
            let life =
              float_of_int
                (sched.cycle.(v)
                + (sched.ii * info.max_dist)
                - sched.cycle.(u) - t.lat.(u))
            in
            if life > need.(u) then need.(u) <- life)
          (leaf_infos t.g cut)
  done;
  for v = 0 to n - 1 do
    match t.reg.(v) with Some r -> set r need.(v) | None -> ()
  done;
  List.iter
    (fun (v, onehot) -> set onehot.(sched.cycle.(v)) 1.0)
    t.onehot;
  x

let extract t (r : Lp.Milp.result) =
  let n = Ir.Cdfg.num_nodes t.g in
  let cycle = Array.init n (fun v -> Lp.Milp.int_value r t.s_cycle.(v)) in
  let start = Array.init n (fun v -> Lp.Milp.value r t.l_start.(v)) in
  let selections = ref [] in
  for v = 0 to n - 1 do
    Array.iteri
      (fun i c ->
        if Lp.Milp.int_value r c = 1 then
          selections := (v, t.cuts.(v).(i)) :: !selections)
      t.c_cut.(v)
  done;
  let sched = Sched.Schedule.make ~ii:t.cfg.ii ~cycle ~start in
  (sched, Sched.Cover.make t.g !selections)

let size t = Fmt.str "%a" Lp.Model.pp_stats t.model
