(** The three experimental flows compared in the paper's Table 1:

    - {b HLS-Tool}: the heuristic additive-delay modulo scheduler followed
      by downstream technology mapping that must respect the schedule's
      register boundaries (the commercial-tool stand-in);
    - {b MILP-base}: the MILP with cut enumeration skipped (trivial cuts
      only) and additive delays — exact scheduling, no mapping awareness —
      followed by the same downstream mapping;
    - {b MILP-map}: the full mapping-aware MILP; schedule and cover come
      out of the same solve;
    - {b SDC} (extension): difference-constraint modulo scheduling, the
      LegUp / Vivado-HLS style algorithm the paper builds on (refs [22],
      [3]) — additive delays, LP-based, downstream mapping;
    - {b Map-first} (extension, the paper's Sec. 5 future work): a
      scalable heuristic that maps the whole graph with area flow first,
      then runs cover-aware ASAP modulo scheduling — no MILP. Also used as
      the MILP-map warm start.

    All flows report QoR under the same post-mapping delay/area model, the
    analogue of measuring everything post place-and-route.

    {2 Resilience}

    Every method runs through a {!Resilience.Cascade}: the full-strength
    configuration first, then progressively relaxed retries (halved MILP
    budget via {!Resilience.Cascade.backoff}, coarser cut parameters), then
    algorithmic fallbacks, ending in a trivial-cuts heuristic that touches
    neither cut enumeration nor any LP/MILP and therefore survives every
    registered fault point ({!Resilience.Fault}). Exceptions raised inside
    an attempt are contained and the cascade continues; transient failure
    classes earn the full-strength MILP rungs one bounded deterministic
    in-place retry before the ladder degrades (resilience-v2). Whatever
    attempt wins, the returned (schedule, cover) passes
    {!Sched.Verify.check}; the failed attempts and soft degradations
    (truncated enumeration, degraded mapping, uncertified optimality,
    supervised in-flight recoveries) form the result's [trail], serialized
    as the Metrics [degradation] array and mirrored as RES001/RES002
    (contained/degraded), RES004 (in-place retry) and RES005 (in-flight
    recovery) diagnostics. A cascade that exhausts every attempt returns
    [Error] with an ["RES003"]-prefixed message. *)

type method_ = Hls_tool | Sdc_tool | Milp_base | Milp_map | Map_heuristic

type setup = {
  device : Fpga.Device.t;
  delays : Fpga.Delays.t;
  resources : Fpga.Resource.budget;
  ii : int;
  alpha : float;
  beta : float;
  cut_params : Cuts.params option;  (** [None]: {!Cuts.default_params} *)
  time_limit : float;  (** MILP budget, seconds (the paper used 3600) *)
  wall_budget : float option;
      (** global wall-clock budget for the whole run (lint, cut
          enumeration, solve, mapping, verification); [None] = unlimited.
          Split across phases and threaded as a cooperative
          {!Resilience.Deadline} into every subsystem. *)
  domains : int option;
      (** B&B worker-domain count passed to {!Lp.Milp.solve} ([--domains]
          on the CLI); [None] defers to the [PIPESYN_DOMAINS] environment
          variable, else 1. *)
  audit : bool;
      (** make every MILP solve proof-carrying
          ([Lp.Milp.solve ~certificates:true]) and re-verify the
          certificate in exact rational arithmetic ([Analyze.Audit])
          after the solve. Observational: CERT1xx findings land in the
          result's metrics ([diagnostics] plus the [audit_errors]
          field), they never change the flow's schedule or status. *)
  checkpoint : Lp.Milp.checkpoint_sink option;
      (** snapshot every MILP rung's live solve to this sink
          ([--checkpoint] / [--checkpoint-every] on the CLI); [None] = no
          checkpointing. *)
  resume : Lp.Checkpoint.t option;
      (** resume the full-strength MILP rung from this snapshot
          ([pipesyn resume]); degraded rungs re-solve from scratch (their
          formulation differs, so the frontier would not match). *)
  stall_window : float option;
      (** stall-watchdog window in seconds ([--stall-window]); [None] =
          watchdog off. See {!Lp.Milp.solve}. *)
  cuts : bool option;
      (** root cutting planes for the MILP rungs ([--cuts]/[--no-cuts]);
          [None] defers to the [PIPESYN_CUTS] environment variable, on
          by default. See {!Lp.Milp.solve}. *)
  presolve : bool option;
      (** certified root bound tightening ([--presolve]/[--no-presolve]);
          [None] = on. See {!Lp.Milp.solve}. *)
}

val default_setup : device:Fpga.Device.t -> setup
(** [ii = 1], [alpha = beta = 0.5] (paper Sec. 4), default delays,
    unlimited resources, 60 s MILP budget, no wall-clock budget,
    [domains = None], [audit = false], no checkpointing or resume, stall
    watchdog off, cuts and presolve deferred to their defaults (on). *)

type solve_info = {
  runtime : float;  (** seconds spent in the MILP (0 for the heuristic) *)
  milp_status : Lp.Milp.status option;
  milp_stats : Lp.Milp.stats option;
  milp_objective : float option;
      (** final MILP objective (constant included); [None] for
          heuristic flows *)
  model_size : string option;
  cert_nodes : int;
      (** node count of the solve's proof-carrying certificate; 0 when
          none was requested or produced *)
  audit_diags : Analyze.Diag.t list option;
      (** exact-rational certificate audit findings (pass ["audit"],
          codes CERT101–CERT108); [None] when the audit did not run *)
}

type result = {
  method_ : method_;  (** the {e requested} method, even after fallback *)
  schedule : Sched.Schedule.t;
  cover : Sched.Cover.t;
  qor : Sched.Qor.t;
  solve : solve_info;
  metrics : Obs.Metrics.t;
      (** structured metrics for JSON emission; [name] is [""] until a
          caller brands it with {!metrics} *)
  trail : Resilience.Cascade.attempt list;
      (** degradation trail: failed attempts first (in execution order),
          then soft degradations; [[]] means the full-strength attempt
          succeeded cleanly *)
}

val lint :
  setup -> Ir.Cdfg.t -> (Analyze.Diag.t list, Analyze.Diag.t list) Stdlib.result
(** The fail-fast static gate {!run} executes before paying any solver
    cost: CDFG lints ({!Analyze.Cdfg_lint}) plus the pipelining pre-flight
    ({!Analyze.Preflight}) under the setup's device/delay/resource/II
    configuration. [Ok diags] carries warnings and infos only; [Error
    diags] contains at least one error-severity diagnostic. *)

val run :
  ?deadline:Resilience.Deadline.t ->
  setup ->
  method_ ->
  Ir.Cdfg.t ->
  (result, string) Stdlib.result
(** Runs one flow through its degradation cascade. The {!lint} gate
    executes first — error diagnostics abort the run before cut
    enumeration or scheduling, warnings are logged and recorded in the
    result's [metrics.diagnostics]. [deadline] (default: derived from
    [setup.wall_budget], or no deadline) bounds the whole run. The
    returned (schedule, cover) pair always passes {!Sched.Verify.check} —
    a verification failure fails that cascade attempt (recorded with
    reason ["verify"]) and the next fallback runs. [Error] means the lint
    gate found errors or the cascade was exhausted (["RES003"]). *)

val run_all :
  ?deadline:Resilience.Deadline.t ->
  setup ->
  Ir.Cdfg.t ->
  (method_ * (result, string) Stdlib.result) list
(** All three flows in Table 1 order. *)

val method_name : method_ -> string

val metrics : name:string -> result -> Obs.Metrics.t
(** The result's metrics record stamped with the benchmark [name] — the
    unit serialized by [pipesyn --json] and [BENCH_results.json]. *)

val error_metrics :
  ?diags:Analyze.Diag.t list -> name:string -> method_ -> Obs.Metrics.t
(** A placeholder record (zero QoR, NaN slack, status ["error"]) so failed
    runs still appear in the perf trajectory. [diags] (default empty)
    populates the record's [diagnostics] array — e.g. the gate findings
    that caused the failure. *)

val pp_result : result Fmt.t
