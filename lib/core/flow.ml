type method_ = Hls_tool | Sdc_tool | Milp_base | Milp_map | Map_heuristic

type setup = {
  device : Fpga.Device.t;
  delays : Fpga.Delays.t;
  resources : Fpga.Resource.budget;
  ii : int;
  alpha : float;
  beta : float;
  cut_params : Cuts.params option;
  time_limit : float;
}

let default_setup ~device =
  {
    device;
    delays = Fpga.Delays.default;
    resources = Fpga.Resource.unlimited;
    ii = 1;
    alpha = 0.5;
    beta = 0.5;
    cut_params = None;
    time_limit = 60.0;
  }

type solve_info = {
  runtime : float;
  milp_status : Lp.Milp.status option;
  milp_stats : Lp.Milp.stats option;
  model_size : string option;
}

type result = {
  method_ : method_;
  schedule : Sched.Schedule.t;
  cover : Sched.Cover.t;
  qor : Sched.Qor.t;
  solve : solve_info;
  metrics : Obs.Metrics.t;
}

let method_name = function
  | Hls_tool -> "HLS Tool"
  | Sdc_tool -> "SDC"
  | Milp_base -> "MILP-base"
  | Milp_map -> "MILP-map"
  | Map_heuristic -> "Map-first"

let diags_json diags =
  List.map Analyze.Diag.to_json (List.sort Analyze.Diag.compare diags)

let metrics_of setup method_ ~cuts_total ~gate_diags (qor : Sched.Qor.t)
    (solve : solve_info) =
  {
    Obs.Metrics.name = "";
    method_ = method_name method_;
    lut = qor.Sched.Qor.luts;
    ff = qor.Sched.Qor.ffs;
    slack = setup.device.Fpga.Device.t_clk -. qor.Sched.Qor.cp;
    solve_s = solve.runtime;
    bnb_nodes =
      (match solve.milp_stats with
      | Some s -> s.Lp.Milp.nodes
      | None -> 0);
    cuts_total;
    status =
      (match solve.milp_status with
      | Some s -> Fmt.str "%a" Lp.Milp.pp_status s
      | None -> "heuristic");
    diagnostics = diags_json gate_diags;
  }

let metrics ~name r = { r.metrics with Obs.Metrics.name }

let error_metrics ?(diags = []) ~name method_ =
  {
    Obs.Metrics.name;
    method_ = method_name method_;
    lut = 0;
    ff = 0;
    slack = Float.nan;
    solve_s = 0.0;
    bnb_nodes = 0;
    cuts_total = 0;
    status = "error";
    diagnostics = diags_json diags;
  }

let heuristic_info = { runtime = 0.0; milp_status = None; milp_stats = None;
                       model_size = None }

let verify_ctx (s : setup) : Sched.Verify.context =
  let device = s.device and delays = s.delays and resources = s.resources in
  { Sched.Verify.device; delays; resources }

(* Final QoR is always measured under the mapped delay model — the analogue
   of post-place-and-route reporting. *)
let finalize setup g ~cuts_total ~gate_diags cover sched solve method_ =
  let sched =
    Sched.Timing.recompute_starts ~device:setup.device ~delays:setup.delays g
      cover sched
  in
  match Sched.Verify.check (verify_ctx setup) g cover sched with
  | Error errs ->
      let diags = Analyze.Cert.of_messages errs in
      Error
        (Printf.sprintf "%s: illegal result: %s" (method_name method_)
           (String.concat "; "
              (List.map
                 (fun (d : Analyze.Diag.t) ->
                   d.Analyze.Diag.code ^ " " ^ d.Analyze.Diag.message)
                 diags)))
  | Ok () ->
      let qor =
        Sched.Qor.evaluate ~device:setup.device ~delays:setup.delays g cover
          sched
      in
      let metrics = metrics_of setup method_ ~cuts_total ~gate_diags qor solve in
      Ok { method_; schedule = sched; cover; qor; solve; metrics }

let enum_cuts setup g =
  let params =
    match setup.cut_params with
    | Some p -> p
    | None -> Cuts.default_params ~k:setup.device.Fpga.Device.k
  in
  Cuts.enumerate ~params ~k:setup.device.Fpga.Device.k g

let baseline setup g =
  match
    Sched.Heuristic.schedule ~device:setup.device ~delays:setup.delays
      ~resources:setup.resources ~ii:setup.ii g
  with
  | Error e -> Error (Fmt.str "heuristic baseline failed: %a" Sched.Heuristic.pp_error e)
  | Ok sched -> Ok sched

let run_hls setup ~gate_diags g =
  match baseline setup g with
  | Error _ as e -> e
  | Ok sched ->
      let cuts = enum_cuts setup g in
      let cover =
        Techmap.map_schedule ~device:setup.device ~delays:setup.delays ~cuts g
          sched
      in
      finalize setup g ~cuts_total:(Cuts.total_cuts cuts) ~gate_diags cover
        sched heuristic_info Hls_tool

(* SDC modulo scheduling (the LegUp/Vivado-HLS style baseline, refs [22]
   and [3] of the paper), with the same downstream mapping as the HLS
   flow. *)
let run_sdc setup ~gate_diags g =
  match
    Sched.Sdc.schedule ~device:setup.device ~delays:setup.delays
      ~resources:setup.resources ~ii:setup.ii g
  with
  | Error e -> Error (Fmt.str "SDC scheduling failed: %a" Sched.Heuristic.pp_error e)
  | Ok sched ->
      let cuts = enum_cuts setup g in
      let cover =
        Techmap.map_schedule ~device:setup.device ~delays:setup.delays ~cuts g
          sched
      in
      finalize setup g ~cuts_total:(Cuts.total_cuts cuts) ~gate_diags cover
        sched heuristic_info Sdc_tool

(* Map-first (the paper's future-work heuristic): area-flow cover of the
   whole graph, then cover-aware ASAP modulo scheduling. *)
let run_map_first setup ~gate_diags g =
  let cuts = enum_cuts setup g in
  let cover = Techmap.map_global ~device:setup.device ~delays:setup.delays ~cuts g in
  match
    Sched.Mapsched.schedule ~device:setup.device ~delays:setup.delays
      ~resources:setup.resources ~ii:setup.ii g cover
  with
  | Error e ->
      Error (Fmt.str "map-first failed: %a" Sched.Heuristic.pp_error e)
  | Ok sched ->
      finalize setup g ~cuts_total:(Cuts.total_cuts cuts) ~gate_diags cover
        sched heuristic_info Map_heuristic

let run_milp setup ~gate_diags g ~mapping_aware =
  match baseline setup g with
  | Error _ as e -> e
  | Ok base_sched -> (
      let cuts =
        if mapping_aware then enum_cuts setup g else Cuts.trivial_only g
      in
      (* The warm start must be feasible under the formulation's own delay
         model. For MILP-map that model prices every trivial logic cut at
         one LUT delay, which can exceed the characterized delay — so the
         incumbent is re-scheduled with logic delays pinned to the LUT
         delay. *)
      let incumbent_sched =
        if not mapping_aware then Some base_sched
        else
          let warm_delays =
            Fpga.Delays.with_logic setup.delays
              ~logic:setup.device.Fpga.Device.lut_delay
          in
          match
            Sched.Heuristic.schedule ~device:setup.device ~delays:warm_delays
              ~resources:setup.resources ~ii:setup.ii g
          with
          | Ok s -> Some s
          | Error _ -> None
      in
      let max_latency =
        List.fold_left
          (fun acc s -> max acc (Sched.Schedule.latency s))
          (Sched.Schedule.latency base_sched)
          (Option.to_list incumbent_sched)
      in
      let cfg =
        Formulation.
          {
            device = setup.device;
            delays = setup.delays;
            resources = setup.resources;
            ii = setup.ii;
            max_latency;
            alpha = setup.alpha;
            beta = setup.beta;
            cut_delay =
              (if mapping_aware then
                 Formulation.mapped_delay ~device:setup.device
                   ~delays:setup.delays
               else Formulation.additive_delay ~delays:setup.delays);
          }
      in
      let f = Formulation.build cfg g cuts in
      let trivial_cover = Sched.Cover.all_trivial g (Cuts.trivial_only g) in
      (* For MILP-map the strongest safe warm start is the area-flow mapped
         cover of the warm schedule (the full HLS-Tool result under mapped
         delays); fall back to the all-trivial cover, then to no warm
         start. *)
      let try_incumbent s cover =
        let sched =
          Sched.Timing.recompute_starts ~device:setup.device
            ~delays:setup.delays g cover s
        in
        match Formulation.incumbent_of_schedule f sched cover with
        | exception Invalid_argument _ -> None
        | x -> (
            match
              Lp.Model.check (Formulation.model f)
                ~values:(fun v -> x.(Lp.Model.var_index v))
                ()
            with
            | Ok () -> Some x
            | Error msg ->
                Logs.debug (fun fmt ->
                    fmt "dropping infeasible warm start: %s" msg);
                None)
      in
      let incumbent =
        match incumbent_sched with
        | None -> None
        | Some s ->
            let map_first () =
              let cover =
                Techmap.map_global ~device:setup.device ~delays:setup.delays
                  ~cuts g
              in
              match
                Sched.Mapsched.schedule ~device:setup.device
                  ~delays:setup.delays ~resources:setup.resources ~ii:setup.ii
                  g cover
              with
              | Ok ms when Sched.Schedule.latency ms <= cfg.Formulation.max_latency
                -> try_incumbent ms cover
              | Ok _ | Error _ -> None
            in
            let candidates =
              if mapping_aware then
                [
                  map_first;
                  (fun () ->
                    try_incumbent s
                      (Techmap.map_schedule ~device:setup.device
                         ~delays:setup.delays ~cuts g s));
                  (fun () -> try_incumbent s trivial_cover);
                ]
              else [ (fun () -> try_incumbent s trivial_cover) ]
            in
            List.fold_left
              (fun acc c -> match acc with Some _ -> acc | None -> c ())
              None candidates
      in
      let t0 = Sys.time () in
      let r =
        Lp.Milp.solve ~time_limit:setup.time_limit ?incumbent
          ~branch_priority:(Formulation.branch_priorities f)
          (Formulation.model f)
      in
      let runtime = Sys.time () -. t0 in
      let solve =
        {
          runtime;
          milp_status = Some r.Lp.Milp.status;
          milp_stats = Some r.Lp.Milp.stats;
          model_size = Some (Formulation.size f);
        }
      in
      match r.Lp.Milp.status with
      | Lp.Milp.Infeasible | Lp.Milp.Unbounded | Lp.Milp.Unknown ->
          Error
            (Fmt.str "MILP failed: %a after %.1fs" Lp.Milp.pp_status
               r.Lp.Milp.status runtime)
      | Lp.Milp.Optimal | Lp.Milp.Feasible ->
          let sched, cover = Formulation.extract f r in
          if mapping_aware then
            finalize setup g ~cuts_total:(Cuts.total_cuts cuts) ~gate_diags
              cover sched solve Milp_map
          else
            (* MILP-base: exact schedule, then the same downstream mapping
               as the commercial flow. *)
            let cuts_full = enum_cuts setup g in
            let cover =
              Techmap.map_schedule ~device:setup.device ~delays:setup.delays
                ~cuts:cuts_full g sched
            in
            finalize setup g ~cuts_total:(Cuts.total_cuts cuts_full)
              ~gate_diags cover sched solve Milp_base)

let preflight_config (s : setup) =
  {
    Analyze.Preflight.device = s.device;
    delays = s.delays;
    resources = s.resources;
    ii = s.ii;
  }

let lint setup g = Analyze.Engine.static_gate (preflight_config setup) g

let run setup method_ g =
  (* Fail-fast gate: static CDFG lints and the pipelining pre-flight run
     before any cut enumeration or solver cost is paid. Warnings and infos
     are logged and recorded in the result's metrics; errors abort. *)
  match lint setup g with
  | Error diags ->
      Error
        (Fmt.str "lint gate failed (%s): %s"
           (Analyze.Diag.summary diags)
           (String.concat "; "
              (List.map
                 (fun (d : Analyze.Diag.t) ->
                   d.Analyze.Diag.code ^ " " ^ d.Analyze.Diag.message)
                 (Analyze.Diag.errors diags))))
  | Ok gate_diags ->
      List.iter
        (fun (d : Analyze.Diag.t) ->
          Logs.warn (fun fmt -> fmt "%a" Analyze.Diag.pp d))
        (Analyze.Diag.warnings gate_diags);
      (match method_ with
      | Hls_tool -> run_hls setup ~gate_diags g
      | Sdc_tool -> run_sdc setup ~gate_diags g
      | Milp_base -> run_milp setup ~gate_diags g ~mapping_aware:false
      | Milp_map -> run_milp setup ~gate_diags g ~mapping_aware:true
      | Map_heuristic -> run_map_first setup ~gate_diags g)

let run_all setup g =
  List.map (fun m -> (m, run setup m g)) [ Hls_tool; Milp_base; Milp_map ]

let pp_result ppf r =
  Fmt.pf ppf "%-9s %a" (method_name r.method_) Sched.Qor.pp r.qor;
  match r.solve.milp_stats with
  | Some s -> Fmt.pf ppf "  [%a]" Lp.Milp.pp_stats s
  | None -> ()
