type method_ = Hls_tool | Sdc_tool | Milp_base | Milp_map | Map_heuristic

type setup = {
  device : Fpga.Device.t;
  delays : Fpga.Delays.t;
  resources : Fpga.Resource.budget;
  ii : int;
  alpha : float;
  beta : float;
  cut_params : Cuts.params option;
  time_limit : float;
  wall_budget : float option;
  domains : int option;
  audit : bool;
  checkpoint : Lp.Milp.checkpoint_sink option;
  resume : Lp.Checkpoint.t option;
  stall_window : float option;
  cuts : bool option;
      (** root cutting planes; [None] defers to [PIPESYN_CUTS] (on by
          default) *)
  presolve : bool option;  (** certified root bound tightening *)
}

let default_setup ~device =
  {
    device;
    delays = Fpga.Delays.default;
    resources = Fpga.Resource.unlimited;
    ii = 1;
    alpha = 0.5;
    beta = 0.5;
    cut_params = None;
    time_limit = 60.0;
    wall_budget = None;
    domains = None;
    audit = false;
    checkpoint = None;
    resume = None;
    stall_window = None;
    cuts = None;
    presolve = None;
  }

type solve_info = {
  runtime : float;
  milp_status : Lp.Milp.status option;
  milp_stats : Lp.Milp.stats option;
  milp_objective : float option;
  model_size : string option;
  cert_nodes : int;
  audit_diags : Analyze.Diag.t list option;
      (** exact-rational audit findings; [None] when the audit did not
          run (heuristic flow or [setup.audit = false]) *)
}

type result = {
  method_ : method_;
  schedule : Sched.Schedule.t;
  cover : Sched.Cover.t;
  qor : Sched.Qor.t;
  solve : solve_info;
  metrics : Obs.Metrics.t;
  trail : Resilience.Cascade.attempt list;
}

let method_name = function
  | Hls_tool -> "HLS Tool"
  | Sdc_tool -> "SDC"
  | Milp_base -> "MILP-base"
  | Milp_map -> "MILP-map"
  | Map_heuristic -> "Map-first"

let diags_json diags =
  List.map Analyze.Diag.to_json (List.sort Analyze.Diag.compare diags)

(* Degradation trail entries double as diagnostics: RES001 for contained
   exceptions, RES002 for every other failed/degraded attempt, RES004 for
   a bounded same-rung retry of a transient failure, RES005 for solve
   supervision recoveries (worker deaths replayed, watchdog requeues)
   inside an accepted solve. Cascade exhaustion is RES003 (see the error
   message in [run]). *)
let trail_diags trail =
  List.map
    (fun (a : Resilience.Cascade.attempt) ->
      if a.Resilience.Cascade.retry > 0 then
        Analyze.Diag.warnf
          ~witness:[ a.Resilience.Cascade.detail ]
          ~code:"RES004" ~pass:"resilience.cascade" ~loc:Analyze.Diag.Global
          "attempt '%s' retried in place (try %d, %s): transient failure \
           class, same rung re-run before degrading"
          a.Resilience.Cascade.label a.Resilience.Cascade.retry
          a.Resilience.Cascade.reason
      else if a.Resilience.Cascade.reason = "recovery" then
        Analyze.Diag.warnf
          ~witness:[ a.Resilience.Cascade.detail ]
          ~code:"RES005" ~pass:"resilience.cascade" ~loc:Analyze.Diag.Global
          "attempt '%s' recovered in flight: %s" a.Resilience.Cascade.label
          a.Resilience.Cascade.detail
      else if a.Resilience.Cascade.reason = "exception" then
        Analyze.Diag.warnf
          ~witness:[ a.Resilience.Cascade.detail ]
          ~code:"RES001" ~pass:"resilience.cascade" ~loc:Analyze.Diag.Global
          "attempt '%s' raised; exception contained, cascade continued"
          a.Resilience.Cascade.label
      else
        Analyze.Diag.warnf
          ~witness:[ a.Resilience.Cascade.detail ]
          ~code:"RES002" ~pass:"resilience.cascade" ~loc:Analyze.Diag.Global
          "attempt '%s' degraded (%s)" a.Resilience.Cascade.label
          a.Resilience.Cascade.reason)
    trail

let metrics_of setup method_ ~cuts_total ~gate_diags (qor : Sched.Qor.t)
    (solve : solve_info) =
  {
    Obs.Metrics.name = "";
    method_ = method_name method_;
    lut = qor.Sched.Qor.luts;
    ff = qor.Sched.Qor.ffs;
    slack = setup.device.Fpga.Device.t_clk -. qor.Sched.Qor.cp;
    (* Methods that never entered the MILP report null (not 0): a real
       solve always explores at least the root node, so 0.0/0 would be
       indistinguishable from an instant exact solve. *)
    solve_s =
      (match solve.milp_stats with
      | Some _ -> Some solve.runtime
      | None -> None);
    bnb_nodes =
      (match solve.milp_stats with
      | Some s -> Some s.Lp.Milp.nodes
      | None -> None);
    lp_pivots =
      (match solve.milp_stats with
      | Some s -> Some s.Lp.Milp.lp_iterations
      | None -> None);
    cuts_total;
    first_incumbent_s =
      (match solve.milp_stats with
      | Some s -> s.Lp.Milp.first_incumbent_s
      | None -> Float.nan);
    final_gap =
      (match solve.milp_stats with
      | Some s -> s.Lp.Milp.gap
      | None -> Float.nan);
    status =
      (match solve.milp_status with
      | Some s -> Fmt.str "%a" Lp.Milp.pp_status s
      | None -> "heuristic");
    objective = Option.value ~default:Float.nan solve.milp_objective;
    domains =
      (match solve.milp_stats with
      | Some s -> s.Lp.Milp.domains
      | None -> 1);
    nodes_per_s =
      (match solve.milp_stats with
      | Some s when s.Lp.Milp.nodes > 0 && solve.runtime > 1e-9 ->
          float_of_int s.Lp.Milp.nodes /. solve.runtime
      | _ -> Float.nan);
    cert_nodes = solve.cert_nodes;
    audit_errors =
      (match solve.audit_diags with
      | None -> None
      | Some d -> Some (List.length (Analyze.Diag.errors d)));
    milp_cuts =
      (match solve.milp_stats with
      | Some s -> s.Lp.Milp.cuts_applied
      | None -> 0);
    gap_closed_root =
      (match solve.milp_stats with
      | Some s -> s.Lp.Milp.gap_closed_root
      | None -> Float.nan);
    checkpoints =
      (match solve.milp_stats with
      | Some s -> s.Lp.Milp.checkpoints
      | None -> 0);
    recoveries =
      (match solve.milp_stats with
      | Some s -> s.Lp.Milp.recoveries
      | None -> 0);
    stalls =
      (match solve.milp_stats with
      | Some s -> s.Lp.Milp.stalls
      | None -> 0);
    (* Filled in by [run]'s Gc.quick_stat bracket around the whole
       cascade; metrics are assembled mid-run, before the delta is
       known. *)
    gc_minor_words = 0.0;
    gc_major_words = 0.0;
    diagnostics =
      diags_json (gate_diags @ Option.value ~default:[] solve.audit_diags);
    degradation = [];
  }

let metrics ~name r = { r.metrics with Obs.Metrics.name }

let error_metrics ?(diags = []) ~name method_ =
  {
    Obs.Metrics.name;
    method_ = method_name method_;
    lut = 0;
    ff = 0;
    slack = Float.nan;
    solve_s = None;
    bnb_nodes = None;
    lp_pivots = None;
    cuts_total = 0;
    first_incumbent_s = Float.nan;
    final_gap = Float.nan;
    status = "error";
    objective = Float.nan;
    domains = 1;
    nodes_per_s = Float.nan;
    cert_nodes = 0;
    audit_errors = None;
    milp_cuts = 0;
    gap_closed_root = Float.nan;
    checkpoints = 0;
    recoveries = 0;
    stalls = 0;
    gc_minor_words = 0.0;
    gc_major_words = 0.0;
    diagnostics = diags_json diags;
    degradation = [];
  }

let heuristic_info = { runtime = 0.0; milp_status = None; milp_stats = None;
                       milp_objective = None; model_size = None;
                       cert_nodes = 0; audit_diags = None }

let verify_ctx (s : setup) : Sched.Verify.context =
  let device = s.device and delays = s.delays and resources = s.resources in
  { Sched.Verify.device; delays; resources }

(* Soft degradations — truncated cut enumeration, degraded mapping, numeric
   trouble inside an otherwise accepted solve — are collected here and
   merged into the trail of whichever attempt eventually wins. *)
type ctx = {
  gate_diags : Analyze.Diag.t list;
  notes : Resilience.Cascade.attempt list ref;
}

let note ctx ~label ~reason ~detail =
  ctx.notes :=
    { Resilience.Cascade.label; reason; detail; elapsed = 0.0; retry = 0 }
    :: !(ctx.notes)

(* Final QoR is always measured under the mapped delay model — the analogue
   of post-place-and-route reporting. *)
let finalize setup ctx g ~cuts_total cover sched solve method_ =
  let sched =
    Sched.Timing.recompute_starts ~device:setup.device ~delays:setup.delays g
      cover sched
  in
  if Obs.Log.enabled () then
    Obs.Log.event "flow.phase" [ ("phase", Obs.Json.String "verify") ];
  match
    Obs.Trace.span ~cat:"flow" "flow.verify" (fun () ->
        Sched.Verify.check (verify_ctx setup) g cover sched)
  with
  | Error errs ->
      let diags = Analyze.Cert.of_messages errs in
      Error
        ( "verify",
          Printf.sprintf "%s: illegal result: %s" (method_name method_)
            (String.concat "; "
               (List.map
                  (fun (d : Analyze.Diag.t) ->
                    d.Analyze.Diag.code ^ " " ^ d.Analyze.Diag.message)
                  diags)) )
  | Ok () ->
      let qor =
        Obs.Trace.span ~cat:"flow" "flow.qor" (fun () ->
            Sched.Qor.evaluate ~device:setup.device ~delays:setup.delays g
              cover sched)
      in
      let metrics =
        metrics_of setup method_ ~cuts_total ~gate_diags:ctx.gate_diags qor
          solve
      in
      Ok { method_; schedule = sched; cover; qor; solve; metrics; trail = [] }

let enum_cuts ?(coarse = false) ~deadline setup ctx g =
  let params =
    match setup.cut_params with
    | Some p -> p
    | None -> Cuts.default_params ~k:setup.device.Fpga.Device.k
  in
  (* Coarser enumeration: the degraded-retry setting — fewer cuts kept and
     far fewer merge candidates explored, trading area for solve time. *)
  let params =
    if coarse then
      {
        params with
        Cuts.max_cuts = max 2 (params.Cuts.max_cuts / 2);
        max_candidates = max 16 (params.Cuts.max_candidates / 4);
      }
    else params
  in
  let truncated = ref false in
  let cuts =
    Cuts.enumerate ~params ~deadline ~truncated ~k:setup.device.Fpga.Device.k g
  in
  if !truncated then
    note ctx ~label:"cuts.enumerate" ~reason:"timeout"
      ~detail:
        "cut enumeration truncated at deadline; unfinished nodes keep their \
         trivial cut";
  cuts

let map_with ~deadline setup ctx ~cuts g sched =
  let truncated = ref false in
  let cover =
    Techmap.map_schedule ~deadline ~truncated ~device:setup.device
      ~delays:setup.delays ~cuts g sched
  in
  if !truncated then
    note ctx ~label:"techmap.map" ~reason:"timeout"
      ~detail:"area-flow labelling degraded to trivial cuts at deadline";
  cover

let map_global_with ~deadline setup ctx ~cuts g =
  let truncated = ref false in
  let cover =
    Techmap.map_global ~deadline ~truncated ~device:setup.device
      ~delays:setup.delays ~cuts g
  in
  if !truncated then
    note ctx ~label:"techmap.map" ~reason:"timeout"
      ~detail:"global area-flow labelling degraded to trivial cuts at deadline";
  cover

let baseline setup g =
  match
    Obs.Trace.span ~cat:"flow" "flow.baseline" (fun () ->
        Sched.Heuristic.schedule ~device:setup.device ~delays:setup.delays
          ~resources:setup.resources ~ii:setup.ii g)
  with
  | Error e ->
      Error
        ( "schedule",
          Fmt.str "heuristic baseline failed: %a" Sched.Heuristic.pp_error e )
  | Ok sched -> Ok sched

(* HLS-Tool: heuristic schedule + downstream mapping. With [trivial] the
   attempt avoids cut enumeration, the LP and the MILP entirely — it is the
   terminal fallback of every cascade and survives every fault point. *)
let run_hls ?(trivial = false) ~deadline ~as_ setup ctx g =
  match baseline setup g with
  | Error _ as e -> e
  | Ok sched ->
      let cuts =
        if trivial then Cuts.trivial_only g
        else enum_cuts ~deadline setup ctx g
      in
      let cover = map_with ~deadline setup ctx ~cuts g sched in
      finalize setup ctx g ~cuts_total:(Cuts.total_cuts cuts) cover sched
        heuristic_info as_

(* SDC modulo scheduling (the LegUp/Vivado-HLS style baseline, refs [22]
   and [3] of the paper), with the same downstream mapping as the HLS
   flow. *)
let run_sdc ?(trivial = false) ~deadline ~as_ setup ctx g =
  match
    Sched.Sdc.schedule ~device:setup.device ~delays:setup.delays
      ~resources:setup.resources ~ii:setup.ii g
  with
  | Error e ->
      Error
        ("schedule", Fmt.str "SDC scheduling failed: %a" Sched.Heuristic.pp_error e)
  | Ok sched ->
      let cuts =
        if trivial then Cuts.trivial_only g
        else enum_cuts ~deadline setup ctx g
      in
      let cover = map_with ~deadline setup ctx ~cuts g sched in
      finalize setup ctx g ~cuts_total:(Cuts.total_cuts cuts) cover sched
        heuristic_info as_

(* Map-first (the paper's future-work heuristic): area-flow cover of the
   whole graph, then cover-aware ASAP modulo scheduling. *)
let run_map_first ?(coarse = false) ?(trivial = false) ~deadline ~as_ setup
    ctx g =
  let cuts =
    if trivial then Cuts.trivial_only g
    else enum_cuts ~coarse ~deadline setup ctx g
  in
  let cover = map_global_with ~deadline setup ctx ~cuts g in
  match
    Sched.Mapsched.schedule ~device:setup.device ~delays:setup.delays
      ~resources:setup.resources ~ii:setup.ii g cover
  with
  | Error e ->
      Error ("schedule", Fmt.str "map-first failed: %a" Sched.Heuristic.pp_error e)
  | Ok sched ->
      finalize setup ctx g ~cuts_total:(Cuts.total_cuts cuts) cover sched
        heuristic_info as_

let run_milp ?(coarse = false) ?(budget_scale = 1.0) ?resume ~deadline ~as_
    setup ctx g ~mapping_aware =
  (* Phase budgeting inside the attempt: cumulative checkpoints, so cheap
     phases donate their slack to the solver. *)
  let phases =
    Resilience.Deadline.split deadline
      [ ("cuts", 0.2); ("solve", 0.6); ("map", 0.2) ]
  in
  let phase name = List.assoc name phases in
  match baseline setup g with
  | Error _ as e -> e
  | Ok base_sched -> (
      let cuts =
        if mapping_aware then enum_cuts ~coarse ~deadline:(phase "cuts") setup ctx g
        else Cuts.trivial_only g
      in
      (* The warm start must be feasible under the formulation's own delay
         model. For MILP-map that model prices every trivial logic cut at
         one LUT delay, which can exceed the characterized delay — so the
         incumbent is re-scheduled with logic delays pinned to the LUT
         delay. *)
      let incumbent_sched =
        if not mapping_aware then Some base_sched
        else
          let warm_delays =
            Fpga.Delays.with_logic setup.delays
              ~logic:setup.device.Fpga.Device.lut_delay
          in
          match
            Sched.Heuristic.schedule ~device:setup.device ~delays:warm_delays
              ~resources:setup.resources ~ii:setup.ii g
          with
          | Ok s -> Some s
          | Error _ -> None
      in
      let max_latency =
        List.fold_left
          (fun acc s -> max acc (Sched.Schedule.latency s))
          (Sched.Schedule.latency base_sched)
          (Option.to_list incumbent_sched)
      in
      let cfg =
        Formulation.
          {
            device = setup.device;
            delays = setup.delays;
            resources = setup.resources;
            ii = setup.ii;
            max_latency;
            alpha = setup.alpha;
            beta = setup.beta;
            cut_delay =
              (if mapping_aware then
                 Formulation.mapped_delay ~device:setup.device
                   ~delays:setup.delays
               else Formulation.additive_delay ~delays:setup.delays);
          }
      in
      let f = Formulation.build cfg g cuts in
      let trivial_cover = Sched.Cover.all_trivial g (Cuts.trivial_only g) in
      (* For MILP-map the strongest safe warm start is the area-flow mapped
         cover of the warm schedule (the full HLS-Tool result under mapped
         delays); fall back to the all-trivial cover, then to no warm
         start. *)
      let try_incumbent s cover =
        let sched =
          Sched.Timing.recompute_starts ~device:setup.device
            ~delays:setup.delays g cover s
        in
        match Formulation.incumbent_of_schedule f sched cover with
        | exception Invalid_argument _ -> None
        | x -> (
            match
              Lp.Model.check (Formulation.model f)
                ~values:(fun v -> x.(Lp.Model.var_index v))
                ()
            with
            | Ok () -> Some x
            | Error msg ->
                Logs.debug (fun fmt ->
                    fmt "dropping infeasible warm start: %s" msg);
                None)
      in
      let incumbent =
        Obs.Trace.span ~cat:"flow" "flow.warm-start" @@ fun () ->
        match incumbent_sched with
        | None -> None
        | Some s ->
            let map_first () =
              let cover =
                map_global_with ~deadline:(phase "cuts") setup ctx ~cuts g
              in
              match
                Sched.Mapsched.schedule ~device:setup.device
                  ~delays:setup.delays ~resources:setup.resources ~ii:setup.ii
                  g cover
              with
              | Ok ms when Sched.Schedule.latency ms <= cfg.Formulation.max_latency
                -> try_incumbent ms cover
              | Ok _ | Error _ -> None
            in
            let candidates =
              if mapping_aware then
                [
                  map_first;
                  (fun () ->
                    try_incumbent s
                      (map_with ~deadline:(phase "cuts") setup ctx ~cuts g s));
                  (fun () -> try_incumbent s trivial_cover);
                ]
              else [ (fun () -> try_incumbent s trivial_cover) ]
            in
            List.fold_left
              (fun acc c -> match acc with Some _ -> acc | None -> c ())
              None candidates
      in
      let t0 = Obs.Clock.wall () in
      if Obs.Log.enabled () then
        Obs.Log.event "flow.phase" [ ("phase", Obs.Json.String "solve") ];
      let r =
        Obs.Trace.span ~cat:"flow" "flow.solve" (fun () ->
            Lp.Milp.solve
              ~time_limit:(setup.time_limit *. budget_scale)
              ~deadline:(phase "solve") ?incumbent
              ~branch_priority:(Formulation.branch_priorities f)
              ?domains:setup.domains ~certificates:setup.audit
              ?checkpoint:setup.checkpoint ?resume
              ?stall_window:setup.stall_window ?cuts:setup.cuts
              ?presolve:setup.presolve
              (Formulation.model f))
      in
      (* A resumed solve reports cumulative stats ([stats.nodes] counts
         the checkpoint's nodes too), so solve_s / nodes_per_s must use
         the cumulative wall clock, not just this invocation's. *)
      let runtime =
        match resume with
        | Some _ -> r.Lp.Milp.stats.Lp.Milp.elapsed
        | None -> Obs.Clock.wall () -. t0
      in
      (* Supervised recovery replays a dead worker's subtree or requeues a
         watchdog-cancelled node; results are unaffected (DESIGN.md §3i)
         but the event belongs in the degradation log. *)
      if r.Lp.Milp.stats.Lp.Milp.recoveries > 0 then
        note ctx
          ~label:(if mapping_aware then "milp-map.solve" else "milp-base.solve")
          ~reason:"recovery"
          ~detail:
            (Fmt.str
               "%d in-flight recover(s) (worker replay / watchdog requeue); \
                results unaffected"
               r.Lp.Milp.stats.Lp.Milp.recoveries);
      (* Opt-in proof audit: re-verify the solve's certificate in exact
         rational arithmetic. Observational — findings land in the
         metrics (and the audit_errors field CI gates on), they never
         change the flow's result. *)
      let audit_diags =
        if setup.audit then
          Some
            (Obs.Trace.span ~cat:"flow" "flow.audit" (fun () ->
                 Analyze.Engine.check_audit (Formulation.model f) r))
        else None
      in
      let solve =
        {
          runtime;
          milp_status = Some r.Lp.Milp.status;
          milp_stats = Some r.Lp.Milp.stats;
          milp_objective = Some r.Lp.Milp.objective;
          model_size = Some (Formulation.size f);
          cert_nodes =
            (match r.Lp.Milp.cert with
            | Some c -> List.length c.Lp.Cert.nodes
            | None -> 0);
          audit_diags;
        }
      in
      match r.Lp.Milp.status with
      | Lp.Milp.Infeasible | Lp.Milp.Unbounded | Lp.Milp.Unknown ->
          let reason =
            match r.Lp.Milp.status with
            | Lp.Milp.Infeasible -> "infeasible"
            | Lp.Milp.Unbounded -> "unbounded"
            | Lp.Milp.Unknown | Lp.Milp.Optimal | Lp.Milp.Feasible ->
                "unknown"
          in
          Error
            ( reason,
              Fmt.str "MILP failed: %a after %.1fs" Lp.Milp.pp_status
                r.Lp.Milp.status runtime )
      | Lp.Milp.Optimal | Lp.Milp.Feasible ->
          (* Numeric trouble inside an accepted solve is a soft
             degradation: the incumbent is feasible and verified, but
             optimality was not certified. *)
          if r.Lp.Milp.stats.Lp.Milp.lp_limited > 0 then
            note ctx
              ~label:(if mapping_aware then "milp-map.solve" else "milp-base.solve")
              ~reason:"numeric"
              ~detail:
                (Fmt.str
                   "%d node LP(s) hit the pivot cap; result kept, optimality \
                    not certified"
                   r.Lp.Milp.stats.Lp.Milp.lp_limited);
          let sched, cover = Formulation.extract f r in
          if mapping_aware then
            finalize setup ctx g ~cuts_total:(Cuts.total_cuts cuts) cover
              sched solve as_
          else
            (* MILP-base: exact schedule, then the same downstream mapping
               as the commercial flow. *)
            let cuts_full = enum_cuts ~deadline:(phase "map") setup ctx g in
            let cover =
              map_with ~deadline:(phase "map") setup ctx ~cuts:cuts_full g
                sched
            in
            finalize setup ctx g ~cuts_total:(Cuts.total_cuts cuts_full) cover
              sched solve as_)

let preflight_config (s : setup) =
  {
    Analyze.Preflight.device = s.device;
    delays = s.delays;
    resources = s.resources;
    ii = s.ii;
  }

let lint setup g = Analyze.Engine.static_gate (preflight_config setup) g

(* The per-method degradation cascade. Ordering rationale (DESIGN.md 3d):
   full strength first; then relaxations that keep the method's character
   (shorter budget, coarser cuts); then a different algorithm of the same
   family; finally the trivial-cuts heuristic, which touches neither cut
   enumeration nor any LP/MILP and therefore survives every registered
   fault point. *)
let steps_of setup ctx method_ g :
    result Resilience.Cascade.step list =
  let open Resilience.Cascade in
  let scale k = backoff ~base:1.0 ~factor:0.5 k in
  (* Full-strength MILP rungs are worth one in-place retry on a transient
     exception before the cascade degrades the formulation; every other
     rung degrades immediately (retrying a heuristic replays the same
     deterministic failure). *)
  let no_retry = (0, []) in
  let milp_retry = (1, [ "exception" ]) in
  let hls_fallback label =
    { slabel = label; budget = None; retries = 0; retry_on = [];
      run = (fun dl -> run_hls ~trivial:true ~deadline:dl ~as_:method_ setup ctx g) }
  in
  let step ?budget ?(retry = no_retry) slabel run =
    let retries, retry_on = retry in
    { slabel; budget; retries; retry_on; run }
  in
  match method_ with
  | Hls_tool ->
      [
        step "hls.full" (fun dl -> run_hls ~deadline:dl ~as_:method_ setup ctx g);
        hls_fallback "hls.trivial-cuts";
      ]
  | Sdc_tool ->
      [
        step "sdc.full" (fun dl -> run_sdc ~deadline:dl ~as_:method_ setup ctx g);
        step "sdc.trivial-cuts" (fun dl ->
            run_sdc ~trivial:true ~deadline:dl ~as_:method_ setup ctx g);
        hls_fallback "sdc.hls-fallback";
      ]
  | Map_heuristic ->
      [
        step "map-first.full" (fun dl ->
            run_map_first ~deadline:dl ~as_:method_ setup ctx g);
        step "map-first.coarse-cuts" (fun dl ->
            run_map_first ~coarse:true ~deadline:dl ~as_:method_ setup ctx g);
        step "map-first.trivial-cuts" (fun dl ->
            run_map_first ~trivial:true ~deadline:dl ~as_:method_ setup ctx g);
      ]
  | Milp_base ->
      [
        step "milp-base.full" ~retry:milp_retry (fun dl ->
            run_milp ?resume:setup.resume ~deadline:dl ~as_:method_ setup ctx g
              ~mapping_aware:false);
        step "milp-base.retry" ~budget:(setup.time_limit *. scale 1) (fun dl ->
            run_milp ~budget_scale:(scale 1) ~deadline:dl ~as_:method_ setup
              ctx g ~mapping_aware:false);
        step "milp-base.sdc-fallback" (fun dl ->
            run_sdc ~deadline:dl ~as_:method_ setup ctx g);
        hls_fallback "milp-base.hls-fallback";
      ]
  | Milp_map ->
      [
        step "milp-map.full" ~retry:milp_retry (fun dl ->
            run_milp ?resume:setup.resume ~deadline:dl ~as_:method_ setup ctx g
              ~mapping_aware:true);
        step "milp-map.coarse" ~budget:(setup.time_limit *. scale 1) (fun dl ->
            run_milp ~coarse:true ~budget_scale:(scale 1) ~deadline:dl
              ~as_:method_ setup ctx g ~mapping_aware:true);
        step "milp-map.map-first" (fun dl ->
            run_map_first ~deadline:dl ~as_:method_ setup ctx g);
        hls_fallback "milp-map.hls-fallback";
      ]

(* Merge the cascade's failed attempts with the soft notes, stamp the
   Metrics v3 degradation array and the RES* diagnostics. *)
let finish ~gate_diags trail r =
  let metrics =
    {
      r.metrics with
      Obs.Metrics.diagnostics =
        diags_json
          (gate_diags
          @ Option.value ~default:[] r.solve.audit_diags
          @ trail_diags trail);
      degradation = List.map Resilience.Cascade.attempt_to_json trail;
    }
  in
  { r with metrics; trail }

let run ?deadline setup method_ g =
  let deadline =
    match deadline with
    | Some d -> d
    | None -> (
        match setup.wall_budget with
        | Some b -> Resilience.Deadline.of_budget b
        | None -> Resilience.Deadline.none)
  in
  Obs.Trace.span ~cat:"flow" "flow.run"
    ~args:[ ("method", Obs.Json.String (method_name method_)) ]
  @@ fun () ->
  let log_phase phase =
    if Obs.Log.enabled () then
      Obs.Log.event "flow.phase"
        [
          ("phase", Obs.Json.String phase);
          ("method", Obs.Json.String (method_name method_));
        ]
  in
  log_phase "run";
  (* GC bracket around the whole cascade: the delta is stamped into the
     result's metrics once the run is over (coordinator-domain words;
     worker-domain allocation is not attributed per result). *)
  let gc0 = Gc.quick_stat () in
  let stamp_gc r =
    let gc1 = Gc.quick_stat () in
    {
      r with
      metrics =
        {
          r.metrics with
          Obs.Metrics.gc_minor_words =
            gc1.Gc.minor_words -. gc0.Gc.minor_words;
          gc_major_words = gc1.Gc.major_words -. gc0.Gc.major_words;
        };
    }
  in
  log_phase "lint";
  (* Fail-fast gate: static CDFG lints and the pipelining pre-flight run
     before any cut enumeration or solver cost is paid. Warnings and infos
     are logged and recorded in the result's metrics; errors abort. *)
  match Obs.Trace.span ~cat:"flow" "flow.lint" (fun () -> lint setup g) with
  | Error diags ->
      Error
        (Fmt.str "lint gate failed (%s): %s"
           (Analyze.Diag.summary diags)
           (String.concat "; "
              (List.map
                 (fun (d : Analyze.Diag.t) ->
                   d.Analyze.Diag.code ^ " " ^ d.Analyze.Diag.message)
                 (Analyze.Diag.errors diags))))
  | Ok gate_diags -> (
      List.iter
        (fun (d : Analyze.Diag.t) ->
          Logs.warn (fun fmt -> fmt "%a" Analyze.Diag.pp d))
        (Analyze.Diag.warnings gate_diags);
      let ctx = { gate_diags; notes = ref [] } in
      match Resilience.Cascade.run ~deadline (steps_of setup ctx method_ g) with
      | Ok { value; trail } ->
          let r =
            stamp_gc (finish ~gate_diags (trail @ List.rev !(ctx.notes)) value)
          in
          if Obs.Log.enabled () then
            Obs.Log.event "flow.phase"
              [
                ("phase", Obs.Json.String "done");
                ("method", Obs.Json.String (method_name method_));
                ("status", Obs.Json.String r.metrics.Obs.Metrics.status);
              ];
          Ok r
      | Error trail ->
          (* RES003: every attempt failed. This requires the terminal
             heuristic itself to fail (e.g. an unschedulable graph). *)
          Error
            (Fmt.str "RES003 %s: degradation cascade exhausted (%d attempts): %s"
               (method_name method_) (List.length trail)
               (String.concat "; "
                  (List.map
                     (fun a -> Fmt.str "%a" Resilience.Cascade.pp_attempt a)
                     trail))))

let run_all ?deadline setup g =
  List.map
    (fun m -> (m, run ?deadline setup m g))
    [ Hls_tool; Milp_base; Milp_map ]

let pp_result ppf r =
  Fmt.pf ppf "%-9s %a" (method_name r.method_) Sched.Qor.pp r.qor;
  (match r.solve.milp_stats with
  | Some s -> Fmt.pf ppf "  [%a]" Lp.Milp.pp_stats s
  | None -> ());
  if r.trail <> [] then
    Fmt.pf ppf "  (degraded: %d attempt%s)" (List.length r.trail)
      (if List.length r.trail = 1 then "" else "s")
