type t = {
  g : Ir.Cdfg.t;
  cfg : Formulation.config;
  cuts : Cuts.t;
  model : Lp.Model.t;
  onehot : Lp.Model.var array array;  (* s_{v,t} *)
  l_start : Lp.Model.var array;
  c_cut : Lp.Model.var array array;
  root : Lp.Model.var array;
  live : Lp.Model.var array array;  (* live_{v,t}, [||] for constants *)
}

let is_const g v =
  match Ir.Cdfg.op g v with Ir.Op.Const _ -> true | _ -> false

let is_source g v =
  match Ir.Cdfg.op g v with
  | Ir.Op.Input _ | Ir.Op.Const _ -> true
  | _ -> false

let is_black_box g v =
  match Ir.Cdfg.op g v with Ir.Op.Black_box _ -> true | _ -> false

let forced_root g v =
  is_source g v || is_black_box g v || Ir.Cdfg.is_output g v

let build (cfg : Formulation.config) g cuts =
  let n = Ir.Cdfg.num_nodes g in
  let period = Fpga.Device.usable_period cfg.device in
  let m_lat = cfg.max_latency in
  let maxdist =
    Ir.Cdfg.fold
      (fun nd acc ->
        Array.fold_left (fun acc (e : Ir.Cdfg.edge) -> max acc e.dist) acc
          nd.preds)
      g 0
  in
  let m_live = m_lat + (cfg.ii * maxdist) in
  let d_op v = cfg.cut_delay g cuts.(v).(0) in
  let lat v = int_of_float (floor (d_op v /. period)) in
  let model = Lp.Model.create ~name:"mams-exact" () in
  let name fmt = Printf.sprintf fmt in
  let onehot =
    Array.init n (fun v ->
        Array.init (m_lat + 1) (fun t ->
            Lp.Model.bool_var model
              (name "s_%s_%d" (Ir.Cdfg.node_name g v) t)))
  in
  let s_cycle =
    Array.init n (fun v ->
        Lp.Model.add_var model ~lb:0.0 ~ub:(float_of_int m_lat)
          (name "S_%s" (Ir.Cdfg.node_name g v)))
  in
  let l_start =
    Array.init n (fun v ->
        Lp.Model.add_var model ~lb:0.0 ~ub:period
          (name "L_%s" (Ir.Cdfg.node_name g v)))
  in
  let c_cut =
    Array.init n (fun v ->
        Array.init (Array.length cuts.(v)) (fun i ->
            Lp.Model.bool_var model
              (name "c_%s_%d" (Ir.Cdfg.node_name g v) i)))
  in
  let root =
    Array.init n (fun v ->
        Lp.Model.bool_var model (name "root_%s" (Ir.Cdfg.node_name g v)))
  in
  let live =
    Array.init n (fun v ->
        if is_const g v then [||]
        else
          Array.init (m_live + 1) (fun t ->
              Lp.Model.bool_var model
                (name "live_%s_%d" (Ir.Cdfg.node_name g v) t)))
  in
  (* Eq. (5)–(6): one cycle per operation, S_v = Σ t·s_{v,t}. *)
  for v = 0 to n - 1 do
    Lp.Model.add_eq model
      ~name:(name "onehot_%d" v)
      (Array.to_list (Array.map (fun x -> (1.0, x)) onehot.(v)))
      1.0;
    Lp.Model.add_eq model
      ~name:(name "slink_%d" v)
      ((-1.0, s_cycle.(v))
      :: Array.to_list (Array.mapi (fun t x -> (float_of_int t, x)) onehot.(v)))
      0.0;
    if is_source g v then begin
      Lp.Model.fix model onehot.(v).(0) 1.0;
      Lp.Model.fix model l_start.(v) 0.0
    end;
    (* multi-cycle operations start at the cycle boundary *)
    if lat v >= 1 then Lp.Model.fix model l_start.(v) 0.0
  done;
  (* Eq. (2)–(3): cover structure. *)
  for v = 0 to n - 1 do
    Lp.Model.add_eq model
      ~name:(name "cover_%d" v)
      ((-1.0, root.(v))
      :: Array.to_list (Array.map (fun c -> (1.0, c)) c_cut.(v)))
      0.0;
    if forced_root g v then Lp.Model.fix model root.(v) 1.0
  done;
  (* Eq. (7): dependence constraints per CDFG edge, with the register-read
     correction for loop-carried edges (the paper's form would allow
     reading a register in the cycle it is written). *)
  Ir.Cdfg.iter
    (fun nd ->
      Array.iter
        (fun (e : Ir.Cdfg.edge) ->
          let margin =
            if e.dist = 0 then float_of_int (-(lat e.src))
            else float_of_int ((cfg.ii * e.dist) - 1 - lat e.src)
          in
          Lp.Model.add_le model
            ~name:(name "dep_%d_%d" e.src nd.id)
            [ (1.0, s_cycle.(e.src)); (-1.0, s_cycle.(nd.id)) ]
            margin)
        nd.preds)
    g;
  (* Eq. (8): cycle-time fit. *)
  for v = 0 to n - 1 do
    if lat v = 0 then
      Lp.Model.add_le model
        ~name:(name "fit_%d" v)
        [ (1.0, l_start.(v)) ]
        (period -. d_op v)
  done;
  (* Eq. (9), as printed: for u in CUT_v[i] entering with distance d,
     (S_u - S_v - II*d)*T + (L_u - L_v + c_{v,i} * d_u) <= 0. *)
  for v = 0 to n - 1 do
    Array.iteri
      (fun i (cut : Cuts.cut) ->
        List.iter
          (fun (u, (info : Formulation.leaf_info)) ->
            let emit dist =
              if not (is_source g u) then
                Lp.Model.add_le model
                  ~name:(name "chain_%d_%d_%d_%d" v i u dist)
                  [
                    (period, s_cycle.(u));
                    (-.period, s_cycle.(v));
                    (1.0, l_start.(u));
                    (-1.0, l_start.(v));
                    (d_op u, c_cut.(v).(i));
                  ]
                  (period *. float_of_int (cfg.ii * dist))
            in
            if info.Formulation.has_comb then emit 0;
            (match info.Formulation.min_reg_dist with
            | Some d -> emit d
            | None -> ());
            (* Eq. (4): leaves of a selected cut are roots. *)
            if not (forced_root g u) then
              Lp.Model.add_le model
                ~name:(name "leafroot_%d_%d_%d" v i u)
                [ (1.0, c_cut.(v).(i)); (-1.0, root.(u)) ]
                0.0)
          (Formulation.leaf_infos g cut))
      cuts.(v)
  done;
  (* Eq. (10)–(12): def/kill/live. For each selected cut i of v and each
     leaf u entering with distance d:
       def_{u,t} - kill_{v, t - II*d} - (1 - c_{v,i}) <= live_{u,t}. *)
  for v = 0 to n - 1 do
    Array.iteri
      (fun i (cut : Cuts.cut) ->
        let infos = Formulation.leaf_infos g cut in
        List.iter
          (fun (u, (info : Formulation.leaf_info)) ->
            let max_dist = info.Formulation.max_dist in
            if not (is_const g u) then
              for t = 0 to m_live do
                let def_terms =
                  let hi = min (t - lat u) m_lat in
                  if hi < 0 then []
                  else
                    List.init (hi + 1) (fun z -> (1.0, onehot.(u).(z)))
                in
                let kill_terms =
                  let hi = min (t - (cfg.ii * max_dist)) m_lat in
                  if hi < 0 then []
                  else
                    List.init (hi + 1) (fun z -> (-1.0, onehot.(v).(z)))
                in
                if def_terms <> [] then
                  Lp.Model.add_le model
                    ~name:(name "live_%d_%d_%d_%d" v i u t)
                    (((-1.0), live.(u).(t))
                    :: (1.0, c_cut.(v).(i))
                    :: (def_terms @ kill_terms))
                    1.0
              done)
          infos)
      cuts.(v)
  done;
  (* Eq. (14): modulo resources. *)
  List.iter
    (fun r ->
      match Fpga.Resource.limit cfg.resources r with
      | None -> ()
      | Some lim ->
          for phase = 0 to cfg.ii - 1 do
            let terms = ref [] in
            for v = 0 to n - 1 do
              match Ir.Cdfg.op g v with
              | Ir.Op.Black_box { resource; _ } when String.equal resource r ->
                  Array.iteri
                    (fun t x ->
                      if t mod cfg.ii = phase then terms := (1.0, x) :: !terms)
                    onehot.(v)
              | _ -> ()
            done;
            if !terms <> [] then
              Lp.Model.add_le model
                ~name:(name "res_%s_%d" r phase)
                !terms (float_of_int lim)
          done)
    (Fpga.Resource.classes cfg.resources);
  (* Eq. (13) + (15): α·Σ Bits·root + β·Σ Bits·live. *)
  let obj = ref [] in
  for v = 0 to n - 1 do
    if not (is_source g v || is_black_box g v) then
      obj := (cfg.alpha *. float_of_int (Ir.Cdfg.width g v), root.(v)) :: !obj;
    Array.iter
      (fun lv ->
        obj := (cfg.beta *. float_of_int (Ir.Cdfg.width g v), lv) :: !obj)
      live.(v)
  done;
  Lp.Model.set_objective model !obj;
  ignore s_cycle;
  ignore m_live;
  { g; cfg; cuts; model; onehot; l_start; c_cut; root; live }

let model t = t.model

let extract t (r : Lp.Milp.result) =
  let n = Ir.Cdfg.num_nodes t.g in
  let cycle =
    Array.init n (fun v ->
        let c = ref 0 in
        Array.iteri
          (fun ti x -> if Lp.Milp.int_value r x = 1 then c := ti)
          t.onehot.(v);
        !c)
  in
  let start = Array.init n (fun v -> Lp.Milp.value r t.l_start.(v)) in
  let selections = ref [] in
  for v = 0 to n - 1 do
    Array.iteri
      (fun i c ->
        if Lp.Milp.int_value r c = 1 then
          selections := (v, t.cuts.(v).(i)) :: !selections)
      t.c_cut.(v)
  done;
  let sched =
    Sched.Schedule.make ~ii:t.cfg.Formulation.ii ~cycle ~start
  in
  (sched, Sched.Cover.make t.g !selections)

let size t = Fmt.str "%a" Lp.Model.pp_stats t.model

let objective_breakdown t (r : Lp.Milp.result) ~lut_bits ~reg_bits =
  let n = Ir.Cdfg.num_nodes t.g in
  for v = 0 to n - 1 do
    if
      (not (is_source t.g v || is_black_box t.g v))
      && Lp.Milp.int_value r t.root.(v) = 1
    then lut_bits := !lut_bits + Ir.Cdfg.width t.g v;
    Array.iter
      (fun lv ->
        if Lp.Milp.int_value r lv = 1 then
          reg_bits := !reg_bits + Ir.Cdfg.width t.g v)
      t.live.(v)
  done
