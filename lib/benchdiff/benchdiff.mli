(** Noise-aware regression comparison of two metrics files — the engine
    behind [pipesyn bench-diff OLD.json NEW.json] and the CI
    regression gate.

    Rows are keyed by (benchmark, method). Deterministic counters
    (B&B nodes, simplex pivots) are compared with a relative threshold,
    but only when {e both} rows solved to ["optimal"] — a budget-hit
    solve explores however many nodes fit in the wall budget, so its
    counters are machine-speed noise, not signal. Wall time is compared
    with a relative threshold plus an absolute floor (sub-floor solves
    never flag). A status that worsens in rank
    (optimal < feasible < heuristic-or-worse) and a row that disappears
    are always regressions; nullable fields ([None] = the method never
    entered the MILP) are skipped rather than compared against
    numbers. *)

type thresholds = {
  time_rel : float;
      (** relative wall-time increase that flags a regression
          (default 0.5 = +50%) *)
  time_floor_s : float;
      (** absolute seconds both below which time deltas are ignored
          (default 0.25) *)
  count_rel : float;
      (** relative node/pivot increase that flags a regression
          (default 0.10) *)
  gap_abs : float;
      (** absolute decrease of [gap_closed_root] that flags a
          regression (default 0.10) *)
}

val default_thresholds : thresholds

type verdict = Regression | Improvement | Unchanged

type delta = {
  d_bench : string;  (** benchmark name *)
  d_method : string;
  d_metric : string;  (** ["solve_s"], ["bnb_nodes"], ["lp_pivots"],
                          ["gap_closed_root"], ["status"] *)
  d_old : float;
  d_new : float;
  d_rel : float;  (** (new - old) / max(|old|, tiny); nan for status *)
  d_verdict : verdict;
  d_note : string;  (** human-readable one-liner *)
}

type report = {
  r_schema : int;  (** common schema version of the two files *)
  r_rows : int;  (** (benchmark, method) keys present in both files *)
  r_deltas : delta list;  (** flagged deltas only (no Unchanged spam) *)
  r_missing : (string * string) list;
      (** keys present in OLD but absent in NEW — regressions *)
  r_added : (string * string) list;
      (** keys only in NEW — informational *)
  r_regressions : int;
  r_improvements : int;
}

val diff :
  ?thresholds:thresholds -> Obs.Json.t -> Obs.Json.t -> (report, string) result
(** [diff old_ new_] compares two parsed metrics files. [Error] on a
    malformed file or a schema-version mismatch between the two
    (regenerate the baseline rather than guessing at field semantics);
    per-row findings land in the report. *)

val regressed : report -> bool
(** Whether the report carries at least one regression (flagged delta
    or missing row) — the [exit 1] condition. *)

val report_to_json : report -> Obs.Json.t
(** Machine-readable report: [{"schema": "pipesyn-bench-diff-v1",
    "rows": …, "regressions": …, "improvements": …, "missing": […],
    "added": […], "deltas": […]}]. *)

val pp_report : Format.formatter -> report -> unit
(** Human-readable multi-line rendering. *)
