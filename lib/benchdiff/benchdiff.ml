(* Noise-aware comparison of two metrics files (see the .mli for the
   comparison policy). The design constraint is asymmetric risk: a
   false red blocks an unrelated PR, a false green only delays a real
   finding to the next baseline refresh — so every comparison that
   depends on wall-clock noise (budget-hit node counts, sub-floor
   times) is skipped rather than thresholded tighter. *)

type thresholds = {
  time_rel : float;
  time_floor_s : float;
  count_rel : float;
  gap_abs : float;
}

let default_thresholds =
  { time_rel = 0.5; time_floor_s = 0.25; count_rel = 0.10; gap_abs = 0.10 }

type verdict = Regression | Improvement | Unchanged

type delta = {
  d_bench : string;
  d_method : string;
  d_metric : string;
  d_old : float;
  d_new : float;
  d_rel : float;
  d_verdict : verdict;
  d_note : string;
}

type report = {
  r_schema : int;
  r_rows : int;
  r_deltas : delta list;
  r_missing : (string * string) list;
  r_added : (string * string) list;
  r_regressions : int;
  r_improvements : int;
}

(* Lower rank is better. Unknown strings rank alongside "error": a
   status this tool has never heard of is not evidence of health. *)
let status_rank = function
  | "optimal" -> 0
  | "feasible" -> 1
  | "heuristic" -> 2
  | "infeasible" | "unbounded" | "unknown" -> 3
  | _ -> 4

let parse_file label j =
  match Obs.Json.member "schema_version" j with
  | Some (Obs.Json.Int v) -> (
      match Obs.Json.member "results" j with
      | Some (Obs.Json.List rows) ->
          let rec go acc = function
            | [] -> Ok (v, List.rev acc)
            | r :: rest -> (
                match Obs.Metrics.of_json r with
                | Ok m -> go (m :: acc) rest
                | Error e ->
                    Error (Printf.sprintf "%s: bad result row: %s" label e))
          in
          go [] rows
      | _ -> Error (label ^ ": missing \"results\" list"))
  | _ -> Error (label ^ ": missing \"schema_version\"")

let key (m : Obs.Metrics.t) = (m.Obs.Metrics.name, m.Obs.Metrics.method_)

let rel_delta ~old_ ~new_ =
  (new_ -. old_) /. Float.max 1e-9 (Float.abs old_)

let diff ?(thresholds = default_thresholds) old_ new_ =
  let ( let* ) = Result.bind in
  let* v_old, rows_old = parse_file "OLD" old_ in
  let* v_new, rows_new = parse_file "NEW" new_ in
  if v_old <> v_new then
    Error
      (Printf.sprintf
         "schema version mismatch: OLD is v%d, NEW is v%d — regenerate the \
          baseline with the current binary"
         v_old v_new)
  else begin
    let tbl = Hashtbl.create 16 in
    List.iter (fun m -> Hashtbl.replace tbl (key m) m) rows_new;
    let deltas = ref [] in
    let missing = ref [] in
    let rows = ref 0 in
    let flag d = deltas := d :: !deltas in
    let compare_row (o : Obs.Metrics.t) (n : Obs.Metrics.t) =
      incr rows;
      let bench, meth = key o in
      let mk d_metric d_old d_new d_verdict d_note =
        {
          d_bench = bench;
          d_method = meth;
          d_metric;
          d_old;
          d_new;
          d_rel = rel_delta ~old_:d_old ~new_:d_new;
          d_verdict;
          d_note;
        }
      in
      (* Status rank: any worsening is a regression regardless of
         thresholds — "optimal -> feasible" is exactly the GFMUL
         history this tool exists to catch. *)
      let ro = status_rank o.Obs.Metrics.status
      and rn = status_rank n.Obs.Metrics.status in
      if rn > ro then
        flag
          (mk "status" (float_of_int ro) (float_of_int rn) Regression
             (Printf.sprintf "status worsened: %s -> %s" o.Obs.Metrics.status
                n.Obs.Metrics.status))
      else if rn < ro then
        flag
          (mk "status" (float_of_int ro) (float_of_int rn) Improvement
             (Printf.sprintf "status improved: %s -> %s" o.Obs.Metrics.status
                n.Obs.Metrics.status));
      (* Wall time: relative threshold plus an absolute floor so
         sub-floor solves (pure noise at CI machine granularity) never
         flag either way. *)
      (match (o.Obs.Metrics.solve_s, n.Obs.Metrics.solve_s) with
      | Some so, Some sn when Float.max so sn >= thresholds.time_floor_s ->
          let r = rel_delta ~old_:so ~new_:sn in
          if r > thresholds.time_rel then
            flag
              (mk "solve_s" so sn Regression
                 (Printf.sprintf "solve time %+.0f%% (%.2fs -> %.2fs)"
                    (100.0 *. r) so sn))
          else if r < -.thresholds.time_rel then
            flag
              (mk "solve_s" so sn Improvement
                 (Printf.sprintf "solve time %+.0f%% (%.2fs -> %.2fs)"
                    (100.0 *. r) so sn))
      | _ -> ());
      (* Deterministic counters, but only between two exhaustive
         (optimal) solves: a budget-hit run explores whatever fits in
         the wall budget, so its counts are machine speed, not the
         algorithm. *)
      let both_optimal =
        o.Obs.Metrics.status = "optimal" && n.Obs.Metrics.status = "optimal"
      in
      let count metric old_v new_v =
        match (old_v, new_v) with
        | Some co, Some cn when both_optimal && (co > 0 || cn > 0) ->
            let fo = float_of_int co and fn = float_of_int cn in
            let r = rel_delta ~old_:fo ~new_:fn in
            if r > thresholds.count_rel then
              flag
                (mk metric fo fn Regression
                   (Printf.sprintf "%s %+.1f%% (%d -> %d)" metric (100.0 *. r)
                      co cn))
            else if r < -.thresholds.count_rel then
              flag
                (mk metric fo fn Improvement
                   (Printf.sprintf "%s %+.1f%% (%d -> %d)" metric (100.0 *. r)
                      co cn))
        | _ -> ()
      in
      count "bnb_nodes" o.Obs.Metrics.bnb_nodes n.Obs.Metrics.bnb_nodes;
      count "lp_pivots" o.Obs.Metrics.lp_pivots n.Obs.Metrics.lp_pivots;
      (* Root-gap closure: absolute decrease beyond the threshold means
         the cut machinery got weaker. NaN (not applicable) on either
         side skips the comparison. *)
      let go = o.Obs.Metrics.gap_closed_root
      and gn = n.Obs.Metrics.gap_closed_root in
      if Float.is_finite go && Float.is_finite gn then
        if go -. gn > thresholds.gap_abs then
          flag
            (mk "gap_closed_root" go gn Regression
               (Printf.sprintf "root gap closure fell %.0f%% -> %.0f%%"
                  (100.0 *. go) (100.0 *. gn)))
        else if gn -. go > thresholds.gap_abs then
          flag
            (mk "gap_closed_root" go gn Improvement
               (Printf.sprintf "root gap closure rose %.0f%% -> %.0f%%"
                  (100.0 *. go) (100.0 *. gn)))
    in
    List.iter
      (fun o ->
        match Hashtbl.find_opt tbl (key o) with
        | Some n ->
            Hashtbl.remove tbl (key o);
            compare_row o n
        | None -> missing := key o :: !missing)
      rows_old;
    let added = Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] in
    let deltas = List.rev !deltas in
    let n_reg =
      List.length (List.filter (fun d -> d.d_verdict = Regression) deltas)
      + List.length !missing
    in
    let n_imp =
      List.length (List.filter (fun d -> d.d_verdict = Improvement) deltas)
    in
    Ok
      {
        r_schema = v_old;
        r_rows = !rows;
        r_deltas = deltas;
        r_missing = List.sort compare !missing;
        r_added = List.sort compare added;
        r_regressions = n_reg;
        r_improvements = n_imp;
      }
  end

let regressed r = r.r_regressions > 0

let verdict_name = function
  | Regression -> "regression"
  | Improvement -> "improvement"
  | Unchanged -> "unchanged"

let delta_to_json d =
  Obs.Json.Obj
    [
      ("bench", Obs.Json.String d.d_bench);
      ("method", Obs.Json.String d.d_method);
      ("metric", Obs.Json.String d.d_metric);
      ("old", Obs.Json.Float d.d_old);
      ("new", Obs.Json.Float d.d_new);
      ("rel", Obs.Json.Float d.d_rel);
      ("verdict", Obs.Json.String (verdict_name d.d_verdict));
      ("note", Obs.Json.String d.d_note);
    ]

let key_to_json (bench, meth) =
  Obs.Json.Obj
    [ ("bench", Obs.Json.String bench); ("method", Obs.Json.String meth) ]

let report_to_json r =
  Obs.Json.Obj
    [
      ("schema", Obs.Json.String "pipesyn-bench-diff-v1");
      ("metrics_schema", Obs.Json.Int r.r_schema);
      ("rows", Obs.Json.Int r.r_rows);
      ("regressions", Obs.Json.Int r.r_regressions);
      ("improvements", Obs.Json.Int r.r_improvements);
      ("missing", Obs.Json.List (List.map key_to_json r.r_missing));
      ("added", Obs.Json.List (List.map key_to_json r.r_added));
      ("deltas", Obs.Json.List (List.map delta_to_json r.r_deltas));
    ]

let pp_report ppf r =
  Format.fprintf ppf "bench-diff: %d row%s compared (metrics schema v%d)@."
    r.r_rows
    (if r.r_rows = 1 then "" else "s")
    r.r_schema;
  List.iter
    (fun (b, m) -> Format.fprintf ppf "  MISSING   %s / %s (row disappeared)@." b m)
    r.r_missing;
  List.iter
    (fun (b, m) -> Format.fprintf ppf "  new row   %s / %s@." b m)
    r.r_added;
  List.iter
    (fun d ->
      Format.fprintf ppf "  %s %s / %s: %s@."
        (match d.d_verdict with
        | Regression -> "REGRESSED "
        | Improvement -> "improved  "
        | Unchanged -> "unchanged ")
        d.d_bench d.d_method d.d_note)
    r.r_deltas;
  if r.r_regressions = 0 && r.r_deltas = [] && r.r_missing = [] then
    Format.fprintf ppf "  no significant deltas@.";
  Format.fprintf ppf "verdict: %d regression%s, %d improvement%s@."
    r.r_regressions
    (if r.r_regressions = 1 then "" else "s")
    r.r_improvements
    (if r.r_improvements = 1 then "" else "s")
