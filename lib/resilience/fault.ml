let points =
  [
    ( "milp.timeout",
      "Lp.Milp.solve acts as if its budget expired before any incumbent \
       was found (returns status Unknown)" );
    ( "milp.raise",
      "Lp.Milp.solve raises Failure at entry (exception-containment path)" );
    ( "simplex.cycle",
      "Lp.Simplex gives up with Iteration_limit at every optimize call \
       (simulated pivot cycling / numeric trouble)" );
    ("cuts.raise", "Cuts.enumerate raises Failure at entry");
    ( "cuts.timeout",
      "Cuts.enumerate acts as if its deadline expired immediately \
       (trivial-dominated cut sets)" );
    ( "techmap.timeout",
      "Techmap area-flow labelling degrades to trivial cuts as if its \
       deadline expired" );
    ( "milp.worker_kill",
      "a B&B worker dies (raises) at node-processing entry, before the \
       node is counted; the supervisor re-enqueues its leased subtree" );
    ( "milp.steal_drop",
      "a stolen queue entry is dropped at the steal handoff (the thief \
       dies holding the lease); lease replay must recover it" );
    ( "milp.checkpoint_torn",
      "a checkpoint write is torn mid-file (truncated payload); resume \
       must detect and reject it" );
    ( "milp.stall",
      "a B&B worker wedges at node-processing entry (busy-waits until \
       its deadline expires or the watchdog cancels it)" );
  ]

let mem name = List.mem_assoc name points

type mode = Always | Nth of int | Prob of { pct : int; seed : int }

let armed_tbl : (string, mode) Hashtbl.t = Hashtbl.create 8
let hits_tbl : (string, int) Hashtbl.t = Hashtbl.create 8
let c_fired = Obs.Counter.get "resilience.faults_fired"

(* Fault sites fire from B&B worker domains too (simplex.cycle); the hit
   counters must not lose updates under concurrency. Arming/clearing
   stays a driver-side (single-domain) operation. *)
let hits_mutex = Mutex.create ()

let clear () =
  Hashtbl.reset armed_tbl;
  Hashtbl.reset hits_tbl

let armed () =
  Hashtbl.fold (fun name _ acc -> name :: acc) armed_tbl []
  |> List.sort compare

(* Deterministic 30-bit mix of (seed, hit index): the same spec fires on
   the same hits in every run, which is what makes probabilistic faults
   usable in CI. *)
let mix seed hit =
  let z = (seed * 1_000_003) + hit + 0x9E3779B9 in
  let z = z * 0x85EBCA6B land 0x3FFFFFFF in
  let z = (z lxor (z lsr 13)) * 0xC2B2AE35 land 0x3FFFFFFF in
  z lxor (z lsr 16)

let parse_clause clause =
  let clause = String.trim clause in
  let split_on ch s =
    match String.index_opt s ch with
    | None -> (s, None)
    | Some i ->
        ( String.sub s 0 i,
          Some (String.sub s (i + 1) (String.length s - i - 1)) )
  in
  let name, rest = split_on '@' clause in
  match rest with
  | Some n -> (
      match int_of_string_opt n with
      | Some n when n >= 1 -> Ok (name, Nth n)
      | _ -> Error (Printf.sprintf "bad hit index in %S (want point@N, N >= 1)" clause))
  | None -> (
      let name, rest = split_on '%' name in
      match rest with
      | None -> Ok (name, Always)
      | Some pr -> (
          let pct, seed = split_on ':' pr in
          match (int_of_string_opt pct, Option.map int_of_string_opt seed) with
          | Some pct, Some (Some seed) when pct >= 0 && pct <= 100 ->
              Ok (name, Prob { pct; seed })
          | Some pct, None when pct >= 0 && pct <= 100 ->
              Ok (name, Prob { pct; seed = 0 })
          | _ ->
              Error
                (Printf.sprintf "bad probability in %S (want point%%P:S, 0 <= P <= 100)"
                   clause)))

let arm spec =
  let clauses =
    String.split_on_char ',' spec
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  let rec parse acc = function
    | [] -> Ok (List.rev acc)
    | c :: rest -> (
        match parse_clause c with
        | Error _ as e -> e
        | Ok (name, _) when not (mem name) ->
            Error (Printf.sprintf "unknown fault point %S (see `pipesyn faults')" name)
        | Ok nm -> parse (nm :: acc) rest)
  in
  match parse [] clauses with
  | Error _ as e -> e
  | Ok parsed ->
      List.iter (fun (name, mode) -> Hashtbl.replace armed_tbl name mode) parsed;
      Ok ()

let load_env () =
  match Sys.getenv_opt "PIPESYN_FAULTS" with
  | None | Some "" -> Ok ()
  | Some spec -> arm spec

let fires point =
  match Hashtbl.find_opt armed_tbl point with
  | None -> false
  | Some mode ->
      let hit =
        Mutex.lock hits_mutex;
        let h =
          1 + Option.value ~default:0 (Hashtbl.find_opt hits_tbl point)
        in
        Hashtbl.replace hits_tbl point h;
        Mutex.unlock hits_mutex;
        h
      in
      let fired =
        match mode with
        | Always -> true
        | Nth n -> hit = n
        | Prob { pct; seed } -> mix seed hit mod 100 < pct
      in
      if fired then Obs.Counter.incr c_fired;
      fired
