type attempt = {
  label : string;
  reason : string;
  detail : string;
  elapsed : float;
  retry : int;
}

let c_attempts = Obs.Counter.get "resilience.attempts"
let c_contained = Obs.Counter.get "resilience.contained_exceptions"
let c_degraded = Obs.Counter.get "resilience.degraded_runs"
let c_retries = Obs.Counter.get "resilience.retries"

let attempt_to_json a =
  Obs.Json.Obj
    [
      ("label", Obs.Json.String a.label);
      ("reason", Obs.Json.String a.reason);
      ("detail", Obs.Json.String a.detail);
      ("elapsed_s", Obs.Json.Float a.elapsed);
      ("retry", Obs.Json.Int a.retry);
    ]

let attempt_of_json j =
  let str k =
    match Obs.Json.member k j with
    | Some (Obs.Json.String s) -> Ok s
    | _ -> Error (Printf.sprintf "missing string field %S" k)
  in
  let flt k =
    match Obs.Json.member k j with
    | Some (Obs.Json.Float f) -> Ok f
    | Some (Obs.Json.Int i) -> Ok (float_of_int i)
    | _ -> Error (Printf.sprintf "missing number field %S" k)
  in
  let ( let* ) = Result.bind in
  let* label = str "label" in
  let* reason = str "reason" in
  let* detail = str "detail" in
  let* elapsed = flt "elapsed_s" in
  (* Absent in pre-retry (schema <= v6) degradation logs. *)
  let retry =
    match Obs.Json.member "retry" j with
    | Some (Obs.Json.Int i) -> i
    | _ -> 0
  in
  Ok { label; reason; detail; elapsed; retry }

let pp_attempt ppf a =
  Format.fprintf ppf "%s%s: %s%s [%.2fs]" a.label
    (if a.retry = 0 then "" else Printf.sprintf " (retry %d)" a.retry)
    a.reason
    (if a.detail = "" then "" else Printf.sprintf " (%s)" a.detail)
    a.elapsed

type 'a step = {
  slabel : string;
  budget : float option;
  retries : int;
  retry_on : string list;
  run : Deadline.t -> ('a, string * string) result;
}

type 'a outcome = { value : 'a; trail : attempt list }

let degraded o = o.trail <> []

let run ~deadline steps =
  let trail = ref [] in
  let rec go = function
    | [] -> Error (List.rev !trail)
    | s :: rest ->
        (* [try_n] is how many tries of this rung already failed; a
           transient failure class retries the same rung (same budget,
           deterministically) up to [s.retries] times before the cascade
           falls through to the next rung. *)
        let rec try_step try_n =
          Obs.Counter.incr c_attempts;
          let t0 = Obs.Clock.wall () in
          let fail reason detail =
            trail :=
              { label = s.slabel; reason; detail;
                elapsed = Obs.Clock.wall () -. t0; retry = try_n }
              :: !trail;
            let retryable =
              try_n < s.retries
              && List.mem reason s.retry_on
              && not (Deadline.expired deadline)
            in
            (* Degradation transitions and retries are trace instants so
               the cascade's fall-through is visible on the timeline,
               and log events so the NDJSON stream tells the same
               story. *)
            if Obs.Trace.enabled () then
              Obs.Trace.instant ~cat:"cascade"
                (if retryable then "cascade.retry" else "cascade.degraded")
                ~args:
                  [
                    ("attempt", Obs.Json.String s.slabel);
                    ("reason", Obs.Json.String reason);
                    ("retry", Obs.Json.Int try_n);
                  ];
            if Obs.Log.enabled () then
              Obs.Log.event ~level:Obs.Log.Warn
                (if retryable then "cascade.retry" else "cascade.degraded")
                [
                  ("attempt", Obs.Json.String s.slabel);
                  ("reason", Obs.Json.String reason);
                  ("detail", Obs.Json.String detail);
                  ("retry", Obs.Json.Int try_n);
                ];
            if retryable then begin
              Obs.Counter.incr c_retries;
              try_step (try_n + 1)
            end
            else go rest
          in
          (* An expired cascade deadline skips intermediate attempts but
             never the terminal fallback: the last step always runs (with
             the already-expired sub-deadline, so cooperative subsystems
             degrade immediately) — that is what guarantees a result. *)
          if rest <> [] && Deadline.expired deadline then
            fail "timeout" "cascade deadline expired before the attempt started"
          else
            let sub =
              match s.budget with
              | None -> deadline
              | Some b -> Deadline.clip deadline ~budget:b
            in
            let attempt () =
              if Obs.Log.enabled () then
                Obs.Log.event "cascade.attempt"
                  [
                    ("attempt", Obs.Json.String s.slabel);
                    ("retry", Obs.Json.Int try_n);
                  ];
              if Obs.Trace.enabled () then
                Obs.Trace.span ~cat:"cascade" "cascade.attempt"
                  ~args:[ ("attempt", Obs.Json.String s.slabel) ]
                  (fun () -> s.run sub)
              else s.run sub
            in
            match attempt () with
            | Ok value ->
                if !trail <> [] then Obs.Counter.incr c_degraded;
                Ok { value; trail = List.rev !trail }
            | Error (reason, detail) -> fail reason detail
            | exception Deadline.Expired phase ->
                fail "timeout" ("deadline expired in " ^ phase)
            | exception ((Out_of_memory | Stack_overflow) as e) -> raise e
            | exception e ->
                Obs.Counter.incr c_contained;
                fail "exception" (Printexc.to_string e)
        in
        try_step 0
  in
  go steps

let backoff ?(base = 1.0) ?(factor = 0.5) k =
  base *. (factor ** float_of_int (max 0 k))
