type attempt = {
  label : string;
  reason : string;
  detail : string;
  elapsed : float;
}

let c_attempts = Obs.Counter.get "resilience.attempts"
let c_contained = Obs.Counter.get "resilience.contained_exceptions"
let c_degraded = Obs.Counter.get "resilience.degraded_runs"

let attempt_to_json a =
  Obs.Json.Obj
    [
      ("label", Obs.Json.String a.label);
      ("reason", Obs.Json.String a.reason);
      ("detail", Obs.Json.String a.detail);
      ("elapsed_s", Obs.Json.Float a.elapsed);
    ]

let attempt_of_json j =
  let str k =
    match Obs.Json.member k j with
    | Some (Obs.Json.String s) -> Ok s
    | _ -> Error (Printf.sprintf "missing string field %S" k)
  in
  let flt k =
    match Obs.Json.member k j with
    | Some (Obs.Json.Float f) -> Ok f
    | Some (Obs.Json.Int i) -> Ok (float_of_int i)
    | _ -> Error (Printf.sprintf "missing number field %S" k)
  in
  let ( let* ) = Result.bind in
  let* label = str "label" in
  let* reason = str "reason" in
  let* detail = str "detail" in
  let* elapsed = flt "elapsed_s" in
  Ok { label; reason; detail; elapsed }

let pp_attempt ppf a =
  Format.fprintf ppf "%s: %s%s [%.2fs]" a.label a.reason
    (if a.detail = "" then "" else Printf.sprintf " (%s)" a.detail)
    a.elapsed

type 'a step = {
  slabel : string;
  budget : float option;
  run : Deadline.t -> ('a, string * string) result;
}

type 'a outcome = { value : 'a; trail : attempt list }

let degraded o = o.trail <> []

let run ~deadline steps =
  let trail = ref [] in
  let rec go = function
    | [] -> Error (List.rev !trail)
    | s :: rest ->
        Obs.Counter.incr c_attempts;
        let t0 = Sys.time () in
        let fail reason detail =
          trail :=
            { label = s.slabel; reason; detail; elapsed = Sys.time () -. t0 }
            :: !trail;
          (* Degradation transitions are trace instants so the cascade's
             fall-through is visible on the timeline. *)
          if Obs.Trace.enabled () then
            Obs.Trace.instant ~cat:"cascade" "cascade.degraded"
              ~args:
                [
                  ("attempt", Obs.Json.String s.slabel);
                  ("reason", Obs.Json.String reason);
                ];
          go rest
        in
        (* An expired cascade deadline skips intermediate attempts but
           never the terminal fallback: the last step always runs (with
           the already-expired sub-deadline, so cooperative subsystems
           degrade immediately) — that is what guarantees a result. *)
        if rest <> [] && Deadline.expired deadline then
          fail "timeout" "cascade deadline expired before the attempt started"
        else
          let sub =
            match s.budget with
            | None -> deadline
            | Some b -> Deadline.clip deadline ~budget:b
          in
          let attempt () =
            if Obs.Trace.enabled () then
              Obs.Trace.span ~cat:"cascade" "cascade.attempt"
                ~args:[ ("attempt", Obs.Json.String s.slabel) ]
                (fun () -> s.run sub)
            else s.run sub
          in
          match attempt () with
          | Ok value ->
              if !trail <> [] then Obs.Counter.incr c_degraded;
              Ok { value; trail = List.rev !trail }
          | Error (reason, detail) -> fail reason detail
          | exception Deadline.Expired phase ->
              fail "timeout" ("deadline expired in " ^ phase)
          | exception ((Out_of_memory | Stack_overflow) as e) -> raise e
          | exception e ->
              Obs.Counter.incr c_contained;
              fail "exception" (Printexc.to_string e)
  in
  go steps

let backoff ?(base = 1.0) ?(factor = 0.5) k =
  base *. (factor ** float_of_int (max 0 k))
