(** Graceful-degradation cascade: ordered attempts under one deadline,
    with exception containment and a structured trail.

    The engine is deliberately generic — it knows nothing about MILPs or
    covers. {!Mams.Flow} instantiates it per method: the full-strength
    attempt first, then progressively relaxed retries, then the heuristic
    fallback that cannot fail. Each attempt runs with a sub-deadline, any
    exception it raises is contained and recorded (never unwound past the
    cascade), and the first attempt to return [Ok] wins. The failed
    attempts form the {e degradation trail} serialized into Metrics
    schema v3 (the [degradation] array). *)

type attempt = {
  label : string;  (** attempt / site name, e.g. ["milp-map/full"] *)
  reason : string;
      (** machine-matchable token: ["timeout"], ["unknown"], ["numeric"],
          ["infeasible"], ["exception"], ["verify"], ["failed"] *)
  detail : string;  (** human-readable explanation (settings, message) *)
  elapsed : float;  (** seconds spent in the attempt *)
  retry : int;
      (** which try of the rung this was: 0 = the first try, [k > 0] =
          the [k]-th bounded retry of the same rung (schema v7; absent
          fields read back as 0 from older degradation logs) *)
}

val attempt_to_json : attempt -> Obs.Json.t
(** [{"label": …, "reason": …, "detail": …, "elapsed_s": …,
    "retry": …}] — one entry of the Metrics [degradation] array. *)

val attempt_of_json : Obs.Json.t -> (attempt, string) result
(** Inverse of {!attempt_to_json} (round-trip checks). *)

val pp_attempt : Format.formatter -> attempt -> unit
(** ["label: reason (detail) [1.2s]"], with ["(retry k)"] after the
    label for bounded retries. *)

type 'a step = {
  slabel : string;
  budget : float option;
      (** optional per-attempt budget in seconds, clipped against the
          cascade deadline — how budget backoff is expressed *)
  retries : int;
      (** bounded retry count: how many extra times this {e same} rung
          is re-run (same budget, deterministically) when it fails with
          a reason in [retry_on], before the cascade degrades to the
          next rung. 0 = never retry. *)
  retry_on : string list;
      (** the transient failure classes (reason tokens, e.g.
          ["exception"]) eligible for bounded retry. Timeouts are
          normally {e not} transient: retrying a rung that ran out of
          time just spends the rest of the budget. *)
  run : Deadline.t -> ('a, string * string) result;
      (** receives the attempt's sub-deadline; [Error (reason, detail)]
          on structured failure, exceptions are contained by {!run} *)
}

type 'a outcome = {
  value : 'a;
  trail : attempt list;  (** failed attempts, in execution order *)
}

val degraded : 'a outcome -> bool
(** The winning attempt was not the first — or soft degradations were
    recorded. [trail <> []]. *)

val run : deadline:Deadline.t -> 'a step list -> ('a outcome, attempt list) result
(** Execute steps in order until one returns [Ok]. Per step:
    - the step's deadline is [Deadline.clip deadline ~budget] (or the
      cascade deadline when [budget = None]);
    - if the cascade deadline is already expired every step {e except the
      last} is skipped with reason ["timeout"]; the terminal fallback
      always runs (under the expired sub-deadline, so cooperative
      subsystems degrade immediately) — that is what guarantees the
      cascade produces a result whenever its last step cannot fail;
    - a raised {!Deadline.Expired} is recorded as ["timeout"];
    - any other exception is contained and recorded as ["exception"]
      ([Out_of_memory] and [Stack_overflow] are re-raised — resource
      exhaustion must not be silently retried);
    - a failure whose reason is in the step's [retry_on] re-runs the
      {e same} rung up to [retries] more times before degrading (skipped
      once the cascade deadline has expired). Every failed try lands in
      the trail with its [retry] index, so the degradation log carries
      the full retry trail.

    [Error trail] means every attempt failed (cascade exhaustion). The
    ["resilience.attempts"], ["resilience.contained_exceptions"] and
    ["resilience.retries"] {!Obs} counters record engine activity. *)

val backoff : ?base:float -> ?factor:float -> int -> float
(** [backoff ~base ~factor k] is the budget scale of retry [k] (0-based):
    [base *. factor ^ k], with [base = 1.0] and [factor = 0.5] — each
    retry gets half the previous attempt's budget, so a full cascade
    costs at most [2x] the first attempt. This is {e budget} backoff:
    with a deterministic in-process solver there is nothing to wait out,
    so retries shrink their budgets instead of sleeping. *)
