(* Absolute expiry instants on the monotonized wall clock
   ([Obs.Clock.wall]) plus an optional external cancellation cell.
   Everything here must stay allocation-light: [expired] is polled from
   simplex pivot loops. The record is two words; the common [none] case
   short-circuits on both fields. *)

type cell = bool Atomic.t

type t = { expiry : float option; cancel : cell option }

let none = { expiry = None; cancel = None }
let now () = Obs.Clock.wall ()
let of_budget b = { expiry = Some (now () +. Float.max 0.0 b); cancel = None }

let clip t ~budget =
  let e = now () +. Float.max 0.0 budget in
  let expiry =
    match t.expiry with None -> Some e | Some e' -> Some (Float.min e e')
  in
  { t with expiry }

let min_ a b =
  let expiry =
    match (a.expiry, b.expiry) with
    | None, x | x, None -> x
    | Some x, Some y -> Some (Float.min x y)
  in
  let cancel =
    match (a.cancel, b.cancel) with None, c | c, _ -> c
  in
  { expiry; cancel }

let new_cell () = Atomic.make false
let with_cancel t cell = { t with cancel = Some cell }
let cancel cell = Atomic.set cell true
let clear_cell cell = Atomic.set cell false

let cancelled t =
  match t.cancel with None -> false | Some c -> Atomic.get c

let remaining t =
  match t.expiry with None -> infinity | Some e -> e -. now ()

let expired t =
  cancelled t
  || match t.expiry with None -> false | Some e -> e -. now () <= 0.0

let is_none t = t.expiry = None && t.cancel = None

exception Expired of string

let check t ~phase = if expired t then raise (Expired phase)

let split t weights =
  match t.expiry with
  | None -> List.map (fun (name, _) -> (name, { t with expiry = None })) weights
  | Some e ->
      let t0 = now () in
      let rem = Float.max 0.0 (e -. t0) in
      let total =
        List.fold_left (fun acc (_, w) -> acc +. Float.max 0.0 w) 0.0 weights
      in
      let total = if total <= 0.0 then 1.0 else total in
      let acc = ref 0.0 in
      List.map
        (fun (name, w) ->
          acc := !acc +. Float.max 0.0 w;
          ( name,
            { t with
              expiry = Some (Float.min e (t0 +. (rem *. (!acc /. total))));
            } ))
        weights

let pp ppf t =
  match t.expiry with
  | None ->
      Format.pp_print_string ppf
        (if cancelled t then "cancelled" else "none")
  | Some e ->
      if cancelled t then Format.pp_print_string ppf "cancelled"
      else Format.fprintf ppf "%.1fs left" (e -. now ())
