(* Absolute expiry instants on the Sys.time clock. [None] = no deadline.
   Everything here must stay allocation-light: [expired] is polled from
   simplex pivot loops. *)

type t = float option

let none = None
let now () = Sys.time ()
let of_budget b = Some (now () +. Float.max 0.0 b)

let clip t ~budget =
  let e = now () +. Float.max 0.0 budget in
  match t with None -> Some e | Some e' -> Some (Float.min e e')

let min_ a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some x, Some y -> Some (Float.min x y)

let remaining = function None -> infinity | Some e -> e -. now ()
let expired = function None -> false | Some e -> e -. now () <= 0.0
let is_none = function None -> true | Some _ -> false

exception Expired of string

let check t ~phase = if expired t then raise (Expired phase)

let split t weights =
  match t with
  | None -> List.map (fun (name, _) -> (name, None)) weights
  | Some e ->
      let t0 = now () in
      let rem = Float.max 0.0 (e -. t0) in
      let total =
        List.fold_left (fun acc (_, w) -> acc +. Float.max 0.0 w) 0.0 weights
      in
      let total = if total <= 0.0 then 1.0 else total in
      let acc = ref 0.0 in
      List.map
        (fun (name, w) ->
          acc := !acc +. Float.max 0.0 w;
          (name, Some (Float.min e (t0 +. (rem *. (!acc /. total))))))
        weights

let pp ppf = function
  | None -> Format.pp_print_string ppf "none"
  | Some e -> Format.fprintf ppf "%.1fs left" (e -. now ())
