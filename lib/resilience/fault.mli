(** Deterministic fault injection for the degradation cascade.

    Every escape hatch in the flow — MILP timeout, simplex numeric
    trouble, cut-enumeration blowup, mapper overrun — is guarded by a
    {e fault point}: a named site that normally does nothing and, when
    armed, forces that failure. Arming is explicit (CLI [--faults] or the
    [PIPESYN_FAULTS] environment variable routed through {!load_env});
    library code never arms anything on its own, so tests stay hermetic.

    Triggering is fully deterministic and reproducible: each point keeps a
    hit counter, and probabilistic specs derive their decision from a
    seeded integer hash of (seed, hit index) — the same spec produces the
    same firing pattern on every run.

    {2 Spec grammar}

    A spec is a comma-separated list of clauses:
    - [point] — fire on every hit;
    - [point\@N] — fire on the [N]-th hit only (1-based);
    - [point%P:S] — fire with probability [P] percent, decided by a hash
      seeded with [S] (deterministic across runs).

    Unknown point names are rejected so typos cannot silently arm
    nothing. *)

val points : (string * string) list
(** The registered fault points, [(name, behaviour when fired)]. Stable
    names, dot-separated [subsystem.failure]:
    [milp.timeout], [milp.raise], [simplex.cycle], [cuts.raise],
    [cuts.timeout], [techmap.timeout], and the solve-supervision kinds
    [milp.worker_kill], [milp.steal_drop], [milp.checkpoint_torn],
    [milp.stall] (DESIGN.md §3i). *)

val mem : string -> bool
(** Is the name a registered fault point? *)

val arm : string -> (unit, string) result
(** Parse a spec string and arm its clauses (adding to whatever is
    already armed). [Error] describes the first bad clause; nothing is
    armed on error. *)

val load_env : unit -> (unit, string) result
(** {!arm} the contents of [PIPESYN_FAULTS] (no-op when unset). *)

val armed : unit -> string list
(** Names of currently armed points, sorted. *)

val clear : unit -> unit
(** Disarm everything and zero all hit counters. *)

val fires : string -> bool
(** [fires point] — called at the fault site. Counts a hit and reports
    whether the armed spec (if any) triggers this time. Unarmed points
    always return [false] and keep no state. Fired faults bump the
    ["resilience.faults_fired"] counter in {!Obs}. Safe to call from
    B&B worker domains: hit counting is serialized by an internal lock
    (the hit {e order} across domains is scheduler-dependent, but the
    total count is exact). Arming and {!clear} remain driver-side,
    single-domain operations. *)
