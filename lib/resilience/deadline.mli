(** Cooperative wall-clock deadlines for the synthesis flow.

    A deadline is an absolute expiry instant on the [Sys.time] clock — the
    same per-process CPU clock the MILP budget and the {!Obs} timers use,
    so no Unix dependency is introduced. Subsystems receive a deadline and
    poll {!expired} at loop granularity (simplex pivots, branch-and-bound
    nodes, cut-enumeration worklist items, area-flow labelling) rather
    than only between coarse phases; {!none} makes every check free-ish
    and never expires, so deadline-free callers pay almost nothing.

    Deadlines compose downward: {!clip} derives a sub-deadline that a
    phase may not outlive, and {!split} schedules a sequence of phases
    inside one global budget, with unused time rolling over to later
    phases (cumulative checkpoints). *)

type t
(** Abstract; immutable. The no-deadline value never expires. *)

val none : t
(** Never expires; [remaining none = infinity]. *)

val of_budget : float -> t
(** [of_budget s] expires [max 0. s] seconds from now. *)

val clip : t -> budget:float -> t
(** [clip d ~budget] is the earlier of [d] and [of_budget budget] — the
    standard way to give a phase a local budget that still respects the
    global deadline. *)

val min_ : t -> t -> t
(** Earlier of the two ({!none} is the identity). *)

val remaining : t -> float
(** Seconds until expiry; [infinity] for {!none}, negative once expired. *)

val expired : t -> bool
(** [remaining t <= 0.]. *)

val is_none : t -> bool

exception Expired of string
(** Raised by {!check}; the payload names the phase that ran out. *)

val check : t -> phase:string -> unit
(** Cooperative cancellation point: @raise Expired when [expired t]. *)

val split : t -> (string * float) list -> (string * t) list
(** [split d weights] schedules the named phases sequentially inside [d]:
    phase [i] receives a deadline at the cumulative
    [sum w_0..w_i / sum w] fraction of the remaining time, never past
    [d]. Because checkpoints are cumulative, a phase finishing early
    donates its slack to every later phase. With [d = none] every phase
    gets {!none}. Non-positive weights are treated as [0.]. *)

val pp : Format.formatter -> t -> unit
(** ["none"] or the remaining seconds, e.g. ["3.2s left"]. *)
