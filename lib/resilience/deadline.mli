(** Cooperative wall-clock deadlines for the synthesis flow.

    A deadline is an absolute expiry instant on the monotonized wall
    clock ({!Obs.Clock.wall}) — resilience-v2 moved it off [Sys.time],
    whose per-process CPU seconds accumulate across OCaml 5 domains and
    made a [--domains 4] budget expire ~4x early. Subsystems receive a
    deadline and poll {!expired} at loop granularity (simplex pivots,
    branch-and-bound nodes, cut-enumeration worklist items, area-flow
    labelling) rather than only between coarse phases; {!none} makes
    every check free-ish and never expires, so deadline-free callers pay
    almost nothing.

    Deadlines compose downward: {!clip} derives a sub-deadline that a
    phase may not outlive, and {!split} schedules a sequence of phases
    inside one global budget, with unused time rolling over to later
    phases (cumulative checkpoints).

    A deadline may additionally carry a {b cancellation cell}
    ({!with_cancel}): an atomic flag another domain can raise to make
    {!expired} true immediately. The stall watchdog uses this to unwedge
    a worker stuck inside a single pathological LP — the simplex polls
    the same deadline it polls for time, so a cancel takes effect within
    one poll interval (64 pivots). *)

type t
(** Abstract; immutable (the optional cancel cell it references is the
    mutable part). The no-deadline value never expires. *)

type cell = bool Atomic.t
(** External cancellation flag, shared between the canceller (watchdog)
    and every deadline derived {e from} the cell's owner via
    {!with_cancel}. *)

val none : t
(** Never expires; [remaining none = infinity]. *)

val of_budget : float -> t
(** [of_budget s] expires [max 0. s] seconds from now (no cell). *)

val clip : t -> budget:float -> t
(** [clip d ~budget] is the earlier of [d] and [of_budget budget] — the
    standard way to give a phase a local budget that still respects the
    global deadline. The cell (if any) is inherited from [d]. *)

val min_ : t -> t -> t
(** Earlier of the two ({!none} is the identity). When both carry a
    cell, the first argument's cell wins (deadlines combined here come
    from one owner in practice). *)

val new_cell : unit -> cell
(** A fresh, un-cancelled cell. *)

val with_cancel : t -> cell -> t
(** [with_cancel d cell] expires when [d] does {e or} when [cell] has
    been cancelled, whichever is first. *)

val cancel : cell -> unit
(** Raise the flag: every deadline carrying [cell] is expired from now
    on (until {!clear_cell}). Safe from any domain. *)

val clear_cell : cell -> unit
(** Lower the flag — used when re-arming a worker's cell after its
    cancelled node has been requeued. *)

val cancelled : t -> bool
(** Whether [t] carries a cell that has been cancelled. Distinguishes a
    watchdog cancel from ordinary time expiry: [expired t && not
    (cancelled t)] is a genuine budget/deadline hit. *)

val remaining : t -> float
(** Seconds until time expiry; [infinity] for {!none}, negative once
    expired. Ignores the cancel cell. *)

val expired : t -> bool
(** [cancelled t || remaining t <= 0.]. *)

val is_none : t -> bool
(** No expiry instant {e and} no cancel cell. *)

exception Expired of string
(** Raised by {!check}; the payload names the phase that ran out. *)

val check : t -> phase:string -> unit
(** Cooperative cancellation point: @raise Expired when [expired t]. *)

val split : t -> (string * float) list -> (string * t) list
(** [split d weights] schedules the named phases sequentially inside [d]:
    phase [i] receives a deadline at the cumulative
    [sum w_0..w_i / sum w] fraction of the remaining time, never past
    [d]. Because checkpoints are cumulative, a phase finishing early
    donates its slack to every later phase. With [d = none] every phase
    gets {!none}. Non-positive weights are treated as [0.]. *)

val pp : Format.formatter -> t -> unit
(** ["none"], ["cancelled"], or the remaining seconds, e.g.
    ["3.2s left"]. *)
