module Int_set = Bitdep.Int_set

(* Instrumentation (lib/obs): additive — never influences which cuts are
   produced. *)
let c_candidates = Obs.Counter.get "cuts.candidates"
let c_enumerated = Obs.Counter.get "cuts.enumerated"
let c_infeasible = Obs.Counter.get "cuts.infeasible"
let c_pruned = Obs.Counter.get "cuts.pruned"
let c_merges = Obs.Counter.get "cuts.node_merges"
let c_truncated = Obs.Counter.get "cuts.deadline_truncations"
let t_enumerate = Obs.Timer.get "cuts.enumerate"

type cut = {
  root : int;
  leaves : int list;
  cone : Int_set.t;
  support : int;
  area : int;
}

type t = cut array array

type params = {
  k : int;
  max_cuts : int;
  max_candidates : int;
  max_leaf_words : int;
}

let default_params ~k =
  { k; max_cuts = 10; max_candidates = 512; max_leaf_words = k + 2 }

let is_trivial c = Int_set.cardinal c.cone = 1

(* Cone members must be computable logic: inputs and black boxes always
   stay at the boundary; constants may be absorbed (hardwired). *)
let absorbable g id =
  match Ir.Cdfg.op g id with
  | Ir.Op.Input _ | Ir.Op.Black_box _ -> false
  | Ir.Op.Const _ | Ir.Op.Not | Ir.Op.Bitwise _ | Ir.Op.Shl _ | Ir.Op.Shr _
  | Ir.Op.Slice _ | Ir.Op.Concat | Ir.Op.Add | Ir.Op.Sub | Ir.Op.Cmp _
  | Ir.Op.Mux ->
      true

let ceil_div a b = (a + b - 1) / b

let area ~k g ~root ~cone =
  if Int_set.cardinal cone = 1 then
    match Ir.Cdfg.op g root with
    | Ir.Op.Input _ | Ir.Op.Const _ | Ir.Op.Shl _ | Ir.Op.Shr _
    | Ir.Op.Slice _ | Ir.Op.Concat | Ir.Op.Black_box _ ->
        0
    | Ir.Op.Not | Ir.Op.Bitwise _ | Ir.Op.Mux ->
        Bitdep.lut_bits g ~root ~cone
    | Ir.Op.Add | Ir.Op.Sub -> Ir.Cdfg.width g root
    | Ir.Op.Cmp _ ->
        let w_in = Ir.Cdfg.width g (Ir.Cdfg.preds g root).(0).Ir.Cdfg.src in
        max 1 (ceil_div ((2 * w_in) - 1) (k - 1))
  else Bitdep.lut_bits g ~root ~cone

(* Canonical cone of a leaf set: nodes reachable backward from [root] along
   dist-0 edges, stopping at leaves. Returns None when a non-absorbable
   node would fall inside the cone. Unreachable leaves are dropped. *)
let cone_of g ~root ~leaf_set =
  let rec walk id (cone, reached) =
    if Int_set.mem id cone then Some (cone, reached)
    else if Int_set.mem id leaf_set then Some (cone, Int_set.add id reached)
    else if not (absorbable g id) then None
    else
      let cone = Int_set.add id cone in
      Array.fold_left
        (fun acc (e : Ir.Cdfg.edge) ->
          match acc with
          | None -> None
          | Some (cone, reached) ->
              if e.dist > 0 then
                (* registered operand: must be a leaf *)
                if Int_set.mem e.src leaf_set then
                  Some (cone, Int_set.add e.src reached)
                else None
              else walk e.src (cone, reached))
        (Some (cone, reached))
        (Ir.Cdfg.preds g id)
  in
  match walk root (Int_set.empty, Int_set.empty) with
  | None -> None
  | Some (cone, reached) -> Some (cone, Int_set.elements reached)

(* The always-legal trivial cut: the node alone, operands as leaves. *)
let trivial_cut ~k g v =
  let leaves =
    Array.to_list (Ir.Cdfg.preds g v)
    |> List.map (fun (e : Ir.Cdfg.edge) -> e.src)
    |> List.sort_uniq Int.compare
  in
  let cone = Int_set.singleton v in
  {
    root = v;
    leaves;
    cone;
    support = Bitdep.max_support_width g ~root:v ~cone;
    area = area ~k g ~root:v ~cone;
  }

let trivial_only g =
  (* k is irrelevant for areas of trivial cuts except Cmp; use 4. *)
  Array.init (Ir.Cdfg.num_nodes g) (fun v -> [| trivial_cut ~k:4 g v |])

let rank a b =
  let c = Int.compare a.area b.area in
  if c <> 0 then c
  else
    let c = Int.compare a.support b.support in
    if c <> 0 then c
    else
      let c = Int.compare (List.length a.leaves) (List.length b.leaves) in
      if c <> 0 then c else compare a.leaves b.leaves

(* Cartesian product of per-operand choice lists, capped. Each choice is a
   leaf set (as a sorted int list). *)
let merged_leaf_sets ~cap choices =
  let push acc leaves =
    if List.length acc >= cap then acc else leaves :: acc
  in
  let rec go acc partial = function
    | [] -> push acc partial
    | opts :: rest ->
        List.fold_left
          (fun acc leaves ->
            if List.length acc >= cap then acc
            else go acc (List.rev_append leaves partial) rest)
          acc opts
  in
  go [] [] choices
  |> List.map (List.sort_uniq Int.compare)
  |> List.sort_uniq compare

let enumerate ?params ?(deadline = Resilience.Deadline.none) ?truncated ~k g =
  Obs.Timer.span t_enumerate @@ fun () ->
  Obs.Trace.span ~cat:"cuts" "cuts.enumerate" @@ fun () ->
  if Resilience.Fault.fires "cuts.raise" then
    failwith "injected fault: cuts.raise";
  let forced_timeout = Resilience.Fault.fires "cuts.timeout" in
  let p = match params with Some p -> p | None -> default_params ~k in
  let n = Ir.Cdfg.num_nodes g in
  (* Building blocks: for each node, the leaf sets successors may choose
     from — the singleton {v} plus v's own enumerated (non-trivial) cuts. *)
  let blocks : int list list array = Array.make n [] in
  let result : cut list array = Array.make n [] in
  for v = 0 to n - 1 do
    let triv = trivial_cut ~k:p.k g v in
    result.(v) <- [ triv ];
    blocks.(v) <-
      (if absorbable g v then
         List.sort_uniq compare [ [ v ]; triv.leaves ]
       else [ [ v ] ])
  done;
  let mk_cut v leaves =
    if List.mem v leaves then None
      (* the root reached itself through a recurrence: not a cone *)
    else
    match cone_of g ~root:v ~leaf_set:(Int_set.of_list leaves) with
    | None -> None
    | Some (cone, leaves) ->
        if Int_set.cardinal cone = 1 then None (* that's the trivial cut *)
        else
          let support = Bitdep.max_support_width g ~root:v ~cone in
          if support > p.k then begin
            Obs.Counter.incr c_infeasible;
            None
          end
          else begin
            Obs.Counter.incr c_enumerated;
            Some
              {
                root = v;
                leaves;
                cone;
                support;
                area = area ~k:p.k g ~root:v ~cone;
              }
          end
  in
  let merge v =
    if not (absorbable g v) then [ trivial_cut ~k:p.k g v ]
    else
      let preds = Ir.Cdfg.preds g v in
      if Array.length preds = 0 then [ trivial_cut ~k:p.k g v ]
      else
        let choices =
          Array.to_list preds
          |> List.map (fun (e : Ir.Cdfg.edge) ->
                 if e.dist > 0 then [ [ e.src ] ] else blocks.(e.src))
        in
        let candidates = merged_leaf_sets ~cap:p.max_candidates choices in
        Obs.Counter.incr ~by:(List.length candidates) c_candidates;
        let cuts =
          List.filter_map
            (fun leaves ->
              if List.length leaves > p.max_leaf_words then None
              else mk_cut v leaves)
            candidates
        in
        let cuts = List.sort_uniq (fun a b -> compare a.leaves b.leaves) cuts in
        let ranked = List.sort rank cuts in
        let kept = List.filteri (fun i _ -> i < p.max_cuts) ranked in
        Obs.Counter.incr ~by:(List.length ranked - List.length kept) c_pruned;
        trivial_cut ~k:p.k g v :: kept
  in
  (* Algorithm 1: worklist over nodes in topological order; re-enqueue
     successors whenever a node's cut set changes. On our graphs (dist-0
     subgraph acyclic) this converges after one pass. *)
  let queue = Queue.create () in
  let queued = Array.make n false in
  List.iter
    (fun v ->
      Queue.add v queue;
      queued.(v) <- true)
    (Ir.Cdfg.topo_order g);
  let same_cutset a b =
    List.length a = List.length b
    && List.for_all2 (fun x y -> x.leaves = y.leaves) a b
  in
  (* Deadline degradation: abandoning the worklist early is safe because
     every node's cut set starts as [trivial] — downstream consumers just
     see fewer non-trivial choices, never an invalid set. *)
  let stop_early () =
    Obs.Counter.incr c_truncated;
    (match truncated with Some r -> r := true | None -> ());
    Queue.clear queue
  in
  if forced_timeout then stop_early ();
  while not (Queue.is_empty queue) do
    if Resilience.Deadline.expired deadline then stop_early ()
    else begin
    let v = Queue.pop queue in
    queued.(v) <- false;
    Obs.Counter.incr c_merges;
    let fresh =
      if Obs.Trace.enabled () then
        Obs.Trace.span ~cat:"cuts" "cuts.node"
          ~args:[ ("node", Obs.Json.Int v) ]
          (fun () -> merge v)
      else merge v
    in
    if not (same_cutset fresh result.(v)) then begin
      result.(v) <- fresh;
      (* Building blocks: the singleton {v} (v stays a boundary) plus every
         cut's leaf set — including the trivial cut's, which is how a
         successor absorbs v itself with the boundary at v's operands.
         Non-absorbable nodes (inputs, black boxes) offer only {v}. *)
      blocks.(v) <-
        (if absorbable g v then
           ([ v ] :: List.map (fun c -> c.leaves) fresh)
           |> List.sort_uniq compare
         else [ [ v ] ]);
      List.iter
        (fun (s, dist) ->
          if dist = 0 && not queued.(s) then begin
            Queue.add s queue;
            queued.(s) <- true
          end)
        (Ir.Cdfg.succs g v)
    end
    end
  done;
  Array.map Array.of_list result

let delay ~device ~delays g cut =
  if is_trivial cut then
    let op = Ir.Cdfg.op g cut.root in
    let width =
      (* a comparison walks its operands' carry chain, not its 1-bit out *)
      match op with
      | Ir.Op.Cmp _ -> Ir.Cdfg.width g (Ir.Cdfg.preds g cut.root).(0).Ir.Cdfg.src
      | _ -> Ir.Cdfg.width g cut.root
    in
    match Ir.Op.classify op with
    | Fpga.Op_class.Wire -> 0.0
    | Fpga.Op_class.Logic ->
        if cut.area = 0 then 0.0 else device.Fpga.Device.lut_delay
    | Fpga.Op_class.Arith ->
        Fpga.Delays.additive delays ~cls:Fpga.Op_class.Arith ~width
    | Fpga.Op_class.Black_box _ as cls ->
        Fpga.Delays.additive delays ~cls ~width
  else if cut.area = 0 then 0.0
  else device.Fpga.Device.lut_delay

let total_cuts t = Array.fold_left (fun acc cs -> acc + Array.length cs) 0 t

let pp_cut g ppf c =
  Fmt.pf ppf "@[<h>%s <- {%a} cone=%d sup=%d area=%d@]"
    (Ir.Cdfg.node_name g c.root)
    Fmt.(list ~sep:comma string)
    (List.map (Ir.Cdfg.node_name g) c.leaves)
    (Int_set.cardinal c.cone) c.support c.area

let pp_node_cuts g ppf (v, cs) =
  Fmt.pf ppf "@[<v2>%s (%d cuts):@,%a@]" (Ir.Cdfg.node_name g v)
    (Array.length cs)
    Fmt.(array ~sep:cut (pp_cut g))
    cs
