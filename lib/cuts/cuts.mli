(** Word-level cut enumeration (paper Sec. 3.1, Algorithm 1).

    For every CDFG node [v] this module enumerates the K-feasible cuts the
    MILP may select. A {e cut} is the set of boundary nodes of a cone rooted
    at [v]; selecting it means the whole cone is implemented as [Bits(v)]
    bit-slice K-LUTs whose inputs are the boundary bits.

    Deviations from bit-level enumeration, per DESIGN.md:
    - feasibility is per output bit: the cone is K-feasible iff every output
      bit's boundary-bit support (from {!Bitdep.support}) has at most K bits;
    - cones never cross loop-carried ([dist > 0]) edges — LUTs are
      combinational, so registered operands are always boundaries;
    - black-box, input and constant nodes are never cone members;
    - the {e trivial} cut (the node alone, its operands as boundaries) is
      always present and always legal even when wider than K — it is the
      additive-model fallback (carry chains, black boxes). *)

type cut = {
  root : int;
  leaves : int list;
      (** boundary node ids, sorted, deduplicated; these are the nodes that
          must themselves be roots when this cut is selected (Eq. 4) *)
  cone : Bitdep.Int_set.t;  (** covered nodes, including [root] *)
  support : int;  (** max per-output-bit boundary support width *)
  area : int;  (** LUT cost of selecting this cut (see {!val:area}) *)
}

type t = cut array array
(** [cuts.(v)] are the selectable cuts of node [v]; index 0 is always the
    trivial cut. *)

type params = {
  k : int;  (** LUT input count *)
  max_cuts : int;  (** per-node cap on stored cuts, trivial cut excluded *)
  max_candidates : int;  (** per-node cap on merge combinations explored *)
  max_leaf_words : int;  (** quick reject on word-level leaf count *)
}

val default_params : k:int -> params
(** [max_cuts = 10], [max_candidates = 512], [max_leaf_words = k + 2]. *)

val enumerate :
  ?params:params ->
  ?deadline:Resilience.Deadline.t ->
  ?truncated:bool ref ->
  k:int ->
  Ir.Cdfg.t ->
  t
(** Algorithm 1: worklist-driven merge of predecessor cut sets. Cuts are
    ranked by (area, support, leaf count) and pruned to [max_cuts] per node;
    the trivial cut is never pruned.

    When [deadline] (default {!Resilience.Deadline.none}) expires the
    worklist is abandoned: [truncated] (if given) is set and the partial
    result is returned. The result is always valid — every node's cut set
    is initialised with its trivial cut, so truncation only reduces the
    number of non-trivial alternatives offered downstream.

    Fault points ({!Resilience.Fault}): [cuts.raise] raises [Failure] at
    entry; [cuts.timeout] forces immediate truncation. *)

val trivial_only : Ir.Cdfg.t -> t
(** The cut sets used by MILP-base: every node keeps only its trivial cut
    (equivalent to skipping cut enumeration, Sec. 4). *)

val is_trivial : cut -> bool
(** The cone contains only the root. *)

val area : k:int -> Ir.Cdfg.t -> root:int -> cone:Bitdep.Int_set.t -> int
(** LUT cost of a cone: per-bit LUT count for logic cones
    ({!Bitdep.lut_bits}), carry-chain width for single-node arithmetic,
    a compressor-tree estimate for single-node comparisons, 0 for wires
    and black boxes. *)

val delay :
  device:Fpga.Device.t -> delays:Fpga.Delays.t -> Ir.Cdfg.t -> cut -> float
(** Combinational delay charged to the cut's root when this cut is
    selected: one LUT delay for mapped cones, the characterized delay for
    single-node arithmetic / black boxes, 0 for pure wiring. *)

val total_cuts : t -> int
val pp_cut : Ir.Cdfg.t -> cut Fmt.t
val pp_node_cuts : Ir.Cdfg.t -> (int * cut array) Fmt.t
