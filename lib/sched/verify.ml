type context = {
  device : Fpga.Device.t;
  delays : Fpga.Delays.t;
  resources : Fpga.Resource.budget;
}

let eps = 1e-6

let check ctx g cover (sched : Schedule.t) =
  let errs = ref [] in
  let err fmt = Fmt.kstr (fun s -> errs := s :: !errs) fmt in
  let name = Ir.Cdfg.node_name g in
  let period = Fpga.Device.usable_period ctx.device in
  let delay = Timing.node_delay ~device:ctx.device ~delays:ctx.delays g cover in
  let latency = Timing.node_latency ~device:ctx.device ~delays:ctx.delays g cover in
  (match Cover.validate g cover with
  | Ok () -> ()
  | Error e -> err "[Eq. 2-4] cover: %s" e);
  let n = Ir.Cdfg.num_nodes g in
  if Array.length sched.cycle <> n then err "schedule size mismatch"
  else begin
    (* Eq. 8: cycle-time fit; multi-cycle roots start at the boundary. *)
    for v = 0 to n - 1 do
      if Cover.is_root cover v then
        if latency v = 0 then begin
          let fin = sched.start.(v) +. delay v in
          if fin > period +. eps then
            err "[Eq. 8] %s: finish %.3f exceeds period %.3f" (name v) fin period
        end
        else if sched.start.(v) > eps then
          err "[Eq. 8] %s: multi-cycle op starts mid-cycle (%.3f)" (name v)
            sched.start.(v)
    done;
    (* Interior nodes carry no physical timing of their own: every selected
       cone is a single LUT level (K-feasibility), so the only timing that
       matters is the arrival of cone inputs at the root's start — checked
       below. *)
    (* Dependences into every selected cone (and black boxes). *)
    Array.iteri
      (fun v c ->
        match c with
        | None -> ()
        | Some (cut : Cuts.cut) ->
            let use_cycle d = sched.cycle.(v) + (sched.ii * d) in
            Bitdep.Int_set.iter
              (fun w ->
                Array.iter
                  (fun (e : Ir.Cdfg.edge) ->
                    if e.dist > 0 || not (Bitdep.Int_set.mem e.src cut.Cuts.cone) then begin
                      let u = e.src in
                      let avail = sched.cycle.(u) + latency u in
                      let uc = use_cycle e.dist in
                      if e.dist > 0 then begin
                        if avail >= uc then
                          err
                            "[Eq. 7] registered edge %s->%s: produced cycle %d, \
                             used cycle %d (same-cycle read through register)"
                            (name u) (name w) avail uc
                      end
                      else if avail > uc then
                        err "[Eq. 7] %s->%s: produced cycle %d after use cycle %d"
                          (name u) (name w) avail uc
                      else if avail = uc then begin
                        let arr =
                          if latency u >= 1 then
                            Float.max 0.0
                              (delay u
                              -. (float_of_int (latency u) *. period))
                          else sched.start.(u) +. delay u
                        in
                        if arr > sched.start.(v) +. eps then
                          err "[Eq. 9] %s->%s: chained arrival %.3f after start %.3f"
                            (name u) (name w) arr sched.start.(v)
                      end
                    end)
                  (Ir.Cdfg.preds g w))
              cut.Cuts.cone)
      cover.Cover.chosen;
    (* Eq. 14: modulo resource limits for black boxes. *)
    let counts = Hashtbl.create 8 in
    for v = 0 to n - 1 do
      match Ir.Cdfg.op g v with
      | Ir.Op.Black_box { resource; _ } ->
          let key = (resource, Schedule.phase sched v) in
          Hashtbl.replace counts key
            (1 + Option.value ~default:0 (Hashtbl.find_opt counts key))
      | _ -> ()
    done;
    Hashtbl.iter
      (fun (r, phase) used ->
        match Fpga.Resource.limit ctx.resources r with
        | Some lim when used > lim ->
            err "[Eq. 14] resource %s: %d used in phase %d, limit %d" r used phase lim
        | Some _ | None -> ())
      counts
  end;
  match !errs with [] -> Ok () | l -> Error (List.rev l)

let check_exn ctx g cover sched =
  match check ctx g cover sched with
  | Ok () -> ()
  | Error errs -> failwith (String.concat "; " errs)
