(** Additive-delay modulo scheduler — the stand-in for the commercial HLS
    tool's heuristic (Sec. 4): list scheduling in topological order with
    operation chaining under pre-characterized delays, iterated to a fixed
    point over loop-carried dependences, with greedy modulo reservation of
    black-box resources.

    The scheduler is deliberately {e mapping-agnostic}: every operation
    incurs its characterized delay, so a chain of cheap logic operations
    fills the cycle long before a real LUT mapping would — exactly the
    pessimism the paper's Figure 1 illustrates. *)

type error =
  | Recurrence_too_tight of string
      (** a loop-carried cycle cannot meet the target II *)
  | Resource_infeasible of string
      (** black-box demand exceeds availability at the target II *)

val op_delay : delays:Fpga.Delays.t -> Ir.Cdfg.t -> int -> float
(** Characterized (additive-model) delay of one operation; comparisons are
    charged for their operand width. Shared with the SDC scheduler. *)

val op_latency :
  device:Fpga.Device.t -> delays:Fpga.Delays.t -> Ir.Cdfg.t -> int -> int
(** Whole cycles before the result is available under the additive model. *)

val res_mii : resources:Fpga.Resource.budget -> Ir.Cdfg.t -> int
(** Resource-constrained lower bound on the II: per black-box resource
    class, [ceil (uses / limit)]. [max_int] when a used class has zero
    units. *)

val rec_mii : device:Fpga.Device.t -> delays:Fpga.Delays.t -> Ir.Cdfg.t -> int
(** Recurrence-constrained lower bound on the II: the smallest II at which
    no dependence cycle carries more chained delay (in fractional cycles,
    additive model) than its registers grant it. Capped at 64. *)

val recurrence_feasible :
  device:Fpga.Device.t -> delays:Fpga.Delays.t -> ii:int -> Ir.Cdfg.t -> bool
(** Whether the continuous relaxation of the dependence constraints admits
    the given [ii] — the test underlying {!rec_mii}; exposed so the
    pre-flight analyzer ({!Analyze.Preflight}) can extract a witness
    cycle. *)

val min_ii :
  delays:Fpga.Delays.t -> device:Fpga.Device.t ->
  resources:Fpga.Resource.budget -> Ir.Cdfg.t -> int
(** [max (ResMII, RecMII)]: the classic lower bound on the initiation
    interval (Rau's iterative modulo scheduling). *)

val schedule :
  device:Fpga.Device.t ->
  delays:Fpga.Delays.t ->
  resources:Fpga.Resource.budget ->
  ii:int ->
  Ir.Cdfg.t ->
  (Schedule.t, error) result
(** ASAP modulo schedule with chaining at the given [ii]. On success the
    schedule satisfies all dependence, cycle-time and resource constraints
    under the additive delay model (validated in tests via {!Verify} with a
    trivial cover). *)

val pp_error : error Fmt.t
