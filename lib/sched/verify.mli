(** Legality checking of (schedule, cover) pairs against the paper's full
    constraint system — the reproduction's ground truth, used to validate
    both the MILP's output and the heuristic baseline in tests and after
    every synthesis run. *)

type context = {
  device : Fpga.Device.t;
  delays : Fpga.Delays.t;
  resources : Fpga.Resource.budget;
}

val check :
  context -> Ir.Cdfg.t -> Cover.t -> Schedule.t -> (unit, string list) result
(** All violated constraints (empty list never returned). Checked:
    - cover structure ({!Cover.validate}: Eq. 2–4);
    - cycle-time: every root fits its cycle, [L_v + d_v <= T] (Eq. 8);
    - dependences: leaves available before use, chaining arrival order
      within a cycle (Eq. 7, 9), registered edges cross at least one cycle;
    - modulo resource limits for black boxes (Eq. 14).

    Cone-interior nodes carry no physical timing (a K-feasible cone is one
    LUT level), so no constraint is placed on their [S]/[L] entries — a
    deliberate relaxation of the paper's Eq. 9 equality, see DESIGN.md.

    Every violation message is prefixed with the paper equation it
    enforces, e.g. ["[Eq. 8] ..."], matching the DESIGN.md formulation
    reference table; {!Analyze.Cert} keys its diagnostic codes off these
    tags. *)

val check_exn : context -> Ir.Cdfg.t -> Cover.t -> Schedule.t -> unit
(** @raise Failure with all violations joined, for test assertions. *)
