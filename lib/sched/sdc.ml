let solves = ref 0
let pivots = ref 0
let lp_stats () = (!solves, !pivots)

(* Longest combinational (dist-0) path delay between every ancestor/node
   pair, endpoint delays included — the source of chaining constraints. *)
let path_delays ~delays g =
  let n = Ir.Cdfg.num_nodes g in
  let maps : (int, float) Hashtbl.t array =
    Array.init n (fun _ -> Hashtbl.create 8)
  in
  let d = Heuristic.op_delay ~delays g in
  List.iter
    (fun v ->
      let mv = maps.(v) in
      Hashtbl.replace mv v (d v);
      Array.iter
        (fun (e : Ir.Cdfg.edge) ->
          if e.dist = 0 then
            Hashtbl.iter
              (fun a w ->
                let cand = w +. d v in
                match Hashtbl.find_opt mv a with
                | Some w' when w' >= cand -> ()
                | Some _ | None -> Hashtbl.replace mv a cand)
              maps.(e.src))
        (Ir.Cdfg.preds g v))
    (Ir.Cdfg.topo_order g);
  maps

(* ASAP start times within the assigned cycles, additive delay model. *)
let starts_of ~device ~delays g cycle =
  let n = Ir.Cdfg.num_nodes g in
  let period = Fpga.Device.usable_period device in
  let start = Array.make n 0.0 in
  let d = Heuristic.op_delay ~delays g in
  let lat = Heuristic.op_latency ~device ~delays g in
  List.iter
    (fun v ->
      let arr =
        Array.fold_left
          (fun acc (e : Ir.Cdfg.edge) ->
            if e.dist = 0 && cycle.(e.src) + lat e.src = cycle.(v) then
              let residual = d e.src -. (float_of_int (lat e.src) *. period) in
              Float.max acc (start.(e.src) +. Float.max 0.0 residual)
            else acc)
          0.0 (Ir.Cdfg.preds g v)
      in
      start.(v) <- arr)
    (Ir.Cdfg.topo_order g);
  start

let schedule ~device ~delays ~resources ~ii g =
  if ii < 1 then invalid_arg "Sdc.schedule: ii < 1";
  let n = Ir.Cdfg.num_nodes g in
  let period = Fpga.Device.usable_period device in
  let horizon = float_of_int (4 * (n + 16)) in
  let lat = Heuristic.op_latency ~device ~delays g in
  (* ResMII gate: at an infeasible II, ordering constraints cannot help. *)
  let counts = Hashtbl.create 8 in
  Ir.Cdfg.iter
    (fun nd ->
      match nd.op with
      | Ir.Op.Black_box { resource; _ } ->
          Hashtbl.replace counts resource
            (1 + Option.value ~default:0 (Hashtbl.find_opt counts resource))
      | _ -> ())
    g;
  let res_feasible =
    Hashtbl.fold
      (fun r used acc ->
        acc
        && match Fpga.Resource.limit resources r with
           | None -> true
           | Some lim -> used <= lim * ii)
      counts true
  in
  if not res_feasible then
    Error
      (Heuristic.Resource_infeasible
         (Printf.sprintf "black-box demand exceeds capacity at II=%d" ii))
  else begin
    let model = Lp.Model.create ~name:"sdc" () in
    let s =
      Array.init n (fun v ->
          Lp.Model.add_var model ~lb:0.0 ~ub:horizon
            (Printf.sprintf "S_%s" (Ir.Cdfg.node_name g v)))
    in
    let is_const v =
      match Ir.Cdfg.op g v with Ir.Op.Const _ -> true | _ -> false
    in
    let reg =
      Array.init n (fun v ->
          if is_const v then None
          else
            Some
              (Lp.Model.add_var model ~lb:0.0 ~ub:horizon
                 (Printf.sprintf "reg_%s" (Ir.Cdfg.node_name g v))))
    in
    (* dependence / registered-edge difference constraints *)
    Ir.Cdfg.iter
      (fun nd ->
        Array.iter
          (fun (e : Ir.Cdfg.edge) ->
            let rhs =
              if e.dist = 0 then float_of_int (lat e.src)
              else float_of_int (lat e.src + 1 - (ii * e.dist))
            in
            Lp.Model.add_ge model
              [ (1.0, s.(nd.id)); (-1.0, s.(e.src)) ]
              rhs;
            (* lifetime of the producer's value *)
            match reg.(e.src) with
            | None -> ()
            | Some r ->
                Lp.Model.add_ge model
                  [ (1.0, r); (-1.0, s.(nd.id)); (1.0, s.(e.src)) ]
                  (float_of_int ((ii * e.dist) - lat e.src)))
          nd.preds)
      g;
    (* chaining constraints from long combinational paths *)
    let paths = path_delays ~delays g in
    for v = 0 to n - 1 do
      Hashtbl.iter
        (fun a w ->
          if a <> v then begin
            let bound =
              int_of_float (Float.ceil ((w /. period) -. 1e-9)) - 1
            in
            if bound >= 1 then
              Lp.Model.add_ge model
                [ (1.0, s.(v)); (-1.0, s.(a)) ]
                (float_of_int bound)
          end)
        paths.(v)
    done;
    (* inputs anchored at cycle 0 *)
    List.iter (fun v -> Lp.Model.fix model s.(v) 0.0) (Ir.Cdfg.inputs g);
    (* objective: register bits, with a small schedule-compactness term *)
    let obj = ref [] in
    let tie = 0.4 /. (horizon *. float_of_int (n + 1)) in
    for v = 0 to n - 1 do
      obj := (tie, s.(v)) :: !obj;
      match reg.(v) with
      | Some r -> obj := (float_of_int (Ir.Cdfg.width g v), r) :: !obj
      | None -> ()
    done;
    Lp.Model.set_objective model !obj;
    (* iterative modulo-resource conflict resolution (FPL'14 style) *)
    let bb_nodes =
      Ir.Cdfg.fold
        (fun nd acc ->
          match nd.op with
          | Ir.Op.Black_box { resource; _ } -> (nd.id, resource) :: acc
          | _ -> acc)
        g []
    in
    let rec attempt round =
      if round > 50 then
        Error (Heuristic.Resource_infeasible "SDC conflict resolution diverged")
      else begin
        incr solves;
        let r = Lp.Simplex.solve (Lp.Model.to_raw model) in
        pivots := !pivots + r.Lp.Simplex.iterations;
        match r.Lp.Simplex.status with
        | Lp.Simplex.Infeasible | Lp.Simplex.Unbounded
        | Lp.Simplex.Iteration_limit | Lp.Simplex.Time_limit ->
            Error
              (Heuristic.Recurrence_too_tight
                 (Printf.sprintf "SDC LP unsolvable at II=%d" ii))
        | Lp.Simplex.Optimal ->
            (* total unimodularity: flooring preserves every difference
               constraint with integral right-hand side *)
            let cycle =
              Array.init n (fun v ->
                  int_of_float (Float.floor (r.Lp.Simplex.x.(v) +. 1e-6)))
            in
            (* detect a modulo resource conflict *)
            let usage = Hashtbl.create 8 in
            let conflict = ref None in
            List.iter
              (fun (v, res) ->
                match Fpga.Resource.limit resources res with
                | None -> ()
                | Some lim ->
                    let key = (res, cycle.(v) mod ii) in
                    let users =
                      v :: Option.value ~default:[] (Hashtbl.find_opt usage key)
                    in
                    Hashtbl.replace usage key users;
                    if List.length users > lim && !conflict = None then
                      conflict := Some users)
              (List.sort compare bb_nodes);
            (match !conflict with
            | Some (a :: b :: _) ->
                (* push one of the clashing operations a cycle later *)
                Lp.Model.add_ge model
                  [ (1.0, s.(a)); (-1.0, s.(b)) ]
                  1.0;
                attempt (round + 1)
            | Some _ | None ->
                let start = starts_of ~device ~delays g cycle in
                Ok (Schedule.shift_to_zero (Schedule.make ~ii ~cycle ~start)))
      end
    in
    attempt 0
  end
