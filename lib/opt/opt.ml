type stats = { removed : int; folded : int; merged : int; rounds : int }

let pp_stats ppf s =
  Fmt.pf ppf "%d removed, %d folded, %d merged in %d rounds" s.removed
    s.folded s.merged s.rounds

(* Rebuild a graph under a substitution (node -> replacement node) and an
   opcode override (node -> new op, used to constify folded nodes), keeping
   only what the outputs reach. *)
let rebuild g ~replace ~new_op =
  let n = Ir.Cdfg.num_nodes g in
  let rec resolve v =
    match replace.(v) with None -> v | Some u -> resolve u
  in
  let op_of v =
    match new_op.(v) with Some op -> op | None -> Ir.Cdfg.op g v
  in
  let preds_of v =
    match new_op.(v) with
    | Some _ -> [||] (* constified: no operands *)
    | None ->
        Array.map
          (fun (e : Ir.Cdfg.edge) -> { e with Ir.Cdfg.src = resolve e.src })
          (Ir.Cdfg.preds g v)
  in
  (* liveness backward from resolved outputs *)
  let live = Array.make n false in
  let rec mark v =
    if not live.(v) then begin
      live.(v) <- true;
      Array.iter (fun (e : Ir.Cdfg.edge) -> mark e.src) (preds_of v)
    end
  in
  let outs = List.map resolve (Ir.Cdfg.outputs g) in
  List.iter mark outs;
  let remap = Array.make n (-1) in
  let next = ref 0 in
  for v = 0 to n - 1 do
    if live.(v) then begin
      remap.(v) <- !next;
      incr next
    end
  done;
  let nodes = ref [] in
  for v = n - 1 downto 0 do
    if live.(v) then
      nodes :=
        Ir.Cdfg.
          {
            id = remap.(v);
            op = op_of v;
            width = Ir.Cdfg.width g v;
            preds =
              Array.map
                (fun (e : Ir.Cdfg.edge) -> { e with src = remap.(e.src) })
                (preds_of v);
            name = (Ir.Cdfg.node g v).Ir.Cdfg.name;
          }
        :: !nodes
  done;
  Ir.Cdfg.create ~nodes:!nodes ~outputs:(List.map (fun o -> remap.(o)) outs)

let no_subst g = Array.make (Ir.Cdfg.num_nodes g) None

let dead_code g =
  let before = Ir.Cdfg.num_nodes g in
  let g' = rebuild g ~replace:(no_subst g) ~new_op:(no_subst g) in
  (g', before - Ir.Cdfg.num_nodes g')

(* --- constant folding and algebraic identities ------------------------- *)

let const_of g (e : Ir.Cdfg.edge) =
  if e.dist > 0 then None
  else
    match Ir.Cdfg.op g e.src with Ir.Op.Const c -> Some c | _ -> None

let ones ~width = Int64.sub (Int64.shift_left 1L width) 1L

let fold_constants g =
  let n = Ir.Cdfg.num_nodes g in
  let replace = Array.make n None in
  let new_op = Array.make n None in
  let count = ref 0 in
  let alias v (e : Ir.Cdfg.edge) =
    (* only a same-iteration, same-width pass-through may alias *)
    if e.dist = 0 && Ir.Cdfg.width g e.src = Ir.Cdfg.width g v then begin
      replace.(v) <- Some e.src;
      incr count;
      true
    end
    else false
  in
  let constify v c =
    new_op.(v) <- Some (Ir.Op.Const (Int64.logand c (ones ~width:(Ir.Cdfg.width g v))));
    incr count
  in
  let same_value (a : Ir.Cdfg.edge) (b : Ir.Cdfg.edge) =
    a.src = b.src && a.dist = b.dist
    && (a.dist = 0 || Int64.equal a.init b.init)
  in
  Ir.Cdfg.iter
    (fun nd ->
      if replace.(nd.id) = None && new_op.(nd.id) = None then begin
        let p i = nd.preds.(i) in
        let c i = const_of g (p i) in
        let all_const =
          Array.length nd.preds > 0
          && Array.for_all (fun e -> const_of g e <> None) nd.preds
        in
        match nd.op with
        | Ir.Op.Input _ | Ir.Op.Const _ | Ir.Op.Black_box _ -> ()
        | op when all_const -> (
            (* full evaluation on constant operands *)
            let args =
              Array.map
                (fun e -> Option.get (const_of g e))
                nd.preds
            in
            match op with
            | Ir.Op.Concat ->
                let low_w = Ir.Cdfg.width g (p 1).Ir.Cdfg.src in
                constify nd.id
                  (Int64.logor (Int64.shift_left args.(0) low_w) args.(1))
            | _ ->
                constify nd.id
                  (Ir.Op.eval op ~width:nd.width
                     ~black_box:(fun ~kind:_ _ -> 0L)
                     args))
        | Ir.Op.Bitwise Ir.Op.Xor -> (
            if same_value (p 0) (p 1) then constify nd.id 0L
            else
              match (c 0, c 1) with
              | Some z, _ when Int64.equal z 0L -> ignore (alias nd.id (p 1))
              | _, Some z when Int64.equal z 0L -> ignore (alias nd.id (p 0))
              | _ -> ())
        | Ir.Op.Bitwise Ir.Op.And -> (
            if same_value (p 0) (p 1) then ignore (alias nd.id (p 0))
            else
              let w = nd.width in
              match (c 0, c 1) with
              | Some z, _ when Int64.equal z 0L -> constify nd.id 0L
              | _, Some z when Int64.equal z 0L -> constify nd.id 0L
              | Some m, _ when Int64.equal m (ones ~width:w) ->
                  ignore (alias nd.id (p 1))
              | _, Some m when Int64.equal m (ones ~width:w) ->
                  ignore (alias nd.id (p 0))
              | _ -> ())
        | Ir.Op.Bitwise Ir.Op.Or -> (
            if same_value (p 0) (p 1) then ignore (alias nd.id (p 0))
            else
              let w = nd.width in
              match (c 0, c 1) with
              | Some z, _ when Int64.equal z 0L -> ignore (alias nd.id (p 1))
              | _, Some z when Int64.equal z 0L -> ignore (alias nd.id (p 0))
              | Some m, _ when Int64.equal m (ones ~width:w) ->
                  constify nd.id (ones ~width:w)
              | _, Some m when Int64.equal m (ones ~width:w) ->
                  constify nd.id (ones ~width:w)
              | _ -> ())
        | Ir.Op.Add -> (
            match (c 0, c 1) with
            | Some z, _ when Int64.equal z 0L -> ignore (alias nd.id (p 1))
            | _, Some z when Int64.equal z 0L -> ignore (alias nd.id (p 0))
            | _ -> ())
        | Ir.Op.Sub -> (
            match c 1 with
            | Some z when Int64.equal z 0L -> ignore (alias nd.id (p 0))
            | _ -> if same_value (p 0) (p 1) then constify nd.id 0L)
        | Ir.Op.Shl 0 | Ir.Op.Shr 0 -> ignore (alias nd.id (p 0))
        | Ir.Op.Slice { lo = 0; hi } when hi = Ir.Cdfg.width g (p 0).Ir.Cdfg.src - 1 ->
            ignore (alias nd.id (p 0))
        | Ir.Op.Mux -> (
            if same_value (p 1) (p 2) then ignore (alias nd.id (p 1))
            else
              match c 0 with
              | Some v ->
                  ignore (alias nd.id (if Int64.equal v 0L then p 2 else p 1))
              | None -> ())
        | Ir.Op.Not -> (
            (* double negation *)
            let e = p 0 in
            if e.dist = 0 then
              match Ir.Cdfg.op g e.src with
              | Ir.Op.Not ->
                  let inner = (Ir.Cdfg.preds g e.src).(0) in
                  if inner.Ir.Cdfg.dist = 0 then ignore (alias nd.id inner)
              | _ -> ())
        | Ir.Op.Shl _ | Ir.Op.Shr _ | Ir.Op.Slice _ | Ir.Op.Concat
        | Ir.Op.Cmp _ ->
            ()
      end)
    g;
  if !count = 0 then (g, 0)
  else (rebuild g ~replace ~new_op, !count)

(* --- common subexpression elimination ---------------------------------- *)

let cse g =
  let replace = Array.make (Ir.Cdfg.num_nodes g) None in
  let rec resolve v = match replace.(v) with None -> v | Some u -> resolve u in
  let seen = Hashtbl.create 64 in
  let count = ref 0 in
  List.iter
    (fun v ->
      let nd = Ir.Cdfg.node g v in
      match nd.op with
      | Ir.Op.Input _ | Ir.Op.Black_box _ -> ()
      | op ->
          let key =
            ( Ir.Op.to_string op,
              nd.width,
              Array.to_list
                (Array.map
                   (fun (e : Ir.Cdfg.edge) -> (resolve e.src, e.dist, e.init))
                   nd.preds) )
          in
          (match Hashtbl.find_opt seen key with
          | Some rep when rep <> v ->
              replace.(v) <- Some rep;
              incr count
          | Some _ -> ()
          | None -> Hashtbl.add seen key v))
    (Ir.Cdfg.topo_order g);
  if !count = 0 then (g, 0)
  else (rebuild g ~replace ~new_op:(no_subst g), !count)

(* Instrumentation (lib/obs): per-pass totals, additive only. *)
let c_removed = Obs.Counter.get "opt.dead_code_removed"
let c_folded = Obs.Counter.get "opt.constants_folded"
let c_merged = Obs.Counter.get "opt.cse_merged"
let c_rounds = Obs.Counter.get "opt.rounds"
let t_simplify = Obs.Timer.get "opt.simplify"

let simplify ?(max_rounds = 8) g =
  Obs.Timer.span t_simplify @@ fun () ->
  let rec go g acc round =
    if round >= max_rounds then (g, { acc with rounds = round })
    else begin
      let g, folded = fold_constants g in
      let g, merged = cse g in
      let g, removed = dead_code g in
      Obs.Counter.incr ~by:folded c_folded;
      Obs.Counter.incr ~by:merged c_merged;
      Obs.Counter.incr ~by:removed c_removed;
      Obs.Counter.incr c_rounds;
      let acc =
        {
          removed = acc.removed + removed;
          folded = acc.folded + folded;
          merged = acc.merged + merged;
          rounds = round + 1;
        }
      in
      if folded = 0 && merged = 0 && removed = 0 then (g, acc)
      else go g acc (round + 1)
    end
  in
  go g { removed = 0; folded = 0; merged = 0; rounds = 0 } 0
