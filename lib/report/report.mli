(** Plain-text table rendering in the paper's style: fixed columns,
    percentage deltas relative to a reference row. *)

type align = Left | Right

type column = { title : string; align : align }

val table : columns:column list -> string list list -> string
(** Renders rows under a header; every row must have as many cells as
    there are columns.
    @raise Invalid_argument on a ragged row. *)

val pct : reference:int -> int -> string
(** The paper's percentage format: [(-42.1%)] relative to [reference].
    Empty only when [reference <= 0] (no meaningful baseline); an equal
    value renders as [(+0.0%)] — callers that want the reference row
    itself blank (as in Table 1) must skip the call for that row, which is
    what the bench harness does. *)

val f2 : float -> string
(** Two-decimal float. *)
