(** Downstream technology mapping: per-stage LUT covering of an already
    scheduled CDFG (the reproduction's stand-in for Vivado logic synthesis
    after the HLS tool fixed the pipeline registers).

    The mapper must respect the schedule's register boundaries — a cone may
    only absorb nodes from the same clock cycle. This is precisely the
    structural pessimism the paper identifies: downstream mapping cannot
    shorten a pipeline that the scheduler already cut at the wrong places
    (Sec. 1).

    Covering uses the classic area-flow heuristic: in topological order
    each node is assigned its cheapest cut by
    [area + Σ flow(leaf) / fanout(leaf)], then a cover is extracted
    backward from the stage outputs. *)

val required_roots : Ir.Cdfg.t -> Sched.Schedule.t -> bool array
(** Nodes that must exist as physical signals given the schedule: primary
    outputs, inputs, constants, black boxes, producers consumed in another
    cycle (or through a loop-carried edge), and operands of black boxes. *)

val map_schedule :
  ?deadline:Resilience.Deadline.t ->
  ?truncated:bool ref ->
  device:Fpga.Device.t ->
  delays:Fpga.Delays.t ->
  cuts:Cuts.t ->
  Ir.Cdfg.t ->
  Sched.Schedule.t ->
  Sched.Cover.t
(** Cover every required root with stage-local cones of minimum area flow.
    The result always passes {!Sched.Cover.validate}.

    When [deadline] (default {!Resilience.Deadline.none}) expires
    mid-labelling — or the [techmap.timeout] fault point fires — the
    remaining nodes are assigned their trivial cut and [truncated] (if
    given) is set. The cover stays valid; only area optimality degrades. *)

type exact_reason = [ `Timeout | `Infeasible | `Unbounded ]
(** Why {!map_exact} produced no cover. [`Timeout] covers both the local
    [time_limit] and a caller [deadline] expiring before any incumbent. *)

type exact_failure = { reason : exact_reason; stats : Lp.Milp.stats }

val exact_reason_to_string : exact_reason -> string
val pp_exact_failure : exact_failure Fmt.t

val map_exact :
  ?time_limit:float ->
  ?deadline:Resilience.Deadline.t ->
  device:Fpga.Device.t ->
  delays:Fpga.Delays.t ->
  cuts:Cuts.t ->
  Ir.Cdfg.t ->
  Sched.Schedule.t ->
  (Sched.Cover.t, exact_failure) result
(** ILP minimum-area covering (cf. the paper's reference [7], here
    cut-based): binary cut-selection variables, Eq. 2–4 cover constraints,
    [min Σ area·c], warm-started from {!map_schedule}'s area-flow cover.
    Stage-local like {!map_schedule}. On failure the result says {e why}
    the exact cover is unavailable — a timeout (the MILP exhausted
    [time_limit], default 10 s, or the caller's [deadline] with no
    incumbent) is actionable (raise the budget), infeasible/unbounded is
    structural — so callers can report the cause instead of silently
    falling back to the heuristic. Exact-vs-heuristic is DESIGN.md
    ablation A5. *)

val map_global :
  ?deadline:Resilience.Deadline.t ->
  ?truncated:bool ref ->
  device:Fpga.Device.t ->
  delays:Fpga.Delays.t ->
  cuts:Cuts.t ->
  Ir.Cdfg.t ->
  Sched.Cover.t
(** Area-flow covering of the whole graph with no register boundaries —
    the mapping half of the map-first heuristic ({!Sched.Mapsched}).
    [deadline]/[truncated] behave as in {!map_schedule}. *)

val stage_depth :
  device:Fpga.Device.t -> delays:Fpga.Delays.t -> Ir.Cdfg.t ->
  Sched.Cover.t -> Sched.Schedule.t -> float
(** Longest mapped combinational path in any stage (diagnostic). *)
