(* Instrumentation (lib/obs): cover statistics, additive only. *)
let c_covers = Obs.Counter.get "techmap.covers"
let c_lut_area = Obs.Counter.get "techmap.lut_area"
let c_absorbed = Obs.Counter.get "techmap.absorbed_nodes"
let c_truncated = Obs.Counter.get "techmap.deadline_truncations"
let t_map = Obs.Timer.get "techmap.map"

let required_roots g (sched : Sched.Schedule.t) =
  let n = Ir.Cdfg.num_nodes g in
  let req = Array.make n false in
  for v = 0 to n - 1 do
    (match Ir.Cdfg.op g v with
    | Ir.Op.Input _ | Ir.Op.Const _ | Ir.Op.Black_box _ -> req.(v) <- true
    | _ -> ());
    if Ir.Cdfg.is_output g v then req.(v) <- true;
    List.iter
      (fun (w, dist) ->
        if dist > 0 then req.(v) <- true
        else if sched.cycle.(w) <> sched.cycle.(v) then req.(v) <- true
        else
          match Ir.Cdfg.op g w with
          | Ir.Op.Black_box _ -> req.(v) <- true
          | _ -> ())
      (Ir.Cdfg.succs g v)
  done;
  req

let fanout g v = max 1 (List.length (Ir.Cdfg.succs g v))

(* A cut is stage-local when its whole cone sits in the root's cycle and
   absorbs no required node other than the root itself. *)
let stage_local (sched : Sched.Schedule.t) req (c : Cuts.cut) =
  Bitdep.Int_set.for_all
    (fun w ->
      sched.cycle.(w) = sched.cycle.(c.root) && (w = c.root || not req.(w)))
    c.Cuts.cone

let map_schedule ?(deadline = Resilience.Deadline.none) ?truncated ~device
    ~delays ~cuts g sched =
  Obs.Timer.span t_map @@ fun () ->
  Obs.Trace.span ~cat:"techmap" "techmap.map" @@ fun () ->
  ignore device;
  ignore delays;
  let n = Ir.Cdfg.num_nodes g in
  let req = required_roots g sched in
  (* Deadline degradation: once the budget runs out (or the techmap.timeout
     fault fires) the remaining nodes get their trivial cut — always
     stage-local for a single node, so the cover stays valid; only area
     optimality is lost. *)
  let degraded = ref false in
  let note_degraded () =
    if not !degraded then begin
      degraded := true;
      Obs.Counter.incr c_truncated;
      match truncated with Some r -> r := true | None -> ()
    end
  in
  if Resilience.Fault.fires "techmap.timeout" then note_degraded ();
  (* Area-flow labelling in topological order. *)
  let flow = Array.make n 0.0 in
  let best : Cuts.cut option array = Array.make n None in
  let leaf_flow u ~cycle =
    if req.(u) || sched.Sched.Schedule.cycle.(u) <> cycle then 0.0
    else flow.(u) /. float_of_int (fanout g u)
  in
  Obs.Trace.span ~cat:"techmap" "techmap.label" (fun () ->
  List.iter
    (fun v ->
      if (not !degraded) && Resilience.Deadline.expired deadline then
        note_degraded ();
      let candidates =
        if !degraded then [ cuts.(v).(0) ]
        else Array.to_list cuts.(v) |> List.filter (stage_local sched req)
      in
      let cost (c : Cuts.cut) =
        float_of_int c.Cuts.area
        +. List.fold_left
             (fun acc u ->
               acc +. leaf_flow u ~cycle:sched.Sched.Schedule.cycle.(v))
             0.0 c.Cuts.leaves
      in
      match candidates with
      | [] ->
          (* the trivial cut is always stage-local for a single node *)
          best.(v) <- Some cuts.(v).(0);
          flow.(v) <- float_of_int cuts.(v).(0).Cuts.area
      | _ ->
          let chosen =
            (* ties go to the deeper cone: fewer roots downstream *)
            List.fold_left
              (fun acc c ->
                match acc with
                | None -> Some (c, cost c)
                | Some (best, ca) ->
                    let cc = cost c in
                    if
                      cc < ca -. 1e-9
                      || (cc < ca +. 1e-9
                         && Bitdep.Int_set.cardinal c.Cuts.cone
                            > Bitdep.Int_set.cardinal best.Cuts.cone)
                    then Some (c, cc)
                    else acc)
              None candidates
          in
          (match chosen with
          | Some (c, cc) ->
              best.(v) <- Some c;
              flow.(v) <- cc
          | None -> assert false))
    (Ir.Cdfg.topo_order g));
  (* Extraction: cover required roots, then the leaves they expose. *)
  let chosen : Cuts.cut option array = Array.make n None in
  let stack = ref [] in
  for v = 0 to n - 1 do
    if req.(v) then stack := v :: !stack
  done;
  let rec drain () =
    match !stack with
    | [] -> ()
    | v :: rest ->
        stack := rest;
        if chosen.(v) = None then begin
          let c =
            match best.(v) with
            | Some c -> c
            | None -> cuts.(v).(0)
          in
          chosen.(v) <- Some c;
          List.iter (fun u -> if chosen.(u) = None then stack := u :: !stack)
            c.Cuts.leaves
        end;
        drain ()
  in
  Obs.Trace.span ~cat:"techmap" "techmap.extract" drain;
  let selections =
    Array.to_list chosen
    |> List.mapi (fun v c -> (v, c))
    |> List.filter_map (fun (v, c) -> Option.map (fun c -> (v, c)) c)
  in
  Obs.Counter.incr c_covers;
  (* Counter accounting is bucketed per pipeline stage so each stage's
     covering work shows up as its own trace span; the counters are
     sums, so the totals are identical to a flat pass. *)
  let by_stage : (int, (int * Cuts.cut) list) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (v, c) ->
      let s = sched.Sched.Schedule.cycle.(v) in
      let cur = Option.value ~default:[] (Hashtbl.find_opt by_stage s) in
      Hashtbl.replace by_stage s ((v, c) :: cur))
    selections;
  let stages =
    Hashtbl.fold (fun s _ acc -> s :: acc) by_stage [] |> List.sort compare
  in
  List.iter
    (fun s ->
      let sel = List.rev (Hashtbl.find by_stage s) in
      let account () =
        List.iter
          (fun (_, (c : Cuts.cut)) ->
            Obs.Counter.incr ~by:c.Cuts.area c_lut_area;
            Obs.Counter.incr
              ~by:(Bitdep.Int_set.cardinal c.Cuts.cone - 1)
              c_absorbed;
            if c.Cuts.area > 0 then
              Obs.Counter.incr ~by:c.Cuts.area
                (Obs.Counter.get (Printf.sprintf "techmap.stage%d.luts" s)))
          sel
      in
      if Obs.Trace.enabled () then
        Obs.Trace.span ~cat:"techmap" "techmap.stage"
          ~args:
            [ ("stage", Obs.Json.Int s);
              ("cuts", Obs.Json.Int (List.length sel)) ]
          account
      else account ())
    stages;
  Sched.Cover.make g selections

type exact_reason = [ `Timeout | `Infeasible | `Unbounded ]
type exact_failure = { reason : exact_reason; stats : Lp.Milp.stats }

let exact_reason_to_string = function
  | `Timeout -> "timeout"
  | `Infeasible -> "infeasible"
  | `Unbounded -> "unbounded"

let pp_exact_failure ppf f =
  Fmt.pf ppf "exact mapping failed (%s): %a"
    (exact_reason_to_string f.reason)
    Lp.Milp.pp_stats f.stats

let map_exact ?(time_limit = 10.0) ?(deadline = Resilience.Deadline.none)
    ~device ~delays ~cuts g sched =
  let n = Ir.Cdfg.num_nodes g in
  let req = required_roots g sched in
  let eligible =
    Array.init n (fun v ->
        Array.to_list cuts.(v) |> List.filter (stage_local sched req))
  in
  (* guarantee a fallback cut per node *)
  let eligible =
    Array.mapi
      (fun v cs -> if cs = [] then [ cuts.(v).(0) ] else cs)
      eligible
  in
  let model = Lp.Model.create ~name:"map-exact" () in
  let c_vars =
    Array.mapi
      (fun v cs ->
        List.mapi
          (fun i c ->
            (Lp.Model.bool_var model (Printf.sprintf "c_%d_%d" v i), c))
          cs)
      eligible
  in
  let root_sum v = List.map (fun (x, _) -> (1.0, x)) c_vars.(v) in
  (* required nodes select exactly one cut; others at most one *)
  Array.iteri
    (fun v _ ->
      if req.(v) then Lp.Model.add_eq model (root_sum v) 1.0
      else Lp.Model.add_le model (root_sum v) 1.0)
    c_vars;
  (* Eq. 4: leaves of a selected cut are roots *)
  Array.iteri
    (fun _ sel ->
      List.iter
        (fun (x, (c : Cuts.cut)) ->
          List.iter
            (fun u ->
              if not req.(u) then
                Lp.Model.add_le model
                  ((1.0, x) :: List.map (fun (y, _) -> (-1.0, y)) c_vars.(u))
                  0.0)
            c.Cuts.leaves)
        sel)
    c_vars;
  let obj =
    Array.to_list c_vars
    |> List.concat_map
         (List.filter_map (fun (x, (c : Cuts.cut)) ->
              if c.Cuts.area > 0 then Some (float_of_int c.Cuts.area, x)
              else None))
  in
  Lp.Model.set_objective model obj;
  (* warm start from the area-flow cover *)
  let incumbent =
    let cover = map_schedule ~device ~delays ~cuts g sched in
    let x = Array.make (Lp.Model.num_vars model) 0.0 in
    let ok = ref true in
    Array.iteri
      (fun v sel ->
        match Sched.Cover.chosen cover v with
        | None -> ()
        | Some chosen -> (
            match
              List.find_opt
                (fun (_, (c : Cuts.cut)) -> c.Cuts.leaves = chosen.Cuts.leaves)
                sel
            with
            | Some (var, _) -> x.(Lp.Model.var_index var) <- 1.0
            | None -> ok := false))
      c_vars;
    if
      !ok
      && Lp.Model.check model ~values:(fun v -> x.(Lp.Model.var_index v)) ()
         = Ok ()
    then Some x
    else None
  in
  let r = Lp.Milp.solve ~time_limit ~deadline ?incumbent model in
  match r.Lp.Milp.status with
  | Lp.Milp.Optimal | Lp.Milp.Feasible ->
      let selections = ref [] in
      Array.iteri
        (fun v sel ->
          ignore v;
          List.iter
            (fun (x, c) ->
              if Lp.Milp.int_value r x = 1 then
                selections := (c.Cuts.root, c) :: !selections)
            sel)
        c_vars;
      Ok (Sched.Cover.make g !selections)
  (* Satellite: never silently fall back — the caller learns *why* the
     exact cover is unavailable. Unknown means the budget expired before
     any incumbent existed, i.e. a timeout from the caller's viewpoint. *)
  | Lp.Milp.Unknown -> Error { reason = `Timeout; stats = r.Lp.Milp.stats }
  | Lp.Milp.Infeasible ->
      Error { reason = `Infeasible; stats = r.Lp.Milp.stats }
  | Lp.Milp.Unbounded ->
      Error { reason = `Unbounded; stats = r.Lp.Milp.stats }

let map_global ?deadline ?truncated ~device ~delays ~cuts g =
  let zero =
    Sched.Schedule.make ~ii:1
      ~cycle:(Array.make (Ir.Cdfg.num_nodes g) 0)
      ~start:(Array.make (Ir.Cdfg.num_nodes g) 0.0)
  in
  map_schedule ?deadline ?truncated ~device ~delays ~cuts g zero

let stage_depth ~device ~delays g cover sched =
  let sched' = Sched.Timing.recompute_starts ~device ~delays g cover sched in
  Sched.Timing.achieved_cp ~device ~delays g cover sched'
