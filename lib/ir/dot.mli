(** Graphviz export of CDFGs, optionally annotated with a schedule
    (cycle numbers as clusters) for debugging and documentation. *)

val escape_label : string -> string
(** Escape a string for use inside a DOT double-quoted attribute:
    backslashes and double quotes are backslash-escaped, newlines and
    carriage returns become [\n]/[\r] escapes. Applied to every node and
    operation name so adversarial names cannot inject DOT attributes. *)

val to_string : ?cycle_of:(int -> int) -> Cdfg.t -> string
(** DOT source. With [cycle_of], nodes are grouped into one cluster per
    clock cycle so register boundaries are visible. Loop-carried edges are
    drawn dashed and labelled with their distance. *)

val write_file : ?cycle_of:(int -> int) -> path:string -> Cdfg.t -> unit
