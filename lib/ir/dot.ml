let shape_of op =
  match (op : Op.t) with
  | Op.Input _ -> "invtriangle"
  | Op.Const _ -> "plaintext"
  | Op.Black_box _ -> "box3d"
  | Op.Add | Op.Sub | Op.Cmp _ -> "oval"
  | Op.Not | Op.Bitwise _ | Op.Mux -> "box"
  | Op.Shl _ | Op.Shr _ | Op.Slice _ | Op.Concat -> "cds"

(* DOT double-quoted strings: backslash and double-quote must be escaped,
   and literal newlines replaced by the \n escape, or a hostile node /
   black-box name breaks out of the label attribute. *)
let escape_label s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let node_line buf g id =
  let nd = Cdfg.node g id in
  Buffer.add_string buf
    (Printf.sprintf "    n%d [label=\"%s\\n%s:%d\", shape=%s%s];\n" id
       (escape_label (Cdfg.node_name g id))
       (escape_label (Op.to_string nd.op))
       nd.width (shape_of nd.op)
       (if Cdfg.is_output g id then ", style=bold" else ""))

let to_string ?cycle_of g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph cdfg {\n  rankdir=TB;\n";
  (match cycle_of with
  | None ->
      Cdfg.iter (fun nd -> node_line buf g nd.id) g
  | Some cycle_of ->
      let by_cycle = Hashtbl.create 8 in
      Cdfg.iter
        (fun nd ->
          let c = cycle_of nd.id in
          Hashtbl.replace by_cycle c (nd.id :: (Option.value ~default:[]
                                                  (Hashtbl.find_opt by_cycle c))))
        g;
      let cycles = List.sort compare (Hashtbl.fold (fun c _ l -> c :: l) by_cycle []) in
      List.iter
        (fun c ->
          Buffer.add_string buf
            (Printf.sprintf "  subgraph cluster_cycle%d {\n    label=\"cycle %d\";\n" c c);
          List.iter (node_line buf g) (Hashtbl.find by_cycle c);
          Buffer.add_string buf "  }\n")
        cycles);
  Cdfg.iter
    (fun nd ->
      Array.iter
        (fun (e : Cdfg.edge) ->
          if e.dist = 0 then
            Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" e.src nd.id)
          else
            Buffer.add_string buf
              (Printf.sprintf
                 "  n%d -> n%d [style=dashed, label=\"dist=%d\"];\n" e.src
                 nd.id e.dist))
        nd.preds)
    g;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write_file ?cycle_of ~path g =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ?cycle_of g))
