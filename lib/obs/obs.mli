(** Zero-dependency instrumentation and structured-metrics layer.

    Every hot path of the synthesis flow — cut enumeration
    ({!Cuts.enumerate}), the branch-and-bound MILP ({!Lp.Milp.solve}), the
    frontend simplifier ({!Opt.simplify}) and downstream technology mapping
    ({!Techmap.map_schedule}) — reports what it did through this module:
    monotonic {!Counter}s, accumulating phase {!Timer}s and timestamped
    {!Series}. All state lives in one process-global registry so a driver
    can {!reset}, run a flow, and {!snapshot} what happened without
    threading a context object through every call site.

    Instrumentation is {e additive}: it never influences a schedule, cover
    or solver decision (verified by [test/test_obs.ml], which checks QoR is
    byte-identical across repeated instrumented runs). Timings use
    [Sys.time] — per-process CPU seconds, the same clock the solver budget
    uses — so no Unix dependency is introduced.

    {!Json} is a deliberately tiny hand-rolled JSON tree (emitter and a
    minimal parser for round-trip checks); {!Metrics} is the stable
    per-benchmark record serialized by [pipesyn --json] and the bench
    harness's [BENCH_results.json]. The schema is documented in README.md
    ("Observability"). *)

(** {1 Counters} *)

(** Named monotonic event counters (cuts enumerated, B&B nodes, …).

    Counters are created once (per name) in a global registry and bumped
    from hot loops; reading and resetting are driver-side operations. *)
module Counter : sig
  type t

  val get : string -> t
  (** [get name] returns the counter registered under [name], creating it
      at zero on first use. Names are dot-separated by convention
      ([subsystem.event], e.g. ["milp.nodes"]). *)

  val incr : ?by:int -> t -> unit
  (** Adds [by] (default 1) to the counter. *)

  val value : t -> int
  (** Current count since the last {!reset}. *)

  val name : t -> string
end

(** {1 Phase timers} *)

(** Accumulating wall-of-CPU phase timers.

    A timer sums the [Sys.time] spans of every {!Timer.span} call, so one
    timer per phase ("cuts.enumerate", "milp.solve") accumulates across
    repeated invocations — per-benchmark totals fall out of a
    {!reset}/{!snapshot} bracket. *)
module Timer : sig
  type t

  val get : string -> t
  (** [get name] returns the timer registered under [name], creating it on
      first use (same registry discipline as {!Counter.get}). *)

  val span : t -> (unit -> 'a) -> 'a
  (** [span t f] runs [f ()], adds its CPU-time duration to [t], and
      returns (or re-raises) [f]'s outcome. *)

  val elapsed : t -> float
  (** Accumulated seconds since the last {!reset}. *)

  val count : t -> int
  (** Number of completed {!span}s since the last {!reset}. *)

  val name : t -> string
end

(** {1 Timestamped series} *)

(** Append-only [(timestamp, value)] series — e.g. the objective of every
    incumbent the MILP finds, stamped with solver-relative seconds. *)
module Series : sig
  type t

  val get : string -> t
  (** [get name] returns the series registered under [name], creating it
      empty on first use. *)

  val add : t -> x:float -> y:float -> unit
  (** Appends one [(x, y)] point. *)

  val points : t -> (float * float) list
  (** Points in insertion order since the last {!reset}. *)

  val name : t -> string
end

(** {1 Registry} *)

val reset : unit -> unit
(** Zeroes every counter, timer and series (the registry keeps the names).
    Drivers call this between benchmarks so snapshots are per-run. *)

val counters : unit -> (string * int) list
(** All counters with non-zero values, sorted by name. *)

val timers : unit -> (string * float) list
(** All timers with non-zero elapsed time, sorted by name. *)

val series : unit -> (string * (float * float) list) list
(** All non-empty series, sorted by name. *)

val snapshot : unit -> (string * float) list
(** Counters and timers merged into one sorted [(name, value)] list —
    counters as floats, timer names suffixed with [".s"]. The flat form
    embedded under ["obs"] in the JSON output. *)

(** {1 JSON} *)

(** Minimal JSON tree: hand-rolled emitter (no external dependency) plus a
    small parser used by tests and CI to check that emitted files are
    well-formed and round-trip. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float  (** non-finite floats are emitted as [null] *)
    | String of string
    | List of t list
    | Obj of (string * t) list

  val to_string : t -> string
  (** Compact single-line rendering (RFC 8259 string escaping). *)

  val to_channel : out_channel -> t -> unit
  (** {!to_string} followed by a newline. *)

  val of_string : string -> (t, string) result
  (** Minimal recursive-descent parser for the subset {!to_string} emits
      (numbers are parsed with OCaml's [float_of_string]; no unicode
      escapes beyond [\uXXXX] pass-through). Not a general-purpose JSON
      reader — it exists so the metrics files can be validated without a
      yojson dependency. *)

  val member : string -> t -> t option
  (** [member key (Obj _)] looks up [key]; [None] on other constructors. *)
end

(** {1 Structured metrics} *)

(** The stable per-(benchmark, method) record behind [pipesyn --json] and
    [BENCH_results.json] — the repository's perf-trajectory unit. *)
module Metrics : sig
  type t = {
    name : string;  (** benchmark name, e.g. ["GFMUL"] *)
    method_ : string;  (** flow name as printed by {!Mams.Flow.method_name} *)
    lut : int;  (** LUTs used (QoR model) *)
    ff : int;  (** flip-flop bits used (QoR model) *)
    slack : float;  (** [t_clk - achieved CP], ns (negative = violated) *)
    solve_s : float;  (** MILP seconds (0 for the heuristic flows) *)
    bnb_nodes : int;  (** branch-and-bound nodes explored (0 heuristic) *)
    cuts_total : int;  (** cuts enumerated for the run's cut sets *)
    status : string;
        (** MILP exit status, ["heuristic"] for solver-free flows, or
            ["error"] for failed runs *)
    diagnostics : Json.t list;
        (** static-analysis findings from the run's lint gate, one
            {!Analyze.Diag.to_json} object each (schema v2; absent fields
            read back as [[]] from v1 files) *)
    degradation : Json.t list;
        (** the run's degradation trail, one
            {!Resilience.Cascade.attempt_to_json} object per failed or
            degraded attempt, empty for a clean full-strength run
            (schema v3; absent fields read back as [[]] from v1/v2
            files) *)
  }

  val schema_version : int
  (** Bumped whenever a field is added/renamed; emitted at the top level of
      every metrics file. Version history: 1 = the original flat record;
      2 = adds the [diagnostics] array; 3 = adds the [degradation]
      array. *)

  val to_json : t -> Json.t
  (** One flat object: [{"name": …, "method": …, "lut": …, "ff": …,
      "slack": …, "solve_s": …, "bnb_nodes": …, "cuts_total": …,
      "status": …, "diagnostics": […], "degradation": […]}]. *)

  val of_json : Json.t -> (t, string) result
  (** Inverse of {!to_json} (round-trip checks). *)

  val file : results:t list -> Json.t
  (** The emitted file shape:
      [{"schema_version": …, "obs": {flat snapshot}, "results": […]}] —
      [obs] carries the {!snapshot} at emission time. *)

  val write_file : path:string -> results:t list -> unit
  (** Writes {!file} to [path] (truncating). *)
end
