(** Instrumentation and structured-metrics layer.

    Every hot path of the synthesis flow — cut enumeration
    ({!Cuts.enumerate}), the branch-and-bound MILP ({!Lp.Milp.solve}), the
    frontend simplifier ({!Opt.simplify}) and downstream technology mapping
    ({!Techmap.map_schedule}) — reports what it did through this module:
    monotonic {!Counter}s, accumulating phase {!Timer}s and timestamped
    {!Series}. All state lives in one process-global registry so a driver
    can {!reset}, run a flow, and {!snapshot} what happened without
    threading a context object through every call site.

    Instrumentation is {e additive}: it never influences a schedule, cover
    or solver decision (verified by [test/test_obs.ml], which checks QoR is
    byte-identical across repeated instrumented runs). Timings use
    {!Clock.wall} — a monotonized wall clock, the same clock solver
    deadlines use — so multi-domain runs report real elapsed time rather
    than summed CPU seconds; {!Clock.cpu} is still available where CPU
    burn is the quantity of interest.

    {!Json} is a deliberately tiny hand-rolled JSON tree (emitter and a
    minimal parser for round-trip checks); {!Trace} adds hierarchical
    spans and instant events with Chrome [trace_event] export (Perfetto);
    {!Metrics} is the stable per-benchmark record serialized by
    [pipesyn --json] and the bench harness's [BENCH_results.json]. The
    schema is documented in README.md ("Observability"). *)

(** {1 Clocks} *)

(** The repo's two clocks. Before resilience-v2 every timestamp and
    deadline used [Sys.time] (per-process CPU seconds); that clock
    accumulates across OCaml 5 domains, so a [--domains 4] busy solve
    burned a deadline ~4x faster than wall clock. Deadlines, trace
    timestamps and throughput now use {!wall}; CPU seconds remain a
    separately reported metric ([Milp.stats.cpu_s]). *)
module Clock : sig
  val wall : unit -> float
  (** Wall-clock seconds since the Unix epoch, monotonized: reads go
      through a process-global CAS-max cell, so successive calls (from
      any domain) never go backwards even if the system clock steps. *)

  val cpu : unit -> float
  (** [Sys.time] — CPU seconds consumed by the whole process, summed
      across domains. *)
end

(** {1 Counters} *)

(** Named monotonic event counters (cuts enumerated, B&B nodes, …).

    Counters are created once (per name) in a global registry and bumped
    from hot loops; reading and resetting are driver-side operations.
    {!Counter.incr} is an atomic fetch-and-add, so counters may be
    bumped concurrently from B&B worker domains without losing
    updates. *)
module Counter : sig
  type t

  val get : string -> t
  (** [get name] returns the counter registered under [name], creating it
      at zero on first use. Names are dot-separated by convention
      ([subsystem.event], e.g. ["milp.nodes"]). *)

  val incr : ?by:int -> t -> unit
  (** Adds [by] (default 1) to the counter. *)

  val value : t -> int
  (** Current count since the last {!reset}. *)

  val name : t -> string
end

(** {1 Phase timers} *)

(** Accumulating phase timers.

    A timer sums the {!Clock.wall} spans of every {!Timer.span} call, so
    one timer per phase ("cuts.enumerate", "milp.solve") accumulates
    across repeated invocations — per-benchmark totals fall out of a
    {!reset}/{!snapshot} bracket. *)
module Timer : sig
  type t

  val get : string -> t
  (** [get name] returns the timer registered under [name], creating it on
      first use (same registry discipline as {!Counter.get}). *)

  val span : t -> (unit -> 'a) -> 'a
  (** [span t f] runs [f ()], adds its wall-clock duration to [t], and
      returns (or re-raises) [f]'s outcome.

      Nesting-safe: a span entered while another span of the {e same}
      timer is open does not add its interval again — only the
      outermost exit accumulates, so recursive or mutually-nested
      instrumentation cannot double-count wall time. {!count} still
      increments once per completed span. *)

  val elapsed : t -> float
  (** Accumulated seconds since the last {!reset}. *)

  val count : t -> int
  (** Number of completed {!span}s since the last {!reset}. *)

  val name : t -> string
end

(** {1 Timestamped series} *)

(** Append-only [(timestamp, value)] series — e.g. the objective of every
    incumbent the MILP finds, stamped with solver-relative seconds.

    Memory is bounded: each series stores at most [cap] points (default
    {!Series.default_cap}, overridable via the [PIPESYN_SERIES_CAP]
    environment variable, read when the series is created; values below
    2 or unparsable fall back to the default). When the cap is reached
    the stored points are thinned to every other one (keeping the
    oldest) and the recording stride doubles, so a series of any length
    degrades to a deterministic, uniformly-spaced subsample — the same
    add-stream always yields the same stored points. {!Series.add} is
    serialized by an internal lock so incumbent points may arrive from
    any worker domain (their interleaving, like any concurrent
    add-stream, is scheduler-dependent). *)
module Series : sig
  type t

  val default_cap : int
  (** Stored-point cap when [PIPESYN_SERIES_CAP] is unset (4096). *)

  val get : string -> t
  (** [get name] returns the series registered under [name], creating it
      empty on first use. *)

  val add : t -> x:float -> y:float -> unit
  (** Records one [(x, y)] point (subject to the stride: after the first
      overflow only every 2nd call is stored, then every 4th, …). *)

  val points : t -> (float * float) list
  (** Stored points in insertion order since the last {!reset}. *)

  val last : t -> (float * float) option
  (** Most recently stored point, or [None] for an empty series.
      Lock-guarded, so the resource probe can read a series solver
      domains are appending to. *)

  val seen : t -> int
  (** Total {!add} calls since the last {!reset}, including calls whose
      point was not stored. *)

  val capacity : t -> int
  (** The cap this series was created with. *)

  val name : t -> string
end

(** {1 Registry} *)

val reset : unit -> unit
(** Zeroes every counter, timer and series (the registry keeps the names).
    Drivers call this between benchmarks so snapshots are per-run. *)

val counters : unit -> (string * int) list
(** All counters with non-zero values, sorted by name. *)

val timers : unit -> (string * float) list
(** All timers with non-zero elapsed time, sorted by name. *)

val series : unit -> (string * (float * float) list) list
(** All non-empty series, sorted by name. *)

val snapshot : unit -> (string * float) list
(** Counters and timers merged into one sorted [(name, value)] list —
    counters as floats, timer names suffixed with [".s"]. The flat form
    embedded under ["obs"] in the JSON output. *)

(** {1 JSON} *)

(** Minimal JSON tree: hand-rolled emitter (no external dependency) plus a
    small parser used by tests and CI to check that emitted files are
    well-formed and round-trip. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float  (** non-finite floats are emitted as [null] *)
    | String of string
    | List of t list
    | Obj of (string * t) list

  val to_string : t -> string
  (** Compact single-line rendering (RFC 8259 string escaping). *)

  val to_channel : out_channel -> t -> unit
  (** {!to_string} followed by a newline. *)

  val of_string : string -> (t, string) result
  (** Minimal recursive-descent parser for the subset {!to_string} emits
      (numbers are parsed with OCaml's [float_of_string]; no unicode
      escapes beyond [\uXXXX] pass-through). Not a general-purpose JSON
      reader — it exists so the metrics files can be validated without a
      yojson dependency. *)

  val member : string -> t -> t option
  (** [member key (Obj _)] looks up [key]; [None] on other constructors. *)
end

(** {1 Structured tracing} *)

(** Hierarchical spans and typed instant events over one process-global
    bounded buffer, exported as Chrome [trace_event] JSON (loadable in
    Perfetto / [chrome://tracing]) or a compact native form.

    Tracing is {b off by default} and zero-cost when disabled: every
    entry point checks a single flag and returns. Like the rest of the
    registry it is {e additive} — recording events never influences a
    schedule, cover or solver decision (pinned by [test/test_trace.ml],
    which checks QoR is byte-identical with tracing on/off across the
    fault-injection matrix). Timestamps are {!Clock.wall} seconds
    relative to the {!Trace.enable} call.

    The buffer is bounded (default {!Trace.default_cap} events; env
    [PIPESYN_TRACE_CAP], read at {!Trace.enable}). On overflow, new
    begins and instants are dropped deterministically and counted in
    {!Trace.dropped}; the end of a span whose begin {e was} recorded is
    always written (the buffer may exceed the cap by at most the
    open-span depth), so exported traces stay well-formed.

    Lifecycle is independent of {!reset}: resetting counters between
    benchmarks does not clear an in-flight trace.

    {b Domain-safety:} {!Trace.instant} may be called from any domain
    (buffer pushes are serialized by an internal lock) and takes a [tid]
    that becomes the Chrome/Perfetto thread lane, so the parallel B&B
    pool renders one row per worker domain. Span open/close
    ({!Trace.begin_span} / {!Trace.end_span} / {!Trace.span}) keeps a
    single global stack and must only be used from the coordinating
    domain. *)
module Trace : sig
  val default_cap : int
  (** Event cap when [PIPESYN_TRACE_CAP] is unset (1_000_000). *)

  val enabled : unit -> bool
  (** Whether events are currently being recorded. Call sites use this
      to skip building argument lists on the hot path. *)

  val enable : ?cap:int -> unit -> unit
  (** Clears the buffer, sets the timestamp epoch to now, and starts
      recording. [cap] overrides the environment/default event cap
      (clamped to at least 16). *)

  val disable : unit -> unit
  (** Stops recording. Recorded spans still open are closed at the
      current timestamp so the buffer stays well-formed. The buffer is
      kept for export. *)

  val clear : unit -> unit
  (** Drops all buffered events and open-span state (keeps the
      enabled/disabled state). *)

  val begin_span : ?cat:string -> ?args:(string * Json.t) list -> string -> unit
  (** [begin_span ~cat ~args name] opens a span; its parent is the
      innermost span still open (Chrome's B/E nesting). [cat] defaults
      to ["app"]; categories in this repo are ["flow"], ["cascade"],
      ["cuts"], ["milp"], ["simplex"], ["techmap"] (DESIGN.md maps them
      to paper phases). No-op when disabled. *)

  val end_span : unit -> unit
  (** Closes the innermost open span. No-op when disabled or when no
      span is open. *)

  val span : ?cat:string -> ?args:(string * Json.t) list -> string ->
    (unit -> 'a) -> 'a
  (** [span name f] brackets [f ()] in {!begin_span}/{!end_span},
      exception-safely; when disabled it is exactly [f ()]. *)

  val instant :
    ?cat:string -> ?tid:int -> ?args:(string * Json.t) list -> string -> unit
  (** Records a point event (Chrome phase ["i"], thread scope) — e.g.
      one ["milp.node"] per B&B node, ["milp.incumbent"] on every
      incumbent update, ["simplex.refactor"] on cold refactorizations.
      [tid] (default 1, the coordinator lane) selects the export thread
      lane; B&B worker slot [w] (0-based, slot 0 = the coordinating
      domain) passes [w + 1] so Perfetto shows per-domain utilization.
      Safe to call from any domain. *)

  val num_events : unit -> int
  (** Events currently buffered. *)

  val dropped : unit -> int
  (** Events dropped at the cap since the last {!enable}/{!clear}. *)

  val export_chrome : unit -> Json.t
  (** The buffer as a Chrome [trace_event] document:
      [{"traceEvents": [{name, cat, ph, ts, pid, tid, args?}, …],
      "displayTimeUnit": "ms"}] with [ts] in microseconds. Spans still
      open get synthesized closing events at the current timestamp
      (without mutating the buffer). *)

  val export_native : unit -> Json.t
  (** Compact native form: [{"schema": "pipesyn-trace-v1", "clock":
      "wall-s", "dropped": n, "events": […]}] with [ts_s] in seconds. *)

  val write_chrome : path:string -> unit
  (** Writes {!export_chrome} to [path] (truncating) — the file behind
      [pipesyn run --trace FILE]. *)

  val summary : unit -> Json.t
  (** Headline numbers folded into Metrics files (schema v5): span /
      instant / drop counts, max nesting depth, first-incumbent time and
      the incumbent-gap trajectory extracted from ["milp.incumbent"]
      events. *)

  (** Offline analysis of a parsed Chrome trace document — the engine
      behind [pipesyn trace-report] and the well-formedness checks in
      the test suite. *)
  module Analysis : sig
    type span_stat = {
      sp_name : string;
      sp_cat : string;
      sp_count : int;
      sp_total : float;  (** summed durations, seconds *)
      sp_max : float;  (** longest single span, seconds *)
    }

    type slow_span = {
      sl_name : string;
      sl_cat : string;
      sl_start : float;  (** seconds from trace start *)
      sl_dur : float;  (** seconds *)
    }

    type tree_stats = {
      tr_nodes : int;  (** B&B nodes (["milp.node"] instants) *)
      tr_max_depth : int;
      tr_warm : int;  (** nodes whose LP resolve reused the parent basis *)
      tr_statuses : (string * int) list;  (** node LP status histogram *)
      tr_domains : (int * int) list;
          (** nodes processed per domain id (from the ["domain"] arg of
              ["milp.node"] instants; pre-parallel traces collapse to
              [[(0, tr_nodes)]]), sorted by domain id *)
    }

    type gap_point = {
      gp_ts : float;
      gp_obj : float;
      gp_gap : float;  (** relative incumbent/bound gap; nan if unknown *)
    }

    type cut_stats = {
      cu_rounds : int;  (** root separation rounds (["milp.cut_round"]) *)
      cu_cuts : int;  (** cuts applied across all rounds *)
      cu_bound0 : float;  (** root LP bound before any cuts; nan if absent *)
      cu_bound : float;  (** bound after the last recorded round *)
    }

    type report = {
      r_events : int;
      r_spans : int;
      r_instants : int;
      r_errors : string list;
          (** well-formedness violations: an [E] with no open span or
              closing the wrong span, timestamps going backwards, spans
              never closed. Empty for every trace this repo emits. *)
      r_phases : span_stat list;  (** sorted by total time, descending *)
      r_slowest : slow_span list;  (** top-[top] spans by duration *)
      r_tree : tree_stats option;  (** [None] if no ["milp.node"] events *)
      r_timeline : gap_point list;  (** incumbent updates in trace order *)
      r_cuts : cut_stats option;
          (** [None] when the trace has no ["milp.cut_round"] instants —
              pre-v8 traces, heuristic flows, or cuts-off runs *)
    }

    val analyze : ?top:int -> Json.t -> (report, string) result
    (** Validates and aggregates a Chrome trace document ([top], default
        10, bounds [r_slowest]). [Error] only when the document is not a
        trace at all; per-event violations land in [r_errors]. *)
  end
end

(** {1 Structured event log} *)

(** Leveled structured event stream — the narrative companion to
    {!Trace}. Where Trace records nested spans for timing analysis, Log
    records a flat ordered stream of typed events (flow phase
    transitions, cascade retries/degradations, MILP incumbents, cut
    rounds, checkpoints, recoveries, stalls, probe samples) serialized
    as NDJSON: one JSON object per line, framed by a header line naming
    the schema ([pipesyn-log-v1]) and a [log.end] footer carrying the
    event and drop counts. Behind [pipesyn run --log FILE] and the
    [PIPESYN_LOG] environment variable; the [--progress] TTY status
    line renders from the same stream via {!Log.set_sink}.

    Same discipline as {!Trace}: off by default and one flag-check when
    disabled; process-global and mutex-guarded, so events may be
    emitted from any domain; bounded ([PIPESYN_LOG_CAP], default
    {!Log.default_cap}) with new events dropped and counted once the
    cap is reached; strictly observational — no solver decision may
    read it (pinned by the telemetry-neutrality tests). *)
module Log : sig
  type level = Debug | Info | Warn | Error

  type event = {
    l_ts : float;  (** seconds since {!enable}, wall clock *)
    l_level : level;
    l_name : string;  (** dot-separated, e.g. ["milp.incumbent"] *)
    l_args : (string * Json.t) list;
  }

  val schema : string
  (** ["pipesyn-log-v1"], the header line's schema tag. *)

  val default_cap : int
  (** Event cap when [PIPESYN_LOG_CAP] is unset (200_000). *)

  val level_name : level -> string
  (** ["debug"], ["info"], ["warn"], ["error"]. *)

  val level_of_string : string -> level option
  (** Inverse of {!level_name} (case-insensitive; accepts
      ["warning"]). *)

  val enabled : unit -> bool
  (** Whether events are currently being recorded. *)

  val enable : ?cap:int -> ?level:level -> unit -> unit
  (** Clears the buffer, sets the timestamp epoch to now, and starts
      recording events at or above [level] (default [Info]). [cap]
      overrides the environment/default cap (clamped to at least
      16). *)

  val disable : unit -> unit
  (** Stops recording; the buffer is kept for {!write}. *)

  val clear : unit -> unit
  (** Drops buffered events and the drop count (keeps the
      enabled/disabled state). *)

  val event : ?level:level -> string -> (string * Json.t) list -> unit
  (** [event name args] appends one event (subject to the level filter
      and the cap). Safe to call from any domain; no-op when
      disabled. *)

  val set_sink : (event -> unit) option -> unit
  (** Installs (or removes) a live observer called with each accepted
      event, outside the buffer lock — the [--progress] renderer. Sink
      exceptions are swallowed. *)

  val num_events : unit -> int
  (** Events currently buffered. *)

  val dropped : unit -> int
  (** Events dropped at the cap since the last {!enable}/{!clear}. *)

  val to_lines : unit -> Json.t list
  (** The NDJSON document as a list of per-line JSON objects: header,
      one object per event ([{"t": …, "level": …, "ev": …,
      "args": {…}?}]), and the [log.end] footer. *)

  val write : path:string -> unit
  (** Writes {!to_lines} to [path], one compact JSON object per line
      (truncating). *)
end

(** {1 Resource probe} *)

(** Background resource sampler on its own domain. Every period it
    snapshots [Gc.quick_stat] (minor/major allocated words, heap words,
    compactions), the peak RSS, the live solver counters
    ([milp.bnb_nodes], [milp.lp_pivots]) and the current
    incumbent/gap, and derives global and per-worker-domain node rates
    — appending everything to bounded [probe.*] {!Series}, a
    ["probe.sample"] trace instant (when tracing is on) and a
    ["probe.sample"] {!Log} event (when logging is on).

    Off by default: {!Probe.start} without an explicit period reads
    [PIPESYN_PROBE_MS] and does nothing when it is unset. The probe is
    strictly read-only with respect to the solver — it reads atomics
    and registry snapshots and writes only into the observability
    layer, so solver results are byte-identical probe-on vs probe-off
    (pinned by the telemetry-neutrality tests). *)
module Probe : sig
  val start : ?period_ms:int -> unit -> bool
  (** Starts the sampler domain with the given period (milliseconds,
      clamped to at least 1), or with [PIPESYN_PROBE_MS] when
      [period_ms] is omitted. Returns whether a probe is now running
      ([false] when no period is configured). Idempotent while
      running. *)

  val stop : unit -> unit
  (** Signals the sampler and joins its domain (returns within one
      ~20 ms sleep slice). No-op when not running. *)

  val running : unit -> bool

  val samples : unit -> int
  (** Samples taken since the last {!start}. *)

  val peak_rss_kb : unit -> int option
  (** Peak resident set size (VmHWM) in kB from [/proc/self/status];
      [None] on platforms without procfs. *)
end

(** {1 Structured metrics} *)

(** The stable per-(benchmark, method) record behind [pipesyn --json] and
    [BENCH_results.json] — the repository's perf-trajectory unit. *)
module Metrics : sig
  type t = {
    name : string;  (** benchmark name, e.g. ["GFMUL"] *)
    method_ : string;  (** flow name as printed by {!Mams.Flow.method_name} *)
    lut : int;  (** LUTs used (QoR model) *)
    ff : int;  (** flip-flop bits used (QoR model) *)
    slack : float;  (** [t_clk - achieved CP], ns (negative = violated) *)
    solve_s : float option;
        (** MILP wall seconds; [None] (JSON [null]) for methods that
            never entered the MILP — heuristic flows and hard errors
            (schema v9; pre-v9 files wrote 0.0 there, which {!of_json}
            normalizes back to [None]) *)
    bnb_nodes : int option;
        (** branch-and-bound nodes explored; [None] when the method
            never entered the MILP. A real solve always explores at
            least the root node, so the legacy 0 encoding reads back
            unambiguously as [None] (schema v9) *)
    lp_pivots : int option;
        (** simplex pivots across all of the solve's LPs
            ([Milp.stats.lp_iterations], this-run-only on resume);
            [None] when the method never entered the MILP or for pre-v9
            files (schema v9) *)
    cuts_total : int;  (** cuts enumerated for the run's cut sets *)
    first_incumbent_s : float;
        (** seconds into the MILP solve when the first incumbent
            (including a seeded warm-start incumbent) appeared; nan for
            heuristic flows or when the solver found none (schema v4;
            absent fields read back as nan from older files) *)
    final_gap : float;
        (** relative incumbent/bound gap at solver exit ([Milp.stats.gap]);
            nan for heuristic flows (schema v4) *)
    status : string;
        (** MILP exit status, ["heuristic"] for solver-free flows, or
            ["error"] for failed runs *)
    objective : float;
        (** MILP objective value of the reported solution
            ([alpha·LUT + beta·FF] for the paper formulations); nan for
            heuristic flows (schema v5). The cross-domain-count
            determinism check in CI compares this field. *)
    domains : int;
        (** B&B worker-domain count the solve ran with (1 = sequential;
            schema v5, absent fields read back as 1 from older files) *)
    nodes_per_s : float;
        (** B&B node throughput [bnb_nodes / solve_s]; nan for heuristic
            flows or unmeasurably fast solves (schema v5) *)
    cert_nodes : int;
        (** node count of the solve's proof-carrying certificate
            ({!Lp.Cert.t}); 0 when the solve carried none — heuristic
            flows, certificates off, or cold-start mode (schema v6) *)
    audit_errors : int option;
        (** error findings from the exact-rational certificate audit
            ([Analyze.Audit]); [None] when the audit did not run —
            serialized as JSON [null] since schema v8 (v6/v7 wrote the
            sentinel -1, which reads back as [None]; the CI audit gate
            requires [Some 0] here) *)
    milp_cuts : int;
        (** cutting planes active in the MILP solve
            ([Milp.stats.cuts_applied]): root-separated this run or
            re-installed from a resumed checkpoint; 0 for heuristic
            flows or cuts-off runs (schema v8) *)
    gap_closed_root : float;
        (** fraction of the root gap closed by the root cut rounds
            ([Milp.stats.gap_closed_root]); nan when not applicable —
            heuristic flow, cuts off, no incumbent, or resumed solve
            (schema v8) *)
    checkpoints : int;
        (** frontier snapshots written during the solve
            ([Milp.stats.checkpoints]); 0 when checkpointing was off
            (schema v7) *)
    recoveries : int;
        (** leased B&B subtrees re-enqueued after a worker death or a
            watchdog cancel-and-requeue ([Milp.stats.recoveries]); 0 for
            undisturbed solves (schema v7) *)
    stalls : int;
        (** stall-watchdog escalations — refactorization nudges plus
            cancel-and-requeues ([Milp.stats.stalls]) — during the solve
            (schema v7) *)
    gc_minor_words : float;
        (** GC minor-heap words allocated across this result's flow run
            ([Gc.quick_stat] delta bracketing the run); 0.0 for pre-v9
            files (schema v9) *)
    gc_major_words : float;
        (** GC major-heap words allocated across this result's flow run;
            0.0 for pre-v9 files (schema v9) *)
    diagnostics : Json.t list;
        (** static-analysis findings from the run's lint gate, one
            {!Analyze.Diag.to_json} object each (schema v2; absent fields
            read back as [[]] from v1 files) *)
    degradation : Json.t list;
        (** the run's degradation trail, one
            {!Resilience.Cascade.attempt_to_json} object per failed or
            degraded attempt, empty for a clean full-strength run
            (schema v3; absent fields read back as [[]] from v1/v2
            files) *)
  }

  val schema_version : int
  (** Bumped whenever a field is added/renamed; emitted at the top level of
      every metrics file. Version history: 1 = the original flat record;
      2 = adds the [diagnostics] array; 3 = adds the [degradation]
      array; 4 = adds per-result [first_incumbent_s]/[final_gap] and the
      file-level ["trace"] summary object; 5 = adds per-result
      [objective]/[domains]/[nodes_per_s] for the parallel B&B
      determinism and throughput checks; 6 = adds per-result
      [cert_nodes]/[audit_errors] for the proof-carrying certificate
      audit; 7 = adds per-result [checkpoints]/[recoveries]/[stalls] for
      solve supervision, and switches every timestamp from CPU seconds
      to the monotonic wall clock; 8 = adds per-result
      [milp_cuts]/[gap_closed_root] for the root cutting planes, and
      replaces the [audit_errors] -1 sentinel with JSON [null]; 9 =
      [solve_s]/[bnb_nodes] become nullable (null = never entered the
      MILP, replacing the ambiguous 0.0/0 encoding), adds per-result
      [lp_pivots]/[gc_minor_words]/[gc_major_words] and the file-level
      ["resources"] object (process GC totals, top heap, peak RSS,
      probe sample count). *)

  val to_json : t -> Json.t
  (** One flat object: [{"name": …, "method": …, "lut": …, "ff": …,
      "slack": …, "solve_s": …, "bnb_nodes": …, "cuts_total": …,
      "first_incumbent_s": …, "final_gap": …, "status": …,
      "objective": …, "domains": …, "nodes_per_s": …,
      "diagnostics": […], "degradation": […]}]. *)

  val of_json : Json.t -> (t, string) result
  (** Inverse of {!to_json} (round-trip checks). *)

  val resources : unit -> Json.t
  (** The file-level ["resources"] object, captured at call time:
      process-lifetime GC totals ([gc_minor_words],
      [gc_promoted_words], [gc_major_words], [gc_compactions]), the
      current and top heap ([heap_words], [top_heap_words]), the peak
      RSS ([peak_rss_kb], [null] off-Linux) and [probe_samples]
      ({!Probe.samples}). *)

  val file : results:t list -> Json.t
  (** The emitted file shape: [{"schema_version": …, "obs": {flat
      snapshot}, "resources": {…}, "trace": {summary},
      "results": […]}] — [obs] carries the {!snapshot}, [resources]
      the {!resources} object and [trace] the {!Trace.summary} at
      emission time. *)

  val write_file : path:string -> results:t list -> unit
  (** Writes {!file} to [path] (truncating). *)
end
