(* Process-global instrumentation registry. Everything is stdlib-only:
   the library must be linkable from the innermost subsystems (lp, cuts)
   without dragging in fmt/logs, and the JSON emitter replaces yojson. *)

(* Registries are process-global and may be touched from worker domains
   (simplex counters, trace instants fire inside the parallel B&B pool),
   so lookups and hot mutations go through a lock or an atomic. One lock
   for all registries is fine: registration happens at module init and
   the guarded paths are cold. *)
let registry_mutex = Mutex.create ()

let locked m f =
  Mutex.lock m;
  match f () with
  | v ->
      Mutex.unlock m;
      v
  | exception e ->
      Mutex.unlock m;
      raise e

module Clock = struct
  (* Wall clock for deadlines, trace timestamps and throughput. [Sys.time]
     is per-process CPU seconds, which accumulates across OCaml 5 domains:
     a 4-domain busy solve burns a CPU-second budget ~4x faster than wall
     clock and skews every nodes/s figure. [Unix.gettimeofday] is wall
     time but not guaranteed monotone (NTP steps), so reads are
     monotonized through a process-global CAS-max cell — [wall] never goes
     backwards, from any domain. *)
  let mono_last = Atomic.make neg_infinity

  let wall () =
    let t = Unix.gettimeofday () in
    let rec fix () =
      let last = Atomic.get mono_last in
      if t >= last then
        if Atomic.compare_and_set mono_last last t then t else fix ()
      else last
    in
    fix ()

  let cpu = Sys.time
end

module Counter = struct
  type t = { cname : string; n : int Atomic.t }

  let registry : (string, t) Hashtbl.t = Hashtbl.create 32

  let get name =
    locked registry_mutex (fun () ->
        match Hashtbl.find_opt registry name with
        | Some c -> c
        | None ->
            let c = { cname = name; n = Atomic.make 0 } in
            Hashtbl.add registry name c;
            c)

  let incr ?(by = 1) c = ignore (Atomic.fetch_and_add c.n by)
  let value c = Atomic.get c.n
  let name c = c.cname
  let reset_all () = Hashtbl.iter (fun _ c -> Atomic.set c.n 0) registry

  let snapshot () =
    Hashtbl.fold
      (fun _ c acc ->
        let n = Atomic.get c.n in
        if n <> 0 then (c.cname, n) :: acc else acc)
      registry []
    |> List.sort compare
end

module Timer = struct
  type t = {
    tname : string;
    mutable total : float;
    mutable spans : int;
    mutable depth : int;  (** open {!span}s of this timer on the stack *)
    mutable t0 : float;  (** entry time of the outermost open span *)
  }

  let registry : (string, t) Hashtbl.t = Hashtbl.create 16

  let get name =
    locked registry_mutex (fun () ->
        match Hashtbl.find_opt registry name with
        | Some t -> t
        | None ->
            let t =
              { tname = name; total = 0.0; spans = 0; depth = 0; t0 = 0.0 }
            in
            Hashtbl.add registry name t;
            t)

  (* Re-entrancy: a span entered while another span of the same timer is
     open must not add its interval again — only the outermost exit
     accumulates, so [total] stays wall-per-timer even under recursion. *)
  let span t f =
    if t.depth = 0 then t.t0 <- Clock.wall ();
    t.depth <- t.depth + 1;
    let record () =
      t.depth <- t.depth - 1;
      if t.depth = 0 then t.total <- t.total +. (Clock.wall () -. t.t0);
      t.spans <- t.spans + 1
    in
    match f () with
    | v ->
        record ();
        v
    | exception e ->
        record ();
        raise e

  let elapsed t = t.total
  let count t = t.spans
  let name t = t.tname

  let reset_all () =
    Hashtbl.iter
      (fun _ t ->
        t.total <- 0.0;
        t.spans <- 0)
      registry

  let snapshot () =
    Hashtbl.fold
      (fun _ t acc ->
        if t.total <> 0.0 then (t.tname, t.total) :: acc else acc)
      registry []
    |> List.sort compare
end

module Series = struct
  (* Long MILP runs can add a point per B&B node; an unbounded list is a
     slow leak. Each series is capped: once [cap] stored points are
     reached, every other stored point is discarded (oldest-first
     thinning) and the recording stride doubles, so the series keeps a
     deterministic, uniformly-spaced subsample of the full stream.
     Determinism matters for the instrumentation-neutrality invariant:
     the same add-stream always yields the same stored points. *)

  let default_cap = 4096

  let cap_from_env () =
    match Sys.getenv_opt "PIPESYN_SERIES_CAP" with
    | None | Some "" -> default_cap
    | Some s -> (
        match int_of_string_opt (String.trim s) with
        | Some v when v >= 2 -> v
        | _ -> default_cap)

  type t = {
    sname : string;
    cap : int;
    mutable pts : (float * float) list; (* reversed *)
    mutable n : int;  (** stored points, [List.length pts] *)
    mutable stride : int;  (** record every [stride]-th {!add} *)
    mutable seen : int;  (** total {!add} calls since reset *)
  }

  let registry : (string, t) Hashtbl.t = Hashtbl.create 8

  let get name =
    locked registry_mutex (fun () ->
        match Hashtbl.find_opt registry name with
        | Some s -> s
        | None ->
            let s =
              { sname = name; cap = cap_from_env (); pts = []; n = 0;
                stride = 1; seen = 0 }
            in
            Hashtbl.add registry name s;
            s)

  (* Incumbent/convergence points arrive from whichever domain found the
     improvement, so the whole stride/thin update runs under the lock. *)
  let add s ~x ~y =
    locked registry_mutex @@ fun () ->
    let i = s.seen in
    s.seen <- s.seen + 1;
    if i mod s.stride = 0 then begin
      s.pts <- (x, y) :: s.pts;
      s.n <- s.n + 1;
      if s.n >= s.cap then begin
        (* Thin to every other stored point, keeping the oldest so the
           series still starts at its first recorded sample. *)
        let kept =
          List.filteri (fun i _ -> i mod 2 = 0) (List.rev s.pts) |> List.rev
        in
        s.pts <- kept;
        s.n <- List.length kept;
        s.stride <- s.stride * 2
      end
    end

  let points s = List.rev s.pts

  (* Most recent point, if any. Lock-guarded: the resource probe reads
     series the solver domains are appending to. *)
  let last s =
    locked registry_mutex (fun () ->
        match s.pts with p :: _ -> Some p | [] -> None)

  let name s = s.sname
  let seen s = s.seen
  let capacity s = s.cap

  let reset_all () =
    Hashtbl.iter
      (fun _ s ->
        s.pts <- [];
        s.n <- 0;
        s.stride <- 1;
        s.seen <- 0)
      registry

  let snapshot () =
    Hashtbl.fold
      (fun _ s acc ->
        if s.pts <> [] then (s.sname, List.rev s.pts) :: acc else acc)
      registry []
    |> List.sort compare
end

let reset () =
  Counter.reset_all ();
  Timer.reset_all ();
  Series.reset_all ()

let counters () = Counter.snapshot ()
let timers () = Timer.snapshot ()
let series () = Series.snapshot ()

let snapshot () =
  List.map (fun (n, v) -> (n, float_of_int v)) (counters ())
  @ List.map (fun (n, v) -> (n ^ ".s", v)) (timers ())
  |> List.sort compare

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  let escape buf s =
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"'

  (* Floats print with the shortest digit string that [float_of_string]
     reads back to exactly the same IEEE double (precision grows until
     the round trip is exact; 17 significant digits always suffice) and
     always in a form the parser recognises as a float; non-finite
     values have no JSON spelling and degrade to null. Exactness
     matters downstream: bench-diff re-reads metrics files and compares
     them, and must never see a precision-loss delta. *)
  let float_repr f =
    if not (Float.is_finite f) then None
    else
      let rec shortest p =
        let s = Printf.sprintf "%.*g" p f in
        if p >= 17 || float_of_string s = f then s else shortest (p + 1)
      in
      let s = shortest 1 in
      Some
        (if String.exists (fun c -> c = '.' || c = 'e' || c = 'n') s then s
         else s ^ ".0")

  let rec emit buf = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> (
        match float_repr f with
        | None -> Buffer.add_string buf "null"
        | Some s -> Buffer.add_string buf s)
    | String s -> escape buf s
    | List xs ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_string buf ", ";
            emit buf x)
          xs;
        Buffer.add_char buf ']'
    | Obj kvs ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_string buf ", ";
            escape buf k;
            Buffer.add_string buf ": ";
            emit buf v)
          kvs;
        Buffer.add_char buf '}'

  let to_string j =
    let buf = Buffer.create 256 in
    emit buf j;
    Buffer.contents buf

  let to_channel oc j =
    output_string oc (to_string j);
    output_char oc '\n'

  (* ---- minimal parser -------------------------------------------------- *)

  exception Parse of string

  type cursor = { s : string; mutable pos : int }

  let peek c = if c.pos < String.length c.s then Some c.s.[c.pos] else None

  let skip_ws c =
    while
      c.pos < String.length c.s
      && (match c.s.[c.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      c.pos <- c.pos + 1
    done

  let expect c ch =
    match peek c with
    | Some x when x = ch -> c.pos <- c.pos + 1
    | Some x -> raise (Parse (Printf.sprintf "expected '%c', got '%c' at %d" ch x c.pos))
    | None -> raise (Parse (Printf.sprintf "expected '%c', got end of input" ch))

  let literal c word v =
    let n = String.length word in
    if c.pos + n <= String.length c.s && String.sub c.s c.pos n = word then begin
      c.pos <- c.pos + n;
      v
    end
    else raise (Parse (Printf.sprintf "bad literal at %d" c.pos))

  let parse_string c =
    expect c '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek c with
      | None -> raise (Parse "unterminated string")
      | Some '"' -> c.pos <- c.pos + 1
      | Some '\\' -> (
          c.pos <- c.pos + 1;
          match peek c with
          | None -> raise (Parse "unterminated escape")
          | Some e ->
              c.pos <- c.pos + 1;
              (match e with
              | '"' -> Buffer.add_char buf '"'
              | '\\' -> Buffer.add_char buf '\\'
              | '/' -> Buffer.add_char buf '/'
              | 'n' -> Buffer.add_char buf '\n'
              | 'r' -> Buffer.add_char buf '\r'
              | 't' -> Buffer.add_char buf '\t'
              | 'b' -> Buffer.add_char buf '\b'
              | 'f' -> Buffer.add_char buf '\012'
              | 'u' ->
                  if c.pos + 4 > String.length c.s then
                    raise (Parse "short \\u escape");
                  let hex = String.sub c.s c.pos 4 in
                  c.pos <- c.pos + 4;
                  let code =
                    try int_of_string ("0x" ^ hex)
                    with _ -> raise (Parse "bad \\u escape")
                  in
                  (* ASCII only — enough for the escapes we emit *)
                  if code < 0x80 then Buffer.add_char buf (Char.chr code)
                  else raise (Parse "non-ASCII \\u escape unsupported")
              | e -> raise (Parse (Printf.sprintf "bad escape '\\%c'" e)));
              go ())
      | Some ch ->
          c.pos <- c.pos + 1;
          Buffer.add_char buf ch;
          go ()
    in
    go ();
    Buffer.contents buf

  let parse_number c =
    let start = c.pos in
    let numchar ch =
      match ch with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while
      c.pos < String.length c.s && numchar c.s.[c.pos]
    do
      c.pos <- c.pos + 1
    done;
    let tok = String.sub c.s start (c.pos - start) in
    match int_of_string_opt tok with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> raise (Parse (Printf.sprintf "bad number %S at %d" tok start)))

  let rec parse_value c =
    skip_ws c;
    match peek c with
    | None -> raise (Parse "unexpected end of input")
    | Some '{' ->
        c.pos <- c.pos + 1;
        skip_ws c;
        if peek c = Some '}' then begin
          c.pos <- c.pos + 1;
          Obj []
        end
        else
          let rec members acc =
            skip_ws c;
            let k = parse_string c in
            skip_ws c;
            expect c ':';
            let v = parse_value c in
            skip_ws c;
            match peek c with
            | Some ',' ->
                c.pos <- c.pos + 1;
                members ((k, v) :: acc)
            | Some '}' ->
                c.pos <- c.pos + 1;
                List.rev ((k, v) :: acc)
            | _ -> raise (Parse (Printf.sprintf "expected ',' or '}' at %d" c.pos))
          in
          Obj (members [])
    | Some '[' ->
        c.pos <- c.pos + 1;
        skip_ws c;
        if peek c = Some ']' then begin
          c.pos <- c.pos + 1;
          List []
        end
        else
          let rec items acc =
            let v = parse_value c in
            skip_ws c;
            match peek c with
            | Some ',' ->
                c.pos <- c.pos + 1;
                items (v :: acc)
            | Some ']' ->
                c.pos <- c.pos + 1;
                List.rev (v :: acc)
            | _ -> raise (Parse (Printf.sprintf "expected ',' or ']' at %d" c.pos))
          in
          List (items [])
    | Some '"' -> String (parse_string c)
    | Some 't' -> literal c "true" (Bool true)
    | Some 'f' -> literal c "false" (Bool false)
    | Some 'n' -> literal c "null" Null
    | Some _ -> parse_number c

  let of_string s =
    let c = { s; pos = 0 } in
    match parse_value c with
    | v ->
        skip_ws c;
        if c.pos <> String.length s then
          Error (Printf.sprintf "trailing garbage at %d" c.pos)
        else Ok v
    | exception Parse msg -> Error msg

  let member key = function
    | Obj kvs -> List.assoc_opt key kvs
    | _ -> None
end

module Trace = struct
  (* Structured tracing: hierarchical spans (B/E pairs) and instant
     events over one process-wide buffer. Disabled by default — every
     entry point checks one bool, so instrumented code pays a branch and
     nothing else. Timestamps are monotonized wall seconds ({!Clock.wall})
     relative to the [enable] call, matching the clock deadlines use, so
     multi-domain timelines line up with real time.

     The buffer is bounded (default {!default_cap} events, env
     [PIPESYN_TRACE_CAP]). On overflow new begins/instants are dropped
     deterministically and counted in {!dropped}; an [end_span] whose
     begin was recorded is always written (the buffer may exceed the cap
     by at most the open-span depth), so exported traces stay
     well-formed: every recorded B has a matching E. *)

  (* [tid] is the Chrome/Perfetto thread lane. The coordinator records on
     lane 1; B&B worker slot w (0-based, slot 0 = the coordinating
     domain) records on lane w + 1, so per-domain utilization is visible
     as separate rows. *)
  type event =
    | Begin of {
        name : string;
        cat : string;
        ts : float;
        tid : int;
        args : (string * Json.t) list;
      }
    | End of { name : string; cat : string; ts : float; tid : int }
    | Instant of {
        name : string;
        cat : string;
        ts : float;
        tid : int;
        args : (string * Json.t) list;
      }

  let default_cap = 1_000_000

  let on = ref false
  let epoch = ref 0.0
  let cap = ref default_cap
  let dropped_n = ref 0
  let spans_n = ref 0
  let instants_n = ref 0
  let max_depth_seen = ref 0

  (* Growable event buffer; grows geometrically, never shrinks until
     [clear]. A list would invert order and cost a rev on export. *)
  let buf : event array ref = ref [||]
  let len = ref 0

  (* Open spans, innermost first. [recorded] = false when the matching
     Begin was dropped at the cap, so its End must be dropped too. *)
  type open_span = { o_name : string; o_cat : string; recorded : bool }

  let open_stack : open_span list ref = ref []

  (* Serializes buffer/counter mutation: worker domains emit instants
     concurrently with coordinator spans. The span stack itself is
     coordinator-only (workers never open spans), but every push must be
     exclusive. *)
  let trace_mutex = Mutex.create ()

  let push e =
    if !len >= Array.length !buf then begin
      let ncap = max 256 (2 * Array.length !buf) in
      let a = Array.make ncap e in
      Array.blit !buf 0 a 0 !len;
      buf := a
    end;
    !buf.(!len) <- e;
    incr len

  let enabled () = !on
  let now () = Clock.wall () -. !epoch
  let num_events () = !len
  let dropped () = !dropped_n

  let clear () =
    buf := [||];
    len := 0;
    dropped_n := 0;
    spans_n := 0;
    instants_n := 0;
    max_depth_seen := 0;
    open_stack := []

  let cap_from_env () =
    match Sys.getenv_opt "PIPESYN_TRACE_CAP" with
    | None | Some "" -> default_cap
    | Some s -> (
        match int_of_string_opt (String.trim s) with
        | Some v when v >= 16 -> v
        | _ -> default_cap)

  let enable ?cap:c () =
    cap := (match c with Some v -> max 16 v | None -> cap_from_env ());
    clear ();
    epoch := Clock.wall ();
    on := true

  let begin_span ?(cat = "app") ?(args = []) name =
    if !on then
      locked trace_mutex @@ fun () ->
      let depth = 1 + List.length !open_stack in
      if depth > !max_depth_seen then max_depth_seen := depth;
      let recorded = !len < !cap in
      if recorded then begin
        push (Begin { name; cat; ts = now (); tid = 1; args });
        incr spans_n
      end
      else incr dropped_n;
      open_stack := { o_name = name; o_cat = cat; recorded } :: !open_stack

  let end_span () =
    if !on then
      locked trace_mutex @@ fun () ->
      match !open_stack with
      | [] -> () (* enable () raced a begin; ignore the stray end *)
      | o :: rest ->
          open_stack := rest;
          if o.recorded then
            push (End { name = o.o_name; cat = o.o_cat; ts = now (); tid = 1 })

  let span ?cat ?args name f =
    if not !on then f ()
    else begin
      begin_span ?cat ?args name;
      match f () with
      | v ->
          end_span ();
          v
      | exception e ->
          end_span ();
          raise e
    end

  let instant ?(cat = "app") ?(tid = 1) ?(args = []) name =
    if !on then
      locked trace_mutex @@ fun () ->
      if !len < !cap then begin
        push (Instant { name; cat; ts = now (); tid; args });
        incr instants_n
      end
      else incr dropped_n

  let disable () =
    (* Close any still-open recorded spans so the buffer stays
       well-formed even if tracing is switched off mid-flow. *)
    locked trace_mutex @@ fun () ->
    let ts = now () in
    List.iter
      (fun o ->
        if o.recorded then
          push (End { name = o.o_name; cat = o.o_cat; ts; tid = 1 }))
      !open_stack;
    open_stack := [];
    on := false

  (* ---- export ---------------------------------------------------------- *)

  (* Events still open at export time get synthesized closing E events
     (at the current timestamp) appended to the exported stream, without
     mutating the live buffer. *)
  let closing_ends () =
    let ts = now () in
    List.filter_map
      (fun o ->
        if o.recorded then
          Some (End { name = o.o_name; cat = o.o_cat; ts; tid = 1 })
        else None)
      !open_stack

  let all_events () =
    List.init !len (fun i -> !buf.(i)) @ closing_ends ()

  let us t = t *. 1e6

  let chrome_of_event e =
    let common name cat ph ts tid =
      [
        ("name", Json.String name);
        ("cat", Json.String cat);
        ("ph", Json.String ph);
        ("ts", Json.Float (us ts));
        ("pid", Json.Int 1);
        ("tid", Json.Int tid);
      ]
    in
    match e with
    | Begin b ->
        Json.Obj
          (common b.name b.cat "B" b.ts b.tid
          @ if b.args = [] then [] else [ ("args", Json.Obj b.args) ])
    | End e -> Json.Obj (common e.name e.cat "E" e.ts e.tid)
    | Instant i ->
        Json.Obj
          (common i.name i.cat "i" i.ts i.tid
          @ [ ("s", Json.String "t") ]
          @ if i.args = [] then [] else [ ("args", Json.Obj i.args) ])

  let export_chrome () =
    Json.Obj
      [
        ("traceEvents", Json.List (List.map chrome_of_event (all_events ())));
        ("displayTimeUnit", Json.String "ms");
      ]

  let native_of_event e =
    let common name cat ph ts tid =
      [
        ("ph", Json.String ph);
        ("name", Json.String name);
        ("cat", Json.String cat);
        ("ts_s", Json.Float ts);
        ("tid", Json.Int tid);
      ]
    in
    match e with
    | Begin b ->
        Json.Obj
          (common b.name b.cat "B" b.ts b.tid
          @ if b.args = [] then [] else [ ("args", Json.Obj b.args) ])
    | End e -> Json.Obj (common e.name e.cat "E" e.ts e.tid)
    | Instant i ->
        Json.Obj
          (common i.name i.cat "i" i.ts i.tid
          @ if i.args = [] then [] else [ ("args", Json.Obj i.args) ])

  let export_native () =
    Json.Obj
      [
        ("schema", Json.String "pipesyn-trace-v1");
        ("clock", Json.String "wall-s");
        ("dropped", Json.Int !dropped_n);
        ("events", Json.List (List.map native_of_event (all_events ())));
      ]

  let write_chrome ~path =
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> Json.to_channel oc (export_chrome ()))

  (* Summary folded into Metrics files (schema v4): cheap scan of the
     buffer for the headline numbers plus the incumbent-gap trajectory
     extracted from [milp.incumbent] instants. *)
  let summary () =
    let first_incumbent = ref Float.nan in
    let gaps = ref [] in
    for i = 0 to !len - 1 do
      match !buf.(i) with
      | Instant { name = "milp.incumbent"; ts; args; _ } ->
          if Float.is_nan !first_incumbent then first_incumbent := ts;
          let gap =
            match List.assoc_opt "gap" args with
            | Some (Json.Float g) -> g
            | Some (Json.Int g) -> float_of_int g
            | _ -> Float.nan
          in
          gaps := Json.List [ Json.Float ts; Json.Float gap ] :: !gaps
      | _ -> ()
    done;
    Json.Obj
      [
        ("enabled", Json.Bool !on);
        ("events", Json.Int !len);
        ("spans", Json.Int !spans_n);
        ("instants", Json.Int !instants_n);
        ("max_depth", Json.Int !max_depth_seen);
        ("dropped", Json.Int !dropped_n);
        ("first_incumbent_s", Json.Float !first_incumbent);
        ("gap_trajectory", Json.List (List.rev !gaps));
      ]

  (* ---- offline analysis ------------------------------------------------ *)

  module Analysis = struct
    (* Operates on a parsed Chrome trace_event document so the CLI
       trace-report and the test suite share one checker: a stack
       machine over the event stream validates well-formedness (every E
       matches the innermost open B, timestamps are monotone, nothing
       is left open) while aggregating per-span-name stats, the B&B
       tree shape from [milp.node] instants, and the incumbent/gap
       timeline from [milp.incumbent] instants. *)

    type span_stat = {
      sp_name : string;
      sp_cat : string;
      sp_count : int;
      sp_total : float;  (** summed durations, seconds *)
      sp_max : float;  (** longest single span, seconds *)
    }

    type slow_span = {
      sl_name : string;
      sl_cat : string;
      sl_start : float;  (** seconds from trace start *)
      sl_dur : float;  (** seconds *)
    }

    type tree_stats = {
      tr_nodes : int;
      tr_max_depth : int;
      tr_warm : int;  (** nodes whose LP resolve reused the parent basis *)
      tr_statuses : (string * int) list;  (** node LP status histogram *)
      tr_domains : (int * int) list;
          (** nodes processed per domain id, sorted; [(0, n)] only for
              single-domain traces (coordinator processes everything) *)
    }

    type gap_point = { gp_ts : float; gp_obj : float; gp_gap : float }

    type cut_stats = {
      cu_rounds : int;  (** root separation rounds recorded *)
      cu_cuts : int;  (** cuts applied across all rounds *)
      cu_bound0 : float;  (** root LP bound before any cuts; nan if absent *)
      cu_bound : float;  (** bound after the last recorded round *)
    }

    type report = {
      r_events : int;
      r_spans : int;
      r_instants : int;
      r_errors : string list;
      r_phases : span_stat list;  (** sorted by total time, descending *)
      r_slowest : slow_span list;  (** top slowest spans, descending *)
      r_tree : tree_stats option;
      r_timeline : gap_point list;
      r_cuts : cut_stats option;
          (** from ["milp.cut_round"] instants; [None] for traces
              recorded before cuts existed (pre-v8) or cuts-off runs *)
    }

    let max_errors = 50

    let num = function
      | Some (Json.Float f) -> f
      | Some (Json.Int i) -> float_of_int i
      | _ -> Float.nan

    let inum default = function
      | Some (Json.Int i) -> i
      | Some (Json.Float f) -> int_of_float f
      | _ -> default

    let analyze ?(top = 10) j =
      match Json.member "traceEvents" j with
      | None -> Error "not a Chrome trace: no \"traceEvents\" key"
      | Some (Json.List events) ->
          let errors = ref [] in
          let n_errors = ref 0 in
          let error fmt =
            Printf.ksprintf
              (fun msg ->
                incr n_errors;
                if !n_errors <= max_errors then errors := msg :: !errors)
              fmt
          in
          let stack = ref [] in
          let last_ts = ref neg_infinity in
          let n_spans = ref 0 in
          let n_instants = ref 0 in
          let stats : (string, span_stat) Hashtbl.t = Hashtbl.create 32 in
          let slow = ref [] in
          let tr_nodes = ref 0 in
          let tr_max_depth = ref 0 in
          let tr_warm = ref 0 in
          let statuses : (string, int) Hashtbl.t = Hashtbl.create 8 in
          let domains : (int, int) Hashtbl.t = Hashtbl.create 8 in
          let timeline = ref [] in
          let cu_rounds = ref 0 in
          let cu_cuts = ref 0 in
          let cu_bound0 = ref Float.nan in
          let cu_bound = ref Float.nan in
          List.iteri
            (fun i ev ->
              let str k =
                match Json.member k ev with
                | Some (Json.String s) -> Some s
                | _ -> None
              in
              let name = Option.value ~default:"?" (str "name") in
              let cat = Option.value ~default:"?" (str "cat") in
              let ts = num (Json.member "ts" ev) /. 1e6 in
              if Float.is_nan ts then error "event %d (%s): missing ts" i name
              else begin
                if ts < !last_ts -. 1e-9 then
                  error "event %d (%s): timestamp goes backwards (%.9f < %.9f)"
                    i name ts !last_ts;
                last_ts := Float.max !last_ts ts
              end;
              match str "ph" with
              | Some "B" ->
                  incr n_spans;
                  stack := (name, cat, ts) :: !stack
              | Some "E" -> (
                  match !stack with
                  | [] -> error "event %d: E (%s) with no open span" i name
                  | (bname, bcat, bts) :: rest ->
                      stack := rest;
                      if str "name" <> None && name <> bname then
                        error
                          "event %d: E for %S closes open span %S \
                           (parents must close after children)"
                          i name bname;
                      let dur = ts -. bts in
                      let cur =
                        match Hashtbl.find_opt stats bname with
                        | Some s -> s
                        | None ->
                            {
                              sp_name = bname;
                              sp_cat = bcat;
                              sp_count = 0;
                              sp_total = 0.0;
                              sp_max = 0.0;
                            }
                      in
                      Hashtbl.replace stats bname
                        {
                          cur with
                          sp_count = cur.sp_count + 1;
                          sp_total = cur.sp_total +. dur;
                          sp_max = Float.max cur.sp_max dur;
                        };
                      slow :=
                        {
                          sl_name = bname;
                          sl_cat = bcat;
                          sl_start = bts;
                          sl_dur = dur;
                        }
                        :: !slow)
              | Some ("i" | "I") -> (
                  incr n_instants;
                  let args = Json.member "args" ev in
                  let arg k = Option.bind args (Json.member k) in
                  match name with
                  | "milp.node" ->
                      incr tr_nodes;
                      let d = inum 0 (arg "depth") in
                      if d > !tr_max_depth then tr_max_depth := d;
                      (match arg "warm" with
                      | Some (Json.Bool true) -> incr tr_warm
                      | _ -> ());
                      let st =
                        match arg "status" with
                        | Some (Json.String s) -> s
                        | _ -> "?"
                      in
                      Hashtbl.replace statuses st
                        (1 + Option.value ~default:0
                               (Hashtbl.find_opt statuses st));
                      (* Absent in pre-parallel traces: count as domain 0. *)
                      let dom = inum 0 (arg "domain") in
                      Hashtbl.replace domains dom
                        (1 + Option.value ~default:0
                               (Hashtbl.find_opt domains dom))
                  | "milp.incumbent" ->
                      timeline :=
                        {
                          gp_ts = ts;
                          gp_obj = num (arg "objective");
                          gp_gap = num (arg "gap");
                        }
                        :: !timeline
                  | "milp.cut_round" ->
                      incr cu_rounds;
                      cu_cuts := !cu_cuts + inum 0 (arg "added");
                      if Float.is_nan !cu_bound0 then
                        cu_bound0 := num (arg "bound0");
                      cu_bound := num (arg "bound")
                  | _ -> ())
              | Some _ -> () (* M, X, … metadata: tolerated, uncounted *)
              | None -> error "event %d (%s): missing ph" i name)
            events;
          List.iter
            (fun (bname, _, _) -> error "span %S never closed" bname)
            !stack;
          if !n_errors > max_errors then
            errors :=
              Printf.sprintf "... and %d more errors" (!n_errors - max_errors)
              :: !errors;
          let phases =
            Hashtbl.fold (fun _ s acc -> s :: acc) stats []
            |> List.sort (fun a b -> compare b.sp_total a.sp_total)
          in
          let slowest =
            List.sort (fun a b -> compare b.sl_dur a.sl_dur) !slow
            |> List.filteri (fun i _ -> i < top)
          in
          let tree =
            if !tr_nodes = 0 then None
            else
              Some
                {
                  tr_nodes = !tr_nodes;
                  tr_max_depth = !tr_max_depth;
                  tr_warm = !tr_warm;
                  tr_statuses =
                    Hashtbl.fold (fun k v acc -> (k, v) :: acc) statuses []
                    |> List.sort compare;
                  tr_domains =
                    Hashtbl.fold (fun k v acc -> (k, v) :: acc) domains []
                    |> List.sort compare;
                }
          in
          Ok
            {
              r_events = List.length events;
              r_spans = !n_spans;
              r_instants = !n_instants;
              r_errors = List.rev !errors;
              r_phases = phases;
              r_slowest = slowest;
              r_tree = tree;
              r_timeline = List.rev !timeline;
              r_cuts =
                (if !cu_rounds = 0 then None
                 else
                   Some
                     {
                       cu_rounds = !cu_rounds;
                       cu_cuts = !cu_cuts;
                       cu_bound0 = !cu_bound0;
                       cu_bound = !cu_bound;
                     });
            }
      | Some _ -> Error "\"traceEvents\" is not a list"
  end
end

(* Leveled structured event log: the narrative companion to {!Trace}.
   Trace answers "where did the time go" with nested spans; Log answers
   "what happened" with a flat ordered stream of typed events — flow
   phase transitions, cascade retries/degradations, incumbents, cut
   rounds, checkpoints, recoveries, stalls, probe samples — serialized
   as NDJSON (one JSON object per line, greppable and tail-able, framed
   by a header and a footer line). Same discipline as Trace:
   process-global, mutex-guarded, bounded with drop-new-at-the-cap plus
   a drop count, off by default, and strictly observational — no solver
   decision may ever read it. *)
module Log = struct
  type level = Debug | Info | Warn | Error

  let level_value = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

  let level_name = function
    | Debug -> "debug"
    | Info -> "info"
    | Warn -> "warn"
    | Error -> "error"

  let level_of_string s =
    match String.lowercase_ascii (String.trim s) with
    | "debug" -> Some Debug
    | "info" -> Some Info
    | "warn" | "warning" -> Some Warn
    | "error" -> Some Error
    | _ -> None

  type event = {
    l_ts : float;  (** seconds since {!enable}, wall clock *)
    l_level : level;
    l_name : string;
    l_args : (string * Json.t) list;
  }

  let schema = "pipesyn-log-v1"
  let default_cap = 200_000

  let cap_from_env () =
    match Sys.getenv_opt "PIPESYN_LOG_CAP" with
    | None | Some "" -> default_cap
    | Some s -> (
        match int_of_string_opt (String.trim s) with
        | Some v when v >= 16 -> v
        | _ -> default_cap)

  (* Everything below is guarded by [log_mutex]; [on] is read unlocked
     on the hot path (a stale read can only delay the first or last
     event of an enable window, never corrupt the buffer). *)
  let log_mutex = Mutex.create ()
  let on = ref false
  let epoch = ref 0.0
  let cap = ref default_cap
  let min_level = ref Info
  let buf : event option array ref = ref [||]
  let len = ref 0
  let dropped_n = ref 0
  let sink : (event -> unit) option ref = ref None

  let push_locked e =
    if !len >= Array.length !buf then begin
      let ncap = min !cap (max 1024 (2 * Array.length !buf)) in
      let nbuf = Array.make ncap None in
      Array.blit !buf 0 nbuf 0 !len;
      buf := nbuf
    end;
    !buf.(!len) <- Some e;
    incr len

  let enable ?cap:c ?(level = Info) () =
    locked log_mutex (fun () ->
        on := true;
        epoch := Clock.wall ();
        cap := (match c with Some n -> max 16 n | None -> cap_from_env ());
        min_level := level;
        buf := [||];
        len := 0;
        dropped_n := 0)

  let disable () = locked log_mutex (fun () -> on := false)
  let enabled () = !on

  let clear () =
    locked log_mutex (fun () ->
        buf := [||];
        len := 0;
        dropped_n := 0)

  let set_sink f = locked log_mutex (fun () -> sink := f)

  let event ?(level = Info) name args =
    if !on && level_value level >= level_value !min_level then begin
      let cb =
        locked log_mutex (fun () ->
            if not !on then None
            else begin
              let e =
                { l_ts = Clock.wall () -. !epoch; l_level = level;
                  l_name = name; l_args = args }
              in
              if !len < !cap then push_locked e else incr dropped_n;
              match !sink with Some f -> Some (f, e) | None -> None
            end)
      in
      (* The sink (the --progress renderer) runs outside the lock so a
         slow terminal never blocks solver domains, and its exceptions
         never reach the solver. *)
      match cb with Some (f, e) -> ( try f e with _ -> ()) | None -> ()
    end

  let num_events () = locked log_mutex (fun () -> !len)
  let dropped () = locked log_mutex (fun () -> !dropped_n)

  let json_of_event e =
    Json.Obj
      (("t", Json.Float e.l_ts)
      :: ("level", Json.String (level_name e.l_level))
      :: ("ev", Json.String e.l_name)
      ::
      (match e.l_args with [] -> [] | args -> [ ("args", Json.Obj args) ]))

  (* NDJSON form: a header object naming the schema and clock, one
     object per event, and a [log.end] footer carrying the event and
     drop counts — so a consumer can both stream the file line by line
     and check completeness at the end. *)
  let to_lines () =
    locked log_mutex (fun () ->
        let header =
          Json.Obj
            [
              ("schema", Json.String schema);
              ("clock", Json.String "wall-s");
              ("cap", Json.Int !cap);
              ("min_level", Json.String (level_name !min_level));
            ]
        in
        let footer =
          Json.Obj
            [
              ("ev", Json.String "log.end");
              ("t", Json.Float (Clock.wall () -. !epoch));
              ("events", Json.Int !len);
              ("dropped", Json.Int !dropped_n);
            ]
        in
        let lines = ref [ footer ] in
        for i = !len - 1 downto 0 do
          match !buf.(i) with
          | Some e -> lines := json_of_event e :: !lines
          | None -> ()
        done;
        header :: !lines)

  let write ~path =
    let lines = to_lines () in
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        List.iter
          (fun j ->
            output_string oc (Json.to_string j);
            output_char oc '\n')
          lines)
end

(* Background resource sampler: a dedicated domain that wakes every
   [PIPESYN_PROBE_MS] milliseconds and snapshots GC statistics, peak
   RSS, the live solver counters and the incumbent/gap into bounded
   {!Series}, trace instants and {!Log} events — the live signal that
   feedback-guided re-solving and the [--progress] line are built from.
   Off by default. Strictly read-only with respect to the solver: it
   reads atomics and registry snapshots and writes only into the
   observability layer, so solver results are byte-identical probe-on
   vs probe-off. *)
module Probe = struct
  let period_ms_from_env () =
    match Sys.getenv_opt "PIPESYN_PROBE_MS" with
    | None | Some "" -> None
    | Some s -> (
        match int_of_string_opt (String.trim s) with
        | Some v when v >= 1 -> Some v
        | _ -> None)

  (* Peak resident set size from /proc/self/status (VmHWM, kB); [None]
     on platforms without procfs — callers treat the figure as
     best-effort. *)
  let peak_rss_kb () =
    match open_in "/proc/self/status" with
    | exception Sys_error _ -> None
    | ic ->
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () ->
            let rec scan () =
              match input_line ic with
              | exception End_of_file -> None
              | line ->
                  if String.length line >= 6 && String.sub line 0 6 = "VmHWM:"
                  then begin
                    let digits = Buffer.create 8 in
                    String.iter
                      (fun c ->
                        if c >= '0' && c <= '9' then Buffer.add_char digits c)
                      line;
                    int_of_string_opt (Buffer.contents digits)
                  end
                  else scan ()
            in
            scan ())

  let running_flag = Atomic.make false
  let stop_flag = Atomic.make false
  let n_samples = Atomic.make 0
  let dom : unit Domain.t option ref = ref None
  let probe_mutex = Mutex.create ()

  (* Per-worker-domain node counters are published by the solver under
     this prefix; the probe turns their deltas into rate series. *)
  let domain_counter_prefix = "milp.nodes.d"

  let loop period_s =
    let t0 = Clock.wall () in
    let c_nodes = Counter.get "milp.bnb_nodes" in
    let c_pivots = Counter.get "milp.lp_pivots" in
    let s_heap = Series.get "probe.heap_words" in
    let s_minor = Series.get "probe.minor_words" in
    let s_major = Series.get "probe.major_words" in
    let s_rss = Series.get "probe.rss_kb" in
    let s_nrate = Series.get "probe.nodes_per_s" in
    let s_prate = Series.get "probe.pivots_per_s" in
    let prev_t = ref t0 in
    let prev_nodes = ref (Counter.value c_nodes) in
    let prev_pivots = ref (Counter.value c_pivots) in
    let prev_dom : (string, int) Hashtbl.t = Hashtbl.create 8 in
    (* Sleep in short slices so [stop] returns promptly even under a
       long sampling period. *)
    let rec nap remaining =
      if remaining > 0.0 && not (Atomic.get stop_flag) then begin
        Unix.sleepf (Float.min remaining 0.02);
        nap (remaining -. 0.02)
      end
    in
    while not (Atomic.get stop_flag) do
      nap period_s;
      if not (Atomic.get stop_flag) then begin
        let now_ = Clock.wall () in
        let t = now_ -. t0 in
        let dt = Float.max 1e-9 (now_ -. !prev_t) in
        let g = Gc.quick_stat () in
        let nodes = Counter.value c_nodes in
        let pivots = Counter.value c_pivots in
        let nrate = float_of_int (nodes - !prev_nodes) /. dt in
        let prate = float_of_int (pivots - !prev_pivots) /. dt in
        let rss = peak_rss_kb () in
        Series.add s_heap ~x:t ~y:(float_of_int g.Gc.heap_words);
        Series.add s_minor ~x:t ~y:g.Gc.minor_words;
        Series.add s_major ~x:t ~y:g.Gc.major_words;
        (match rss with
        | Some kb -> Series.add s_rss ~x:t ~y:(float_of_int kb)
        | None -> ());
        Series.add s_nrate ~x:t ~y:nrate;
        Series.add s_prate ~x:t ~y:prate;
        let pl = String.length domain_counter_prefix in
        List.iter
          (fun (cname, v) ->
            if
              String.length cname > pl
              && String.sub cname 0 pl = domain_counter_prefix
            then begin
              let prev =
                match Hashtbl.find_opt prev_dom cname with
                | Some p -> p
                | None -> 0
              in
              Hashtbl.replace prev_dom cname v;
              let wid = String.sub cname pl (String.length cname - pl) in
              Series.add
                (Series.get ("probe.nodes_per_s.d" ^ wid))
                ~x:t
                ~y:(float_of_int (v - prev) /. dt)
            end)
          (Counter.snapshot ());
        let gap =
          match Series.last (Series.get "milp.convergence") with
          | Some (_, y) -> y
          | None -> Float.nan
        in
        let inc =
          match Series.last (Series.get "milp.incumbents") with
          | Some (_, y) -> y
          | None -> Float.nan
        in
        let args =
          [
            ("heap_words", Json.Int g.Gc.heap_words);
            ( "rss_kb",
              match rss with Some kb -> Json.Int kb | None -> Json.Null );
            ("minor_words", Json.Float g.Gc.minor_words);
            ("major_words", Json.Float g.Gc.major_words);
            ("compactions", Json.Int g.Gc.compactions);
            ("nodes", Json.Int nodes);
            ("pivots", Json.Int pivots);
            ("nodes_per_s", Json.Float nrate);
            ("pivots_per_s", Json.Float prate);
            ("gap", Json.Float gap);
            ("incumbent", Json.Float inc);
          ]
        in
        if Trace.enabled () then
          Trace.instant ~cat:"probe" ~tid:999 ~args "probe.sample";
        Log.event "probe.sample" args;
        ignore (Atomic.fetch_and_add n_samples 1);
        prev_t := now_;
        prev_nodes := nodes;
        prev_pivots := pivots
      end
    done

  let start ?period_ms () =
    let p =
      match period_ms with
      | Some v when v >= 1 -> Some v
      | Some _ -> None
      | None -> period_ms_from_env ()
    in
    match p with
    | None -> false
    | Some ms ->
        locked probe_mutex (fun () ->
            if Atomic.get running_flag then true
            else begin
              Atomic.set stop_flag false;
              Atomic.set n_samples 0;
              let period_s = float_of_int ms /. 1000.0 in
              dom := Some (Domain.spawn (fun () -> loop period_s));
              Atomic.set running_flag true;
              true
            end)

  let stop () =
    locked probe_mutex (fun () ->
        match !dom with
        | None -> ()
        | Some d ->
            Atomic.set stop_flag true;
            Domain.join d;
            dom := None;
            Atomic.set stop_flag false;
            Atomic.set running_flag false)

  let running () = Atomic.get running_flag
  let samples () = Atomic.get n_samples
end

module Metrics = struct
  type t = {
    name : string;
    method_ : string;
    lut : int;
    ff : int;
    slack : float;
    solve_s : float option;
        (** MILP wall seconds; [None] (JSON null) for methods that never
            entered the MILP (heuristic flows, hard errors) — pre-v9
            files encoded that as 0.0, which {!of_json} normalizes back
            to [None] *)
    bnb_nodes : int option;
        (** branch-and-bound nodes explored; [None] when the method
            never entered the MILP (a real solve always explores at
            least the root, so the legacy 0 encoding is unambiguous) *)
    lp_pivots : int option;
        (** simplex pivots across the solve's LPs; [None] when the
            method never entered the MILP or for pre-v9 files *)
    cuts_total : int;
    first_incumbent_s : float;
        (** seconds into the MILP solve when the first incumbent
            appeared; nan for heuristic flows or when none was found *)
    final_gap : float;
        (** relative incumbent/bound gap at solver exit; nan when not
            applicable *)
    status : string;
    objective : float;
        (** MILP objective of the reported solution; nan for heuristic
            flows *)
    domains : int;  (** B&B worker-domain count the solve ran with *)
    nodes_per_s : float;
        (** B&B node throughput, [bnb_nodes / solve_s]; nan when no
            nodes were explored or the solve took no measurable time *)
    cert_nodes : int;
        (** nodes recorded in the solve's proof-carrying certificate;
            0 when the solve carried none *)
    audit_errors : int option;
        (** error findings from the exact-rational certificate audit;
            [None] (serialized as JSON null) when the audit did not run —
            pre-v8 files encoded that as the sentinel -1, which
            {!of_json} still maps back to [None] *)
    milp_cuts : int;
        (** cutting planes active in the MILP solve (root separation or
            re-installed on resume); 0 for heuristic flows or cuts-off
            runs *)
    gap_closed_root : float;
        (** fraction of the root gap closed by the cut rounds; nan when
            not applicable (heuristic flow, cuts off, no incumbent,
            resumed solve) *)
    checkpoints : int;
        (** frontier snapshots written during the solve; 0 when
            checkpointing was off *)
    recoveries : int;
        (** leased subtrees re-enqueued after a worker death or a
            watchdog cancel-and-requeue; 0 for undisturbed solves *)
    stalls : int;
        (** stall-watchdog escalations (nudges + cancels) recorded
            during the solve *)
    gc_minor_words : float;
        (** GC minor-heap words allocated across this result's flow run
            (quick_stat delta); 0.0 for pre-v9 files *)
    gc_major_words : float;
        (** GC major-heap words allocated across this result's flow run
            (quick_stat delta); 0.0 for pre-v9 files *)
    diagnostics : Json.t list;
    degradation : Json.t list;
  }

  let schema_version = 9

  let to_json m =
    Json.Obj
      [
        ("name", Json.String m.name);
        ("method", Json.String m.method_);
        ("lut", Json.Int m.lut);
        ("ff", Json.Int m.ff);
        ("slack", Json.Float m.slack);
        ( "solve_s",
          match m.solve_s with Some s -> Json.Float s | None -> Json.Null );
        ( "bnb_nodes",
          match m.bnb_nodes with Some n -> Json.Int n | None -> Json.Null );
        ( "lp_pivots",
          match m.lp_pivots with Some n -> Json.Int n | None -> Json.Null );
        ("cuts_total", Json.Int m.cuts_total);
        ("first_incumbent_s", Json.Float m.first_incumbent_s);
        ("final_gap", Json.Float m.final_gap);
        ("status", Json.String m.status);
        ("objective", Json.Float m.objective);
        ("domains", Json.Int m.domains);
        ("nodes_per_s", Json.Float m.nodes_per_s);
        ("cert_nodes", Json.Int m.cert_nodes);
        ( "audit_errors",
          match m.audit_errors with Some e -> Json.Int e | None -> Json.Null );
        ("milp_cuts", Json.Int m.milp_cuts);
        ("gap_closed_root", Json.Float m.gap_closed_root);
        ("checkpoints", Json.Int m.checkpoints);
        ("recoveries", Json.Int m.recoveries);
        ("stalls", Json.Int m.stalls);
        ("gc_minor_words", Json.Float m.gc_minor_words);
        ("gc_major_words", Json.Float m.gc_major_words);
        ("diagnostics", Json.List m.diagnostics);
        ("degradation", Json.List m.degradation);
      ]

  let of_json j =
    let str k =
      match Json.member k j with
      | Some (Json.String s) -> Ok s
      | _ -> Error (Printf.sprintf "missing string field %S" k)
    in
    let int k =
      match Json.member k j with
      | Some (Json.Int i) -> Ok i
      | _ -> Error (Printf.sprintf "missing int field %S" k)
    in
    let flt k =
      match Json.member k j with
      | Some (Json.Float f) -> Ok f
      | Some (Json.Int i) -> Ok (float_of_int i)
      | Some Json.Null -> Ok Float.nan
      | _ -> Error (Printf.sprintf "missing number field %S" k)
    in
    let ( let* ) = Result.bind in
    let* name = str "name" in
    let* method_ = str "method" in
    let* lut = int "lut" in
    let* ff = int "ff" in
    let* slack = flt "slack" in
    let solve_s =
      match Json.member "solve_s" j with
      | Some (Json.Float f) -> Some f
      | Some (Json.Int i) -> Some (float_of_int i)
      | _ -> None
    in
    let bnb_nodes =
      match Json.member "bnb_nodes" j with Some (Json.Int i) -> Some i | _ -> None
    in
    (* Pre-v9 files wrote 0.0 / 0 for methods that never entered the
       MILP, indistinguishable from a real instant solve — except that a
       real solve always explores at least the root node. Normalize the
       legacy pair back to None on read, like audit_errors' -1. *)
    let solve_s, bnb_nodes =
      match (solve_s, bnb_nodes) with
      | Some s, Some 0 when s = 0.0 -> (None, None)
      | p -> p
    in
    (* Absent in schema v1–v8 files. *)
    let lp_pivots =
      match Json.member "lp_pivots" j with Some (Json.Int i) -> Some i | _ -> None
    in
    let* cuts_total = int "cuts_total" in
    let* status = str "status" in
    (* Absent in schema v1–v3 files; default to nan for compatibility. *)
    let flt_opt k =
      match Json.member k j with
      | Some (Json.Float f) -> f
      | Some (Json.Int i) -> float_of_int i
      | _ -> Float.nan
    in
    let first_incumbent_s = flt_opt "first_incumbent_s" in
    let final_gap = flt_opt "final_gap" in
    (* Absent in schema v1–v4 files. *)
    let objective = flt_opt "objective" in
    let nodes_per_s = flt_opt "nodes_per_s" in
    let domains =
      match Json.member "domains" j with Some (Json.Int i) -> i | _ -> 1
    in
    (* Absent in schema v1–v5 files. *)
    let cert_nodes =
      match Json.member "cert_nodes" j with Some (Json.Int i) -> i | _ -> 0
    in
    let audit_errors =
      (* v8 writes null for "did not run"; v6/v7 wrote the sentinel -1;
         older files omit the field entirely — all map to None *)
      match Json.member "audit_errors" j with
      | Some (Json.Int i) when i >= 0 -> Some i
      | _ -> None
    in
    (* Absent in schema v1–v7 files. *)
    let milp_cuts =
      match Json.member "milp_cuts" j with Some (Json.Int i) -> i | _ -> 0
    in
    let gap_closed_root =
      match Json.member "gap_closed_root" j with
      | Some (Json.Float f) -> f
      | Some (Json.Int i) -> float_of_int i
      | _ -> Float.nan
    in
    (* Absent in schema v1–v6 files. *)
    let int_opt k =
      match Json.member k j with Some (Json.Int i) -> i | _ -> 0
    in
    let checkpoints = int_opt "checkpoints" in
    let recoveries = int_opt "recoveries" in
    let stalls = int_opt "stalls" in
    (* Absent in schema v1–v8 files. *)
    let gc_flt k =
      match Json.member k j with
      | Some (Json.Float f) -> f
      | Some (Json.Int i) -> float_of_int i
      | _ -> 0.0
    in
    let gc_minor_words = gc_flt "gc_minor_words" in
    let gc_major_words = gc_flt "gc_major_words" in
    (* Absent in schema v1 files; default to empty for compatibility. *)
    let diagnostics =
      match Json.member "diagnostics" j with Some (Json.List l) -> l | _ -> []
    in
    (* Absent in schema v1/v2 files; default to empty for compatibility. *)
    let degradation =
      match Json.member "degradation" j with Some (Json.List l) -> l | _ -> []
    in
    Ok
      {
        name;
        method_;
        lut;
        ff;
        slack;
        solve_s;
        bnb_nodes;
        lp_pivots;
        cuts_total;
        first_incumbent_s;
        final_gap;
        status;
        objective;
        domains;
        nodes_per_s;
        cert_nodes;
        audit_errors;
        milp_cuts;
        gap_closed_root;
        checkpoints;
        recoveries;
        stalls;
        gc_minor_words;
        gc_major_words;
        diagnostics;
        degradation;
      }

  (* File-level resource totals, captured at write time: process-lifetime
     GC figures, the current and top heap, and (Linux) the peak-RSS
     high-water mark, plus how many probe samples informed the run. *)
  let resources () =
    let g = Gc.quick_stat () in
    Json.Obj
      [
        ("gc_minor_words", Json.Float g.Gc.minor_words);
        ("gc_promoted_words", Json.Float g.Gc.promoted_words);
        ("gc_major_words", Json.Float g.Gc.major_words);
        ("gc_compactions", Json.Int g.Gc.compactions);
        ("heap_words", Json.Int g.Gc.heap_words);
        ("top_heap_words", Json.Int g.Gc.top_heap_words);
        ( "peak_rss_kb",
          match Probe.peak_rss_kb () with
          | Some kb -> Json.Int kb
          | None -> Json.Null );
        ("probe_samples", Json.Int (Probe.samples ()));
      ]

  let file ~results =
    Json.Obj
      [
        ("schema_version", Json.Int schema_version);
        ( "obs",
          Json.Obj (List.map (fun (n, v) -> (n, Json.Float v)) (snapshot ())) );
        ("resources", resources ());
        ("trace", Trace.summary ());
        ("results", Json.List (List.map to_json results));
      ]

  let write_file ~path ~results =
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> Json.to_channel oc (file ~results))
end
