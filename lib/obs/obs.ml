(* Process-global instrumentation registry. Everything is stdlib-only:
   the library must be linkable from the innermost subsystems (lp, cuts)
   without dragging in fmt/logs, and the JSON emitter replaces yojson. *)

module Counter = struct
  type t = { cname : string; mutable n : int }

  let registry : (string, t) Hashtbl.t = Hashtbl.create 32

  let get name =
    match Hashtbl.find_opt registry name with
    | Some c -> c
    | None ->
        let c = { cname = name; n = 0 } in
        Hashtbl.add registry name c;
        c

  let incr ?(by = 1) c = c.n <- c.n + by
  let value c = c.n
  let name c = c.cname
  let reset_all () = Hashtbl.iter (fun _ c -> c.n <- 0) registry

  let snapshot () =
    Hashtbl.fold (fun _ c acc -> if c.n <> 0 then (c.cname, c.n) :: acc else acc)
      registry []
    |> List.sort compare
end

module Timer = struct
  type t = { tname : string; mutable total : float; mutable spans : int }

  let registry : (string, t) Hashtbl.t = Hashtbl.create 16

  let get name =
    match Hashtbl.find_opt registry name with
    | Some t -> t
    | None ->
        let t = { tname = name; total = 0.0; spans = 0 } in
        Hashtbl.add registry name t;
        t

  let span t f =
    let t0 = Sys.time () in
    let record () =
      t.total <- t.total +. (Sys.time () -. t0);
      t.spans <- t.spans + 1
    in
    match f () with
    | v ->
        record ();
        v
    | exception e ->
        record ();
        raise e

  let elapsed t = t.total
  let count t = t.spans
  let name t = t.tname

  let reset_all () =
    Hashtbl.iter
      (fun _ t ->
        t.total <- 0.0;
        t.spans <- 0)
      registry

  let snapshot () =
    Hashtbl.fold
      (fun _ t acc ->
        if t.total <> 0.0 then (t.tname, t.total) :: acc else acc)
      registry []
    |> List.sort compare
end

module Series = struct
  type t = { sname : string; mutable pts : (float * float) list (* reversed *) }

  let registry : (string, t) Hashtbl.t = Hashtbl.create 8

  let get name =
    match Hashtbl.find_opt registry name with
    | Some s -> s
    | None ->
        let s = { sname = name; pts = [] } in
        Hashtbl.add registry name s;
        s

  let add s ~x ~y = s.pts <- (x, y) :: s.pts
  let points s = List.rev s.pts
  let name s = s.sname
  let reset_all () = Hashtbl.iter (fun _ s -> s.pts <- []) registry

  let snapshot () =
    Hashtbl.fold
      (fun _ s acc ->
        if s.pts <> [] then (s.sname, List.rev s.pts) :: acc else acc)
      registry []
    |> List.sort compare
end

let reset () =
  Counter.reset_all ();
  Timer.reset_all ();
  Series.reset_all ()

let counters () = Counter.snapshot ()
let timers () = Timer.snapshot ()
let series () = Series.snapshot ()

let snapshot () =
  List.map (fun (n, v) -> (n, float_of_int v)) (counters ())
  @ List.map (fun (n, v) -> (n ^ ".s", v)) (timers ())
  |> List.sort compare

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  let escape buf s =
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"'

  (* Floats print with enough digits to round-trip and always in a form
     float_of_string reads back; non-finite values have no JSON spelling
     and degrade to null. *)
  let float_repr f =
    if not (Float.is_finite f) then None
    else
      let s = Printf.sprintf "%.12g" f in
      Some
        (if String.exists (fun c -> c = '.' || c = 'e' || c = 'n') s then s
         else s ^ ".0")

  let rec emit buf = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> (
        match float_repr f with
        | None -> Buffer.add_string buf "null"
        | Some s -> Buffer.add_string buf s)
    | String s -> escape buf s
    | List xs ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_string buf ", ";
            emit buf x)
          xs;
        Buffer.add_char buf ']'
    | Obj kvs ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_string buf ", ";
            escape buf k;
            Buffer.add_string buf ": ";
            emit buf v)
          kvs;
        Buffer.add_char buf '}'

  let to_string j =
    let buf = Buffer.create 256 in
    emit buf j;
    Buffer.contents buf

  let to_channel oc j =
    output_string oc (to_string j);
    output_char oc '\n'

  (* ---- minimal parser -------------------------------------------------- *)

  exception Parse of string

  type cursor = { s : string; mutable pos : int }

  let peek c = if c.pos < String.length c.s then Some c.s.[c.pos] else None

  let skip_ws c =
    while
      c.pos < String.length c.s
      && (match c.s.[c.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      c.pos <- c.pos + 1
    done

  let expect c ch =
    match peek c with
    | Some x when x = ch -> c.pos <- c.pos + 1
    | Some x -> raise (Parse (Printf.sprintf "expected '%c', got '%c' at %d" ch x c.pos))
    | None -> raise (Parse (Printf.sprintf "expected '%c', got end of input" ch))

  let literal c word v =
    let n = String.length word in
    if c.pos + n <= String.length c.s && String.sub c.s c.pos n = word then begin
      c.pos <- c.pos + n;
      v
    end
    else raise (Parse (Printf.sprintf "bad literal at %d" c.pos))

  let parse_string c =
    expect c '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek c with
      | None -> raise (Parse "unterminated string")
      | Some '"' -> c.pos <- c.pos + 1
      | Some '\\' -> (
          c.pos <- c.pos + 1;
          match peek c with
          | None -> raise (Parse "unterminated escape")
          | Some e ->
              c.pos <- c.pos + 1;
              (match e with
              | '"' -> Buffer.add_char buf '"'
              | '\\' -> Buffer.add_char buf '\\'
              | '/' -> Buffer.add_char buf '/'
              | 'n' -> Buffer.add_char buf '\n'
              | 'r' -> Buffer.add_char buf '\r'
              | 't' -> Buffer.add_char buf '\t'
              | 'b' -> Buffer.add_char buf '\b'
              | 'f' -> Buffer.add_char buf '\012'
              | 'u' ->
                  if c.pos + 4 > String.length c.s then
                    raise (Parse "short \\u escape");
                  let hex = String.sub c.s c.pos 4 in
                  c.pos <- c.pos + 4;
                  let code =
                    try int_of_string ("0x" ^ hex)
                    with _ -> raise (Parse "bad \\u escape")
                  in
                  (* ASCII only — enough for the escapes we emit *)
                  if code < 0x80 then Buffer.add_char buf (Char.chr code)
                  else raise (Parse "non-ASCII \\u escape unsupported")
              | e -> raise (Parse (Printf.sprintf "bad escape '\\%c'" e)));
              go ())
      | Some ch ->
          c.pos <- c.pos + 1;
          Buffer.add_char buf ch;
          go ()
    in
    go ();
    Buffer.contents buf

  let parse_number c =
    let start = c.pos in
    let numchar ch =
      match ch with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while
      c.pos < String.length c.s && numchar c.s.[c.pos]
    do
      c.pos <- c.pos + 1
    done;
    let tok = String.sub c.s start (c.pos - start) in
    match int_of_string_opt tok with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> raise (Parse (Printf.sprintf "bad number %S at %d" tok start)))

  let rec parse_value c =
    skip_ws c;
    match peek c with
    | None -> raise (Parse "unexpected end of input")
    | Some '{' ->
        c.pos <- c.pos + 1;
        skip_ws c;
        if peek c = Some '}' then begin
          c.pos <- c.pos + 1;
          Obj []
        end
        else
          let rec members acc =
            skip_ws c;
            let k = parse_string c in
            skip_ws c;
            expect c ':';
            let v = parse_value c in
            skip_ws c;
            match peek c with
            | Some ',' ->
                c.pos <- c.pos + 1;
                members ((k, v) :: acc)
            | Some '}' ->
                c.pos <- c.pos + 1;
                List.rev ((k, v) :: acc)
            | _ -> raise (Parse (Printf.sprintf "expected ',' or '}' at %d" c.pos))
          in
          Obj (members [])
    | Some '[' ->
        c.pos <- c.pos + 1;
        skip_ws c;
        if peek c = Some ']' then begin
          c.pos <- c.pos + 1;
          List []
        end
        else
          let rec items acc =
            let v = parse_value c in
            skip_ws c;
            match peek c with
            | Some ',' ->
                c.pos <- c.pos + 1;
                items (v :: acc)
            | Some ']' ->
                c.pos <- c.pos + 1;
                List.rev (v :: acc)
            | _ -> raise (Parse (Printf.sprintf "expected ',' or ']' at %d" c.pos))
          in
          List (items [])
    | Some '"' -> String (parse_string c)
    | Some 't' -> literal c "true" (Bool true)
    | Some 'f' -> literal c "false" (Bool false)
    | Some 'n' -> literal c "null" Null
    | Some _ -> parse_number c

  let of_string s =
    let c = { s; pos = 0 } in
    match parse_value c with
    | v ->
        skip_ws c;
        if c.pos <> String.length s then
          Error (Printf.sprintf "trailing garbage at %d" c.pos)
        else Ok v
    | exception Parse msg -> Error msg

  let member key = function
    | Obj kvs -> List.assoc_opt key kvs
    | _ -> None
end

module Metrics = struct
  type t = {
    name : string;
    method_ : string;
    lut : int;
    ff : int;
    slack : float;
    solve_s : float;
    bnb_nodes : int;
    cuts_total : int;
    status : string;
    diagnostics : Json.t list;
    degradation : Json.t list;
  }

  let schema_version = 3

  let to_json m =
    Json.Obj
      [
        ("name", Json.String m.name);
        ("method", Json.String m.method_);
        ("lut", Json.Int m.lut);
        ("ff", Json.Int m.ff);
        ("slack", Json.Float m.slack);
        ("solve_s", Json.Float m.solve_s);
        ("bnb_nodes", Json.Int m.bnb_nodes);
        ("cuts_total", Json.Int m.cuts_total);
        ("status", Json.String m.status);
        ("diagnostics", Json.List m.diagnostics);
        ("degradation", Json.List m.degradation);
      ]

  let of_json j =
    let str k =
      match Json.member k j with
      | Some (Json.String s) -> Ok s
      | _ -> Error (Printf.sprintf "missing string field %S" k)
    in
    let int k =
      match Json.member k j with
      | Some (Json.Int i) -> Ok i
      | _ -> Error (Printf.sprintf "missing int field %S" k)
    in
    let flt k =
      match Json.member k j with
      | Some (Json.Float f) -> Ok f
      | Some (Json.Int i) -> Ok (float_of_int i)
      | Some Json.Null -> Ok Float.nan
      | _ -> Error (Printf.sprintf "missing number field %S" k)
    in
    let ( let* ) = Result.bind in
    let* name = str "name" in
    let* method_ = str "method" in
    let* lut = int "lut" in
    let* ff = int "ff" in
    let* slack = flt "slack" in
    let* solve_s = flt "solve_s" in
    let* bnb_nodes = int "bnb_nodes" in
    let* cuts_total = int "cuts_total" in
    let* status = str "status" in
    (* Absent in schema v1 files; default to empty for compatibility. *)
    let diagnostics =
      match Json.member "diagnostics" j with Some (Json.List l) -> l | _ -> []
    in
    (* Absent in schema v1/v2 files; default to empty for compatibility. *)
    let degradation =
      match Json.member "degradation" j with Some (Json.List l) -> l | _ -> []
    in
    Ok
      {
        name;
        method_;
        lut;
        ff;
        slack;
        solve_s;
        bnb_nodes;
        cuts_total;
        status;
        diagnostics;
        degradation;
      }

  let file ~results =
    Json.Obj
      [
        ("schema_version", Json.Int schema_version);
        ( "obs",
          Json.Obj (List.map (fun (n, v) -> (n, Json.Float v)) (snapshot ())) );
        ("results", Json.List (List.map to_json results));
      ]

  let write_file ~path ~results =
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> Json.to_channel oc (file ~results))
end
