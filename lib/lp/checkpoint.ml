(* Versioned on-disk snapshots of a live branch-and-bound frontier
   (DESIGN.md §3i). Everything numeric that must survive the round-trip
   exactly is serialized as a hex-float string ("%h"): unlike "%.12g",
   hex floats reparse to the identical bit pattern, and
   [float_of_string] also reads "nan" and "infinity", so bound chains,
   duals and pseudocosts rehydrate bit-for-bit. The writer goes through
   a temp file + atomic rename so a crash mid-write can never leave a
   half-written file under the real name; a torn file (injected via the
   [milp.checkpoint_torn] fault, which truncates in place) is caught by
   the payload checksum or the JSON parser. *)

module J = Obs.Json

let schema = "pipesyn-checkpoint-v1"

let hex f = Printf.sprintf "%h" f

type edit = {
  e_j : int;
  e_side : Cert.side;
  e_v : float;
  e_prev : float;
}

type open_node = {
  o_nid : int;
  o_parent : int;
  o_bound : float;
  o_bvar : int;
  o_bfrac : float;
  o_dir_up : bool;
  o_edits : edit list;
}

type pc = {
  dn_sum : float array;
  dn_n : int array;
  up_sum : float array;
  up_n : int array;
}

type t = {
  fingerprint : string;
  domains : int;
  next_nid : int;
  nodes_done : int;
  lp_limited : int;
  fixed_vars : int;
  root_bound : float;
  root_lb : float array;
  root_ub : float array;
  incumbent : (float array * float) option;
  first_incumbent_s : float;
  elapsed_s : float;
  frontier : open_node list;
  pc : pc array;
  certs_on : bool;
  cert_nodes : Cert.node list;
  fixes : (int * Cert.side) list;
  root_duals : float array option;
  presolve : Cert.tighten list;
      (* root bound-tightening events, in application order *)
  cuts : Cert.cut list;
      (* applied cut rows, in derivation order: a resume re-extends the
         model with exactly these rows and never re-separates *)
  meta : J.t;
}

(* The fingerprint pins a checkpoint to the exact model it was taken
   from: every array the solver consumes, serialized exactly, digested.
   A resume against any other model is rejected up front — replaying a
   frontier into a different polytope would silently produce garbage. *)
let fingerprint (raw : Model.raw) =
  let buf = Buffer.create 4096 in
  let f x = Buffer.add_string buf (hex x); Buffer.add_char buf ';' in
  let i x = Buffer.add_string buf (string_of_int x); Buffer.add_char buf ';' in
  i raw.Model.n;
  Array.iter f raw.Model.lb;
  Array.iter f raw.Model.ub;
  Array.iter (fun b -> Buffer.add_char buf (if b then 'i' else 'c')) raw.Model.integer;
  Array.iter f raw.Model.obj;
  Array.iter
    (fun row ->
      Array.iter (fun (j, a) -> i j; f a) row;
      Buffer.add_char buf '|')
    raw.Model.rows;
  Array.iter
    (fun s ->
      Buffer.add_char buf
        (match s with Model.Le -> '<' | Model.Eq -> '=' | Model.Ge -> '>'))
    raw.Model.senses;
  Array.iter f raw.Model.rhs;
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* ---- encoding ------------------------------------------------------- *)

let jf x = J.String (hex x)
let jfarr a = J.List (Array.to_list (Array.map jf a))
let jiarr a = J.List (Array.to_list (Array.map (fun x -> J.Int x) a))

let side_to_json = function
  | Cert.Lower -> J.String "lower"
  | Cert.Upper -> J.String "upper"

let claim_to_json = function
  | Cert.Lp_optimal { obj; duals } ->
      J.Obj [ ("kind", J.String "optimal"); ("obj", jf obj); ("duals", jfarr duals) ]
  | Cert.Lp_infeasible None -> J.Obj [ ("kind", J.String "infeasible") ]
  | Cert.Lp_infeasible (Some (Cert.Ray r)) ->
      J.Obj [ ("kind", J.String "infeasible"); ("ray", jfarr r) ]
  | Cert.Lp_infeasible (Some (Cert.Empty_box j)) ->
      J.Obj [ ("kind", J.String "infeasible"); ("empty_box", J.Int j) ]
  | Cert.Lp_unsolved -> J.Obj [ ("kind", J.String "unsolved") ]

let fathom_to_json = function
  | Cert.F_branched { bvar; down_id; down_ub; up_id; up_lb } ->
      J.Obj
        [
          ("kind", J.String "branched");
          ("bvar", J.Int bvar);
          ("down_id", J.Int down_id);
          ("down_ub", jf down_ub);
          ("up_id", J.Int up_id);
          ("up_lb", jf up_lb);
        ]
  | Cert.F_integral -> J.Obj [ ("kind", J.String "integral") ]
  | Cert.F_bound -> J.Obj [ ("kind", J.String "bound") ]
  | Cert.F_dominated -> J.Obj [ ("kind", J.String "dominated") ]
  | Cert.F_infeasible -> J.Obj [ ("kind", J.String "infeasible") ]
  | Cert.F_budget -> J.Obj [ ("kind", J.String "budget") ]

let cert_node_to_json (n : Cert.node) =
  J.Obj
    [
      ("id", J.Int n.Cert.id);
      ("parent", J.Int n.Cert.parent);
      ( "branch",
        match n.Cert.branch with
        | None -> J.Null
        | Some (j, side, v) ->
            J.Obj [ ("j", J.Int j); ("side", side_to_json side); ("v", jf v) ] );
      ("depth", J.Int n.Cert.depth);
      ("domain", J.Int n.Cert.domain);
      ("claim", claim_to_json n.Cert.claim);
      ("bound", jf n.Cert.bound);
      ("incumbent_at", jf n.Cert.incumbent_at);
      ("fathom", fathom_to_json n.Cert.fathom);
    ]

let edit_to_json e =
  J.Obj
    [
      ("j", J.Int e.e_j);
      ("side", side_to_json e.e_side);
      ("v", jf e.e_v);
      ("prev", jf e.e_prev);
    ]

let open_node_to_json o =
  J.Obj
    [
      ("nid", J.Int o.o_nid);
      ("parent", J.Int o.o_parent);
      ("bound", jf o.o_bound);
      ("bvar", J.Int o.o_bvar);
      ("bfrac", jf o.o_bfrac);
      ("dir_up", J.Bool o.o_dir_up);
      ("edits", J.List (List.map edit_to_json o.o_edits));
    ]

let tighten_to_json (t : Cert.tighten) =
  J.Obj
    [
      ("var", J.Int t.Cert.t_var);
      ("hi", J.Bool t.Cert.t_hi);
      ("new", jf t.Cert.t_new);
      ("row", J.Int t.Cert.t_row);
    ]

let cut_to_json (c : Cert.cut) =
  let terms =
    J.List
      (Array.to_list
         (Array.map
            (fun (j, v) -> J.Obj [ ("j", J.Int j); ("c", jf v) ])
            c.Cert.cut_terms))
  in
  let deriv =
    match c.Cert.cut_deriv with
    | Cert.Cg mults ->
        J.Obj
          [
            ("kind", J.String "cg");
            ( "mults",
              J.List
                (Array.to_list
                   (Array.map
                      (fun (i, l) -> J.Obj [ ("i", J.Int i); ("l", jf l) ])
                      mults)) );
          ]
    | Cert.Cover { c_row; members } ->
        J.Obj
          [
            ("kind", J.String "cover");
            ("row", J.Int c_row);
            ("members", jiarr members);
          ]
  in
  J.Obj [ ("terms", terms); ("rhs", jf c.Cert.cut_rhs); ("deriv", deriv) ]

let pc_to_json p =
  J.Obj
    [
      ("dn_sum", jfarr p.dn_sum);
      ("dn_n", jiarr p.dn_n);
      ("up_sum", jfarr p.up_sum);
      ("up_n", jiarr p.up_n);
    ]

let payload_to_json ck =
  J.Obj
    [
      ("fingerprint", J.String ck.fingerprint);
      ("domains", J.Int ck.domains);
      ("next_nid", J.Int ck.next_nid);
      ("nodes_done", J.Int ck.nodes_done);
      ("lp_limited", J.Int ck.lp_limited);
      ("fixed_vars", J.Int ck.fixed_vars);
      ("root_bound", jf ck.root_bound);
      ("root_lb", jfarr ck.root_lb);
      ("root_ub", jfarr ck.root_ub);
      ( "incumbent",
        match ck.incumbent with
        | None -> J.Null
        | Some (x, obj) -> J.Obj [ ("x", jfarr x); ("obj", jf obj) ] );
      ("first_incumbent_s", jf ck.first_incumbent_s);
      ("elapsed_s", jf ck.elapsed_s);
      ("frontier", J.List (List.map open_node_to_json ck.frontier));
      ("pc", J.List (Array.to_list (Array.map pc_to_json ck.pc)));
      ("certs_on", J.Bool ck.certs_on);
      ("cert_nodes", J.List (List.map cert_node_to_json ck.cert_nodes));
      ( "fixes",
        J.List
          (List.map
             (fun (j, s) -> J.Obj [ ("j", J.Int j); ("side", side_to_json s) ])
             ck.fixes) );
      ( "root_duals",
        match ck.root_duals with None -> J.Null | Some d -> jfarr d );
      ("presolve", J.List (List.map tighten_to_json ck.presolve));
      ("cuts", J.List (List.map cut_to_json ck.cuts));
      ("meta", ck.meta);
    ]

(* ---- decoding ------------------------------------------------------- *)

exception Bad of string

let fail fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt

let mem k j =
  match J.member k j with Some v -> v | None -> fail "missing field %S" k

let int_ = function J.Int i -> i | _ -> fail "expected int"
let str_ = function J.String s -> s | _ -> fail "expected string"
let bool_ = function J.Bool b -> b | _ -> fail "expected bool"
let list_ = function J.List l -> l | _ -> fail "expected list"

let flt_ = function
  | J.String s -> (
      match float_of_string_opt s with
      | Some f -> f
      | None -> fail "bad hex float %S" s)
  | _ -> fail "expected hex-float string"

let farr j = Array.of_list (List.map flt_ (list_ j))
let iarr j = Array.of_list (List.map int_ (list_ j))

let side_of_json j =
  match str_ j with
  | "lower" -> Cert.Lower
  | "upper" -> Cert.Upper
  | s -> fail "bad side %S" s

let claim_of_json j =
  match str_ (mem "kind" j) with
  | "optimal" ->
      Cert.Lp_optimal { obj = flt_ (mem "obj" j); duals = farr (mem "duals" j) }
  | "infeasible" -> (
      match (J.member "ray" j, J.member "empty_box" j) with
      | Some r, _ -> Cert.Lp_infeasible (Some (Cert.Ray (farr r)))
      | None, Some b -> Cert.Lp_infeasible (Some (Cert.Empty_box (int_ b)))
      | None, None -> Cert.Lp_infeasible None)
  | "unsolved" -> Cert.Lp_unsolved
  | s -> fail "bad claim kind %S" s

let fathom_of_json j =
  match str_ (mem "kind" j) with
  | "branched" ->
      Cert.F_branched
        {
          bvar = int_ (mem "bvar" j);
          down_id = int_ (mem "down_id" j);
          down_ub = flt_ (mem "down_ub" j);
          up_id = int_ (mem "up_id" j);
          up_lb = flt_ (mem "up_lb" j);
        }
  | "integral" -> Cert.F_integral
  | "bound" -> Cert.F_bound
  | "dominated" -> Cert.F_dominated
  | "infeasible" -> Cert.F_infeasible
  | "budget" -> Cert.F_budget
  | s -> fail "bad fathom kind %S" s

let cert_node_of_json j : Cert.node =
  {
    Cert.id = int_ (mem "id" j);
    parent = int_ (mem "parent" j);
    branch =
      (match mem "branch" j with
      | J.Null -> None
      | b ->
          Some (int_ (mem "j" b), side_of_json (mem "side" b), flt_ (mem "v" b)));
    depth = int_ (mem "depth" j);
    domain = int_ (mem "domain" j);
    claim = claim_of_json (mem "claim" j);
    bound = flt_ (mem "bound" j);
    incumbent_at = flt_ (mem "incumbent_at" j);
    fathom = fathom_of_json (mem "fathom" j);
  }

let edit_of_json j =
  {
    e_j = int_ (mem "j" j);
    e_side = side_of_json (mem "side" j);
    e_v = flt_ (mem "v" j);
    e_prev = flt_ (mem "prev" j);
  }

let open_node_of_json j =
  {
    o_nid = int_ (mem "nid" j);
    o_parent = int_ (mem "parent" j);
    o_bound = flt_ (mem "bound" j);
    o_bvar = int_ (mem "bvar" j);
    o_bfrac = flt_ (mem "bfrac" j);
    o_dir_up = bool_ (mem "dir_up" j);
    o_edits = List.map edit_of_json (list_ (mem "edits" j));
  }

let pc_of_json j =
  {
    dn_sum = farr (mem "dn_sum" j);
    dn_n = iarr (mem "dn_n" j);
    up_sum = farr (mem "up_sum" j);
    up_n = iarr (mem "up_n" j);
  }

let tighten_of_json j : Cert.tighten =
  {
    Cert.t_var = int_ (mem "var" j);
    t_hi = bool_ (mem "hi" j);
    t_new = flt_ (mem "new" j);
    t_row = int_ (mem "row" j);
  }

let cut_of_json j : Cert.cut =
  {
    Cert.cut_terms =
      Array.of_list
        (List.map
           (fun t -> (int_ (mem "j" t), flt_ (mem "c" t)))
           (list_ (mem "terms" j)));
    cut_rhs = flt_ (mem "rhs" j);
    cut_deriv =
      (let d = mem "deriv" j in
       match str_ (mem "kind" d) with
       | "cg" ->
           Cert.Cg
             (Array.of_list
                (List.map
                   (fun m -> (int_ (mem "i" m), flt_ (mem "l" m)))
                   (list_ (mem "mults" d))))
       | "cover" ->
           Cert.Cover
             { c_row = int_ (mem "row" d); members = iarr (mem "members" d) }
       | s -> fail "bad cut derivation kind %S" s);
  }

let payload_of_json j =
  {
    fingerprint = str_ (mem "fingerprint" j);
    domains = int_ (mem "domains" j);
    next_nid = int_ (mem "next_nid" j);
    nodes_done = int_ (mem "nodes_done" j);
    lp_limited = int_ (mem "lp_limited" j);
    fixed_vars = int_ (mem "fixed_vars" j);
    root_bound = flt_ (mem "root_bound" j);
    root_lb = farr (mem "root_lb" j);
    root_ub = farr (mem "root_ub" j);
    incumbent =
      (match mem "incumbent" j with
      | J.Null -> None
      | inc -> Some (farr (mem "x" inc), flt_ (mem "obj" inc)));
    first_incumbent_s = flt_ (mem "first_incumbent_s" j);
    elapsed_s = flt_ (mem "elapsed_s" j);
    frontier = List.map open_node_of_json (list_ (mem "frontier" j));
    pc = Array.of_list (List.map pc_of_json (list_ (mem "pc" j)));
    certs_on = bool_ (mem "certs_on" j);
    cert_nodes = List.map cert_node_of_json (list_ (mem "cert_nodes" j));
    fixes =
      List.map
        (fun f -> (int_ (mem "j" f), side_of_json (mem "side" f)))
        (list_ (mem "fixes" j));
    root_duals =
      (match mem "root_duals" j with J.Null -> None | d -> Some (farr d));
    (* Absent in files written before presolve/cuts existed: default to
       empty rather than failing, so v1 checkpoints stay readable. *)
    presolve =
      (match J.member "presolve" j with
      | None -> []
      | Some l -> List.map tighten_of_json (list_ l));
    cuts =
      (match J.member "cuts" j with
      | None -> []
      | Some l -> List.map cut_of_json (list_ l));
    meta = mem "meta" j;
  }

(* ---- file I/O ------------------------------------------------------- *)

(* The checksum covers the serialized payload text. Because every float
   travels as a string, parse-then-reemit reproduces the writer's bytes
   exactly, so the reader can recompute the digest from the parsed
   tree. *)
let to_json ck =
  let payload = payload_to_json ck in
  let digest = Digest.to_hex (Digest.string (J.to_string payload)) in
  J.Obj
    [
      ("schema", J.String schema);
      ("checksum", J.String digest);
      ("payload", payload);
    ]

let of_json j =
  match J.member "schema" j with
  | Some (J.String s) when s = schema -> (
      match (J.member "checksum" j, J.member "payload" j) with
      | Some (J.String digest), Some payload ->
          let actual = Digest.to_hex (Digest.string (J.to_string payload)) in
          if actual <> digest then
            Error "checkpoint checksum mismatch (torn or corrupted file)"
          else (
            match payload_of_json payload with
            | ck -> Ok ck
            | exception Bad m -> Error ("malformed checkpoint: " ^ m))
      | _ -> Error "checkpoint missing checksum or payload")
  | Some (J.String s) -> Error (Printf.sprintf "unknown checkpoint schema %S" s)
  | _ -> Error "not a pipesyn checkpoint (no schema field)"

let write ~path ck =
  let s = J.to_string (to_json ck) in
  if Resilience.Fault.fires "milp.checkpoint_torn" then begin
    (* Injected torn write: half the bytes land under the real name with
       no rename barrier — exactly the failure the checksum must catch. *)
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (String.sub s 0 (String.length s / 2)))
  end
  else begin
    let tmp = path ^ ".tmp" in
    let oc = open_out tmp in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        output_string oc s;
        output_char oc '\n');
    Sys.rename tmp path
  end

let read ~path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error m -> Error ("cannot read checkpoint: " ^ m)
  | s -> (
      match J.of_string (String.trim s) with
      | Error m -> Error ("checkpoint is not valid JSON (torn?): " ^ m)
      | Ok j -> of_json j)
