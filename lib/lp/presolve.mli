(** Root presolve: activity-based bound tightening and a standalone
    reduce/postsolve pass (DESIGN.md §3j).

    {!tighten} is the certificate-logged, index-preserving layer used by
    {!Milp} at the root: it only shrinks the variable box, and every
    emitted event is pre-verified in exact arithmetic ({!Qd}) under the
    same condition the audit re-checks (CERT111). Clique-style fixing
    over 0/1 variables falls out of activity propagation through [=]
    rows (one member of a one-hot row pinned to 1 forces the siblings'
    upper bounds to 0 in the same fixpoint).

    {!reduce} additionally eliminates singleton rows, redundant rows,
    unused/fixed columns and strengthens binary coefficients
    (Savelsbergh), returning a smaller model plus an invertible
    {!postsolve} map. It is not certificate-logged and therefore never
    runs inside a certified MILP solve — it serves standalone LP/MILP
    callers, benchmarks and tests. *)

val tighten :
  ?max_passes:int ->
  Model.raw ->
  float array * float array * Cert.tighten list
(** [tighten raw] runs the bound-tightening fixpoint (default at most
    [10] passes) from [raw]'s box and returns [(lb, ub, events)]: the
    tightened box plus the ordered event log the audit replays. Events
    that fail their own exact validity check are dropped, never applied,
    so the returned box is always implied by the model. Tightenings that
    would cross the box (prove infeasibility) are also skipped — the
    root LP discovers infeasibility with a proper Farkas certificate
    instead. *)

type postsolve
(** Invertible map from a reduced model back to original variable and
    row space. *)

val reduce : ?max_passes:int -> Model.raw -> Model.raw * postsolve
(** [reduce raw] returns the reduced model and its postsolve map.
    Solutions of the reduced model extend to solutions of [raw] with the
    same objective value (eliminated columns sit at recorded values). *)

val restore : postsolve -> float array -> float array
(** Map a reduced-space solution vector back to original space. *)

val restore_duals : postsolve -> float array -> float array
(** Map reduced-space row duals back to original rows; dropped rows get
    multiplier [0] (they were implied, so this preserves the dual
    bound). *)

val stats : postsolve -> (string * int) list
(** Reduction counters: [rows_dropped], [cols_fixed],
    [coeffs_strengthened], [bounds_tightened]. *)
