(* Exact dyadic-rational arithmetic for the certificate audit.

   Every number the solver touches — model coefficients, bounds, duals,
   objectives — is an IEEE-754 double, i.e. a dyadic rational m·2^e with
   |m| < 2^53. The audit only ever needs ring operations on such numbers
   (sums of products: row evaluations, Neumaier–Shcherbina safe bounds,
   Farkas aggregation) plus comparisons, so a dyadic representation with
   an arbitrary-precision integer mantissa is closed under everything we
   do: no division, no gcd, no rounding, ever. This keeps the checker
   self-contained — no zarith, per the no-new-dependencies rule.

   The mantissa is a sign-magnitude bignum in base 2^24 (products of two
   limbs fit comfortably in OCaml's 63-bit native ints). *)

let base_bits = 24
let base = 1 lsl base_bits
let mask = base - 1

(* Little-endian limbs, no high zero limbs. [||] encodes zero. *)
type mag = int array

type t = { sg : int; mg : mag; ex : int }
(* value = sg · (Σ mg.(i)·2^(24·i)) · 2^ex,  sg ∈ {-1,0,+1}, sg = 0 ⇔ mg = [||] *)

let zero = { sg = 0; mg = [||]; ex = 0 }

(* ---------------- magnitude primitives ---------------- *)

let mnorm (a : mag) : mag =
  let k = ref (Array.length a) in
  while !k > 0 && a.(!k - 1) = 0 do
    decr k
  done;
  if !k = Array.length a then a else Array.sub a 0 !k

let mcmp (a : mag) (b : mag) =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then compare la lb
  else begin
    let rec go i = if i < 0 then 0 else if a.(i) <> b.(i) then compare a.(i) b.(i) else go (i - 1) in
    go (la - 1)
  end

let madd (a : mag) (b : mag) : mag =
  let la = Array.length a and lb = Array.length b in
  let l = max la lb + 1 in
  let r = Array.make l 0 in
  let carry = ref 0 in
  for i = 0 to l - 1 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    r.(i) <- s land mask;
    carry := s lsr base_bits
  done;
  mnorm r

(* requires a >= b *)
let msub (a : mag) (b : mag) : mag =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin
      r.(i) <- d + base;
      borrow := 1
    end
    else begin
      r.(i) <- d;
      borrow := 0
    end
  done;
  mnorm r

let mmul (a : mag) (b : mag) : mag =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let ai = a.(i) in
      if ai <> 0 then begin
        let carry = ref 0 in
        for j = 0 to lb - 1 do
          (* ai·bj < 2^48; + r + carry stays well under 2^62 *)
          let s = r.(i + j) + (ai * b.(j)) + !carry in
          r.(i + j) <- s land mask;
          carry := s lsr base_bits
        done;
        let k = ref (i + lb) in
        while !carry <> 0 do
          let s = r.(!k) + !carry in
          r.(!k) <- s land mask;
          carry := s lsr base_bits;
          incr k
        done
      end
    done;
    mnorm r
  end

(* a · 2^k, k >= 0 *)
let mshift (a : mag) k : mag =
  if Array.length a = 0 || k = 0 then a
  else begin
    let limbs = k / base_bits and bits = k mod base_bits in
    let la = Array.length a in
    let r = Array.make (la + limbs + 1) 0 in
    let carry = ref 0 in
    for i = 0 to la - 1 do
      let s = (a.(i) lsl bits) lor !carry in
      r.(i + limbs) <- s land mask;
      carry := s lsr base_bits
    done;
    r.(la + limbs) <- !carry;
    mnorm r
  end

(* strip low zero limbs into the exponent to keep numbers short *)
let canon sg mg ex =
  let mg = mnorm mg in
  if Array.length mg = 0 then zero
  else begin
    let z = ref 0 in
    while mg.(!z) = 0 do
      incr z
    done;
    if !z = 0 then { sg; mg; ex }
    else
      { sg; mg = Array.sub mg !z (Array.length mg - !z); ex = ex + (base_bits * !z) }
  end

(* ---------------- constructors ---------------- *)

let mag_of_abs_int v =
  if v = 0 then [||]
  else begin
    let rec count v acc = if v = 0 then acc else count (v lsr base_bits) (acc + 1) in
    let l = count v 0 in
    Array.init l (fun i -> (v lsr (base_bits * i)) land mask)
  end

let of_int v =
  if v = 0 then zero
  else canon (if v < 0 then -1 else 1) (mag_of_abs_int (abs v)) 0

let two_pow_53 = 9007199254740992.0

let of_float f =
  if f = 0.0 then zero
  else if not (Float.is_finite f) then invalid_arg "Qd.of_float: non-finite"
  else begin
    let m, e = Float.frexp (Float.abs f) in
    (* m ∈ [0.5, 1); m·2^53 is an exact integer < 2^53 *)
    let mi = Int64.to_int (Int64.of_float (m *. two_pow_53)) in
    canon (if f < 0.0 then -1 else 1) (mag_of_abs_int mi) (e - 53)
  end

(* ---------------- ring operations ---------------- *)

let neg a = if a.sg = 0 then a else { a with sg = -a.sg }

(* align two numbers to a common exponent *)
let aligned a b =
  if a.sg = 0 then (a.mg, b.mg, b.ex)
  else if b.sg = 0 then (a.mg, b.mg, a.ex)
  else begin
    let e = min a.ex b.ex in
    (mshift a.mg (a.ex - e), mshift b.mg (b.ex - e), e)
  end

let add a b =
  if a.sg = 0 then b
  else if b.sg = 0 then a
  else begin
    let ma, mb, e = aligned a b in
    if a.sg = b.sg then canon a.sg (madd ma mb) e
    else begin
      match mcmp ma mb with
      | 0 -> zero
      | c when c > 0 -> canon a.sg (msub ma mb) e
      | _ -> canon b.sg (msub mb ma) e
    end
  end

let sub a b = add a (neg b)

let mul a b =
  if a.sg = 0 || b.sg = 0 then zero
  else canon (a.sg * b.sg) (mmul a.mg b.mg) (a.ex + b.ex)

let sign a = a.sg
let is_zero a = a.sg = 0

let compare a b =
  if a.sg <> b.sg then compare a.sg b.sg
  else if a.sg = 0 then 0
  else begin
    let ma, mb, _ = aligned a b in
    a.sg * mcmp ma mb
  end

let equal a b = compare a b = 0
let min a b = if compare a b <= 0 then a else b
let lt a b = compare a b < 0
let leq a b = compare a b <= 0
let geq a b = compare a b >= 0

(* Is the value an integer? True iff no fractional bits survive. *)
let is_integer a =
  a.sg = 0 || a.ex >= 0
  ||
  let frac_bits = -a.ex in
  let full = frac_bits / base_bits and rest = frac_bits mod base_bits in
  let l = Array.length a.mg in
  let ok = ref true in
  for i = 0 to Stdlib.min full l - 1 do
    if a.mg.(i) <> 0 then ok := false
  done;
  if !ok && rest > 0 && full < l then
    if a.mg.(full) land ((1 lsl rest) - 1) <> 0 then ok := false;
  !ok && full <= l

(* Approximate float for messages only; may overflow to infinity. *)
let to_float a =
  if a.sg = 0 then 0.0
  else begin
    let l = Array.length a.mg in
    (* top three limbs carry >= 53 significant bits *)
    let acc = ref 0.0 in
    let lo = Stdlib.max 0 (l - 3) in
    for i = l - 1 downto lo do
      acc := (!acc *. float_of_int base) +. float_of_int a.mg.(i)
    done;
    float_of_int a.sg *. Float.ldexp !acc (a.ex + (base_bits * lo))
  end

let pp ppf a = Fmt.pf ppf "%.17g" (to_float a)

(* Exact dot-product accumulator: fold of add/mul without intermediate
   rounding. [dot f n] sums f i for i in [0, n). *)
let sum n f =
  let acc = ref zero in
  for i = 0 to n - 1 do
    acc := add !acc (f i)
  done;
  !acc
