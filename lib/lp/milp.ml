type status = Optimal | Feasible | Infeasible | Unbounded | Unknown

type stats = {
  nodes : int;
  lp_iterations : int;
  elapsed : float;
  root_bound : float;
  gap : float;
  lp_limited : int;
}

type result = {
  status : status;
  x : float array;
  objective : float;
  stats : stats;
}

let src = Logs.Src.create "lp.milp" ~doc:"branch and bound"

module Log = (val Logs.src_log src : Logs.LOG)

(* Instrumentation (lib/obs): cumulative across solves; reset by the
   driver. Purely observational — branching decisions never read it. *)
let c_solves = Obs.Counter.get "milp.solves"
let c_nodes = Obs.Counter.get "milp.bnb_nodes"
let c_pivots = Obs.Counter.get "milp.lp_pivots"
let c_incumbents = Obs.Counter.get "milp.incumbents"
let s_incumbents = Obs.Series.get "milp.incumbents"
let s_gap = Obs.Series.get "milp.exit_gap"
let t_solve = Obs.Timer.get "milp.solve"

type node = { nlb : float array; nub : float array; bound : float; depth : int }

let most_fractional raw ~int_tol ?priority x =
  let best = ref (-1) and best_frac = ref int_tol and best_prio = ref min_int in
  let prio j = match priority with None -> 0 | Some p -> p.(j) in
  Array.iteri
    (fun j isint ->
      if isint then begin
        let v = x.(j) in
        let frac = Float.abs (v -. Float.round v) in
        if frac > int_tol then begin
          let p = prio j in
          if p > !best_prio || (p = !best_prio && frac > !best_frac) then begin
            best := j;
            best_frac := frac;
            best_prio := p
          end
        end
      end)
    raw.Model.integer;
  !best

let snap raw ~int_tol x =
  Array.mapi
    (fun j v ->
      if raw.Model.integer.(j) && Float.abs (v -. Float.round v) <= 100. *. int_tol
      then Float.round v
      else v)
    x

let solve ?(time_limit = 60.0) ?(node_limit = 200_000) ?(max_lp_iters = 50_000)
    ?(gap_tol = 1e-6) ?(int_tol = 1e-6)
    ?(deadline = Resilience.Deadline.none) ?incumbent ?branch_priority model =
  Obs.Timer.span t_solve @@ fun () ->
  Obs.Counter.incr c_solves;
  if Resilience.Fault.fires "milp.raise" then
    failwith "injected fault: milp.raise";
  (* The injected timeout models "budget exhausted before any incumbent":
     warm-start seeding is skipped so the solve reports Unknown, the
     hardest failure the cascade must absorb. *)
  let injected_timeout = Resilience.Fault.fires "milp.timeout" in
  (* Deadline-aware budget: whichever of the caller's deadline and the
     local time budget is tighter governs both the node loop and — via
     Simplex — every pivot inside a node. *)
  let dl = Resilience.Deadline.clip deadline ~budget:time_limit in
  let raw = Model.to_raw model in
  let t0 = Sys.time () in
  let elapsed () = Sys.time () -. t0 in
  let best_x = ref None in
  let best_obj = ref infinity in
  (match incumbent with
  | _ when injected_timeout -> ()
  | None -> ()
  | Some x ->
      if Array.length x <> raw.n then
        invalid_arg "Milp.solve: incumbent length mismatch";
      (match Model.check model ~values:(fun v -> x.(Model.var_index v)) () with
      | Error msg -> invalid_arg ("Milp.solve: infeasible incumbent: " ^ msg)
      | Ok () -> ());
      best_x := Some (Array.copy x);
      best_obj := Array.fold_left ( +. ) 0.0 (Array.mapi (fun j v -> raw.obj.(j) *. v) x);
      Obs.Counter.incr c_incumbents;
      Obs.Series.add s_incumbents ~x:(elapsed ()) ~y:!best_obj);
  let nodes = ref 0 and lp_iters = ref 0 in
  let lp_limited = ref 0 in
  let root_bound = ref neg_infinity in
  let stack = ref [] in
  let push n = stack := n :: !stack in
  let budget_hit = ref false in
  let infeasible_root = ref false in
  let unbounded_root = ref false in
  push { nlb = Array.copy raw.lb; nub = Array.copy raw.ub; bound = neg_infinity; depth = 0 };
  let continue_ = ref true in
  while !continue_ do
    match !stack with
    | [] -> continue_ := false
    | node :: rest ->
        stack := rest;
        if
          injected_timeout
          || Resilience.Deadline.expired dl
          || !nodes >= node_limit
        then begin
          budget_hit := true;
          continue_ := false
        end
        else if node.bound >= !best_obj -. 1e-9 && !best_x <> None then
          (* parent bound already dominated by the incumbent *)
          ()
        else begin
          incr nodes;
          let r =
            Simplex.solve ~max_iters:max_lp_iters ~deadline:dl ~lb:node.nlb
              ~ub:node.nub raw
          in
          lp_iters := !lp_iters + r.iterations;
          if node.depth = 0 then begin
            root_bound := r.objective;
            match r.status with
            | Simplex.Infeasible -> infeasible_root := true
            | Simplex.Unbounded -> unbounded_root := true
            | Simplex.Optimal | Simplex.Iteration_limit | Simplex.Time_limit
              -> ()
          end;
          match r.status with
          | Simplex.Infeasible -> ()
          | Simplex.Unbounded ->
              (* With integer bounds intact this means the MILP is unbounded
                 (or numerically hopeless); stop exploring. *)
              continue_ := false
          | Simplex.Time_limit ->
              (* The deadline ran out mid-pivot: stop and report the best
                 incumbent, exactly like the between-node budget check. *)
              budget_hit := true;
              continue_ := false
          | Simplex.Iteration_limit ->
              (* Pruning an unsolved subproblem is unsound for optimality
                 claims, so count it: any such node demotes Optimal to
                 Feasible below. *)
              incr lp_limited;
              Log.warn (fun f ->
                  f "LP iteration limit at node %d (depth %d); pruning" !nodes
                    node.depth)
          | Simplex.Optimal ->
              if r.objective >= !best_obj -. 1e-9 && !best_x <> None then ()
              else begin
                let j =
                  most_fractional raw ~int_tol ?priority:branch_priority r.x
                in
                if j < 0 then begin
                  (* integral: new incumbent *)
                  let x = snap raw ~int_tol r.x in
                  let obj =
                    Array.fold_left ( +. ) 0.0
                      (Array.mapi (fun j v -> raw.obj.(j) *. v) x)
                  in
                  if obj < !best_obj -. 1e-9 then begin
                    best_obj := obj;
                    best_x := Some x;
                    Obs.Counter.incr c_incumbents;
                    Obs.Series.add s_incumbents ~x:(elapsed ()) ~y:obj;
                    Log.info (fun f ->
                        f "incumbent %.6g at node %d depth %d" obj !nodes
                          node.depth)
                  end
                end
                else begin
                  let v = r.x.(j) in
                  let fl = Float.of_int (int_of_float (floor v)) in
                  let down_ub = Array.copy node.nub in
                  down_ub.(j) <- fl;
                  let up_lb = Array.copy node.nlb in
                  up_lb.(j) <- fl +. 1.0;
                  let down =
                    { nlb = node.nlb; nub = down_ub; bound = r.objective;
                      depth = node.depth + 1 }
                  and up =
                    { nlb = up_lb; nub = node.nub; bound = r.objective;
                      depth = node.depth + 1 }
                  in
                  (* Dive toward the nearest integer first. *)
                  if v -. fl <= 0.5 then begin
                    push up;
                    push down
                  end
                  else begin
                    push down;
                    push up
                  end
                end
              end
        end
  done;
  let open_bound =
    List.fold_left (fun acc n -> min acc n.bound) infinity !stack
  in
  (* A node LP that hit its iteration cap was pruned unsolved, so neither
     "stack empty" nor a closed gap proves optimality. *)
  let clean = !lp_limited = 0 in
  let proved = (not !budget_hit) && !stack = [] && clean in
  let constant = Model.objective_constant model in
  let gap =
    match !best_x with
    | None -> infinity
    | Some _ ->
        if proved then 0.0
        else
          let lo = min open_bound !best_obj in
          let lo = if Float.is_finite lo then lo else !root_bound in
          Float.abs (!best_obj -. lo) /. Float.max 1.0 (Float.abs !best_obj)
  in
  let stats =
    {
      nodes = !nodes;
      lp_iterations = !lp_iters;
      elapsed = elapsed ();
      root_bound = !root_bound +. constant;
      gap;
      lp_limited = !lp_limited;
    }
  in
  Obs.Counter.incr ~by:stats.nodes c_nodes;
  Obs.Counter.incr ~by:stats.lp_iterations c_pivots;
  Obs.Series.add s_gap ~x:stats.elapsed ~y:stats.gap;
  match !best_x with
  | Some x ->
      let status =
        if proved || (clean && gap <= gap_tol) then Optimal else Feasible
      in
      { status; x; objective = !best_obj +. constant; stats }
  | None ->
      let status =
        if !unbounded_root then Unbounded
        else if !infeasible_root && not !budget_hit then Infeasible
        else if proved then Infeasible
        else Unknown
      in
      { status; x = Array.make raw.n 0.0; objective = infinity; stats }

let value r v = r.x.(Model.var_index v)
let int_value r v = int_of_float (Float.round (value r v))

let pp_status ppf = function
  | Optimal -> Fmt.string ppf "optimal"
  | Feasible -> Fmt.string ppf "feasible"
  | Infeasible -> Fmt.string ppf "infeasible"
  | Unbounded -> Fmt.string ppf "unbounded"
  | Unknown -> Fmt.string ppf "unknown"

let pp_stats ppf s =
  Fmt.pf ppf "%d nodes, %d pivots, %.2fs, gap %.2g%%" s.nodes s.lp_iterations
    s.elapsed (100.0 *. s.gap);
  if s.lp_limited > 0 then
    Fmt.pf ppf ", %d LP limit hit%s" s.lp_limited
      (if s.lp_limited = 1 then "" else "s")
