type status = Optimal | Feasible | Infeasible | Unbounded | Unknown

type stats = {
  nodes : int;
  lp_iterations : int;
  elapsed : float;
  root_bound : float;
  gap : float;
  lp_limited : int;
  warm_hits : int;
  fixed_vars : int;
  first_incumbent_s : float;
}

type result = {
  status : status;
  x : float array;
  objective : float;
  stats : stats;
}

let src = Logs.Src.create "lp.milp" ~doc:"branch and bound"

module Log = (val Logs.src_log src : Logs.LOG)

(* Instrumentation (lib/obs): cumulative across solves; reset by the
   driver. Purely observational — branching decisions never read it. *)
let c_solves = Obs.Counter.get "milp.solves"
let c_nodes = Obs.Counter.get "milp.bnb_nodes"
let c_pivots = Obs.Counter.get "milp.lp_pivots"
let c_incumbents = Obs.Counter.get "milp.incumbents"
let c_warm_hits = Obs.Counter.get "milp.warm_hits"
let c_fixed_vars = Obs.Counter.get "milp.fixed_vars"
let s_incumbents = Obs.Series.get "milp.incumbents"
let s_gap = Obs.Series.get "milp.exit_gap"
let s_conv = Obs.Series.get "milp.convergence"
let t_solve = Obs.Timer.get "milp.solve"

let status_label = function
  | Simplex.Optimal -> "optimal"
  | Simplex.Infeasible -> "infeasible"
  | Simplex.Unbounded -> "unbounded"
  | Simplex.Iteration_limit -> "iter_limit"
  | Simplex.Time_limit -> "time_limit"

(* PIPESYN_COLD_START (any non-empty value) forces the pre-warm-start
   behaviour — cold per-node LPs, most-fractional branching, no bound
   fixing — for A/B comparison. Read per solve so tests can toggle it. *)
let cold_start_forced () =
  match Sys.getenv_opt "PIPESYN_COLD_START" with
  | None | Some "" -> false
  | Some _ -> true

(* ------------------------------------------------------------------ *)
(* Node bounds: copy-on-branch chains                                  *)
(* ------------------------------------------------------------------ *)

(* A node's bounds are the root arrays plus a chain of single-entry
   tightenings, one [Tighten] per branch. Invariants: every chain entry is
   allocated once at branch time — while the parent's bounds are the
   materialized ones, so [prev] is exactly the parent's value — and never
   mutated afterwards; the root arrays are only mutated before the first
   branch (reduced-cost fixing). A node therefore costs O(1) memory
   instead of two O(n) array copies, and switching the working arrays
   between two nodes costs O(distance through their lowest common
   ancestor), not O(n). *)
type side = Lb | Ub

type chain =
  | Root
  | Tighten of {
      j : int;
      side : side;
      v : float;  (** bound value at and below this node *)
      prev : float;  (** the parent's value, for undo *)
      depth : int;
      parent : chain;
    }

let chain_depth = function Root -> 0 | Tighten t -> t.depth

let apply_entry lb ub = function
  | Root -> ()
  | Tighten t -> (
      match t.side with Lb -> lb.(t.j) <- t.v | Ub -> ub.(t.j) <- t.v)

let undo_entry lb ub = function
  | Root -> ()
  | Tighten t -> (
      match t.side with Lb -> lb.(t.j) <- t.prev | Ub -> ub.(t.j) <- t.prev)

(* Rewrite [lb]/[ub] (currently holding [from_]'s bounds) into [target]'s
   bounds: undo up to the common ancestor, re-apply down to [target].
   Undos run deepest-first and applies shallowest-first, so stacked
   changes to the same variable resolve correctly. *)
let goto ~lb ~ub ~from_ target =
  let rec undo_to c d =
    match c with
    | Tighten t when t.depth > d ->
        undo_entry lb ub c;
        undo_to t.parent d
    | c -> c
  in
  let rec collect_to c d acc =
    match c with
    | Tighten t when t.depth > d -> collect_to t.parent d (c :: acc)
    | c -> (c, acc)
  in
  let rec meet a b acc =
    if a == b then acc
    else
      match (a, b) with
      | Tighten ta, Tighten tb ->
          undo_entry lb ub a;
          meet ta.parent tb.parent (b :: acc)
      | _ -> acc (* both Root *)
  in
  let d = min (chain_depth from_) (chain_depth target) in
  let a = undo_to from_ d in
  let b, applies = collect_to target d [] in
  let applies = meet a b applies in
  List.iter (apply_entry lb ub) applies

type node = {
  bounds : chain;
  bound : float;  (** parent LP objective: the node's dual bound *)
  bvar : int;  (** variable branched to create this node; -1 at root *)
  bfrac : float;  (** fractional part of [bvar] in the parent LP *)
  dir_up : bool;  (** up child ([lb := ceil]) vs down child ([ub := floor]) *)
}

(* ------------------------------------------------------------------ *)
(* Branching                                                           *)
(* ------------------------------------------------------------------ *)

let most_fractional raw ~int_tol ?priority x =
  let best = ref (-1) and best_frac = ref int_tol and best_prio = ref min_int in
  let prio j = match priority with None -> 0 | Some p -> p.(j) in
  Array.iteri
    (fun j isint ->
      if isint then begin
        let v = x.(j) in
        let frac = Float.abs (v -. Float.round v) in
        if frac > int_tol then begin
          let p = prio j in
          if p > !best_prio || (p = !best_prio && frac > !best_frac) then begin
            best := j;
            best_frac := frac;
            best_prio := p
          end
        end
      end)
    raw.Model.integer;
  !best

(* Per-variable pseudocosts: observed objective degradation per unit of
   fractional distance, separately for the down and up branch. *)
type pseudocost = {
  dn_sum : float array;
  dn_n : int array;
  up_sum : float array;
  up_n : int array;
}

let pc_create n =
  {
    dn_sum = Array.make n 0.0;
    dn_n = Array.make n 0;
    up_sum = Array.make n 0.0;
    up_n = Array.make n 0;
  }

let pc_record pc ~j ~dir_up ~unit ~degrade =
  if unit > 1e-9 then
    if dir_up then begin
      pc.up_sum.(j) <- pc.up_sum.(j) +. (degrade /. unit);
      pc.up_n.(j) <- pc.up_n.(j) + 1
    end
    else begin
      pc.dn_sum.(j) <- pc.dn_sum.(j) +. (degrade /. unit);
      pc.dn_n.(j) <- pc.dn_n.(j) + 1
    end

(* Pseudocost branching seeded by priority: within the highest priority
   class having any fractionality, maximize the product of estimated
   degradations. Uninitialized variables use the average observed
   pseudocost; before any observation that degenerates to f·(1−f),
   i.e. plain most-fractional. *)
let pseudocost_branch raw ~int_tol ?priority pc x =
  let avg sum n =
    let tot = ref 0.0 and cnt = ref 0 in
    Array.iteri
      (fun j c ->
        if c > 0 then begin
          tot := !tot +. (sum.(j) /. float_of_int c);
          incr cnt
        end)
      n;
    if !cnt > 0 then !tot /. float_of_int !cnt else 1.0
  in
  let avg_dn = avg pc.dn_sum pc.dn_n and avg_up = avg pc.up_sum pc.up_n in
  let prio j = match priority with None -> 0 | Some p -> p.(j) in
  let best = ref (-1)
  and best_score = ref neg_infinity
  and best_frac = ref 0.0
  and best_prio = ref min_int in
  Array.iteri
    (fun j isint ->
      if isint then begin
        let v = x.(j) in
        let frac = Float.abs (v -. Float.round v) in
        if frac > int_tol then begin
          let p = prio j in
          let fdn = v -. Float.floor v in
          let fup = 1.0 -. fdn in
          let pcd =
            if pc.dn_n.(j) > 0 then pc.dn_sum.(j) /. float_of_int pc.dn_n.(j)
            else avg_dn
          and pcu =
            if pc.up_n.(j) > 0 then pc.up_sum.(j) /. float_of_int pc.up_n.(j)
            else avg_up
          in
          let score =
            Float.max 1e-9 (fdn *. pcd) *. Float.max 1e-9 (fup *. pcu)
          in
          if
            p > !best_prio
            || (p = !best_prio
               && (score > !best_score +. 1e-12
                  || (score > !best_score -. 1e-12 && frac > !best_frac)))
          then begin
            best := j;
            best_score := score;
            best_frac := frac;
            best_prio := p
          end
        end
      end)
    raw.Model.integer;
  !best

let snap raw ~int_tol x =
  Array.mapi
    (fun j v ->
      if raw.Model.integer.(j) && Float.abs (v -. Float.round v) <= 100. *. int_tol
      then Float.round v
      else v)
    x

let solve ?(time_limit = 60.0) ?(node_limit = 200_000) ?(max_lp_iters = 50_000)
    ?(gap_tol = 1e-6) ?(int_tol = 1e-6)
    ?(deadline = Resilience.Deadline.none) ?incumbent ?branch_priority model =
  Obs.Timer.span t_solve @@ fun () ->
  Obs.Trace.span ~cat:"milp" "milp.solve" @@ fun () ->
  Obs.Counter.incr c_solves;
  if Resilience.Fault.fires "milp.raise" then
    failwith "injected fault: milp.raise";
  (* The injected timeout models "budget exhausted before any incumbent":
     warm-start seeding is skipped so the solve reports Unknown, the
     hardest failure the cascade must absorb. *)
  let injected_timeout = Resilience.Fault.fires "milp.timeout" in
  let cold_mode = cold_start_forced () in
  (* Deadline-aware budget: whichever of the caller's deadline and the
     local time budget is tighter governs both the node loop and — via
     Simplex — every pivot inside a node. *)
  let dl = Resilience.Deadline.clip deadline ~budget:time_limit in
  let raw = Model.to_raw model in
  let t0 = Sys.time () in
  let elapsed () = Sys.time () -. t0 in
  let best_x = ref None in
  let best_obj = ref infinity in
  let first_inc = ref Float.nan in
  (* Convergence timeline: one point (and one trace instant) per
     incumbent, carrying the relative incumbent/bound gap at that
     moment. Observational only. *)
  let note_incumbent ~obj ~gap ~node ~depth ~seeded =
    if Float.is_nan !first_inc then first_inc := elapsed ();
    Obs.Series.add s_conv ~x:(elapsed ()) ~y:gap;
    if Obs.Trace.enabled () then
      Obs.Trace.instant ~cat:"milp" "milp.incumbent"
        ~args:
          [
            ("objective", Obs.Json.Float obj);
            ("gap", Obs.Json.Float gap);
            ("node", Obs.Json.Int node);
            ("depth", Obs.Json.Int depth);
            ("seeded", Obs.Json.Bool seeded);
          ]
  in
  (match incumbent with
  | _ when injected_timeout -> ()
  | None -> ()
  | Some x ->
      if Array.length x <> raw.n then
        invalid_arg "Milp.solve: incumbent length mismatch";
      (match Model.check model ~values:(fun v -> x.(Model.var_index v)) () with
      | Error msg -> invalid_arg ("Milp.solve: infeasible incumbent: " ^ msg)
      | Ok () -> ());
      best_x := Some (Array.copy x);
      best_obj := Array.fold_left ( +. ) 0.0 (Array.mapi (fun j v -> raw.obj.(j) *. v) x);
      Obs.Counter.incr c_incumbents;
      Obs.Series.add s_incumbents ~x:(elapsed ()) ~y:!best_obj;
      (* No relaxation solved yet, so no dual bound: gap unknown. *)
      note_incumbent ~obj:!best_obj ~gap:Float.nan ~node:0 ~depth:0
        ~seeded:true);
  let nodes = ref 0 and lp_iters = ref 0 in
  let lp_limited = ref 0 in
  let warm_hits = ref 0 and fixed_vars = ref 0 in
  let root_bound = ref neg_infinity in
  (* Working bound arrays: always hold the bounds of [!cur]; the one
     Simplex state is threaded through every node via [Simplex.resolve]. *)
  let wlb = Array.copy raw.lb and wub = Array.copy raw.ub in
  let cur = ref Root in
  let sstate = ref None in
  let pc = pc_create raw.n in
  let solve_node (node : node) =
    goto ~lb:wlb ~ub:wub ~from_:!cur node.bounds;
    cur := node.bounds;
    if cold_mode then
      Simplex.solve ~max_iters:max_lp_iters ~deadline:dl ~lb:wlb ~ub:wub raw
    else
      match !sstate with
      | None ->
          let r, st =
            Simplex.solve_state ~max_iters:max_lp_iters ~deadline:dl ~lb:wlb
              ~ub:wub raw
          in
          sstate := Some st;
          r
      | Some st ->
          let r =
            Simplex.resolve ~max_iters:max_lp_iters ~deadline:dl ~lb:wlb
              ~ub:wub st
          in
          if Simplex.last_resolve_warm st then incr warm_hits;
          r
  in
  (* Reduced-cost bound fixing at the root: with an incumbent of value
     [z*] and a root relaxation of value [z0], any solution moving an
     integer variable off the bound it is nonbasic at costs at least its
     reduced cost [|d_j|]; if [|d_j| > z* - z0] every such solution is
     strictly worse than the incumbent, so the variable can be fixed —
     shrinking the space the cut-selection binaries blow up. Must run
     before the first branch (the chain invariant above). *)
  let fix_by_reduced_cost root_obj =
    match !sstate with
    | None -> ()
    | Some st ->
        let gap = Float.max 0.0 (!best_obj -. root_obj) in
        if Float.is_finite gap then begin
          let before = !fixed_vars in
          for j = 0 to raw.n - 1 do
            if raw.integer.(j) && wub.(j) -. wlb.(j) > 0.5 then
              match Simplex.basis_status st j with
              | `At_lower when Simplex.reduced_cost st j > gap +. 1e-7 ->
                  wub.(j) <- wlb.(j);
                  incr fixed_vars
              | `At_upper when -.(Simplex.reduced_cost st j) > gap +. 1e-7 ->
                  wlb.(j) <- wub.(j);
                  incr fixed_vars
              | _ -> ()
          done;
          if Obs.Trace.enabled () && !fixed_vars > before then
            Obs.Trace.instant ~cat:"milp" "milp.fixed_vars"
              ~args:[ ("count", Obs.Json.Int (!fixed_vars - before)) ]
        end
  in
  let stack = ref [] in
  let push n = stack := n :: !stack in
  let budget_hit = ref false in
  let infeasible_root = ref false in
  let unbounded_root = ref false in
  push { bounds = Root; bound = neg_infinity; bvar = -1; bfrac = 0.0;
         dir_up = false };
  let continue_ = ref true in
  while !continue_ do
    match !stack with
    | [] -> continue_ := false
    | node :: rest ->
        stack := rest;
        if
          injected_timeout
          || Resilience.Deadline.expired dl
          || !nodes >= node_limit
        then begin
          budget_hit := true;
          continue_ := false
        end
        else if node.bound >= !best_obj -. 1e-9 && !best_x <> None then
          (* parent bound already dominated by the incumbent *)
          ()
        else begin
          incr nodes;
          let depth = chain_depth node.bounds in
          let r = solve_node node in
          lp_iters := !lp_iters + r.Simplex.iterations;
          if Obs.Trace.enabled () then begin
            let warm =
              (not cold_mode)
              &&
              match !sstate with
              | Some st -> Simplex.last_resolve_warm st
              | None -> false
            in
            Obs.Trace.instant ~cat:"milp" "milp.node"
              ~args:
                [
                  ("n", Obs.Json.Int !nodes);
                  ("depth", Obs.Json.Int depth);
                  ("bvar", Obs.Json.Int node.bvar);
                  ("status", Obs.Json.String (status_label r.Simplex.status));
                  ("warm", Obs.Json.Bool warm);
                  ("bound", Obs.Json.Float r.Simplex.objective);
                ]
          end;
          if depth = 0 then begin
            root_bound := r.Simplex.objective;
            match r.Simplex.status with
            | Simplex.Infeasible -> infeasible_root := true
            | Simplex.Unbounded -> unbounded_root := true
            | Simplex.Optimal | Simplex.Iteration_limit | Simplex.Time_limit
              -> ()
          end;
          match r.Simplex.status with
          | Simplex.Infeasible -> ()
          | Simplex.Unbounded ->
              (* With integer bounds intact this means the MILP is unbounded
                 (or numerically hopeless); stop exploring. *)
              continue_ := false
          | Simplex.Time_limit ->
              (* The deadline ran out mid-pivot: stop and report the best
                 incumbent, exactly like the between-node budget check. *)
              budget_hit := true;
              continue_ := false
          | Simplex.Iteration_limit ->
              (* Pruning an unsolved subproblem is unsound for optimality
                 claims, so count it: any such node demotes Optimal to
                 Feasible below. *)
              incr lp_limited;
              Log.warn (fun f ->
                  f "LP iteration limit at node %d (depth %d); pruning" !nodes
                    depth)
          | Simplex.Optimal ->
              if node.bvar >= 0 then
                pc_record pc ~j:node.bvar ~dir_up:node.dir_up
                  ~unit:(if node.dir_up then 1.0 -. node.bfrac else node.bfrac)
                  ~degrade:
                    (Float.max 0.0 (r.Simplex.objective -. node.bound));
              if depth = 0 && (not cold_mode) && !best_x <> None then
                fix_by_reduced_cost r.Simplex.objective;
              if r.Simplex.objective >= !best_obj -. 1e-9 && !best_x <> None
              then ()
              else begin
                let j =
                  if cold_mode then
                    most_fractional raw ~int_tol ?priority:branch_priority
                      r.Simplex.x
                  else
                    pseudocost_branch raw ~int_tol ?priority:branch_priority
                      pc r.Simplex.x
                in
                if j < 0 then begin
                  (* integral: new incumbent *)
                  let x = snap raw ~int_tol r.Simplex.x in
                  let obj =
                    Array.fold_left ( +. ) 0.0
                      (Array.mapi (fun j v -> raw.obj.(j) *. v) x)
                  in
                  if obj < !best_obj -. 1e-9 then begin
                    best_obj := obj;
                    best_x := Some x;
                    Obs.Counter.incr c_incumbents;
                    Obs.Series.add s_incumbents ~x:(elapsed ()) ~y:obj;
                    (* Dual bound over the remaining open nodes (this
                       node itself is integral, so its own value also
                       bounds the search). *)
                    let gap_now =
                      let lo =
                        List.fold_left
                          (fun acc (n : node) -> min acc n.bound)
                          obj !stack
                      in
                      if Float.is_finite lo then
                        Float.abs (obj -. lo) /. Float.max 1.0 (Float.abs obj)
                      else Float.nan
                    in
                    note_incumbent ~obj ~gap:gap_now ~node:!nodes ~depth
                      ~seeded:false;
                    Log.info (fun f ->
                        f "incumbent %.6g at node %d depth %d" obj !nodes
                          depth)
                  end
                end
                else begin
                  let v = r.Simplex.x.(j) in
                  let fl = Float.of_int (int_of_float (floor v)) in
                  (* wlb/wub currently hold this node's bounds, so [prev]
                     reads the parent value the chain invariant needs. *)
                  let down =
                    { bounds =
                        Tighten { j; side = Ub; v = fl; prev = wub.(j);
                                  depth = depth + 1; parent = node.bounds };
                      bound = r.Simplex.objective; bvar = j;
                      bfrac = v -. fl; dir_up = false }
                  and up =
                    { bounds =
                        Tighten { j; side = Lb; v = fl +. 1.0; prev = wlb.(j);
                                  depth = depth + 1; parent = node.bounds };
                      bound = r.Simplex.objective; bvar = j;
                      bfrac = v -. fl; dir_up = true }
                  in
                  (* Dive toward the nearest integer first. *)
                  if v -. fl <= 0.5 then begin
                    push up;
                    push down
                  end
                  else begin
                    push down;
                    push up
                  end
                end
              end
        end
  done;
  let open_bound =
    List.fold_left (fun acc (n : node) -> min acc n.bound) infinity !stack
  in
  (* A node LP that hit its iteration cap was pruned unsolved, so neither
     "stack empty" nor a closed gap proves optimality. *)
  let clean = !lp_limited = 0 in
  let proved = (not !budget_hit) && !stack = [] && clean in
  let constant = Model.objective_constant model in
  let gap =
    match !best_x with
    | None -> infinity
    | Some _ ->
        if proved then 0.0
        else
          let lo = min open_bound !best_obj in
          let lo = if Float.is_finite lo then lo else !root_bound in
          Float.abs (!best_obj -. lo) /. Float.max 1.0 (Float.abs !best_obj)
  in
  let stats =
    {
      nodes = !nodes;
      lp_iterations = !lp_iters;
      elapsed = elapsed ();
      root_bound = !root_bound +. constant;
      gap;
      lp_limited = !lp_limited;
      warm_hits = !warm_hits;
      fixed_vars = !fixed_vars;
      first_incumbent_s = !first_inc;
    }
  in
  Obs.Counter.incr ~by:stats.nodes c_nodes;
  Obs.Counter.incr ~by:stats.lp_iterations c_pivots;
  Obs.Counter.incr ~by:stats.warm_hits c_warm_hits;
  Obs.Counter.incr ~by:stats.fixed_vars c_fixed_vars;
  Obs.Series.add s_gap ~x:stats.elapsed ~y:stats.gap;
  match !best_x with
  | Some x ->
      let status =
        if proved || (clean && gap <= gap_tol) then Optimal else Feasible
      in
      { status; x; objective = !best_obj +. constant; stats }
  | None ->
      let status =
        if !unbounded_root then Unbounded
        else if !infeasible_root && not !budget_hit then Infeasible
        else if proved then Infeasible
        else Unknown
      in
      { status; x = Array.make raw.n 0.0; objective = infinity; stats }

let value r v = r.x.(Model.var_index v)
let int_value r v = int_of_float (Float.round (value r v))

let pp_status ppf = function
  | Optimal -> Fmt.string ppf "optimal"
  | Feasible -> Fmt.string ppf "feasible"
  | Infeasible -> Fmt.string ppf "infeasible"
  | Unbounded -> Fmt.string ppf "unbounded"
  | Unknown -> Fmt.string ppf "unknown"

let pp_stats ppf s =
  Fmt.pf ppf "%d nodes, %d pivots, %.2fs, gap %.2g%%" s.nodes s.lp_iterations
    s.elapsed (100.0 *. s.gap);
  if s.warm_hits > 0 then Fmt.pf ppf ", %d warm" s.warm_hits;
  if s.fixed_vars > 0 then Fmt.pf ppf ", %d fixed" s.fixed_vars;
  if s.lp_limited > 0 then
    Fmt.pf ppf ", %d LP limit hit%s" s.lp_limited
      (if s.lp_limited = 1 then "" else "s")
