type status = Optimal | Feasible | Infeasible | Unbounded | Unknown

type stats = {
  nodes : int;
  lp_iterations : int;
  elapsed : float;
  root_bound : float;
  gap : float;
  lp_limited : int;
  warm_hits : int;
  fixed_vars : int;
  first_incumbent_s : float;
  domains : int;
  checkpoints : int;
  recoveries : int;
  stalls : int;
  cpu_s : float;
  cuts_applied : int;
  cut_rounds : int;
  gap_closed_root : float;
}

type result = {
  status : status;
  x : float array;
  objective : float;
  stats : stats;
  cert : Cert.t option;
}

type checkpoint_sink = {
  ck_path : string;
  ck_every_s : float;
  ck_every_nodes : int option;
  ck_meta : Obs.Json.t;
}

exception Worker_killed

let src = Logs.Src.create "lp.milp" ~doc:"branch and bound"

module Log = (val Logs.src_log src : Logs.LOG)

(* Instrumentation (lib/obs): cumulative across solves; reset by the
   driver. Purely observational — branching decisions never read it. *)
let c_solves = Obs.Counter.get "milp.solves"
let c_nodes = Obs.Counter.get "milp.bnb_nodes"
let c_pivots = Obs.Counter.get "milp.lp_pivots"
let c_incumbents = Obs.Counter.get "milp.incumbents"
let c_warm_hits = Obs.Counter.get "milp.warm_hits"
let c_fixed_vars = Obs.Counter.get "milp.fixed_vars"
let c_checkpoints = Obs.Counter.get "milp.checkpoints"
let c_recoveries = Obs.Counter.get "milp.recoveries"
let c_stalls = Obs.Counter.get "milp.stalls"
let c_cuts_applied = Obs.Counter.get "milp.cuts_applied"
let c_cut_rounds = Obs.Counter.get "milp.cut_rounds"
let s_gap_closed_root = Obs.Series.get "milp.gap_closed_root"
let s_incumbents = Obs.Series.get "milp.incumbents"
let s_gap = Obs.Series.get "milp.exit_gap"
let s_conv = Obs.Series.get "milp.convergence"
let t_solve = Obs.Timer.get "milp.solve"

let status_label = function
  | Simplex.Optimal -> "optimal"
  | Simplex.Infeasible -> "infeasible"
  | Simplex.Unbounded -> "unbounded"
  | Simplex.Iteration_limit -> "iter_limit"
  | Simplex.Time_limit -> "time_limit"

(* PIPESYN_COLD_START (any non-empty value) forces the pre-warm-start
   behaviour — cold per-node LPs, most-fractional branching, no bound
   fixing — for A/B comparison. Read per solve so tests can toggle it. *)
let cold_start_forced () =
  match Sys.getenv_opt "PIPESYN_COLD_START" with
  | None | Some "" -> false
  | Some _ -> true

(* ------------------------------------------------------------------ *)
(* Node bounds: copy-on-branch chains                                  *)
(* ------------------------------------------------------------------ *)

(* A node's bounds are the root arrays plus a chain of single-entry
   tightenings, one [Tighten] per branch. Invariants: every chain entry is
   allocated once at branch time — while the parent's bounds are the
   materialized ones, so [prev] is exactly the parent's value — and never
   mutated afterwards; the root arrays are only mutated before the first
   branch (reduced-cost fixing). A node therefore costs O(1) memory
   instead of two O(n) array copies, and switching the working arrays
   between two nodes costs O(distance through their lowest common
   ancestor), not O(n). *)
type side = Lb | Ub

type chain =
  | Root
  | Tighten of {
      j : int;
      side : side;
      v : float;  (** bound value at and below this node *)
      prev : float;  (** the parent's value, for undo *)
      depth : int;
      parent : chain;
    }

let chain_depth = function Root -> 0 | Tighten t -> t.depth

let apply_entry lb ub = function
  | Root -> ()
  | Tighten t -> (
      match t.side with Lb -> lb.(t.j) <- t.v | Ub -> ub.(t.j) <- t.v)

let undo_entry lb ub = function
  | Root -> ()
  | Tighten t -> (
      match t.side with Lb -> lb.(t.j) <- t.prev | Ub -> ub.(t.j) <- t.prev)

(* Rewrite [lb]/[ub] (currently holding [from_]'s bounds) into [target]'s
   bounds: undo up to the common ancestor, re-apply down to [target].
   Undos run deepest-first and applies shallowest-first, so stacked
   changes to the same variable resolve correctly. *)
let goto ~lb ~ub ~from_ target =
  let rec undo_to c d =
    match c with
    | Tighten t when t.depth > d ->
        undo_entry lb ub c;
        undo_to t.parent d
    | c -> c
  in
  let rec collect_to c d acc =
    match c with
    | Tighten t when t.depth > d -> collect_to t.parent d (c :: acc)
    | c -> (c, acc)
  in
  let rec meet a b acc =
    if a == b then acc
    else
      match (a, b) with
      | Tighten ta, Tighten tb ->
          undo_entry lb ub a;
          meet ta.parent tb.parent (b :: acc)
      | _ -> acc (* both Root *)
  in
  let d = min (chain_depth from_) (chain_depth target) in
  let a = undo_to from_ d in
  let b, applies = collect_to target d [] in
  let applies = meet a b applies in
  List.iter (apply_entry lb ub) applies

type node = {
  nid : int;
      (** creation-order certificate id from a dedicated counter; 0 at the
          root. Distinct from the processing-order trace id: a child's nid
          exists before any domain picks it up, so the certificate's tree
          links are closed under work stealing. *)
  parent_nid : int;  (** -1 at the root *)
  bounds : chain;
  bound : float;  (** parent LP objective: the node's dual bound *)
  bvar : int;  (** variable branched to create this node; -1 at root *)
  bfrac : float;  (** fractional part of [bvar] in the parent LP *)
  dir_up : bool;  (** up child ([lb := ceil]) vs down child ([ub := floor]) *)
  mutable cancels : int;
      (** watchdog cancel count: the watchdog never cancels the same node
          twice, so a legitimately slow LP is cancelled at most once and
          then replays to completion (no cancel/requeue livelock) *)
}

(* The chain entry that created a node's box, as certificate data. *)
let branch_of (node : node) =
  match node.bounds with
  | Root -> None
  | Tighten t ->
      Some
        (t.j, (match t.side with Lb -> Cert.Lower | Ub -> Cert.Upper), t.v)

(* ------------------------------------------------------------------ *)
(* Branching                                                           *)
(* ------------------------------------------------------------------ *)

let most_fractional raw ~int_tol ?priority x =
  let best = ref (-1) and best_frac = ref int_tol and best_prio = ref min_int in
  let prio j = match priority with None -> 0 | Some p -> p.(j) in
  Array.iteri
    (fun j isint ->
      if isint then begin
        let v = x.(j) in
        let frac = Float.abs (v -. Float.round v) in
        if frac > int_tol then begin
          let p = prio j in
          if p > !best_prio || (p = !best_prio && frac > !best_frac) then begin
            best := j;
            best_frac := frac;
            best_prio := p
          end
        end
      end)
    raw.Model.integer;
  !best

(* Per-variable pseudocosts: observed objective degradation per unit of
   fractional distance, separately for the down and up branch. *)
type pseudocost = {
  dn_sum : float array;
  dn_n : int array;
  up_sum : float array;
  up_n : int array;
}

let pc_create n =
  {
    dn_sum = Array.make n 0.0;
    dn_n = Array.make n 0;
    up_sum = Array.make n 0.0;
    up_n = Array.make n 0;
  }

let pc_record pc ~j ~dir_up ~unit ~degrade =
  if unit > 1e-9 then
    if dir_up then begin
      pc.up_sum.(j) <- pc.up_sum.(j) +. (degrade /. unit);
      pc.up_n.(j) <- pc.up_n.(j) + 1
    end
    else begin
      pc.dn_sum.(j) <- pc.dn_sum.(j) +. (degrade /. unit);
      pc.dn_n.(j) <- pc.dn_n.(j) + 1
    end

(* Pseudocost branching seeded by priority: within the highest priority
   class having any fractionality, maximize the product of estimated
   degradations. Uninitialized variables use the average observed
   pseudocost; before any observation that degenerates to f·(1−f),
   i.e. plain most-fractional. *)
let pseudocost_branch raw ~int_tol ?priority pc x =
  let avg sum n =
    let tot = ref 0.0 and cnt = ref 0 in
    Array.iteri
      (fun j c ->
        if c > 0 then begin
          tot := !tot +. (sum.(j) /. float_of_int c);
          incr cnt
        end)
      n;
    if !cnt > 0 then !tot /. float_of_int !cnt else 1.0
  in
  let avg_dn = avg pc.dn_sum pc.dn_n and avg_up = avg pc.up_sum pc.up_n in
  let prio j = match priority with None -> 0 | Some p -> p.(j) in
  let best = ref (-1)
  and best_score = ref neg_infinity
  and best_frac = ref 0.0
  and best_prio = ref min_int in
  Array.iteri
    (fun j isint ->
      if isint then begin
        let v = x.(j) in
        let frac = Float.abs (v -. Float.round v) in
        if frac > int_tol then begin
          let p = prio j in
          let fdn = v -. Float.floor v in
          let fup = 1.0 -. fdn in
          let pcd =
            if pc.dn_n.(j) > 0 then pc.dn_sum.(j) /. float_of_int pc.dn_n.(j)
            else avg_dn
          and pcu =
            if pc.up_n.(j) > 0 then pc.up_sum.(j) /. float_of_int pc.up_n.(j)
            else avg_up
          in
          let score =
            Float.max 1e-9 (fdn *. pcd) *. Float.max 1e-9 (fup *. pcu)
          in
          if
            p > !best_prio
            || (p = !best_prio
               && (score > !best_score +. 1e-12
                  || (score > !best_score -. 1e-12 && frac > !best_frac)))
          then begin
            best := j;
            best_score := score;
            best_frac := frac;
            best_prio := p
          end
        end
      end)
    raw.Model.integer;
  !best

let snap raw ~int_tol x =
  Array.mapi
    (fun j v ->
      if raw.Model.integer.(j) && Float.abs (v -. Float.round v) <= 100. *. int_tol
      then Float.round v
      else v)
    x

(* ------------------------------------------------------------------ *)
(* Parallel exploration                                                *)
(* ------------------------------------------------------------------ *)

(* PIPESYN_DOMAINS selects how many OCaml 5 domains explore the tree
   (default 1 = the sequential engine). Read per solve, like
   PIPESYN_COLD_START, so drivers and tests can toggle it. *)
let domains_from_env () =
  match Sys.getenv_opt "PIPESYN_DOMAINS" with
  | None | Some "" -> 1
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some d when d >= 1 -> min d 64
      | _ -> 1)

(* PIPESYN_CUTS toggles the root cutting-plane rounds (default on).
   Read per solve like PIPESYN_DOMAINS; the [?cuts] argument wins over
   the environment. *)
let cuts_from_env () =
  match Sys.getenv_opt "PIPESYN_CUTS" with
  | Some s -> (
      match String.lowercase_ascii (String.trim s) with
      | "0" | "off" | "false" | "no" -> false
      | _ -> true)
  | None -> true

(* Deterministic incumbent tie-breaking: among solutions whose objectives
   agree within the acceptance tolerance, the lexicographically smallest
   solution vector wins. Unlike an exploration-order node id, this key
   does not depend on which domain reached the solution first, so the
   final incumbent is stable run-to-run and across domain counts — and,
   by the same argument, across worker deaths, watchdog requeues and
   checkpoint/resume (all of which only permute exploration order). *)
let lex_less a b =
  let n = Array.length a in
  let rec go i =
    if i >= n then false
    else if a.(i) < b.(i) -. 1e-9 then true
    else if a.(i) > b.(i) +. 1e-9 then false
    else go (i + 1)
  in
  go 0

(* Per-worker exploration context: every domain owns its bound arrays,
   its chain position, its Simplex warm-start state and its pseudocost
   table, so node LPs never share mutable solver state across domains.
   Chains are immutable and reference bound values relative to the
   post-fixing root arrays (identical in every context), which is what
   makes subtrees shippable between domains.

   Supervision fields: [w_cell] is the worker's cancellation cell and
   [w_dl] the worker deadline carrying it — the simplex polls [w_dl], so
   a watchdog {!Resilience.Deadline.cancel} lands within one poll
   interval. [w_beat] is the worker's last-progress wall instant,
   [w_nudge] asks the next LP to cold-refactorize (escalation rung 1),
   and [w_deaths] counts supervised recoveries of this slot. *)
type wctx = {
  wid : int;  (** worker slot; 0 is the coordinator *)
  wlb : float array;
  wub : float array;
  mutable wcur : chain;
  mutable wstate : Simplex.state option;
  mutable wpc : pseudocost;
  mutable w_iters : int;
  mutable w_limited : int;
  mutable w_warm : int;
  mutable wcerts : Cert.node list;
      (** per-worker certificate log, newest first; merged after join *)
  w_cell : Resilience.Deadline.cell;
  w_dl : Resilience.Deadline.t;
  w_beat : float Atomic.t;
  w_nudge : bool Atomic.t;
  mutable w_deaths : int;
  w_cnode : Obs.Counter.t;
      (** per-worker-domain node counter ([milp.nodes.d<wid>]); the
          resource probe reads its deltas for per-domain throughput *)
}

(* What processing one node asks of the scheduler. Children come in dive
   order: [near] (round-to-nearest) is explored next, [far] is the
   publishable sibling. [Cancelled] is a watchdog cancel caught mid-LP:
   the node is still open and must be requeued. *)
type outcome =
  | Leaf
  | Children of node * node  (** (near, far) *)
  | Cancelled
  | Stop_budget
  | Stop_unbounded

(* A worker slot survives at most this many supervised deaths before the
   failure is treated as systemic and propagated. *)
let max_worker_deaths = 3

let solve ?(time_limit = 60.0) ?(node_limit = 200_000) ?(max_lp_iters = 50_000)
    ?(gap_tol = 1e-6) ?(int_tol = 1e-6)
    ?(deadline = Resilience.Deadline.none) ?incumbent ?branch_priority
    ?domains ?(certificates = false) ?checkpoint ?resume ?stall_window
    ?cuts ?presolve model =
  let domains =
    match domains with
    | Some d -> max 1 (min d 64)
    | None -> domains_from_env ()
  in
  Obs.Timer.span t_solve @@ fun () ->
  Obs.Trace.span ~cat:"milp" "milp.solve"
    ~args:[ ("domains", Obs.Json.Int domains) ]
  @@ fun () ->
  Obs.Counter.incr c_solves;
  if Resilience.Fault.fires "milp.raise" then
    failwith "injected fault: milp.raise";
  (* The injected timeout models "budget exhausted before any incumbent":
     warm-start seeding is skipped so the solve reports Unknown, the
     hardest failure the cascade must absorb. *)
  let injected_timeout = Resilience.Fault.fires "milp.timeout" in
  let cold_mode = cold_start_forced () in
  let raw_orig = Model.to_raw model in
  (* A checkpoint is pinned to the exact model it was taken from:
     replaying a frontier into a different polytope would silently
     produce garbage, so a fingerprint mismatch is a caller error. The
     fingerprint is over the caller's model, before presolve or cuts:
     both are recorded in the checkpoint and replayed on resume, so the
     same source model always matches. *)
  let model_fp =
    match (checkpoint, resume) with
    | None, None -> ""
    | _ -> Checkpoint.fingerprint raw_orig
  in
  let cuts_on =
    (match cuts with Some b -> b | None -> cuts_from_env ()) && not cold_mode
  in
  let presolve_on =
    (match presolve with Some b -> b | None -> true) && not cold_mode
  in
  (* Root presolve: certified bound tightening on the model box. On
     resume the checkpoint's root box already includes the original
     run's tightenings (plus fixings), so only the event log is
     restored — re-tightening would double-apply. *)
  let presolve_events, raw =
    match resume with
    | Some ck -> (ck.Checkpoint.presolve, raw_orig)
    | None ->
        if presolve_on && not injected_timeout then begin
          let lb, ub, evs = Presolve.tighten raw_orig in
          if evs <> [] then
            Log.info (fun f ->
                f "presolve tightened %d bounds" (List.length evs));
          (evs, { raw_orig with Model.lb; ub })
        end
        else ([], raw_orig)
  in
  (* The row system nodes actually solve against: the model rows plus
     every applied cut. Extended by the root cut loop (fresh solves) or
     rebuilt from the checkpoint's cut log (resume — never
     re-separated, so node duals keep matching the extended system). *)
  let extend_raw base cs =
    if cs = [] then base
    else
      {
        base with
        Model.rows =
          Array.append base.Model.rows
            (Array.of_list (List.map (fun c -> c.Cert.cut_terms) cs));
        senses =
          Array.append base.Model.senses
            (Array.make (List.length cs) Model.Le);
        rhs =
          Array.append base.Model.rhs
            (Array.of_list (List.map (fun c -> c.Cert.cut_rhs) cs));
      }
  in
  let cuts_log =
    ref (match resume with Some ck -> ck.Checkpoint.cuts | None -> [])
  in
  Log.debug (fun f ->
      f "model: %d cols (%d integer), %d rows"
        raw.Model.n
        (Array.fold_left (fun a b -> if b then a + 1 else a) 0 raw.Model.integer)
        (Array.length raw.Model.rows));
  let raw_solve = ref (extend_raw raw !cuts_log) in
  let cut_rounds = ref 0 in
  let cut_b0 = ref Float.nan in
  let cut_b1 = ref Float.nan in
  (match resume with
  | Some ck when ck.Checkpoint.fingerprint <> model_fp ->
      invalid_arg "Milp.solve: checkpoint fingerprint does not match the model"
  | _ -> ());
  (* Certificates need the warm-start solver state (duals, Farkas rays
     live in the reusable tableau), so forced cold-start runs emit none.
     A resumed solve can only be as strong as its checkpoint: if the
     original run kept no certificates there is no prefix to extend. *)
  let certs_on =
    certificates && (not cold_mode)
    && match resume with Some ck -> ck.Checkpoint.certs_on | None -> true
  in
  (* Certificate node ids: allocated at node creation, independent of the
     processing-order trace id. Resume carries the counter so replayed
     frontiers never collide with the closed prefix. *)
  let next_nid =
    Atomic.make (match resume with Some ck -> ck.Checkpoint.next_nid | None -> 0)
  in
  let alloc_nid () = Atomic.fetch_and_add next_nid 1 in
  let inc_log = ref [] in  (* accepted incumbents, newest first; under inc_m *)
  let fix_log = ref [] in  (* root bound-fixing events; coordinator only *)
  let root_duals = ref None in
  let cert_root_lb = ref [||] and cert_root_ub = ref [||] in
  (* Deadline-aware budget: whichever of the caller's deadline and the
     local time budget is tighter governs both the node loop and — via
     Simplex — every pivot inside a node. The clock is the monotonized
     wall clock ({!Obs.Clock.wall}), so the budget means the same thing
     at every domain count. *)
  let dl = Resilience.Deadline.clip deadline ~budget:time_limit in
  let t0 = Obs.Clock.wall () in
  let cpu0 = Obs.Clock.cpu () in
  (* A resumed solve reports cumulative solve time: the checkpoint's
     consumed seconds plus this run's. *)
  let prior_s =
    match resume with Some ck -> ck.Checkpoint.elapsed_s | None -> 0.0
  in
  let elapsed () = Obs.Clock.wall () -. t0 +. prior_s in
  (* Shared incumbent: [best_obj] is the lock-free pruning bound (reads
     may be stale by at most one improvement — only ever too weak, never
     unsound); [inc_m] serializes updates so the accept decision and the
     [best_x] write are one step. *)
  let inc_m = Mutex.create () in
  let best_x = ref None in
  let best_obj = Atomic.make infinity in
  let have_inc () = Float.is_finite (Atomic.get best_obj) in
  let first_inc =
    ref
      (match resume with
      | Some ck -> ck.Checkpoint.first_incumbent_s
      | None -> Float.nan)
  in
  let nodes =
    Atomic.make
      (match resume with Some ck -> ck.Checkpoint.nodes_done | None -> 0)
  in
  (* Convergence timeline: one point (and one trace instant) per
     incumbent, carrying the relative incumbent/bound gap at that
     moment. Observational only. *)
  let note_incumbent ?(tid = 1) ~obj ~gap ~node ~depth ~seeded () =
    if Float.is_nan !first_inc then first_inc := elapsed ();
    Obs.Series.add s_conv ~x:(elapsed ()) ~y:gap;
    if Obs.Trace.enabled () then
      Obs.Trace.instant ~cat:"milp" ~tid "milp.incumbent"
        ~args:
          [
            ("objective", Obs.Json.Float obj);
            ("gap", Obs.Json.Float gap);
            ("node", Obs.Json.Int node);
            ("depth", Obs.Json.Int depth);
            ("seeded", Obs.Json.Bool seeded);
          ];
    if Obs.Log.enabled () then
      Obs.Log.event "milp.incumbent"
        [
          ("objective", Obs.Json.Float obj);
          ("gap", Obs.Json.Float gap);
          ("node", Obs.Json.Int node);
          ("depth", Obs.Json.Int depth);
          ("seeded", Obs.Json.Bool seeded);
        ]
  in
  (* Deterministic incumbent acceptance (any domain): strictly better
     objectives always replace; objectives tied within tolerance fall
     back to the lexicographic solution-vector order, so the surviving
     incumbent does not depend on which domain raced in first. *)
  let try_improve ~wid ~node_id ~nid ~depth ~open_bound_now x obj =
    Mutex.lock inc_m;
    let cur = Atomic.get best_obj in
    let accept =
      obj < cur -. 1e-9
      || obj <= cur +. 1e-9
         &&
         match !best_x with None -> true | Some bx -> lex_less x bx
    in
    if accept then begin
      Atomic.set best_obj obj;
      best_x := Some x;
      if certs_on then inc_log := (nid, obj) :: !inc_log;
      Obs.Counter.incr c_incumbents;
      Obs.Series.add s_incumbents ~x:(elapsed ()) ~y:obj;
      (* Dual bound over the remaining open nodes (this node itself is
         integral, so its own value also bounds the search). *)
      let gap_now =
        let lo = open_bound_now obj in
        if Float.is_finite lo then
          Float.abs (obj -. lo) /. Float.max 1.0 (Float.abs obj)
        else Float.nan
      in
      note_incumbent ~tid:(wid + 1) ~obj ~gap:gap_now ~node:node_id ~depth
        ~seeded:false ();
      Log.info (fun f ->
          f "incumbent %.6g at node %d depth %d (domain %d)" obj node_id
            depth wid)
    end;
    Mutex.unlock inc_m
  in
  (match incumbent with
  | _ when injected_timeout -> ()
  | None -> ()
  | Some x ->
      if Array.length x <> raw.n then
        invalid_arg "Milp.solve: incumbent length mismatch";
      (match Model.check model ~values:(fun v -> x.(Model.var_index v)) () with
      | Error msg -> invalid_arg ("Milp.solve: infeasible incumbent: " ^ msg)
      | Ok () -> ());
      (* Snap near-integral entries so the stored incumbent is exactly
         integral — the certificate audit checks integrality with zero
         tolerance, and [Model.check] above already vouched for the
         unsnapped point at the contract tolerance. *)
      let x = snap raw ~int_tol x in
      let obj =
        Array.fold_left ( +. ) 0.0
          (Array.mapi (fun j v -> raw.obj.(j) *. v) x)
      in
      best_x := Some (Array.copy x);
      Atomic.set best_obj obj;
      if certs_on then inc_log := (-1, obj) :: !inc_log;
      Obs.Counter.incr c_incumbents;
      Obs.Series.add s_incumbents ~x:(elapsed ()) ~y:obj;
      (* No relaxation solved yet, so no dual bound: gap unknown. *)
      note_incumbent ~obj ~gap:Float.nan ~node:0 ~depth:0 ~seeded:true ());
  (* The checkpoint's incumbent wins over a caller-seeded one: it was
     accepted by the original run's deterministic tie-breaking, which is
     exactly the state resume must reproduce. The seeded id -1 is the
     same convention the warm-start seeding uses, and the audit accepts
     it. *)
  (match resume with
  | Some { Checkpoint.incumbent = Some (x, obj); _ } when not injected_timeout
    ->
      best_x := Some (Array.copy x);
      Atomic.set best_obj obj;
      if certs_on then inc_log := [ (-1, obj) ];
      Obs.Counter.incr c_incumbents;
      Obs.Series.add s_incumbents ~x:(elapsed ()) ~y:obj;
      note_incumbent ~obj ~gap:Float.nan ~node:0 ~depth:0 ~seeded:true ()
  | _ -> ());
  let fixed_vars =
    ref (match resume with Some ck -> ck.Checkpoint.fixed_vars | None -> 0)
  in
  let root_bound =
    ref
      (match resume with
      | Some ck -> ck.Checkpoint.root_bound
      | None -> neg_infinity)
  in
  (match resume with
  | Some ck ->
      fix_log := List.rev ck.Checkpoint.fixes;
      root_duals := ck.Checkpoint.root_duals;
      if certs_on then begin
        cert_root_lb := Array.copy ck.Checkpoint.root_lb;
        cert_root_ub := Array.copy ck.Checkpoint.root_ub
      end
  | None -> ());
  let budget_hit = ref false in
  let infeasible_root = ref false in
  let unbounded_root = ref false in
  let stopped_unbounded = ref false in
  let budget () =
    injected_timeout
    || Resilience.Deadline.expired dl
    || Atomic.get nodes >= node_limit
  in
  let pc_of_ck (p : Checkpoint.pc) =
    {
      dn_sum = Array.copy p.Checkpoint.dn_sum;
      dn_n = Array.copy p.Checkpoint.dn_n;
      up_sum = Array.copy p.Checkpoint.up_sum;
      up_n = Array.copy p.Checkpoint.up_n;
    }
  in
  let mk_wctx wid lb ub =
    (* Restore this slot's pseudocost table from the checkpoint when one
       is carried (extra slots of a wider resume start fresh). *)
    let wpc =
      match resume with
      | Some ck
        when wid < Array.length ck.Checkpoint.pc
             && Array.length ck.Checkpoint.pc.(wid).Checkpoint.dn_sum = raw.n
        ->
          pc_of_ck ck.Checkpoint.pc.(wid)
      | _ -> pc_create raw.n
    in
    let cell = Resilience.Deadline.new_cell () in
    { wid; wlb = lb; wub = ub; wcur = Root; wstate = None; wpc;
      w_iters = 0; w_limited = 0; w_warm = 0; wcerts = [];
      w_cell = cell; w_dl = Resilience.Deadline.with_cancel dl cell;
      w_beat = Atomic.make (Obs.Clock.wall ());
      w_nudge = Atomic.make false; w_deaths = 0;
      w_cnode = Obs.Counter.get ("milp.nodes.d" ^ string_of_int wid) }
  in
  (* The coordinator context is created up front (not at root-processing
     time) because the supervision layer — watchdog, checkpointer, crash
     recovery — observes it for the whole solve. On resume its arrays
     start at the checkpoint's post-fixing root box, which is the box
     every serialized chain's [prev] values are relative to. *)
  let w0 =
    match resume with
    | Some ck ->
        let w = mk_wctx 0 (Array.copy ck.Checkpoint.root_lb)
            (Array.copy ck.Checkpoint.root_ub)
        in
        w.w_limited <- ck.Checkpoint.lp_limited;
        w.wcerts <- ck.Checkpoint.cert_nodes;
        w
    | None -> mk_wctx 0 (Array.copy raw.lb) (Array.copy raw.ub)
  in
  (* Post-fixing root box, captured once the root is processed (or taken
     from the checkpoint): what worker contexts copy and what snapshots
     record so resumed chains rebuild against identical arrays. *)
  let root_box_lb =
    ref (match resume with Some ck -> Array.copy ck.Checkpoint.root_lb | None -> [||])
  in
  let root_box_ub =
    ref (match resume with Some ck -> Array.copy ck.Checkpoint.root_ub | None -> [||])
  in
  (* ---------------- supervision state (shared by both engines) ------- *)
  (* [pool_m] guards the shared deque [q]/[qlen], every private stack in
     [wlocal], and the lease table [wlease]. A lease is the subtree a
     worker currently holds in its hands: set when a node is taken,
     cleared in the same critical section that retires or republishes it,
     so at every instant each open node is in exactly one of
     {q, some wlocal, some lease} — the invariant that makes snapshots
     complete and crash recovery lossless. *)
  let pool_m = Mutex.create () in
  let pool_cv = Condition.create () in
  let q = ref [] in
  let qlen = ref 0 in
  let qcap = max 64 (8 * domains) in
  let wlocal = Array.init domains (fun _ -> ref []) in
  let wlease : node option array = Array.make domains None in
  let all_wctxs = Atomic.make [| w0 |] in
  let n_recoveries = ref 0 in (* guarded by pool_m *)
  let n_checkpoints = ref 0 in (* guarded by pool_m *)
  let n_stalls = Atomic.make 0 in
  let last_ck = ref (Obs.Clock.wall ()) in
  let next_ck_nodes =
    ref
      (match checkpoint with
      | Some { ck_every_nodes = Some n; _ } -> Atomic.get nodes + n
      | _ -> max_int)
  in
  (* Serialize a node's chain as root→leaf edits; rebuild on resume. The
     rebuilt chains are disjoint from each other, which [goto] handles
     (its meet walks both chains to Root), so per-node rebuild is
     correct without reconstructing the shared tree shape. *)
  let edits_of_chain c =
    let rec go acc = function
      | Root -> acc
      | Tighten t ->
          go
            ({ Checkpoint.e_j = t.j;
               e_side = (match t.side with Lb -> Cert.Lower | Ub -> Cert.Upper);
               e_v = t.v; e_prev = t.prev }
            :: acc)
            t.parent
    in
    go [] c
  in
  let open_of_node (n : node) =
    {
      Checkpoint.o_nid = n.nid;
      o_parent = n.parent_nid;
      o_bound = n.bound;
      o_bvar = n.bvar;
      o_bfrac = n.bfrac;
      o_dir_up = n.dir_up;
      o_edits = edits_of_chain n.bounds;
    }
  in
  let node_of_open (o : Checkpoint.open_node) =
    let _, chain =
      List.fold_left
        (fun (d, parent) (e : Checkpoint.edit) ->
          ( d + 1,
            Tighten
              { j = e.Checkpoint.e_j;
                side =
                  (match e.Checkpoint.e_side with
                  | Cert.Lower -> Lb
                  | Cert.Upper -> Ub);
                v = e.Checkpoint.e_v; prev = e.Checkpoint.e_prev;
                depth = d + 1; parent } ))
        (0, Root) o.Checkpoint.o_edits
    in
    { nid = o.Checkpoint.o_nid; parent_nid = o.Checkpoint.o_parent;
      bounds = chain; bound = o.Checkpoint.o_bound;
      bvar = o.Checkpoint.o_bvar; bfrac = o.Checkpoint.o_bfrac;
      dir_up = o.Checkpoint.o_dir_up; cancels = 0 }
  in
  (* Every open node, wherever it currently lives. Under [pool_m]. *)
  let frontier_locked () =
    let leases =
      Array.fold_right
        (fun l acc -> match l with Some n -> n :: acc | None -> acc)
        wlease []
    in
    let locals = Array.fold_right (fun r acc -> !r @ acc) wlocal [] in
    leases @ locals @ !q
  in
  let snapshot_locked () =
    let ws = Atomic.get all_wctxs in
    (* Lock order pool_m ≺ inc_m: workers only ever take inc_m while not
       holding pool_m, so this nesting cannot deadlock. *)
    Mutex.lock inc_m;
    let inc =
      match !best_x with
      | Some x -> Some (Array.copy x, Atomic.get best_obj)
      | None -> None
    in
    Mutex.unlock inc_m;
    {
      Checkpoint.fingerprint = model_fp;
      domains;
      next_nid = Atomic.get next_nid;
      nodes_done = Atomic.get nodes;
      lp_limited = Array.fold_left (fun a w -> a + w.w_limited) 0 ws;
      fixed_vars = !fixed_vars;
      root_bound = !root_bound;
      root_lb = Array.copy !root_box_lb;
      root_ub = Array.copy !root_box_ub;
      incumbent = inc;
      first_incumbent_s = !first_inc;
      elapsed_s = elapsed ();
      frontier = List.map open_of_node (frontier_locked ());
      pc =
        Array.map
          (fun w ->
            {
              Checkpoint.dn_sum = Array.copy w.wpc.dn_sum;
              dn_n = Array.copy w.wpc.dn_n;
              up_sum = Array.copy w.wpc.up_sum;
              up_n = Array.copy w.wpc.up_n;
            })
          ws;
      certs_on;
      cert_nodes =
        Array.fold_left (fun acc w -> List.rev_append w.wcerts acc) [] ws;
      fixes = List.rev !fix_log;
      root_duals = !root_duals;
      presolve = presolve_events;
      cuts = !cuts_log;
      meta = (match checkpoint with Some s -> s.ck_meta | None -> Obs.Json.Null);
    }
  in
  (* Called under [pool_m] from node-completion sections. [force] is the
     final flush at solve exit. The root box guard skips snapshots taken
     before the root was ever processed (nothing to resume yet). *)
  let write_checkpoint_locked ~force () =
    match checkpoint with
    | None -> ()
    | Some s ->
        let nodes_now = Atomic.get nodes in
        let due =
          force
          || Obs.Clock.wall () -. !last_ck >= s.ck_every_s
          || nodes_now >= !next_ck_nodes
        in
        if due && Array.length !root_box_lb > 0 then begin
          last_ck := Obs.Clock.wall ();
          (match s.ck_every_nodes with
          | Some n -> next_ck_nodes := nodes_now + n
          | None -> ());
          Checkpoint.write ~path:s.ck_path (snapshot_locked ());
          incr n_checkpoints;
          if Obs.Log.enabled () then
            Obs.Log.event "milp.checkpoint"
              [
                ("nodes", Obs.Json.Int nodes_now);
                ("path", Obs.Json.String s.ck_path);
              ];
          if Obs.Trace.enabled () then
            Obs.Trace.instant ~cat:"milp" "milp.checkpoint"
              ~args:
                [
                  ("nodes", Obs.Json.Int nodes_now);
                  ("path", Obs.Json.String s.ck_path);
                ]
        end
  in
  let note_recovery (w : wctx) e =
    Log.warn (fun f ->
        f "worker %d died (%s); recovered (death %d/%d)" w.wid
          (Printexc.to_string e) w.w_deaths max_worker_deaths);
    if Obs.Log.enabled () then
      Obs.Log.event ~level:Obs.Log.Warn "milp.recovery"
        [
          ("worker", Obs.Json.Int w.wid);
          ("error", Obs.Json.String (Printexc.to_string e));
          ("death", Obs.Json.Int w.w_deaths);
        ];
    if Obs.Trace.enabled () then
      Obs.Trace.instant ~cat:"milp" ~tid:(w.wid + 1) "milp.recovery"
        ~args:
          [
            ("worker", Obs.Json.Int w.wid);
            ("error", Obs.Json.String (Printexc.to_string e));
            ("death", Obs.Json.Int w.w_deaths);
          ]
  in
  (* Supervised worker death. Returns whether the slot recovered: the
     leased node and the worker's whole private stack go back to the
     shared deque (no subtree is lost), the solver state and pseudocost
     table reset, and the worker keeps taking work. Resource exhaustion
     and slots past their death budget are systemic — not recovered. *)
  let recover (w : wctx) e =
    match e with
    | Out_of_memory | Stack_overflow -> false
    | _ when w.w_deaths >= max_worker_deaths -> false
    | _ ->
        w.w_deaths <- w.w_deaths + 1;
        w.wstate <- None;
        w.wpc <- pc_create raw.n;
        Resilience.Deadline.clear_cell w.w_cell;
        Atomic.set w.w_nudge false;
        Mutex.lock pool_m;
        (match wlease.(w.wid) with
        | Some n ->
            q := !q @ [ n ];
            incr qlen;
            wlease.(w.wid) <- None
        | None -> ());
        let mine = !(wlocal.(w.wid)) in
        if mine <> [] then begin
          wlocal.(w.wid) := [];
          q := !q @ mine;
          qlen := !qlen + List.length mine
        end;
        incr n_recoveries;
        Condition.broadcast pool_cv;
        Mutex.unlock pool_m;
        note_recovery w e;
        true
  in
  let solve_node (w : wctx) (node : node) =
    (* Consume a watchdog nudge (escalation rung 1): drop the warm
       tableau so this LP refactorizes from scratch — the cheap fix for
       a numerically wedged basis. *)
    if Atomic.get w.w_nudge then begin
      Atomic.set w.w_nudge false;
      w.wstate <- None
    end;
    goto ~lb:w.wlb ~ub:w.wub ~from_:w.wcur node.bounds;
    w.wcur <- node.bounds;
    if cold_mode then
      Simplex.solve ~max_iters:max_lp_iters ~deadline:w.w_dl ~lb:w.wlb
        ~ub:w.wub !raw_solve
    else
      match w.wstate with
      | None ->
          (* Cold builds read [!raw_solve], the cut-extended system:
             workers that start after the root cut rounds (and resumed
             solves) inherit every applied cut. *)
          let r, st =
            Simplex.solve_state ~max_iters:max_lp_iters ~deadline:w.w_dl
              ~lb:w.wlb ~ub:w.wub !raw_solve
          in
          w.wstate <- Some st;
          r
      | Some st ->
          let r =
            Simplex.resolve ~max_iters:max_lp_iters ~deadline:w.w_dl
              ~lb:w.wlb ~ub:w.wub st
          in
          if Simplex.last_resolve_warm st then w.w_warm <- w.w_warm + 1;
          r
  in
  (* Reduced-cost bound fixing at the root: with an incumbent of value
     [z*] and a root relaxation of value [z0], any solution moving an
     integer variable off the bound it is nonbasic at costs at least its
     reduced cost [|d_j|]; if [|d_j| > z* - z0] every such solution is
     strictly worse than the incumbent, so the variable can be fixed —
     shrinking the space the cut-selection binaries blow up. Must run
     before the first branch (the chain invariant above), which also
     means before worker contexts copy the root arrays. *)
  let fix_by_reduced_cost (w : wctx) root_obj =
    match w.wstate with
    | None -> ()
    | Some st ->
        let gap = Float.max 0.0 (Atomic.get best_obj -. root_obj) in
        if Float.is_finite gap then begin
          let before = !fixed_vars in
          for j = 0 to raw.n - 1 do
            if raw.integer.(j) && w.wub.(j) -. w.wlb.(j) > 0.5 then
              match Simplex.basis_status st j with
              | `At_lower when Simplex.reduced_cost st j > gap +. 1e-7 ->
                  w.wub.(j) <- w.wlb.(j);
                  if certs_on then fix_log := (j, Cert.Lower) :: !fix_log;
                  incr fixed_vars
              | `At_upper when -.(Simplex.reduced_cost st j) > gap +. 1e-7 ->
                  w.wlb.(j) <- w.wub.(j);
                  if certs_on then fix_log := (j, Cert.Upper) :: !fix_log;
                  incr fixed_vars
              | _ -> ()
          done;
          if Obs.Trace.enabled () && !fixed_vars > before then
            Obs.Trace.instant ~cat:"milp" "milp.fixed_vars"
              ~args:[ ("count", Obs.Json.Int (!fixed_vars - before)) ]
        end
  in
  (* Solve one node on worker [w]; returns the scheduling outcome and
     the node's certificate entry (engines append it inside their
     completion critical section, so snapshots never see a half-recorded
     node). [open_bound_now] supplies the dual bound over the currently
     open nodes for the incumbent gap note (exact for the sequential
     engine, conservative for the parallel one).

     Fault sites: [milp.worker_kill] kills the worker at entry, before
     the node is counted — the supervisor replays its lease.
     [milp.stall] wedges the worker here with no progress, which is what
     the watchdog's escalation ladder must unstick. *)
  let process (w : wctx) ~open_bound_now (node : node) :
      outcome * Cert.node option =
    if Resilience.Fault.fires "milp.worker_kill" then raise Worker_killed;
    if Resilience.Fault.fires "milp.stall" then
      while not (Resilience.Deadline.expired w.w_dl) do
        Domain.cpu_relax ()
      done;
    let node_id = 1 + Atomic.fetch_and_add nodes 1 in
    (* Counted live (not bulk at solve exit) so the resource probe sees
       node and pivot throughput mid-solve; the per-worker counter
       feeds the per-domain rate series. *)
    Obs.Counter.incr c_nodes;
    Obs.Counter.incr w.w_cnode;
    let depth = chain_depth node.bounds in
    let r = solve_node w node in
    w.w_iters <- w.w_iters + r.Simplex.iterations;
    Obs.Counter.incr ~by:r.Simplex.iterations c_pivots;
    if Obs.Trace.enabled () then begin
      let warm =
        (not cold_mode)
        &&
        match w.wstate with
        | Some st -> Simplex.last_resolve_warm st
        | None -> false
      in
      Obs.Trace.instant ~cat:"milp" ~tid:(w.wid + 1) "milp.node"
        ~args:
          [
            ("n", Obs.Json.Int node_id);
            ("depth", Obs.Json.Int depth);
            ("bvar", Obs.Json.Int node.bvar);
            ("status", Obs.Json.String (status_label r.Simplex.status));
            ("warm", Obs.Json.Bool warm);
            ("bound", Obs.Json.Float r.Simplex.objective);
            ("domain", Obs.Json.Int w.wid);
          ]
    end;
    if depth = 0 then begin
      root_bound := r.Simplex.objective;
      (match r.Simplex.status with
      | Simplex.Infeasible -> infeasible_root := true
      | Simplex.Unbounded -> unbounded_root := true
      | Simplex.Optimal | Simplex.Iteration_limit | Simplex.Time_limit -> ());
      (* The pre-fixing root duals ground the CERT audit of every
         reduced-cost fixing event, so capture them before [fix_by_
         reduced_cost] runs below. *)
      if certs_on && r.Simplex.status = Simplex.Optimal then
        root_duals :=
          (match w.wstate with Some st -> Simplex.duals st | None -> None)
    end;
    (* Certificate fathom record: set by the branch taken below, emitted
       once on the way out. *)
    let fathom = ref Cert.F_budget in
    let outcome =
      match r.Simplex.status with
      | Simplex.Infeasible ->
          fathom := Cert.F_infeasible;
          Leaf
      | Simplex.Unbounded ->
          (* With integer bounds intact this means the MILP is unbounded
             (or numerically hopeless); stop exploring. *)
          Stop_unbounded
      | Simplex.Time_limit ->
          (* The worker deadline ran out mid-pivot. A watchdog cancel
             means only this worker was unwedged — the node is requeued
             and the solve goes on; genuine time expiry stops the solve
             like the between-node budget check. Either way the node is
             still open, so it gets no certificate entry. *)
          if Resilience.Deadline.cancelled w.w_dl then Cancelled
          else Stop_budget
      | Simplex.Iteration_limit ->
          (* Pruning an unsolved subproblem is unsound for optimality
             claims, so count it: any such node demotes Optimal to
             Feasible below. *)
          w.w_limited <- w.w_limited + 1;
          Log.warn (fun f ->
              f "LP iteration limit at node %d (depth %d); pruning" node_id
                depth);
          Leaf
      | Simplex.Optimal ->
          if node.bvar >= 0 then
            pc_record w.wpc ~j:node.bvar ~dir_up:node.dir_up
              ~unit:(if node.dir_up then 1.0 -. node.bfrac else node.bfrac)
              ~degrade:(Float.max 0.0 (r.Simplex.objective -. node.bound));
          if depth = 0 && (not cold_mode) && have_inc () then
            fix_by_reduced_cost w r.Simplex.objective;
          if r.Simplex.objective >= Atomic.get best_obj -. 1e-9 && have_inc ()
          then begin
            fathom := Cert.F_bound;
            Leaf
          end
          else begin
            let j =
              if cold_mode then
                most_fractional raw ~int_tol ?priority:branch_priority
                  r.Simplex.x
              else
                pseudocost_branch raw ~int_tol ?priority:branch_priority w.wpc
                  r.Simplex.x
            in
            if j < 0 then begin
              (* integral: candidate incumbent *)
              let x = snap raw ~int_tol r.Simplex.x in
              let obj =
                Array.fold_left ( +. ) 0.0
                  (Array.mapi (fun j v -> raw.obj.(j) *. v) x)
              in
              try_improve ~wid:w.wid ~node_id ~nid:node.nid ~depth
                ~open_bound_now x obj;
              fathom := Cert.F_integral;
              Leaf
            end
            else begin
              let v = r.Simplex.x.(j) in
              let fl = Float.of_int (int_of_float (floor v)) in
              (* wlb/wub currently hold this node's bounds, so [prev]
                 reads the parent value the chain invariant needs. *)
              let down =
                { nid = alloc_nid (); parent_nid = node.nid;
                  bounds =
                    Tighten { j; side = Ub; v = fl; prev = w.wub.(j);
                              depth = depth + 1; parent = node.bounds };
                  bound = r.Simplex.objective; bvar = j;
                  bfrac = v -. fl; dir_up = false; cancels = 0 }
              and up =
                { nid = alloc_nid (); parent_nid = node.nid;
                  bounds =
                    Tighten { j; side = Lb; v = fl +. 1.0; prev = w.wlb.(j);
                              depth = depth + 1; parent = node.bounds };
                  bound = r.Simplex.objective; bvar = j;
                  bfrac = v -. fl; dir_up = true; cancels = 0 }
              in
              fathom :=
                Cert.F_branched
                  { bvar = j; down_id = down.nid; down_ub = fl;
                    up_id = up.nid; up_lb = fl +. 1.0 };
              (* Dive toward the nearest integer first. *)
              if v -. fl <= 0.5 then Children (down, up)
              else Children (up, down)
            end
          end
    in
    let cert =
      match outcome with
      (* A cancelled or budget-cut node stays open (requeued / left in
         the frontier), so it must not appear closed in the node log —
         a resumed solve will process it for real. *)
      | Cancelled | Stop_budget -> None
      | _ when not certs_on -> None
      | _ ->
          Some
            { Cert.id = node.nid; parent = node.parent_nid;
              branch = branch_of node; depth; domain = w.wid;
              claim =
                (match r.Simplex.status with
                | Simplex.Optimal -> (
                    match Option.bind w.wstate Simplex.duals with
                    | Some d ->
                        Cert.Lp_optimal
                          { obj = r.Simplex.objective; duals = d }
                    | None -> Cert.Lp_unsolved)
                | Simplex.Infeasible ->
                    Cert.Lp_infeasible
                      (Option.bind w.wstate Simplex.last_infeasibility)
                | Simplex.Unbounded | Simplex.Iteration_limit
                | Simplex.Time_limit ->
                    Cert.Lp_unsolved);
              bound =
                (match r.Simplex.status with
                | Simplex.Optimal -> r.Simplex.objective
                | _ -> node.bound);
              incumbent_at = Atomic.get best_obj; fathom = !fathom }
    in
    (outcome, cert)
  in
  (* Nodes pruned on their parent's bound before any LP solve still need a
     pruning-log entry: their soundness is audited against the nearest
     ancestor's dual certificate. *)
  let dominated_cert (w : wctx) (node : node) =
    if not certs_on then None
    else
      Some
        { Cert.id = node.nid; parent = node.parent_nid;
          branch = branch_of node; depth = chain_depth node.bounds;
          domain = w.wid; claim = Cert.Lp_unsolved; bound = node.bound;
          incumbent_at = Atomic.get best_obj; fathom = Cert.F_dominated }
  in
  let dominated (node : node) =
    let b = Atomic.get best_obj in
    Float.is_finite b && node.bound >= b -. 1e-9
  in
  (* Minimum dual bound over nodes left open when exploration stops
     early; infinity after an exhaustive run. *)
  let open_bound_end = ref infinity in
  (* ---------------------- stall watchdog ----------------------------- *)
  (* A dedicated domain that checks each worker's heartbeat against the
     stall window. Escalation ladder (DESIGN.md §3i): a worker whose
     lease has made no progress for a full window first gets a nudge
     (cold refactorization on its next LP); if the same wedged lease is
     still there on a later tick, its node is cancelled through the
     worker's deadline cell and requeued. Each node is cancelled at most
     once, so a merely-slow LP replays to completion. *)
  let wd_stop = Atomic.make false in
  let stall_note (w : wctx) level =
    ignore (Atomic.fetch_and_add n_stalls 1);
    Log.warn (fun f -> f "worker %d stalled; escalation: %s" w.wid level);
    if Obs.Log.enabled () then
      Obs.Log.event ~level:Obs.Log.Warn "milp.stall"
        [
          ("worker", Obs.Json.Int w.wid);
          ("level", Obs.Json.String level);
        ];
    if Obs.Trace.enabled () then
      Obs.Trace.instant ~cat:"milp" ~tid:(w.wid + 1) "milp.stall"
        ~args:
          [ ("worker", Obs.Json.Int w.wid); ("level", Obs.Json.String level) ]
  in
  let watchdog win =
    (* Per-slot beat value at the last nudge: a second trip over the same
       beat means the nudge did not help — escalate to cancel. *)
    let nudged : (int, float) Hashtbl.t = Hashtbl.create 8 in
    let tick = Float.max 0.005 (win /. 4.0) in
    while not (Atomic.get wd_stop) do
      Unix.sleepf tick;
      if not (Atomic.get wd_stop) then begin
        let now_ = Obs.Clock.wall () in
        Array.iter
          (fun (w : wctx) ->
            Mutex.lock pool_m;
            let lease = wlease.(w.wid) in
            Mutex.unlock pool_m;
            match lease with
            | None -> Hashtbl.remove nudged w.wid
            | Some node ->
                let beat = Atomic.get w.w_beat in
                if now_ -. beat > win then begin
                  if Hashtbl.find_opt nudged w.wid <> Some beat then begin
                    Hashtbl.replace nudged w.wid beat;
                    Atomic.set w.w_nudge true;
                    stall_note w "nudge"
                  end
                  else if node.cancels = 0 then begin
                    node.cancels <- 1;
                    Resilience.Deadline.cancel w.w_cell;
                    stall_note w "cancel"
                  end
                end)
          (Atomic.get all_wctxs)
      end
    done
  in
  let wd_dom =
    match stall_window with
    | Some win when win > 0.0 && not injected_timeout ->
        Some (Domain.spawn (fun () -> watchdog win))
    | _ -> None
  in
  (* -------------------- sequential engine (domains = 1) ------------- *)
  (* The private stack lives in [wlocal.(0)] and the lease table is kept
     current so the watchdog and checkpointer see the same frontier
     invariant as in the parallel engine. Recovery drains through the
     shared deque [q]. *)
  let run_sequential (init : node list) =
    wlocal.(0) := init;
    let open_bound_now obj =
      let acc =
        List.fold_left (fun acc (n : node) -> min acc n.bound) obj
          !(wlocal.(0))
      in
      List.fold_left (fun acc (n : node) -> min acc n.bound) acc !q
    in
    let next_node () =
      Mutex.lock pool_m;
      let r =
        match !(wlocal.(0)) with
        | n :: rest ->
            wlocal.(0) := rest;
            Some n
        | [] -> (
            match !q with
            | n :: rest ->
                q := rest;
                decr qlen;
                Some n
            | [] -> None)
      in
      (match r with Some n -> wlease.(0) <- Some n | None -> ());
      Mutex.unlock pool_m;
      (match r with
      | Some _ -> Atomic.set w0.w_beat (Obs.Clock.wall ())
      | None -> ());
      r
    in
    let requeue_front node =
      Mutex.lock pool_m;
      wlocal.(0) := node :: !(wlocal.(0));
      wlease.(0) <- None;
      Mutex.unlock pool_m
    in
    let clear_lease () =
      Mutex.lock pool_m;
      wlease.(0) <- None;
      Mutex.unlock pool_m
    in
    let append_cert c =
      match c with Some c -> w0.wcerts <- c :: w0.wcerts | None -> ()
    in
    let continue_ = ref true in
    while !continue_ do
      match next_node () with
      | None -> continue_ := false
      | Some node ->
          (if budget () then begin
             (* keep the in-hand node open: the exit gap and a final
                checkpoint both want its bound *)
             requeue_front node;
             budget_hit := true;
             continue_ := false
           end
           else if dominated node then begin
             append_cert (dominated_cert w0 node);
             clear_lease ()
           end
           else
             match process w0 ~open_bound_now node with
             | exception ((Out_of_memory | Stack_overflow) as e) -> raise e
             | exception e when recover w0 e -> ()
             | exception e ->
                 clear_lease ();
                 raise e
             | Leaf, c ->
                 append_cert c;
                 clear_lease ()
             | Stop_unbounded, c ->
                 append_cert c;
                 stopped_unbounded := true;
                 clear_lease ();
                 continue_ := false
             | Stop_budget, _ ->
                 requeue_front node;
                 budget_hit := true;
                 continue_ := false
             | Cancelled, _ ->
                 (* watchdog unwedge: re-open the node and re-arm *)
                 Mutex.lock pool_m;
                 q := !q @ [ node ];
                 incr qlen;
                 wlease.(0) <- None;
                 incr n_recoveries;
                 Mutex.unlock pool_m;
                 Resilience.Deadline.clear_cell w0.w_cell
             | Children (near, far), c ->
                 append_cert c;
                 Mutex.lock pool_m;
                 wlocal.(0) := near :: far :: !(wlocal.(0));
                 wlease.(0) <- None;
                 Mutex.unlock pool_m);
          Mutex.lock pool_m;
          write_checkpoint_locked ~force:false ();
          Mutex.unlock pool_m;
          Atomic.set w0.w_beat (Obs.Clock.wall ())
    done
  in
  (* -------------------- parallel engine (domains > 1) ---------------- *)
  (* Work distribution: each domain dives depth-first on a private stack;
     after every branch it keeps the near child and publishes the far
     child to a bounded shared deque (oldest entries are the shallowest,
     i.e. largest, subtrees). Idle domains steal from the old end of the
     deque; when the deque overflows its bound, siblings stay private.
     Termination: [pending] counts pushed-but-unfinished nodes; the
     decrement that reaches zero wakes every sleeper. Every taken node is
     leased until its completion section runs, so worker deaths replay
     exactly the in-flight subtrees and snapshots are complete. *)
  let run_parallel (init : node list) =
    (match init with
    | [] -> ()
    | first :: rest ->
        wlocal.(0) := [ first ];
        q := rest;
        qlen := List.length rest);
    let pending = Atomic.make (List.length init) in
    let stop : [ `Budget | `Unbounded | `Exn of exn ] option Atomic.t =
      Atomic.make None
    in
    (* Under [pool_m]. *)
    let request_stop_locked r =
      if Atomic.compare_and_set stop None (Some r) then
        Condition.broadcast pool_cv
    in
    (* Steal the oldest (shallowest) published node. Called under
       [pool_m]; O(qcap) worst case, and qcap is small. *)
    let steal () =
      match !q with
      | [] -> None
      | l ->
          let rec split_last acc = function
            | [ x ] -> (acc, x)
            | x :: tl -> split_last (x :: acc) tl
            | [] -> assert false
          in
          let rev_rest, last = split_last [] l in
          q := List.rev rev_rest;
          decr qlen;
          Some last
    in
    let finish_pending () =
      if Atomic.fetch_and_add pending (-1) = 1 then
        Condition.broadcast pool_cv
    in
    (* Take the next node: own stack first, else steal; leases it before
       releasing the lock. Returns [(node, stolen)]. *)
    let take (w : wctx) =
      Mutex.lock pool_m;
      let rec wait_loop () =
        if Atomic.get stop <> None then None
        else
          match !(wlocal.(w.wid)) with
          | n :: rest ->
              wlocal.(w.wid) := rest;
              Some (n, false)
          | [] -> (
              match steal () with
              | Some n -> Some (n, true)
              | None ->
                  if Atomic.get pending = 0 then None
                  else begin
                    Condition.wait pool_cv pool_m;
                    wait_loop ()
                  end)
      in
      let r = wait_loop () in
      (match r with
      | Some (n, _) -> wlease.(w.wid) <- Some n
      | None -> ());
      Mutex.unlock pool_m;
      (match r with
      | Some _ -> Atomic.set w.w_beat (Obs.Clock.wall ())
      | None -> ());
      r
    in
    (* One critical section retires (or republishes) the node, appends
       its certificate and clears the lease, so the frontier invariant
       holds at every instant a snapshot could be taken. *)
    let complete (w : wctx) (node : node) outcome cert =
      Mutex.lock pool_m;
      (match cert with Some c -> w.wcerts <- c :: w.wcerts | None -> ());
      (match outcome with
      | Leaf ->
          wlease.(w.wid) <- None;
          finish_pending ()
      | Children (near, far) ->
          (* count the children before retiring the parent so [pending]
             can never dip to 0 with work in flight *)
          ignore (Atomic.fetch_and_add pending 2);
          let published = !qlen < qcap in
          if published then begin
            q := far :: !q;
            incr qlen;
            Condition.signal pool_cv
          end;
          wlocal.(w.wid) :=
            (if published then [ near ] else [ near; far ])
            @ !(wlocal.(w.wid));
          wlease.(w.wid) <- None;
          finish_pending ()
      | Cancelled ->
          (* watchdog unwedge: the node is still open — requeue it at
             the steal end for any worker to replay, and re-arm this
             worker's cell *)
          q := !q @ [ node ];
          incr qlen;
          wlease.(w.wid) <- None;
          Resilience.Deadline.clear_cell w.w_cell;
          incr n_recoveries;
          Condition.signal pool_cv
      | Stop_budget ->
          (* mid-LP budget stop: the node stays open for the exit gap
             and the final checkpoint *)
          wlocal.(w.wid) := node :: !(wlocal.(w.wid));
          wlease.(w.wid) <- None;
          request_stop_locked `Budget
      | Stop_unbounded ->
          wlease.(w.wid) <- None;
          request_stop_locked `Unbounded;
          finish_pending ());
      write_checkpoint_locked ~force:false ();
      Mutex.unlock pool_m;
      Atomic.set w.w_beat (Obs.Clock.wall ())
    in
    let worker (w : wctx) =
      (* Conservative open bound for incumbent notes: the root
         relaxation (folding every private stack would need a second
         lock hierarchy for a purely observational number). *)
      let open_bound_now obj = Float.min obj !root_bound in
      let rec loop () =
        match take w with
        | None -> ()
        | Some (node, stolen) ->
            (if budget () then begin
               Mutex.lock pool_m;
               (* keep the in-hand node's bound for the exit gap *)
               wlocal.(w.wid) := node :: !(wlocal.(w.wid));
               wlease.(w.wid) <- None;
               request_stop_locked `Budget;
               Mutex.unlock pool_m
             end
             else if
               stolen && Resilience.Fault.fires "milp.steal_drop"
             then begin
               (* the thief dies at the steal handoff, taking the entry
                  with it: recover as a worker death so the leased node
                  replays instead of vanishing *)
               if not (recover w Worker_killed) then raise Worker_killed
             end
             else if dominated node then begin
               let c = dominated_cert w node in
               Mutex.lock pool_m;
               (match c with
               | Some c -> w.wcerts <- c :: w.wcerts
               | None -> ());
               wlease.(w.wid) <- None;
               finish_pending ();
               Mutex.unlock pool_m
             end
             else
               match process w ~open_bound_now node with
               | exception ((Out_of_memory | Stack_overflow) as e) ->
                   raise e
               | exception e when recover w e -> ()
               | exception e -> raise e
               | outcome, cert -> complete w node outcome cert);
            loop ()
      in
      try loop ()
      with e ->
        (* Unrecoverable (death budget spent, or resource exhaustion):
           requeue the lease so no subtree is silently lost, then stop
           the pool and propagate. *)
        Mutex.lock pool_m;
        (match wlease.(w.wid) with
        | Some n ->
            q := !q @ [ n ];
            incr qlen;
            wlease.(w.wid) <- None
        | None -> ());
        request_stop_locked (`Exn e);
        Mutex.unlock pool_m
    in
    let wctxs =
      Array.init domains (fun i ->
          if i = 0 then w0
          else mk_wctx i (Array.copy w0.wlb) (Array.copy w0.wub))
    in
    Atomic.set all_wctxs wctxs;
    let spawned =
      Array.init (domains - 1) (fun i ->
          Domain.spawn (fun () -> worker wctxs.(i + 1)))
    in
    worker w0;
    Array.iter Domain.join spawned;
    (match Atomic.get stop with
    | Some (`Exn e) -> raise e
    | Some `Budget -> budget_hit := true
    | Some `Unbounded -> stopped_unbounded := true
    | None -> ());
    (* Merge per-domain counters into the coordinator's context so the
       stats assembly below has one source. *)
    Array.iter
      (fun (w : wctx) ->
        if w != w0 then begin
          w0.w_iters <- w0.w_iters + w.w_iters;
          w0.w_limited <- w0.w_limited + w.w_limited;
          w0.w_warm <- w0.w_warm + w.w_warm;
          w0.wcerts <- List.rev_append w.wcerts w0.wcerts
        end)
      wctxs
  in
  (* -------------------- root cutting planes -------------------------- *)
  (* Coordinator-only, before the root node is processed: solve the root
     relaxation once, then alternate separation (Chvátal–Gomory rounds
     from the warm tableau, knapsack covers from the model rows) with
     warm dual-simplex resolves. Every accepted cut is appended to
     [!raw_solve] and logged for the certificate, so the audit can
     re-derive it exactly and every later cold solver build sees it.
     The loop leaves its warm state in [w0.wstate]; root processing then
     resolves it in place (a no-op repair) and captures the post-cut
     bound and duals over the extended row system. *)
  let max_cut_rounds = 8 in
  let max_cuts_per_round = 20 in
  let root_cut_prep () =
    if cuts_on && not (budget ()) then begin
      let r0, st =
        Simplex.solve_state ~max_iters:max_lp_iters ~deadline:w0.w_dl
          ~lb:w0.wlb ~ub:w0.wub !raw_solve
      in
      w0.w_iters <- w0.w_iters + r0.Simplex.iterations;
      Obs.Counter.incr ~by:r0.Simplex.iterations c_pivots;
      w0.wstate <- Some st;
      if r0.Simplex.status = Simplex.Optimal then begin
        cut_b0 := r0.Simplex.objective;
        cut_b1 := r0.Simplex.objective;
        let pool = Cutgen.create () in
        let cur = ref r0 in
        let stop = ref false in
        while
          (not !stop) && !cut_rounds < max_cut_rounds && not (budget ())
        do
          let rawe = !raw_solve in
          let x = !cur.Simplex.x in
          List.iter (Cutgen.offer pool)
            (Cutgen.cg_cuts rawe ~lb:w0.wlb ~ub:w0.wub ~x ~int_tol
               ~multipliers:(Simplex.tableau_multipliers st));
          List.iter (Cutgen.offer pool)
            (Cutgen.cover_cuts rawe ~n_rows:(Array.length raw.Model.rows)
               ~lb:w0.wlb ~ub:w0.wub ~x);
          match Cutgen.select pool ~x ~max_cuts:max_cuts_per_round with
          | [] -> stop := true
          | chosen ->
              Simplex.add_rows st
                (Array.of_list
                   (List.map
                      (fun c -> (c.Cert.cut_terms, c.Cert.cut_rhs))
                      chosen));
              raw_solve := extend_raw rawe chosen;
              cuts_log := !cuts_log @ chosen;
              incr cut_rounds;
              let r =
                Simplex.resolve ~max_iters:max_lp_iters ~deadline:w0.w_dl
                  ~lb:w0.wlb ~ub:w0.wub st
              in
              w0.w_iters <- w0.w_iters + r.Simplex.iterations;
              Obs.Counter.incr ~by:r.Simplex.iterations c_pivots;
              (match r.Simplex.status with
              | Simplex.Optimal ->
                  let prev = !cut_b1 in
                  cut_b1 := r.Simplex.objective;
                  cur := r;
                  if Obs.Trace.enabled () then
                    Obs.Trace.instant ~cat:"milp" "milp.cut_round"
                      ~args:
                        [
                          ("round", Obs.Json.Int !cut_rounds);
                          ("added", Obs.Json.Int (List.length chosen));
                          ("pool", Obs.Json.Int (Cutgen.pending pool));
                          ("bound0", Obs.Json.Float !cut_b0);
                          ("bound", Obs.Json.Float r.Simplex.objective);
                        ];
                  if Obs.Log.enabled () then
                    Obs.Log.event "milp.cut_round"
                      [
                        ("round", Obs.Json.Int !cut_rounds);
                        ("added", Obs.Json.Int (List.length chosen));
                        ("bound0", Obs.Json.Float !cut_b0);
                        ("bound", Obs.Json.Float r.Simplex.objective);
                      ];
                  (* Diminishing returns: a round that moves the bound by
                     less than a relative 1e-9 will not close the tree
                     any faster — stop separating (a second batch of
                     stalled cuts measurably slows every node LP for
                     nothing). *)
                  if
                    r.Simplex.objective -. prev
                    <= 1e-9 *. (1.0 +. Float.abs prev)
                  then stop := true
              | _ ->
                  (* Iteration/time limit mid-resolve: keep the cuts (they
                     are valid regardless) and let node processing deal
                     with the unfinished LP. *)
                  stop := true)
        done;
        (* Cuts pay rent only if they moved the root bound: every cut
           row slows every node LP in the tree (and perturbs the node
           ordering), so a separation pass that failed to lift the
           bound is discarded wholesale — the tree then solves the
           original system with an untouched warm root. *)
        if
          !cuts_log <> []
          && !cut_b1 -. !cut_b0 <= 1e-9 *. (1.0 +. Float.abs !cut_b0)
        then begin
          Log.info (fun f ->
              f "root cuts: %d separated in %d rounds left the bound at \
                 %.6g — discarded"
                (List.length !cuts_log) !cut_rounds !cut_b0);
          cuts_log := [];
          raw_solve := raw;
          cut_rounds := 0;
          cut_b0 := Float.nan;
          cut_b1 := Float.nan;
          w0.wstate <- None
        end
        else if !cuts_log <> [] then
          Log.info (fun f ->
              f "root cuts: %d applied in %d rounds, bound %.6g -> %.6g"
                (List.length !cuts_log) !cut_rounds !cut_b0 !cut_b1)
      end
    end
  in
  (* -------------------- root + engine dispatch ----------------------- *)
  let run_engines () =
    (match resume with
    | Some ck ->
        (* The closed prefix is already loaded into [w0]; rebuild the
           frontier and continue. An empty frontier means the
           checkpointed solve had already closed the tree — the carried
           incumbent and certificate log are the whole answer. *)
        let init = List.map node_of_open ck.Checkpoint.frontier in
        if budget () then begin
          budget_hit := true;
          Mutex.lock pool_m;
          q := init;
          qlen := List.length init;
          Mutex.unlock pool_m
        end
        else (
          match init with
          | [] -> ()
          | init ->
              if domains = 1 then run_sequential init
              else run_parallel init)
    | None ->
        let root =
          { nid = alloc_nid (); parent_nid = -1; bounds = Root;
            bound = neg_infinity; bvar = -1; bfrac = 0.0; dir_up = false;
            cancels = 0 }
        in
        if budget () then budget_hit := true
        else begin
          root_cut_prep ();
          (* Root: always processed by the coordinator alone, so
             reduced-cost fixing mutates the root arrays before any
             worker copies them — under the same supervision (bounded
             replay on injected kills and watchdog cancels) as every
             other node. *)
          let rec do_root () =
            Mutex.lock pool_m;
            wlease.(0) <- Some root;
            Mutex.unlock pool_m;
            Atomic.set w0.w_beat (Obs.Clock.wall ());
            match process w0 ~open_bound_now:(fun obj -> obj) root with
            | exception ((Out_of_memory | Stack_overflow) as e) -> raise e
            | exception e when recover w0 e ->
                (* recover parked the root lease on [q]; reclaim it *)
                Mutex.lock pool_m;
                q := [];
                qlen := 0;
                Mutex.unlock pool_m;
                do_root ()
            | exception e ->
                Mutex.lock pool_m;
                wlease.(0) <- None;
                Mutex.unlock pool_m;
                raise e
            | Cancelled, _ ->
                Resilience.Deadline.clear_cell w0.w_cell;
                Mutex.lock pool_m;
                wlease.(0) <- None;
                incr n_recoveries;
                Mutex.unlock pool_m;
                do_root ()
            | outcome, cert ->
                (match cert with
                | Some c -> w0.wcerts <- c :: w0.wcerts
                | None -> ());
                Mutex.lock pool_m;
                wlease.(0) <- None;
                Mutex.unlock pool_m;
                outcome
          in
          let root_outcome = do_root () in
          (* w0 still sits at the root chain here, so its arrays hold the
             post-fixing root box every subtree inherits. *)
          root_box_lb := Array.copy w0.wlb;
          root_box_ub := Array.copy w0.wub;
          if certs_on then begin
            cert_root_lb := Array.copy w0.wlb;
            cert_root_ub := Array.copy w0.wub
          end;
          match root_outcome with
          | Leaf -> ()
          | Cancelled -> assert false (* handled inside do_root *)
          | Stop_unbounded -> ()
          | Stop_budget ->
              budget_hit := true;
              (* keep the unprocessed root in the frontier: a checkpoint
                 of this state must resume into the root, not into an
                 empty (= already proved) tree *)
              Mutex.lock pool_m;
              wlocal.(0) := [ root ];
              Mutex.unlock pool_m
          | Children (near, far) ->
              if domains = 1 then run_sequential [ near; far ]
              else run_parallel [ near; far ]
        end);
    (* Exit bound over everything still open, wherever it lives. *)
    Mutex.lock pool_m;
    open_bound_end :=
      List.fold_left
        (fun acc (n : node) -> Float.min acc n.bound)
        infinity (frontier_locked ());
    (* Final flush: a budget-stopped supervised solve always leaves a
       fresh, resumable snapshot behind. *)
    write_checkpoint_locked ~force:true ();
    Mutex.unlock pool_m;
    (* [Stop_unbounded] left subtrees unexplored even though no budget
       was hit; a finite leftover bound keeps [proved] false below. *)
    if !stopped_unbounded && !open_bound_end = infinity then
      open_bound_end := !root_bound
  in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set wd_stop true;
      Option.iter Domain.join wd_dom)
    run_engines;
  let open_bound = !open_bound_end in
  (* A node LP that hit its iteration cap was pruned unsolved, so neither
     "all nodes closed" nor a closed gap proves optimality. *)
  let clean = w0.w_limited = 0 in
  let proved = (not !budget_hit) && open_bound = infinity && clean in
  let constant = Model.objective_constant model in
  let best = Atomic.get best_obj in
  let gap =
    match !best_x with
    | None -> infinity
    | Some _ ->
        if proved then 0.0
        else
          let lo = min open_bound best in
          let lo = if Float.is_finite lo then lo else !root_bound in
          Float.abs (best -. lo) /. Float.max 1.0 (Float.abs best)
  in
  let stats =
    {
      nodes = Atomic.get nodes;
      lp_iterations = w0.w_iters;
      elapsed = elapsed ();
      root_bound = !root_bound +. constant;
      gap;
      lp_limited = w0.w_limited;
      warm_hits = w0.w_warm;
      fixed_vars = !fixed_vars;
      first_incumbent_s = !first_inc;
      domains;
      checkpoints = !n_checkpoints;
      recoveries = !n_recoveries;
      stalls = Atomic.get n_stalls;
      cpu_s = Obs.Clock.cpu () -. cpu0;
      cuts_applied = List.length !cuts_log;
      cut_rounds = !cut_rounds;
      gap_closed_root =
        (* Fraction of the root gap the cut rounds closed:
           (post-cut bound - pre-cut bound) / (best - pre-cut bound),
           clamped to [0, 1]. NaN when unavailable: cuts off, no
           incumbent, resumed solve (the pre-cut bound was not
           checkpointed), or a degenerate zero root gap. *)
        (let b0 = !cut_b0 and b1 = !cut_b1 in
         if Float.is_nan b0 || Float.is_nan b1 || not (Float.is_finite best)
         then Float.nan
         else
           let denom = best -. b0 in
           if denom <= 1e-12 *. (1.0 +. Float.abs best) then Float.nan
           else Float.max 0.0 (Float.min 1.0 ((b1 -. b0) /. denom)));
    }
  in
  (* Nodes and pivots are counted live at their hook sites (so the
     resource probe sees throughput mid-solve); only a resumed run's
     closed prefix — nodes finished before the checkpoint, never
     reprocessed here — still needs adding for the counter to equal
     [stats.nodes]. Pivots carry no prefix: [lp_iterations] is
     this-run-only by design, so the live increments already cover it
     exactly. *)
  Obs.Counter.incr
    ~by:(match resume with Some ck -> ck.Checkpoint.nodes_done | None -> 0)
    c_nodes;
  Obs.Counter.incr ~by:stats.warm_hits c_warm_hits;
  Obs.Counter.incr ~by:stats.fixed_vars c_fixed_vars;
  Obs.Counter.incr ~by:stats.checkpoints c_checkpoints;
  Obs.Counter.incr ~by:stats.recoveries c_recoveries;
  Obs.Counter.incr ~by:stats.stalls c_stalls;
  Obs.Counter.incr ~by:stats.cuts_applied c_cuts_applied;
  Obs.Counter.incr ~by:stats.cut_rounds c_cut_rounds;
  if not (Float.is_nan stats.gap_closed_root) then
    Obs.Series.add s_gap_closed_root ~x:stats.elapsed ~y:stats.gap_closed_root;
  Obs.Series.add s_gap ~x:stats.elapsed ~y:stats.gap;
  if Obs.Log.enabled () then
    Obs.Log.event "milp.done"
      [
        ("nodes", Obs.Json.Int stats.nodes);
        ("pivots", Obs.Json.Int stats.lp_iterations);
        ("gap", Obs.Json.Float stats.gap);
        ("elapsed_s", Obs.Json.Float stats.elapsed);
      ];
  let mk_cert cstatus =
    if not certs_on then None
    else begin
      let c =
        {
          Cert.status = cstatus;
          objective = best;
          incumbent = Option.map Array.copy !best_x;
          incumbents = List.rev !inc_log;
          root_lb = !cert_root_lb;
          root_ub = !cert_root_ub;
          presolve = presolve_events;
          cuts = !cuts_log;
          fixes = List.rev !fix_log;
          root_duals = !root_duals;
          root_obj = !root_bound;
          nodes =
            List.sort
              (fun (a : Cert.node) b -> compare a.Cert.id b.Cert.id)
              w0.wcerts;
          budget_hit = !budget_hit;
          lp_limited = w0.w_limited;
          domains;
          gap_tol;
          int_tol;
        }
      in
      if Obs.Trace.enabled () then
        Obs.Trace.instant ~cat:"milp" "milp.cert" ~args:(Cert.summary_json c);
      Some c
    end
  in
  match !best_x with
  | Some x ->
      let status =
        if proved || (clean && gap <= gap_tol) then Optimal else Feasible
      in
      let cert =
        mk_cert
          (match status with Optimal -> Cert.Optimal | _ -> Cert.Feasible)
      in
      { status; x; objective = best +. constant; stats; cert }
  | None ->
      let status =
        if !unbounded_root then Unbounded
        else if !infeasible_root && not !budget_hit then Infeasible
        else if proved then Infeasible
        else Unknown
      in
      let cert =
        mk_cert
          (match status with
          | Infeasible -> Cert.Infeasible
          | Unbounded -> Cert.Unbounded
          | _ -> Cert.Unknown)
      in
      { status; x = Array.make raw.n 0.0; objective = infinity; stats; cert }

let value r v = r.x.(Model.var_index v)
let int_value r v = int_of_float (Float.round (value r v))

let pp_status ppf = function
  | Optimal -> Fmt.string ppf "optimal"
  | Feasible -> Fmt.string ppf "feasible"
  | Infeasible -> Fmt.string ppf "infeasible"
  | Unbounded -> Fmt.string ppf "unbounded"
  | Unknown -> Fmt.string ppf "unknown"

let pp_stats ppf s =
  Fmt.pf ppf "%d nodes, %d pivots, %.2fs, gap %.2g%%" s.nodes s.lp_iterations
    s.elapsed (100.0 *. s.gap);
  if s.domains > 1 then Fmt.pf ppf ", %d domains" s.domains;
  if s.warm_hits > 0 then Fmt.pf ppf ", %d warm" s.warm_hits;
  if s.cuts_applied > 0 then
    Fmt.pf ppf ", %d cut%s/%d round%s" s.cuts_applied
      (if s.cuts_applied = 1 then "" else "s")
      s.cut_rounds
      (if s.cut_rounds = 1 then "" else "s");
  if s.fixed_vars > 0 then Fmt.pf ppf ", %d fixed" s.fixed_vars;
  if s.checkpoints > 0 then
    Fmt.pf ppf ", %d checkpoint%s" s.checkpoints
      (if s.checkpoints = 1 then "" else "s");
  if s.recoveries > 0 then Fmt.pf ppf ", %d recovered" s.recoveries;
  if s.stalls > 0 then Fmt.pf ppf ", %d stall%s" s.stalls
      (if s.stalls = 1 then "" else "s");
  if s.lp_limited > 0 then
    Fmt.pf ppf ", %d LP limit hit%s" s.lp_limited
      (if s.lp_limited = 1 then "" else "s")
