type status = Optimal | Feasible | Infeasible | Unbounded | Unknown

type stats = {
  nodes : int;
  lp_iterations : int;
  elapsed : float;
  root_bound : float;
  gap : float;
  lp_limited : int;
  warm_hits : int;
  fixed_vars : int;
  first_incumbent_s : float;
  domains : int;
}

type result = {
  status : status;
  x : float array;
  objective : float;
  stats : stats;
  cert : Cert.t option;
}

let src = Logs.Src.create "lp.milp" ~doc:"branch and bound"

module Log = (val Logs.src_log src : Logs.LOG)

(* Instrumentation (lib/obs): cumulative across solves; reset by the
   driver. Purely observational — branching decisions never read it. *)
let c_solves = Obs.Counter.get "milp.solves"
let c_nodes = Obs.Counter.get "milp.bnb_nodes"
let c_pivots = Obs.Counter.get "milp.lp_pivots"
let c_incumbents = Obs.Counter.get "milp.incumbents"
let c_warm_hits = Obs.Counter.get "milp.warm_hits"
let c_fixed_vars = Obs.Counter.get "milp.fixed_vars"
let s_incumbents = Obs.Series.get "milp.incumbents"
let s_gap = Obs.Series.get "milp.exit_gap"
let s_conv = Obs.Series.get "milp.convergence"
let t_solve = Obs.Timer.get "milp.solve"

let status_label = function
  | Simplex.Optimal -> "optimal"
  | Simplex.Infeasible -> "infeasible"
  | Simplex.Unbounded -> "unbounded"
  | Simplex.Iteration_limit -> "iter_limit"
  | Simplex.Time_limit -> "time_limit"

(* PIPESYN_COLD_START (any non-empty value) forces the pre-warm-start
   behaviour — cold per-node LPs, most-fractional branching, no bound
   fixing — for A/B comparison. Read per solve so tests can toggle it. *)
let cold_start_forced () =
  match Sys.getenv_opt "PIPESYN_COLD_START" with
  | None | Some "" -> false
  | Some _ -> true

(* ------------------------------------------------------------------ *)
(* Node bounds: copy-on-branch chains                                  *)
(* ------------------------------------------------------------------ *)

(* A node's bounds are the root arrays plus a chain of single-entry
   tightenings, one [Tighten] per branch. Invariants: every chain entry is
   allocated once at branch time — while the parent's bounds are the
   materialized ones, so [prev] is exactly the parent's value — and never
   mutated afterwards; the root arrays are only mutated before the first
   branch (reduced-cost fixing). A node therefore costs O(1) memory
   instead of two O(n) array copies, and switching the working arrays
   between two nodes costs O(distance through their lowest common
   ancestor), not O(n). *)
type side = Lb | Ub

type chain =
  | Root
  | Tighten of {
      j : int;
      side : side;
      v : float;  (** bound value at and below this node *)
      prev : float;  (** the parent's value, for undo *)
      depth : int;
      parent : chain;
    }

let chain_depth = function Root -> 0 | Tighten t -> t.depth

let apply_entry lb ub = function
  | Root -> ()
  | Tighten t -> (
      match t.side with Lb -> lb.(t.j) <- t.v | Ub -> ub.(t.j) <- t.v)

let undo_entry lb ub = function
  | Root -> ()
  | Tighten t -> (
      match t.side with Lb -> lb.(t.j) <- t.prev | Ub -> ub.(t.j) <- t.prev)

(* Rewrite [lb]/[ub] (currently holding [from_]'s bounds) into [target]'s
   bounds: undo up to the common ancestor, re-apply down to [target].
   Undos run deepest-first and applies shallowest-first, so stacked
   changes to the same variable resolve correctly. *)
let goto ~lb ~ub ~from_ target =
  let rec undo_to c d =
    match c with
    | Tighten t when t.depth > d ->
        undo_entry lb ub c;
        undo_to t.parent d
    | c -> c
  in
  let rec collect_to c d acc =
    match c with
    | Tighten t when t.depth > d -> collect_to t.parent d (c :: acc)
    | c -> (c, acc)
  in
  let rec meet a b acc =
    if a == b then acc
    else
      match (a, b) with
      | Tighten ta, Tighten tb ->
          undo_entry lb ub a;
          meet ta.parent tb.parent (b :: acc)
      | _ -> acc (* both Root *)
  in
  let d = min (chain_depth from_) (chain_depth target) in
  let a = undo_to from_ d in
  let b, applies = collect_to target d [] in
  let applies = meet a b applies in
  List.iter (apply_entry lb ub) applies

type node = {
  nid : int;
      (** creation-order certificate id from a dedicated counter; 0 at the
          root. Distinct from the processing-order trace id: a child's nid
          exists before any domain picks it up, so the certificate's tree
          links are closed under work stealing. *)
  parent_nid : int;  (** -1 at the root *)
  bounds : chain;
  bound : float;  (** parent LP objective: the node's dual bound *)
  bvar : int;  (** variable branched to create this node; -1 at root *)
  bfrac : float;  (** fractional part of [bvar] in the parent LP *)
  dir_up : bool;  (** up child ([lb := ceil]) vs down child ([ub := floor]) *)
}

(* The chain entry that created a node's box, as certificate data. *)
let branch_of (node : node) =
  match node.bounds with
  | Root -> None
  | Tighten t ->
      Some
        (t.j, (match t.side with Lb -> Cert.Lower | Ub -> Cert.Upper), t.v)

(* ------------------------------------------------------------------ *)
(* Branching                                                           *)
(* ------------------------------------------------------------------ *)

let most_fractional raw ~int_tol ?priority x =
  let best = ref (-1) and best_frac = ref int_tol and best_prio = ref min_int in
  let prio j = match priority with None -> 0 | Some p -> p.(j) in
  Array.iteri
    (fun j isint ->
      if isint then begin
        let v = x.(j) in
        let frac = Float.abs (v -. Float.round v) in
        if frac > int_tol then begin
          let p = prio j in
          if p > !best_prio || (p = !best_prio && frac > !best_frac) then begin
            best := j;
            best_frac := frac;
            best_prio := p
          end
        end
      end)
    raw.Model.integer;
  !best

(* Per-variable pseudocosts: observed objective degradation per unit of
   fractional distance, separately for the down and up branch. *)
type pseudocost = {
  dn_sum : float array;
  dn_n : int array;
  up_sum : float array;
  up_n : int array;
}

let pc_create n =
  {
    dn_sum = Array.make n 0.0;
    dn_n = Array.make n 0;
    up_sum = Array.make n 0.0;
    up_n = Array.make n 0;
  }

let pc_record pc ~j ~dir_up ~unit ~degrade =
  if unit > 1e-9 then
    if dir_up then begin
      pc.up_sum.(j) <- pc.up_sum.(j) +. (degrade /. unit);
      pc.up_n.(j) <- pc.up_n.(j) + 1
    end
    else begin
      pc.dn_sum.(j) <- pc.dn_sum.(j) +. (degrade /. unit);
      pc.dn_n.(j) <- pc.dn_n.(j) + 1
    end

(* Pseudocost branching seeded by priority: within the highest priority
   class having any fractionality, maximize the product of estimated
   degradations. Uninitialized variables use the average observed
   pseudocost; before any observation that degenerates to f·(1−f),
   i.e. plain most-fractional. *)
let pseudocost_branch raw ~int_tol ?priority pc x =
  let avg sum n =
    let tot = ref 0.0 and cnt = ref 0 in
    Array.iteri
      (fun j c ->
        if c > 0 then begin
          tot := !tot +. (sum.(j) /. float_of_int c);
          incr cnt
        end)
      n;
    if !cnt > 0 then !tot /. float_of_int !cnt else 1.0
  in
  let avg_dn = avg pc.dn_sum pc.dn_n and avg_up = avg pc.up_sum pc.up_n in
  let prio j = match priority with None -> 0 | Some p -> p.(j) in
  let best = ref (-1)
  and best_score = ref neg_infinity
  and best_frac = ref 0.0
  and best_prio = ref min_int in
  Array.iteri
    (fun j isint ->
      if isint then begin
        let v = x.(j) in
        let frac = Float.abs (v -. Float.round v) in
        if frac > int_tol then begin
          let p = prio j in
          let fdn = v -. Float.floor v in
          let fup = 1.0 -. fdn in
          let pcd =
            if pc.dn_n.(j) > 0 then pc.dn_sum.(j) /. float_of_int pc.dn_n.(j)
            else avg_dn
          and pcu =
            if pc.up_n.(j) > 0 then pc.up_sum.(j) /. float_of_int pc.up_n.(j)
            else avg_up
          in
          let score =
            Float.max 1e-9 (fdn *. pcd) *. Float.max 1e-9 (fup *. pcu)
          in
          if
            p > !best_prio
            || (p = !best_prio
               && (score > !best_score +. 1e-12
                  || (score > !best_score -. 1e-12 && frac > !best_frac)))
          then begin
            best := j;
            best_score := score;
            best_frac := frac;
            best_prio := p
          end
        end
      end)
    raw.Model.integer;
  !best

let snap raw ~int_tol x =
  Array.mapi
    (fun j v ->
      if raw.Model.integer.(j) && Float.abs (v -. Float.round v) <= 100. *. int_tol
      then Float.round v
      else v)
    x

(* ------------------------------------------------------------------ *)
(* Parallel exploration                                                *)
(* ------------------------------------------------------------------ *)

(* PIPESYN_DOMAINS selects how many OCaml 5 domains explore the tree
   (default 1 = the sequential engine). Read per solve, like
   PIPESYN_COLD_START, so drivers and tests can toggle it. *)
let domains_from_env () =
  match Sys.getenv_opt "PIPESYN_DOMAINS" with
  | None | Some "" -> 1
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some d when d >= 1 -> min d 64
      | _ -> 1)

(* Deterministic incumbent tie-breaking: among solutions whose objectives
   agree within the acceptance tolerance, the lexicographically smallest
   solution vector wins. Unlike an exploration-order node id, this key
   does not depend on which domain reached the solution first, so the
   final incumbent is stable run-to-run and across domain counts. *)
let lex_less a b =
  let n = Array.length a in
  let rec go i =
    if i >= n then false
    else if a.(i) < b.(i) -. 1e-9 then true
    else if a.(i) > b.(i) +. 1e-9 then false
    else go (i + 1)
  in
  go 0

(* Per-worker exploration context: every domain owns its bound arrays,
   its chain position, its Simplex warm-start state and its pseudocost
   table, so node LPs never share mutable solver state across domains.
   Chains are immutable and reference bound values relative to the
   post-fixing root arrays (identical in every context), which is what
   makes subtrees shippable between domains. *)
type wctx = {
  wid : int;  (** worker slot; 0 is the coordinator *)
  wlb : float array;
  wub : float array;
  mutable wcur : chain;
  mutable wstate : Simplex.state option;
  wpc : pseudocost;
  mutable w_iters : int;
  mutable w_limited : int;
  mutable w_warm : int;
  mutable wcerts : Cert.node list;
      (** per-worker certificate log, newest first; merged after join *)
}

(* What processing one node asks of the scheduler. Children come in dive
   order: [near] (round-to-nearest) is explored next, [far] is the
   publishable sibling. *)
type outcome =
  | Leaf
  | Children of node * node  (** (near, far) *)
  | Stop_budget
  | Stop_unbounded

let solve ?(time_limit = 60.0) ?(node_limit = 200_000) ?(max_lp_iters = 50_000)
    ?(gap_tol = 1e-6) ?(int_tol = 1e-6)
    ?(deadline = Resilience.Deadline.none) ?incumbent ?branch_priority
    ?domains ?(certificates = false) model =
  let domains =
    match domains with
    | Some d -> max 1 (min d 64)
    | None -> domains_from_env ()
  in
  Obs.Timer.span t_solve @@ fun () ->
  Obs.Trace.span ~cat:"milp" "milp.solve"
    ~args:[ ("domains", Obs.Json.Int domains) ]
  @@ fun () ->
  Obs.Counter.incr c_solves;
  if Resilience.Fault.fires "milp.raise" then
    failwith "injected fault: milp.raise";
  (* The injected timeout models "budget exhausted before any incumbent":
     warm-start seeding is skipped so the solve reports Unknown, the
     hardest failure the cascade must absorb. *)
  let injected_timeout = Resilience.Fault.fires "milp.timeout" in
  let cold_mode = cold_start_forced () in
  (* Certificates need the warm-start solver state (duals, Farkas rays
     live in the reusable tableau), so forced cold-start runs emit none. *)
  let certs_on = certificates && not cold_mode in
  (* Certificate node ids: allocated at node creation, independent of the
     processing-order trace id. *)
  let next_nid = Atomic.make 0 in
  let alloc_nid () = Atomic.fetch_and_add next_nid 1 in
  let inc_log = ref [] in  (* accepted incumbents, newest first; under inc_m *)
  let fix_log = ref [] in  (* root bound-fixing events; coordinator only *)
  let root_duals = ref None in
  let cert_root_lb = ref [||] and cert_root_ub = ref [||] in
  (* Deadline-aware budget: whichever of the caller's deadline and the
     local time budget is tighter governs both the node loop and — via
     Simplex — every pivot inside a node. Note the clock is [Sys.time]
     (process CPU seconds), which accumulates across all running
     domains. *)
  let dl = Resilience.Deadline.clip deadline ~budget:time_limit in
  let raw = Model.to_raw model in
  let t0 = Sys.time () in
  let elapsed () = Sys.time () -. t0 in
  (* Shared incumbent: [best_obj] is the lock-free pruning bound (reads
     may be stale by at most one improvement — only ever too weak, never
     unsound); [inc_m] serializes updates so the accept decision and the
     [best_x] write are one step. *)
  let inc_m = Mutex.create () in
  let best_x = ref None in
  let best_obj = Atomic.make infinity in
  let have_inc () = Float.is_finite (Atomic.get best_obj) in
  let first_inc = ref Float.nan in
  let nodes = Atomic.make 0 in
  (* Convergence timeline: one point (and one trace instant) per
     incumbent, carrying the relative incumbent/bound gap at that
     moment. Observational only. *)
  let note_incumbent ?(tid = 1) ~obj ~gap ~node ~depth ~seeded () =
    if Float.is_nan !first_inc then first_inc := elapsed ();
    Obs.Series.add s_conv ~x:(elapsed ()) ~y:gap;
    if Obs.Trace.enabled () then
      Obs.Trace.instant ~cat:"milp" ~tid "milp.incumbent"
        ~args:
          [
            ("objective", Obs.Json.Float obj);
            ("gap", Obs.Json.Float gap);
            ("node", Obs.Json.Int node);
            ("depth", Obs.Json.Int depth);
            ("seeded", Obs.Json.Bool seeded);
          ]
  in
  (* Deterministic incumbent acceptance (any domain): strictly better
     objectives always replace; objectives tied within tolerance fall
     back to the lexicographic solution-vector order, so the surviving
     incumbent does not depend on which domain raced in first. *)
  let try_improve ~wid ~node_id ~nid ~depth ~open_bound_now x obj =
    Mutex.lock inc_m;
    let cur = Atomic.get best_obj in
    let accept =
      obj < cur -. 1e-9
      || obj <= cur +. 1e-9
         &&
         match !best_x with None -> true | Some bx -> lex_less x bx
    in
    if accept then begin
      Atomic.set best_obj obj;
      best_x := Some x;
      if certs_on then inc_log := (nid, obj) :: !inc_log;
      Obs.Counter.incr c_incumbents;
      Obs.Series.add s_incumbents ~x:(elapsed ()) ~y:obj;
      (* Dual bound over the remaining open nodes (this node itself is
         integral, so its own value also bounds the search). *)
      let gap_now =
        let lo = open_bound_now obj in
        if Float.is_finite lo then
          Float.abs (obj -. lo) /. Float.max 1.0 (Float.abs obj)
        else Float.nan
      in
      note_incumbent ~tid:(wid + 1) ~obj ~gap:gap_now ~node:node_id ~depth
        ~seeded:false ();
      Log.info (fun f ->
          f "incumbent %.6g at node %d depth %d (domain %d)" obj node_id
            depth wid)
    end;
    Mutex.unlock inc_m
  in
  (match incumbent with
  | _ when injected_timeout -> ()
  | None -> ()
  | Some x ->
      if Array.length x <> raw.n then
        invalid_arg "Milp.solve: incumbent length mismatch";
      (match Model.check model ~values:(fun v -> x.(Model.var_index v)) () with
      | Error msg -> invalid_arg ("Milp.solve: infeasible incumbent: " ^ msg)
      | Ok () -> ());
      (* Snap near-integral entries so the stored incumbent is exactly
         integral — the certificate audit checks integrality with zero
         tolerance, and [Model.check] above already vouched for the
         unsnapped point at the contract tolerance. *)
      let x = snap raw ~int_tol x in
      let obj =
        Array.fold_left ( +. ) 0.0
          (Array.mapi (fun j v -> raw.obj.(j) *. v) x)
      in
      best_x := Some (Array.copy x);
      Atomic.set best_obj obj;
      if certs_on then inc_log := (-1, obj) :: !inc_log;
      Obs.Counter.incr c_incumbents;
      Obs.Series.add s_incumbents ~x:(elapsed ()) ~y:obj;
      (* No relaxation solved yet, so no dual bound: gap unknown. *)
      note_incumbent ~obj ~gap:Float.nan ~node:0 ~depth:0 ~seeded:true ());
  let fixed_vars = ref 0 in
  let root_bound = ref neg_infinity in
  let budget_hit = ref false in
  let infeasible_root = ref false in
  let unbounded_root = ref false in
  let budget () =
    injected_timeout
    || Resilience.Deadline.expired dl
    || Atomic.get nodes >= node_limit
  in
  let mk_wctx wid lb ub =
    { wid; wlb = lb; wub = ub; wcur = Root; wstate = None;
      wpc = pc_create raw.n; w_iters = 0; w_limited = 0; w_warm = 0;
      wcerts = [] }
  in
  let solve_node (w : wctx) (node : node) =
    goto ~lb:w.wlb ~ub:w.wub ~from_:w.wcur node.bounds;
    w.wcur <- node.bounds;
    if cold_mode then
      Simplex.solve ~max_iters:max_lp_iters ~deadline:dl ~lb:w.wlb ~ub:w.wub
        raw
    else
      match w.wstate with
      | None ->
          let r, st =
            Simplex.solve_state ~max_iters:max_lp_iters ~deadline:dl
              ~lb:w.wlb ~ub:w.wub raw
          in
          w.wstate <- Some st;
          r
      | Some st ->
          let r =
            Simplex.resolve ~max_iters:max_lp_iters ~deadline:dl ~lb:w.wlb
              ~ub:w.wub st
          in
          if Simplex.last_resolve_warm st then w.w_warm <- w.w_warm + 1;
          r
  in
  (* Reduced-cost bound fixing at the root: with an incumbent of value
     [z*] and a root relaxation of value [z0], any solution moving an
     integer variable off the bound it is nonbasic at costs at least its
     reduced cost [|d_j|]; if [|d_j| > z* - z0] every such solution is
     strictly worse than the incumbent, so the variable can be fixed —
     shrinking the space the cut-selection binaries blow up. Must run
     before the first branch (the chain invariant above), which also
     means before worker contexts copy the root arrays. *)
  let fix_by_reduced_cost (w : wctx) root_obj =
    match w.wstate with
    | None -> ()
    | Some st ->
        let gap = Float.max 0.0 (Atomic.get best_obj -. root_obj) in
        if Float.is_finite gap then begin
          let before = !fixed_vars in
          for j = 0 to raw.n - 1 do
            if raw.integer.(j) && w.wub.(j) -. w.wlb.(j) > 0.5 then
              match Simplex.basis_status st j with
              | `At_lower when Simplex.reduced_cost st j > gap +. 1e-7 ->
                  w.wub.(j) <- w.wlb.(j);
                  if certs_on then fix_log := (j, Cert.Lower) :: !fix_log;
                  incr fixed_vars
              | `At_upper when -.(Simplex.reduced_cost st j) > gap +. 1e-7 ->
                  w.wlb.(j) <- w.wub.(j);
                  if certs_on then fix_log := (j, Cert.Upper) :: !fix_log;
                  incr fixed_vars
              | _ -> ()
          done;
          if Obs.Trace.enabled () && !fixed_vars > before then
            Obs.Trace.instant ~cat:"milp" "milp.fixed_vars"
              ~args:[ ("count", Obs.Json.Int (!fixed_vars - before)) ]
        end
  in
  (* Solve one node on worker [w]. [open_bound_now] supplies the dual
     bound over the currently open nodes for the incumbent gap note
     (exact for the sequential engine, conservative for the parallel
     one). *)
  let process (w : wctx) ~open_bound_now (node : node) =
    let node_id = 1 + Atomic.fetch_and_add nodes 1 in
    let depth = chain_depth node.bounds in
    let r = solve_node w node in
    w.w_iters <- w.w_iters + r.Simplex.iterations;
    if Obs.Trace.enabled () then begin
      let warm =
        (not cold_mode)
        &&
        match w.wstate with
        | Some st -> Simplex.last_resolve_warm st
        | None -> false
      in
      Obs.Trace.instant ~cat:"milp" ~tid:(w.wid + 1) "milp.node"
        ~args:
          [
            ("n", Obs.Json.Int node_id);
            ("depth", Obs.Json.Int depth);
            ("bvar", Obs.Json.Int node.bvar);
            ("status", Obs.Json.String (status_label r.Simplex.status));
            ("warm", Obs.Json.Bool warm);
            ("bound", Obs.Json.Float r.Simplex.objective);
            ("domain", Obs.Json.Int w.wid);
          ]
    end;
    if depth = 0 then begin
      root_bound := r.Simplex.objective;
      (match r.Simplex.status with
      | Simplex.Infeasible -> infeasible_root := true
      | Simplex.Unbounded -> unbounded_root := true
      | Simplex.Optimal | Simplex.Iteration_limit | Simplex.Time_limit -> ());
      (* The pre-fixing root duals ground the CERT audit of every
         reduced-cost fixing event, so capture them before [fix_by_
         reduced_cost] runs below. *)
      if certs_on && r.Simplex.status = Simplex.Optimal then
        root_duals :=
          (match w.wstate with Some st -> Simplex.duals st | None -> None)
    end;
    (* Certificate fathom record: set by the branch taken below, emitted
       once on the way out. *)
    let fathom = ref Cert.F_budget in
    let outcome =
      match r.Simplex.status with
      | Simplex.Infeasible ->
          fathom := Cert.F_infeasible;
          Leaf
      | Simplex.Unbounded ->
          (* With integer bounds intact this means the MILP is unbounded
             (or numerically hopeless); stop exploring. *)
          Stop_unbounded
      | Simplex.Time_limit ->
          (* The deadline ran out mid-pivot: stop and report the best
             incumbent, exactly like the between-node budget check. *)
          Stop_budget
      | Simplex.Iteration_limit ->
          (* Pruning an unsolved subproblem is unsound for optimality
             claims, so count it: any such node demotes Optimal to
             Feasible below. *)
          w.w_limited <- w.w_limited + 1;
          Log.warn (fun f ->
              f "LP iteration limit at node %d (depth %d); pruning" node_id
                depth);
          Leaf
      | Simplex.Optimal ->
          if node.bvar >= 0 then
            pc_record w.wpc ~j:node.bvar ~dir_up:node.dir_up
              ~unit:(if node.dir_up then 1.0 -. node.bfrac else node.bfrac)
              ~degrade:(Float.max 0.0 (r.Simplex.objective -. node.bound));
          if depth = 0 && (not cold_mode) && have_inc () then
            fix_by_reduced_cost w r.Simplex.objective;
          if r.Simplex.objective >= Atomic.get best_obj -. 1e-9 && have_inc ()
          then begin
            fathom := Cert.F_bound;
            Leaf
          end
          else begin
            let j =
              if cold_mode then
                most_fractional raw ~int_tol ?priority:branch_priority
                  r.Simplex.x
              else
                pseudocost_branch raw ~int_tol ?priority:branch_priority w.wpc
                  r.Simplex.x
            in
            if j < 0 then begin
              (* integral: candidate incumbent *)
              let x = snap raw ~int_tol r.Simplex.x in
              let obj =
                Array.fold_left ( +. ) 0.0
                  (Array.mapi (fun j v -> raw.obj.(j) *. v) x)
              in
              try_improve ~wid:w.wid ~node_id ~nid:node.nid ~depth
                ~open_bound_now x obj;
              fathom := Cert.F_integral;
              Leaf
            end
            else begin
              let v = r.Simplex.x.(j) in
              let fl = Float.of_int (int_of_float (floor v)) in
              (* wlb/wub currently hold this node's bounds, so [prev]
                 reads the parent value the chain invariant needs. *)
              let down =
                { nid = alloc_nid (); parent_nid = node.nid;
                  bounds =
                    Tighten { j; side = Ub; v = fl; prev = w.wub.(j);
                              depth = depth + 1; parent = node.bounds };
                  bound = r.Simplex.objective; bvar = j;
                  bfrac = v -. fl; dir_up = false }
              and up =
                { nid = alloc_nid (); parent_nid = node.nid;
                  bounds =
                    Tighten { j; side = Lb; v = fl +. 1.0; prev = w.wlb.(j);
                              depth = depth + 1; parent = node.bounds };
                  bound = r.Simplex.objective; bvar = j;
                  bfrac = v -. fl; dir_up = true }
              in
              fathom :=
                Cert.F_branched
                  { bvar = j; down_id = down.nid; down_ub = fl;
                    up_id = up.nid; up_lb = fl +. 1.0 };
              (* Dive toward the nearest integer first. *)
              if v -. fl <= 0.5 then Children (down, up)
              else Children (up, down)
            end
          end
    in
    if certs_on then begin
      let claim =
        match r.Simplex.status with
        | Simplex.Optimal -> (
            match Option.bind w.wstate Simplex.duals with
            | Some d -> Cert.Lp_optimal { obj = r.Simplex.objective; duals = d }
            | None -> Cert.Lp_unsolved)
        | Simplex.Infeasible ->
            Cert.Lp_infeasible
              (Option.bind w.wstate Simplex.last_infeasibility)
        | Simplex.Unbounded | Simplex.Iteration_limit | Simplex.Time_limit ->
            Cert.Lp_unsolved
      in
      let bound =
        match r.Simplex.status with
        | Simplex.Optimal -> r.Simplex.objective
        | _ -> node.bound
      in
      w.wcerts <-
        { Cert.id = node.nid; parent = node.parent_nid;
          branch = branch_of node; depth; domain = w.wid; claim; bound;
          incumbent_at = Atomic.get best_obj; fathom = !fathom }
        :: w.wcerts
    end;
    outcome
  in
  (* Nodes pruned on their parent's bound before any LP solve still need a
     pruning-log entry: their soundness is audited against the nearest
     ancestor's dual certificate. *)
  let note_dominated (w : wctx) (node : node) =
    if certs_on then
      w.wcerts <-
        { Cert.id = node.nid; parent = node.parent_nid;
          branch = branch_of node; depth = chain_depth node.bounds;
          domain = w.wid; claim = Cert.Lp_unsolved; bound = node.bound;
          incumbent_at = Atomic.get best_obj; fathom = Cert.F_dominated }
        :: w.wcerts
  in
  let dominated (node : node) =
    let b = Atomic.get best_obj in
    Float.is_finite b && node.bound >= b -. 1e-9
  in
  (* Minimum dual bound over nodes left open when exploration stops
     early; infinity after an exhaustive run. *)
  let open_bound_end = ref infinity in
  (* -------------------- sequential engine (domains = 1) ------------- *)
  let run_sequential w0 init =
    let stack = ref init in
    let open_bound_now obj =
      List.fold_left (fun acc (n : node) -> min acc n.bound) obj !stack
    in
    let continue_ = ref true in
    while !continue_ do
      match !stack with
      | [] -> continue_ := false
      | node :: rest -> (
          stack := rest;
          if budget () then begin
            budget_hit := true;
            continue_ := false
          end
          else if dominated node then
            (* parent bound already dominated by the incumbent *)
            note_dominated w0 node
          else
            match process w0 ~open_bound_now node with
            | Leaf -> ()
            | Stop_unbounded -> continue_ := false
            | Stop_budget ->
                budget_hit := true;
                continue_ := false
            | Children (near, far) -> stack := near :: far :: !stack)
    done;
    open_bound_end :=
      List.fold_left (fun acc (n : node) -> min acc n.bound) infinity !stack
  in
  (* -------------------- parallel engine (domains > 1) ---------------- *)
  (* Work distribution: each domain dives depth-first on a private stack;
     after every branch it keeps the near child and publishes the far
     child to a bounded shared deque (oldest entries are the shallowest,
     i.e. largest, subtrees). Idle domains steal from the old end of the
     deque; when the deque overflows its bound, siblings stay private.
     Termination: [pending] counts pushed-but-unfinished nodes; the
     decrement that reaches zero wakes every sleeper. *)
  let run_parallel w0 (first_near : node) (first_far : node) =
    let pool_m = Mutex.create () in
    let pool_cv = Condition.create () in
    let q = ref [ first_far ] in
    let qlen = ref 1 in
    let qcap = max 64 (8 * domains) in
    let pending = Atomic.make 2 in
    let stop : [ `Budget | `Unbounded | `Exn of exn ] option Atomic.t =
      Atomic.make None
    in
    let leftover = ref infinity (* guarded by pool_m *) in
    let request_stop r =
      if Atomic.compare_and_set stop None (Some r) then begin
        Mutex.lock pool_m;
        Condition.broadcast pool_cv;
        Mutex.unlock pool_m
      end
    in
    (* Steal the oldest (shallowest) published node. Called under
       [pool_m]; O(qcap) worst case, and qcap is small. *)
    let steal () =
      match !q with
      | [] -> None
      | l ->
          let rec split_last acc = function
            | [ x ] -> (acc, x)
            | x :: tl -> split_last (x :: acc) tl
            | [] -> assert false
          in
          let rev_rest, last = split_last [] l in
          q := List.rev rev_rest;
          decr qlen;
          Some last
    in
    let finish_node () =
      if Atomic.fetch_and_add pending (-1) = 1 then begin
        Mutex.lock pool_m;
        Condition.broadcast pool_cv;
        Mutex.unlock pool_m
      end
    in
    let worker (w : wctx) =
      let local = ref (if w.wid = 0 then [ first_near ] else []) in
      let take () =
        match !local with
        | n :: rest when Atomic.get stop = None ->
            local := rest;
            Some n
        | _ ->
            if Atomic.get stop <> None then None
            else begin
              Mutex.lock pool_m;
              let rec wait_loop () =
                if Atomic.get stop <> None then None
                else
                  match steal () with
                  | Some _ as n -> n
                  | None ->
                      if Atomic.get pending = 0 then None
                      else begin
                        Condition.wait pool_cv pool_m;
                        wait_loop ()
                      end
              in
              let r = wait_loop () in
              Mutex.unlock pool_m;
              r
            end
      in
      (* Conservative open bound for incumbent notes: the root
         relaxation (folding every private stack would need a second
         lock hierarchy for a purely observational number). *)
      let open_bound_now obj = Float.min obj !root_bound in
      let rec loop () =
        match take () with
        | None -> ()
        | Some node ->
            (if budget () then begin
               (* keep the in-hand node's bound for the exit gap *)
               local := node :: !local;
               request_stop `Budget
             end
             else if dominated node then begin
               note_dominated w node;
               finish_node ()
             end
             else
               match process w ~open_bound_now node with
               | Leaf -> finish_node ()
               | Stop_unbounded ->
                   request_stop `Unbounded;
                   finish_node ()
               | Stop_budget ->
                   request_stop `Budget;
                   finish_node ()
               | Children (near, far) ->
                   (* count the children before retiring the parent so
                      [pending] can never dip to 0 with work in flight *)
                   ignore (Atomic.fetch_and_add pending 2);
                   Mutex.lock pool_m;
                   let published = !qlen < qcap in
                   if published then begin
                     q := far :: !q;
                     incr qlen;
                     Condition.signal pool_cv
                   end;
                   Mutex.unlock pool_m;
                   local :=
                     (if published then [ near ] else [ near; far ])
                     @ !local;
                   finish_node ());
            loop ()
      in
      (try loop ()
       with e -> request_stop (`Exn e));
      (* Fold whatever this domain still holds into the exit bound. *)
      Mutex.lock pool_m;
      List.iter
        (fun (n : node) -> leftover := Float.min !leftover n.bound)
        !local;
      Mutex.unlock pool_m
    in
    let wctxs =
      Array.init domains (fun i ->
          if i = 0 then w0
          else mk_wctx i (Array.copy w0.wlb) (Array.copy w0.wub))
    in
    let spawned =
      Array.init (domains - 1) (fun i ->
          Domain.spawn (fun () -> worker wctxs.(i + 1)))
    in
    worker w0;
    Array.iter Domain.join spawned;
    (match Atomic.get stop with
    | Some (`Exn e) -> raise e
    | Some `Budget -> budget_hit := true
    | Some `Unbounded | None -> ());
    (* Merge per-domain counters into the coordinator's context so the
       stats assembly below has one source. *)
    Array.iter
      (fun (w : wctx) ->
        if w != w0 then begin
          w0.w_iters <- w0.w_iters + w.w_iters;
          w0.w_limited <- w0.w_limited + w.w_limited;
          w0.w_warm <- w0.w_warm + w.w_warm;
          w0.wcerts <- List.rev_append w.wcerts w0.wcerts
        end)
      wctxs;
    open_bound_end :=
      List.fold_left
        (fun acc (n : node) -> Float.min acc n.bound)
        !leftover !q;
    (* [Stop_unbounded] left subtrees unexplored even though no budget
       was hit; a finite leftover bound keeps [proved] false below. *)
    if Atomic.get stop = Some `Unbounded && !open_bound_end = infinity then
      open_bound_end := !root_bound
  in
  (* Root: always processed by the coordinator alone, so reduced-cost
     fixing mutates the root arrays before any worker copies them. *)
  let w0 = mk_wctx 0 (Array.copy raw.lb) (Array.copy raw.ub) in
  let root =
    { nid = alloc_nid (); parent_nid = -1; bounds = Root;
      bound = neg_infinity; bvar = -1; bfrac = 0.0; dir_up = false }
  in
  if budget () then budget_hit := true
  else begin
    let root_open_bound obj = obj in
    let root_outcome = process w0 ~open_bound_now:root_open_bound root in
    (* w0 still sits at the root chain here, so its arrays hold the
       post-fixing root box every subtree inherited. *)
    if certs_on then begin
      cert_root_lb := Array.copy w0.wlb;
      cert_root_ub := Array.copy w0.wub
    end;
    match root_outcome with
    | Leaf -> ()
    | Stop_unbounded -> ()
    | Stop_budget -> budget_hit := true
    | Children (near, far) ->
        if domains = 1 then run_sequential w0 [ near; far ]
        else run_parallel w0 near far
  end;
  let open_bound = !open_bound_end in
  (* A node LP that hit its iteration cap was pruned unsolved, so neither
     "all nodes closed" nor a closed gap proves optimality. *)
  let clean = w0.w_limited = 0 in
  let proved = (not !budget_hit) && open_bound = infinity && clean in
  let constant = Model.objective_constant model in
  let best = Atomic.get best_obj in
  let gap =
    match !best_x with
    | None -> infinity
    | Some _ ->
        if proved then 0.0
        else
          let lo = min open_bound best in
          let lo = if Float.is_finite lo then lo else !root_bound in
          Float.abs (best -. lo) /. Float.max 1.0 (Float.abs best)
  in
  let stats =
    {
      nodes = Atomic.get nodes;
      lp_iterations = w0.w_iters;
      elapsed = elapsed ();
      root_bound = !root_bound +. constant;
      gap;
      lp_limited = w0.w_limited;
      warm_hits = w0.w_warm;
      fixed_vars = !fixed_vars;
      first_incumbent_s = !first_inc;
      domains;
    }
  in
  Obs.Counter.incr ~by:stats.nodes c_nodes;
  Obs.Counter.incr ~by:stats.lp_iterations c_pivots;
  Obs.Counter.incr ~by:stats.warm_hits c_warm_hits;
  Obs.Counter.incr ~by:stats.fixed_vars c_fixed_vars;
  Obs.Series.add s_gap ~x:stats.elapsed ~y:stats.gap;
  let mk_cert cstatus =
    if not certs_on then None
    else begin
      let c =
        {
          Cert.status = cstatus;
          objective = best;
          incumbent = Option.map Array.copy !best_x;
          incumbents = List.rev !inc_log;
          root_lb = !cert_root_lb;
          root_ub = !cert_root_ub;
          fixes = List.rev !fix_log;
          root_duals = !root_duals;
          root_obj = !root_bound;
          nodes =
            List.sort
              (fun (a : Cert.node) b -> compare a.Cert.id b.Cert.id)
              w0.wcerts;
          budget_hit = !budget_hit;
          lp_limited = w0.w_limited;
          domains;
          gap_tol;
          int_tol;
        }
      in
      if Obs.Trace.enabled () then
        Obs.Trace.instant ~cat:"milp" "milp.cert" ~args:(Cert.summary_json c);
      Some c
    end
  in
  match !best_x with
  | Some x ->
      let status =
        if proved || (clean && gap <= gap_tol) then Optimal else Feasible
      in
      let cert =
        mk_cert
          (match status with Optimal -> Cert.Optimal | _ -> Cert.Feasible)
      in
      { status; x; objective = best +. constant; stats; cert }
  | None ->
      let status =
        if !unbounded_root then Unbounded
        else if !infeasible_root && not !budget_hit then Infeasible
        else if proved then Infeasible
        else Unknown
      in
      let cert =
        mk_cert
          (match status with
          | Infeasible -> Cert.Infeasible
          | Unbounded -> Cert.Unbounded
          | _ -> Cert.Unknown)
      in
      { status; x = Array.make raw.n 0.0; objective = infinity; stats; cert }

let value r v = r.x.(Model.var_index v)
let int_value r v = int_of_float (Float.round (value r v))

let pp_status ppf = function
  | Optimal -> Fmt.string ppf "optimal"
  | Feasible -> Fmt.string ppf "feasible"
  | Infeasible -> Fmt.string ppf "infeasible"
  | Unbounded -> Fmt.string ppf "unbounded"
  | Unknown -> Fmt.string ppf "unknown"

let pp_stats ppf s =
  Fmt.pf ppf "%d nodes, %d pivots, %.2fs, gap %.2g%%" s.nodes s.lp_iterations
    s.elapsed (100.0 *. s.gap);
  if s.domains > 1 then Fmt.pf ppf ", %d domains" s.domains;
  if s.warm_hits > 0 then Fmt.pf ppf ", %d warm" s.warm_hits;
  if s.fixed_vars > 0 then Fmt.pf ppf ", %d fixed" s.fixed_vars;
  if s.lp_limited > 0 then
    Fmt.pf ppf ", %d LP limit hit%s" s.lp_limited
      (if s.lp_limited = 1 then "" else "s")
