(** Root cutting planes: Chvátal–Gomory and knapsack cover separation
    with a bounded, violation-ranked cut pool (DESIGN.md §3j).

    Every returned cut carries its {!Cert.cut_deriv} and has already
    been verified here in the exact arithmetic ({!Qd}) that the audit
    (CERT109/CERT110) re-runs: the tableau only {e suggests} CG
    multipliers, everything downstream of the citation is recomputed
    exactly, so a drifted tableau can lose a cut but never emit an
    invalid one. *)

val cg_cuts :
  Model.raw ->
  lb:float array ->
  ub:float array ->
  x:float array ->
  int_tol:float ->
  multipliers:(int -> float array option) ->
  Cert.cut list
(** One Chvátal–Gomory candidate per fractional integer variable of the
    LP point [x], aggregating with [multipliers j] (the variable's
    simplex tableau row, {!Simplex.tableau_multipliers}) clamped to the
    audit's sign cone. [raw] may already contain earlier cut rows — CG
    derivations then cite them, which is what makes successive rounds
    strictly stronger. Only candidates violated at [x] by more than the
    separation tolerance are returned. *)

val cover_cuts :
  Model.raw ->
  n_rows:int ->
  lb:float array ->
  ub:float array ->
  x:float array ->
  Cert.cut list
(** Minimal knapsack covers greedily separated from the first [n_rows]
    [<=] rows (the model rows; re-covering cut rows has no gain): for a
    cover [C] of binaries whose coefficients exceed the rhs,
    [Σ_{j∈C} x_j <= |C| - 1]. *)

(** {1 Cut pool} *)

type pool
(** Bounded pool with duplicate hashing (normalized terms + rhs),
    violation-ranked activation and age-out of candidates that keep
    missing the activation cut-off. *)

val create : ?capacity:int -> ?max_age:int -> unit -> pool
(** Defaults: [capacity = 512] stored candidates, [max_age = 4]
    selection rounds before an inactive candidate is dropped. *)

val offer : pool -> Cert.cut -> unit
(** Add a candidate; duplicates (by normalized hash) are ignored, as is
    everything past [capacity]. *)

val select : pool -> x:float array -> max_cuts:int -> Cert.cut list
(** Activate the (at most) [max_cuts] most-violated inactive candidates
    at [x], age the rest, and return the newly activated cuts in a
    deterministic order. Activated cuts are never returned twice. *)

val applied : pool -> int
(** Total cuts activated over the pool's lifetime. *)

val pending : pool -> int
(** Inactive candidates currently held. *)
