(** Versioned on-disk snapshots of a live branch-and-bound solve
    (DESIGN.md §3i).

    A checkpoint captures everything {!Milp.solve} needs to continue a
    solve as if it had never stopped: the open-node frontier (each
    node's bound-edit list from the root, so chains rebuild exactly),
    the shared incumbent, the per-worker pseudocost tables, the
    certificate log prefix of already-closed nodes, and the root-fixing
    evidence the audit re-checks. Floats are serialized as hex-float
    strings ([%h]), which round-trip bit-for-bit — the checkpoint
    round-trip property test checks [read ∘ write] is the identity.

    The format is self-describing (schema tag
    ["pipesyn-checkpoint-v1"]), fingerprinted against the exact model it
    was taken from, and checksummed: writes go through a temp file plus
    atomic rename, and {!read} rejects torn or corrupted files (the
    [milp.checkpoint_torn] fault injects exactly that). *)

val schema : string
(** ["pipesyn-checkpoint-v1"]. *)

(** One bound tightening on the path root → node, in application
    order. [e_prev] is the bound value it replaced (the parent's), which
    is what lets the solver's copy-on-branch chains rebuild with exact
    undo information. *)
type edit = {
  e_j : int;
  e_side : Cert.side;
  e_v : float;
  e_prev : float;
}

(** An open (unprocessed) frontier node. [o_nid] is the node's original
    certificate id — preserved across resume so the closed parents'
    branch records still point at real children. *)
type open_node = {
  o_nid : int;
  o_parent : int;
  o_bound : float;
  o_bvar : int;
  o_bfrac : float;
  o_dir_up : bool;
  o_edits : edit list;  (** root → node order *)
}

(** One worker's pseudocost table (observed objective degradation per
    unit fractional distance, down/up). *)
type pc = {
  dn_sum : float array;
  dn_n : int array;
  up_sum : float array;
  up_n : int array;
}

type t = {
  fingerprint : string;  (** {!fingerprint} of the model solved *)
  domains : int;  (** worker-domain count of the checkpointed solve *)
  next_nid : int;  (** next certificate node id to allocate *)
  nodes_done : int;  (** nodes processed before the snapshot *)
  lp_limited : int;
      (** unsolved-pruned node count so far — carried so a resumed solve
          cannot claim Optimal past nodes the original run gave up on *)
  fixed_vars : int;
  root_bound : float;  (** root LP objective (no model constant) *)
  root_lb : float array;  (** post-fixing root box the chains hang off *)
  root_ub : float array;
  incumbent : (float array * float) option;  (** best (x, objective) *)
  first_incumbent_s : float;
  elapsed_s : float;  (** solve seconds consumed before the snapshot *)
  frontier : open_node list;
  pc : pc array;  (** per worker slot, index = slot id *)
  certs_on : bool;  (** whether the solve was emitting certificates *)
  cert_nodes : Cert.node list;  (** closed nodes' certificate entries *)
  fixes : (int * Cert.side) list;
  root_duals : float array option;
  presolve : Cert.tighten list;
      (** root bound-tightening events, application order; replayed into
          the resumed certificate *)
  cuts : Cert.cut list;
      (** applied cut rows, derivation order — a resume re-extends the
          model with exactly these rows (never re-separates), so node
          duals in [cert_nodes] keep matching the extended row system *)
  meta : Obs.Json.t;
      (** opaque driver payload (benchmark, method, CLI settings) the
          solver stores and returns verbatim — [pipesyn resume] rebuilds
          its setup from it *)
}

val fingerprint : Model.raw -> string
(** Digest of every array the solver consumes. {!Milp.solve} refuses to
    resume a checkpoint whose fingerprint does not match the model it
    was handed. *)

val to_json : t -> Obs.Json.t
(** The full file document: [{"schema": …, "checksum": …,
    "payload": …}]. *)

val of_json : Obs.Json.t -> (t, string) result
(** Validates schema and checksum, then decodes. [Error] on schema
    mismatch, checksum mismatch (torn/corrupted) or malformed payload. *)

val write : path:string -> t -> unit
(** Serialize to [path] via temp file + atomic rename, so the file under
    [path] is always either the previous snapshot or a complete new one.
    When the [milp.checkpoint_torn] fault fires, a truncated file is
    written in place instead (to test {!read}'s rejection). *)

val read : path:string -> (t, string) result
(** Parse and validate a checkpoint file. *)
