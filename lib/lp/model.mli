(** Mixed-integer linear program builder.

    A thin, allocation-friendly layer over the raw arrays consumed by
    {!Simplex} and {!Milp}. Variables have finite lower bounds (possibly
    infinite upper bounds); constraints are linear with [<=], [>=] or [=]
    sense; the objective is minimized (negate coefficients to maximize). *)

type t
type var

type sense = Le | Ge | Eq

val create : ?name:string -> unit -> t

val add_var :
  t -> ?integer:bool -> ?lb:float -> ?ub:float -> string -> var
(** Defaults: [integer = false], [lb = 0.], [ub = infinity].
    @raise Invalid_argument if [lb] is infinite, [ub < lb], or NaN. *)

val bool_var : t -> string -> var
(** Integer variable in [0, 1]. *)

val add_constraint :
  t -> ?name:string -> (float * var) list -> sense -> float -> unit
(** [add_constraint m terms sense rhs] adds [Σ coef·x sense rhs]. Duplicate
    variables in [terms] are summed. *)

val add_le : t -> ?name:string -> (float * var) list -> float -> unit
val add_ge : t -> ?name:string -> (float * var) list -> float -> unit
val add_eq : t -> ?name:string -> (float * var) list -> float -> unit

val set_objective : t -> ?constant:float -> (float * var) list -> unit
(** Minimization objective; replaces any previous objective. *)

val fix : t -> var -> float -> unit
(** Narrow a variable's bounds to a single value. *)

val num_vars : t -> int
val num_constraints : t -> int
val var_index : var -> int
val var_of_index : t -> int -> var
val var_name : t -> var -> string
val is_integer : t -> var -> bool
val bounds : t -> var -> float * float
val objective_constant : t -> float

val objective_terms : t -> (float * var) list
(** The current minimization objective as [(coefficient, variable)] pairs;
    duplicates summed, zero coefficients dropped. *)

val rows : t -> (string option * (float * var) list * sense * float) array
(** All constraints in insertion order as
    [(name, terms, sense, rhs)] — the introspection surface used by the
    static model lints ({!Analyze.Lp_lint}). Terms are normalized (sorted
    by column, duplicates summed, zeros dropped). *)

type raw = {
  n : int;  (** variable count *)
  lb : float array;
  ub : float array;
  integer : bool array;
  obj : float array;
  rows : (int * float) array array;  (** sparse rows, sorted by column *)
  senses : sense array;
  rhs : float array;
}

val to_raw : t -> raw
(** Freeze into the solver's input form. *)

val check : t -> values:(var -> float) -> ?eps:float -> unit -> (unit, string) result
(** Verify an assignment against bounds, integrality and all constraints —
    used to validate incumbents and solver output in tests. *)

val pp_stats : t Fmt.t
