(** Proof-carrying solve certificates (DESIGN.md §3h).

    Emitted by {!Milp.solve} (with [~certificates:true]) from data
    recorded in {!Simplex}; independently re-checked in exact rational
    arithmetic by [Analyze.Audit]. Three kinds of evidence:

    - {b Optimality}: the final dual vector of each node LP. Re-evaluated
      exactly, {e any} float dual vector yields a safe lower bound
      (Neumaier–Shcherbina), so float drift can only weaken a claim,
      never falsely validate one.
    - {b Infeasibility}: a Farkas ray (or the crossed-bounds variable for
      trivially empty boxes).
    - {b The pruning log}: every node's branch edit, dual bound, fathom
      reason and the incumbent value at the decision — enough to replay
      the tree and confirm no fathomed subtree could hold a better
      integer point, which doubles as a determinism/race oracle for the
      parallel solver. *)

type side = Lower | Upper

type farkas =
  | Ray of float array  (** one multiplier per model row *)
  | Empty_box of int  (** variable whose bounds crossed *)

type lp_claim =
  | Lp_optimal of { obj : float; duals : float array }
  | Lp_infeasible of farkas option
  | Lp_unsolved

type fathom =
  | F_branched of {
      bvar : int;
      down_id : int;
      down_ub : float;
      up_id : int;
      up_lb : float;
    }
  | F_integral
  | F_bound
  | F_dominated
  | F_infeasible
  | F_budget

type node = {
  id : int;
  parent : int;
  branch : (int * side * float) option;
  depth : int;
  domain : int;
  claim : lp_claim;
  bound : float;
  incumbent_at : float;
  fathom : fathom;
}

type status = Optimal | Feasible | Infeasible | Unbounded | Unknown

type tighten = {
  t_var : int;  (** variable whose bound moved *)
  t_hi : bool;  (** [true] = upper bound, [false] = lower bound *)
  t_new : float;  (** the tightened bound value *)
  t_row : int;
      (** implying row, or [-1] for an integrality rounding step on an
          integer variable's current bound *)
}
(** One root-presolve bound-tightening event, replayable in order from
    the model box (audited as CERT111). *)

type cut_deriv =
  | Cg of (int * float) array
      (** Chvátal–Gomory aggregation multipliers, sparse over the
          extended row system at derivation time ([0..m-1] model rows,
          then previously applied cuts in order) *)
  | Cover of { c_row : int; members : int array }
      (** knapsack cover witness: [<=] row [c_row], 0/1 columns
          [members] whose coefficients sum past the rhs *)

type cut = {
  cut_terms : (int * float) array;  (** sparse row, original columns *)
  cut_rhs : float;  (** sense is always [<=] *)
  cut_deriv : cut_deriv;
}
(** An applied cutting plane plus the derivation the audit re-verifies
    exactly (CERT109 for {!Cg}, CERT110 for {!Cover}). *)

type t = {
  status : status;
  objective : float;
  incumbent : float array option;
  incumbents : (int * float) list;
  root_lb : float array;
  root_ub : float array;
  presolve : tighten list;
  cuts : cut list;
  fixes : (int * side) list;
  root_duals : float array option;
  root_obj : float;
  nodes : node list;
  budget_hit : bool;
  lp_limited : int;
  domains : int;
  gap_tol : float;
  int_tol : float;
}

val status_label : status -> string

val count_claims : t -> int * int * int
(** [(optimal, infeasible, unsolved)] claim counts over the node log. *)

val summary_json : t -> (string * Obs.Json.t) list
(** Compact summary for the metrics/trace stream. The full certificate
    is deliberately not serialized: floats would lose exactness in
    transit, so audits run in-process on the live value. *)
