(** Exact dyadic-rational arithmetic for the certificate audit
    ({!Audit}, DESIGN.md §3h).

    Doubles are dyadic rationals [m·2^e]; the audit only needs ring
    operations (sums of products) and comparisons on them, so this
    representation — an arbitrary-precision sign-magnitude mantissa plus
    a binary exponent — is exact and closed under every operation the
    checker performs. There is deliberately no division: the whole audit
    is phrased to avoid it, which is what lets the module stay
    self-contained (no external bignum dependency). *)

type t

val zero : t
val of_int : int -> t

val of_float : float -> t
(** Exact conversion — no rounding.
    @raise Invalid_argument on NaN or infinity (callers handle infinite
    bounds structurally, not numerically). *)

val neg : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val sign : t -> int
(** [-1], [0] or [+1]. *)

val is_zero : t -> bool
val compare : t -> t -> int
val equal : t -> t -> bool
val min : t -> t -> t
val lt : t -> t -> bool
val leq : t -> t -> bool
val geq : t -> t -> bool

val is_integer : t -> bool
(** Exact integrality test — zero tolerance. *)

val to_float : t -> float
(** Nearest-ish double, for diagnostics messages only (not exact). *)

val sum : int -> (int -> t) -> t
(** [sum n f] is [f 0 + ... + f (n-1)], exactly. *)

val pp : t Fmt.t
