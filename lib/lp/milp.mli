(** Branch-and-bound MILP solver over {!Simplex}.

    Depth-first diving (round-to-nearest child explored first) with
    best-bound pruning, optional warm-start incumbents, and a wall-clock
    budget after which the best feasible solution found is returned — the
    same protocol the paper used with CPLEX's 60-minute cap (Sec. 4.3). *)

type status =
  | Optimal  (** proved optimal within tolerances *)
  | Feasible  (** budget exhausted; best incumbent returned *)
  | Infeasible
  | Unbounded
  | Unknown  (** budget exhausted before any feasible solution was found *)

type stats = {
  nodes : int;  (** branch-and-bound nodes evaluated *)
  lp_iterations : int;  (** simplex pivots across all nodes *)
  elapsed : float;  (** seconds *)
  root_bound : float;  (** root LP relaxation objective *)
  gap : float;  (** relative gap between incumbent and open bound *)
  lp_limited : int;
      (** node LPs pruned unsolved at their iteration cap — numeric
          trouble; nonzero demotes {!Optimal} to {!Feasible} because the
          pruned subtrees were never actually explored *)
}

type result = {
  status : status;
  x : float array;  (** meaningful for [Optimal] / [Feasible] *)
  objective : float;  (** includes the model's objective constant *)
  stats : stats;
}

val solve :
  ?time_limit:float ->
  ?node_limit:int ->
  ?max_lp_iters:int ->
  ?gap_tol:float ->
  ?int_tol:float ->
  ?deadline:Resilience.Deadline.t ->
  ?incumbent:float array ->
  ?branch_priority:int array ->
  Model.t ->
  result
(** Defaults: [time_limit = 60.] s, [node_limit = 200_000],
    [gap_tol = 1e-6] (relative), [int_tol = 1e-6]. A provided [incumbent]
    is validated against the model ([Invalid_argument] if it is not
    feasible) and seeds the pruning bound. [branch_priority] (one entry
    per variable, higher branches first) guides variable selection:
    the most fractional variable among those of the highest priority
    class with any fractionality is chosen.

    The effective budget is the tighter of [time_limit] and [deadline]
    (default {!Resilience.Deadline.none}); it is threaded into every
    node's {!Simplex.solve}, where it is polled every 64 pivots — one
    pathological node LP can no longer overshoot the budget arbitrarily.
    On expiry the best incumbent is returned with {!Feasible}
    ({!Unknown} if none was found).

    Fault points ({!Resilience.Fault}): [milp.raise] raises [Failure] at
    entry; [milp.timeout] returns {!Unknown} immediately, modelling a
    budget that expired before any incumbent existed. *)

val value : result -> Model.var -> float
val int_value : result -> Model.var -> int
(** Nearest integer to the variable's value. *)

val pp_status : status Fmt.t
val pp_stats : stats Fmt.t
