(** Branch-and-bound MILP solver over {!Simplex}.

    Depth-first diving (round-to-nearest child explored first) with
    best-bound pruning, optional warm-start incumbents, and a wall-clock
    budget after which the best feasible solution found is returned — the
    same protocol the paper used with CPLEX's 60-minute cap (Sec. 4.3).

    The tree can be explored by one domain (the default) or by a
    work-stealing pool of OCaml 5 domains ([domains] argument /
    [PIPESYN_DOMAINS] environment variable). Each domain owns a private
    {!Simplex.state}, bound arrays and pseudocost table; subtrees are
    shipped between domains as immutable copy-on-branch bound chains.
    The incumbent is shared, with deterministic tie-breaking (best
    objective, then lexicographically smallest solution vector), so for
    runs that terminate by exhausting the tree the status and objective
    are independent of the domain count and of scheduling (see DESIGN.md
    §3g for the argument and for the budget-truncated caveat).

    Solves are {e supervised} (DESIGN.md §3i): every taken node is
    leased until it is retired, so a worker death replays exactly its
    in-flight subtree, a stall watchdog unwedges workers stuck inside a
    single pathological LP, and the live frontier can be snapshotted to
    disk ({!Checkpoint}) and resumed later. Because recovery and resume
    only permute exploration order, the determinism guarantee above
    extends to interrupted solves: a kill-and-recover or
    checkpoint-and-resume run of an exhaustively solved model returns
    the identical status, objective and incumbent. *)

type status =
  | Optimal  (** proved optimal within tolerances *)
  | Feasible  (** budget exhausted; best incumbent returned *)
  | Infeasible
  | Unbounded
  | Unknown  (** budget exhausted before any feasible solution was found *)

type stats = {
  nodes : int;  (** branch-and-bound nodes evaluated *)
  lp_iterations : int;  (** simplex pivots across all nodes *)
  elapsed : float;
      (** wall-clock seconds; cumulative across resume (checkpointed
          seconds plus this run's) *)
  root_bound : float;  (** root LP relaxation objective *)
  gap : float;  (** relative gap between incumbent and open bound *)
  lp_limited : int;
      (** node LPs pruned unsolved at their iteration cap — numeric
          trouble; nonzero demotes {!Optimal} to {!Feasible} because the
          pruned subtrees were never actually explored *)
  warm_hits : int;
      (** node LPs answered by {!Simplex.resolve}'s warm path (parent
          basis reused) rather than a cold rebuild *)
  fixed_vars : int;
      (** integer variables fixed at the root by reduced-cost bound
          fixing *)
  first_incumbent_s : float;
      (** seconds into the solve when the first incumbent appeared —
          including a caller-seeded warm-start incumbent (recorded at
          ~0 s); [nan] if the solve ended with no incumbent *)
  domains : int;
      (** domain count the tree was explored with (1 = sequential) *)
  checkpoints : int;  (** snapshots written to the [checkpoint] sink *)
  recoveries : int;
      (** supervised recoveries: worker deaths replayed plus watchdog
          cancel-and-requeues *)
  stalls : int;  (** watchdog escalations (nudges + cancels) *)
  cpu_s : float;
      (** process CPU seconds consumed by this solve ({!Obs.Clock.cpu});
          under [domains] > 1 this exceeds [elapsed] — the budget runs
          on the wall clock, CPU time is kept as a separate metric *)
  cuts_applied : int;
      (** cutting planes active in the solved system — separated this run
          or re-installed from a resumed checkpoint *)
  cut_rounds : int;
      (** separation rounds run at the root this run (0 on resume: cuts
          are replayed, never re-separated) *)
  gap_closed_root : float;
      (** fraction of the root gap closed by the cut rounds,
          [(post-cut bound - pre-cut bound) / (incumbent - pre-cut
          bound)], clamped to \[0, 1\]; [nan] when unavailable (cuts
          off, no incumbent, resumed solve, or zero root gap) *)
}

type result = {
  status : status;
  x : float array;  (** meaningful for [Optimal] / [Feasible] *)
  objective : float;  (** includes the model's objective constant *)
  stats : stats;
  cert : Cert.t option;
      (** proof-carrying certificate; [Some] iff [certificates] was
          requested and the warm-start machinery was active (forced
          cold-start runs carry no dual/Farkas evidence) *)
}

(** Where and how often {!solve} snapshots its live frontier. *)
type checkpoint_sink = {
  ck_path : string;  (** written atomically (temp file + rename) *)
  ck_every_s : float;  (** wall-clock cadence between snapshots *)
  ck_every_nodes : int option;
      (** additionally snapshot every [n] processed nodes — the
          deterministic trigger tests use; [None] = cadence only *)
  ck_meta : Obs.Json.t;
      (** opaque driver payload stored verbatim in every snapshot
          ([pipesyn resume] rebuilds its setup from it) *)
}

exception Worker_killed
(** Raised at node-processing entry by the [milp.worker_kill] and
    [milp.steal_drop] fault points — the stand-in for a worker domain
    dying mid-subtree. Supervised recovery absorbs it up to a per-slot
    death budget; past that it propagates like any worker exception. *)

val solve :
  ?time_limit:float ->
  ?node_limit:int ->
  ?max_lp_iters:int ->
  ?gap_tol:float ->
  ?int_tol:float ->
  ?deadline:Resilience.Deadline.t ->
  ?incumbent:float array ->
  ?branch_priority:int array ->
  ?domains:int ->
  ?certificates:bool ->
  ?checkpoint:checkpoint_sink ->
  ?resume:Checkpoint.t ->
  ?stall_window:float ->
  ?cuts:bool ->
  ?presolve:bool ->
  Model.t ->
  result
(** Defaults: [time_limit = 60.] s, [node_limit = 200_000],
    [gap_tol = 1e-6] (relative), [int_tol = 1e-6]. A provided [incumbent]
    is validated against the model ([Invalid_argument] if it is not
    feasible) and seeds the pruning bound. [branch_priority] (one entry
    per variable, higher branches first) guides variable selection:
    within the highest priority class with any fractionality, pseudocost
    branching (observed objective degradation per unit of fractional
    distance, product rule) picks the variable; before any pseudocost
    observations this degenerates to most-fractional.

    Node LPs are warm-started: one {!Simplex.state} is threaded through
    the whole tree and re-optimized per node via {!Simplex.resolve},
    with node bounds stored as copy-on-branch chains (one changed entry
    plus a parent pointer) instead of per-node array copies. Once an
    incumbent exists, reduced-cost bound fixing at the root fixes
    integer variables whose reduced cost exceeds the incumbent gap.
    Setting the [PIPESYN_COLD_START] environment variable (non-empty)
    disables all of this — cold per-node solves and most-fractional
    branching — for A/B comparison.

    {2 Presolve and root cutting planes}

    Before the root LP, certified bound tightening ({!Presolve.tighten})
    shrinks the variable box: integrality rounding plus activity-based
    tightening, each event exact-verified at generation time and
    recorded in the certificate for the audit's CERT111 replay.
    [presolve] (default [true]) disables it when [false].

    After presolve and before the root node is branched, up to 8 rounds
    of root cutting planes run: Chvátal–Gomory cuts derived from the
    warm simplex tableau's aggregation multipliers and knapsack cover
    cuts from the model's [<=] rows over binaries, filtered through a
    bounded, violation-ranked pool ({!Cutgen}) and applied at most 20
    per round via {!Simplex.add_rows} (warm dual-simplex resolves in
    between). Every applied cut carries its derivation in the
    certificate ([Cert.cuts]) and is re-verified by the audit in exact
    rational arithmetic (CERT109/CERT110) — an invalid cut can never
    silently tighten the claimed bound. Cuts strengthen the relaxation
    bound but never exclude an integer-feasible point, so status,
    objective and incumbent are unchanged by the cuts-on/off toggle on
    exhaustively solved models (property-tested in [test/test_fuzz.ml]).
    [cuts] (default: on unless the [PIPESYN_CUTS] environment variable
    is ["0"]/["off"]/["false"]/["no"]) disables the rounds when
    [false]; under [PIPESYN_COLD_START] both presolve and cuts are off
    (they live in the warm-start machinery). Each round emits a
    ["milp.cut_round"] trace instant (round, cuts added, pool size,
    post-round bound). A resumed solve re-installs the checkpoint's cut
    rows verbatim and never re-separates, so node duals keep matching
    the extended row system.

    [domains] (default: [PIPESYN_DOMAINS], else 1; clamped to
    \[1, 64\]) selects how many OCaml 5 domains explore the tree. With
    [domains = 1] the engine is the exact sequential loop of earlier
    releases. With [domains > 1] the root is still solved (and
    reduced-cost fixing applied) by the calling domain; the two root
    children then seed a work-stealing pool in which each domain dives
    depth-first on a private stack, publishing the sibling of every
    branch to a bounded shared deque that idle domains steal the
    shallowest entries from. Statuses and objectives of runs that
    terminate by exhausting the tree are independent of [domains];
    budget-truncated runs keep deterministic statuses but may return a
    different (equally feasible) incumbent per domain count, because
    the explored node set differs. Node/pivot statistics and trace
    event order are scheduling-dependent under [domains > 1].

    The effective budget is the tighter of [time_limit] and [deadline]
    (default {!Resilience.Deadline.none}); it is threaded into every
    node's {!Simplex.solve}, where it is polled every 64 pivots — one
    pathological node LP can no longer overshoot the budget arbitrarily.
    On expiry the best incumbent is returned with {!Feasible}
    ({!Unknown} if none was found). The clock is the monotonized wall
    clock ({!Obs.Clock.wall}): a [time_limit] of 5 s means five wall
    seconds at any [domains] count (resilience-v2 moved the budget off
    [Sys.time], whose CPU seconds accumulate across domains and expired
    a [--domains 4] budget roughly 4× early). Process CPU time is still
    reported, separately, as [stats.cpu_s].

    {2 Supervision}

    Every node a worker takes is {e leased} to it until the completion
    critical section retires or republishes the node, so at any instant
    each open node lives in exactly one of the shared deque, a private
    stack, or a lease. On top of that invariant (DESIGN.md §3i):

    {b Crash recovery.} A worker whose node processing raises (fault
    injection, numeric blowup — anything except [Out_of_memory] /
    [Stack_overflow]) is recovered in place: its leased node and entire
    private stack are requeued for any worker to replay, its solver
    state and pseudocost table reset, and it keeps taking work. Each
    slot survives at most 3 deaths; past that — or for resource
    exhaustion — the failure propagates. Recoveries are counted in
    [stats.recoveries] and traced as ["milp.recovery"] instants.

    {b Stall watchdog.} [stall_window] (seconds; default off) spawns a
    watchdog domain that compares each worker's last-progress heartbeat
    against the window. A worker wedged inside one LP for a full window
    is escalated in two rungs: first a {e nudge} (its next LP
    refactorizes cold — the cheap fix for a wedged basis), then, if the
    same lease is still stuck a tick later, a {e cancel} through the
    worker's deadline cell ({!Resilience.Deadline.with_cancel}) — the
    simplex notices within one 64-pivot poll, the node is requeued, and
    the worker re-arms. A node is never cancelled twice, so a
    legitimately slow LP replays to completion; pick a window larger
    than any honest node LP. Escalations land in [stats.stalls] and as
    ["milp.stall"] trace instants (["level"] = ["nudge"]/["cancel"]).

    {b Checkpoint/resume.} [checkpoint] snapshots the live solve into
    {!checkpoint_sink}[.ck_path] on a wall-clock cadence (checked at
    node completions), optionally every [ck_every_nodes] nodes, and
    always once at a budget-stopped exit — so an interrupted solve
    leaves a fresh, resumable file. [resume] rehydrates such a snapshot
    (frontier, incumbent, pseudocost tables, certificate-log prefix,
    root-fixing evidence) and continues; the checkpoint's fingerprint
    must match the model ([Invalid_argument] otherwise). [stats.elapsed]
    and the lp_limited accounting are cumulative across resume, so a
    resumed solve can never claim more than the original plus its own
    work. Resumed solves may use a different [domains] count than the
    original run.

    Recovery, watchdog requeues and resume are invisible to results on
    exhaustively solved models (same status/objective/incumbent, by the
    determinism argument above); node counts, traces and statistics are
    not replayed and will differ.

    Fault points ({!Resilience.Fault}): [milp.raise] raises [Failure] at
    entry; [milp.timeout] returns {!Unknown} immediately, modelling a
    budget that expired before any incumbent existed; [milp.worker_kill]
    and [milp.steal_drop] raise {!Worker_killed} at node-processing
    entry / at the steal handoff (exercising crash recovery);
    [milp.stall] wedges a worker inside a node until the watchdog or the
    global budget unwedges it; [milp.checkpoint_torn] (in
    {!Checkpoint.write}) tears a snapshot file mid-write.

    [certificates] (default [false]) makes the solve proof-carrying: the
    result's [cert] field collects, from every worker domain, each node's
    LP claim (dual vector for optimal, Farkas ray for infeasible), its
    branch edit and fathom reason with the incumbent at the decision, the
    accepted-incumbent log, and the root's reduced-cost fixing events
    with the pre-fixing duals — everything [Analyze.Audit] needs to
    re-verify the run in exact rational arithmetic (DESIGN.md §3h).
    Collection is observational: it never changes exploration. Under
    [PIPESYN_COLD_START] no certificate is produced (the evidence lives
    in the warm-start solver state). A resumed solve extends the
    checkpoint's node log — cancelled or budget-cut nodes are left open
    (no log entry) rather than closed with an unsound fathom, which is
    what keeps resumed certificates audit-clean. A ["milp.cert"] trace
    instant carries the certificate summary when tracing is on.

    When {!Obs.Trace} is enabled the solve emits a ["milp.solve"] span
    (tagged with the domain count), one ["milp.node"] instant per node
    (depth, branch variable, LP status, warm/cold resolve, dual bound,
    and the ["domain"] that processed it — also used as the event's
    Perfetto lane), a ["milp.fixed_vars"] instant when root fixing
    engages, a ["milp.incumbent"] instant per incumbent (objective +
    gap — the convergence timeline, also recorded in the
    ["milp.convergence"] series), and the supervision instants
    ["milp.recovery"], ["milp.stall"] and ["milp.checkpoint"]. Tracing
    is purely observational: it never changes branching, bounds or
    results. *)

val value : result -> Model.var -> float
val int_value : result -> Model.var -> int
(** Nearest integer to the variable's value. *)

val pp_status : status Fmt.t
val pp_stats : stats Fmt.t
