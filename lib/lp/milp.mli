(** Branch-and-bound MILP solver over {!Simplex}.

    Depth-first diving (round-to-nearest child explored first) with
    best-bound pruning, optional warm-start incumbents, and a wall-clock
    budget after which the best feasible solution found is returned — the
    same protocol the paper used with CPLEX's 60-minute cap (Sec. 4.3).

    The tree can be explored by one domain (the default) or by a
    work-stealing pool of OCaml 5 domains ([domains] argument /
    [PIPESYN_DOMAINS] environment variable). Each domain owns a private
    {!Simplex.state}, bound arrays and pseudocost table; subtrees are
    shipped between domains as immutable copy-on-branch bound chains.
    The incumbent is shared, with deterministic tie-breaking (best
    objective, then lexicographically smallest solution vector), so for
    runs that terminate by exhausting the tree the status and objective
    are independent of the domain count and of scheduling (see DESIGN.md
    §3g for the argument and for the budget-truncated caveat). *)

type status =
  | Optimal  (** proved optimal within tolerances *)
  | Feasible  (** budget exhausted; best incumbent returned *)
  | Infeasible
  | Unbounded
  | Unknown  (** budget exhausted before any feasible solution was found *)

type stats = {
  nodes : int;  (** branch-and-bound nodes evaluated *)
  lp_iterations : int;  (** simplex pivots across all nodes *)
  elapsed : float;  (** seconds *)
  root_bound : float;  (** root LP relaxation objective *)
  gap : float;  (** relative gap between incumbent and open bound *)
  lp_limited : int;
      (** node LPs pruned unsolved at their iteration cap — numeric
          trouble; nonzero demotes {!Optimal} to {!Feasible} because the
          pruned subtrees were never actually explored *)
  warm_hits : int;
      (** node LPs answered by {!Simplex.resolve}'s warm path (parent
          basis reused) rather than a cold rebuild *)
  fixed_vars : int;
      (** integer variables fixed at the root by reduced-cost bound
          fixing *)
  first_incumbent_s : float;
      (** seconds into the solve when the first incumbent appeared —
          including a caller-seeded warm-start incumbent (recorded at
          ~0 s); [nan] if the solve ended with no incumbent *)
  domains : int;
      (** domain count the tree was explored with (1 = sequential) *)
}

type result = {
  status : status;
  x : float array;  (** meaningful for [Optimal] / [Feasible] *)
  objective : float;  (** includes the model's objective constant *)
  stats : stats;
  cert : Cert.t option;
      (** proof-carrying certificate; [Some] iff [certificates] was
          requested and the warm-start machinery was active (forced
          cold-start runs carry no dual/Farkas evidence) *)
}

val solve :
  ?time_limit:float ->
  ?node_limit:int ->
  ?max_lp_iters:int ->
  ?gap_tol:float ->
  ?int_tol:float ->
  ?deadline:Resilience.Deadline.t ->
  ?incumbent:float array ->
  ?branch_priority:int array ->
  ?domains:int ->
  ?certificates:bool ->
  Model.t ->
  result
(** Defaults: [time_limit = 60.] s, [node_limit = 200_000],
    [gap_tol = 1e-6] (relative), [int_tol = 1e-6]. A provided [incumbent]
    is validated against the model ([Invalid_argument] if it is not
    feasible) and seeds the pruning bound. [branch_priority] (one entry
    per variable, higher branches first) guides variable selection:
    within the highest priority class with any fractionality, pseudocost
    branching (observed objective degradation per unit of fractional
    distance, product rule) picks the variable; before any pseudocost
    observations this degenerates to most-fractional.

    Node LPs are warm-started: one {!Simplex.state} is threaded through
    the whole tree and re-optimized per node via {!Simplex.resolve},
    with node bounds stored as copy-on-branch chains (one changed entry
    plus a parent pointer) instead of per-node array copies. Once an
    incumbent exists, reduced-cost bound fixing at the root fixes
    integer variables whose reduced cost exceeds the incumbent gap.
    Setting the [PIPESYN_COLD_START] environment variable (non-empty)
    disables all of this — cold per-node solves and most-fractional
    branching — for A/B comparison.

    [domains] (default: [PIPESYN_DOMAINS], else 1; clamped to
    \[1, 64\]) selects how many OCaml 5 domains explore the tree. With
    [domains = 1] the engine is the exact sequential loop of earlier
    releases. With [domains > 1] the root is still solved (and
    reduced-cost fixing applied) by the calling domain; the two root
    children then seed a work-stealing pool in which each domain dives
    depth-first on a private stack, publishing the sibling of every
    branch to a bounded shared deque that idle domains steal the
    shallowest entries from. Statuses and objectives of runs that
    terminate by exhausting the tree are independent of [domains];
    budget-truncated runs keep deterministic statuses but may return a
    different (equally feasible) incumbent per domain count, because
    the explored node set differs. Node/pivot statistics and trace
    event order are scheduling-dependent under [domains > 1].

    The effective budget is the tighter of [time_limit] and [deadline]
    (default {!Resilience.Deadline.none}); it is threaded into every
    node's {!Simplex.solve}, where it is polled every 64 pivots — one
    pathological node LP can no longer overshoot the budget arbitrarily.
    On expiry the best incumbent is returned with {!Feasible}
    ({!Unknown} if none was found). The clock is [Sys.time] — process
    CPU seconds — which accumulates across running domains, so an
    [N]-domain solve burns its budget up to [N]× faster than wall
    clock; cancellation stays cooperative per-domain (every domain
    polls the same deadline at node and pivot granularity).

    Fault points ({!Resilience.Fault}): [milp.raise] raises [Failure] at
    entry; [milp.timeout] returns {!Unknown} immediately, modelling a
    budget that expired before any incumbent existed.

    [certificates] (default [false]) makes the solve proof-carrying: the
    result's [cert] field collects, from every worker domain, each node's
    LP claim (dual vector for optimal, Farkas ray for infeasible), its
    branch edit and fathom reason with the incumbent at the decision, the
    accepted-incumbent log, and the root's reduced-cost fixing events
    with the pre-fixing duals — everything [Analyze.Audit] needs to
    re-verify the run in exact rational arithmetic (DESIGN.md §3h).
    Collection is observational: it never changes exploration. Under
    [PIPESYN_COLD_START] no certificate is produced (the evidence lives
    in the warm-start solver state). A ["milp.cert"] trace instant
    carries the certificate summary when tracing is on.

    When {!Obs.Trace} is enabled the solve emits a ["milp.solve"] span
    (tagged with the domain count), one ["milp.node"] instant per node
    (depth, branch variable, LP status, warm/cold resolve, dual bound,
    and the ["domain"] that processed it — also used as the event's
    Perfetto lane), a ["milp.fixed_vars"] instant when root fixing
    engages, and a ["milp.incumbent"] instant per incumbent (objective +
    gap — the convergence timeline, also recorded in the
    ["milp.convergence"] series). Tracing is purely observational: it
    never changes branching, bounds or results. *)

val value : result -> Model.var -> float
val int_value : result -> Model.var -> int
(** Nearest integer to the variable's value. *)

val pp_status : status Fmt.t
val pp_stats : stats Fmt.t
