(* Root presolve (DESIGN.md §3j): bound tightening from constraint
   activity, and a standalone reduce/postsolve pass.

   Two layers with different contracts:

   - {!tighten} is index-preserving: it only shrinks the variable box,
     so the caller's model keeps its row/column numbering. This is what
     {!Milp} runs at the root — certificates cite original indices, and
     every emitted {!Cert.tighten} event is verified here in exact
     arithmetic ({!Qd}) under exactly the condition the audit
     ([Analyze.Audit], CERT111) re-checks. An event that fails its own
     exact check is silently dropped: presolve may only ever under-claim.

   - {!reduce} additionally eliminates singleton rows, redundant rows,
     unused and fixed columns, and strengthens coefficients on binary
     variables (Savelsbergh's rule), producing a smaller [Model.raw]
     plus an invertible {!postsolve} map back to original variable and
     row space. It is not certificate-logged, so it is used standalone
     (benchmarks, tests), never inside a certified MILP solve.

   Clique-style fixing over the 0/1 cut-selection variables falls out of
   activity propagation through the [=] rows: once one member of a
   one-hot row is pinned to 1, the [>=] direction of the row forces
   every sibling's upper bound to 0 in the same fixpoint sweep. *)

let eps = 1e-9

(* ------------------------------------------------------------------ *)
(* Exact activity helpers                                              *)
(* ------------------------------------------------------------------ *)

let qone = Qd.of_int 1

(* Minimum activity of [row] over the box, excluding column [skip].
   [None] means -infinity (an unbounded column contributes). Exact. *)
let min_activity_rest ~lb ~ub ~skip row =
  let acc = ref (Some Qd.zero) in
  Array.iter
    (fun (k, c) ->
      if k <> skip && c <> 0.0 then
        match !acc with
        | None -> ()
        | Some s ->
            let b = if c > 0.0 then lb.(k) else ub.(k) in
            if Float.is_finite b then
              acc := Some (Qd.add s (Qd.mul (Qd.of_float c) (Qd.of_float b)))
            else acc := None)
    row;
  !acc

(* Float twin of the above, for cheap candidate scanning. *)
let min_activity_rest_f ~lb ~ub ~skip row =
  let acc = ref 0.0 in
  Array.iter
    (fun (k, c) ->
      if k <> skip && c <> 0.0 then
        acc := !acc +. (c *. if c > 0.0 then lb.(k) else ub.(k)))
    row;
  !acc

(* The audit's CERT111 validity condition for one row-implied event, in
   exact arithmetic (see Analyze.Audit): with the row in [<=] form
   [c·x <= d], minimum rest-activity [ma], and coefficient [cj] on the
   tightened variable:
   - upper bound [u] on an integer column: [cj·(u+1) + ma > d] and [u]
     integral — any integer point above [u] violates the row;
   - upper bound [u] on a continuous column: [cj·u + ma >= d];
   - lower bounds mirror with [cj < 0] and [u-1]/[u]. *)
let event_valid_exact ~integer ~cj ~ma ~d ~hi v =
  let qv = Qd.of_float v
  and qc = Qd.of_float cj
  and qd = Qd.of_float d in
  if integer && not (Qd.is_integer qv) then false
  else
    let shifted =
      if not integer then qv
      else if hi then Qd.add qv qone
      else Qd.sub qv qone
    in
    let lhs = Qd.add (Qd.mul qc shifted) ma in
    if integer then Qd.lt qd lhs else Qd.geq lhs qd

(* ------------------------------------------------------------------ *)
(* Certificate-logged bound tightening                                 *)
(* ------------------------------------------------------------------ *)

(* One [<=]-form view of row [i]: [Some (c, d)] with the terms scaled by
   [dir] = +1 or -1. [Le] rows expose the +1 view, [Ge] rows the -1
   view, [Eq] rows both. *)
let le_views (raw : Model.raw) i =
  match raw.senses.(i) with
  | Model.Le -> [ 1.0 ]
  | Model.Ge -> [ -1.0 ]
  | Model.Eq -> [ 1.0; -1.0 ]

let tighten ?(max_passes = 10) (raw : Model.raw) =
  let n = raw.n in
  let lb = Array.copy raw.lb and ub = Array.copy raw.ub in
  let events = ref [] in
  let emit e = events := e :: !events in
  let changed = ref false in
  (* Integrality rounding of fractional model bounds (t_row = -1). *)
  for j = 0 to n - 1 do
    if raw.integer.(j) then begin
      (if Float.is_finite ub.(j) then
         let f = Float.floor ub.(j) in
         if f < ub.(j) && f >= lb.(j) -. eps then begin
           emit { Cert.t_var = j; t_hi = true; t_new = f; t_row = -1 };
           ub.(j) <- f;
           changed := true
         end);
      if Float.is_finite lb.(j) then
        let c = Float.ceil lb.(j) in
        if c > lb.(j) && c <= ub.(j) +. eps then begin
          emit { Cert.t_var = j; t_hi = false; t_new = c; t_row = -1 };
          lb.(j) <- c;
          changed := true
        end
    end
  done;
  (* Try to install [v0] as the new [hi]/[lo] bound of [j], implied by
     row [i] in the [<=]-form view [row_v] (terms already scaled) with
     coefficient [cj]. Verifies the exact condition before emitting;
     nudges the candidate toward validity a few times when float
     rounding put it a hair on the wrong side. *)
  let try_bound ~i ~j ~cj ~d ~row_v ~hi v0 =
    let integer = raw.integer.(j) in
    let improves v =
      if hi then v < ub.(j) -. (eps *. (1.0 +. Float.abs ub.(j)))
      else v > lb.(j) +. (eps *. (1.0 +. Float.abs lb.(j)))
    in
    let inside v = if hi then v >= lb.(j) -. eps else v <= ub.(j) +. eps in
    let v0 = if integer then (if hi then Float.floor v0 else Float.ceil v0) else v0 in
    if improves v0 && inside v0 then
      match min_activity_rest ~lb ~ub ~skip:j row_v with
      | None -> ()
      | Some ma ->
          let step v k =
            (* relax the candidate toward validity: a larger ub / smaller
               lb stays implied whenever the tighter value was *)
            if integer then if hi then v +. float_of_int k else v -. float_of_int k
            else
              let h = Float.abs v *. 1e-12 +. 1e-12 in
              if hi then v +. (float_of_int k *. h) else v -. (float_of_int k *. h)
          in
          let rec attempt k =
            if k > 3 then ()
            else
              let v = step v0 k in
              if not (improves v) then ()
              else if event_valid_exact ~integer ~cj ~ma ~d ~hi v then begin
                emit { Cert.t_var = j; t_hi = hi; t_new = v; t_row = i };
                if hi then ub.(j) <- v else lb.(j) <- v;
                changed := true
              end
              else attempt (k + 1)
          in
          attempt 0
  in
  let pass () =
    changed := false;
    Array.iteri
      (fun i row ->
        List.iter
          (fun dir ->
            let d = dir *. raw.rhs.(i) in
            (* view-space row: terms scaled by [dir] *)
            let row_v =
              if dir = 1.0 then row
              else Array.map (fun (k, c) -> (k, -.c)) row
            in
            Array.iter
              (fun (j, _) ->
                let cj =
                  (* view-space coefficient of [j] *)
                  Array.fold_left
                    (fun acc (k, c) -> if k = j then acc +. c else acc)
                    0.0 row_v
                in
                if cj <> 0.0 then begin
                  let ma_f = min_activity_rest_f ~lb ~ub ~skip:j row_v in
                  if Float.is_finite ma_f then
                    try_bound ~i ~j ~cj ~d ~row_v ~hi:(cj > 0.0)
                      ((d -. ma_f) /. cj)
                end)
              row)
          (le_views raw i))
      raw.rows;
    !changed
  in
  let p = ref 0 in
  while !p < max_passes && pass () do
    incr p
  done;
  (lb, ub, List.rev !events)

(* ------------------------------------------------------------------ *)
(* Standalone reduce / postsolve                                       *)
(* ------------------------------------------------------------------ *)

type postsolve = {
  orig_n : int;
  orig_m : int;
  col_map : int array;  (* reduced column -> original column *)
  row_map : int array;  (* reduced row -> original row *)
  fixed : (int * float) list;  (* eliminated original columns *)
  ps_rows_dropped : int;
  ps_cols_fixed : int;
  ps_coeffs_strengthened : int;
  ps_bounds_tightened : int;
}

let stats p =
  [
    ("rows_dropped", p.ps_rows_dropped);
    ("cols_fixed", p.ps_cols_fixed);
    ("coeffs_strengthened", p.ps_coeffs_strengthened);
    ("bounds_tightened", p.ps_bounds_tightened);
  ]

let max_activity_f ~lb ~ub row =
  let acc = ref 0.0 in
  (try
     Array.iter
       (fun (k, c) ->
         if c <> 0.0 then begin
           let b = if c > 0.0 then ub.(k) else lb.(k) in
           if not (Float.is_finite b) then begin
             acc := infinity;
             raise Exit
           end;
           acc := !acc +. (c *. b)
         end)
       row
   with Exit -> ());
  !acc

let min_activity_f ~lb ~ub row =
  let acc = ref 0.0 in
  (try
     Array.iter
       (fun (k, c) ->
         if c <> 0.0 then begin
           let b = if c > 0.0 then lb.(k) else ub.(k) in
           if not (Float.is_finite b) then begin
             acc := neg_infinity;
             raise Exit
           end;
           acc := !acc +. (c *. b)
         end)
       row
   with Exit -> ());
  !acc

let reduce ?(max_passes = 10) (raw : Model.raw) =
  let n = raw.n and m = Array.length raw.rows in
  let lb, ub, tevents = tighten ~max_passes raw in
  let n_tight = List.length tevents in
  (* Working copies; rows mutate (strengthening, substitution). *)
  let rows = Array.map Array.copy raw.rows in
  let rhs = Array.copy raw.rhs in
  let row_alive = Array.make m true in
  let col_alive = Array.make n true in
  let fixed = ref [] in
  let dropped = ref 0 and strengthened = ref 0 and colfixed = ref 0 in
  let fix_col j v =
    if col_alive.(j) then begin
      col_alive.(j) <- false;
      fixed := (j, v) :: !fixed;
      incr colfixed;
      (* substitute into every live row *)
      Array.iteri
        (fun i row ->
          if row_alive.(i) then
            let hit = Array.exists (fun (k, _) -> k = j) row in
            if hit then begin
              Array.iter (fun (k, c) -> if k = j then rhs.(i) <- rhs.(i) -. (c *. v)) row;
              rows.(i) <- Array.of_list
                  (List.filter (fun (k, _) -> k <> j)
                     (Array.to_list row))
            end)
        rows
    end
  in
  let uses = Array.make n 0 in
  let recount () =
    Array.fill uses 0 n 0;
    Array.iteri
      (fun i row ->
        if row_alive.(i) then
          Array.iter (fun (k, c) -> if c <> 0.0 then uses.(k) <- uses.(k) + 1) row)
      rows
  in
  let changed = ref true in
  let p = ref 0 in
  while !changed && !p < max_passes do
    changed := false;
    incr p;
    (* Singleton rows become bounds. *)
    Array.iteri
      (fun i row ->
        if row_alive.(i) && Array.length row = 1 then begin
          let j, a = row.(0) in
          if a <> 0.0 && col_alive.(j) then begin
            let v = rhs.(i) /. a in
            (match (raw.senses.(i), a > 0.0) with
            | Model.Eq, _ ->
                lb.(j) <- Float.max lb.(j) v;
                ub.(j) <- Float.min ub.(j) v
            | Model.Le, true | Model.Ge, false -> ub.(j) <- Float.min ub.(j) v
            | Model.Le, false | Model.Ge, true -> lb.(j) <- Float.max lb.(j) v);
            row_alive.(i) <- false;
            incr dropped;
            changed := true
          end
        end)
      rows;
    (* Redundant rows: the box already implies them. *)
    Array.iteri
      (fun i row ->
        if row_alive.(i) then
          let redundant =
            match raw.senses.(i) with
            | Model.Le -> max_activity_f ~lb ~ub row <= rhs.(i) +. eps
            | Model.Ge -> min_activity_f ~lb ~ub row >= rhs.(i) -. eps
            | Model.Eq -> false
          in
          if redundant then begin
            row_alive.(i) <- false;
            incr dropped;
            changed := true
          end)
      rows;
    (* Savelsbergh coefficient strengthening on [<=] rows: a binary [j]
       with [a_j > 0] whose row stays satisfiable even at [x_j = 1]
       ([maxact - a_j <= b]) but binds tighter than needed
       ([maxact - b < a_j]) can have [a_j] shrunk to [maxact - b] with
       rhs [maxact - a_j] — same integer solutions, tighter LP. *)
    Array.iteri
      (fun i row ->
        if row_alive.(i) && raw.senses.(i) = Model.Le then
          Array.iteri
            (fun t (j, a) ->
              if
                a > eps && col_alive.(j) && raw.integer.(j)
                && lb.(j) = 0.0 && ub.(j) = 1.0
              then
                let maxact = max_activity_f ~lb ~ub row in
                if Float.is_finite maxact then begin
                  let b = rhs.(i) in
                  if maxact -. a <= b +. eps && maxact -. b < a -. eps
                     && maxact -. b > eps
                  then begin
                    row.(t) <- (j, maxact -. b);
                    rhs.(i) <- maxact -. a;
                    incr strengthened;
                    changed := true
                  end
                end)
            row)
      rows;
    (* Columns in no live row: pushed to their cheapest bound. *)
    recount ();
    for j = 0 to n - 1 do
      if col_alive.(j) && uses.(j) = 0 then
        if raw.obj.(j) >= 0.0 then begin
          fix_col j lb.(j);
          changed := true
        end
        else if Float.is_finite ub.(j) then begin
          fix_col j ub.(j);
          changed := true
        end
    done;
    (* Fixed columns: substitute out. *)
    for j = 0 to n - 1 do
      if col_alive.(j) && Float.is_finite ub.(j) && ub.(j) -. lb.(j) <= 0.0
      then begin
        fix_col j lb.(j);
        changed := true
      end
    done
  done;
  (* Rebuild compact arrays. *)
  let col_map = Array.of_list (List.filter (fun j -> col_alive.(j)) (List.init n Fun.id)) in
  let col_new = Array.make n (-1) in
  Array.iteri (fun r j -> col_new.(j) <- r) col_map;
  let row_map = Array.of_list (List.filter (fun i -> row_alive.(i)) (List.init m Fun.id)) in
  let n' = Array.length col_map in
  let raw' =
    {
      Model.n = n';
      lb = Array.map (fun j -> lb.(j)) col_map;
      ub = Array.map (fun j -> ub.(j)) col_map;
      integer = Array.map (fun j -> raw.integer.(j)) col_map;
      obj = Array.map (fun j -> raw.obj.(j)) col_map;
      rows =
        Array.map
          (fun i ->
            Array.map (fun (k, c) -> (col_new.(k), c)) rows.(i))
          row_map;
      senses = Array.map (fun i -> raw.senses.(i)) row_map;
      rhs = Array.map (fun i -> rhs.(i)) row_map;
    }
  in
  ( raw',
    {
      orig_n = n;
      orig_m = m;
      col_map;
      row_map;
      fixed = !fixed;
      ps_rows_dropped = !dropped;
      ps_cols_fixed = !colfixed;
      ps_coeffs_strengthened = !strengthened;
      ps_bounds_tightened = n_tight;
    } )

let restore p x =
  let out = Array.make p.orig_n 0.0 in
  List.iter (fun (j, v) -> out.(j) <- v) p.fixed;
  Array.iteri (fun r j -> out.(j) <- x.(r)) p.col_map;
  out

let restore_duals p y =
  let out = Array.make p.orig_m 0.0 in
  Array.iteri (fun r i -> out.(i) <- y.(r)) p.row_map;
  out
