type status = Optimal | Infeasible | Unbounded | Iteration_limit | Time_limit

type result = {
  status : status;
  x : float array;
  objective : float;
  iterations : int;
}

let feas_eps = 1e-7
let cost_eps = 1e-7
let pivot_eps = 1e-8

(* Instrumentation (lib/obs): warm-restart accounting, additive only. *)
let c_resolve_pivots = Obs.Counter.get "simplex.resolve_pivots"
let c_resolve_warm = Obs.Counter.get "simplex.resolve_warm"
let c_resolve_cold = Obs.Counter.get "simplex.resolve_cold"

type vstat = Basic of int (* row *) | At_lower | At_upper

(* Internal working problem. All columns are shifted so the *original*
   (build-time) lower bound maps to 0; [lo]/[hi] are the current working
   bounds in that shifted space, so a warm restart can install tightened
   node bounds without rebuilding the tableau (nonbasic-at-lower sits at
   [lo], not at 0). *)
type tab = {
  m : int;  (** rows *)
  n : int;  (** structural columns *)
  cols : int;  (** structural + slack + artificial columns *)
  a : float array array;  (** m x cols dense tableau, kept row-reduced *)
  b : float array;
      (** B⁻¹·(shifted rhs): transformed alongside [a] by every pivot so
          basic values can be recomputed exactly after bound changes *)
  beta : float array;  (** current value of the basic variable of each row *)
  lo : float array;  (** working lower bound (shifted), always finite *)
  hi : float array;  (** working upper bound (shifted), may be +inf *)
  cost : float array;  (** current phase objective coefficients *)
  z : float array;  (** reduced costs *)
  stat : vstat array;
  basis : int array;  (** column basic in each row *)
  sign : float array;
      (** per-row build-time normalization: -1 where a [>=] row was negated
          into [<=] form, +1 otherwise. Needed to translate slack-column
          reduced costs back into multipliers on the *original* rows for
          certificate extraction ({!duals}, Farkas rays): the artificial-row
          flip applied below cancels out of that algebra, but [sign] does
          not. *)
}

let value t j =
  match t.stat.(j) with
  | Basic r -> t.beta.(r)
  | At_lower -> t.lo.(j)
  | At_upper -> t.hi.(j)

(* Recompute reduced costs z_j = c_j - c_B . a_j from scratch. *)
let recompute_z t =
  let cb = Array.map (fun j -> t.cost.(j)) t.basis in
  for j = 0 to t.cols - 1 do
    let acc = ref t.cost.(j) in
    for i = 0 to t.m - 1 do
      let aij = t.a.(i).(j) in
      if aij <> 0.0 && cb.(i) <> 0.0 then acc := !acc -. (cb.(i) *. aij)
    done;
    t.z.(j) <- !acc
  done

(* Recompute basic values beta = B⁻¹b - Σ_{nonbasic} (B⁻¹A_j)·x_j from the
   maintained [b] column — removes incremental drift across warm restarts. *)
let recompute_beta t =
  Array.blit t.b 0 t.beta 0 t.m;
  for j = 0 to t.cols - 1 do
    match t.stat.(j) with
    | Basic _ -> ()
    | At_lower | At_upper ->
        let x = value t j in
        if x <> 0.0 then
          for i = 0 to t.m - 1 do
            t.beta.(i) <- t.beta.(i) -. (t.a.(i).(j) *. x)
          done
  done

(* Choose an entering column. Dantzig by default; Bland when [bland]. *)
let entering t ~bland =
  let best = ref (-1) and best_score = ref cost_eps in
  let consider j score =
    if bland then (if !best = -1 && score > cost_eps then best := j)
    else if score > !best_score then begin
      best := j;
      best_score := score
    end
  in
  (try
     for j = 0 to t.cols - 1 do
       (if t.hi.(j) -. t.lo.(j) > 0.0 then
          match t.stat.(j) with
          | Basic _ -> ()
          | At_lower -> consider j (-.t.z.(j))
          | At_upper -> consider j t.z.(j)
        (* fixed vars (lo = hi) never enter *));
       if bland && !best >= 0 then raise Exit
     done
   with Exit -> ());
  !best

exception Unbounded_exc

(* Ratio test: entering j moves by dir * t. Returns (t*, leaving row or -1
   for a bound flip). *)
let ratio_test t j ~dir =
  let range = t.hi.(j) -. t.lo.(j) in
  let tmax = ref (if Float.is_finite range then range else infinity) in
  let row = ref (-1) in
  for i = 0 to t.m - 1 do
    let delta = dir *. t.a.(i).(j) in
    if delta > pivot_eps then begin
      let ti = (t.beta.(i) -. t.lo.(t.basis.(i))) /. delta in
      let ti = if ti < 0.0 then 0.0 else ti in
      if ti < !tmax -. 1e-12 then begin
        tmax := ti;
        row := i
      end
    end
    else if delta < -.pivot_eps then begin
      let ub = t.hi.(t.basis.(i)) in
      if Float.is_finite ub then begin
        let ti = (ub -. t.beta.(i)) /. -.delta in
        let ti = if ti < 0.0 then 0.0 else ti in
        if ti < !tmax -. 1e-12 then begin
          tmax := ti;
          row := i
        end
      end
    end
  done;
  if Float.is_finite !tmax then (!tmax, !row) else raise Unbounded_exc

let do_bound_flip t j ~dir ~tstar =
  for i = 0 to t.m - 1 do
    t.beta.(i) <- t.beta.(i) -. (dir *. t.a.(i).(j) *. tstar)
  done;
  t.stat.(j) <- (match t.stat.(j) with
    | At_lower -> At_upper
    | At_upper -> At_lower
    | Basic _ -> assert false)

(* Row reduction making column j a unit vector at row r; transforms [b]
   and the reduced costs alongside. Shared by primal and dual pivots. *)
let row_reduce t j r =
  let prow = t.a.(r) in
  let piv = prow.(j) in
  for c = 0 to t.cols - 1 do
    prow.(c) <- prow.(c) /. piv
  done;
  t.b.(r) <- t.b.(r) /. piv;
  for i = 0 to t.m - 1 do
    if i <> r then begin
      let f = t.a.(i).(j) in
      if f <> 0.0 then begin
        let row_i = t.a.(i) in
        for c = 0 to t.cols - 1 do
          row_i.(c) <- row_i.(c) -. (f *. prow.(c))
        done;
        row_i.(j) <- 0.0;
        t.b.(i) <- t.b.(i) -. (f *. t.b.(r))
      end
    end
  done;
  let zf = t.z.(j) in
  if zf <> 0.0 then begin
    for c = 0 to t.cols - 1 do
      t.z.(c) <- t.z.(c) -. (zf *. prow.(c))
    done;
    t.z.(j) <- 0.0
  end;
  t.basis.(r) <- j;
  t.stat.(j) <- Basic r

let do_pivot t j r ~dir ~tstar =
  let x_old = match t.stat.(j) with
    | At_lower -> t.lo.(j)
    | At_upper -> t.hi.(j)
    | Basic _ -> assert false
  in
  let x_new = x_old +. (dir *. tstar) in
  for i = 0 to t.m - 1 do
    if i <> r then t.beta.(i) <- t.beta.(i) -. (dir *. t.a.(i).(j) *. tstar)
  done;
  t.beta.(r) <- x_new;
  (* Leaving variable parks at the bound it hit. *)
  let leaving = t.basis.(r) in
  let delta_r = dir *. t.a.(r).(j) in
  t.stat.(leaving) <- (if delta_r > 0.0 then At_lower else At_upper);
  row_reduce t j r

(* Run pivots until optimal/unbounded/iteration cap/deadline. Returns
   iterations. The deadline is polled every 64 pivots — fine-grained
   enough that one pathological node LP cannot overshoot the MILP budget
   by more than a sliver, cheap enough to be invisible in profiles. *)
let optimize t ~max_iters ~iters_used ~deadline =
  let iters = ref iters_used in
  let bland_after = max 200 (10 * (t.m + t.cols)) in
  let status = ref Optimal in
  if Resilience.Fault.fires "simplex.cycle" then status := Iteration_limit
  else
  (try
     let continue_ = ref true in
     while !continue_ do
       if !iters >= max_iters then begin
         status := Iteration_limit;
         continue_ := false
       end
       else if
         (!iters - iters_used) land 63 = 0
         && Resilience.Deadline.expired deadline
       then begin
         status := Time_limit;
         continue_ := false
       end
       else begin
         let bland = !iters - iters_used > bland_after in
         let j = entering t ~bland in
         if j < 0 then continue_ := false
         else begin
           incr iters;
           let dir = match t.stat.(j) with
             | At_lower -> 1.0
             | At_upper -> -1.0
             | Basic _ -> assert false
           in
           let tstar, r = ratio_test t j ~dir in
           if r < 0 then do_bound_flip t j ~dir ~tstar
           else do_pivot t j r ~dir ~tstar
         end
       end
     done
   with Unbounded_exc -> status := Unbounded);
  (!status, !iters)

(* Dual pivot: the basic variable of row r is out of bounds; entering
   column j moves until that variable lands exactly on [target] (its
   violated bound). Dual feasibility of z is preserved by the caller's
   ratio test. *)
let do_dual_pivot t j r ~target ~below =
  let x_old = match t.stat.(j) with
    | At_lower -> t.lo.(j)
    | At_upper -> t.hi.(j)
    | Basic _ -> assert false
  in
  let dx = (t.beta.(r) -. target) /. t.a.(r).(j) in
  for i = 0 to t.m - 1 do
    if i <> r then t.beta.(i) <- t.beta.(i) -. (t.a.(i).(j) *. dx)
  done;
  t.beta.(r) <- x_old +. dx;
  let leaving = t.basis.(r) in
  t.stat.(leaving) <- (if below then At_lower else At_upper);
  row_reduce t j r

(* Dual simplex: starting from a dual-feasible basis (reduced costs of an
   optimal parent LP are untouched by bound changes), repair primal
   feasibility after node bounds were installed. Terminates with [Optimal]
   (primal feasible again — usually a handful of pivots for a single
   branched binary), [Infeasible] (a violated row with no sign-compatible
   entering column proves the box empty), or a budget status. *)
let dual_repair t ~max_iters ~iters_used ~deadline =
  let iters = ref iters_used in
  let status = ref Optimal in
  let infeas_row = ref None in
  let continue_ = ref true in
  while !continue_ do
    (* most-violated row *)
    let r = ref (-1) and viol = ref feas_eps and below = ref false in
    for i = 0 to t.m - 1 do
      let bv = t.basis.(i) in
      let under = t.lo.(bv) -. t.beta.(i) in
      if under > !viol then begin r := i; viol := under; below := true end;
      if Float.is_finite t.hi.(bv) then begin
        let over = t.beta.(i) -. t.hi.(bv) in
        if over > !viol then begin r := i; viol := over; below := false end
      end
    done;
    if !r < 0 then continue_ := false
    else if !iters >= max_iters then begin
      status := Iteration_limit;
      continue_ := false
    end
    else if
      (!iters - iters_used) land 63 = 0 && Resilience.Deadline.expired deadline
    then begin
      status := Time_limit;
      continue_ := false
    end
    else begin
      let r = !r and below = !below in
      let arow = t.a.(r) in
      (* entering column: dual ratio test, |z_j / a_rj| minimal keeps z
         dual feasible; tie-break on pivot magnitude for stability *)
      let q = ref (-1) and best = ref infinity and best_a = ref 0.0 in
      for j = 0 to t.cols - 1 do
        if t.hi.(j) -. t.lo.(j) > 0.0 then begin
          let arj = arow.(j) in
          let ok =
            match t.stat.(j) with
            | Basic _ -> false
            | At_lower -> if below then arj < -.pivot_eps else arj > pivot_eps
            | At_upper -> if below then arj > pivot_eps else arj < -.pivot_eps
          in
          if ok then begin
            let ratio = Float.abs (t.z.(j) /. arj) in
            if
              ratio < !best -. 1e-12
              || (ratio < !best +. 1e-12 && Float.abs arj > Float.abs !best_a)
            then begin
              q := j;
              best := ratio;
              best_a := arj
            end
          end
        end
      done;
      if !q < 0 then begin
        status := Infeasible;
        infeas_row := Some (r, below);
        continue_ := false
      end
      else begin
        incr iters;
        let target =
          if below then t.lo.(t.basis.(r)) else t.hi.(t.basis.(r))
        in
        do_dual_pivot t !q r ~target ~below
      end
    end
  done;
  (!status, !iters, !infeas_row)

(* ------------------------------------------------------------------ *)
(* Build / solve                                                       *)
(* ------------------------------------------------------------------ *)

(* First variable whose bounds cross, if any. *)
let crossed_bounds n lbv ubv =
  let crossed = ref (-1) in
  (try
     for j = 0 to n - 1 do
       if ubv.(j) < lbv.(j) -. feas_eps then begin
         crossed := j;
         raise Exit
       end
     done
   with Exit -> ());
  !crossed

let infeasible_result n =
  { status = Infeasible; x = Array.make n 0.0; objective = 0.0; iterations = 0 }

(* Build the shifted tableau for [raw] under bounds [lbv]/[ubv]. *)
let build (raw : Model.raw) lbv ubv =
  let n = raw.n in
  let m = Array.length raw.rows in
  (* Normalize rows: >= becomes <= (negated); compute shifted rhs. *)
  let sign = Array.make m 1.0 in
  let is_eq = Array.make m false in
  Array.iteri
    (fun i s ->
      match (s : Model.sense) with
      | Model.Ge -> sign.(i) <- -1.0
      | Model.Eq -> is_eq.(i) <- true
      | Model.Le -> ())
    raw.senses;
  let bshift = Array.make m 0.0 in
  for i = 0 to m - 1 do
    let acc = ref (sign.(i) *. raw.rhs.(i)) in
    Array.iter
      (fun (j, c) -> acc := !acc -. (sign.(i) *. c *. lbv.(j)))
      raw.rows.(i);
    bshift.(i) <- !acc
  done;
  (* Column layout: structural | slack per row | artificials as needed. *)
  let need_artificial = Array.make m false in
  for i = 0 to m - 1 do
    if is_eq.(i) then need_artificial.(i) <- Float.abs bshift.(i) > feas_eps
    else need_artificial.(i) <- bshift.(i) < -.feas_eps
  done;
  let n_art = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 need_artificial in
  let cols = n + m + n_art in
  let a = Array.init m (fun _ -> Array.make cols 0.0) in
  let lo = Array.make cols 0.0 in
  let hi = Array.make cols infinity in
  for j = 0 to n - 1 do
    hi.(j) <- ubv.(j) -. lbv.(j)
  done;
  for i = 0 to m - 1 do
    Array.iter (fun (j, c) -> a.(i).(j) <- a.(i).(j) +. (sign.(i) *. c)) raw.rows.(i);
    a.(i).(n + i) <- 1.0;
    hi.(n + i) <- (if is_eq.(i) then 0.0 else infinity)
  done;
  let basis = Array.make m 0 in
  let beta = Array.make m 0.0 in
  let art = ref 0 in
  for i = 0 to m - 1 do
    if need_artificial.(i) then begin
      let col = n + m + !art in
      incr art;
      (* Scale the row so the artificial enters with +1 and value >= 0. *)
      if bshift.(i) < 0.0 then begin
        for c = 0 to cols - 1 do
          a.(i).(c) <- -.a.(i).(c)
        done;
        bshift.(i) <- -.bshift.(i)
      end;
      a.(i).(col) <- 1.0;
      basis.(i) <- col;
      beta.(i) <- bshift.(i)
    end
    else begin
      basis.(i) <- n + i;
      beta.(i) <- bshift.(i)
    end
  done;
  let stat = Array.make cols At_lower in
  Array.iteri (fun i j -> stat.(j) <- Basic i) basis;
  {
    m; n; cols; a;
    b = Array.copy bshift;
    beta; lo; hi;
    cost = Array.make cols 0.0;
    z = Array.make cols 0.0;
    stat; basis; sign;
  }

(* ------------------------------------------------------------------ *)
(* Certificate extraction                                              *)
(* ------------------------------------------------------------------ *)

(* Multipliers on the *original* model rows, in the Lagrangian convention
   the audit re-checks exactly: a vector [u] with [u_i >= 0] on [<=] rows,
   [u_i <= 0] on [>=] rows and free on [=] rows yields the safe bound
   [-u·b + Σ_j min over the box of (c + Aᵀu)_j·x_j]. The slack column of
   row [i] carries exactly [flip_i·(B⁻¹)_{·,i}], so its reduced cost is
   [-flip_i·y'_i]; unwinding the build-time flip and [>=] normalizations,
   the flips cancel and [u_i = sign_i·z.(n+i)]. Valid under whichever cost
   row is currently installed — phase 2 gives optimality duals, phase 1 at
   a positive-infeasibility optimum gives a Farkas ray. *)
let row_multipliers t = Array.init t.m (fun i -> t.sign.(i) *. t.z.(t.n + i))

(* Farkas ray from a dual-repair failure: row [r] of B⁻¹ read off the
   slack columns proves the box empty (no sign-compatible entering column
   means the basic variable's bound violation cannot be repaired within
   the box); negated when the variable overshot its upper bound. *)
let farkas_of_row t (r, below) =
  let s = if below then 1.0 else -1.0 in
  Array.init t.m (fun i -> s *. t.sign.(i) *. t.a.(r).(t.n + i))

(* Phase 1 (artificials to zero) then phase 2 on the real objective.
   Returns a Farkas ray alongside a phase-1 [Infeasible]. *)
let phases t (raw : Model.raw) ~max_iters ~deadline =
  let n = t.n and m = t.m and cols = t.cols in
  let phase1 =
    if cols = n + m then Ok 0
    else begin
      for c = 0 to cols - 1 do
        t.cost.(c) <- (if c >= n + m then 1.0 else 0.0)
      done;
      recompute_z t;
      let status, iters = optimize t ~max_iters ~iters_used:0 ~deadline in
      match status with
      | Iteration_limit -> Error (Iteration_limit, iters, None)
      | Time_limit -> Error (Time_limit, iters, None)
      | Unbounded -> Error (Infeasible, iters, None) (* cannot happen *)
      | Optimal | Infeasible ->
          let infeas = ref 0.0 in
          for c = n + m to cols - 1 do
            infeas := !infeas +. value t c
          done;
          if !infeas > 1e-6 then
            (* The phase-1 dual proves min Σ artificials > 0: extract it
               while the phase-1 cost row is still installed. *)
            Error (Infeasible, iters, Some (row_multipliers t))
          else begin
            (* Lock artificials at zero for phase 2. *)
            for c = n + m to cols - 1 do
              t.hi.(c) <- 0.0
            done;
            Ok iters
          end
    end
  in
  match phase1 with
  | Error (s, i, ray) -> (s, i, ray)
  | Ok iters1 ->
      for c = 0 to cols - 1 do
        t.cost.(c) <- (if c < n then raw.obj.(c) else 0.0)
      done;
      recompute_z t;
      let status, iters = optimize t ~max_iters ~iters_used:iters1 ~deadline in
      (status, iters, None)

let finish t (raw : Model.raw) base_lb status iters =
  let x = Array.init t.n (fun j -> base_lb.(j) +. value t j) in
  let objective =
    let acc = ref 0.0 in
    for j = 0 to t.n - 1 do
      acc := !acc +. (raw.obj.(j) *. x.(j))
    done;
    !acc
  in
  { status; x; objective; iterations = iters }

let solve ?(max_iters = 50_000) ?(deadline = Resilience.Deadline.none) ?lb ?ub
    (raw : Model.raw) =
  let lbv = match lb with Some a -> a | None -> raw.lb in
  let ubv = match ub with Some a -> a | None -> raw.ub in
  if crossed_bounds raw.n lbv ubv >= 0 then infeasible_result raw.n
  else begin
    let t = build raw lbv ubv in
    let status, iters, _ray = phases t raw ~max_iters ~deadline in
    finish t raw lbv status iters
  end

(* ------------------------------------------------------------------ *)
(* Reusable state and warm restart                                     *)
(* ------------------------------------------------------------------ *)

type state = {
  mutable raw : Model.raw;
      (** the solved system; {!add_rows} extends it in place with cut
          rows so warm restarts keep covering the extended polytope *)
  mutable base_lb : float array;
      (** shift origin of the tableau; [x_j = base_lb.(j) + value j] *)
  mutable t : tab option;  (** [None] only when the build found crossed bounds *)
  mutable warm_ok : bool;
      (** last terminal status left a dual-feasible basis to restart from *)
  mutable last_warm : bool;
  mutable resolves : int;
  mutable infeas : Cert.farkas option;
      (** infeasibility evidence for the most recent [Infeasible] outcome *)
}

(* Accumulated row-operation drift in [a] is bounded by refactoring (a
   cold rebuild) every this-many warm restarts. *)
let refactor_every = 256

let solve_state ?(max_iters = 50_000) ?(deadline = Resilience.Deadline.none)
    ?lb ?ub (raw : Model.raw) =
  let lbv = Array.copy (match lb with Some a -> a | None -> raw.lb) in
  let ubv = Array.copy (match ub with Some a -> a | None -> raw.ub) in
  let crossed = crossed_bounds raw.n lbv ubv in
  if crossed >= 0 then
    ( infeasible_result raw.n,
      { raw; base_lb = lbv; t = None; warm_ok = false; last_warm = false;
        resolves = 0; infeas = Some (Cert.Empty_box crossed) } )
  else begin
    let t = build raw lbv ubv in
    let status, iters, ray = phases t raw ~max_iters ~deadline in
    ( finish t raw lbv status iters,
      { raw; base_lb = lbv; t = Some t; warm_ok = status = Optimal;
        last_warm = false; resolves = 0;
        infeas =
          (match (status, ray) with
          | Infeasible, Some r -> Some (Cert.Ray r)
          | _ -> None) } )
  end

let copy_tab t =
  {
    t with
    a = Array.map Array.copy t.a;
    b = Array.copy t.b;
    beta = Array.copy t.beta;
    lo = Array.copy t.lo;
    hi = Array.copy t.hi;
    cost = Array.copy t.cost;
    z = Array.copy t.z;
    stat = Array.copy t.stat;
    basis = Array.copy t.basis;
  }

let copy st =
  {
    st with
    base_lb = Array.copy st.base_lb;
    t = Option.map copy_tab st.t;
  }

let last_resolve_warm st = st.last_warm

let reduced_cost st j =
  match st.t with None -> 0.0 | Some t -> t.z.(j)

let basis_status st j =
  match st.t with
  | None -> `Basic
  | Some t -> (
      match t.stat.(j) with
      | Basic _ -> `Basic
      | At_lower -> `At_lower
      | At_upper -> `At_upper)

let resolve ?(max_iters = 50_000) ?(deadline = Resilience.Deadline.none)
    ~lb ~ub st =
  st.resolves <- st.resolves + 1;
  st.infeas <- None;
  let raw = st.raw in
  let crossed = crossed_bounds raw.n lb ub in
  if crossed >= 0 then begin
    (* Basis untouched: the state stays warm for the next sibling. *)
    st.last_warm <- true;
    st.infeas <- Some (Cert.Empty_box crossed);
    infeasible_result raw.n
  end
  else begin
    (* [reason] only feeds the trace: why this resolve fell back to a
       full refactorization instead of the warm dual-repair path. *)
    let cold ~reason () =
      if Obs.Trace.enabled () then
        Obs.Trace.instant ~cat:"simplex" "simplex.refactor"
          ~args:[ ("reason", Obs.Json.String reason) ];
      st.last_warm <- false;
      Obs.Counter.incr c_resolve_cold;
      let lbv = Array.copy lb and ubv = Array.copy ub in
      let t = build raw lbv ubv in
      let status, iters, ray = phases t raw ~max_iters ~deadline in
      st.t <- Some t;
      st.base_lb <- lbv;
      st.warm_ok <- status = Optimal;
      (match (status, ray) with
      | Infeasible, Some r -> st.infeas <- Some (Cert.Ray r)
      | _ -> ());
      Obs.Counter.incr ~by:iters c_resolve_pivots;
      finish t raw lbv status iters
    in
    let warm t =
      (* Install the node bounds in shifted space. Slack, artificial and
         cost data are untouched; reduced costs are bound-independent, so
         the parent's optimal basis stays dual feasible and a short dual
         repair restores primal feasibility. *)
      for j = 0 to raw.n - 1 do
        t.lo.(j) <- lb.(j) -. st.base_lb.(j);
        t.hi.(j) <- ub.(j) -. st.base_lb.(j);
        match t.stat.(j) with
        | At_upper when not (Float.is_finite t.hi.(j)) ->
            (* cannot sit at an infinite bound; dual check below decides *)
            t.stat.(j) <- At_lower
        | _ -> ()
      done;
      (* z is NOT recomputed here: reduced costs are bound-independent and
         are maintained exactly through every row reduction, so the parent's
         cost row is already correct. Drift is bounded by the periodic cold
         refactorization ([refactor_every]). *)
      let dual_ok = ref true in
      for j = 0 to t.cols - 1 do
        if t.hi.(j) -. t.lo.(j) > 0.0 then
          match t.stat.(j) with
          | Basic _ -> ()
          | At_lower -> if t.z.(j) < -1e-6 then dual_ok := false
          | At_upper -> if t.z.(j) > 1e-6 then dual_ok := false
      done;
      if not !dual_ok then cold ~reason:"dual_infeasible" ()
      else begin
        recompute_beta t;
        let repair, iters1, bad_row =
          dual_repair t ~max_iters ~iters_used:0 ~deadline
        in
        match repair with
        | Iteration_limit ->
            (* possible degenerate cycling in the repair: rebuild cold *)
            cold ~reason:"repair_limit" ()
        | Infeasible ->
            st.last_warm <- true;
            st.warm_ok <- true;
            (match bad_row with
            | Some rb -> st.infeas <- Some (Cert.Ray (farkas_of_row t rb))
            | None -> ());
            Obs.Counter.incr c_resolve_warm;
            Obs.Counter.incr ~by:iters1 c_resolve_pivots;
            finish t raw st.base_lb Infeasible iters1
        | Time_limit ->
            st.last_warm <- true;
            st.warm_ok <- false;
            Obs.Counter.incr c_resolve_warm;
            Obs.Counter.incr ~by:iters1 c_resolve_pivots;
            finish t raw st.base_lb Time_limit iters1
        | Optimal | Unbounded ->
            let status, iters =
              optimize t ~max_iters ~iters_used:iters1 ~deadline
            in
            st.last_warm <- true;
            st.warm_ok <- status = Optimal;
            Obs.Counter.incr c_resolve_warm;
            Obs.Counter.incr ~by:iters c_resolve_pivots;
            finish t raw st.base_lb status iters
      end
    in
    match st.t with
    | None -> cold ~reason:"no_state" ()
    | Some _ when not st.warm_ok -> cold ~reason:"stale_basis" ()
    | Some _ when st.resolves mod refactor_every = 0 ->
        cold ~reason:"periodic" ()
    | Some t -> warm t
  end

let duals st =
  match st.t with
  | None -> None
  | Some t -> Some (row_multipliers t)

let last_infeasibility st = st.infeas

(* Aggregation multipliers reproducing the tableau row of a basic
   structural column: row [r] of the reduced tableau satisfies
   [T_r = Σ_i λ_i · (original row i)] on the structural columns with
   [λ_i = sign_i · T_r(slack_i)] — the build-time artificial flip shows
   up in both the slack entry and B⁻¹ and cancels, exactly as in
   {!row_multipliers}. Consumed by {!Cutgen} as the *suggestion* for a
   Chvátal–Gomory derivation; everything downstream is recomputed
   exactly from the returned vector. *)
let tableau_multipliers st j =
  match st.t with
  | None -> None
  | Some t -> (
      if j < 0 || j >= t.n then None
      else
        match t.stat.(j) with
        | Basic r ->
            Some (Array.init t.m (fun i -> t.sign.(i) *. t.a.(r).(t.n + i)))
        | At_lower | At_upper -> None)

(* Append [<=] rows (cuts) to the solved system without losing the warm
   basis. The extended tableau keeps every old column at its index —
   structural then one slack per old row — drops the artificial columns
   (all locked at zero after phase 2), and gives each new row its own
   slack, entered basic after reducing the row against the current
   basis. Reduced costs are untouched (the new basic slacks cost 0), so
   a dual-feasible basis stays dual feasible and the next {!resolve}
   warm-repairs the (intentionally) violated new rows with a few dual
   pivots. A basic artificial — possible only on a degenerate phase-1
   exit — forfeits the tableau instead; the next {!resolve} then
   rebuilds cold over the extended system. *)
let add_rows st (new_rows : ((int * float) array * float) array) =
  let k = Array.length new_rows in
  if k > 0 then begin
    let raw = st.raw in
    st.raw <-
      {
        raw with
        rows = Array.append raw.rows (Array.map fst new_rows);
        senses = Array.append raw.senses (Array.make k Model.Le);
        rhs = Array.append raw.rhs (Array.map snd new_rows);
      };
    match st.t with
    | None -> ()
    | Some t ->
        if Array.exists (fun b -> b >= t.n + t.m) t.basis then begin
          st.t <- None;
          st.warm_ok <- false
        end
        else begin
          let n = t.n and m = t.m in
          let m' = m + k in
          let cols' = n + m' in
          let a' =
            Array.init m' (fun i ->
                let row = Array.make cols' 0.0 in
                if i < m then Array.blit t.a.(i) 0 row 0 (n + m);
                row)
          in
          let b' = Array.make m' 0.0 in
          Array.blit t.b 0 b' 0 m;
          let grow dflt src =
            let dst = Array.make cols' dflt in
            Array.blit src 0 dst 0 (n + m);
            dst
          in
          let lo' = grow 0.0 t.lo and hi' = grow infinity t.hi in
          let cost' = grow 0.0 t.cost and z' = grow 0.0 t.z in
          let stat' = Array.make cols' At_lower in
          Array.blit t.stat 0 stat' 0 (n + m);
          let basis' = Array.make m' 0 in
          Array.blit t.basis 0 basis' 0 m;
          let sign' = Array.make m' 1.0 in
          Array.blit t.sign 0 sign' 0 m;
          Array.iteri
            (fun p (terms, rhs) ->
              let r = m + p in
              let row = a'.(r) in
              Array.iter (fun (j, c) -> row.(j) <- row.(j) +. c) terms;
              row.(n + r) <- 1.0;
              let bshift = ref rhs in
              Array.iter
                (fun (j, c) -> bshift := !bshift -. (c *. st.base_lb.(j)))
                terms;
              (* reduce against the inherited basis so the tableau stays
                 row-reduced; new-row slacks never appear in old rows *)
              for i = 0 to m - 1 do
                let f = row.(basis'.(i)) in
                if f <> 0.0 then begin
                  let src = a'.(i) in
                  for c = 0 to cols' - 1 do
                    row.(c) <- row.(c) -. (f *. src.(c))
                  done;
                  row.(basis'.(i)) <- 0.0;
                  bshift := !bshift -. (f *. b'.(i))
                end
              done;
              b'.(r) <- !bshift;
              basis'.(r) <- n + r;
              stat'.(n + r) <- Basic r)
            new_rows;
          let t' =
            { m = m'; n; cols = cols'; a = a'; b = b'
            ; beta = Array.make m' 0.0; lo = lo'; hi = hi'; cost = cost'
            ; z = z'; stat = stat'; basis = basis'; sign = sign' }
          in
          recompute_beta t';
          st.t <- Some t'
        end
  end
