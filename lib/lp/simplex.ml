type status = Optimal | Infeasible | Unbounded | Iteration_limit | Time_limit

type result = {
  status : status;
  x : float array;
  objective : float;
  iterations : int;
}

let feas_eps = 1e-7
let cost_eps = 1e-7
let pivot_eps = 1e-8

type vstat = Basic of int (* row *) | At_lower | At_upper

(* Internal working problem, all variables shifted to lb = 0. *)
type tab = {
  m : int;  (** rows *)
  cols : int;  (** structural + slack + artificial columns *)
  a : float array array;  (** m x cols dense tableau *)
  beta : float array;  (** current value of the basic variable of each row *)
  range : float array;  (** shifted upper bound (ub - lb), may be +inf *)
  cost : float array;  (** current phase objective coefficients *)
  z : float array;  (** reduced costs *)
  stat : vstat array;
  basis : int array;  (** column basic in each row *)
}

let value t j =
  match t.stat.(j) with
  | Basic r -> t.beta.(r)
  | At_lower -> 0.0
  | At_upper -> t.range.(j)

(* Recompute reduced costs z_j = c_j - c_B . a_j from scratch. *)
let recompute_z t =
  let cb = Array.map (fun j -> t.cost.(j)) t.basis in
  for j = 0 to t.cols - 1 do
    let acc = ref t.cost.(j) in
    for i = 0 to t.m - 1 do
      let aij = t.a.(i).(j) in
      if aij <> 0.0 && cb.(i) <> 0.0 then acc := !acc -. (cb.(i) *. aij)
    done;
    t.z.(j) <- !acc
  done

(* Choose an entering column. Dantzig by default; Bland when [bland]. *)
let entering t ~bland =
  let best = ref (-1) and best_score = ref cost_eps in
  let consider j score =
    if bland then (if !best = -1 && score > cost_eps then best := j)
    else if score > !best_score then begin
      best := j;
      best_score := score
    end
  in
  (try
     for j = 0 to t.cols - 1 do
       (match t.stat.(j) with
       | Basic _ -> ()
       | At_lower -> consider j (-.t.z.(j))
       | At_upper ->
           if t.range.(j) > 0.0 then consider j t.z.(j)
           (* fixed vars (range 0) never enter *));
       if bland && !best >= 0 then raise Exit
     done
   with Exit -> ());
  !best

exception Unbounded_exc

(* Ratio test: entering j moves by dir * t. Returns (t*, leaving row or -1
   for a bound flip). *)
let ratio_test t j ~dir =
  let tmax = ref (if Float.is_finite t.range.(j) then t.range.(j) else infinity) in
  let row = ref (-1) in
  for i = 0 to t.m - 1 do
    let delta = dir *. t.a.(i).(j) in
    if delta > pivot_eps then begin
      let ti = t.beta.(i) /. delta in
      let ti = if ti < 0.0 then 0.0 else ti in
      if ti < !tmax -. 1e-12 then begin
        tmax := ti;
        row := i
      end
    end
    else if delta < -.pivot_eps then begin
      let ub = t.range.(t.basis.(i)) in
      if Float.is_finite ub then begin
        let ti = (ub -. t.beta.(i)) /. -.delta in
        let ti = if ti < 0.0 then 0.0 else ti in
        if ti < !tmax -. 1e-12 then begin
          tmax := ti;
          row := i
        end
      end
    end
  done;
  if Float.is_finite !tmax then (!tmax, !row) else raise Unbounded_exc

let do_bound_flip t j ~dir ~tstar =
  for i = 0 to t.m - 1 do
    t.beta.(i) <- t.beta.(i) -. (dir *. t.a.(i).(j) *. tstar)
  done;
  t.stat.(j) <- (match t.stat.(j) with
    | At_lower -> At_upper
    | At_upper -> At_lower
    | Basic _ -> assert false)

let do_pivot t j r ~dir ~tstar =
  let x_old = match t.stat.(j) with
    | At_lower -> 0.0
    | At_upper -> t.range.(j)
    | Basic _ -> assert false
  in
  let x_new = x_old +. (dir *. tstar) in
  for i = 0 to t.m - 1 do
    if i <> r then t.beta.(i) <- t.beta.(i) -. (dir *. t.a.(i).(j) *. tstar)
  done;
  t.beta.(r) <- x_new;
  (* Leaving variable parks at the bound it hit. *)
  let leaving = t.basis.(r) in
  let delta_r = dir *. t.a.(r).(j) in
  t.stat.(leaving) <- (if delta_r > 0.0 then At_lower else At_upper);
  (* Row reduction: make column j a unit vector at row r. *)
  let prow = t.a.(r) in
  let piv = prow.(j) in
  for c = 0 to t.cols - 1 do
    prow.(c) <- prow.(c) /. piv
  done;
  for i = 0 to t.m - 1 do
    if i <> r then begin
      let f = t.a.(i).(j) in
      if f <> 0.0 then begin
        let row_i = t.a.(i) in
        for c = 0 to t.cols - 1 do
          row_i.(c) <- row_i.(c) -. (f *. prow.(c))
        done;
        row_i.(j) <- 0.0
      end
    end
  done;
  let zf = t.z.(j) in
  if zf <> 0.0 then begin
    for c = 0 to t.cols - 1 do
      t.z.(c) <- t.z.(c) -. (zf *. prow.(c))
    done;
    t.z.(j) <- 0.0
  end;
  t.basis.(r) <- j;
  t.stat.(j) <- Basic r

(* Run pivots until optimal/unbounded/iteration cap/deadline. Returns
   iterations. The deadline is polled every 64 pivots — fine-grained
   enough that one pathological node LP cannot overshoot the MILP budget
   by more than a sliver, cheap enough to be invisible in profiles. *)
let optimize t ~max_iters ~iters_used ~deadline =
  let iters = ref iters_used in
  let bland_after = max 200 (10 * (t.m + t.cols)) in
  let status = ref Optimal in
  if Resilience.Fault.fires "simplex.cycle" then status := Iteration_limit
  else
  (try
     let continue_ = ref true in
     while !continue_ do
       if !iters >= max_iters then begin
         status := Iteration_limit;
         continue_ := false
       end
       else if
         (!iters - iters_used) land 63 = 0
         && Resilience.Deadline.expired deadline
       then begin
         status := Time_limit;
         continue_ := false
       end
       else begin
         let bland = !iters - iters_used > bland_after in
         let j = entering t ~bland in
         if j < 0 then continue_ := false
         else begin
           incr iters;
           let dir = match t.stat.(j) with
             | At_lower -> 1.0
             | At_upper -> -1.0
             | Basic _ -> assert false
           in
           let tstar, r = ratio_test t j ~dir in
           if r < 0 then do_bound_flip t j ~dir ~tstar
           else do_pivot t j r ~dir ~tstar
         end
       end
     done
   with Unbounded_exc -> status := Unbounded);
  (!status, !iters)

let solve ?(max_iters = 50_000) ?(deadline = Resilience.Deadline.none) ?lb ?ub
    (raw : Model.raw) =
  let n = raw.n in
  let lbv = match lb with Some a -> a | None -> raw.lb in
  let ubv = match ub with Some a -> a | None -> raw.ub in
  let m = Array.length raw.rows in
  (* Quick infeasibility: crossed bounds. *)
  let crossed = ref false in
  for j = 0 to n - 1 do
    if ubv.(j) < lbv.(j) -. feas_eps then crossed := true
  done;
  if !crossed then
    { status = Infeasible; x = Array.make n 0.0; objective = 0.0; iterations = 0 }
  else begin
    (* Normalize rows: >= becomes <= (negated); compute shifted rhs. *)
    let sign = Array.make m 1.0 in
    let is_eq = Array.make m false in
    Array.iteri
      (fun i s ->
        match (s : Model.sense) with
        | Model.Ge -> sign.(i) <- -1.0
        | Model.Eq -> is_eq.(i) <- true
        | Model.Le -> ())
      raw.senses;
    let bshift = Array.make m 0.0 in
    for i = 0 to m - 1 do
      let acc = ref (sign.(i) *. raw.rhs.(i)) in
      Array.iter
        (fun (j, c) -> acc := !acc -. (sign.(i) *. c *. lbv.(j)))
        raw.rows.(i);
      bshift.(i) <- !acc
    done;
    (* Column layout: structural | slack per row | artificials as needed. *)
    let need_artificial = Array.make m false in
    for i = 0 to m - 1 do
      if is_eq.(i) then need_artificial.(i) <- Float.abs bshift.(i) > feas_eps
      else need_artificial.(i) <- bshift.(i) < -.feas_eps
    done;
    let n_art = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 need_artificial in
    let cols = n + m + n_art in
    let a = Array.init m (fun _ -> Array.make cols 0.0) in
    let range = Array.make cols infinity in
    for j = 0 to n - 1 do
      range.(j) <- ubv.(j) -. lbv.(j)
    done;
    for i = 0 to m - 1 do
      Array.iter (fun (j, c) -> a.(i).(j) <- a.(i).(j) +. (sign.(i) *. c)) raw.rows.(i);
      a.(i).(n + i) <- 1.0;
      range.(n + i) <- (if is_eq.(i) then 0.0 else infinity)
    done;
    let basis = Array.make m 0 in
    let beta = Array.make m 0.0 in
    let art = ref 0 in
    for i = 0 to m - 1 do
      if need_artificial.(i) then begin
        let col = n + m + !art in
        incr art;
        (* Scale the row so the artificial enters with +1 and value >= 0. *)
        if bshift.(i) < 0.0 then begin
          for c = 0 to cols - 1 do
            a.(i).(c) <- -.a.(i).(c)
          done;
          bshift.(i) <- -.bshift.(i)
        end;
        a.(i).(col) <- 1.0;
        range.(col) <- infinity;
        basis.(i) <- col;
        beta.(i) <- bshift.(i)
      end
      else begin
        basis.(i) <- n + i;
        beta.(i) <- bshift.(i)
      end
    done;
    let stat = Array.make cols At_lower in
    Array.iteri (fun i j -> stat.(j) <- Basic i) basis;
    let t =
      { m; cols; a; beta; range; cost = Array.make cols 0.0; z = Array.make cols 0.0; stat; basis }
    in
    let finish status iters =
      let x = Array.init n (fun j -> lbv.(j) +. value t j) in
      let objective =
        let acc = ref 0.0 in
        for j = 0 to n - 1 do
          acc := !acc +. (raw.obj.(j) *. x.(j))
        done;
        !acc
      in
      { status; x; objective; iterations = iters }
    in
    (* Phase 1 (only when artificials exist). *)
    let phase1_result =
      if n_art = 0 then Ok 0
      else begin
        for c = 0 to cols - 1 do
          t.cost.(c) <- (if c >= n + m then 1.0 else 0.0)
        done;
        recompute_z t;
        let status, iters = optimize t ~max_iters ~iters_used:0 ~deadline in
        match status with
        | Iteration_limit -> Error (finish Iteration_limit iters)
        | Time_limit -> Error (finish Time_limit iters)
        | Unbounded -> Error (finish Infeasible iters) (* cannot happen *)
        | Optimal | Infeasible ->
            let infeas = ref 0.0 in
            for c = n + m to cols - 1 do
              infeas := !infeas +. value t c
            done;
            if !infeas > 1e-6 then Error (finish Infeasible iters)
            else begin
              (* Lock artificials at zero for phase 2. *)
              for c = n + m to cols - 1 do
                t.range.(c) <- 0.0
              done;
              Ok iters
            end
      end
    in
    match phase1_result with
    | Error r -> r
    | Ok iters1 ->
        for c = 0 to cols - 1 do
          t.cost.(c) <- (if c < n then raw.obj.(c) else 0.0)
        done;
        recompute_z t;
        let status, iters = optimize t ~max_iters ~iters_used:iters1 ~deadline in
        finish status iters
  end
