type sense = Le | Ge | Eq
type var = int

type row = { r_name : string option; terms : (int * float) list; sense : sense; rhs : float }

type t = {
  m_name : string;
  mutable names : string list;  (* reversed *)
  mutable lbs : float list;
  mutable ubs : float list;
  mutable ints : bool list;
  mutable nvars : int;
  mutable rows : row list;  (* reversed *)
  mutable nrows : int;
  mutable obj : (int * float) list;  (* may hold duplicates; summed at freeze *)
  mutable obj_const : float;
}

let create ?(name = "model") () =
  {
    m_name = name;
    names = [];
    lbs = [];
    ubs = [];
    ints = [];
    nvars = 0;
    rows = [];
    nrows = 0;
    obj = [];
    obj_const = 0.0;
  }

let add_var m ?(integer = false) ?(lb = 0.0) ?(ub = infinity) name =
  if Float.is_nan lb || Float.is_nan ub then invalid_arg "Model.add_var: NaN";
  if not (Float.is_finite lb) then
    invalid_arg "Model.add_var: lower bound must be finite";
  if ub < lb then invalid_arg "Model.add_var: ub < lb";
  let id = m.nvars in
  m.names <- name :: m.names;
  m.lbs <- lb :: m.lbs;
  m.ubs <- ub :: m.ubs;
  m.ints <- integer :: m.ints;
  m.nvars <- id + 1;
  id

let bool_var m name = add_var m ~integer:true ~lb:0.0 ~ub:1.0 name

let normalize_terms terms =
  let tbl = Hashtbl.create (List.length terms) in
  List.iter
    (fun (c, v) ->
      let prev = Option.value ~default:0.0 (Hashtbl.find_opt tbl v) in
      Hashtbl.replace tbl v (prev +. c))
    terms;
  Hashtbl.fold (fun v c acc -> if c = 0.0 then acc else (v, c) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let add_constraint m ?name terms sense rhs =
  let terms = normalize_terms terms in
  m.rows <- { r_name = name; terms; sense; rhs } :: m.rows;
  m.nrows <- m.nrows + 1

let add_le m ?name terms rhs = add_constraint m ?name terms Le rhs
let add_ge m ?name terms rhs = add_constraint m ?name terms Ge rhs
let add_eq m ?name terms rhs = add_constraint m ?name terms Eq rhs

let set_objective m ?(constant = 0.0) terms =
  m.obj <- List.map (fun (c, v) -> (v, c)) terms;
  m.obj_const <- constant

let nth_rev l n total = List.nth l (total - 1 - n)

let fix m v x =
  (* Lists are reversed; rebuild with the narrowed bound. *)
  let idx = m.nvars - 1 - v in
  m.lbs <- List.mapi (fun i lb -> if i = idx then x else lb) m.lbs;
  m.ubs <- List.mapi (fun i ub -> if i = idx then x else ub) m.ubs

let num_vars m = m.nvars
let num_constraints m = m.nrows
let var_index v = v

let var_of_index m i =
  if i < 0 || i >= m.nvars then invalid_arg "Model.var_of_index";
  i

let var_name m v = nth_rev m.names v m.nvars
let is_integer m v = nth_rev m.ints v m.nvars
let bounds m v = (nth_rev m.lbs v m.nvars, nth_rev m.ubs v m.nvars)
let objective_constant m = m.obj_const

let objective_terms m =
  normalize_terms (List.map (fun (v, c) -> (c, v)) m.obj)
  |> List.map (fun (v, c) -> (c, v))

let rows m =
  List.rev m.rows
  |> List.map (fun r ->
         (r.r_name, List.map (fun (v, c) -> (c, v)) r.terms, r.sense, r.rhs))
  |> Array.of_list

type raw = {
  n : int;
  lb : float array;
  ub : float array;
  integer : bool array;
  obj : float array;
  rows : (int * float) array array;
  senses : sense array;
  rhs : float array;
}

let to_raw m =
  let n = m.nvars in
  let rev_to_array l = Array.of_list (List.rev l) in
  let lb = rev_to_array m.lbs in
  let ub = rev_to_array m.ubs in
  let integer = rev_to_array m.ints in
  let obj = Array.make n 0.0 in
  List.iter
    (fun (v, c) -> obj.(v) <- obj.(v) +. c)
    m.obj;
  let rows_l = List.rev m.rows in
  let rows =
    Array.of_list (List.map (fun r -> Array.of_list r.terms) rows_l)
  in
  let senses = Array.of_list (List.map (fun r -> r.sense) rows_l) in
  let rhs = Array.of_list (List.map (fun (r : row) -> r.rhs) rows_l) in
  { n; lb; ub; integer; obj; rows; senses; rhs }

let check m ~values ?(eps = 1e-6) () =
  let fail fmt = Fmt.kstr (fun s -> Error s) fmt in
  let rec check_vars v =
    if v >= m.nvars then Ok ()
    else
      let x = values v in
      let lb, ub = bounds m v in
      if x < lb -. eps || x > ub +. eps then
        fail "variable %s = %g outside [%g, %g]" (var_name m v) x lb ub
      else if is_integer m v && Float.abs (x -. Float.round x) > eps then
        fail "variable %s = %g not integral" (var_name m v) x
      else check_vars (v + 1)
  in
  let check_row i (r : row) =
    let lhs = List.fold_left (fun acc (v, c) -> acc +. (c *. values v)) 0.0 r.terms in
    let name = Option.value r.r_name ~default:(Printf.sprintf "row%d" i) in
    match r.sense with
    | Le when lhs > r.rhs +. eps -> fail "%s: %g > %g" name lhs r.rhs
    | Ge when lhs < r.rhs -. eps -> fail "%s: %g < %g" name lhs r.rhs
    | Eq when Float.abs (lhs -. r.rhs) > eps -> fail "%s: %g <> %g" name lhs r.rhs
    | Le | Ge | Eq -> Ok ()
  in
  match check_vars 0 with
  | Error _ as e -> e
  | Ok () ->
      let rec go i = function
        | [] -> Ok ()
        | r :: rest -> (
            match check_row i r with Error _ as e -> e | Ok () -> go (i + 1) rest)
      in
      go 0 (List.rev m.rows)

let pp_stats ppf m =
  let ints = List.fold_left (fun acc b -> if b then acc + 1 else acc) 0 m.ints in
  Fmt.pf ppf "%s: %d vars (%d integer), %d constraints" m.m_name m.nvars ints
    m.nrows
