(** Bounded-variable two-phase primal simplex on a dense tableau, with a
    reusable solver state for warm-started branch-and-bound.

    Solves [min c·x  s.t.  A x {<=,=,>=} b,  l <= x <= u] with finite lower
    bounds and possibly infinite upper bounds. Upper bounds are handled
    implicitly (nonbasic-at-upper-bound states and bound flips), which is
    what keeps the MILP's thousands of binaries out of the row space.

    Phase 1 introduces artificial variables only for rows whose slack
    cannot serve as an initial basic variable. Dantzig pricing with an
    automatic switch to Bland's rule guards against cycling.

    {2 Warm restarts}

    {!solve_state} additionally returns the solver's final tableau, basis
    and bound status as a {!state}; {!resolve} then accepts tightened
    variable bounds and restarts from that basis instead of running
    Phase 1 from scratch. Because reduced costs do not depend on variable
    bounds, the optimal basis of a parent node LP stays {e dual} feasible
    after a branch, so a child LP is a short dual-simplex repair (a bound
    change on a nonbasic variable is at most a flip; a change on a basic
    one walks the violated variable back to its bound) followed by an
    ordinary primal clean-up — typically a handful of pivots instead of
    hundreds. This is the same lever CPLEX uses to win on the paper's
    Sec. 4.3 instances (see DESIGN.md, "Solver engineering"). *)

type status =
  | Optimal
  | Infeasible
  | Unbounded
  | Iteration_limit  (** gave up; treat as unsolved *)
  | Time_limit
      (** the [deadline] expired mid-pivot; treat as unsolved — the MILP
          maps this to its own budget-exhausted handling *)

type result = {
  status : status;
  x : float array;  (** structural variable values, length [raw.n] *)
  objective : float;  (** [c·x] (no model constant), meaningful if Optimal *)
  iterations : int;
}

val solve :
  ?max_iters:int ->
  ?deadline:Resilience.Deadline.t ->
  ?lb:float array ->
  ?ub:float array ->
  Model.raw ->
  result
(** [solve raw] minimizes. [lb]/[ub] override the bounds in [raw] — this is
    how branch-and-bound tightens bounds without rebuilding the model.
    Default [max_iters] is [50_000]. [deadline] (default
    {!Resilience.Deadline.none}) is polled every 64 pivots, so a deadline
    caps even a single pathological LP rather than only being consulted
    between solves. The [simplex.cycle] fault point
    ({!Resilience.Fault}) makes every optimize call give up with
    {!Iteration_limit} immediately. *)

(** {1 Reusable solver state} *)

type state
(** Tableau + basis + bound status after a {!solve_state} or {!resolve}
    call. Mutable: {!resolve} updates it in place, so clone with {!copy}
    before branching if both children need independent restarts. *)

val solve_state :
  ?max_iters:int ->
  ?deadline:Resilience.Deadline.t ->
  ?lb:float array ->
  ?ub:float array ->
  Model.raw ->
  result * state
(** Like {!solve}, but also returns the final solver state for later
    {!resolve} calls. The bound arrays are copied into the state; the
    caller may keep mutating its own arrays. *)

val resolve :
  ?max_iters:int ->
  ?deadline:Resilience.Deadline.t ->
  lb:float array ->
  ub:float array ->
  state ->
  result
(** [resolve ~lb ~ub st] re-optimizes the state's LP under new variable
    bounds, warm-starting from the last basis when it is still dual
    feasible (dual-simplex repair, then primal clean-up). Falls back to a
    cold rebuild — transparently, same result contract as {!solve} —
    whenever the inherited basis is unusable: the previous solve did not
    end {!Optimal}, the repair hit the pivot cap, or every
    [refactor_every = 256] calls to bound numerical drift. Equivalent to
    [solve ~lb ~ub raw] up to degenerate alternate optima: same status,
    same objective within [1e-6] (property-tested in [test/test_lp.ml]).

    Counters ({!Obs}): [simplex.resolve_pivots] (dual + primal pivots
    spent here), [simplex.resolve_warm] / [simplex.resolve_cold] (which
    path ran). *)

val copy : state -> state
(** Deep copy (tableau, basis, bounds) — clone-on-branch. *)

val last_resolve_warm : state -> bool
(** Whether the most recent {!resolve} used the warm path (including
    warm-detected infeasibility) rather than a cold rebuild. *)

val reduced_cost : state -> int -> float
(** Reduced cost of structural column [j] under the phase-2 objective.
    Meaningful after an {!Optimal} solve; used for reduced-cost bound
    fixing in {!Milp}. *)

val basis_status : state -> int -> [ `Basic | `At_lower | `At_upper ]
(** Basis status of structural column [j] in the current basis. *)

(** {1 Certificate extraction}

    See {!Cert} and DESIGN.md §3h. Both accessors read the state's live
    tableau; they are meaningful immediately after the corresponding
    terminal status and are consumed by {!Milp}'s certificate emitter. *)

val duals : state -> float array option
(** Multipliers on the original model rows under the currently installed
    cost row, in the Lagrangian convention the audit re-checks: after an
    [Optimal] solve, [-u·b + Σ_j min over the box of (c + Aᵀu)_j·x_j]
    re-evaluated in exact arithmetic is a safe lower bound on the LP —
    and equals its optimum up to float drift. [None] when the state was
    built from crossed bounds and holds no tableau. *)

val tableau_multipliers : state -> int -> float array option
(** [tableau_multipliers st j] returns, for a structural column [j] that
    is basic in the current tableau, the aggregation multipliers [λ]
    (one per row of the state's system, including any rows added with
    {!add_rows}) such that [Σ_i λ_i · row_i] reproduces [j]'s tableau
    row on the structural columns. This is the suggestion {!Cutgen}
    turns into a Chvátal–Gomory derivation — only a suggestion: cut
    generation recomputes the aggregation exactly from [λ] and the
    original rows. [None] when [j] is nonbasic or the state holds no
    tableau. *)

val add_rows : state -> ((int * float) array * float) array -> unit
(** [add_rows st rows] appends [<=] rows (cutting planes, as
    [(sparse terms, rhs)]) to the state's system in place. The warm
    basis is preserved: each new row's slack enters basic after the row
    is reduced against the inherited basis, reduced costs are untouched,
    and the next {!resolve} repairs the newly violated rows with a short
    dual-simplex walk instead of re-solving from scratch. Subsequent
    {!duals} / {!last_infeasibility} vectors cover the extended row set
    (model rows first, added rows in call order). *)

val last_infeasibility : state -> Cert.farkas option
(** Evidence for the most recent [Infeasible] outcome of {!solve_state} /
    {!resolve}: a Farkas ray (phase-1 dual or the violated row of B⁻¹
    from a dual-repair failure) or the crossed-bounds variable. Reset on
    every {!resolve}; [None] after non-infeasible outcomes. *)
