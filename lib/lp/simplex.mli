(** Bounded-variable two-phase primal simplex on a dense tableau.

    Solves [min c·x  s.t.  A x {<=,=,>=} b,  l <= x <= u] with finite lower
    bounds and possibly infinite upper bounds. Upper bounds are handled
    implicitly (nonbasic-at-upper-bound states and bound flips), which is
    what keeps the MILP's thousands of binaries out of the row space.

    Phase 1 introduces artificial variables only for rows whose slack
    cannot serve as an initial basic variable. Dantzig pricing with an
    automatic switch to Bland's rule guards against cycling. *)

type status =
  | Optimal
  | Infeasible
  | Unbounded
  | Iteration_limit  (** gave up; treat as unsolved *)
  | Time_limit
      (** the [deadline] expired mid-pivot; treat as unsolved — the MILP
          maps this to its own budget-exhausted handling *)

type result = {
  status : status;
  x : float array;  (** structural variable values, length [raw.n] *)
  objective : float;  (** [c·x] (no model constant), meaningful if Optimal *)
  iterations : int;
}

val solve :
  ?max_iters:int ->
  ?deadline:Resilience.Deadline.t ->
  ?lb:float array ->
  ?ub:float array ->
  Model.raw ->
  result
(** [solve raw] minimizes. [lb]/[ub] override the bounds in [raw] — this is
    how branch-and-bound tightens bounds without rebuilding the model.
    Default [max_iters] is [50_000]. [deadline] (default
    {!Resilience.Deadline.none}) is polled every 64 pivots, so a deadline
    caps even a single pathological LP rather than only being consulted
    between solves. The [simplex.cycle] fault point
    ({!Resilience.Fault}) makes every optimize call give up with
    {!Iteration_limit} immediately. *)
