(* Root cutting planes (DESIGN.md §3j): Chvátal–Gomory rounds from the
   simplex tableau and knapsack covers from the [<=] resource rows, with
   a bounded, violation-ranked cut pool.

   The contract with the audit is the same as {!Presolve}'s: every cut
   this module emits carries a {!Cert.cut_deriv} and is pre-verified
   here in the exact arithmetic ({!Qd}) the audit re-runs (CERT109 for
   CG, CERT110 for covers). The simplex tableau only *suggests* the CG
   multipliers; the aggregated row, its floors and the rounded rhs are
   all recomputed exactly from the cited multipliers and the original
   rows, so float drift in the tableau can cost us a cut but can never
   produce an invalid one. There is deliberately no division anywhere on
   the exact side — {!Qd} has none — which is why the CG step is the
   integer-rounding form (floor coefficients, floor rhs) rather than a
   scaled Gomory mixed-integer cut. *)

let viol_eps = 1e-6
let lam_drop = 1e-11  (* multipliers below this are noise: zero them *)
let lam_max = 1e7  (* dynamism guard: reject wildly scaled aggregations *)

(* ------------------------------------------------------------------ *)
(* Exact helpers                                                       *)
(* ------------------------------------------------------------------ *)

(* Integral float [f] with [f <= q < f+1], found by correcting the float
   floor with exact comparisons; [None] if the candidate refuses to
   converge (pathological magnitudes). *)
let qfloor q =
  let ok f = Qd.leq (Qd.of_float f) q && Qd.lt q (Qd.of_float (f +. 1.0)) in
  let rec adj f k =
    if k > 4 then None
    else if ok f then Some f
    else adj (if Qd.lt q (Qd.of_float f) then f -. 1.0 else f +. 1.0) (k + 1)
  in
  let f0 = Float.floor (Qd.to_float q) in
  if Float.is_finite f0 then adj f0 0 else None

(* ------------------------------------------------------------------ *)
(* Chvátal–Gomory separation                                           *)
(* ------------------------------------------------------------------ *)

(* One CG candidate from a multiplier suggestion [lam] (length = rows of
   [raw], which may already include earlier cuts). Returns [None] when
   the clamped aggregation cannot be rounded validly or yields nothing
   violated. *)
let cg_of_multipliers (raw : Model.raw) ~lb ~ub ~x lam =
  let m = Array.length raw.rows in
  let n = raw.n in
  (* Move into the sign cone the audit enforces: >= 0 on [<=] rows,
     <= 0 on [>=] rows, free on [=] rows; drop noise. A wrong-sign
     multiplier is frac-shifted by an integer (Gomory's trick: adding
     an integer multiple of a row keeps the aggregation's fractional
     structure when the row data is integral, and the final violation
     check filters the cases where it is not) rather than clamped,
     which would break the tableau-row identity outright. *)
  let ok_scale = ref true in
  let lam =
    Array.mapi
      (fun i l ->
        let l =
          match raw.senses.(i) with
          | Model.Le -> if l < 0.0 then l -. Float.floor l else l
          | Model.Ge -> if l > 0.0 then l -. Float.ceil l else l
          | Model.Eq -> l
        in
        if Float.abs l < lam_drop then 0.0
        else begin
          if Float.abs l > lam_max || not (Float.is_finite l) then
            ok_scale := false;
          l
        end)
      lam
  in
  if not !ok_scale then None
  else begin
    let support = ref [] in
    for i = m - 1 downto 0 do
      if lam.(i) <> 0.0 then support := (i, lam.(i)) :: !support
    done;
    match !support with
    | [] -> None
    | support ->
        (* Exact aggregation over the cited rows. *)
        let abar = Array.make n Qd.zero in
        let t = ref Qd.zero in
        List.iter
          (fun (i, l) ->
            let ql = Qd.of_float l in
            Array.iter
              (fun (j, c) ->
                abar.(j) <- Qd.add abar.(j) (Qd.mul ql (Qd.of_float c)))
              raw.rows.(i);
            t := Qd.add !t (Qd.mul ql (Qd.of_float raw.rhs.(i))))
          support;
        (* Bound-shifted rounding (the generalization CERT109
           re-derives): each integer column rounds to floor(abar_j)
           (charged to its finite lower bound) or ceil(abar_j) (charged
           to its finite upper bound), whichever keeps more violation at
           the LP point; continuous columns are dropped against the
           bound that makes the dropped term a relaxation. The exact
           rhs correction is delta = sum_j (c_j - abar_j)·bound_j, so
           the rounded rhs is floor(t + delta) — fractional bound
           charges are what lets the cut bite even when t itself is
           integral (binaries parked at their upper bounds). *)
        let terms = ref [] in
        let delta = ref Qd.zero in
        let valid = ref true in
        (try
           for j = n - 1 downto 0 do
             let a = abar.(j) in
             if not (Qd.is_zero a) then begin
               let charge cq bound =
                 delta := Qd.add !delta (Qd.mul (Qd.sub cq a) (Qd.of_float bound))
               in
               if raw.integer.(j) then (
                 match qfloor a with
                 | None ->
                     valid := false;
                     raise Exit
                 | Some f ->
                     if Qd.equal (Qd.of_float f) a then
                       (* already integral: keep exactly, no charge *)
                       (if f <> 0.0 then terms := (j, f) :: !terms)
                     else begin
                       let af = Qd.to_float a in
                       let can_dn = Float.is_finite lb.(j) in
                       let can_up = Float.is_finite ub.(j) in
                       (* score = c_j·x_j - (c_j - abar_j)·bound_j, the
                          column's contribution to (violation at x) *)
                       let s_dn =
                         if can_dn then (f *. x.(j)) -. ((f -. af) *. lb.(j))
                         else Float.neg_infinity
                       and s_up =
                         if can_up then
                           ((f +. 1.0) *. x.(j)) -. ((f +. 1.0 -. af) *. ub.(j))
                         else Float.neg_infinity
                       in
                       if (not can_dn) && not can_up then begin
                         valid := false;
                         raise Exit
                       end;
                       let c, bound =
                         if s_up > s_dn then (f +. 1.0, ub.(j))
                         else (f, lb.(j))
                       in
                       charge (Qd.of_float c) bound;
                       if c <> 0.0 then terms := (j, c) :: !terms
                     end)
               else begin
                 (* continuous: drop the column (c_j = 0); the dropped
                    term -abar_j·x_j maxes at lb when abar_j > 0, at ub
                    when abar_j < 0 — that bound must be finite *)
                 let bound = if Qd.sign a > 0 then lb.(j) else ub.(j) in
                 if not (Float.is_finite bound) then begin
                   valid := false;
                   raise Exit
                 end;
                 charge Qd.zero bound
               end
             end
           done
         with Exit -> ());
        if not !valid then None
        else
          let t' = Qd.add !t !delta in
          match qfloor t' with
          | None -> None
          | Some d ->
              if Qd.equal (Qd.of_float d) t' then
                None (* integral shifted rhs: no rounding gain *)
              else
                let terms = Array.of_list !terms in
                if Array.length terms = 0 then None
                else begin
                  let viol =
                    Array.fold_left
                      (fun acc (j, c) -> acc +. (c *. x.(j)))
                      (-.d) terms
                  in
                  if viol > viol_eps then
                    Some
                      {
                        Cert.cut_terms = terms;
                        cut_rhs = d;
                        cut_deriv = Cert.Cg (Array.of_list support);
                      }
                  else None
                end
  end

(* CG round: one candidate per fractional basic integer variable, using
   the tableau row's multipliers as the aggregation suggestion. *)
let cg_cuts (raw : Model.raw) ~lb ~ub ~x ~int_tol ~multipliers =
  let out = ref [] in
  for j = 0 to raw.n - 1 do
    if raw.integer.(j) then begin
      let frac = Float.abs (x.(j) -. Float.round x.(j)) in
      if frac > Float.max int_tol 0.005 then
        match multipliers j with
        | None -> ()
        | Some lam -> (
            match cg_of_multipliers raw ~lb ~ub ~x lam with
            | Some c -> out := c :: !out
            | None -> ())
    end
  done;
  !out

(* ------------------------------------------------------------------ *)
(* Knapsack cover separation                                           *)
(* ------------------------------------------------------------------ *)

(* Covers from the first [n_rows] rows (the model rows — re-covering cut
   rows is never a gain, their coefficients are already unit). A row
   qualifies when its binary positive-coefficient terms can exceed the
   rhs and every remaining term has nonnegative coefficient and lower
   bound, so "all cover members at 1" provably violates the row. *)
let cover_cuts (raw : Model.raw) ~n_rows ~lb ~ub ~x =
  let out = ref [] in
  for i = 0 to min n_rows (Array.length raw.rows) - 1 do
    if raw.senses.(i) = Model.Le then begin
      let row = raw.rows.(i) in
      let bins = ref [] in
      let rest_ok = ref true in
      Array.iter
        (fun (j, a) ->
          if a <> 0.0 then
            if raw.integer.(j) && lb.(j) = 0.0 && ub.(j) = 1.0 && a > 0.0 then
              bins := (j, a) :: !bins
            else if a >= 0.0 && lb.(j) >= 0.0 then ()
            else rest_ok := false)
        row;
      if !rest_ok && !bins <> [] then begin
        let b = raw.rhs.(i) in
        let total = List.fold_left (fun s (_, a) -> s +. a) 0.0 !bins in
        if total > b +. 1e-7 then begin
          (* Greedy cover: take members most loaded at the LP point
             first ((1 - x_j)/a_j ascending). *)
          let sorted =
            List.sort
              (fun (j1, a1) (j2, a2) ->
                compare ((1.0 -. x.(j1)) /. a1) ((1.0 -. x.(j2)) /. a2))
              !bins
          in
          let cover = ref [] and acc = ref 0.0 in
          (try
             List.iter
               (fun (j, a) ->
                 cover := (j, a) :: !cover;
                 acc := !acc +. a;
                 if !acc > b +. 1e-7 then raise Exit)
               sorted
           with Exit -> ());
          if !acc > b +. 1e-7 then begin
            (* Minimalize: drop members (smallest coefficient first)
               while what remains still covers. *)
            let members =
              List.sort (fun (_, a1) (_, a2) -> compare a1 a2) !cover
            in
            let members =
              List.filter
                (fun (_, a) ->
                  if !acc -. a > b +. 1e-7 then begin
                    acc := !acc -. a;
                    false
                  end
                  else true)
                members
            in
            (* Exact witness check, the condition CERT110 re-derives. *)
            let qsum =
              List.fold_left
                (fun s (_, a) -> Qd.add s (Qd.of_float a))
                Qd.zero members
            in
            if Qd.lt (Qd.of_float b) qsum && List.length members >= 2 then begin
              let mjs =
                Array.of_list (List.rev_map (fun (j, _) -> j) members)
              in
              Array.sort compare mjs;
              let k = Array.length mjs in
              let viol =
                Array.fold_left (fun s j -> s +. x.(j)) 0.0 mjs
                -. float_of_int (k - 1)
              in
              if viol > viol_eps then
                out :=
                  {
                    Cert.cut_terms = Array.map (fun j -> (j, 1.0)) mjs;
                    cut_rhs = float_of_int (k - 1);
                    cut_deriv = Cert.Cover { c_row = i; members = mjs };
                  }
                  :: !out
            end
          end
        end
      end
    end
  done;
  !out

(* ------------------------------------------------------------------ *)
(* Bounded cut pool                                                    *)
(* ------------------------------------------------------------------ *)

type entry = { cut : Cert.cut; mutable age : int; mutable active : bool }

type pool = {
  mutable entries : entry list;
  seen : (string, unit) Hashtbl.t;  (* duplicate hashing over terms+rhs *)
  capacity : int;
  max_age : int;
  mutable n_applied : int;
}

let create ?(capacity = 512) ?(max_age = 4) () =
  { entries = []; seen = Hashtbl.create 64; capacity; max_age; n_applied = 0 }

let key (c : Cert.cut) =
  let b = Buffer.create 64 in
  Array.iter
    (fun (j, v) -> Buffer.add_string b (Printf.sprintf "%d:%h;" j v))
    c.Cert.cut_terms;
  Buffer.add_string b (Printf.sprintf "|%h" c.Cert.cut_rhs);
  Buffer.contents b

let offer p (c : Cert.cut) =
  let k = key c in
  if (not (Hashtbl.mem p.seen k)) && List.length p.entries < p.capacity then begin
    Hashtbl.add p.seen k ();
    p.entries <- { cut = c; age = 0; active = false } :: p.entries
  end

let violation (c : Cert.cut) x =
  Array.fold_left
    (fun acc (j, v) -> acc +. (v *. x.(j)))
    (-.c.Cert.cut_rhs) c.Cert.cut_terms

(* Activate the [max_cuts] most violated inactive cuts at [x]; age out
   inactive entries that keep failing to make the grade. Returns the
   newly activated cuts in a deterministic (violation, then key) order. *)
let select p ~x ~max_cuts =
  let scored =
    List.filter_map
      (fun e ->
        if e.active then None
        else
          let v = violation e.cut x in
          if v > viol_eps then Some (v, e) else None)
      p.entries
  in
  let scored =
    List.sort
      (fun (v1, e1) (v2, e2) ->
        match compare v2 v1 with 0 -> compare (key e1.cut) (key e2.cut) | c -> c)
      scored
  in
  let rec take k = function
    | [] -> []
    | _ when k = 0 -> []
    | (_, e) :: tl ->
        e.active <- true;
        e.cut :: take (k - 1) tl
  in
  let chosen = take max_cuts scored in
  p.n_applied <- p.n_applied + List.length chosen;
  (* Age-out: inactive survivors get older; the stale ones drop (their
     hash stays in [seen], so they cannot be re-offered). *)
  p.entries <-
    List.filter
      (fun e ->
        if e.active then true
        else begin
          e.age <- e.age + 1;
          e.age <= p.max_age
        end)
      p.entries;
  chosen

let applied p = p.n_applied
let pending p = List.length (List.filter (fun e -> not e.active) p.entries)
