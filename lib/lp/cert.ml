(* Proof-carrying solve certificates (DESIGN.md §3h).

   A certificate is the raw material an independent checker needs to
   re-derive every claim the branch-and-bound solver makes, without
   trusting any of the solver's float arithmetic: dual vectors for
   optimality claims (weak duality gives a safe bound from *any* float
   dual vector when re-evaluated exactly), Farkas rays for infeasibility
   claims, and a pruning log rich enough to replay the tree. The types
   here are plain data — emission lives in {!Simplex}/{!Milp}, checking
   in [Analyze.Audit]. *)

type side = Lower | Upper

type farkas =
  | Ray of float array
      (* one multiplier per model row; exact aggregation must prove the
         node's box empty *)
  | Empty_box of int
      (* branching crossed the bounds of this variable: lb > ub *)

type lp_claim =
  | Lp_optimal of { obj : float; duals : float array }
  | Lp_infeasible of farkas option
      (* [None] only when no ray was recoverable — the audit flags it *)
  | Lp_unsolved  (* iteration/time limit: never grounds for pruning *)

type fathom =
  | F_branched of {
      bvar : int;
      down_id : int;
      down_ub : float;  (* child box: ub.(bvar) := down_ub *)
      up_id : int;
      up_lb : float;  (* child box: lb.(bvar) := up_lb *)
    }
  | F_integral  (* LP optimum integral: candidate incumbent *)
  | F_bound  (* LP bound dominated by the incumbent *)
  | F_dominated  (* parent bound dominated: pruned before solving *)
  | F_infeasible
  | F_budget  (* LP unsolved within budget: pruned unsoundly, never Optimal *)

type node = {
  id : int;  (* creation-order id from a dedicated counter: stable across
                domain counts, unlike the processing-order trace id *)
  parent : int;  (* -1 at the root *)
  branch : (int * side * float) option;  (* the edit that created this box *)
  depth : int;
  domain : int;
  claim : lp_claim;
  bound : float;  (* dual bound the solver attached to this node *)
  incumbent_at : float;  (* shared incumbent at the fathom decision *)
  fathom : fathom;
}

type status = Optimal | Feasible | Infeasible | Unbounded | Unknown

type tighten = {
  t_var : int;  (* variable whose bound moved *)
  t_hi : bool;  (* [true] = upper bound, [false] = lower bound *)
  t_new : float;  (* the tightened bound value *)
  t_row : int;
      (* row whose activity implies the bound; [-1] marks an integrality
         rounding step (no row cited, validity is floor/ceil of the
         current bound of an integer variable) *)
}

type cut_deriv =
  | Cg of (int * float) array
      (* Chvátal–Gomory: nonzero aggregation multipliers, one per cited
         row. Row indices address the extended system seen at derivation
         time: [0..m-1] are model rows, [m..m+k-1] are the k cuts already
         verified before this one. The audit clamps each multiplier to
         the row's sign cone, re-aggregates in exact arithmetic, and
         checks the integer rounding of the right-hand side. *)
  | Cover of { c_row : int; members : int array }
      (* knapsack cover: [<=] row [c_row] and a set of 0/1 columns whose
         coefficient sum exceeds the rhs, yielding
         [sum_{j in members} x_j <= |members| - 1] *)

type cut = {
  cut_terms : (int * float) array;  (* sparse row over original columns *)
  cut_rhs : float;  (* sense is always [<=] *)
  cut_deriv : cut_deriv;
}

type t = {
  status : status;
  objective : float;  (* incumbent objective, raw space (no model constant) *)
  incumbent : float array option;
  incumbents : (int * float) list;
      (* accepted incumbents in acceptance order, (node id, objective);
         id -1 marks a caller-seeded warm start *)
  root_lb : float array;  (* root box the tree explored (post bound-fixing) *)
  root_ub : float array;
  presolve : tighten list;
      (* ordered bound-tightening events applied at the root before the
         tree started; the audit replays them from the model box *)
  cuts : cut list;
      (* applied cuts in derivation order: cut [k] may cite cuts
         [0..k-1] in a [Cg] derivation *)
  fixes : (int * side) list;
      (* reduced-cost fixing events: variable pinned at this side of its box *)
  root_duals : float array option;  (* duals of the pre-fixing root LP *)
  root_obj : float;  (* root LP objective, raw space *)
  nodes : node list;  (* ascending id *)
  budget_hit : bool;
  lp_limited : int;
  domains : int;
  gap_tol : float;
  int_tol : float;
}

let status_label = function
  | Optimal -> "optimal"
  | Feasible -> "feasible"
  | Infeasible -> "infeasible"
  | Unbounded -> "unbounded"
  | Unknown -> "unknown"

let count_claims c =
  List.fold_left
    (fun (opt, inf, uns) n ->
      match n.claim with
      | Lp_optimal _ -> (opt + 1, inf, uns)
      | Lp_infeasible _ -> (opt, inf + 1, uns)
      | Lp_unsolved -> (opt, inf, uns + 1))
    (0, 0, 0) c.nodes

(* Compact summary for the metrics/trace stream. The full certificate
   never round-trips through JSON — exactness would not survive float
   printing — so audits run in-process on the live value. *)
let summary_json c =
  let opt, inf, uns = count_claims c in
  [
    ("status", Obs.Json.String (status_label c.status));
    ("nodes", Obs.Json.Int (List.length c.nodes));
    ("optimal_claims", Obs.Json.Int opt);
    ("infeasible_claims", Obs.Json.Int inf);
    ("unsolved_claims", Obs.Json.Int uns);
    ("incumbents", Obs.Json.Int (List.length c.incumbents));
    ("fixes", Obs.Json.Int (List.length c.fixes));
    ("tightenings", Obs.Json.Int (List.length c.presolve));
    ("cuts", Obs.Json.Int (List.length c.cuts));
    ("domains", Obs.Json.Int c.domains);
  ]
