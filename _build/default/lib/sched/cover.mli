(** LUT covers: the mapping half of a mapping-aware schedule.

    A cover selects at most one cut per node; nodes with a selected cut are
    {e roots} (they exist as physical signals, [root_v = 1] in the MILP),
    all other nodes live only inside selected cones. *)

type t = { chosen : Cuts.cut option array }

val make : Ir.Cdfg.t -> (int * Cuts.cut) list -> t
(** @raise Invalid_argument on duplicate or mismatched roots. *)

val all_trivial : Ir.Cdfg.t -> Cuts.t -> t
(** Every node selects its trivial cut — the additive-model cover used by
    the HLS-tool and MILP-base flows before downstream mapping. *)

val is_root : t -> int -> bool
val chosen : t -> int -> Cuts.cut option
val roots : t -> int list
val lut_area : t -> int
(** Sum of the selected cuts' LUT areas. *)

val validate : Ir.Cdfg.t -> t -> (unit, string) result
(** Checks the paper's cover constraints: primary outputs are roots
    (Eq. 3); every leaf of a selected cut is itself a root (Eq. 4); every
    node reachable backward from an output is covered by some selected
    cone; black boxes and inputs are never cone-interior. *)

val owners : Ir.Cdfg.t -> t -> int list array
(** [owners.(v)] = roots whose selected cone contains [v] (for roots this
    includes [v] itself). Used by timing and liveness analyses. *)

val pp : Ir.Cdfg.t -> t Fmt.t
