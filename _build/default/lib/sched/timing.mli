(** Timing queries shared by schedule verification, QoR evaluation and the
    downstream mapper.

    Timing discipline (DESIGN.md):
    - an intra-iteration ([dist = 0]) edge to a cut leaf may chain
      combinationally when producer and consumer share a cycle;
    - cone-interior nodes share their root's cycle and start time;
    - loop-carried ([dist > 0]) edges always cross a register: the value is
      produced in cycle [S_u + lat_u] and can be read no earlier than the
      next cycle, arriving at time 0. *)

val node_delay :
  device:Fpga.Device.t -> delays:Fpga.Delays.t -> Ir.Cdfg.t -> Cover.t ->
  int -> float
(** Combinational delay charged to node [v]: its selected cut's delay for
    roots, [0] for interior nodes (their delay is inside the owning cone). *)

val node_latency :
  device:Fpga.Device.t -> delays:Fpga.Delays.t -> Ir.Cdfg.t -> Cover.t ->
  int -> int
(** Extra whole cycles before the result is available
    ([floor (delay / usable period)]); 0 for everything faster than a
    cycle. *)

val recompute_starts :
  device:Fpga.Device.t -> delays:Fpga.Delays.t -> Ir.Cdfg.t -> Cover.t ->
  Schedule.t -> Schedule.t
(** Keep cycle assignments, recompute every start time as the earliest
    arrival under the cover's delays (ASAP within each cycle). Used to
    obtain post-mapping timing for flows that scheduled with additive
    delays, mirroring how Vivado re-times the tool's fixed schedule. *)

val achieved_cp :
  device:Fpga.Device.t -> delays:Fpga.Delays.t -> Ir.Cdfg.t -> Cover.t ->
  Schedule.t -> float
(** Longest combinational finish time in any cycle — the reproduction's
    stand-in for post-place-and-route achieved clock period. Never below
    one LUT delay (register-to-register paths). *)
