(** Quality-of-result model: LUTs, flip-flops and achieved clock period for
    a (schedule, cover) pair — the reproduction's stand-in for Vivado's
    post-place-and-route utilization and timing reports (Table 1). *)

type t = {
  luts : int;
  ffs : int;
  cp : float;  (** achieved clock period, ns *)
  latency : int;  (** pipeline latency in cycles *)
  ii : int;
}

val evaluate :
  device:Fpga.Device.t -> delays:Fpga.Delays.t -> Ir.Cdfg.t -> Cover.t ->
  Schedule.t -> t
(** LUTs: sum of selected cut areas. FFs: liveness-based — for every
    physical value (root), [Bits(v)] flip-flops per cycle boundary between
    its availability and its last use (Eq. 10–13 evaluated on a concrete
    schedule); constants are hardwired and never registered. CP: longest
    combinational chain ({!Timing.achieved_cp}). *)

val ff_bits : Ir.Cdfg.t -> Cover.t -> Schedule.t ->
  device:Fpga.Device.t -> delays:Fpga.Delays.t -> int
(** The FF component alone (also used by formulation cross-checks). *)

val regs_per_phase : Ir.Cdfg.t -> Cover.t -> Schedule.t ->
  device:Fpga.Device.t -> delays:Fpga.Delays.t -> int array
(** Eq. 13's [Reg(m)]: register bits live at each modulo phase
    [m in 0..II-1] — operations exactly [II] cycles apart execute
    concurrently in the pipeline, so each phase's liveness is a separate
    register population. Sums to {!ff_bits}. *)

val pp : t Fmt.t
