type t = { luts : int; ffs : int; cp : float; latency : int; ii : int }

(* Last external use cycle of each root's value, in the producer's
   iteration frame. *)
let last_uses g cover (sched : Schedule.t) =
  let n = Ir.Cdfg.num_nodes g in
  let last_use = Array.make n min_int in
  Array.iteri
    (fun v c ->
      match c with
      | None -> ()
      | Some (cut : Cuts.cut) ->
          Bitdep.Int_set.iter
            (fun w ->
              Array.iter
                (fun (e : Ir.Cdfg.edge) ->
                  if e.dist > 0 || not (Bitdep.Int_set.mem e.src cut.Cuts.cone) then begin
                    let use = sched.cycle.(v) + (sched.ii * e.dist) in
                    if use > last_use.(e.src) then last_use.(e.src) <- use
                  end)
                (Ir.Cdfg.preds g w))
            cut.Cuts.cone)
    cover.Cover.chosen;
  last_use

(* Iterate over every root's live span: [f v avail last_use]. *)
let iter_live_spans g cover (sched : Schedule.t) ~device ~delays f =
  let n = Ir.Cdfg.num_nodes g in
  let latency = Timing.node_latency ~device ~delays g cover in
  let last_use = last_uses g cover sched in
  for v = 0 to n - 1 do
    if Cover.is_root cover v && last_use.(v) > min_int then
      match Ir.Cdfg.op g v with
      | Ir.Op.Const _ -> () (* hardwired *)
      | _ -> f v (sched.cycle.(v) + latency v) last_use.(v)
  done

let ff_bits g cover (sched : Schedule.t) ~device ~delays =
  let total = ref 0 in
  iter_live_spans g cover sched ~device ~delays (fun v avail last ->
      let regs = max 0 (last - avail) in
      total := !total + (regs * Ir.Cdfg.width g v));
  !total

let regs_per_phase g cover (sched : Schedule.t) ~device ~delays =
  let per_phase = Array.make sched.ii 0 in
  iter_live_spans g cover sched ~device ~delays (fun v avail last ->
      for t = avail to last - 1 do
        let m = t mod sched.ii in
        per_phase.(m) <- per_phase.(m) + Ir.Cdfg.width g v
      done);
  per_phase

let evaluate ~device ~delays g cover sched =
  {
    luts = Cover.lut_area cover;
    ffs = ff_bits g cover sched ~device ~delays;
    cp = Timing.achieved_cp ~device ~delays g cover sched;
    latency = Schedule.latency sched;
    ii = sched.Schedule.ii;
  }

let pp ppf t =
  Fmt.pf ppf "CP=%.2fns LUT=%d FF=%d latency=%d II=%d" t.cp t.luts t.ffs
    t.latency t.ii
