let node_delay ~device ~delays g cover v =
  match Cover.chosen cover v with
  | None -> 0.0
  | Some cut -> Cuts.delay ~device ~delays g cut

let node_latency ~device ~delays g cover v =
  let d = node_delay ~device ~delays g cover v in
  let period = Fpga.Device.usable_period device in
  int_of_float (floor (d /. period))

(* Arrival time of edge [e] at a consumer scheduled in cycle [use_cycle]
   (absolute, producer-iteration frame): 0 if the producing root finished in
   an earlier cycle or the edge is registered; the root's finish time when
   it chains in the same cycle. *)
let arrival ~device ~delays g cover (sched : Schedule.t) starts
    (e : Ir.Cdfg.edge) ~use_cycle =
  if e.dist > 0 then 0.0
  else
    let u = e.src in
    let lat = node_latency ~device ~delays g cover u in
    let avail_cycle = sched.Schedule.cycle.(u) + lat in
    if avail_cycle < use_cycle then 0.0
    else
      (* same cycle (or an illegal future cycle — verification reports it):
         the chained arrival is start + delay, where a multi-cycle
         producer contributes only its final-cycle residual *)
      let d = node_delay ~device ~delays g cover u in
      let residual =
        d -. (float_of_int lat *. Fpga.Device.usable_period device)
      in
      if lat >= 1 then Float.max 0.0 residual else starts.(u) +. d

let recompute_starts ~device ~delays g cover (sched : Schedule.t) =
  let n = Ir.Cdfg.num_nodes g in
  let starts = Array.make n 0.0 in
  (* Process roots in topological order; interior nodes inherit their
     owner's start afterwards. *)
  List.iter
    (fun v ->
      match Cover.chosen cover v with
      | None -> ()
      | Some (cut : Cuts.cut) ->
          (* Arrivals: every edge from outside the cone into the cone. *)
          let t = ref 0.0 in
          Bitdep.Int_set.iter
            (fun w ->
              Array.iter
                (fun (e : Ir.Cdfg.edge) ->
                  if e.dist > 0 || not (Bitdep.Int_set.mem e.src cut.Cuts.cone) then
                    t :=
                      Float.max !t
                        (arrival ~device ~delays g cover sched starts e
                           ~use_cycle:sched.Schedule.cycle.(v)))
                (Ir.Cdfg.preds g w))
            cut.Cuts.cone;
          (* multi-cycle roots start at the cycle boundary *)
          starts.(v) <-
            (if node_latency ~device ~delays g cover v >= 1 then 0.0 else !t))
    (Ir.Cdfg.topo_order g);
  let owners = Cover.owners g cover in
  for v = 0 to n - 1 do
    if not (Cover.is_root cover v) then begin
      match owners.(v) with
      | owner :: _ -> starts.(v) <- starts.(owner)
      | [] -> ()
    end
  done;
  Schedule.make ~ii:sched.Schedule.ii ~cycle:sched.Schedule.cycle ~start:starts

let achieved_cp ~device ~delays g cover (sched : Schedule.t) =
  let cp = ref device.Fpga.Device.lut_delay in
  Array.iteri
    (fun v _ ->
      if Cover.is_root cover v then begin
        let lat = node_latency ~device ~delays g cover v in
        let d = node_delay ~device ~delays g cover v in
        let span = d -. (float_of_int lat *. Fpga.Device.usable_period device) in
        let finish = if lat = 0 then sched.Schedule.start.(v) +. d else span in
        cp := Float.max !cp finish
      end)
    sched.Schedule.cycle;
  !cp
