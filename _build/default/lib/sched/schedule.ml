type t = { ii : int; cycle : int array; start : float array }

let make ~ii ~cycle ~start =
  if ii < 1 then invalid_arg "Schedule.make: ii < 1";
  if Array.length cycle <> Array.length start then
    invalid_arg "Schedule.make: length mismatch";
  Array.iter (fun c -> if c < 0 then invalid_arg "Schedule.make: negative cycle") cycle;
  Array.iter
    (fun l -> if l < -1e-9 || Float.is_nan l then invalid_arg "Schedule.make: bad start")
    start;
  { ii; cycle; start = Array.map (fun l -> Float.max 0.0 l) start }

let latency s = Array.fold_left max 0 s.cycle
let phase s v = s.cycle.(v) mod s.ii

let shift_to_zero s =
  let lo = Array.fold_left min max_int s.cycle in
  if lo = 0 then s else { s with cycle = Array.map (fun c -> c - lo) s.cycle }

let pp_detailed g ppf s =
  Fmt.pf ppf "@[<v>II=%d latency=%d@," s.ii (latency s);
  Array.iteri
    (fun v c ->
      Fmt.pf ppf "  %-12s cycle %2d  t=%.2fns@," (Ir.Cdfg.node_name g v) c
        s.start.(v))
    s.cycle;
  Fmt.pf ppf "@]"

let pp_brief ppf s =
  Fmt.pf ppf "II=%d, latency=%d, %d ops" s.ii (latency s) (Array.length s.cycle)
