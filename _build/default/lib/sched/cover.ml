type t = { chosen : Cuts.cut option array }

let make g selections =
  let chosen = Array.make (Ir.Cdfg.num_nodes g) None in
  List.iter
    (fun (v, (c : Cuts.cut)) ->
      if c.Cuts.root <> v then invalid_arg "Cover.make: root mismatch";
      if chosen.(v) <> None then invalid_arg "Cover.make: duplicate root";
      chosen.(v) <- Some c)
    selections;
  { chosen }

let all_trivial g (cuts : Cuts.t) =
  let chosen =
    Array.init (Ir.Cdfg.num_nodes g) (fun v ->
        (* index 0 is always the trivial cut *)
        Some cuts.(v).(0))
  in
  { chosen }

let is_root t v = t.chosen.(v) <> None
let chosen t v = t.chosen.(v)

let roots t =
  let acc = ref [] in
  Array.iteri (fun v c -> if c <> None then acc := v :: !acc) t.chosen;
  List.rev !acc

let lut_area t =
  Array.fold_left
    (fun acc c -> match c with None -> acc | Some c -> acc + c.Cuts.area)
    0 t.chosen

let validate g t =
  let fail fmt = Fmt.kstr (fun s -> Error s) fmt in
  let n = Ir.Cdfg.num_nodes g in
  if Array.length t.chosen <> n then fail "cover size mismatch"
  else
    let bad = ref None in
    let record e = if !bad = None then bad := Some e in
    (* Eq. 3: primary outputs are roots. *)
    List.iter
      (fun o ->
        if not (is_root t o) then
          record (Printf.sprintf "output %s is not a root" (Ir.Cdfg.node_name g o)))
      (Ir.Cdfg.outputs g);
    (* Eq. 4 and structural sanity per selected cut. *)
    Array.iteri
      (fun v c ->
        match c with
        | None -> ()
        | Some (c : Cuts.cut) ->
            List.iter
              (fun leaf ->
                if not (is_root t leaf) then
                  record
                    (Printf.sprintf "leaf %s of root %s is not a root"
                       (Ir.Cdfg.node_name g leaf) (Ir.Cdfg.node_name g v)))
              c.Cuts.leaves;
            Bitdep.Int_set.iter
              (fun w ->
                if w <> v then
                  match Ir.Cdfg.op g w with
                  | Ir.Op.Input _ | Ir.Op.Black_box _ ->
                      record
                        (Printf.sprintf "node %s absorbed into cone of %s"
                           (Ir.Cdfg.node_name g w) (Ir.Cdfg.node_name g v))
                  | _ -> ())
              c.Cuts.cone)
      t.chosen;
    (* Coverage: nodes reachable backward from outputs are covered. *)
    let covered = Array.make n false in
    Array.iter
      (fun c ->
        match c with
        | None -> ()
        | Some (c : Cuts.cut) ->
            Bitdep.Int_set.iter (fun w -> covered.(w) <- true) c.Cuts.cone)
      t.chosen;
    let live = Array.make n false in
    let rec mark v =
      if not live.(v) then begin
        live.(v) <- true;
        Array.iter (fun (e : Ir.Cdfg.edge) -> mark e.src) (Ir.Cdfg.preds g v)
      end
    in
    List.iter mark (Ir.Cdfg.outputs g);
    Array.iteri
      (fun v l ->
        if l && not covered.(v) then
          record (Printf.sprintf "node %s not covered" (Ir.Cdfg.node_name g v)))
      live;
    match !bad with None -> Ok () | Some e -> Error e

let owners g t =
  let own = Array.make (Ir.Cdfg.num_nodes g) [] in
  Array.iteri
    (fun v c ->
      match c with
      | None -> ()
      | Some (c : Cuts.cut) ->
          Bitdep.Int_set.iter (fun w -> own.(w) <- v :: own.(w)) c.Cuts.cone)
    t.chosen;
  own

let pp g ppf t =
  Fmt.pf ppf "@[<v>";
  Array.iter
    (fun c ->
      match c with
      | None -> ()
      | Some c -> Fmt.pf ppf "%a@," (Cuts.pp_cut g) c)
    t.chosen;
  Fmt.pf ppf "@]"
