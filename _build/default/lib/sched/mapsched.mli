(** Cover-aware ASAP modulo scheduling: given a fixed LUT cover, schedule
    the cover's roots with chaining under the mapped delay model.

    This is the scalable {e map-first} heuristic the paper proposes as
    future work (Sec. 5): choose the mapping up front (area-flow), then
    schedule the mapped netlist — no MILP. It is used both as a flow of
    its own and as the strongest warm start for the MILP-map solve. *)

val schedule :
  device:Fpga.Device.t ->
  delays:Fpga.Delays.t ->
  resources:Fpga.Resource.budget ->
  ii:int ->
  Ir.Cdfg.t ->
  Cover.t ->
  (Schedule.t, Heuristic.error) result
(** Roots are placed ASAP in topological order with combinational chaining
    of cone delays; cone-interior nodes inherit their owner's slot;
    loop-carried dependences are resolved by fixed-point iteration;
    black boxes reserve modulo resource slots greedily. *)
