(** Modulo schedules: for every CDFG node, the clock cycle [S_v] it is
    assigned to and its start time [L_v] within the cycle (ns). *)

type t = {
  ii : int;  (** initiation interval, cycles *)
  cycle : int array;  (** [S_v] per node id *)
  start : float array;  (** [L_v] per node id, [0 <= L_v <= T_cp] *)
}

val make : ii:int -> cycle:int array -> start:float array -> t
(** @raise Invalid_argument on length mismatch, [ii < 1], or negative
    cycles/starts. *)

val latency : t -> int
(** Highest assigned cycle (pipeline depth measure; stages = latency + 1). *)

val phase : t -> int -> int
(** [cycle.(v) mod ii] — the modulo-resource phase of node [v]. *)

val shift_to_zero : t -> t
(** Renumber cycles so the earliest is 0. *)

val pp_detailed : Ir.Cdfg.t -> t Fmt.t
val pp_brief : t Fmt.t
