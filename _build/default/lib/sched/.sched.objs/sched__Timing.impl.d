lib/sched/timing.ml: Array Bitdep Cover Cuts Float Fpga Ir List Schedule
