lib/sched/schedule.ml: Array Float Fmt Ir
