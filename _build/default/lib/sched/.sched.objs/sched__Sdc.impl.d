lib/sched/sdc.ml: Array Float Fpga Hashtbl Heuristic Ir List Lp Option Printf Schedule
