lib/sched/schedule.mli: Fmt Ir
