lib/sched/cover.mli: Cuts Fmt Ir
