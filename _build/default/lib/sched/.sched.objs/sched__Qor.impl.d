lib/sched/qor.ml: Array Bitdep Cover Cuts Fmt Ir Schedule Timing
