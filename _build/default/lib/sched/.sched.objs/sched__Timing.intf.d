lib/sched/timing.mli: Cover Fpga Ir Schedule
