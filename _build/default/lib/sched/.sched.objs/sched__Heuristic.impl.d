lib/sched/heuristic.ml: Array Float Fmt Fpga Hashtbl Ir List Option Printf Schedule
