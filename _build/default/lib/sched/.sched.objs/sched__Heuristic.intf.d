lib/sched/heuristic.mli: Fmt Fpga Ir Schedule
