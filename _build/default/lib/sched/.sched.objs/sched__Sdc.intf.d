lib/sched/sdc.mli: Fpga Heuristic Ir Schedule
