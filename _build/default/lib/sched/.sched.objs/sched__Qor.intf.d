lib/sched/qor.mli: Cover Fmt Fpga Ir Schedule
