lib/sched/cover.ml: Array Bitdep Cuts Fmt Ir List Printf
