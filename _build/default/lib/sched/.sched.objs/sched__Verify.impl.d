lib/sched/verify.ml: Array Bitdep Cover Cuts Float Fmt Fpga Hashtbl Ir List Option Schedule String Timing
