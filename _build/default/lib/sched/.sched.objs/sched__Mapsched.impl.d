lib/sched/mapsched.ml: Array Bitdep Cover Cuts Float Fpga Hashtbl Heuristic Ir List Option Printf Schedule Timing
