lib/sched/mapsched.mli: Cover Fpga Heuristic Ir Schedule
