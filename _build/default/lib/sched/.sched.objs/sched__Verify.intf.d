lib/sched/verify.mli: Cover Fpga Ir Schedule
