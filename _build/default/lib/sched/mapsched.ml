(* Edges into a root's cone from outside it, with the entry distances. *)
let cone_deps g (cut : Cuts.cut) =
  let deps = ref [] in
  Bitdep.Int_set.iter
    (fun w ->
      Array.iter
        (fun (e : Ir.Cdfg.edge) ->
          if e.dist > 0 || not (Bitdep.Int_set.mem e.src cut.Cuts.cone) then
            deps := (e.src, e.dist) :: !deps)
        (Ir.Cdfg.preds g w))
    cut.Cuts.cone;
  !deps

let schedule ~device ~delays ~resources ~ii g cover =
  if ii < 1 then invalid_arg "Mapsched.schedule: ii < 1";
  let n = Ir.Cdfg.num_nodes g in
  let period = Fpga.Device.usable_period device in
  let cycle = Array.make n 0 in
  let start = Array.make n 0.0 in
  let delay v = Timing.node_delay ~device ~delays g cover v in
  let lat v = Timing.node_latency ~device ~delays g cover v in
  let max_cycle = 4 * (n + 16) in
  let roots_in_topo =
    List.filter (Cover.is_root cover) (Ir.Cdfg.topo_order g)
  in
  let deps =
    (* per root, computed once *)
    let tbl = Hashtbl.create 64 in
    List.iter
      (fun v ->
        match Cover.chosen cover v with
        | Some cut -> Hashtbl.replace tbl v (cone_deps g cut)
        | None -> ())
      roots_in_topo;
    tbl
  in
  let round () =
    let slot_use : (string * int, int) Hashtbl.t = Hashtbl.create 16 in
    let slot_count key = Option.value ~default:0 (Hashtbl.find_opt slot_use key) in
    let changed = ref false in
    List.iter
      (fun v ->
        let dep_list = Option.value ~default:[] (Hashtbl.find_opt deps v) in
        let cyc_lb = ref 0 in
        List.iter
          (fun (u, dist) ->
            let avail = cycle.(u) + lat u in
            let lb = if dist = 0 then avail else avail + 1 - (ii * dist) in
            if lb > !cyc_lb then cyc_lb := lb)
          dep_list;
        let arrivals_at c =
          List.fold_left
            (fun acc (u, dist) ->
              if dist = 0 && cycle.(u) + lat u = c then
                let residual = delay u -. (float_of_int (lat u) *. period) in
                Float.max acc (start.(u) +. Float.max 0.0 residual)
              else acc)
            0.0 dep_list
        in
        let rec place c =
          if c > max_cycle then (c, 0.0)
          else
            let l = arrivals_at c in
            let fits =
              if lat v >= 1 then l <= 1e-9
              else l +. delay v <= period +. 1e-9
            in
            if not fits then place (c + 1)
            else
              match Ir.Cdfg.op g v with
              | Ir.Op.Black_box { resource; _ } -> (
                  match Fpga.Resource.limit resources resource with
                  | Some lim when slot_count (resource, c mod ii) >= lim ->
                      place (c + 1)
                  | Some _ | None -> (c, l))
              | _ -> (c, l)
        in
        let c, l = place !cyc_lb in
        (match Ir.Cdfg.op g v with
        | Ir.Op.Black_box { resource; _ } ->
            let key = (resource, c mod ii) in
            Hashtbl.replace slot_use key (slot_count key + 1)
        | _ -> ());
        if c <> cycle.(v) || Float.abs (l -. start.(v)) > 1e-9 then begin
          changed := true;
          cycle.(v) <- c;
          start.(v) <- l
        end)
      roots_in_topo;
    !changed
  in
  let rec iterate k = if k > 0 && round () then iterate (k - 1) in
  iterate 100;
  (* Interior nodes inherit their first owner's slot (display only). *)
  let owners = Cover.owners g cover in
  for v = 0 to n - 1 do
    if not (Cover.is_root cover v) then begin
      match owners.(v) with
      | o :: _ ->
          cycle.(v) <- cycle.(o);
          start.(v) <- start.(o)
      | [] -> ()
    end
  done;
  let too_tight = ref None in
  Hashtbl.iter
    (fun v dep_list ->
      List.iter
        (fun (u, dist) ->
          if dist > 0 then begin
            let avail = cycle.(u) + lat u in
            if avail + 1 > cycle.(v) + (ii * dist) && !too_tight = None then
              too_tight :=
                Some
                  (Printf.sprintf "edge %s->%s (dist %d) at II=%d"
                     (Ir.Cdfg.node_name g u) (Ir.Cdfg.node_name g v) dist ii)
          end)
        dep_list)
    deps;
  let overflow = Array.exists (fun c -> c >= max_cycle) cycle in
  match (!too_tight, overflow) with
  | Some m, _ -> Error (Heuristic.Recurrence_too_tight m)
  | None, true ->
      Error (Heuristic.Resource_infeasible "schedule did not converge")
  | None, false -> Ok (Schedule.make ~ii ~cycle ~start)
